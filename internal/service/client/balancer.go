package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"hybridvc/internal/service"
	"hybridvc/internal/service/cluster"
)

// Balancer fans submissions across several hvcd servers. After a
// Refresh has learned the cluster membership, each job is routed to its
// key's rendezvous owner — the node whose simulation every other node
// would ask for anyway — so the cluster's one-simulation-per-key
// convergence needs no replication hop at all on the common path. A
// server that refuses retryably (429 backpressure, 503
// draining/overloaded) or is unreachable passes the job to the next
// server round-robin; the submission only fails when every server
// refused. Without a Refresh, or against non-clustered daemons, the
// balancer is plain round-robin with the same failover.
type Balancer struct {
	clients []*Client

	mu   sync.Mutex
	ids  []string           // full membership for rendezvous routing
	byID map[string]*Client // member ID → configured client
	rr   int
}

// NewBalancer builds a balancer over the server base URLs (duplicates
// and empties rejected). A nil httpClient uses http.DefaultClient.
func NewBalancer(urls []string, httpClient *http.Client) (*Balancer, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("client: balancer needs at least one server URL")
	}
	b := &Balancer{byID: map[string]*Client{}}
	seen := map[string]bool{}
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("client: empty server URL")
		}
		if seen[u] {
			return nil, fmt.Errorf("client: duplicate server URL %q", u)
		}
		seen[u] = true
		b.clients = append(b.clients, New(u, httpClient))
	}
	return b, nil
}

// Clients returns the per-server clients, in configured order.
func (b *Balancer) Clients() []*Client { return append([]*Client(nil), b.clients...) }

// Refresh learns the cluster membership from the first configured
// server that answers GET /v1/cluster, and maps member URLs onto the
// configured client list so subsequent submissions are owner-routed.
// Against non-clustered daemons it succeeds and leaves the balancer in
// round-robin mode. It fails only when no server answered at all.
func (b *Balancer) Refresh(ctx context.Context) error {
	var lastErr error
	for _, c := range b.clients {
		view, err := c.Cluster(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		b.mu.Lock()
		b.ids = b.ids[:0]
		b.byID = map[string]*Client{}
		if view.Enabled {
			for _, m := range view.Members {
				b.ids = append(b.ids, m.ID)
				for _, cl := range b.clients {
					if cl.Base() == strings.TrimRight(m.URL, "/") {
						b.byID[m.ID] = cl
					}
				}
			}
		}
		b.mu.Unlock()
		return nil
	}
	return fmt.Errorf("client: no server answered /v1/cluster: %w", lastErr)
}

// Owner reports the member ID owning the normalized spec's key, and
// whether the balancer both knows the membership and has a client for
// that member.
func (b *Balancer) Owner(spec service.JobSpec) (string, bool) {
	key, err := specKey(spec)
	if err != nil {
		return "", false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.ids) == 0 {
		return "", false
	}
	id := cluster.Owner(key, b.ids)
	_, ok := b.byID[id]
	return id, ok
}

// specKey computes the spec's content-addressed cache key exactly as
// the server would (normalize a copy, then hash). An invalid spec
// returns an error; the caller then routes round-robin and lets the
// server produce the authoritative rejection.
func specKey(spec service.JobSpec) (string, error) {
	spec.Workloads = append([]string(nil), spec.Workloads...)
	if err := spec.Normalize(); err != nil {
		return "", err
	}
	return spec.CacheKey(), nil
}

// order returns the candidate clients for one submission: the key's
// owner first (when known), then every other server starting at the
// round-robin cursor.
func (b *Balancer) order(spec service.JobSpec) []*Client {
	var owner *Client
	b.mu.Lock()
	if len(b.ids) > 0 {
		if key, err := specKey(spec); err == nil {
			owner = b.byID[cluster.Owner(key, b.ids)]
		}
	}
	start := b.rr
	b.rr++
	b.mu.Unlock()

	out := make([]*Client, 0, len(b.clients))
	if owner != nil {
		out = append(out, owner)
	}
	for i := 0; i < len(b.clients); i++ {
		if c := b.clients[(start+i)%len(b.clients)]; c != owner {
			out = append(out, c)
		}
	}
	return out
}

// Submit routes one spec through the candidate order, failing over on
// retryable rejections and transport errors. It returns the winning
// response together with the client that served it, so the caller can
// Watch the job on the same node. A non-retryable API error (a bad
// spec, say) returns immediately — every server would say the same.
func (b *Balancer) Submit(ctx context.Context, spec service.JobSpec) (service.SubmitResponse, *Client, error) {
	var lastErr error
	for _, c := range b.order(spec) {
		resp, err := c.Submit(ctx, spec)
		if err == nil {
			return resp, c, nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !apiErr.IsRetryable() {
			return resp, c, err
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return service.SubmitResponse{}, nil, fmt.Errorf("client: all %d servers refused submission: %w", len(b.clients), lastErr)
}

// SubmitWait is Submit with bounded retries for the every-server-
// refused case, paced by the same capped jittered exponential Backoff
// the single-node client uses. Non-retryable errors return immediately.
func (b *Balancer) SubmitWait(ctx context.Context, spec service.JobSpec, bo Backoff) (service.SubmitResponse, *Client, error) {
	bo = bo.WithDefaults()
	start := time.Now()
	for attempt := 0; ; attempt++ {
		resp, c, err := b.Submit(ctx, spec)
		if err == nil {
			return resp, c, nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !apiErr.IsRetryable() {
			return resp, c, err
		}
		wait := bo.Delay(attempt)
		if time.Since(start)+wait > bo.MaxElapsed {
			return resp, c, fmt.Errorf("client: balancer retries exhausted after %v: %w",
				time.Since(start).Round(time.Millisecond), err)
		}
		select {
		case <-ctx.Done():
			return resp, c, ctx.Err()
		case <-time.After(wait):
		}
	}
}
