// Package synfilter implements the paper's synonym filter (Section III-B):
// a per-address-space pair of 1K-bit Bloom filters that conservatively
// classifies every virtual address as a synonym candidate or a guaranteed
// non-synonym before the L1 cache access.
//
// The coarse filter tracks synonym regions at 16 MiB granularity
// (VA[47:24]) and the fine filter at 32 KiB granularity (VA[47:15], chosen
// because shared pages are commonly allocated as 8 consecutive 4 KiB
// pages). An address is a synonym candidate only when *both* filters hit,
// and each filter requires both of its hash-function bits, so a candidate
// needs all four bits set (Figure 3). The filters are maintained by the
// operating system and loaded into per-core filter storage on context
// switch; marking a page shared uses the TLB-shootdown mechanism to
// synchronize the cores running the same ASID.
package synfilter

import (
	"hybridvc/internal/addr"
	"hybridvc/internal/bloom"
	"hybridvc/internal/stats"
)

// Granularity constants from the paper.
const (
	// FineBits is log2 of the fine filter granule (32 KiB).
	FineBits = 15
	// CoarseBits is log2 of the coarse filter granule (16 MiB).
	CoarseBits = 24
)

// Filter is the synonym filter of one address space: the coarse/fine Bloom
// filter pair.
type Filter struct {
	fine   *bloom.Filter
	coarse *bloom.Filter

	// Lookups counts classification queries.
	Lookups stats.Counter
	// Candidates counts queries that reported a synonym candidate.
	Candidates stats.Counter
	// Inserts counts pages added by the OS.
	Inserts stats.Counter
}

// New creates an empty synonym filter (cleared at address space creation).
func New() *Filter {
	return &Filter{
		fine:   bloom.New(addr.VABits - FineBits),
		coarse: bloom.New(addr.VABits - CoarseBits),
	}
}

// MarkSynonym records that the page containing va became a synonym
// (r/w shared) page. The whole fine and coarse granules covering the page
// are inserted, so any address in those granules becomes a candidate.
func (f *Filter) MarkSynonym(va addr.VA) {
	f.Inserts.Inc()
	f.fine.Insert(uint64(va) >> FineBits)
	f.coarse.Insert(uint64(va) >> CoarseBits)
}

// MarkSynonymRange marks every 4 KiB page in [va, va+length).
func (f *Filter) MarkSynonymRange(va addr.VA, length uint64) {
	for off := uint64(0); off < length; off += addr.PageSize {
		f.MarkSynonym(va + addr.VA(off))
	}
}

// IsCandidate reports whether va may be a synonym address. A false return
// guarantees the address is not a synonym (no false negatives); a true
// return may be a false positive, which the TLB corrects.
func (f *Filter) IsCandidate(va addr.VA) bool {
	f.Lookups.Inc()
	hit := f.fine.Contains(uint64(va)>>FineBits) &&
		f.coarse.Contains(uint64(va)>>CoarseBits)
	if hit {
		f.Candidates.Inc()
	}
	return hit
}

// ProbeQuiet classifies without statistics (used by assertions in tests
// and by the batched route path, which probes quietly first and commits
// statistics afterwards via CountNonCandidates).
func (f *Filter) ProbeQuiet(va addr.VA) bool {
	return f.fine.Contains(uint64(va)>>FineBits) &&
		f.coarse.Contains(uint64(va)>>CoarseBits)
}

// CountNonCandidates commits the statistics of n quietly probed queries
// that all reported non-candidate, exactly as n IsCandidate calls would
// have: n lookups, no candidates.
func (f *Filter) CountNonCandidates(n uint64) {
	f.Lookups.Add(n)
}

// Clear empties both filters. Removing a synonym page does not clear bits
// (multiple pages may share them); when stale bits accumulate, the OS
// rebuilds the filter from its list of live synonym ranges instead.
func (f *Filter) Clear() {
	f.fine.Clear()
	f.coarse.Clear()
}

// CorruptBit forces one bit of the fine or coarse Bloom filter to the
// given value, modelling an SRAM soft error in the per-core filter
// storage. It returns whether the bit changed. A cleared bit can produce
// false negatives, which the design forbids — callers model the detected
// soft error by rebuilding from the OS synonym ranges before the next
// classification (see osmodel.Kernel.RebuildFilter).
func (f *Filter) CorruptBit(coarse bool, bit uint64, set bool) bool {
	if coarse {
		return f.coarse.CorruptBit(bit, set)
	}
	return f.fine.CorruptBit(bit, set)
}

// Rebuild reconstructs the filter from the live synonym ranges, dropping
// stale bits left by pages that transitioned back to private.
func (f *Filter) Rebuild(ranges []Range) {
	f.Clear()
	for _, r := range ranges {
		f.MarkSynonymRange(r.Start, r.Length)
	}
}

// Range is a virtual address range of live synonym pages.
type Range struct {
	Start  addr.VA
	Length uint64
}

// Occupancy returns the set-bit fractions of the fine and coarse filters.
func (f *Filter) Occupancy() (fine, coarse float64) {
	return f.fine.Occupancy(), f.coarse.Occupancy()
}

// Load copies another filter's contents (the per-core filter storage load
// performed when the OS sets the filter registers on a context switch).
func (f *Filter) Load(src *Filter) {
	f.fine.Load(src.fine)
	f.coarse.Load(src.coarse)
}

// Pair combines a guest and a host filter for virtualized address spaces
// (Section V-A): the OS maintains the guest filter and the hypervisor the
// host filter, both indexed by guest virtual address. The accessed page is
// a synonym candidate when either filter reports a hit.
type Pair struct {
	Guest *Filter
	Host  *Filter
	// Lookups counts classification queries against the pair.
	Lookups stats.Counter
	// Candidates counts queries reporting a candidate.
	Candidates stats.Counter
}

// NewPair creates a guest/host filter pair.
func NewPair(guest, host *Filter) *Pair {
	return &Pair{Guest: guest, Host: host}
}

// IsCandidate reports whether va may be a synonym induced by either the
// guest OS or the hypervisor.
func (p *Pair) IsCandidate(va addr.VA) bool {
	p.Lookups.Inc()
	hit := p.Guest.IsCandidate(va) || p.Host.IsCandidate(va)
	if hit {
		p.Candidates.Inc()
	}
	return hit
}

// ProbeQuiet classifies against the pair without statistics.
func (p *Pair) ProbeQuiet(va addr.VA) bool {
	return p.Guest.ProbeQuiet(va) || p.Host.ProbeQuiet(va)
}

// CountNonCandidates commits the statistics of n quietly probed queries
// that all reported non-candidate, exactly as n IsCandidate calls would
// have: the short-circuit OR probes the guest and then the host filter for
// every non-candidate, so both members count n lookups, as does the pair.
func (p *Pair) CountNonCandidates(n uint64) {
	p.Lookups.Add(n)
	p.Guest.CountNonCandidates(n)
	p.Host.CountNonCandidates(n)
}
