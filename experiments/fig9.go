package experiments

import (
	"fmt"
	"math"

	"hybridvc"
	"hybridvc/internal/stats"
)

// Figure9Workloads are the memory-intensive native workloads evaluated.
var Figure9Workloads = []string{"gups", "mcf", "milc", "xalancbmk", "omnetpp", "tigr", "stream", "graph500"}

// Figure9Config is one evaluated design point of Figure 9.
type Figure9Config struct {
	Label string
	Org   hybridvc.Organization
	// DelayedTLBEntries applies to delayed-TLB configurations.
	DelayedTLBEntries int
}

// Figure9Configs lists the paper's native design points: the baseline,
// fixed-granularity delayed TLBs of growing size, many-segment delayed
// translation without and with the segment cache, and the ideal TLB.
func Figure9Configs() []Figure9Config {
	return []Figure9Config{
		{Label: "baseline", Org: hybridvc.Baseline},
		{Label: "delayed-tlb-1k", Org: hybridvc.HybridDelayedTLB, DelayedTLBEntries: 1024},
		{Label: "delayed-tlb-8k", Org: hybridvc.HybridDelayedTLB, DelayedTLBEntries: 8192},
		{Label: "delayed-tlb-32k", Org: hybridvc.HybridDelayedTLB, DelayedTLBEntries: 32768},
		{Label: "many-segment", Org: hybridvc.HybridManySeg},
		{Label: "many-segment+sc", Org: hybridvc.HybridManySegSC},
		{Label: "ideal", Org: hybridvc.Ideal},
	}
}

// Figure9Result holds one workload's speedups over the baseline.
type Figure9Result struct {
	Workload string
	// Cycles per configuration, Speedup normalized to the baseline.
	Cycles  []uint64
	Speedup []float64
}

// Figure9 runs the full native performance comparison with the timing
// cores and reports speedup over the physically addressed baseline. The
// (workload × configuration) grid runs as independent cells on the
// parallel sweep runner.
func Figure9(scale Scale) ([]Figure9Result, *stats.Table, error) {
	n := scale.pick(40_000, 1_000_000)
	workloads := Figure9Workloads
	if scale == Quick {
		workloads = workloads[:4]
	}
	cfgs := Figure9Configs()

	var cells []Cell
	for _, wl := range workloads {
		for _, c := range cfgs {
			cells = append(cells, Cell{
				Label: fmt.Sprintf("fig9/%s/%s", wl, c.Label),
				Config: hybridvc.Config{
					Org:               c.Org,
					DelayedTLBEntries: c.DelayedTLBEntries,
				},
				Workloads:    []string{wl},
				Instructions: n,
			})
		}
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, nil, err
	}

	var results []Figure9Result
	for wi, wl := range workloads {
		r := Figure9Result{Workload: wl}
		for ci := range cfgs {
			r.Cycles = append(r.Cycles, res[wi*len(cfgs)+ci].Report.Cycles)
		}
		base := float64(r.Cycles[0])
		for _, cy := range r.Cycles {
			r.Speedup = append(r.Speedup, base/float64(cy))
		}
		results = append(results, r)
	}
	cols := []string{"workload"}
	for _, c := range cfgs {
		cols = append(cols, c.Label)
	}
	t := stats.NewTable("Figure 9: native performance (speedup over baseline)", cols...)
	for _, r := range results {
		row := []string{r.Workload}
		for _, s := range r.Speedup {
			row = append(row, fmt.Sprintf("%.3f", s))
		}
		t.AddRow(row...)
	}
	// Geometric-mean row.
	gm := make([]float64, len(cfgs))
	for i := range gm {
		prod := 1.0
		for _, r := range results {
			prod *= r.Speedup[i]
		}
		gm[i] = math.Pow(prod, 1/float64(len(results)))
	}
	row := []string{"geomean"}
	for _, g := range gm {
		row = append(row, fmt.Sprintf("%.3f", g))
	}
	t.AddRow(row...)
	return results, t, nil
}
