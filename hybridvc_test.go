package hybridvc

import (
	"testing"
)

func TestAllOrganizationsRun(t *testing.T) {
	for _, org := range Organizations() {
		org := org
		t.Run(string(org), func(t *testing.T) {
			sys, err := New(Config{Org: org, LLCBytes: 256 << 10})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.LoadWorkload("stream"); err != nil {
				t.Fatal(err)
			}
			r, err := sys.Run(5000)
			if err != nil {
				t.Fatal(err)
			}
			if r.Instructions != 5000 || r.Cycles == 0 {
				t.Errorf("%s: report %+v", org, r)
			}
		})
	}
}

func TestUnknownOrganization(t *testing.T) {
	if _, err := New(Config{Org: "bogus"}); err == nil {
		t.Error("unknown org accepted")
	}
}

func TestRunWithoutWorkload(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(100); err == nil {
		t.Error("run without workload succeeded")
	}
}

func TestUnknownWorkload(t *testing.T) {
	sys, _ := New(Config{})
	if err := sys.LoadWorkload("bogus"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Mem.Name() != "hybrid-manyseg+sc" {
		t.Errorf("default org = %s", sys.Mem.Name())
	}
	if sys.Mem.Hierarchy().NumCores() != 1 {
		t.Error("default cores != 1")
	}
}

func TestVirtualizedWiring(t *testing.T) {
	sys, err := New(Config{Org: VirtHybrid, GuestBytes: 1 << 30, PhysBytes: 4 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if sys.VM == nil || sys.Hypervisor == nil {
		t.Fatal("virtualized system missing VM/hypervisor")
	}
	if sys.Kernel != sys.VM.Kernel {
		t.Error("kernel is not the guest kernel")
	}
	if !VirtHybrid.Virtualized() || Baseline.Virtualized() {
		t.Error("Virtualized() wrong")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		sys, _ := New(Config{Org: HybridManySegSC, Seed: 7, LLCBytes: 256 << 10})
		sys.LoadWorkload("mcf")
		r, _ := sys.Run(10000)
		return r.Cycles
	}
	if run() != run() {
		t.Error("nondeterministic facade runs")
	}
}

// TestRunContinuation pins the documented semantics of repeated Run
// calls: generators continue their stream (a new simulator is built, but
// workload position and memory-system state carry over), so back-to-back
// runs advance through the workload instead of replaying it.
func TestRunContinuation(t *testing.T) {
	sys, err := New(Config{Org: HybridManySegSC, LLCBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadWorkload("mcf"); err != nil {
		t.Fatal(err)
	}
	r1, err := sys.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := sys.Generators()[0].Emitted()
	firstSim := sys.LastSim
	r2, err := sys.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	afterSecond := sys.Generators()[0].Emitted()
	if afterSecond <= afterFirst {
		t.Errorf("generator did not continue: emitted %d then %d", afterFirst, afterSecond)
	}
	if sys.LastSim == firstSim {
		t.Error("second Run reused the first simulator")
	}
	// Each simulator counts only its own window.
	if r1.Instructions != 5000 || r2.Instructions != 5000 {
		t.Errorf("per-run instruction counts: %d, %d, want 5000 each", r1.Instructions, r2.Instructions)
	}
	// A fresh system replaying the same seed reproduces the first window
	// exactly — continuation, by contrast, ran a different window.
	fresh, err := New(Config{Org: HybridManySegSC, LLCBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadWorkload("mcf"); err != nil {
		t.Fatal(err)
	}
	f1, err := fresh.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Cycles != r1.Cycles {
		t.Errorf("fresh system first window: %d cycles, want %d", f1.Cycles, r1.Cycles)
	}
}
