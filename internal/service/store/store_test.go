package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hybridvc/internal/stats"
)

func testRecord(key string) Record {
	return Record{
		Key:    key,
		Report: json.RawMessage(`{"instructions":1000,"cycles":2000}`),
		Tables: []string{"table-a"},
		Intervals: []stats.Interval{
			{Index: 0, Insns: 500, Cycles: 1000},
			{Index: 1, Insns: 500, Cycles: 1000},
		},
		Lineage: "lin-test-1",
	}
}

func mustOpen(t *testing.T, o Options) *Store {
	t.Helper()
	if o.Dir == "" {
		o.Dir = t.TempDir()
	}
	s, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPutGetRoundTrip: a stored record comes back byte- and
// field-identical, and a reopened store still serves it (the warm
// restart contract).
func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	rec := testRecord("k1")
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	check := func(s *Store, what string) {
		t.Helper()
		got, ok := s.Get("k1")
		if !ok {
			t.Fatalf("%s: stored record missing", what)
		}
		if string(got.Report) != string(rec.Report) {
			t.Errorf("%s: report %s, want %s", what, got.Report, rec.Report)
		}
		if len(got.Intervals) != 2 || got.Intervals[1].Insns != 500 {
			t.Errorf("%s: intervals %+v", what, got.Intervals)
		}
		if got.Lineage != rec.Lineage || len(got.Tables) != 1 {
			t.Errorf("%s: lineage/tables %q/%v", what, got.Lineage, got.Tables)
		}
	}
	check(s, "same store")
	check(mustOpen(t, Options{Dir: dir}), "reopened store")

	if _, ok := s.Get("absent"); ok {
		t.Error("absent key reported a hit")
	}
	m := s.Metrics()
	if m.Writes != 1 || m.Hits != 1 || m.Misses != 1 || m.Records != 1 || m.Bytes <= 0 {
		t.Errorf("metrics %+v", m)
	}
}

// TestTornRecordQuarantinedAtEveryOffset is the acceptance torn-write
// property: truncating a record at EVERY byte offset must yield a
// quarantined miss — no offset may decode into a served record.
func TestTornRecordQuarantinedAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	rec := testRecord("torn")
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(s.path("torn"))
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n < len(whole); n++ {
		s2 := mustOpen(t, Options{Dir: t.TempDir()})
		if err := s2.Put(rec); err != nil {
			t.Fatal(err)
		}
		if err := s2.CorruptFile("torn", n); err != nil {
			t.Fatal(err)
		}
		if _, ok := s2.Get("torn"); ok {
			t.Fatalf("truncation at offset %d/%d was served", n, len(whole))
		}
		m := s2.Metrics()
		if m.Corruptions != 1 {
			t.Fatalf("offset %d: corruptions = %d, want 1", n, m.Corruptions)
		}
		if q := s2.Quarantined(); q != 1 {
			t.Fatalf("offset %d: quarantined = %d, want 1", n, q)
		}
		// The quarantined record must not resurrect on a second lookup
		// or a reopen.
		if _, ok := s2.Get("torn"); ok {
			t.Fatalf("offset %d: quarantined key served on retry", n)
		}
		if _, ok := mustOpen(t, Options{Dir: s2.dir}).Get("torn"); ok {
			t.Fatalf("offset %d: quarantined key served after reopen", n)
		}
	}
}

// TestBitFlipQuarantined: single-bit corruption anywhere in the payload
// fails the checksum and quarantines.
func TestBitFlipQuarantined(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.Put(testRecord("flip")); err != nil {
		t.Fatal(err)
	}
	if err := s.CorruptFile("flip", -1); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("flip"); ok {
		t.Fatal("bit-flipped record was served")
	}
	if m := s.Metrics(); m.Corruptions != 1 {
		t.Errorf("corruptions = %d, want 1", m.Corruptions)
	}
}

// TestWrongKeyQuarantined: a valid record file renamed onto a different
// key must not be served under that key.
func TestWrongKeyQuarantined(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.Put(testRecord("right")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.path("right"), s.path("wrong")); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Options{Dir: s.dir})
	if _, ok := s2.Get("wrong"); ok {
		t.Fatal("record served under a key it was not stored for")
	}
	if m := s2.Metrics(); m.Corruptions != 1 {
		t.Errorf("corruptions = %d, want 1", m.Corruptions)
	}
}

// TestTTLExpiry: records older than the TTL report a miss and are
// removed, both on the live Get path and at reopen.
func TestTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, TTL: time.Hour})
	if err := s.Put(testRecord("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("fresh")); err != nil {
		t.Fatal(err)
	}
	// Age "old" two hours by rewinding the injected clock's view of its
	// mtime: set the file and index mtimes into the past.
	past := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(s.path("old"), past, past); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	e := s.index["old"]
	e.mtime = past
	s.index["old"] = e
	s.mu.Unlock()

	if _, ok := s.Get("old"); ok {
		t.Error("expired record served")
	}
	if _, ok := s.Get("fresh"); !ok {
		t.Error("unexpired record missing")
	}
	if m := s.Metrics(); m.Evictions != 1 || m.Records != 1 {
		t.Errorf("metrics after live expiry: %+v", m)
	}

	// Reopen path: an expired record on disk is swept at Open.
	if err := os.Chtimes(s.path("fresh"), past, past); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Options{Dir: dir, TTL: time.Hour})
	if n := s2.Len(); n != 0 {
		t.Errorf("reopened store kept %d expired records", n)
	}
}

// TestSizeEviction: exceeding MaxBytes evicts oldest-first until the
// budget holds, and the byte gauge tracks the survivors.
func TestSizeEviction(t *testing.T) {
	one, err := encode(testRecord("size-probe"))
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(len(one))*2 + 10 // room for two records, not three
	s := mustOpen(t, Options{MaxBytes: budget})
	for i, key := range []string{"a", "b", "c"} {
		rec := testRecord(key)
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so eviction order is unambiguous.
		mt := time.Now().Add(time.Duration(i-10) * time.Second)
		s.mu.Lock()
		e := s.index[key]
		e.mtime = mt
		s.index[key] = e
		s.mu.Unlock()
	}
	if err := s.Put(testRecord("d")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a"); ok {
		t.Error("oldest record survived size eviction")
	}
	if _, ok := s.Get("d"); !ok {
		t.Error("newest record evicted")
	}
	m := s.Metrics()
	if m.Bytes > budget {
		t.Errorf("resident bytes %d exceed budget %d", m.Bytes, budget)
	}
	if m.Evictions == 0 {
		t.Error("no evictions counted")
	}
}

// TestPutReplacesAndKeepsBytesConsistent: overwriting a key must not
// leak its old size into the byte gauge.
func TestPutReplacesAndKeepsBytesConsistent(t *testing.T) {
	s := mustOpen(t, Options{})
	rec := testRecord("k")
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	rec.Tables = append(rec.Tables, strings.Repeat("x", 1000))
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	enc, _ := encode(rec)
	if m := s.Metrics(); m.Records != 1 || m.Bytes != int64(len(enc)) {
		t.Errorf("after replace: %+v, want 1 record of %d bytes", m, len(enc))
	}
}

// TestWriteFaultLeavesOldRecord: an injected write error counts and the
// previous durable record stays intact and servable.
func TestWriteFaultLeavesOldRecord(t *testing.T) {
	fail := false
	s := mustOpen(t, Options{Hooks: Hooks{
		BeforeWrite: func(key string) error {
			if fail {
				return errors.New("injected disk error")
			}
			return nil
		},
	}})
	if err := s.Put(testRecord("k")); err != nil {
		t.Fatal(err)
	}
	fail = true
	bad := testRecord("k")
	bad.Lineage = "lin-should-not-land"
	if err := s.Put(bad); err == nil {
		t.Fatal("injected write error not surfaced")
	}
	got, ok := s.Get("k")
	if !ok || got.Lineage != "lin-test-1" {
		t.Fatalf("old record damaged by failed write: ok=%v rec=%+v", ok, got)
	}
	if m := s.Metrics(); m.WriteErrors != 1 || m.Writes != 1 {
		t.Errorf("write counters: %+v", m)
	}
}

// TestTornWriteHookNeverServes: a TransformRecord hook that truncates
// what hits the disk produces a quarantined miss, not a served record.
func TestTornWriteHookNeverServes(t *testing.T) {
	cut := 0
	s := mustOpen(t, Options{Hooks: Hooks{
		TransformRecord: func(key string, b []byte) []byte { return b[:cut] },
	}})
	full, err := encode(testRecord("k"))
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{0, len(full) / 4, len(full) / 2, len(full) - 1} {
		cut = frac
		if err := s.Put(testRecord("k")); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("k"); ok {
			t.Fatalf("torn write of %d/%d bytes was served", frac, len(full))
		}
	}
	if m := s.Metrics(); m.Corruptions != 4 {
		t.Errorf("corruptions = %d, want 4", m.Corruptions)
	}
}

// TestNoTmpFilesLeak: successful and failed writes both leave no *.tmp-*
// litter in the store dir.
func TestNoTmpFilesLeak(t *testing.T) {
	s := mustOpen(t, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.Contains(de.Name(), ".tmp-") {
			t.Errorf("leaked tmp file %s", de.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(s.dir, quarantineDir)); err != nil {
		t.Errorf("quarantine dir missing: %v", err)
	}
}
