// Package client is the reusable Go client for the hvcd daemon's HTTP
// API. cmd/hvcctl is a thin CLI over it; tests and load generators use
// it directly.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hybridvc/internal/service"
	"hybridvc/internal/service/cluster"
	"hybridvc/internal/stats"
)

// Client talks to one hvcd base URL (e.g. "http://localhost:8077").
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client. A nil httpClient uses http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// Base returns the client's base URL (trailing slash stripped).
func (c *Client) Base() string { return c.base }

// APIError is a non-2xx response, carrying the server's error message
// and any Retry-After hint.
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("hvcd: %d: %s", e.StatusCode, e.Message)
}

// IsRetryable reports whether the submission should simply be retried
// later: queue backpressure or rate limiting (429), and temporary
// unavailability (503 — a draining daemon or an open overload breaker).
func (e *APIError) IsRetryable() bool {
	return e.StatusCode == http.StatusTooManyRequests ||
		e.StatusCode == http.StatusServiceUnavailable
}

// do issues a request and decodes a JSON body into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func apiError(resp *http.Response) error {
	apiErr := &APIError{StatusCode: resp.StatusCode}
	var e service.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
		apiErr.Message = e.Error
	} else {
		apiErr.Message = resp.Status
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// Submit posts a job spec and returns the daemon's scheduling decision.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (service.SubmitResponse, error) {
	var out service.SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &out)
	return out, err
}

// Backoff parameterizes SubmitWait's retry pacing for retryable
// rejections (429/503) that carry no Retry-After hint. It is the same
// capped jittered exponential the cluster layer uses for peer
// replication, re-exported here so existing callers keep compiling.
type Backoff = cluster.Backoff

// SubmitWait submits with bounded retries on retryable rejections
// (429 backpressure/rate limiting, 503 draining/overloaded): it honours
// Retry-After when the server supplies one, otherwise paces itself with
// the default capped jittered exponential Backoff, and gives up when ctx
// expires or the backoff's MaxElapsed budget is spent. Non-retryable
// errors return immediately.
func (c *Client) SubmitWait(ctx context.Context, spec service.JobSpec) (service.SubmitResponse, error) {
	return c.SubmitWaitBackoff(ctx, spec, Backoff{})
}

// SubmitWaitBackoff is SubmitWait with explicit retry pacing.
func (c *Client) SubmitWaitBackoff(ctx context.Context, spec service.JobSpec, b Backoff) (service.SubmitResponse, error) {
	b = b.WithDefaults()
	start := time.Now()
	for attempt := 0; ; attempt++ {
		out, err := c.Submit(ctx, spec)
		apiErr, ok := err.(*APIError)
		if err == nil || !ok || !apiErr.IsRetryable() {
			return out, err
		}
		wait := apiErr.RetryAfter
		if wait <= 0 {
			wait = b.Delay(attempt)
		}
		if time.Since(start)+wait > b.MaxElapsed {
			return out, fmt.Errorf("hvcd: submit retries exhausted after %v: %w",
				time.Since(start).Round(time.Millisecond), apiErr)
		}
		select {
		case <-ctx.Done():
			return out, ctx.Err()
		case <-time.After(wait):
		}
	}
}

// Job fetches one job's status (including the report once done).
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var out service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// Jobs lists all jobs known to the daemon (reports elided).
func (c *Client) Jobs(ctx context.Context) ([]service.JobStatus, error) {
	var out []service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Watch polls the job until it reaches a terminal state and returns the
// final status. poll <= 0 defaults to 100ms.
func (c *Client) Watch(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case service.StateDone, service.StateFailed, service.StateCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Timeline streams the job's NDJSON interval time-series, invoking fn
// for each interval as it arrives. With follow, the stream tracks a
// running job until it finishes; otherwise it returns the intervals
// recorded so far. A non-nil error from fn aborts the stream.
func (c *Client) Timeline(ctx context.Context, id string, follow bool, fn func(stats.Interval) error) error {
	url := c.base + "/v1/jobs/" + id + "/timeline"
	if !follow {
		url += "?follow=0"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var iv stats.Interval
		if err := json.Unmarshal(line, &iv); err != nil {
			return fmt.Errorf("timeline: bad interval line: %w", err)
		}
		if err := fn(iv); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Orgs fetches the organization and workload catalog.
func (c *Client) Orgs(ctx context.Context) (service.CatalogResponse, error) {
	var out service.CatalogResponse
	err := c.do(ctx, http.MethodGet, "/v1/orgs", nil, &out)
	return out, err
}

// Cluster fetches the daemon's cluster view: its node identity and,
// when clustering is enabled, the membership with per-peer health.
func (c *Client) Cluster(ctx context.Context) (service.ClusterResponse, error) {
	var out service.ClusterResponse
	err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &out)
	return out, err
}

// Experiments fetches the experiment registry listing.
func (c *Client) Experiments(ctx context.Context) ([]service.ExperimentInfo, error) {
	var out []service.ExperimentInfo
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out)
	return out, err
}

// Health fetches /healthz. A draining daemon answers 503 but still
// reports its body, so that case is not an error here.
func (c *Client) Health(ctx context.Context) (service.HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return service.HealthResponse{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return service.HealthResponse{}, err
	}
	defer resp.Body.Close()
	var out service.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	return out, nil
}

// Ready fetches /readyz. Like Health, the 503 a draining or overloaded
// daemon answers still carries a body, so that case is not an error
// here — inspect the returned Status/Breaker fields.
func (c *Client) Ready(ctx context.Context) (service.ReadyResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return service.ReadyResponse{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return service.ReadyResponse{}, err
	}
	defer resp.Body.Close()
	var out service.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	return out, nil
}

// Metrics fetches /metrics and returns the daemon's own counter block.
func (c *Client) Metrics(ctx context.Context) (service.MetricsSnapshot, error) {
	var all map[string]json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &all); err != nil {
		return service.MetricsSnapshot{}, err
	}
	var out service.MetricsSnapshot
	raw, ok := all["hvcd"]
	if !ok {
		return out, fmt.Errorf("metrics: no hvcd block in response")
	}
	err := json.Unmarshal(raw, &out)
	return out, err
}

// MetricsProm fetches /metrics in Prometheus text exposition format.
func (c *Client) MetricsProm(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// TimelineSSE streams the job's timeline as Server-Sent Events, invoking
// fn for each interval. lastEventID >= 0 resumes the stream after that
// interval index (the SSE id of the last frame already seen); pass -1 to
// stream from the beginning. The server's terminal "done" event ends the
// stream without an error.
func (c *Client) TimelineSSE(ctx context.Context, id string, lastEventID int, follow bool, fn func(stats.Interval) error) error {
	url := c.base + "/v1/jobs/" + id + "/timeline"
	if !follow {
		url += "?follow=0"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}

	// Minimal SSE parser: accumulate field lines until a blank line ends
	// the event, then dispatch. Only the fields the server emits (event,
	// id, data) are interpreted; unknown fields are ignored per the spec.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event, data string
	dispatch := func() error {
		defer func() { event, data = "", "" }()
		if data == "" || event == "done" {
			return nil
		}
		var iv stats.Interval
		if err := json.Unmarshal([]byte(data), &iv); err != nil {
			return fmt.Errorf("timeline sse: bad data frame: %w", err)
		}
		return fn(iv)
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := dispatch(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return dispatch() // stream may end without a trailing blank line
}
