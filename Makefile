# Build/CI entry points. `make ci` is the gate: vet plus the full test
# suite under the race detector (the sweep runner is concurrent).
GO ?= go

.PHONY: all build test race vet ci parity invariants fuzz-smoke service-race sim-race cluster-race chaos metrics-lint staticcheck govulncheck bench bench-hotpath bench-check bench-all bench-service bench-cluster sweep sweep-full clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The heavy simulation shape tests skip themselves under -race (they
# validate numerics, not concurrency, and are 10x+ slower instrumented);
# the runner's concurrency is still exercised end to end by the tests in
# experiments/runner_test.go. `ci` therefore runs both the plain suite
# and the race-instrumented one.
race:
	$(GO) test -race ./...

# Set BENCH_CHECK=1 to also gate hot-path throughput against the
# committed BENCH_hotpath.json (off by default: benchmark wall time and
# machine-to-machine variance don't belong in every CI run).
ci: vet staticcheck govulncheck test race service-race sim-race cluster-race chaos metrics-lint parity invariants fuzz-smoke $(if $(BENCH_CHECK),bench-check)

# service-race runs the hvcd service integration suite alone under the
# race detector: concurrent clients submitting/watching/cancelling jobs
# against a live worker pool is the most race-prone surface in the repo,
# so it gets its own CI line even though `race` also covers it.
service-race:
	$(GO) test -race -count=1 ./internal/service/...

# cluster-race runs the multi-node cluster suites alone under the race
# detector: rendezvous ownership, peer fetch/replication over live HTTP,
# cluster-wide dedup and the owner-routing balancer — the cross-node
# paths where a lock held across a network call would deadlock or race.
cluster-race:
	$(GO) test -race -count=1 -run 'TestCluster|TestBalancer' ./internal/service
	$(GO) test -race -count=1 ./internal/service/cluster ./internal/service/client

# chaos runs the deterministic service-chaos suite under the race
# detector: seeded store write faults (fail/tear/bit-flip), jobs blowing
# their deadlines, an overload-breaker trip, mid-stream client
# disconnects, and cluster peer faults (owner down/slow/corrupt, plus a
# real owner kill mid-workload), each asserting no corrupt record is
# served, no watcher deadlocks, no job fails for a peer's sins, and the
# daemon converges back to healthy.
chaos:
	$(GO) test -race -count=1 ./internal/service/chaos

# metrics-lint boots an in-process daemon, runs jobs through it, scrapes
# GET /metrics as a Prometheus client would and validates the exposition
# is well-formed (TYPE lines, name grammar, cumulative le buckets, +Inf
# == _count) with the repo's own parser — no external tooling required.
metrics-lint:
	$(GO) test -run TestMetricsLint -count=1 ./internal/service

# sim-race runs the parallel run-loop parity test under the race
# detector at two scheduler widths: narrow (GOMAXPROCS=2 — maximal
# token-ring handoff contention, workers constantly preempting each
# other) and wide (GOMAXPROCS=8 — every per-core worker goroutine truly
# parallel). `race` already covers the test at the default width; these
# two pins keep both extremes exercised.
sim-race:
	GOMAXPROCS=2 $(GO) test -race -count=1 -run TestParallelRunMatchesSerial ./internal/sim
	GOMAXPROCS=8 $(GO) test -race -count=1 -run TestParallelRunMatchesSerial ./internal/sim

# staticcheck/govulncheck run when the tools are installed and skip with a
# notice otherwise — the build environment is intentionally hermetic (no
# network, no toolchain downloads), so their absence must not fail ci.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck: not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# parity runs the golden refactor gate on its own: every organization's
# full stat table must stay byte-identical to the recorded golden file,
# at jobs=1 and jobs=8.
parity:
	$(GO) test -run TestGoldenParity -count=1 ./experiments

# invariants runs the fault-injection suite on its own: every
# organization under every fault type with the runtime invariant checker
# attached, plus the seeded-determinism golden.
invariants:
	$(GO) test -count=1 ./internal/fault
	$(GO) test -run 'TestGoldenFaultSweep|TestCheckpointResume' -count=1 ./experiments

# fuzz-smoke gives each fuzz target a short randomized budget on top of
# its checked-in corpus — enough to catch regressions in the parsing and
# encoding invariants without turning CI into a fuzzing campaign.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReaderNeverPanics -fuzztime=10s ./internal/trace
	$(GO) test -run=NONE -fuzz=FuzzTraceRoundTrip -fuzztime=10s ./internal/trace
	$(GO) test -run=NONE -fuzz=FuzzPTEEncodeDecode -fuzztime=10s ./internal/pagetable
	$(GO) test -run=NONE -fuzz=FuzzMapLookupAgree -fuzztime=10s ./internal/pagetable

# bench runs the per-experiment benchmarks and the full-sweep benchmark,
# which writes BENCH_sweep.json (wall-clock seconds per Quick sweep) for
# tracking the perf trajectory.
bench:
	$(GO) test -run=NONE -bench=BenchmarkQuickFullSweep -benchtime=1x .

# bench-hotpath compares the scalar and batched access paths on every
# organization and writes BENCH_hotpath.json: refs/sec per organization
# at the simulator's default chunk, the speedup over the recorded
# pre-refactor scalar baseline, and a batch chunk-size sweep.
bench-hotpath:
	$(GO) test -run=NONE -bench=BenchmarkHotPath -benchtime=1x . -chunks 64,128,256

# bench-check re-measures the hot path into a temp file and fails when
# any organization's batched refs/sec regressed more than 10% against the
# committed BENCH_hotpath.json. The committed file is left untouched.
bench-check:
	TMP=$$(mktemp) && \
	BENCH_HOTPATH_OUT=$$TMP $(GO) test -run=NONE -bench=BenchmarkHotPath -benchtime=1x . && \
	$(GO) run ./cmd/benchcheck -base BENCH_hotpath.json -new $$TMP -tolerance 0.10 && \
	rm -f $$TMP

bench-all:
	$(GO) test -run=NONE -bench=. -benchmem .

# bench-service measures sustained job throughput through the daemon:
# start hvcd on a scratch port, drive it with `hvcctl bench` (fresh phase
# then cache-served phase), record BENCH_service.json, shut down.
bench-service: build
	$(GO) build -o /tmp/hvcd ./cmd/hvcd && $(GO) build -o /tmp/hvcctl ./cmd/hvcctl
	/tmp/hvcd -addr 127.0.0.1:8078 -quiet & HVCD=$$!; \
	sleep 1; \
	/tmp/hvcctl -addr http://127.0.0.1:8078 bench -c 8 -n 32 -out BENCH_service.json; \
	RC=$$?; kill $$HVCD 2>/dev/null; exit $$RC

# bench-cluster measures the multi-node cluster: in-process 1/2/4-node
# clusters on loopback, a capacity-paced fresh-throughput scaling phase,
# a shared-key phase proving cluster-wide dedup (one simulation per
# unique key, peer fetches everywhere else), and a peer-hit vs local-hit
# latency comparison. Writes BENCH_cluster.json.
bench-cluster:
	$(GO) run ./cmd/hvcctl bench-cluster -out BENCH_cluster.json

# sweep regenerates every table/figure at Quick scale on all cores;
# sweep-full runs the paper-length windows.
sweep:
	$(GO) run ./cmd/tablegen -exp all

sweep-full:
	$(GO) run ./cmd/tablegen -exp all -full

# BENCH_hotpath.json is checked in as the recorded hot-path trajectory,
# so clean leaves it alone; bench-hotpath rewrites it in place.
clean:
	rm -f BENCH_sweep.json
