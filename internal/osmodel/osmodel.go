// Package osmodel models the operating system functions the paper's
// hardware relies on: address space and ASID management, eager contiguous
// (segment-backed) and demand-paged memory allocation, synonym page
// creation with Bloom filter maintenance and shootdowns, read-only content
// sharing with copy-on-write (Section III-D), and DMA page registration.
//
// Hardware-visible side effects (TLB shootdowns, cache flushes, filter
// reloads) are delivered through a ShootdownSink so the MMU models can
// observe them without a dependency cycle.
package osmodel

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/mem"
	"hybridvc/internal/pagetable"
	"hybridvc/internal/segment"
	"hybridvc/internal/stats"
	"hybridvc/internal/synfilter"
)

// ShootdownSink receives OS-initiated hardware maintenance operations.
type ShootdownSink interface {
	// TLBShootdown invalidates the translation in every core's TLBs.
	TLBShootdown(asid addr.ASID, vpn uint64)
	// FlushPage removes a page's lines from the cache hierarchy.
	FlushPage(page addr.Name)
	// SetPagePerm updates the permission bits on cached copies of a page.
	SetPagePerm(page addr.Name, perm addr.Perm)
	// FilterUpdate notifies cores running asid that its synonym filter
	// changed and per-core filter storage must reload.
	FilterUpdate(asid addr.ASID)
	// FlushASID removes every translation and cached line of the address
	// space (process exit, before the ASID is recycled).
	FlushASID(asid addr.ASID)
}

// nopSink discards maintenance operations (useful before MMU attachment).
type nopSink struct{}

func (nopSink) TLBShootdown(addr.ASID, uint64)   {}
func (nopSink) FlushPage(addr.Name)              {}
func (nopSink) SetPagePerm(addr.Name, addr.Perm) {}
func (nopSink) FilterUpdate(addr.ASID)           {}
func (nopSink) FlushASID(addr.ASID)              {}

// Config parameterizes the kernel.
type Config struct {
	// PhysBytes is the physical memory size.
	PhysBytes uint64
	// VMID is the virtual machine this kernel runs in (0 for native).
	VMID uint32
}

// Kernel is one operating system instance (native, or a guest inside a VM).
type Kernel struct {
	cfg    Config
	Alloc  *mem.Allocator
	Store  *mem.Store
	SegMgr *segment.Manager
	sink   ShootdownSink

	procs    map[addr.ASID]*Process
	nextProc uint32
	// lastASID/lastProc memoize the most recent Process lookup: delayed
	// translation resolves the same ASID for every LLC miss, and the memo
	// turns that map probe into a compare. Exit invalidates the memo.
	lastASID addr.ASID
	lastProc *Process
	// sharedExtents refcounts the physical extents behind ShareAnonymous
	// mappings so they free when the last mapping goes away.
	sharedExtents map[addr.PA]*sharedExtent

	// Shootdowns counts TLB shootdown broadcasts issued.
	Shootdowns stats.Counter
	// FilterUpdates counts synonym filter synchronizations.
	FilterUpdates stats.Counter
	// PageFaults counts demand-paging faults handled.
	PageFaults stats.Counter
	// CoWFaults counts copy-on-write faults handled.
	CoWFaults stats.Counter
}

// NewKernel boots a kernel over the given physical memory.
func NewKernel(cfg Config) *Kernel {
	alloc := mem.NewAllocator(cfg.PhysBytes)
	return &Kernel{
		cfg:           cfg,
		Alloc:         alloc,
		Store:         mem.NewStore(),
		SegMgr:        segment.NewManager(segment.NewNodeArena(alloc)),
		sink:          nopSink{},
		procs:         make(map[addr.ASID]*Process),
		nextProc:      1,
		sharedExtents: make(map[addr.PA]*sharedExtent),
	}
}

// AttachSink registers the hardware maintenance sink.
func (k *Kernel) AttachSink(s ShootdownSink) { k.sink = s }

// VMID returns the kernel's virtual machine identifier.
func (k *Kernel) VMID() uint32 { return k.cfg.VMID }

// Process returns the process with the given ASID, or nil.
func (k *Kernel) Process(asid addr.ASID) *Process {
	if k.lastProc != nil && k.lastASID == asid {
		return k.lastProc
	}
	p := k.procs[asid]
	if p != nil {
		k.lastASID, k.lastProc = asid, p
	}
	return p
}

// ASIDs returns the address space identifiers of all live processes.
func (k *Kernel) ASIDs() []addr.ASID {
	out := make([]addr.ASID, 0, len(k.procs))
	for asid := range k.procs {
		out = append(out, asid)
	}
	return out
}

// ShootdownPage broadcasts a TLB shootdown for (asid, vpn) without any
// page-table change — the spurious-invalidation case real kernels hit when
// batching or deduplicating shootdown IPIs conservatively. The translation
// structures drop the entry and the next access re-walks the (unchanged)
// page tables, so correctness is unaffected; fault injectors use it to
// model shootdown storms.
func (k *Kernel) ShootdownPage(asid addr.ASID, vpn uint64) {
	k.sink.TLBShootdown(asid, vpn)
	k.Shootdowns.Inc()
}

// sharedExtent is a refcounted physical extent backing a shared mapping.
type sharedExtent struct {
	frames uint64
	refs   int
}

// releaseShared drops one reference on the shared extent at pa, freeing the
// frames when the last mapping disappears.
func (k *Kernel) releaseShared(pa addr.PA) {
	e, ok := k.sharedExtents[pa]
	if !ok {
		return
	}
	e.refs--
	if e.refs == 0 {
		k.Alloc.Free(pa, e.frames)
		delete(k.sharedExtents, pa)
	}
}

// Region is one virtual memory area of a process.
type Region struct {
	Start  addr.VA
	Length uint64
	Perm   addr.Perm
	// Shared marks a synonym (r/w shared) region.
	Shared bool
	// Demand marks demand-paged regions; others are eagerly backed.
	Demand bool
	// Segments lists the backing segments of eager regions.
	Segments []*segment.Segment
	// Reservation is set for reservation-backed regions (MmapReserved):
	// a contiguous physical extent whose chunks promote to segments on
	// first touch.
	Reservation *Reservation
	// sharedPA is the refcounted extent start for ShareAnonymous regions.
	sharedPA addr.PA
}

// End returns one past the region's last address.
func (r *Region) End() addr.VA { return r.Start + addr.VA(r.Length) }

// Process is one address space.
type Process struct {
	k    *Kernel
	ASID addr.ASID
	PT   *pagetable.Tables
	// Filter is the OS master copy of the process's synonym filter.
	Filter *synfilter.Filter
	// SynonymRanges lists live synonym ranges (for filter rebuilds).
	SynonymRanges []synfilter.Range

	Regions []*Region
	vaNext  addr.VA
	shmNext addr.VA

	// TouchedPages tracks distinct pages accessed (utilization metrics).
	TouchedPages map[uint64]struct{}
	// SharedAccesses and TotalAccesses drive the Table I ratios.
	SharedAccesses stats.Counter
	TotalAccesses  stats.Counter
}

// userBase is where private mmap regions start (a typical mmap_base).
const userBase = addr.VA(0x0000_1000_0000)

// shmBase is where shared (synonym) mappings start. Keeping shared
// mappings in their own high area — as Linux does for shmat/shared mmaps —
// matters for the synonym filter: a shared range saturates the Bloom
// filter bits of its own granules, and interleaving private data into the
// same coarse (16 MiB) granules would turn all of it into false positives.
const shmBase = addr.VA(0x7000_0000_0000)

// NewProcess creates an address space with a fresh ASID, page tables, and
// a cleared synonym filter.
func (k *Kernel) NewProcess() (*Process, error) {
	if k.nextProc > addr.MaxProc {
		return nil, fmt.Errorf("osmodel: out of process identifiers")
	}
	asid := addr.MakeASID(k.cfg.VMID, k.nextProc)
	k.nextProc++
	pt, err := pagetable.New(k.Alloc, k.Store)
	if err != nil {
		return nil, err
	}
	p := &Process{
		k:            k,
		ASID:         asid,
		PT:           pt,
		Filter:       synfilter.New(),
		vaNext:       userBase,
		shmNext:      shmBase,
		TouchedPages: make(map[uint64]struct{}),
	}
	k.procs[asid] = p
	return p, nil
}

// MmapOpts controls allocation policy.
type MmapOpts struct {
	// Demand defers physical allocation to first touch; the default is the
	// paper's eager allocation, which allocates contiguous segments
	// immediately (Section IV-B).
	Demand bool
	// MaxFragments bounds how many segments an eager allocation may be
	// split into when no single contiguous extent is available (0 = 16).
	MaxFragments int
	// HugePages backs the region with 2 MiB mappings (eager only): the
	// length rounds up to 2 MiB, the VA and PA align to 2 MiB, and the
	// page tables use PS-bit leaves — the conventional mitigation for
	// TLB reach that the hybrid design is compared against.
	HugePages bool
}

// Mmap allocates a virtual region of length bytes with the given
// permission and returns its start address.
func (p *Process) Mmap(length uint64, perm addr.Perm, opts MmapOpts) (addr.VA, error) {
	if length == 0 {
		return 0, fmt.Errorf("osmodel: zero-length mmap")
	}
	length = (length + addr.PageSize - 1) &^ uint64(addr.PageSize-1)
	if opts.HugePages {
		if opts.Demand {
			return 0, fmt.Errorf("osmodel: huge pages require eager backing")
		}
		length = (length + addr.HugePageSize - 1) &^ uint64(addr.HugePageSize-1)
		p.vaNext = (p.vaNext + addr.HugePageSize - 1) &^ addr.VA(addr.HugePageSize-1)
	}
	start := p.vaNext
	p.vaNext += addr.VA(length)
	// Keep regions apart by one guard page so segments never touch.
	p.vaNext += addr.PageSize

	r := &Region{Start: start, Length: length, Perm: perm, Demand: opts.Demand}
	if opts.HugePages {
		if err := p.backHuge(r); err != nil {
			return 0, err
		}
	} else if !opts.Demand {
		if err := p.backEagerly(r, opts.MaxFragments); err != nil {
			return 0, err
		}
	}
	p.Regions = append(p.Regions, r)
	return start, nil
}

// backHuge eagerly backs the region with 2 MiB mappings over one
// 2 MiB-aligned contiguous extent.
func (p *Process) backHuge(r *Region) error {
	const hugeFrames = addr.HugePageSize / addr.PageSize
	frames := r.Length / addr.PageSize
	pa, ok := p.k.Alloc.AllocContiguousAligned(frames, hugeFrames)
	if !ok {
		return fmt.Errorf("osmodel: cannot back %d frames 2MiB-aligned", frames)
	}
	seg, err := p.k.SegMgr.Allocate(p.ASID, r.Start, r.Length, pa, r.Perm)
	if err != nil {
		p.k.Alloc.Free(pa, frames)
		return err
	}
	r.Segments = append(r.Segments, seg)
	for off := uint64(0); off < r.Length; off += addr.HugePageSize {
		if err := p.PT.MapHuge(r.Start+addr.VA(off), pa+addr.PA(off), r.Perm, false); err != nil {
			return err
		}
	}
	return nil
}

// backEagerly allocates contiguous physical extents for the whole region,
// creating segments and leaf page table entries. When one extent is not
// available it recursively halves the request, modelling an OS compacting
// allocator under external fragmentation.
func (p *Process) backEagerly(r *Region, maxFragments int) error {
	if maxFragments <= 0 {
		maxFragments = 16
	}
	type piece struct {
		va     addr.VA
		frames uint64
	}
	pending := []piece{{r.Start, r.Length / addr.PageSize}}
	for len(pending) > 0 {
		pc := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		pa, ok := p.k.Alloc.AllocContiguous(pc.frames)
		if !ok {
			if pc.frames == 1 || len(r.Segments)+len(pending)+2 > maxFragments {
				return fmt.Errorf("osmodel: cannot back %d frames (fragmentation)", pc.frames)
			}
			half := pc.frames / 2
			pending = append(pending,
				piece{pc.va + addr.VA((pc.frames-half)*addr.PageSize), half},
				piece{pc.va, pc.frames - half})
			continue
		}
		seg, err := p.k.SegMgr.Allocate(p.ASID, pc.va, pc.frames*addr.PageSize, pa, r.Perm)
		if err != nil {
			p.k.Alloc.Free(pa, pc.frames)
			return err
		}
		r.Segments = append(r.Segments, seg)
		for f := uint64(0); f < pc.frames; f++ {
			va := pc.va + addr.VA(f*addr.PageSize)
			if err := p.PT.Map(va, pa+addr.PA(f*addr.PageSize), r.Perm, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// FindRegion returns the region containing va, or nil.
func (p *Process) FindRegion(va addr.VA) *Region {
	for _, r := range p.Regions {
		if va >= r.Start && va < r.End() {
			return r
		}
	}
	return nil
}

// HandleFault services a page fault at va: demand-paging allocation or a
// copy-on-write break. It reports whether the fault was legal.
func (p *Process) HandleFault(va addr.VA, isWrite bool) bool {
	r := p.FindRegion(va)
	if r == nil {
		return false
	}
	pte, mapped := p.PT.Lookup(va.PageAligned())
	if !mapped {
		if r.Reservation != nil {
			if p.promoteChunk(r, va) {
				p.k.PageFaults.Inc()
				return true
			}
			return false
		}
		if !r.Demand {
			return false // eager regions are always mapped
		}
		frame, ok := p.k.Alloc.AllocFrame()
		if !ok {
			return false
		}
		if err := p.PT.Map(va.PageAligned(), frame, r.Perm, r.Shared); err != nil {
			return false
		}
		p.k.PageFaults.Inc()
		return true
	}
	if isWrite && pte.Perm == addr.PermRO && r.Perm == addr.PermRW {
		// Copy-on-write break of a content-shared page.
		return p.breakCoW(va.PageAligned())
	}
	return false
}

// Touch records an access for utilization and shared-ratio accounting.
func (p *Process) Touch(va addr.VA, r *Region) {
	p.TouchedPages[va.Page()] = struct{}{}
	p.TotalAccesses.Inc()
	if r != nil && r.Shared {
		p.SharedAccesses.Inc()
	}
	if r != nil {
		for _, s := range r.Segments {
			if s.Contains(p.ASID, va) {
				s.Touch(va)
				break
			}
		}
	}
}

// SharedAreaRatio returns (r/w shared pages) / (total mapped pages) — the
// Table I "shared area" metric.
func (p *Process) SharedAreaRatio() float64 {
	var shared, total uint64
	for _, r := range p.Regions {
		pages := r.Length / addr.PageSize
		total += pages
		if r.Shared {
			shared += pages
		}
	}
	return stats.Ratio(shared, total)
}

// SharedAccessRatio returns the fraction of accesses that touched r/w
// shared regions — the Table I "shared access" metric.
func (p *Process) SharedAccessRatio() float64 {
	return stats.Ratio(p.SharedAccesses.Value(), p.TotalAccesses.Value())
}

// Utilization returns touched pages / eagerly allocated pages (Table III).
func (p *Process) Utilization() float64 {
	var allocated uint64
	var touched uint64
	for _, r := range p.Regions {
		for _, s := range r.Segments {
			allocated += s.Pages()
			touched += uint64(len(s.Touched))
		}
	}
	return stats.Ratio(touched, allocated)
}

// MaxSegments returns the high-water segment count across the system.
func (k *Kernel) MaxSegments() int { return k.SegMgr.MaxUsed }
