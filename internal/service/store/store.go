// Package store is the hvcd daemon's durable second result tier: a
// content-addressed on-disk store keyed by the same canonical SHA-256
// the in-memory LRU uses, so a restarted daemon serves warm cache hits
// instead of re-simulating everything it knew before the restart.
//
// Durability discipline (DESIGN.md §14):
//
//   - Writes are atomic: encode → tmp file in the store dir → write →
//     fsync → rename onto the final name → fsync the directory. A crash
//     at any point leaves either the old record, the new record, or no
//     record — never a half-written one under the final name.
//   - Every record is framed with a versioned header carrying a CRC-32C
//     checksum over the encoded payload. A record that fails the magic,
//     version, length or checksum on read is CORRUPT: it is moved into
//     the quarantine subdirectory (never deleted — it is evidence) and
//     the lookup reports a miss. A corrupt record is never served.
//   - Records expire TTL after their write time and are evicted oldest
//     first when the store exceeds its byte budget. Both are enforced at
//     open and on the write path, so the store converges to its bounds
//     without a background goroutine.
//
// The index (key → size/mtime) lives in memory, so a miss costs a map
// lookup, not disk I/O; only hits read the file back.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridvc/internal/stats"
)

// Record is one durable result: the byte-exact report (sim jobs) or
// rendered tables (sweep jobs), the recorded timeline intervals so a
// disk-served job can still replay its stream, and the lineage ID of the
// run that produced it, so provenance chains survive restarts.
type Record struct {
	// Key is the content address the record was stored under; it is
	// written into the payload and verified on read, so a record file
	// renamed onto the wrong key is treated as corrupt, not served.
	Key       string           `json:"key"`
	Report    json.RawMessage  `json:"report,omitempty"`
	Tables    []string         `json:"tables,omitempty"`
	Intervals []stats.Interval `json:"intervals,omitempty"`
	Lineage   string           `json:"lineage,omitempty"`
	// Node is the cluster node ID that originally simulated the result
	// (empty for records written before clustering or with it disabled).
	// It rides the payload so provenance survives peer replication and
	// restarts; absent in old records, which decode fine.
	Node string `json:"node,omitempty"`
}

// Hooks intercept store writes for deterministic fault injection (the
// chaos harness seeds them); the zero value intercepts nothing.
type Hooks struct {
	// BeforeWrite may fail a Put outright — a simulated disk error. The
	// store counts it as a write error and the caller treats the put as
	// best-effort lost.
	BeforeWrite func(key string) error
	// TransformRecord receives the full framed record encoding and
	// returns the bytes that actually hit the disk — a simulated torn or
	// bit-flipped write. The durability contract is exercised on the
	// READ side: whatever this mangles must quarantine, never serve.
	TransformRecord func(key string, encoded []byte) []byte
}

// Options parameterize Open.
type Options struct {
	// Dir is the store directory (created if absent, along with its
	// quarantine/ subdirectory).
	Dir string
	// TTL expires records this long after their write time (<= 0 keeps
	// records until size eviction).
	TTL time.Duration
	// MaxBytes bounds the records' total size; past it the oldest
	// records are evicted (<= 0 is unbounded).
	MaxBytes int64
	// Hooks inject faults; see Hooks.
	Hooks Hooks
}

// Record framing: a fixed header followed by the JSON payload.
//
//	magic   [4]byte  "HVCR"
//	version uint16   recordVersion
//	_       uint16   reserved (zero)
//	length  uint64   payload byte count
//	crc     uint32   CRC-32C (Castagnoli) over the payload
const (
	headerSize    = 20
	recordVersion = 1
)

var (
	recordMagic = [4]byte{'H', 'V', 'C', 'R'}
	crcTable    = crc32.MakeTable(crc32.Castagnoli)
)

// ErrCorrupt wraps every corruption reason a read can hit. Callers see
// it only through Metrics — Get turns corruption into a quarantined miss.
var ErrCorrupt = errors.New("corrupt store record")

// Metrics is the store's counter snapshot, exposed through the daemon's
// /metrics families (hvcd_store_*).
type Metrics struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors"`
	Evictions   uint64 `json:"evictions"`
	Corruptions uint64 `json:"corruptions"`
	Records     int    `json:"records"`
	Bytes       int64  `json:"bytes"`
}

// Store is the on-disk tier. All methods are safe for concurrent use.
type Store struct {
	dir      string
	ttl      time.Duration
	maxBytes int64
	hooks    Hooks
	now      func() time.Time // injectable for TTL tests

	mu    sync.Mutex
	index map[string]indexEntry
	bytes int64
	qseq  uint64 // quarantine filename disambiguator

	hits        atomic.Uint64
	misses      atomic.Uint64
	writes      atomic.Uint64
	writeErrors atomic.Uint64
	evictions   atomic.Uint64
	corruptions atomic.Uint64
}

type indexEntry struct {
	size  int64
	mtime time.Time
}

const (
	recordSuffix  = ".rec"
	quarantineDir = "quarantine"
)

// Open creates/opens the store directory, rebuilds the in-memory index
// from the resident records, and enforces TTL and the byte budget on
// whatever it finds (a record that expired while the daemon was down is
// removed now, not served later).
func Open(o Options) (*Store, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("store: empty dir")
	}
	if err := os.MkdirAll(filepath.Join(o.Dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      o.Dir,
		ttl:      o.TTL,
		maxBytes: o.MaxBytes,
		hooks:    o.Hooks,
		now:      time.Now,
		index:    make(map[string]indexEntry),
	}
	entries, err := os.ReadDir(o.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, recordSuffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with removal
		}
		key := strings.TrimSuffix(name, recordSuffix)
		s.index[key] = indexEntry{size: info.Size(), mtime: info.ModTime()}
		s.bytes += info.Size()
	}
	s.mu.Lock()
	s.expireLocked()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+recordSuffix)
}

// encode frames a record: header + JSON payload.
func encode(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode %s: %w", rec.Key, err)
	}
	buf := make([]byte, headerSize+len(payload))
	copy(buf[0:4], recordMagic[:])
	binary.BigEndian.PutUint16(buf[4:6], recordVersion)
	binary.BigEndian.PutUint64(buf[8:16], uint64(len(payload)))
	binary.BigEndian.PutUint32(buf[16:20], crc32.Checksum(payload, crcTable))
	copy(buf[headerSize:], payload)
	return buf, nil
}

// decode verifies the framing and returns the payload record. Any
// mismatch — magic, version, length, checksum, payload JSON, or a key
// that is not the one the caller looked up — wraps ErrCorrupt.
func decode(key string, data []byte) (Record, error) {
	var rec Record
	if len(data) < headerSize {
		return rec, fmt.Errorf("%w: %d bytes, want >= %d header", ErrCorrupt, len(data), headerSize)
	}
	if [4]byte(data[0:4]) != recordMagic {
		return rec, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[0:4])
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != recordVersion {
		return rec, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, recordVersion)
	}
	length := binary.BigEndian.Uint64(data[8:16])
	if length != uint64(len(data)-headerSize) {
		return rec, fmt.Errorf("%w: header length %d, file payload %d", ErrCorrupt, length, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if sum := crc32.Checksum(payload, crcTable); sum != binary.BigEndian.Uint32(data[16:20]) {
		return rec, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	if rec.Key != key {
		return rec, fmt.Errorf("%w: record key %q under file key %q", ErrCorrupt, rec.Key, key)
	}
	return rec, nil
}

// Put durably stores a record under its key, replacing any existing
// record, then enforces the byte budget. A failed write leaves the
// previous record (if any) intact and counts as a write error; the
// store is a cache, so callers treat Put as best-effort.
func (s *Store) Put(rec Record) error {
	if rec.Key == "" {
		return fmt.Errorf("store: put with empty key")
	}
	data, err := encode(rec)
	if err != nil {
		s.writeErrors.Add(1)
		return err
	}
	if h := s.hooks.BeforeWrite; h != nil {
		if err := h(rec.Key); err != nil {
			s.writeErrors.Add(1)
			return fmt.Errorf("store: write %s: %w", rec.Key, err)
		}
	}
	if h := s.hooks.TransformRecord; h != nil {
		data = h(rec.Key, data)
	}
	if err := s.writeAtomic(rec.Key, data); err != nil {
		s.writeErrors.Add(1)
		return err
	}
	s.writes.Add(1)

	s.mu.Lock()
	if old, ok := s.index[rec.Key]; ok {
		s.bytes -= old.size
	}
	s.index[rec.Key] = indexEntry{size: int64(len(data)), mtime: s.now()}
	s.bytes += int64(len(data))
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// writeAtomic is the tmp+fsync+rename+dirsync dance.
func (s *Store) writeAtomic(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("store: rename %s: %w", key, err)
	}
	syncDir(s.dir)
	return nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry is
// durable. Best-effort: some filesystems refuse to sync directories and
// the data fsync already happened.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Get returns the record for key. Misses are cheap (in-memory index);
// expired records are removed and report a miss; a record that fails
// verification is quarantined and reports a miss — corrupt bytes are
// never served.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.Lock()
	e, ok := s.index[key]
	if ok && s.expired(e) {
		s.removeLocked(key, e)
		s.evictions.Add(1)
		ok = false
	}
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return Record{}, false
	}

	data, err := os.ReadFile(s.path(key))
	if err != nil {
		// Raced with eviction, or the file vanished under us: a miss.
		s.mu.Lock()
		if cur, ok := s.index[key]; ok {
			s.removeFromIndexLocked(key, cur)
		}
		s.mu.Unlock()
		s.misses.Add(1)
		return Record{}, false
	}
	rec, err := decode(key, data)
	if err != nil {
		s.quarantine(key, err)
		s.misses.Add(1)
		return Record{}, false
	}
	s.hits.Add(1)
	return rec, true
}

// quarantine moves a corrupt record aside — it is never deleted (the
// bytes are evidence) and never served again under its key.
func (s *Store) quarantine(key string, cause error) {
	s.mu.Lock()
	s.qseq++
	dst := filepath.Join(s.dir, quarantineDir, fmt.Sprintf("%s.%d%s", key, s.qseq, recordSuffix))
	if err := os.Rename(s.path(key), dst); err != nil {
		// Could not move it aside; remove it instead so it cannot be
		// re-read. Losing evidence beats re-serving a corrupt miss path.
		os.Remove(s.path(key))
	}
	if e, ok := s.index[key]; ok {
		s.removeFromIndexLocked(key, e)
	}
	s.mu.Unlock()
	s.corruptions.Add(1)
}

// expired reports whether an index entry has outlived the TTL.
func (s *Store) expired(e indexEntry) bool {
	return s.ttl > 0 && s.now().Sub(e.mtime) > s.ttl
}

// expireLocked removes every expired record. Caller holds s.mu.
func (s *Store) expireLocked() {
	for key, e := range s.index {
		if s.expired(e) {
			s.removeLocked(key, e)
			s.evictions.Add(1)
		}
	}
}

// evictLocked removes oldest records until the byte budget holds.
// Caller holds s.mu.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	type aged struct {
		key string
		e   indexEntry
	}
	order := make([]aged, 0, len(s.index))
	for key, e := range s.index {
		order = append(order, aged{key, e})
	}
	sort.Slice(order, func(a, b int) bool {
		if !order[a].e.mtime.Equal(order[b].e.mtime) {
			return order[a].e.mtime.Before(order[b].e.mtime)
		}
		return order[a].key < order[b].key // deterministic tie-break
	})
	for _, v := range order {
		if s.bytes <= s.maxBytes {
			return
		}
		s.removeLocked(v.key, v.e)
		s.evictions.Add(1)
	}
}

func (s *Store) removeLocked(key string, e indexEntry) {
	os.Remove(s.path(key))
	s.removeFromIndexLocked(key, e)
}

func (s *Store) removeFromIndexLocked(key string, e indexEntry) {
	delete(s.index, key)
	s.bytes -= e.size
}

// Len returns the resident record count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the resident records' total size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Quarantined returns the quarantine directory's record count (corrupt
// records moved aside since the directory was created, across restarts).
func (s *Store) Quarantined() int {
	entries, err := os.ReadDir(filepath.Join(s.dir, quarantineDir))
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range entries {
		if !de.IsDir() {
			n++
		}
	}
	return n
}

// Metrics snapshots the store counters and gauges.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	records, bytes := len(s.index), s.bytes
	s.mu.Unlock()
	return Metrics{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrors.Load(),
		Evictions:   s.evictions.Load(),
		Corruptions: s.corruptions.Load(),
		Records:     records,
		Bytes:       bytes,
	}
}

// CorruptFile mangles the on-disk record for key in place by truncating
// it to n bytes (n < 0 flips one bit in the middle instead). It exists
// for the chaos/torn-write tests — production code never calls it.
func (s *Store) CorruptFile(key string, n int) error {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if n < 0 {
		if len(data) == 0 {
			return fmt.Errorf("store: empty record %s", key)
		}
		data[len(data)/2] ^= 0x40
		return os.WriteFile(path, data, 0o644)
	}
	if n > len(data) {
		n = len(data)
	}
	return os.WriteFile(path, data[:n], 0o644)
}
