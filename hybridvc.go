// Package hybridvc is a simulator for hybrid virtual caching with
// efficient synonym filtering and scalable delayed translation, a
// reproduction of Park, Heo and Huh (ISCA 2016).
//
// The package is the public facade over the internal substrates: it builds
// complete systems (OS model + memory system organization + timing cores),
// loads named workloads, and runs simulations:
//
//	sys, err := hybridvc.New(hybridvc.Config{Org: hybridvc.HybridManySegSC})
//	if err != nil { ... }
//	if err := sys.LoadWorkload("gups"); err != nil { ... }
//	report, err := sys.Run(1_000_000)
//
// Organizations cover the paper's evaluated design points: the
// conventional physically addressed baseline, delayed page-granularity
// TLBs of various sizes, many-segment delayed translation with and
// without the segment cache, an ideal (free) TLB, RMM- and direct-
// segment-style range translation, an Enigma-style intermediate address
// design, and the virtualized variants (2D-walk baseline and virtualized
// hybrid).
package hybridvc

import (
	"fmt"

	"hybridvc/internal/baseline"
	"hybridvc/internal/core"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/sim"
	"hybridvc/internal/virt"
	"hybridvc/internal/workload"
)

// Organization selects the memory system under test.
type Organization string

// The evaluated organizations.
const (
	// Baseline is the conventional physically addressed system with a
	// two-level TLB (Table IV).
	Baseline Organization = "baseline"
	// Ideal has free address translation (the paper's "ideal TLB").
	Ideal Organization = "ideal"
	// HybridDelayedTLB is hybrid virtual caching with a fixed-granularity
	// delayed TLB (size set by Config.DelayedTLBEntries).
	HybridDelayedTLB Organization = "hybrid-dtlb"
	// HybridManySeg is hybrid virtual caching with many-segment delayed
	// translation, without the segment cache.
	HybridManySeg Organization = "hybrid-manyseg"
	// HybridManySegSC adds the 128-entry segment cache.
	HybridManySegSC Organization = "hybrid-manyseg+sc"
	// Enigma is the intermediate-address-space design: delayed
	// page-granularity translation without a synonym filter.
	Enigma Organization = "enigma"
	// RMM is redundant memory mapping: 32 pre-L1 range entries.
	RMM Organization = "rmm"
	// DirectSegment is a single base/limit/offset segment per process.
	DirectSegment Organization = "direct-segment"
	// OVC is opportunistic virtual caching: only the L1 is virtual, so
	// L1 misses still translate (energy-saving prior work; single-core).
	OVC Organization = "ovc"
	// Virt2D is the virtualized baseline with nested (2D) page walks and
	// a nested-TLB translation cache.
	Virt2D Organization = "virt-2d"
	// VirtHybrid is the virtualized hybrid design (Section V).
	VirtHybrid Organization = "virt-hybrid"
)

// Organizations lists every selectable organization.
func Organizations() []Organization {
	return []Organization{
		Baseline, Ideal, HybridDelayedTLB, HybridManySeg, HybridManySegSC,
		Enigma, RMM, DirectSegment, OVC, Virt2D, VirtHybrid,
	}
}

// Virtualized reports whether the organization runs inside a VM.
func (o Organization) Virtualized() bool { return o == Virt2D || o == VirtHybrid }

// Config assembles a system.
type Config struct {
	// Org selects the memory system organization (default HybridManySegSC).
	Org Organization
	// Cores is the hardware core count (default 1).
	Cores int
	// PhysBytes is the physical (or machine) memory size (default 16 GiB).
	PhysBytes uint64
	// GuestBytes is the VM size for virtualized organizations
	// (default 4 GiB).
	GuestBytes uint64
	// DelayedTLBEntries sizes the delayed TLB for HybridDelayedTLB and
	// Enigma (default 1024).
	DelayedTLBEntries int
	// IndexCacheBytes sizes the index cache (default 32 KiB).
	IndexCacheBytes int
	// LLCBytes overrides the shared LLC capacity (default 2 MiB).
	LLCBytes int
	// Sim configures the timing harness.
	Sim sim.Config
	// Seed drives all workload randomness (default 1).
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.Org == "" {
		c.Org = HybridManySegSC
	}
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.PhysBytes == 0 {
		c.PhysBytes = 16 << 30
	}
	if c.GuestBytes == 0 {
		c.GuestBytes = 4 << 30
	}
	if c.DelayedTLBEntries == 0 {
		c.DelayedTLBEntries = 1024
	}
	if c.IndexCacheBytes == 0 {
		c.IndexCacheBytes = 32 << 10
	}
	if c.Sim.CPU.ROBSize == 0 {
		c.Sim = sim.DefaultConfig()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// System is a ready-to-run simulated machine.
type System struct {
	cfg Config
	// Kernel is the operating system (the guest kernel when virtualized).
	Kernel *osmodel.Kernel
	// Mem is the memory system under test.
	Mem core.MemSystem
	// Hypervisor and VM are set for virtualized organizations.
	Hypervisor *virt.Hypervisor
	VM         *virt.VM

	gens []*workload.Generator
	// LastSim is the harness from the most recent Run.
	LastSim *sim.Simulator
}

// New builds a system for the configuration.
func New(cfg Config) (*System, error) {
	cfg.fillDefaults()
	s := &System{cfg: cfg}

	if cfg.Org.Virtualized() {
		s.Hypervisor = virt.NewHypervisor(cfg.PhysBytes)
		vm, err := s.Hypervisor.NewVM(cfg.GuestBytes, 4)
		if err != nil {
			return nil, err
		}
		s.VM = vm
		s.Kernel = vm.Kernel
	} else {
		s.Kernel = osmodel.NewKernel(osmodel.Config{PhysBytes: cfg.PhysBytes})
	}

	switch cfg.Org {
	case Baseline:
		bc := baseline.DefaultConfig(cfg.Cores)
		applyLLC(&bc.Hier.LLC.SizeBytes, cfg.LLCBytes)
		s.Mem = baseline.NewConventional(bc, s.Kernel)
	case Ideal:
		bc := baseline.DefaultConfig(cfg.Cores)
		applyLLC(&bc.Hier.LLC.SizeBytes, cfg.LLCBytes)
		s.Mem = baseline.NewIdeal(bc, s.Kernel)
	case RMM:
		bc := baseline.DefaultConfig(cfg.Cores)
		applyLLC(&bc.Hier.LLC.SizeBytes, cfg.LLCBytes)
		s.Mem = baseline.NewRMM(bc, s.Kernel)
	case DirectSegment:
		bc := baseline.DefaultConfig(cfg.Cores)
		applyLLC(&bc.Hier.LLC.SizeBytes, cfg.LLCBytes)
		s.Mem = baseline.NewDirectSegment(bc, s.Kernel)
	case OVC:
		if cfg.Cores != 1 {
			return nil, fmt.Errorf("hybridvc: the OVC model is single-core")
		}
		bc := baseline.DefaultConfig(1)
		applyLLC(&bc.Hier.LLC.SizeBytes, cfg.LLCBytes)
		s.Mem = baseline.NewOVC(bc, s.Kernel)
	case HybridDelayedTLB, Enigma:
		hc := core.DefaultHybridConfig(cfg.Cores)
		applyLLC(&hc.Hier.LLC.SizeBytes, cfg.LLCBytes)
		hc.Delayed = core.DelayedPageTLB
		hc.DelayedTLBEntries = cfg.DelayedTLBEntries
		hc.WithSegmentCache = false
		hc.FilterBypass = cfg.Org == Enigma
		s.Mem = core.NewHybridMMU(hc, s.Kernel)
	case HybridManySeg, HybridManySegSC:
		hc := core.DefaultHybridConfig(cfg.Cores)
		applyLLC(&hc.Hier.LLC.SizeBytes, cfg.LLCBytes)
		hc.Delayed = core.DelayedSegments
		hc.WithSegmentCache = cfg.Org == HybridManySegSC
		hc.IndexCacheBytes = cfg.IndexCacheBytes
		s.Mem = core.NewHybridMMU(hc, s.Kernel)
	case Virt2D:
		bc := baseline.DefaultConfig(cfg.Cores)
		applyLLC(&bc.Hier.LLC.SizeBytes, cfg.LLCBytes)
		s.Mem = baseline.NewVirt2D(bc, s.VM)
	case VirtHybrid:
		vc := core.DefaultVirtHybridConfig(cfg.Cores)
		applyLLC(&vc.Hier.LLC.SizeBytes, cfg.LLCBytes)
		vc.IndexCacheBytes = cfg.IndexCacheBytes
		s.Mem = core.NewVirtHybridMMU(vc, s.VM, s.Hypervisor)
	default:
		return nil, fmt.Errorf("hybridvc: unknown organization %q", cfg.Org)
	}
	return s, nil
}

func applyLLC(dst *int, override int) {
	if override > 0 {
		*dst = override
	}
}

// LoadWorkload instantiates the named workload's processes in the system.
func (s *System) LoadWorkload(name string) error {
	spec, err := workload.Get(name)
	if err != nil {
		return err
	}
	return s.LoadSpec(spec)
}

// LoadSpec instantiates a custom workload spec.
func (s *System) LoadSpec(spec workload.Spec) error {
	gens, err := workload.NewGroup(spec, s.Kernel, s.cfg.Seed)
	if err != nil {
		return err
	}
	s.gens = append(s.gens, gens...)
	if ds, ok := s.Mem.(*baseline.DirectSegment); ok {
		for _, g := range gens {
			ds.AssignSegment(g.Proc)
		}
	}
	return nil
}

// Generators returns the loaded workload generators.
func (s *System) Generators() []*workload.Generator { return s.gens }

// Run simulates n instructions per core and returns the report.
//
// Repeated calls CONTINUE the loaded workloads: generators keep their
// stream position (and the memory system keeps its warmed caches, TLBs
// and page tables), while a fresh sim.Simulator — fresh timing cores and
// cycle counts — is built for each call. Two back-to-back Run(n) calls
// therefore measure a cold window followed by a warm window of the same
// stream, not the same window twice; the second report's cycle count is
// not comparable to a fresh system's. For independent, reproducible
// measurements build a new System per run (the experiment registry's
// sweep cells do exactly that).
func (s *System) Run(n uint64) (sim.Report, error) {
	if len(s.gens) == 0 {
		return sim.Report{}, fmt.Errorf("hybridvc: no workload loaded")
	}
	s.LastSim = sim.New(s.cfg.Sim, s.Mem, s.gens)
	return s.LastSim.Run(n), nil
}
