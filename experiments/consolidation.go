package experiments

import (
	"fmt"

	"hybridvc/internal/baseline"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/cpu"
	"hybridvc/internal/sim"
	"hybridvc/internal/stats"
	"hybridvc/internal/virt"
	"hybridvc/internal/workload"
)

// consolidationCell runs the two-VM dual-core consolidation scenario with
// either the 2D-walk baseline or the virtualized hybrid memory system.
func consolidationCell(hybrid bool, n uint64) (uint64, error) {
	wls := [2]string{"mcf", "omnetpp"}
	hv := virt.NewHypervisor(32 << 30)
	vmA, err := hv.NewVM(4<<30, 2)
	if err != nil {
		return 0, err
	}
	vmB, err := hv.NewVM(4<<30, 2)
	if err != nil {
		return 0, err
	}
	var ms core.MemSystem
	if hybrid {
		m := core.NewVirtHybridMMU(core.DefaultVirtHybridConfig(2), vmA, hv)
		m.AddVM(vmB)
		ms = m
	} else {
		v := baseline.NewVirt2D(baseline.Config{
			Hier:   cache.DefaultHierarchyConfig(2),
			DRAM:   baseline.DefaultConfig(2).DRAM,
			Energy: baseline.DefaultConfig(2).Energy,
		}, vmA)
		v.AddVM(vmB)
		ms = v
	}
	var gens []*workload.Generator
	for i, vm := range []*virt.VM{vmA, vmB} {
		g, err := workload.NewGroup(workload.Specs[wls[i]], vm.Kernel, 1)
		if err != nil {
			return 0, fmt.Errorf("consolidation %s: %w", wls[i], err)
		}
		gens = append(gens, g...)
	}
	s := sim.New(sim.Config{CPU: cpu.DefaultConfig(), FetchEvery: 8, Timeslice: 50_000, Interleave: 128}, ms, gens)
	return s.Run(n).Cycles, nil
}

// Consolidation runs two virtual machines on one dual-core processor —
// the server-consolidation scenario Section V targets — comparing the
// 2D-walk baseline against the virtualized hybrid design. VMID-extended
// ASIDs keep the VMs' virtually named lines apart while they share the
// LLC and the delayed translation hardware.
func Consolidation(scale Scale) (*stats.Table, error) {
	n := scale.pick(25_000, 400_000)
	cells := []Cell{
		{Label: "consolidation/2d-baseline", Fn: func() (any, error) { return consolidationCell(false, n) }},
		{Label: "consolidation/virt-hybrid", Fn: func() (any, error) { return consolidationCell(true, n) }},
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	base := res[0].Value.(uint64)
	hyb := res[1].Value.(uint64)
	t := stats.NewTable("VM consolidation: two VMs on a dual-core processor",
		"configuration", "cycles", "speedup")
	t.AddRow("2D-walk baseline", fmt.Sprintf("%d", base), "1.000")
	t.AddRow("virtualized hybrid", fmt.Sprintf("%d", hyb),
		fmt.Sprintf("%.3f", float64(base)/float64(hyb)))
	return t, nil
}
