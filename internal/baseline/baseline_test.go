package baseline

import (
	"math/rand"
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/osmodel"
)

func smallConfig(cores int) Config {
	cfg := DefaultConfig(cores)
	cfg.Hier.L1I = cache.Config{Name: "L1I", SizeBytes: 1 << 10, Ways: 2, HitLatency: 2}
	cfg.Hier.L1D = cache.Config{Name: "L1D", SizeBytes: 1 << 10, Ways: 2, HitLatency: 4}
	cfg.Hier.L2 = cache.Config{Name: "L2", SizeBytes: 4 << 10, Ways: 4, HitLatency: 6}
	cfg.Hier.LLC = cache.Config{Name: "LLC", SizeBytes: 16 << 10, Ways: 8, HitLatency: 27}
	return cfg
}

func setup(t *testing.T) (*osmodel.Kernel, *osmodel.Process) {
	t.Helper()
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	p, err := k.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

func TestConventionalTranslatesAndCachesPhysically(t *testing.T) {
	k, p := setup(t)
	c := NewConventional(smallConfig(1), k)
	va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	res := c.Access(core.Request{Kind: cache.Read, VA: va, Proc: p})
	if res.Fault {
		t.Fatal("fault")
	}
	pa, _ := p.PT.Translate(va)
	if c.Hierarchy().LLC().Probe(addr.PhysName(pa)) == nil {
		t.Error("data not cached physically")
	}
	if c.TLBMissWalks.Value() != 1 {
		t.Errorf("walks = %d", c.TLBMissWalks.Value())
	}
	// Warm access: TLB L1 hit adds no translation latency.
	warm := c.Access(core.Request{Kind: cache.Read, VA: va, Proc: p})
	if warm.Latency != 4 {
		t.Errorf("warm latency = %d, want 4 (L1 cache)", warm.Latency)
	}
	// Every access pays L1 TLB energy.
	if c.Energy().Accesses[0] != 2 {
		t.Errorf("L1 TLB accesses = %d", c.Energy().Accesses[0])
	}
}

func TestConventionalTLBMissLatency(t *testing.T) {
	k, p := setup(t)
	c := NewConventional(smallConfig(1), k)
	va, _ := p.Mmap(64<<20, addr.PermRW, osmodel.MmapOpts{})
	// Touch > 1024 distinct pages to overflow the L2 TLB.
	for i := uint64(0); i < 2048; i++ {
		c.Access(core.Request{Kind: cache.Read, VA: va + addr.VA(i*addr.PageSize), Proc: p})
	}
	if c.TLBMissWalks.Value() < 2000 {
		t.Errorf("walks = %d, want ~2048 (cold pages)", c.TLBMissWalks.Value())
	}
	// Re-touch the early pages: they are long evicted from both TLBs.
	walks0 := c.TLBMissWalks.Value()
	c.Access(core.Request{Kind: cache.Read, VA: va, Proc: p})
	if c.TLBMissWalks.Value() != walks0+1 {
		t.Error("expected a TLB miss walk on an evicted page")
	}
}

func TestConventionalDemandFault(t *testing.T) {
	k, p := setup(t)
	c := NewConventional(smallConfig(1), k)
	va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{Demand: true})
	res := c.Access(core.Request{Kind: cache.Write, VA: va, Proc: p})
	if !res.Fault {
		t.Fatal("no fault on demand page")
	}
	if k.PageFaults.Value() != 1 {
		t.Error("fault not recorded")
	}
	if res2 := c.Access(core.Request{Kind: cache.Write, VA: va, Proc: p}); res2.Fault {
		t.Error("second access faulted")
	}
}

func TestIdealHasNoTranslationCost(t *testing.T) {
	k, p := setup(t)
	i := NewIdeal(smallConfig(1), k)
	va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	i.Access(core.Request{Kind: cache.Read, VA: va, Proc: p})
	warm := i.Access(core.Request{Kind: cache.Read, VA: va, Proc: p})
	if warm.Latency != 4 {
		t.Errorf("warm latency = %d", warm.Latency)
	}
	if i.Energy().Dynamic() != 0 {
		t.Error("ideal charged translation energy")
	}
	if i.Name() != "ideal" {
		t.Error("name")
	}
}

func TestIdealFasterThanConventionalOnTLBThrashing(t *testing.T) {
	run := func(mk func(Config, *osmodel.Kernel) core.MemSystem) uint64 {
		k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
		p, _ := k.NewProcess()
		m := mk(smallConfig(1), k)
		va, _ := p.Mmap(128<<20, addr.PermRW, osmodel.MmapOpts{})
		rng := rand.New(rand.NewSource(3))
		var total uint64
		for i := 0; i < 20000; i++ {
			v := va + addr.VA(rng.Uint64()%(128<<20))
			total += m.Access(core.Request{Kind: cache.Read, VA: v, Proc: p}).Latency
		}
		return total
	}
	conv := run(func(c Config, k *osmodel.Kernel) core.MemSystem { return NewConventional(c, k) })
	ideal := run(func(c Config, k *osmodel.Kernel) core.MemSystem { return NewIdeal(c, k) })
	if ideal >= conv {
		t.Errorf("ideal (%d) not faster than conventional (%d)", ideal, conv)
	}
	// On a TLB-thrashing workload the gap must be substantial.
	if float64(conv-ideal)/float64(conv) < 0.1 {
		t.Errorf("translation overhead only %.1f%%", 100*float64(conv-ideal)/float64(conv))
	}
}

func TestRangeTLBLRU(t *testing.T) {
	k, p := setup(t)
	// Allocate 3 regions => 3 segments.
	var segs []addr.VA
	for i := 0; i < 3; i++ {
		va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
		segs = append(segs, va)
	}
	all := k.SegMgr.Segments(p.ASID)
	rt := NewRangeTLB(2)
	rt.Insert(all[0])
	rt.Insert(all[1])
	if _, ok := rt.Lookup(p.ASID, all[0].Base); !ok {
		t.Fatal("inserted range missing")
	}
	rt.Insert(all[2]) // evicts all[1] (LRU)
	if _, ok := rt.Lookup(p.ASID, all[1].Base); ok {
		t.Error("LRU range not evicted")
	}
	if _, ok := rt.Lookup(p.ASID, all[0].Base); !ok {
		t.Error("MRU range evicted")
	}
	if rt.Misses() != 1 {
		t.Errorf("misses = %d", rt.Misses())
	}
}

func TestRMMThrashesBeyond32Segments(t *testing.T) {
	// The Table III effect: workloads with many segments overwhelm RMM's
	// 32-entry range TLB; workloads with few do not.
	runMPKI := func(nRegions int) float64 {
		k := osmodel.NewKernel(osmodel.Config{PhysBytes: 4 << 30})
		p, _ := k.NewProcess()
		r := NewRMM(smallConfig(1), k)
		var bases []addr.VA
		for i := 0; i < nRegions; i++ {
			va, err := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
			if err != nil {
				t.Fatal(err)
			}
			bases = append(bases, va)
		}
		rng := rand.New(rand.NewSource(7))
		const insns = 40000
		for i := 0; i < insns; i++ {
			va := bases[rng.Intn(len(bases))] + addr.VA(rng.Uint64()%(1<<20))
			r.Access(core.Request{Kind: cache.Read, VA: va, Proc: p})
		}
		return 1000 * float64(r.Range(0).Misses()) / insns
	}
	few := runMPKI(8)
	many := runMPKI(200)
	if many < 10*few+1 {
		t.Errorf("RMM MPKI: few=%f many=%f; no thrashing effect", few, many)
	}
}

func TestDirectSegmentFreeTranslation(t *testing.T) {
	k, p := setup(t)
	d := NewDirectSegment(smallConfig(1), k)
	big, _ := p.Mmap(64<<20, addr.PermRW, osmodel.MmapOpts{})
	small, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	d.AssignSegment(p)

	// In-segment access: no TLB energy beyond what setup used.
	l1Before := d.Energy().Accesses[0]
	res := d.Access(core.Request{Kind: cache.Read, VA: big + 0x1000, Proc: p})
	if res.Fault {
		t.Fatal("fault in segment")
	}
	if d.Energy().Accesses[0] != l1Before {
		t.Error("direct segment access paid TLB energy")
	}
	if d.InSegment.Value() != 1 {
		t.Errorf("in-segment accesses = %d", d.InSegment.Value())
	}
	// Outside the segment, the conventional path runs.
	d.Access(core.Request{Kind: cache.Read, VA: small, Proc: p})
	if d.Energy().Accesses[0] != l1Before+1 {
		t.Error("out-of-segment access skipped the TLB")
	}
	if d.Name() != "direct-segment" {
		t.Error("name")
	}
}

func TestShootdownSinkIntegration(t *testing.T) {
	k, p := setup(t)
	c := NewConventional(smallConfig(1), k)
	va, _ := p.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	c.Access(core.Request{Kind: cache.Read, VA: va, Proc: p})
	if _, ok := c.TLB(0).L1.Probe(p.ASID, va.Page()); !ok {
		t.Fatal("TLB entry missing")
	}
	// A MarkShared transition shoots down the TLB entry.
	if err := k.MarkShared(p, va, addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.TLB(0).L1.Probe(p.ASID, va.Page()); ok {
		t.Error("TLB entry survived shootdown")
	}
	if c.TLBShoots.Value() == 0 {
		t.Error("shootdowns not counted")
	}
}
