package sim

import (
	"strings"
	"testing"

	"hybridvc/internal/baseline"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/workload"
)

func smallHier(n int) cache.HierarchyConfig {
	cfg := cache.DefaultHierarchyConfig(n)
	cfg.LLC.SizeBytes = 256 << 10 // shrink so misses occur within short runs
	return cfg
}

func newHybridSim(t *testing.T, wl string, cores int) *Simulator {
	t.Helper()
	return newSimWithConfig(t, wl, cores, DefaultConfig())
}

func newSimWithConfig(t *testing.T, wl string, cores int, cfg Config) *Simulator {
	t.Helper()
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
	hcfg := core.DefaultHybridConfig(cores)
	hcfg.Hier = smallHier(cores)
	ms := core.NewHybridMMU(hcfg, k)
	gens, err := workload.NewGroup(workload.Specs[wl], k, 1)
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, ms, gens)
}

func TestRunProducesSaneReport(t *testing.T) {
	s := newHybridSim(t, "stream", 1)
	r := s.Run(20000)
	if r.Instructions != 20000 {
		t.Errorf("instructions = %d", r.Instructions)
	}
	if r.Cycles == 0 || r.IPC <= 0 || r.IPC > 5 {
		t.Errorf("implausible report: %+v", r)
	}
	if r.TranslationEnergyPJ <= 0 {
		t.Error("no translation energy")
	}
	if r.Name != "hybrid-manyseg+sc" {
		t.Errorf("name = %q", r.Name)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := newHybridSim(t, "mcf", 1).Run(15000)
	b := newHybridSim(t, "mcf", 1).Run(15000)
	if a.Cycles != b.Cycles || a.DynamicEnergyPJ != b.DynamicEnergyPJ {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMultiProcessWorkloadTimeslices(t *testing.T) {
	// postgres has 4 processes; on 1 core they must timeslice.
	s := newHybridSim(t, "postgres", 1)
	s.Run(200000)
	if s.ContextSwitches.Value() < 3 {
		t.Errorf("context switches = %d", s.ContextSwitches.Value())
	}
}

func TestMultiCoreDistribution(t *testing.T) {
	s := newHybridSim(t, "postgres", 4)
	r := s.Run(10000)
	if len(r.PerCoreIPC) != 4 {
		t.Errorf("per-core IPCs = %d", len(r.PerCoreIPC))
	}
	if r.Instructions != 40000 {
		t.Errorf("instructions = %d", r.Instructions)
	}
	if s.ContextSwitches.Value() != 0 {
		t.Error("4 procs on 4 cores should not context switch")
	}
}

func TestPointerChaseSlowerThanStream(t *testing.T) {
	// A basic sanity ordering: dependent random access must run at far
	// lower IPC than streaming.
	chase := newHybridSim(t, "mcf", 1).Run(20000)
	stream := newHybridSim(t, "stream", 1).Run(20000)
	if chase.IPC >= stream.IPC {
		t.Errorf("mcf IPC %.3f >= stream IPC %.3f", chase.IPC, stream.IPC)
	}
}

func TestHybridBeatsBaselineOnTLBThrashingWorkload(t *testing.T) {
	// The paper's headline direction: for big-memory workloads the hybrid
	// design outperforms the conventional baseline because LLC hits skip
	// translation entirely and delayed translation is scalable.
	run := func(mk func(k *osmodel.Kernel) core.MemSystem) Report {
		k := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
		ms := mk(k)
		gens, err := workload.NewGroup(workload.Specs["gups"], k, 1)
		if err != nil {
			t.Fatal(err)
		}
		return New(DefaultConfig(), ms, gens).Run(30000)
	}
	hybrid := run(func(k *osmodel.Kernel) core.MemSystem {
		cfg := core.DefaultHybridConfig(1)
		cfg.Hier = smallHier(1)
		return core.NewHybridMMU(cfg, k)
	})
	base := run(func(k *osmodel.Kernel) core.MemSystem {
		cfg := baseline.DefaultConfig(1)
		cfg.Hier = smallHier(1)
		return baseline.NewConventional(cfg, k)
	})
	if hybrid.Cycles >= base.Cycles {
		t.Errorf("hybrid (%d cycles) not faster than baseline (%d) on gups",
			hybrid.Cycles, base.Cycles)
	}
}

func TestHybridSavesTranslationEnergy(t *testing.T) {
	// The ~60% translation-energy claim: on a workload with locality the
	// baseline still pays a TLB probe on every reference, while the
	// hybrid pays a cheap filter probe and touches the delayed structures
	// only on LLC misses (mostly segment cache hits).
	spec := workload.Spec{
		Name: "server-mix", Regions: []uint64{64 << 20}, TouchFrac: 1.0,
		MemRatio: 0.4, StoreFrac: 0.3, Pattern: workload.Zipf,
		HotFrac: 0.008, DepFrac: 0.2,
	}
	run := func(mk func(k *osmodel.Kernel) core.MemSystem) Report {
		k := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
		ms := mk(k)
		gens, err := workload.NewGroup(spec, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		return New(DefaultConfig(), ms, gens).Run(100000)
	}
	hybrid := run(func(k *osmodel.Kernel) core.MemSystem {
		return core.NewHybridMMU(core.DefaultHybridConfig(1), k)
	})
	base := run(func(k *osmodel.Kernel) core.MemSystem {
		return baseline.NewConventional(baseline.DefaultConfig(1), k)
	})
	saving := 1 - hybrid.TranslationEnergyPJ/base.TranslationEnergyPJ
	if saving < 0.5 {
		t.Errorf("translation energy saving %.0f%% (hybrid %.0f vs base %.0f pJ)",
			100*saving, hybrid.TranslationEnergyPJ, base.TranslationEnergyPJ)
	}
}

func TestNewPanicsWithoutGenerators(t *testing.T) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 28})
	ms := baseline.NewIdeal(baseline.DefaultConfig(1), k)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(DefaultConfig(), ms, nil)
}

// TestStopFlushesPartialReport pins the interruption contract: Stop()
// quiesces the simulator at a chunk boundary, and the resulting report
// is a valid — just shorter — run marked Interrupted.
func TestStopFlushesPartialReport(t *testing.T) {
	s := newHybridSim(t, "stream", 1)
	s.Stop() // request a stop before Run: quiesce after the first chunk
	r := s.Run(1_000_000)
	if !s.Interrupted() || !r.Interrupted {
		t.Fatalf("Interrupted() = %v, report.Interrupted = %v after Stop",
			s.Interrupted(), r.Interrupted)
	}
	if r.Instructions == 0 || r.Instructions >= 1_000_000 {
		t.Errorf("partial run retired %d instructions, want (0, 1000000)", r.Instructions)
	}
	if r.Cycles == 0 || r.IPC <= 0 {
		t.Errorf("partial report is not valid: %+v", r)
	}
	if !strings.Contains(r.JSON(), `"interrupted": true`) {
		t.Error("JSON report does not carry the interrupted flag")
	}
}

// TestParallelRunMatchesSerial is the parallel run-loop parity gate:
// with Workers=1 (forced serial) and Workers=0 (auto, parallel whenever
// more than one core has work), identically seeded simulators must
// produce byte-identical JSON reports and identical shared counters at
// every core count — including Interleave edge cases (a chunk per
// instruction, and one chunk far larger than the whole run). `make
// sim-race` runs this test under the race detector at GOMAXPROCS=2
// and GOMAXPROCS=8.
func TestParallelRunMatchesSerial(t *testing.T) {
	cases := []struct {
		cores int
		ilv   int
		n     uint64
	}{
		{1, 128, 40_000}, // single core: parallel loop ineligible, still identical
		{2, 128, 40_000},
		{8, 128, 40_000},
		{2, 1, 2_000},        // one chunk per instruction
		{2, 1 << 20, 40_000}, // chunk larger than the remaining run
	}
	for _, tc := range cases {
		serialCfg := DefaultConfig()
		serialCfg.Interleave = tc.ilv
		serialCfg.Workers = 1
		parallelCfg := serialCfg
		parallelCfg.Workers = 0

		serial := newSimWithConfig(t, "postgres", tc.cores, serialCfg)
		parallel := newSimWithConfig(t, "postgres", tc.cores, parallelCfg)
		a := serial.Run(tc.n)
		b := parallel.Run(tc.n)
		if aj, bj := a.JSON(), b.JSON(); aj != bj {
			t.Errorf("cores=%d ilv=%d: reports differ\nserial:   %s\nparallel: %s",
				tc.cores, tc.ilv, aj, bj)
		}
		if sc, pc := serial.ContextSwitches.Value(), parallel.ContextSwitches.Value(); sc != pc {
			t.Errorf("cores=%d ilv=%d: context switches %d vs %d", tc.cores, tc.ilv, sc, pc)
		}
		for c := range serial.Retired {
			if serial.Retired[c] != parallel.Retired[c] {
				t.Errorf("cores=%d ilv=%d: core %d retired %d vs %d",
					tc.cores, tc.ilv, c, serial.Retired[c], parallel.Retired[c])
			}
		}
	}
}

// TestInterleaveValueIsNeutralOnOneCore pins that Interleave is purely an
// implementation batch size: on a single core any value — 1, a prime, the
// default, or one exceeding the whole run — yields byte-identical reports.
func TestInterleaveValueIsNeutralOnOneCore(t *testing.T) {
	var base string
	for _, ilv := range []int{1, 7, 128, 1 << 20} {
		cfg := DefaultConfig()
		cfg.Interleave = ilv
		r := newSimWithConfig(t, "mcf", 1, cfg).Run(3_333)
		if got := r.JSON(); base == "" {
			base = got
		} else if got != base {
			t.Errorf("Interleave=%d diverges:\n%s\nwant:\n%s", ilv, got, base)
		}
	}
}

// TestStopQuiescesParallelRun extends the interruption contract to the
// parallel loop: Stop() still quiesces at a chunk-round boundary with a
// valid partial report.
func TestStopQuiescesParallelRun(t *testing.T) {
	s := newHybridSim(t, "postgres", 4)
	s.Stop()
	r := s.Run(1_000_000)
	if !s.Interrupted() || !r.Interrupted {
		t.Fatalf("Interrupted() = %v, report.Interrupted = %v after Stop",
			s.Interrupted(), r.Interrupted)
	}
	if r.Instructions == 0 || r.Instructions >= 4_000_000 {
		t.Errorf("partial run retired %d instructions", r.Instructions)
	}
	if r.Cycles == 0 || r.IPC <= 0 {
		t.Errorf("partial report is not valid: %+v", r)
	}
}

// TestCompletedReportOmitsInterrupted keeps existing JSON outputs
// byte-stable: a run that finishes normally must not gain the field.
func TestCompletedReportOmitsInterrupted(t *testing.T) {
	r := newHybridSim(t, "stream", 1).Run(5000)
	if r.Interrupted {
		t.Fatal("completed run marked interrupted")
	}
	if strings.Contains(r.JSON(), "interrupted") {
		t.Error("completed report JSON mentions interrupted")
	}
}
