package core

import (
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/virt"
)

func setupVirt(t *testing.T, withSC bool) (*VirtHybridMMU, *virt.Hypervisor, *virt.VM, *osmodel.Process) {
	t.Helper()
	hv := virt.NewHypervisor(2 << 30)
	vm, err := hv.NewVM(512<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultVirtHybridConfig(1)
	cfg.Hier.L1I = cache.Config{Name: "L1I", SizeBytes: 1 << 10, Ways: 2, HitLatency: 2}
	cfg.Hier.L1D = cache.Config{Name: "L1D", SizeBytes: 1 << 10, Ways: 2, HitLatency: 4}
	cfg.Hier.L2 = cache.Config{Name: "L2", SizeBytes: 4 << 10, Ways: 4, HitLatency: 6}
	cfg.Hier.LLC = cache.Config{Name: "LLC", SizeBytes: 16 << 10, Ways: 8, HitLatency: 27}
	cfg.WithSegmentCache = withSC
	m := NewVirtHybridMMU(cfg, vm, hv)
	p, err := vm.Kernel.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	return m, hv, vm, p
}

func TestVirtNonSynonymCachedByGVA(t *testing.T) {
	m, _, _, p := setupVirt(t, true)
	gva, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	res := m.Access(Request{Kind: cache.Read, VA: gva, Proc: p})
	if res.Fault || !res.LLCMiss {
		t.Fatalf("cold access: %+v", res)
	}
	if m.Hier.LLC().Probe(addr.VirtName(p.ASID, gva)) == nil {
		t.Error("block not cached under VMID-extended ASID + gVA")
	}
	if p.ASID.VMID() == 0 {
		t.Error("guest ASID lacks VMID")
	}
	// The delayed translation composed gVA->gPA->MA correctly.
	warm := m.Access(Request{Kind: cache.Read, VA: gva, Proc: p})
	if warm.Latency != 4 {
		t.Errorf("warm latency = %d", warm.Latency)
	}
}

func TestVirtDelayedTranslationComposition(t *testing.T) {
	m, _, vm, p := setupVirt(t, false)
	gva, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	ma, lat, ok := m.delayed2D(0, p, gva+0x123, false)
	if !ok {
		t.Fatal("delayed 2D translation failed")
	}
	// Compare with functional composition.
	gpa, _ := p.PT.Translate(gva + 0x123)
	want, _ := vm.TranslateGPA(addr.GPA(gpa))
	if ma != want {
		t.Errorf("MA = %#x, want %#x", uint64(ma), uint64(want))
	}
	if lat == 0 {
		t.Error("two-step translation was free")
	}
	if m.TwoStepXlations.Value() != 1 {
		t.Errorf("two-step translations = %d", m.TwoStepXlations.Value())
	}
}

func TestVirtSegmentCacheSkipsTwoStep(t *testing.T) {
	m, _, _, p := setupVirt(t, true)
	gva, _ := p.Mmap(8<<20, addr.PermRW, osmodel.MmapOpts{})
	_, lat1, ok := m.delayed2D(0, p, gva, false)
	if !ok {
		t.Fatal("first translation failed")
	}
	ma2, lat2, ok := m.delayed2D(0, p, gva+0x40, false)
	if !ok {
		t.Fatal("second translation failed")
	}
	if lat2 >= lat1 {
		t.Errorf("SC hit latency %d not below two-step %d", lat2, lat1)
	}
	if lat2 != 2 {
		t.Errorf("SC hit latency = %d, want 2", lat2)
	}
	// The SC-supplied MA must match the functional composition.
	gpa, _ := p.PT.Translate(gva + 0x40)
	want, _ := m.vm.TranslateGPA(addr.GPA(gpa))
	if ma2 != want {
		t.Errorf("SC MA = %#x, want %#x", uint64(ma2), uint64(want))
	}
	if m.sc.Stats.Hits.Value() != 1 {
		t.Errorf("SC hits = %d", m.sc.Stats.Hits.Value())
	}
}

func TestVirtHypervisorInducedSynonym(t *testing.T) {
	m, hv, vm, p := setupVirt(t, true)
	gva, _ := p.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	vm.TrackProcessRegion(p, gva, addr.PageSize)
	pte, _ := p.PT.Lookup(gva)
	// Hypervisor shares the frame within the same VM (e.g. a device
	// buffer): host filter flags the gVA even though the guest OS did not.
	if err := hv.ShareGuestFrames(vm, pte.Frame, vm, pte.Frame); err != nil {
		t.Fatal(err)
	}
	res := m.Access(Request{Kind: cache.Read, VA: gva, Proc: p})
	if res.Fault {
		t.Fatal("fault")
	}
	if m.SynonymCandidates.Value() != 1 {
		t.Errorf("candidates = %d; host filter not consulted", m.SynonymCandidates.Value())
	}
	if m.TrueSynonymAccesses.Value() != 1 {
		t.Errorf("true synonyms = %d", m.TrueSynonymAccesses.Value())
	}
	// Data cached under the machine address.
	gpa, _ := p.PT.Translate(gva)
	ma, _ := vm.TranslateGPA(addr.GPA(gpa))
	if m.Hier.LLC().Probe(addr.PhysName(ma)) == nil {
		t.Error("hypervisor-induced synonym not cached physically")
	}
}

func TestVirtGuestOSSynonym(t *testing.T) {
	m, _, _, p1 := setupVirt(t, true)
	p2, _ := m.vm.Kernel.NewProcess()
	vas, err := m.vm.Kernel.ShareAnonymous([]*osmodel.Process{p1, p2}, 4*addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	m.Access(Request{Kind: cache.Write, VA: vas[0], Proc: p1})
	r2 := m.Access(Request{Kind: cache.Read, VA: vas[1], Proc: p2})
	if r2.LLCMiss {
		t.Error("guest-shared data not found under the single machine name")
	}
}

func TestVirtEnergyChargesBothFilters(t *testing.T) {
	m, _, _, p := setupVirt(t, true)
	gva, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	m.Access(Request{Kind: cache.Read, VA: gva, Proc: p})
	if got := m.Energy().Accesses[2]; got != 2 { // SynonymFilter
		t.Errorf("filter accesses = %d, want 2 (guest+host)", got)
	}
	if m.Name() != "virt-hybrid+sc" {
		t.Errorf("name = %q", m.Name())
	}
}
