// BenchmarkHotPath measures the batched access hot path against the
// scalar one: every organization runs the same gups reference stream
// through per-reference Access calls and through AccessBatch chunks at
// every size in the -chunks sweep (default 64,128,256), on identically
// seeded twin systems. Each pass does one untimed warmup and the timed
// trials alternate the scalar pass with every batch chunk size, so slow
// periods on a noisy host hit all columns alike; each column scores its
// best of five trials, the standard way to strip GC/scheduler noise from
// a steady-state measurement. The refs/sec of both paths, their ratio at
// the simulator's default chunk, and the full chunk sweep land in
// BENCH_hotpath.json so the hot-path trajectory is tracked alongside
// BENCH_sweep.json. Run via:
//
//	make bench-hotpath
package hybridvc_test

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"hybridvc"
	"hybridvc/internal/core"
	"hybridvc/internal/sim"
)

// preRefactorScalarRefsPerSec is the hybrid-manyseg+sc throughput of the
// pre-refactor scalar loop (the monolithic per-reference Access of commit
// 8488e5e), measured on this machine with the exact protocol below: gups,
// 256 KiB LLC, seed 1, 200k requests, one warmup pass, best of five timed
// passes. The refactor replaced that code, so the reference point is
// recorded here; regenerate it with a `git worktree add <dir> 8488e5e` and
// the same measurement loop. The scalar column in the rows below is the
// post-refactor engine's scalar path, which already includes this PR's
// shared-structure optimizations and therefore beats the recorded baseline.
const preRefactorScalarRefsPerSec = 1_240_000

// hotpathChunks is the AccessBatch chunk-size sweep. The organization
// rows (and the speedup the regression gate reads) use the simulator's
// default interleave; every size in the list additionally lands in the
// chunk_sweep section.
var hotpathChunks = flag.String("chunks", "64,128,256", "comma-separated AccessBatch chunk sizes for BenchmarkHotPath")

func parseChunks(b *testing.B, s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			b.Fatalf("-chunks %q: each entry must be a positive integer", s)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		b.Fatalf("-chunks %q: empty sweep", s)
	}
	return out
}

func BenchmarkHotPath(b *testing.B) {
	type row struct {
		Org              string  `json:"org"`
		Refs             int     `json:"refs"`
		ScalarRefsPerSec float64 `json:"scalar_refs_per_sec"`
		BatchRefsPerSec  float64 `json:"batch_refs_per_sec"`
		Speedup          float64 `json:"speedup"`
	}
	type sweepRow struct {
		Org             string  `json:"org"`
		BatchRefsPerSec float64 `json:"batch_refs_per_sec"`
		Speedup         float64 `json:"speedup"`
	}
	const refs = 200_000
	const trials = 5
	chunks := parseChunks(b, *hotpathChunks)
	// The headline rows use the simulator's default interleave — the chunk
	// size real runs batch at; it joins the sweep if the flag omitted it.
	primary := sim.DefaultConfig().Interleave
	pi := -1
	for i, c := range chunks {
		if c == primary {
			pi = i
		}
	}
	if pi == -1 {
		chunks = append(chunks, primary)
		pi = len(chunks) - 1
	}
	maxChunk := 0
	for _, c := range chunks {
		if c > maxChunk {
			maxChunk = c
		}
	}

	var rows []row
	sweep := make([][]sweepRow, len(chunks))
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for ci := range sweep {
			sweep[ci] = sweep[ci][:0]
		}
		for _, org := range hybridvc.Organizations() {
			scalarSys := newHotpathSystem(b, org, "gups")
			batchSys := newHotpathSystem(b, org, "gups")
			sreqs := collectRequests(scalarSys, refs)
			breqs := collectRequests(batchSys, refs)
			res := make([]core.Result, maxChunk)

			scalarPass := func() {
				for j := range sreqs {
					scalarSys.Mem.Access(sreqs[j])
				}
			}
			batchPass := func(chunk int) {
				for lo := 0; lo < refs; lo += chunk {
					hi := min(lo+chunk, refs)
					batchSys.Mem.AccessBatch(breqs[lo:hi], res[:hi-lo])
				}
			}

			// One untimed warmup pass each to reach steady state, then the
			// timed trials alternate the scalar pass with every chunk size so
			// slow periods on a noisy host hit all columns alike; each column
			// scores its best trial.
			scalarPass()
			batchPass(primary)
			timed := func(pass func()) float64 {
				runtime.GC()
				start := time.Now()
				pass()
				return time.Since(start).Seconds()
			}
			scalarSecs := 0.0
			batchSecs := make([]float64, len(chunks))
			for t := 0; t < trials; t++ {
				s := timed(scalarPass)
				if t == 0 || s < scalarSecs {
					scalarSecs = s
				}
				for ci, chunk := range chunks {
					bt := timed(func() { batchPass(chunk) })
					if t == 0 || bt < batchSecs[ci] {
						batchSecs[ci] = bt
					}
				}
			}

			rows = append(rows, row{
				Org:              string(org),
				Refs:             refs,
				ScalarRefsPerSec: float64(refs) / scalarSecs,
				BatchRefsPerSec:  float64(refs) / batchSecs[pi],
				Speedup:          scalarSecs / batchSecs[pi],
			})
			for ci := range chunks {
				sweep[ci] = append(sweep[ci], sweepRow{
					Org:             string(org),
					BatchRefsPerSec: float64(refs) / batchSecs[ci],
					Speedup:         scalarSecs / batchSecs[ci],
				})
			}
		}
	}

	var vsPre float64
	for _, r := range rows {
		b.Logf("%-18s scalar %12.0f refs/s   batch %12.0f refs/s   %.2fx",
			r.Org, r.ScalarRefsPerSec, r.BatchRefsPerSec, r.Speedup)
		if r.Org == string(hybridvc.HybridManySegSC) {
			vsPre = r.BatchRefsPerSec / preRefactorScalarRefsPerSec
			b.Logf("%-18s batch vs pre-refactor scalar loop (%.0f refs/s @ 8488e5e): %.2fx",
				r.Org, float64(preRefactorScalarRefsPerSec), vsPre)
			b.ReportMetric(vsPre, "speedup-vs-prerefactor")
		}
	}
	chunkSweep := make([]map[string]any, len(chunks))
	for ci, chunk := range chunks {
		chunkSweep[ci] = map[string]any{
			"chunk":         chunk,
			"organizations": sweep[ci],
		}
	}
	out, err := json.MarshalIndent(map[string]any{
		"name":          "hotpath",
		"refs_per_org":  refs,
		"chunk":         primary,
		"organizations": rows,
		"chunk_sweep":   chunkSweep,
		"prerefactor_baseline": map[string]any{
			"commit":              "8488e5e",
			"org":                 string(hybridvc.HybridManySegSC),
			"scalar_refs_per_sec": float64(preRefactorScalarRefsPerSec),
			"speedup":             vsPre,
		},
	}, "", "  ")
	if err == nil {
		// BENCH_HOTPATH_OUT redirects the result file so regression checks
		// (make bench-check) can compare a fresh run against the committed
		// BENCH_hotpath.json without overwriting it.
		path := os.Getenv("BENCH_HOTPATH_OUT")
		if path == "" {
			path = "BENCH_hotpath.json"
		}
		if werr := os.WriteFile(path, append(out, '\n'), 0o644); werr != nil {
			b.Logf("%s not written: %v", path, werr)
		}
	}
}
