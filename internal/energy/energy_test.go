package energy

import (
	"strings"
	"testing"
)

func TestDynamicEnergyAccumulates(t *testing.T) {
	a := NewAccumulator(DefaultModel())
	a.Access(L1TLB, 1000)
	a.Access(L2TLB, 10)
	want := 1000*4.0 + 10*18.0
	if got := a.Dynamic(); got != want {
		t.Errorf("dynamic = %f, want %f", got, want)
	}
}

func TestStaticOnlyForPresentComponents(t *testing.T) {
	m := DefaultModel()
	a := NewAccumulator(m, L1TLB, L2TLB)
	base := a.StaticOver(1000)
	if base != (m.Static[L1TLB]+m.Static[L2TLB])*1000 {
		t.Errorf("static = %f", base)
	}
	// Accessing a new component makes it present.
	a.Access(IndexCache, 1)
	if a.StaticOver(1000) <= base {
		t.Error("accessed component does not leak")
	}
	if a.Total(1000) != a.Dynamic()+a.StaticOver(1000) {
		t.Error("total != dynamic + static")
	}
}

func TestFilterCheaperThanTLB(t *testing.T) {
	// The design premise: replacing a per-access TLB lookup with a
	// per-access filter probe must save energy.
	m := DefaultModel()
	if m.PerAccess[SynonymFilter] >= m.PerAccess[L1TLB]/2 {
		t.Error("synonym filter not substantially cheaper than L1 TLB")
	}
}

func TestHybridSavesTranslationEnergy(t *testing.T) {
	// Emulate 1M references: baseline pays L1 TLB each + 5% L2 TLB;
	// hybrid pays filter each + 1% synonym TLB + 2% delayed structures.
	const refs = 1_000_000
	base := NewAccumulator(DefaultModel())
	base.Access(L1TLB, refs)
	base.Access(L2TLB, refs/20)
	base.Access(PageWalk, refs/500)

	hyb := NewAccumulator(DefaultModel())
	hyb.Access(SynonymFilter, refs)
	hyb.Access(SynonymTLB, refs/100)
	hyb.Access(IndexCache, refs/50)
	hyb.Access(SegmentTable, refs/50)
	hyb.Access(SegmentCache, refs/50)

	const cycles = 2_000_000
	saving := 1 - hyb.Total(cycles)/base.Total(cycles)
	if saving < 0.5 {
		t.Errorf("hybrid saves only %.0f%% translation energy", 100*saving)
	}
}

func TestDelayedTLBEnergyScales(t *testing.T) {
	if DelayedTLBEnergy(1024) != 18.0 {
		t.Errorf("1K energy = %f", DelayedTLBEnergy(1024))
	}
	prev := 0.0
	for _, entries := range []int{1024, 2048, 4096, 8192, 16384, 32768} {
		e := DelayedTLBEnergy(entries)
		if e <= prev {
			t.Errorf("energy for %d entries (%f) not larger than smaller TLB", entries, e)
		}
		prev = e
	}
}

func TestComponentNames(t *testing.T) {
	for _, c := range Components() {
		if strings.HasPrefix(c.String(), "component(") {
			t.Errorf("component %d missing a name", c)
		}
	}
	if Component(-1).String() != "component(-1)" {
		t.Error("out-of-range name wrong")
	}
}

func TestBreakdownOrdering(t *testing.T) {
	a := NewAccumulator(DefaultModel())
	a.Access(L1TLB, 1)
	a.Access(L2TLB, 1000)
	out := a.Breakdown()
	if !strings.Contains(out, "L1-TLB") || !strings.Contains(out, "L2-TLB") {
		t.Fatalf("breakdown missing components:\n%s", out)
	}
	if strings.Index(out, "L2-TLB") > strings.Index(out, "L1-TLB") {
		t.Error("breakdown not sorted by energy")
	}
}
