package main

import (
	"strings"
	"testing"
)

// validOptions returns an option set that passes validation; tests
// perturb one field at a time.
func validOptions() options {
	return options{
		org:       "hybrid-manyseg+sc",
		workloads: []string{"gups"},
		insns:     1000,
		cores:     1,
		dtlb:      1024,
		ic:        32 << 10,
	}
}

// TestValidateExitCodes pins the CLI misuse contract: each class of bad
// invocation maps to its documented exit code with an actionable
// message, and a valid invocation passes.
func TestValidateExitCodes(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		code    int
		wantMsg string
	}{
		{"valid", func(o *options) {}, 0, ""},
		{"unknown org", func(o *options) { o.org = "no-such-org" }, exitUnknownOrg, "unknown organization"},
		{"compare with org", func(o *options) { o.compare, o.orgSet = true, true }, exitBadFlags, "-compare"},
		{"compare alone ignores org", func(o *options) { o.compare = true; o.org = "ignored" }, 0, ""},
		{"zero cores", func(o *options) { o.cores = 0 }, exitBadFlags, "-cores"},
		{"zero insns", func(o *options) { o.insns = 0 }, exitBadFlags, "-insns"},
		{"negative llc", func(o *options) { o.llc = -1 }, exitBadFlags, "-llc"},
		{"zero dtlb", func(o *options) { o.dtlb = 0 }, exitBadFlags, "-dtlb"},
		{"zero ic", func(o *options) { o.ic = 0 }, exitBadFlags, "-ic"},
		{"no workloads", func(o *options) { o.workloads = nil }, exitBadFlags, "-workloads"},
		{"unknown workload", func(o *options) { o.workloads = []string{"gups", "nope"} }, exitBadFlags, `"nope"`},
		{"interval without consumer", func(o *options) { o.interval = 5000 }, exitBadFlags, "-interval"},
		{"interval with timeline", func(o *options) { o.interval = 5000; o.timeline = "t.csv" }, 0, ""},
		{"interval with metrics", func(o *options) { o.interval = 5000; o.metricsAddr = ":8080" }, 0, ""},
		{"metrics addr no port", func(o *options) { o.metricsAddr = "localhost" }, exitBadMetrics, "-metrics-addr"},
		{"metrics addr empty port", func(o *options) { o.metricsAddr = "localhost:" }, exitBadMetrics, "missing port"},
		{"metrics addr ok", func(o *options) { o.metricsAddr = ":0"; o.timeline = "" }, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOptions()
			tc.mutate(&o)
			code, msg := o.validate()
			if code != tc.code {
				t.Fatalf("validate() = (%d, %q), want code %d", code, msg, tc.code)
			}
			if tc.wantMsg != "" && !strings.Contains(msg, tc.wantMsg) {
				t.Errorf("message %q does not mention %q", msg, tc.wantMsg)
			}
			if code == 0 && msg != "" {
				t.Errorf("valid options produced message %q", msg)
			}
		})
	}
}

// TestSplitWorkloads pins the -workloads parsing: whitespace trimmed,
// empty entries dropped.
func TestSplitWorkloads(t *testing.T) {
	got := splitWorkloads(" gups, mcf ,,graph500 ")
	want := []string{"gups", "mcf", "graph500"}
	if len(got) != len(want) {
		t.Fatalf("splitWorkloads = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitWorkloads = %v, want %v", got, want)
		}
	}
}
