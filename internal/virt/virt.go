// Package virt models hardware-assisted virtualization for the hybrid
// virtual caching design (Section V): virtual machines whose guest kernels
// run over guest-physical (gPA) memory, hypervisor-maintained host page
// tables and host segments mapping gPA to machine addresses (MA), per-VM
// host synonym filters indexed by guest virtual address, and the
// two-dimensional page walker whose 24 memory accesses the baseline pays
// before the L1 while the hybrid design defers them past the LLC.
package virt

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/mem"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/pagetable"
	"hybridvc/internal/segment"
	"hybridvc/internal/stats"
	"hybridvc/internal/synfilter"
	"hybridvc/internal/tlb"
)

// Hypervisor owns machine memory and the virtual machines.
type Hypervisor struct {
	Machine *mem.Allocator
	Store   *mem.Store
	// HostSegMgr holds host segments (gPA -> MA), using each VM's pseudo
	// address space identified by MakeASID(vmid, 0).
	HostSegMgr *segment.Manager

	vms      map[uint32]*VM
	nextVMID uint32

	// ContentShares counts hypervisor-induced r/o content sharings.
	ContentShares stats.Counter
	// HostFilterUpdates counts host synonym filter synchronizations.
	HostFilterUpdates stats.Counter
}

// NewHypervisor boots a hypervisor over machineBytes of machine memory.
func NewHypervisor(machineBytes uint64) *Hypervisor {
	alloc := mem.NewAllocator(machineBytes)
	return &Hypervisor{
		Machine:    alloc,
		Store:      mem.NewStore(),
		HostSegMgr: segment.NewManager(segment.NewNodeArena(alloc)),
		vms:        make(map[uint32]*VM),
		nextVMID:   1,
	}
}

// VM is one virtual machine: a guest kernel over a gPA space plus the
// hypervisor-side structures that map that space onto machine memory.
type VM struct {
	VMID uint32
	// Kernel is the guest OS, allocating in guest-physical space.
	Kernel *osmodel.Kernel
	// HostPT maps gPA (used as the walk key) to MA.
	HostPT *pagetable.Tables
	// HostFilter is the hypervisor's synonym filter for this VM, indexed
	// by guest virtual address (Section V-A).
	HostFilter *synfilter.Filter
	// HostSegs back the gPA space with contiguous machine ranges.
	HostSegs []*segment.Segment
	// reverse maps gPA pages to the guest virtual pages that map them,
	// per guest ASID — the inverse mapping Section V-A says the
	// hypervisor may maintain to set host filters by gVA.
	reverse map[uint64][]gvaRef

	hv *Hypervisor
}

type gvaRef struct {
	asid addr.ASID
	gva  addr.VA
}

// hostASID is the pseudo address space under which a VM's host segments
// are registered.
func hostASID(vmid uint32) addr.ASID { return addr.MakeASID(vmid, 0) }

// NewVM creates a virtual machine with guestBytes of guest-physical memory
// backed by hostChunks contiguous machine ranges (several chunks model a
// hypervisor that could not find one huge extent).
func (hv *Hypervisor) NewVM(guestBytes uint64, hostChunks int) (*VM, error) {
	if hostChunks <= 0 {
		hostChunks = 1
	}
	if guestBytes == 0 || guestBytes%addr.PageSize != 0 {
		return nil, fmt.Errorf("virt: guest size %d not a page multiple", guestBytes)
	}
	if hv.nextVMID > addr.MaxVMID {
		return nil, fmt.Errorf("virt: out of VM identifiers")
	}
	vmid := hv.nextVMID
	hv.nextVMID++

	vm := &VM{
		VMID:       vmid,
		Kernel:     osmodel.NewKernel(osmodel.Config{PhysBytes: guestBytes, VMID: vmid}),
		HostFilter: synfilter.New(),
		reverse:    make(map[uint64][]gvaRef),
		hv:         hv,
	}
	hostPT, err := pagetable.New(hv.Machine, hv.Store)
	if err != nil {
		return nil, err
	}
	vm.HostPT = hostPT

	// Back the gPA space chunk by chunk with machine extents, registering
	// a host segment and host page table entries for each.
	framesTotal := guestBytes / addr.PageSize
	per := framesTotal / uint64(hostChunks)
	var gpa uint64
	for i := 0; i < hostChunks; i++ {
		frames := per
		if i == hostChunks-1 {
			frames = framesTotal - gpa/addr.PageSize
		}
		ma, ok := hv.Machine.AllocContiguous(frames)
		if !ok {
			return nil, fmt.Errorf("virt: out of machine memory for VM %d", vmid)
		}
		seg, err := hv.HostSegMgr.Allocate(hostASID(vmid), addr.VA(gpa), frames*addr.PageSize, ma, addr.PermRW)
		if err != nil {
			return nil, err
		}
		vm.HostSegs = append(vm.HostSegs, seg)
		for f := uint64(0); f < frames; f++ {
			if err := vm.HostPT.Map(addr.VA(gpa+f*addr.PageSize), ma+addr.PA(f*addr.PageSize), addr.PermRW, false); err != nil {
				return nil, err
			}
		}
		gpa += frames * addr.PageSize
	}
	hv.vms[vmid] = vm
	return vm, nil
}

// VM returns the VM with the given id, or nil.
func (hv *Hypervisor) VM(vmid uint32) *VM { return hv.vms[vmid] }

// DestroyVM tears a virtual machine down: guest processes exit, the host
// segments and machine extents are released, and the host page tables are
// destroyed. Machine frames privately added by content-share breaks are
// reclaimed through the host mappings before the extents go.
func (hv *Hypervisor) DestroyVM(vm *VM) {
	// Exit any remaining guest processes (releases guest-physical state).
	for _, asid := range vm.Kernel.ASIDs() {
		if p := vm.Kernel.Process(asid); p != nil {
			vm.Kernel.Exit(p)
		}
	}
	// CoW breaks allocated single machine frames outside the extents;
	// find them by comparing host mappings against the segment ranges.
	for gpa := uint64(0); ; gpa += addr.PageSize {
		pte, ok := vm.HostPT.Lookup(addr.VA(gpa))
		if !ok {
			// The gPA space is mapped densely from 0; the first hole is
			// the end (shared mappings may extend it, handled below).
			break
		}
		ma := addr.FrameToPA(pte.Frame)
		inExtent := false
		for _, seg := range vm.HostSegs {
			if ma >= seg.PABase && uint64(ma-seg.PABase) < seg.Length {
				inExtent = true
				break
			}
		}
		if !inExtent && !pte.Shared && pte.Perm == addr.PermRW {
			hv.Machine.Free(ma, 1)
		}
	}
	for _, seg := range vm.HostSegs {
		hv.HostSegMgr.Free(seg)
		hv.Machine.Free(seg.PABase, seg.Pages())
	}
	vm.HostPT.Destroy()
	delete(hv.vms, vm.VMID)
}

// TranslateGPA maps a guest-physical address to its machine address using
// the host segments (functional view).
func (vm *VM) TranslateGPA(gpa addr.GPA) (addr.PA, bool) {
	seg, ok := vm.hv.HostSegMgr.LookupSoft(hostASID(vm.VMID), addr.VA(gpa))
	if !ok {
		return 0, false
	}
	return seg.Translate(addr.VA(gpa)), true
}

// NoteMapping records a guest mapping in the hypervisor's inverse map so
// hypervisor-induced sharing can find the gVAs for a gPA page.
func (vm *VM) NoteMapping(asid addr.ASID, gva addr.VA, gpaFrame uint64) {
	vm.reverse[gpaFrame] = append(vm.reverse[gpaFrame], gvaRef{asid: asid, gva: gva.PageAligned()})
}

// TrackProcessRegion scans a guest process's mapped region and records the
// inverse mappings (a convenience for workloads that map large regions).
func (vm *VM) TrackProcessRegion(p *osmodel.Process, start addr.VA, length uint64) {
	for off := uint64(0); off < length; off += addr.PageSize {
		gva := start + addr.VA(off)
		if pte, ok := p.PT.Lookup(gva); ok {
			vm.NoteMapping(p.ASID, gva, pte.Frame)
		}
	}
}

// HostMarkSynonym marks every recorded gVA alias of a gPA frame in the host
// filter — the hypervisor-induced synonym path of Section V-A.
func (vm *VM) HostMarkSynonym(gpaFrame uint64) {
	for _, ref := range vm.reverse[gpaFrame] {
		vm.HostFilter.MarkSynonym(ref.gva)
	}
	vm.hv.HostFilterUpdates.Inc()
}

// ShareGuestFrames makes two gPA frames (possibly in different VMs) share
// one machine frame r/w — a hypervisor-induced synonym. Both VMs' host
// filters are updated by guest virtual address.
func (hv *Hypervisor) ShareGuestFrames(vmA *VM, gpaA uint64, vmB *VM, gpaB uint64) error {
	maA, okA := vmA.HostPT.Translate(addr.PageToVA(gpaA))
	if !okA {
		return fmt.Errorf("virt: gPA %#x unmapped in VM %d", gpaA, vmA.VMID)
	}
	if err := vmB.HostPT.Map(addr.PageToVA(gpaB), maA, addr.PermRW, true); err != nil {
		return err
	}
	vmA.HostPT.SetShared(addr.PageToVA(gpaA), true)
	vmA.HostMarkSynonym(gpaA)
	vmB.HostMarkSynonym(gpaB)
	return nil
}

// ContentShareRO deduplicates two same-content gPA frames onto one machine
// frame, read-only. Following Section III-D, r/o shared pages are NOT
// marked in the host synonym filter; guests keep using ASID+gVA and a
// write raises a permission fault that the hypervisor resolves by copying.
func (hv *Hypervisor) ContentShareRO(vmA *VM, gpaA uint64, vmB *VM, gpaB uint64) error {
	maA, okA := vmA.HostPT.Translate(addr.PageToVA(gpaA))
	if !okA {
		return fmt.Errorf("virt: gPA %#x unmapped in VM %d", gpaA, vmA.VMID)
	}
	if err := vmB.HostPT.Map(addr.PageToVA(gpaB), maA, addr.PermRO, false); err != nil {
		return err
	}
	vmA.HostPT.SetPerm(addr.PageToVA(gpaA), addr.PermRO)
	hv.ContentShares.Inc()
	return nil
}

// BreakContentShare gives vm's gPA frame a private machine copy again
// after a write permission fault.
func (hv *Hypervisor) BreakContentShare(vm *VM, gpa uint64) error {
	ma, ok := hv.Machine.AllocFrame()
	if !ok {
		return fmt.Errorf("virt: out of machine memory for CoW")
	}
	return vm.HostPT.Map(addr.PageToVA(gpa), ma, addr.PermRW, false)
}

// Walk2DResult reports a two-dimensional page walk.
type Walk2DResult struct {
	// Path lists every machine address read: up to 4 host-walk reads per
	// guest level plus the guest PTE itself, plus the final host walk of
	// the data gPA — 24 reads for a full walk.
	Path []addr.PA
	// GuestPTE is the guest leaf (gVA -> gPA).
	GuestPTE pagetable.PTE
	// GPA is the guest-physical address of the data.
	GPA addr.GPA
	// MA is the final machine address.
	MA addr.PA
	// HostShared reports a hypervisor-induced synonym on the data page.
	HostShared bool
	OK         bool
	// NestedTLBHits counts host walks skipped by the nested TLB.
	NestedTLBHits int
}

// Walker2D performs nested (gVA -> gPA -> MA) walks for one VM. A nested
// TLB (gPA -> MA) models the translation caching that state-of-the-art 2D
// walkers use to skip host walks.
type Walker2D struct {
	VM *VM
	// NestedTLB may be nil to model a walker without host-walk caching.
	NestedTLB *tlb.TLB
	// Walks counts full 2D walks performed.
	Walks stats.Counter
	// Accesses counts total memory reads issued by walks.
	Accesses stats.Counter
}

// NewWalker2D creates a 2D walker; withNestedTLB adds a 64-entry nested TLB.
func NewWalker2D(vm *VM, withNestedTLB bool) *Walker2D {
	w := &Walker2D{VM: vm}
	if withNestedTLB {
		w.NestedTLB = tlb.New(tlb.Config{Name: "nested-tlb", Entries: 64, Ways: 8, Latency: 1})
	}
	return w
}

// hostPath appends the machine addresses needed to translate one gPA,
// consulting the nested TLB first, and returns the MA.
func (w *Walker2D) hostPath(gpa addr.GPA, path []addr.PA) ([]addr.PA, addr.PA, bool, bool) {
	vpn := uint64(gpa) >> addr.PageBits
	if w.NestedTLB != nil {
		if e, ok := w.NestedTLB.Lookup(hostASID(w.VM.VMID), vpn); ok {
			return path, addr.FrameToPA(e.PFN) + addr.PA(uint64(gpa)&(addr.PageSize-1)), e.Shared, true
		}
	}
	hostWalk, pte, ok := w.VM.HostPT.WalkPath(addr.VA(gpa))
	path = append(path, hostWalk...)
	if !ok {
		return path, 0, false, false
	}
	if w.NestedTLB != nil {
		w.NestedTLB.Insert(tlb.Entry{
			ASID: hostASID(w.VM.VMID), VPN: vpn, PFN: pte.Frame,
			Perm: pte.Perm, Shared: pte.Shared,
		})
	}
	return path, addr.FrameToPA(pte.Frame) + addr.PA(uint64(gpa)&(addr.PageSize-1)), pte.Shared, true
}

// Walk translates (asid, gva) through the guest tables of process p and
// the host tables, recording every memory access a hardware 2D walker
// would issue.
func (w *Walker2D) Walk(p *osmodel.Process, gva addr.VA) Walk2DResult {
	w.Walks.Inc()
	var res Walk2DResult
	guestPath, guestPTE, ok := p.PT.WalkPath(gva)
	// Each guest-table read is at a gPA that itself needs host translation.
	for _, gSlot := range guestPath {
		before := len(res.Path)
		var ma addr.PA
		var hok bool
		res.Path, ma, _, hok = w.hostPath(addr.GPA(gSlot), res.Path)
		if len(res.Path) == before {
			res.NestedTLBHits++
		}
		if !hok {
			w.Accesses.Add(uint64(len(res.Path)))
			return res
		}
		res.Path = append(res.Path, ma) // the guest PTE read itself
	}
	if !ok {
		w.Accesses.Add(uint64(len(res.Path)))
		return res
	}
	res.GuestPTE = guestPTE
	if guestPTE.Huge {
		// A 2 MiB guest leaf keeps the low 21 bits of the gVA.
		res.GPA = addr.GPA(uint64(guestPTE.Frame)<<addr.PageBits | uint64(gva)&(addr.HugePageSize-1))
	} else {
		res.GPA = addr.GPA(uint64(guestPTE.Frame)<<addr.PageBits | uint64(gva.PageOffset()))
	}
	before := len(res.Path)
	var hostShared bool
	var ma addr.PA
	var hok bool
	res.Path, ma, hostShared, hok = w.hostPath(res.GPA, res.Path)
	if len(res.Path) == before {
		res.NestedTLBHits++
	}
	if !hok {
		w.Accesses.Add(uint64(len(res.Path)))
		return res
	}
	res.MA = ma
	res.HostShared = hostShared
	res.OK = true
	w.Accesses.Add(uint64(len(res.Path)))
	return res
}
