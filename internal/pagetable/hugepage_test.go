package pagetable

import (
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/mem"
)

func TestMapHugeLookupTranslate(t *testing.T) {
	tbl := newTables(t)
	va := addr.VA(0x4000_0000) // 2 MiB aligned
	pa := addr.PA(0x80_0000)
	if err := tbl.MapHuge(va, pa, addr.PermRW, false); err != nil {
		t.Fatal(err)
	}
	pte, ok := tbl.Lookup(va)
	if !ok || !pte.Huge || pte.Frame != pa.Frame() {
		t.Fatalf("lookup = %+v ok=%v", pte, ok)
	}
	// Every 4 KiB page of the 2 MiB region resolves through the one entry.
	for off := uint64(0); off < addr.HugePageSize; off += addr.PageSize {
		got, ok := tbl.Translate(va + addr.VA(off) + 0x123)
		if !ok || got != pa+addr.PA(off)+0x123 {
			t.Fatalf("translate +%#x = %#x ok=%v", off, uint64(got), ok)
		}
	}
	// Outside the huge page: unmapped.
	if _, ok := tbl.Lookup(va + addr.HugePageSize); ok {
		t.Error("adjacent huge region mapped")
	}
	if tbl.Mapped != 1 {
		t.Errorf("mapped = %d", tbl.Mapped)
	}
}

func TestMapHugeWalkIsShorter(t *testing.T) {
	tbl := newTables(t)
	tbl.MapHuge(0x4000_0000, 0x80_0000, addr.PermRW, false)
	tbl.Map(0x5000_0000, 0x10_0000, addr.PermRW, false)
	path, pte, ok := tbl.WalkPath(0x4000_0000 + 0x1234)
	if !ok || !pte.Huge {
		t.Fatalf("huge walk: %+v ok=%v", pte, ok)
	}
	if len(path) != Levels-1 {
		t.Errorf("huge walk length = %d, want %d", len(path), Levels-1)
	}
	path4k, _, _ := tbl.WalkPath(0x5000_0000)
	if len(path4k) != Levels {
		t.Errorf("4K walk length = %d", len(path4k))
	}
}

func TestMapHugeAlignmentErrors(t *testing.T) {
	tbl := newTables(t)
	if err := tbl.MapHuge(0x1000, 0x80_0000, addr.PermRW, false); err == nil {
		t.Error("unaligned VA accepted")
	}
	if err := tbl.MapHuge(0x4000_0000, 0x1000, addr.PermRW, false); err == nil {
		t.Error("unaligned PA accepted")
	}
	if err := tbl.MapHuge(addr.VA(1)<<52, 0, addr.PermRW, false); err == nil {
		t.Error("non-canonical VA accepted")
	}
}

func TestMixingHugeAnd4KRejected(t *testing.T) {
	tbl := newTables(t)
	tbl.MapHuge(0x4000_0000, 0x80_0000, addr.PermRW, false)
	if err := tbl.Map(0x4000_1000, 0x1000, addr.PermRW, false); err == nil {
		t.Error("4K map inside huge mapping accepted")
	}
	tbl.Map(0x5000_0000, 0x1000, addr.PermRW, false)
	if err := tbl.MapHuge(0x5000_0000, 0x80_0000, addr.PermRW, false); err == nil {
		t.Error("huge map over 4K mappings accepted")
	}
	// Re-mapping a huge page in place is fine.
	if err := tbl.MapHuge(0x4000_0000, 0xc0_0000, addr.PermRW, false); err != nil {
		t.Errorf("huge remap rejected: %v", err)
	}
}

func TestHugeUnmapAndFlags(t *testing.T) {
	tbl := newTables(t)
	tbl.MapHuge(0x4000_0000, 0x80_0000, addr.PermRW, true)
	pte, _ := tbl.Lookup(0x4000_0000)
	if !pte.Shared {
		t.Error("shared bit lost on huge mapping")
	}
	if !tbl.SetPerm(0x4000_0000, addr.PermRO) {
		t.Fatal("SetPerm on huge failed")
	}
	if !tbl.SetShared(0x4000_0000, false) {
		t.Fatal("SetShared on huge failed")
	}
	pte, _ = tbl.Lookup(0x4000_0000)
	if pte.Perm != addr.PermRO || pte.Shared || !pte.Huge {
		t.Errorf("after updates: %+v", pte)
	}
	if !tbl.Unmap(0x4000_0123) {
		t.Fatal("huge unmap failed")
	}
	if _, ok := tbl.Lookup(0x4000_0000); ok {
		t.Error("huge mapping survived unmap")
	}
}

func TestHugePTEEncodeRoundTrip(t *testing.T) {
	p := PTE{Present: true, Frame: 0x800, Perm: addr.PermRW, Huge: true}
	if got := DecodePTE(p.Encode()); got != p {
		t.Errorf("round trip: %+v", got)
	}
}

func TestHugeOutOfMemory(t *testing.T) {
	alloc := mem.NewAllocator(2 * addr.PageSize)
	tbl, err := New(alloc, mem.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	alloc.AllocFrame() // exhaust
	if err := tbl.MapHuge(0x4000_0000, 0x80_0000, addr.PermRW, false); err == nil {
		t.Error("huge map succeeded without table memory")
	}
}
