package core

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/energy"
	"hybridvc/internal/mem"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/pipeline"
	"hybridvc/internal/segment"
	"hybridvc/internal/stats"
	"hybridvc/internal/tlb"
)

// DelayedKind selects the delayed translation mechanism used after LLC
// misses for non-synonym addresses.
type DelayedKind int

const (
	// DelayedPageTLB uses a conventional fixed-granularity TLB backed by
	// the hardware page walker (Section IV-A1).
	DelayedPageTLB DelayedKind = iota
	// DelayedSegments uses the scalable many-segment translation: index
	// tree + index cache + segment table, optionally fronted by the
	// segment cache (Section IV-C).
	DelayedSegments
)

// HybridConfig parameterizes the hybrid virtual caching MMU.
type HybridConfig struct {
	Hier   cache.HierarchyConfig
	DRAM   mem.DRAMConfig
	Energy energy.Model

	// SynTLBEntries sizes the per-core synonym TLB (paper: 64, 4-way).
	SynTLBEntries int
	// Delayed picks the post-LLC translation mechanism.
	Delayed DelayedKind
	// DelayedTLBEntries sizes the delayed TLB (DelayedPageTLB only).
	DelayedTLBEntries int
	// WithSegmentCache enables the 128-entry SC (DelayedSegments only).
	WithSegmentCache bool
	// IndexCacheBytes sizes the index cache (default 32 KiB).
	IndexCacheBytes int
	// FilterBypass models an Enigma-style organization: no synonym
	// filter, every access treated as non-synonym (sharing must be
	// handled by coarse first-level segments, outside this model's
	// workloads).
	FilterBypass bool
	// FPRebuildThreshold enables the adaptive filter rebuild policy
	// (Section III-B: "if such changes ... generate too many false
	// positives, the OS can reconstruct the filter"): when the
	// false-positive fraction of an address space's accesses within a
	// window exceeds this threshold, the MMU asks the OS to rebuild its
	// filter. 0 disables the policy.
	FPRebuildThreshold float64
	// FPWindow is the per-ASID access window for the policy (default 16384).
	FPWindow uint64
	// ParallelDelayed starts delayed translation in parallel with the LLC
	// access instead of serially after the miss (Section IV-C): the
	// translation latency hides behind the LLC lookup, but the delayed
	// structures are probed on every LLC access reaching them from an L2
	// miss — more energy for less latency. The paper (and the default)
	// uses serial access to save energy.
	ParallelDelayed bool
}

// DefaultHybridConfig returns the paper's configuration for n cores with
// many-segment delayed translation and the segment cache.
func DefaultHybridConfig(n int) HybridConfig {
	return HybridConfig{
		Hier:             cache.DefaultHierarchyConfig(n),
		DRAM:             mem.DefaultDRAMConfig(),
		Energy:           energy.DefaultModel(),
		SynTLBEntries:    64,
		Delayed:          DelayedSegments,
		WithSegmentCache: true,
		IndexCacheBytes:  32 << 10,
	}
}

// delayedTLBLatency returns the lookup latency of a delayed TLB by size:
// delayed TLBs are off the critical core-to-L1 path, so they may be large,
// but bigger arrays are slower.
func delayedTLBLatency(entries int) uint64 {
	switch {
	case entries <= 1024:
		return 7
	case entries <= 2048:
		return 8
	case entries <= 4096:
		return 9
	case entries <= 8192:
		return 10
	case entries <= 16384:
		return 12
	case entries <= 32768:
		return 14
	default:
		return 16
	}
}

// permKey packs (ASID, VPN) into one word: the VPN needs VABits-PageBits
// = 36 bits, leaving the top bits for the 16-bit ASID. A scalar key keeps
// the shadow-permission map on the runtime's fast uint64 path — this
// lookup runs once per virtually routed access, so hashing a struct key
// was measurable on the hot path.
type permKey uint64

func makePermKey(asid addr.ASID, page uint64) permKey {
	return permKey(uint64(asid)<<(addr.VABits-addr.PageBits) | page)
}

// asid recovers the address space a key belongs to (ASID flushes).
func (k permKey) asid() addr.ASID {
	return addr.ASID(k >> (addr.VABits - addr.PageBits))
}

// HybridMMU is the hybrid virtual caching memory system. It is wired as
// pipeline stages: HybridMMU itself is the FrontEnd (synonym filter,
// synonym TLB path, permission faults) and the Backend (delayed
// translation, writeback translation) around the shared engine.
type HybridMMU struct {
	*pipeline.Engine
	cfg    HybridConfig
	kernel *osmodel.Kernel

	synTLB []*tlb.TLB

	// Page-granularity delayed translation.
	delayedTLB *tlb.TLB
	// Segment-based delayed translation.
	translator *segment.Translator

	// shadowPerm caches translation permissions for cache fills
	// (simulator bookkeeping, not hardware state).
	shadowPerm *permTable

	// fpWindow tracks per-ASID (accesses, false positives) for the
	// adaptive filter rebuild policy.
	fpWindow map[addr.ASID]*fpStats

	// Statistics.
	SynonymCandidates   stats.Counter // accesses routed to the TLB path
	FalsePositives      stats.Counter // candidates that were non-synonyms
	TrueSynonymAccesses stats.Counter
	NonSynonymAccesses  stats.Counter
	DelayedTranslations stats.Counter // delayed translations on LLC misses
	WritebackXlations   stats.Counter // delayed translations for writebacks
	FilterReloads       stats.Counter
	TLBShootdowns       stats.Counter
	DelayedTLBMisses    stats.Counter
	// FilterRebuilds counts adaptive filter reconstructions triggered by
	// excessive false positives.
	FilterRebuilds stats.Counter
}

// fpStats is one ASID's false-positive window.
type fpStats struct {
	accesses uint64
	fps      uint64
}

// NewHybridMMU builds the hybrid MMU over the given kernel and registers
// itself as the kernel's shootdown sink.
func NewHybridMMU(cfg HybridConfig, k *osmodel.Kernel) *HybridMMU {
	if cfg.SynTLBEntries == 0 {
		cfg.SynTLBEntries = 64
	}
	if cfg.IndexCacheBytes == 0 {
		cfg.IndexCacheBytes = 32 << 10
	}
	if cfg.DelayedTLBEntries == 0 {
		cfg.DelayedTLBEntries = 1024
	}
	if cfg.FPWindow == 0 {
		cfg.FPWindow = 16384
	}
	if cfg.Delayed == DelayedPageTLB {
		// Larger delayed TLB arrays cost more energy per access.
		cfg.Energy.PerAccess[energy.DelayedTLB] = energy.DelayedTLBEnergy(cfg.DelayedTLBEntries)
	}
	m := &HybridMMU{
		cfg:        cfg,
		kernel:     k,
		shadowPerm: newPermTable(),
		fpWindow:   make(map[addr.ASID]*fpStats),
	}
	m.Engine = pipeline.NewEngine(NewBase(cfg.Hier, cfg.DRAM, cfg.Energy), m, nil, m)
	for i := 0; i < cfg.Hier.NumCores; i++ {
		m.synTLB = append(m.synTLB, tlb.New(tlb.Config{
			Name: fmt.Sprintf("syn-tlb[%d]", i), Entries: cfg.SynTLBEntries, Ways: 4, Latency: 1,
		}))
	}
	switch cfg.Delayed {
	case DelayedPageTLB:
		m.delayedTLB = tlb.New(tlb.Config{
			Name:    "delayed-tlb",
			Entries: cfg.DelayedTLBEntries,
			Ways:    8,
			Latency: delayedTLBLatency(cfg.DelayedTLBEntries),
		})
	case DelayedSegments:
		var sc *segment.SegCache
		if cfg.WithSegmentCache {
			sc = segment.NewSegCache(segment.SegCacheEntries)
		}
		ic := segment.NewIndexCache(cfg.IndexCacheBytes)
		tcfg := segment.DefaultTranslatorConfig()
		tcfg.MemLatency = func(pa addr.PA) uint64 { return m.DRAM.Access(pa) }
		m.translator = segment.NewTranslator(tcfg, sc, ic, k.SegMgr)
		k.SegMgr.OnRebuild = ic.Flush
	}
	k.AttachSink(m)
	return m
}

// Name implements MemSystem.
func (m *HybridMMU) Name() string {
	switch {
	case m.cfg.FilterBypass && m.cfg.Delayed == DelayedPageTLB:
		return fmt.Sprintf("enigma-dtlb%d", m.cfg.DelayedTLBEntries)
	case m.cfg.Delayed == DelayedPageTLB:
		return fmt.Sprintf("hybrid-dtlb%d", m.cfg.DelayedTLBEntries)
	case m.cfg.WithSegmentCache:
		return "hybrid-manyseg+sc"
	default:
		return "hybrid-manyseg"
	}
}

// Translator exposes the segment translator (nil for page-TLB mode).
func (m *HybridMMU) Translator() *segment.Translator { return m.translator }

// DelayedTLB exposes the delayed TLB (nil for segment mode).
func (m *HybridMMU) DelayedTLB() *tlb.TLB { return m.delayedTLB }

// SynTLB exposes core i's synonym TLB.
func (m *HybridMMU) SynTLB(core int) *tlb.TLB { return m.synTLB[core] }

// fillPerm returns the permission to record on a fill of (asid, page),
// from the shadow cache or the process page tables.
func (m *HybridMMU) fillPerm(proc *osmodel.Process, va addr.VA) addr.Perm {
	key := makePermKey(proc.ASID, va.Page())
	if p, ok := m.shadowPerm.get(key); ok {
		return p
	}
	pte, ok := proc.PT.Lookup(va.PageAligned())
	if !ok {
		return addr.PermNone
	}
	m.shadowPerm.set(key, pte.Perm)
	return pte.Perm
}

// Route implements pipeline.FrontEnd: the pre-L1 part of the Figure 1
// flow. The synonym filter probe overlaps the L1 access for non-synonym
// addresses, so it adds no latency; only energy.
func (m *HybridMMU) Route(req *Request, res *Result) pipeline.Decision {
	candidate := false
	if !m.cfg.FilterBypass {
		m.Acc.Access(energy.SynonymFilter, 1)
		candidate = req.Proc.Filter.IsCandidate(req.VA)
		if p := m.Probe(); p != nil {
			p.Filter(pipeline.FilterEvent{Core: req.Core, Candidate: candidate})
		}
		if m.cfg.FPRebuildThreshold > 0 {
			m.stepRebuildPolicy(req.Proc)
		}
	}
	if candidate {
		m.SynonymCandidates.Inc()
		return m.routeSynonym(req, res)
	}
	m.NonSynonymAccesses.Inc()
	return m.routeVirtual(req, res)
}

// permPrefetchBlock is how many requests ahead the batched front ends
// warm shadow-permission table slots. The table is large on big
// footprints, so its probes are host-cache misses; touching a block of
// home slots up front lets those independent loads overlap.
const permPrefetchBlock = 32

var permTouchSink uint64

// prefetchPerms warms the shadow-permission slots for the next block of
// requests. Reads only; semantically invisible.
func (m *HybridMMU) prefetchPerms(reqs []Request) {
	n := len(reqs)
	if n > permPrefetchBlock {
		n = permPrefetchBlock
	}
	var t uint64
	for j := 0; j < n; j++ {
		t += m.shadowPerm.touch(makePermKey(reqs[j].Proc.ASID, reqs[j].VA.Page()))
	}
	permTouchSink += t
}

// RouteBatch implements pipeline.BatchFrontEnd: it decodes the maximal
// prefix of reqs whose routing is pure — non-synonym accesses (and filter
// false positives) with a mapped, permission-satisfying page, and true
// synonym accesses that hit the synonym TLB. Each element is probed
// quietly first; only elements that prove pure commit their bookkeeping
// (filter and TLB statistics, LRU, energy), so the stopping element is
// left for the engine's scalar path to redo exactly once. Elements that
// need a timed page walk or an OS fault stop the run.
func (m *HybridMMU) RouteBatch(reqs []Request, res []Result, dec []pipeline.Decision) int {
	if m.cfg.FPRebuildThreshold > 0 {
		// The adaptive rebuild policy may reconstruct the filter between
		// any two accesses, invalidating quiet probes: stay scalar.
		return 0
	}
	i := 0
	for ; i < len(reqs); i++ {
		if i%permPrefetchBlock == 0 {
			m.prefetchPerms(reqs[i:])
		}
		req := &reqs[i]
		isWrite := req.Kind == cache.Write
		if m.cfg.FilterBypass {
			perm := m.fillPerm(req.Proc, req.VA)
			if perm == addr.PermNone || (isWrite && !perm.AllowsWrite()) {
				break
			}
			m.NonSynonymAccesses.Inc()
			dec[i] = pipeline.GoVirtual(perm)
			continue
		}
		if !req.Proc.Filter.ProbeQuiet(req.VA) {
			perm := m.fillPerm(req.Proc, req.VA)
			if perm == addr.PermNone || (isWrite && !perm.AllowsWrite()) {
				break
			}
			m.Acc.Access(energy.SynonymFilter, 1)
			req.Proc.Filter.CountNonCandidates(1)
			m.NonSynonymAccesses.Inc()
			dec[i] = pipeline.GoVirtual(perm)
			continue
		}
		// Synonym candidate: pure only when the synonym TLB already holds
		// the page (a miss needs a timed walk).
		st := m.synTLB[req.Core]
		e, hit := st.Probe(req.Proc.ASID, req.VA.Page())
		if !hit {
			break
		}
		if e.NonSynonym {
			// Filter false positive corrected by the TLB entry: the access
			// proceeds virtually like a non-synonym.
			perm := m.fillPerm(req.Proc, req.VA)
			if perm == addr.PermNone || (isWrite && !perm.AllowsWrite()) {
				break
			}
			m.Acc.Access(energy.SynonymFilter, 1)
			req.Proc.Filter.IsCandidate(req.VA)
			m.SynonymCandidates.Inc()
			m.Acc.Access(energy.SynonymTLB, 1)
			res[i].Latency += st.Config().Latency
			st.Lookup(req.Proc.ASID, req.VA.Page())
			m.FalsePositives.Inc()
			dec[i] = pipeline.GoVirtual(perm)
			continue
		}
		if isWrite && !e.Perm.AllowsWrite() {
			break
		}
		m.Acc.Access(energy.SynonymFilter, 1)
		req.Proc.Filter.IsCandidate(req.VA)
		m.SynonymCandidates.Inc()
		m.Acc.Access(energy.SynonymTLB, 1)
		res[i].Latency += st.Config().Latency
		st.Lookup(req.Proc.ASID, req.VA.Page())
		m.TrueSynonymAccesses.Inc()
		pa := addr.FrameToPA(e.PFN) + addr.PA(req.VA.PageOffset())
		dec[i] = pipeline.GoPhysical(pa, e.Perm)
	}
	return i
}

// routeSynonym handles synonym candidates: TLB before L1 (Section III-A).
func (m *HybridMMU) routeSynonym(req *Request, res *Result) pipeline.Decision {
	st := m.synTLB[req.Core]
	m.Acc.Access(energy.SynonymTLB, 1)
	res.Latency += st.Config().Latency

	e, hit := st.Lookup(req.Proc.ASID, req.VA.Page())
	if p := m.Probe(); p != nil {
		p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBSynonym, Hit: hit})
	}
	if !hit {
		leaf, lat, ok := m.TimedWalk(req.Core, req.Proc, req.VA.PageAligned())
		res.Latency += lat
		if !ok {
			fl, fixed := m.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
			res.Latency += fl
			res.Fault = true
			if !fixed {
				return pipeline.DoneNow()
			}
			leaf, lat, ok = m.TimedWalk(req.Core, req.Proc, req.VA.PageAligned())
			res.Latency += lat
			if !ok {
				return pipeline.DoneNow()
			}
		}
		ne := tlb.Entry{
			ASID: req.Proc.ASID, VPN: req.VA.Page(), PFN: leaf.FrameFor4K(req.VA),
			Perm: leaf.Perm, Shared: leaf.Shared, NonSynonym: !leaf.Shared,
		}
		st.Insert(ne)
		e = &ne
	}

	if e.NonSynonym {
		// Filter false positive: the TLB entry corrects it; proceed with
		// ASID+VA (the L1 block accessed with ASID+VA is used).
		m.FalsePositives.Inc()
		if p := m.Probe(); p != nil {
			p.FalsePositive(pipeline.FalsePositiveEvent{Core: req.Core, VA: req.VA})
		}
		if w := m.fpWindow[req.Proc.ASID]; w != nil {
			w.fps++
		}
		return m.routeVirtual(req, res)
	}
	m.TrueSynonymAccesses.Inc()

	// Permission check before the cache access.
	if req.Kind == cache.Write && !e.Perm.AllowsWrite() {
		fl, fixed := m.HandleFault(req.Proc, req.VA, true)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		// The fault remapped the page privately (CoW); retry as a fresh
		// access (the shootdown already removed the stale entry).
		m.Retry(req, res)
		return pipeline.DoneNow()
	}

	pa := addr.FrameToPA(e.PFN) + addr.PA(req.VA.PageOffset())
	return pipeline.GoPhysical(pa, e.Perm)
}

// routeVirtual handles non-synonym accesses: demand-paging and CoW faults
// up front, then ASID+VA through the whole hierarchy.
func (m *HybridMMU) routeVirtual(req *Request, res *Result) pipeline.Decision {
	perm := m.fillPerm(req.Proc, req.VA)
	if perm == addr.PermNone {
		// Unmapped: demand paging fault, then retry.
		fl, fixed := m.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		perm = m.fillPerm(req.Proc, req.VA)
		if perm == addr.PermNone {
			return pipeline.DoneNow()
		}
	}
	if req.Kind == cache.Write && !perm.AllowsWrite() {
		fl, fixed := m.HandleFault(req.Proc, req.VA, true)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		perm = m.fillPerm(req.Proc, req.VA)
	}
	return pipeline.GoVirtual(perm)
}

// Finish implements pipeline.Backend: delayed translation after the LLC,
// DRAM, and writeback translation.
func (m *HybridMMU) Finish(req *Request, res *Result, hres *cache.AccessResult) {
	if m.cfg.ParallelDelayed && hres.HitLevel == 3 {
		// Parallel mode: the translation was launched alongside the LLC
		// lookup; the hit makes its result unnecessary, but the energy
		// (and structure state) is spent.
		m.DelayedTranslations.Inc()
		m.delayedTranslate(req.Core, req.Proc, req.VA, false)
	}
	if hres.LLCMiss {
		res.LLCMiss = true
		m.DelayedTranslations.Inc()
		pa, lat, ok := m.delayedTranslate(req.Core, req.Proc, req.VA, false)
		if m.cfg.ParallelDelayed {
			// The walk overlapped the LLC lookup; only the excess shows.
			if llcLat := m.Hier.Config().LLC.HitLatency; lat > llcLat {
				lat -= llcLat
			} else {
				lat = 0
			}
		}
		res.Latency += lat
		if !ok {
			fl, _ := m.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
			res.Latency += fl
			res.Fault = true
			return
		}
		res.Latency += m.DRAM.Access(pa)
	}

	// Dirty virtual lines leaving the LLC need translation to reach
	// memory; this is off the critical path but consumes translation
	// energy and state.
	for _, wb := range hres.Writebacks {
		if !wb.Synonym {
			m.WritebackXlations.Inc()
			m.delayedTranslate(req.Core, m.procFor(wb.ASID, req.Proc), addr.VA(wb.Addr), true)
		}
	}
}

// stepRebuildPolicy advances the adaptive filter rebuild window for the
// process and asks the OS to reconstruct the filter when stale bits
// generate too many false positives (Section III-B).
func (m *HybridMMU) stepRebuildPolicy(proc *osmodel.Process) {
	w := m.fpWindow[proc.ASID]
	if w == nil {
		w = &fpStats{}
		m.fpWindow[proc.ASID] = w
	}
	w.accesses++
	if w.accesses < m.cfg.FPWindow {
		return
	}
	if float64(w.fps) > m.cfg.FPRebuildThreshold*float64(w.accesses) {
		m.kernel.RebuildFilter(proc)
		m.FilterRebuilds.Inc()
	}
	w.accesses, w.fps = 0, 0
}

// procFor resolves the process owning an ASID (writebacks may belong to a
// different process than the requester).
func (m *HybridMMU) procFor(asid addr.ASID, fallback *osmodel.Process) *osmodel.Process {
	if p := m.kernel.Process(asid); p != nil {
		return p
	}
	return fallback
}

// delayedTranslate resolves a non-synonym ASID+VA to a PA after an LLC
// miss, via the configured mechanism. wb marks writeback translations
// (dirty evicted lines) as opposed to demand misses.
func (m *HybridMMU) delayedTranslate(core int, proc *osmodel.Process, va addr.VA, wb bool) (addr.PA, uint64, bool) {
	switch m.cfg.Delayed {
	case DelayedSegments:
		if m.cfg.WithSegmentCache {
			m.Acc.Access(energy.SegmentCache, 1)
		}
		var tres segment.TranslateResult
		if m.ScratchMode() {
			tres = m.translator.TranslateReuse(proc.ASID, va)
		} else {
			tres = m.translator.Translate(proc.ASID, va)
		}
		if !tres.SCHit {
			m.Acc.Access(energy.IndexCache, uint64(tres.ICProbes))
			m.Acc.Access(energy.SegmentTable, 1)
		}
		if p := m.Probe(); p != nil {
			p.Delayed(pipeline.DelayedEvent{Core: core, Writeback: wb,
				SCHit: tres.SCHit, Depth: tres.ICProbes, Fault: tres.Fault})
		}
		if tres.Fault {
			return 0, tres.Latency, false
		}
		return tres.PA, tres.Latency, true
	default: // DelayedPageTLB
		m.Acc.Access(energy.DelayedTLB, 1)
		lat := m.delayedTLB.Config().Latency
		if e, ok := m.delayedTLB.Lookup(proc.ASID, va.Page()); ok {
			if p := m.Probe(); p != nil {
				p.TLB(pipeline.TLBEvent{Core: core, Level: pipeline.TLBDelayed, Hit: true})
				p.Delayed(pipeline.DelayedEvent{Core: core, Writeback: wb})
			}
			return addr.FrameToPA(e.PFN) + addr.PA(va.PageOffset()), lat, true
		}
		m.DelayedTLBMisses.Inc()
		if p := m.Probe(); p != nil {
			p.TLB(pipeline.TLBEvent{Core: core, Level: pipeline.TLBDelayed, Hit: false})
		}
		steps := m.WalkSteps.Value()
		leaf, wlat, ok := m.TimedWalk(core, proc, va.PageAligned())
		lat += wlat
		if p := m.Probe(); p != nil {
			p.Delayed(pipeline.DelayedEvent{Core: core, Writeback: wb,
				Depth: int(m.WalkSteps.Value() - steps), Fault: !ok})
		}
		if !ok {
			return 0, lat, false
		}
		m.delayedTLB.Insert(tlb.Entry{
			ASID: proc.ASID, VPN: va.Page(), PFN: leaf.FrameFor4K(va),
			Perm: leaf.Perm, Shared: leaf.Shared,
		})
		return leaf.PA(va), lat, true
	}
}

// --- osmodel.ShootdownSink ---

// TLBShootdown invalidates (asid, vpn) in every synonym TLB and the
// delayed translation structures, and drops the shadow permission.
func (m *HybridMMU) TLBShootdown(asid addr.ASID, vpn uint64) {
	m.TLBShootdowns.Inc()
	for _, st := range m.synTLB {
		st.Shootdown(asid, vpn)
	}
	if m.delayedTLB != nil {
		m.delayedTLB.Shootdown(asid, vpn)
	}
	if m.translator != nil && m.translator.SC != nil {
		// Conservative: the 2 MiB granule containing the page.
		m.translator.SC.FlushAll()
	}
	m.shadowPerm.del(makePermKey(asid, vpn))
}

// FlushPage removes a page's lines from the hierarchy.
func (m *HybridMMU) FlushPage(page addr.Name) {
	m.Hier.FlushPage(page)
	if !page.Synonym {
		m.shadowPerm.del(makePermKey(page.ASID, page.Page()))
	}
}

// SetPagePerm updates cached permission bits (r/o content sharing).
func (m *HybridMMU) SetPagePerm(page addr.Name, perm addr.Perm) {
	m.Hier.SetPagePerm(page, perm)
	if !page.Synonym {
		m.shadowPerm.set(makePermKey(page.ASID, page.Page()), perm)
	}
}

// FilterUpdate models the per-core filter storage reload after the OS
// changes an address space's synonym filter.
func (m *HybridMMU) FilterUpdate(asid addr.ASID) {
	m.FilterReloads.Inc()
}

// FlushASID removes the address space from every hardware structure so
// the OS can recycle the identifier.
func (m *HybridMMU) FlushASID(asid addr.ASID) {
	m.Hier.FlushASID(asid)
	for _, st := range m.synTLB {
		st.FlushASID(asid)
	}
	if m.delayedTLB != nil {
		m.delayedTLB.FlushASID(asid)
	}
	if m.translator != nil && m.translator.SC != nil {
		m.translator.SC.FlushAll()
	}
	m.shadowPerm.flushASID(asid)
	delete(m.fpWindow, asid)
}
