package addr

import (
	"testing"
	"testing/quick"
)

func TestMakeASIDRoundTrip(t *testing.T) {
	cases := []struct{ vmid, proc uint32 }{
		{0, 0}, {0, 1}, {1, 0}, {MaxVMID, MaxProc}, {3, 777}, {63, 1023},
	}
	for _, c := range cases {
		a := MakeASID(c.vmid, c.proc)
		if a.VMID() != c.vmid || a.Proc() != c.proc {
			t.Errorf("MakeASID(%d,%d) = %v; round trip gave (%d,%d)",
				c.vmid, c.proc, a, a.VMID(), a.Proc())
		}
	}
}

func TestMakeASIDPanicsOutOfRange(t *testing.T) {
	for _, c := range []struct{ vmid, proc uint32 }{
		{MaxVMID + 1, 0}, {0, MaxProc + 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeASID(%d,%d) did not panic", c.vmid, c.proc)
				}
			}()
			MakeASID(c.vmid, c.proc)
		}()
	}
}

func TestASIDUniqueness(t *testing.T) {
	// Distinct (vmid, proc) pairs must map to distinct ASIDs.
	seen := make(map[ASID][2]uint32)
	for vmid := uint32(0); vmid < 8; vmid++ {
		for proc := uint32(0); proc < 64; proc++ {
			a := MakeASID(vmid, proc)
			if prev, dup := seen[a]; dup {
				t.Fatalf("ASID collision: (%d,%d) and (%d,%d) both map to %v",
					vmid, proc, prev[0], prev[1], a)
			}
			seen[a] = [2]uint32{vmid, proc}
		}
	}
}

func TestVAHelpers(t *testing.T) {
	v := VA(0x7f12_3456_789a)
	if got, want := v.Page(), uint64(0x7f12_3456_789a)>>12; got != want {
		t.Errorf("Page() = %#x, want %#x", got, want)
	}
	if got, want := v.HugePage(), uint64(0x7f12_3456_789a)>>21; got != want {
		t.Errorf("HugePage() = %#x, want %#x", got, want)
	}
	if got, want := v.Line(), uint64(0x7f12_3456_789a)>>6; got != want {
		t.Errorf("Line() = %#x, want %#x", got, want)
	}
	if got := v.PageOffset(); got != 0x89a {
		t.Errorf("PageOffset() = %#x, want 0x89a", got)
	}
	if got := v.LineAligned(); got != VA(0x7f12_3456_7880) {
		t.Errorf("LineAligned() = %#x", got)
	}
	if got := v.PageAligned(); got != VA(0x7f12_3456_7000) {
		t.Errorf("PageAligned() = %#x", got)
	}
	if !v.Canonical() {
		t.Error("48-bit address reported non-canonical")
	}
	if VA(1 << 52).Canonical() {
		t.Error("52-bit address reported canonical")
	}
}

func TestPAHelpers(t *testing.T) {
	p := PA(0x12_3456_789a)
	if got, want := p.Frame(), uint64(0x12_3456_789a)>>12; got != want {
		t.Errorf("Frame() = %#x, want %#x", got, want)
	}
	if FrameToPA(p.Frame()) != p.PageAligned() {
		t.Error("FrameToPA does not invert Frame")
	}
	if PageToVA(VA(p).Page()) != VA(p).PageAligned() {
		t.Error("PageToVA does not invert Page")
	}
}

func TestAlignmentProperties(t *testing.T) {
	f := func(raw uint64) bool {
		v := VA(raw % (1 << VABits))
		la := v.LineAligned()
		pa := v.PageAligned()
		return uint64(la)%LineSize == 0 &&
			uint64(pa)%PageSize == 0 &&
			la.Line() == v.Line() &&
			pa.Page() == v.Page() &&
			la <= v && v-la < LineSize &&
			pa <= v && v-pa < PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermBits(t *testing.T) {
	if PermNone.AllowsRead() || PermNone.AllowsWrite() {
		t.Error("PermNone allows access")
	}
	if !PermRO.AllowsRead() || PermRO.AllowsWrite() {
		t.Error("PermRO wrong")
	}
	if !PermRW.AllowsRead() || !PermRW.AllowsWrite() {
		t.Error("PermRW wrong")
	}
	if !PermExec.AllowsRead() || PermExec.AllowsWrite() {
		t.Error("PermExec wrong")
	}
	for _, p := range []Perm{PermNone, PermRO, PermRW, PermExec} {
		if p.String() == "" {
			t.Errorf("empty String for %d", p)
		}
	}
}

func TestNameIdentity(t *testing.T) {
	a := MakeASID(0, 7)
	b := MakeASID(0, 8)
	va := VA(0x1000_0040)

	vn := VirtName(a, va)
	if vn.Synonym {
		t.Error("VirtName produced synonym name")
	}
	if vn.Addr%LineSize != 0 {
		t.Error("VirtName not line aligned")
	}
	// Homonym protection: same VA, different ASID => different names.
	if vn == VirtName(b, va) {
		t.Error("names for different ASIDs compare equal (homonym bug)")
	}
	// Same line, different offsets => same name.
	if vn != VirtName(a, va+1) {
		t.Error("names within one line differ")
	}

	pn := PhysName(PA(0x2000_0040))
	if !pn.Synonym {
		t.Error("PhysName produced non-synonym name")
	}
	// A physical name never equals a virtual name even with matching bits.
	if pn == (Name{ASID: pn.ASID, Addr: pn.Addr}) {
		t.Error("synonym bit not part of identity")
	}
}

// TestNameKeyRoundTrip pins the bijection the cache's packed-key storage
// depends on: NameFromKey(n.Key()) == n for every representable name.
func TestNameKeyRoundTrip(t *testing.T) {
	addrs := []uint64{0, 0x40, 0x1000_0040, (1 << VABits) - LineSize}
	asids := []ASID{0, MakeASID(0, 7), ASID(0xffff)}
	for _, a := range addrs {
		for _, asid := range asids {
			for _, syn := range []bool{false, true} {
				n := Name{Addr: a, ASID: asid, Synonym: syn}
				if got := NameFromKey(n.Key()); got != n {
					t.Errorf("NameFromKey(%v.Key()) = %v", n, got)
				}
			}
		}
	}
}

func TestNameSamePage(t *testing.T) {
	a := MakeASID(0, 1)
	n1 := VirtName(a, 0x5000)
	n2 := VirtName(a, 0x5fc0)
	n3 := VirtName(a, 0x6000)
	if !n1.SamePage(n2) {
		t.Error("same-page names reported different")
	}
	if n1.SamePage(n3) {
		t.Error("different pages reported same")
	}
	if n1.SamePage(PhysName(PA(0x5000))) {
		t.Error("virtual and physical names reported same page")
	}
}

func TestNameString(t *testing.T) {
	if PhysName(0x40).String() != "P:0x40" {
		t.Errorf("PhysName string = %q", PhysName(0x40).String())
	}
	if VirtName(MakeASID(0, 1), 0x40).String() == "" {
		t.Error("VirtName string empty")
	}
}
