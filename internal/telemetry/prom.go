// Package telemetry is the daemon's production-observability layer: a
// dependency-free Prometheus text-format (exposition format v0.0.4)
// encoder and linter, a per-stage latency collector built on
// stats.Histogram, and job-lineage ID minting for request tracing.
//
// The package deliberately has no Prometheus client dependency — the
// daemon's metric surface is small and fixed, so a hand-rolled encoder
// that renders stats.HistogramSnapshot directly keeps the hot counters
// on the simulator's own primitives and the binary hermetic.
package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"

	"hybridvc/internal/stats"
)

// ContentType is the exposition-format content type served by GET
// /metrics when the client negotiates text/plain.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// LatencyScale converts the collector's microsecond histogram samples to
// the seconds Prometheus conventions require.
const LatencyScale = 1e-6

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Encoder renders metric families in Prometheus text exposition format.
// Families are emitted in call order; all series of one family must be
// emitted contiguously (repeated calls with the same name reuse the
// already-written # HELP/# TYPE header).
type Encoder struct {
	buf   bytes.Buffer
	typed map[string]string // family name → declared type
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{typed: make(map[string]string)}
}

// Bytes returns the rendered exposition.
func (e *Encoder) Bytes() []byte { return e.buf.Bytes() }

// Counter emits one counter sample (monotonic; name should end _total).
func (e *Encoder) Counter(name, help string, v uint64, labels ...Label) {
	e.family(name, help, "counter")
	e.sample(name, labels, float64(v))
}

// Gauge emits one gauge sample.
func (e *Encoder) Gauge(name, help string, v float64, labels ...Label) {
	e.family(name, help, "gauge")
	e.sample(name, labels, v)
}

// Histogram emits one histogram series from a stats.HistogramSnapshot:
// cumulative _bucket samples over the snapshot's per-bucket counts with
// inclusive upper bounds as `le` values (matching Prometheus `le`
// semantics exactly), a final +Inf bucket equal to the sample total,
// then _sum and _count. scale converts the histogram's integer sample
// unit to the exposed unit (e.g. LatencyScale for microseconds→seconds).
func (e *Encoder) Histogram(name, help string, s stats.HistogramSnapshot, scale float64, labels ...Label) {
	e.family(name, help, "histogram")
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		le := append(append([]Label(nil), labels...),
			Label{Name: "le", Value: formatValue(float64(b) * scale)})
		e.sample(name+"_bucket", le, float64(cum))
	}
	inf := append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"})
	e.sample(name+"_bucket", inf, float64(s.Total))
	e.sample(name+"_sum", labels, float64(s.Sum)*scale)
	e.sample(name+"_count", labels, float64(s.Total))
}

// family writes the # HELP/# TYPE header once per family. A family name
// reused with a different type is a programming error worth failing
// loudly on: the exposition would be unparseable.
func (e *Encoder) family(name, help, typ string) {
	if prev, ok := e.typed[name]; ok {
		if prev != typ {
			panic(fmt.Sprintf("telemetry: family %s redeclared as %s (was %s)", name, typ, prev))
		}
		return
	}
	e.typed[name] = typ
	fmt.Fprintf(&e.buf, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&e.buf, "# TYPE %s %s\n", name, typ)
}

func (e *Encoder) sample(name string, labels []Label, v float64) {
	e.buf.WriteString(name)
	if len(labels) > 0 {
		e.buf.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				e.buf.WriteByte(',')
			}
			// %q escapes \, " and newline exactly as the exposition
			// format requires for label values.
			fmt.Fprintf(&e.buf, "%s=%q", l.Name, l.Value)
		}
		e.buf.WriteByte('}')
	}
	e.buf.WriteByte(' ')
	e.buf.WriteString(formatValue(v))
	e.buf.WriteByte('\n')
}

// formatValue renders a sample value: shortest round-trip float, with
// the exposition format's spelling of infinities.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line: backslashes and newlines.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
