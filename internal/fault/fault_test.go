package fault_test

import (
	"testing"

	"hybridvc"
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/fault"
	"hybridvc/internal/tlb"
	"hybridvc/internal/workload"
)

// faultSpec is a small postgres-like multi-process sharing workload: big
// enough to exercise synonym classification, private regions and TLB
// fill, small enough to keep the checker sweeps cheap.
func faultSpec() workload.Spec {
	const mib = uint64(1) << 20
	return workload.Spec{
		Name: "faulty", Regions: []uint64{4 * mib, 4 * mib}, TouchFrac: 0.9,
		MemRatio: 0.5, StoreFrac: 0.3, Pattern: workload.Zipf, HotFrac: 0.1,
		DepFrac: 0.3, Procs: 2, SharedBytes: 2 * mib, SharedAccessFrac: 0.25,
	}
}

// buildFaulty assembles a system with a checker-audited injector attached.
func buildFaulty(t *testing.T, org hybridvc.Organization, fcfg fault.Config) (*hybridvc.System, *fault.Injector, *fault.Checker) {
	t.Helper()
	sys, err := hybridvc.New(hybridvc.Config{Org: org})
	if err != nil {
		t.Fatalf("New(%s): %v", org, err)
	}
	inj, ch, err := sys.InjectFaults(fcfg)
	if err != nil {
		t.Fatalf("InjectFaults(%s): %v", org, err)
	}
	if err := sys.LoadSpec(faultSpec()); err != nil {
		t.Fatalf("LoadSpec(%s): %v", org, err)
	}
	return sys, inj, ch
}

// TestSeedDeterminism pins the injector's core contract: the same seed
// and configuration produce a byte-identical report and an identical
// fault schedule.
func TestSeedDeterminism(t *testing.T) {
	run := func() (string, map[string]uint64, uint64) {
		sys, inj, ch := buildFaulty(t, hybridvc.HybridManySegSC, fault.Config{Seed: 7, Period: 1024})
		rep, err := sys.Run(30_000)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := inj.Err(); err != nil {
			t.Fatalf("invariant violation: %v", err)
		}
		return rep.JSON(), inj.Counts(), ch.Checks
	}
	j1, c1, n1 := run()
	j2, c2, n2 := run()
	if j1 != j2 {
		t.Errorf("same seed produced different reports")
	}
	if n1 != n2 {
		t.Errorf("check counts differ: %d vs %d", n1, n2)
	}
	total := uint64(0)
	for k, v := range c1 {
		if c2[k] != v {
			t.Errorf("fault kind %s: %d vs %d injections", k, v, c2[k])
		}
		total += v
	}
	if total == 0 {
		t.Fatalf("no faults injected")
	}
}

// TestDifferentSeedsDiverge guards against the injector ignoring its seed.
func TestDifferentSeedsDiverge(t *testing.T) {
	run := func(seed int64) string {
		sys, _, _ := buildFaulty(t, hybridvc.HybridManySegSC, fault.Config{Seed: seed, Period: 1024})
		rep, err := sys.Run(30_000)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep.JSON()
	}
	if run(3) == run(4) {
		t.Errorf("different seeds produced identical reports (injector not seeded?)")
	}
}

// TestAllOrgsAllFaults runs every organization under every fault kind
// (and once under the full mix) with the invariant checker auditing after
// each injection. Faults must perturb timing and traffic, never
// correctness.
func TestAllOrgsAllFaults(t *testing.T) {
	for _, org := range hybridvc.Organizations() {
		org := org
		cases := make(map[string][]fault.Kind, len(fault.AllKinds())+1)
		for _, k := range fault.AllKinds() {
			cases[k.String()] = []fault.Kind{k}
		}
		cases["mixed"] = nil // all kinds
		for label, ks := range cases {
			label, ks := label, ks
			t.Run(string(org)+"/"+label, func(t *testing.T) {
				t.Parallel()
				sys, inj, ch := buildFaulty(t, org, fault.Config{Seed: 11, Period: 512, Kinds: ks})
				if _, err := sys.Run(8_000); err != nil {
					t.Fatalf("Run: %v", err)
				}
				if err := inj.Err(); err != nil {
					t.Fatalf("invariant violation under %s: %v", label, err)
				}
				if err := ch.Check(); err != nil {
					t.Fatalf("final check: %v", err)
				}
				if inj.Total() == 0 && inj.Skipped == 0 {
					t.Fatalf("injector never fired (period too large for run length?)")
				}
			})
		}
	}
}

// TestWalkTransientRetries verifies that armed walk transients actually
// exercise the bounded-retry path.
func TestWalkTransientRetries(t *testing.T) {
	sys, inj, _ := buildFaulty(t, hybridvc.Baseline,
		fault.Config{Seed: 5, Period: 256, Kinds: []fault.Kind{fault.WalkTransient}, Burst: 16})
	if _, err := sys.Run(30_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := inj.Err(); err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
	base := sys.Mem.(core.BaseHolder).BaseState()
	if base.WalkRetries.Value() == 0 {
		t.Fatalf("no walk retries recorded; injected=%d", inj.Injected[fault.WalkTransient])
	}
}

// TestCheckerDetectsFilterFalseNegative proves the checker is not
// vacuous: clearing a live synonym filter without the OS rebuild must be
// reported as a false negative.
func TestCheckerDetectsFilterFalseNegative(t *testing.T) {
	sys, err := hybridvc.New(hybridvc.Config{Org: hybridvc.HybridManySegSC})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.AttachChecker()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSpec(faultSpec()); err != nil {
		t.Fatal(err)
	}
	if err := ch.Check(); err != nil {
		t.Fatalf("clean system failed check: %v", err)
	}
	for _, asid := range sys.Kernel.ASIDs() {
		sys.Kernel.Process(asid).Filter.Clear()
	}
	if err := ch.Check(); err == nil {
		t.Fatalf("cleared filter over live synonym ranges not detected")
	}
}

// TestCheckerDetectsStaleLine proves the one-name audit resolves virtual
// lines through the page tables: a line cached for an unmapped page is a
// violation.
func TestCheckerDetectsStaleLine(t *testing.T) {
	sys, err := hybridvc.New(hybridvc.Config{Org: hybridvc.HybridManySegSC})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.AttachChecker()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSpec(faultSpec()); err != nil {
		t.Fatal(err)
	}
	asid := sys.Kernel.ASIDs()[0]
	sys.Mem.Hierarchy().Access(0, cache.Read, addr.VirtName(asid, 0xdead_f000), addr.PermRW)
	if err := ch.Check(); err == nil {
		t.Fatalf("virtual line for unmapped page not detected")
	}
}

// TestCheckerDetectsBogusTLBEntry proves the translation-coherence audit
// compares entries against the page tables.
func TestCheckerDetectsBogusTLBEntry(t *testing.T) {
	sys, err := hybridvc.New(hybridvc.Config{Org: hybridvc.HybridManySegSC})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.AttachChecker()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSpec(faultSpec()); err != nil {
		t.Fatal(err)
	}
	asid := sys.Kernel.ASIDs()[0]
	m := sys.Mem.(*core.HybridMMU)
	m.SynTLB(0).Insert(tlb.Entry{ASID: asid, VPN: 0x9999_9, PFN: 0x42})
	if err := ch.Check(); err == nil {
		t.Fatalf("TLB entry for unmapped page not detected")
	}
}
