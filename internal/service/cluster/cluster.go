package cluster

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"hybridvc/internal/service/store"
)

// Peer API surface shared between the daemon's handlers and the fetch
// side. The key in the path is the canonical SHA-256 cache key.
const (
	// PeerResultsPath is the route prefix of the peer result API:
	// GET fetches the owner's record, PUT replicates one onto it.
	PeerResultsPath = "/v1/peer/results/"
	// TokenHeader carries the shared cluster secret on every peer call.
	TokenHeader = "X-Cluster-Token"
	// NodeHeader identifies the calling node on peer requests (logs and
	// loop diagnostics only — authentication is the token).
	NodeHeader = "X-Cluster-Node"
)

// Member is one node of the static membership list.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// ParsePeers parses a "-peers" flag value: comma-separated id=url pairs,
// e.g. "n1=http://10.0.0.1:8077,n2=http://10.0.0.2:8077". IDs must be
// unique and URLs absolute http(s).
func ParsePeers(s string) ([]Member, error) {
	var out []Member
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, rawURL, ok := strings.Cut(part, "=")
		id, rawURL = strings.TrimSpace(id), strings.TrimSpace(rawURL)
		if !ok || id == "" || rawURL == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=url)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		u, err := url.Parse(rawURL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q: bad url %q", id, rawURL)
		}
		seen[id] = true
		out = append(out, Member{ID: id, URL: strings.TrimRight(rawURL, "/")})
	}
	return out, nil
}

// Config parameterizes a Cluster. Members is the full static membership
// list; the self node is identified by NodeID and appended (with the
// Advertise URL) when absent from the list.
type Config struct {
	// NodeID is this node's identity in the member list.
	NodeID string
	// Advertise is this node's base URL as peers reach it. Optional when
	// NodeID already appears in Members.
	Advertise string
	// Members is the full membership list, self included or not.
	Members []Member
	// Token is the shared secret every peer call must present.
	Token string

	// FetchTimeout bounds each peer fetch/replicate call (default 2s) —
	// tight by design: a slow owner must cost less than simulating.
	FetchTimeout time.Duration
	// ProbeInterval paces the per-peer /readyz health probes
	// (default 1s).
	ProbeInterval time.Duration
	// ReplicateBackoff paces replication retries (zero value defaults;
	// MaxElapsed is clamped to a few fetch timeouts so a worker never
	// blocks long on a dead owner).
	ReplicateBackoff Backoff
	// ReplicateRetries bounds replication attempts past the first
	// (default 1 retry; negative disables retries).
	ReplicateRetries int

	// HTTPClient issues the peer calls (default: a dedicated client; the
	// per-call timeout comes from FetchTimeout contexts).
	HTTPClient *http.Client
	// Logger receives peer-call warnings (nil = silent).
	Logger *slog.Logger
}

// Metrics is the cluster-side counter snapshot, exposed through the
// daemon's hvcd_peer_* / hvcd_cluster_* metric families.
type Metrics struct {
	Nodes        int    `json:"nodes"`
	PeersHealthy int    `json:"peers_healthy"`
	Fetches      uint64 `json:"fetches"`
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Errors       uint64 `json:"errors"`
	// Skipped counts fetches not attempted because the owner was marked
	// unhealthy — the local-simulate fallback taken up front.
	Skipped         uint64 `json:"skipped"`
	Replicated      uint64 `json:"replicated"`
	ReplicateErrors uint64 `json:"replicate_errors"`
}

// Cluster is one node's view of the membership: ownership routing,
// peer-record fetch/replicate, and per-peer health. Construct with New,
// start the health probes with Start, stop with Stop.
type Cluster struct {
	self    Member
	members []Member // sorted by ID, self included
	ids     []string
	token   string
	timeout time.Duration
	hc      *http.Client
	logger  *slog.Logger

	repBackoff Backoff
	repRetries int

	health *tracker

	fetches, hits, misses, errors, skipped atomic.Uint64
	replicated, replicateErrors            atomic.Uint64
}

// New validates the membership and builds the node's cluster view.
func New(cfg Config) (*Cluster, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: node id required")
	}
	members := append([]Member(nil), cfg.Members...)
	var self *Member
	for i := range members {
		if members[i].ID == cfg.NodeID {
			self = &members[i]
		}
	}
	if self == nil {
		if cfg.Advertise == "" {
			return nil, fmt.Errorf("cluster: node %q not in peer list and no advertise URL", cfg.NodeID)
		}
		members = append(members, Member{ID: cfg.NodeID, URL: strings.TrimRight(cfg.Advertise, "/")})
		self = &members[len(members)-1]
	} else if cfg.Advertise != "" {
		self.URL = strings.TrimRight(cfg.Advertise, "/")
	}
	if len(members) < 2 {
		return nil, fmt.Errorf("cluster: need at least one peer besides %q", cfg.NodeID)
	}
	sort.Slice(members, func(a, b int) bool { return members[a].ID < members[b].ID })
	ids := make([]string, len(members))
	for i, m := range members {
		ids[i] = m.ID
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 2 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.ReplicateRetries == 0 {
		cfg.ReplicateRetries = 1
	} else if cfg.ReplicateRetries < 0 {
		cfg.ReplicateRetries = 0
	}
	rb := cfg.ReplicateBackoff.WithDefaults()
	// A worker replicates synchronously before finishing the job, so the
	// whole retry budget must stay small next to a simulation.
	if rb.MaxElapsed > 3*cfg.FetchTimeout {
		rb.MaxElapsed = 3 * cfg.FetchTimeout
	}
	var selfCopy Member
	for _, m := range members {
		if m.ID == cfg.NodeID {
			selfCopy = m
		}
	}
	c := &Cluster{
		self:       selfCopy,
		members:    members,
		ids:        ids,
		token:      cfg.Token,
		timeout:    cfg.FetchTimeout,
		hc:         cfg.HTTPClient,
		logger:     cfg.Logger,
		repBackoff: rb,
		repRetries: cfg.ReplicateRetries,
	}
	c.health = newTracker(c, cfg.ProbeInterval)
	return c, nil
}

// Self returns this node's member entry.
func (c *Cluster) Self() Member { return c.self }

// NodeID returns this node's identity.
func (c *Cluster) NodeID() string { return c.self.ID }

// Members returns the full membership, sorted by ID.
func (c *Cluster) Members() []Member { return append([]Member(nil), c.members...) }

// OwnerOf returns the member owning key under rendezvous hashing.
func (c *Cluster) OwnerOf(key string) Member {
	id := Owner(key, c.ids)
	for _, m := range c.members {
		if m.ID == id {
			return m
		}
	}
	return c.self // unreachable: Owner picks from c.ids
}

// Healthy reports whether the peer is currently believed reachable.
// Unknown peers (never probed, never failed) are optimistically healthy.
func (c *Cluster) Healthy(id string) bool { return c.health.healthy(id) }

// MarkFailed records a failed peer call, marking the peer unhealthy
// until a probe succeeds again.
func (c *Cluster) MarkFailed(id string) { c.health.markFailed(id) }

// Start launches the background /readyz probe loop. Stop ends it.
func (c *Cluster) Start() { c.health.start() }

// Stop ends the probe loop. Idempotent.
func (c *Cluster) Stop() { c.health.stop() }

// ProbeOnce probes every peer synchronously (tests and the balancer's
// first routing decision want health without waiting an interval).
func (c *Cluster) ProbeOnce(ctx context.Context) { c.health.probeAll(ctx) }

// AuthOK checks a presented token in constant time.
func (c *Cluster) AuthOK(presented string) bool {
	return subtle.ConstantTimeCompare([]byte(c.token), []byte(presented)) == 1
}

// Fetch asks member m for its record of key over the peer API. The
// three outcomes are distinct: (rec, true, nil) is a hit, (_, false,
// nil) a clean miss (the owner simply has nothing), and an error is a
// degraded peer — transport failure, timeout, auth mismatch or a
// corrupt body — which also marks the peer unhealthy.
func (c *Cluster) Fetch(ctx context.Context, m Member, key string) (store.Record, bool, error) {
	c.fetches.Add(1)
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+PeerResultsPath+key, nil)
	if err != nil {
		return store.Record{}, false, c.fetchErr(m, fmt.Errorf("cluster: fetch %s: %w", key, err))
	}
	c.setPeerHeaders(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return store.Record{}, false, c.fetchErr(m, fmt.Errorf("cluster: fetch %s from %s: %w", key, m.ID, err))
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		c.misses.Add(1)
		return store.Record{}, false, nil
	case resp.StatusCode != http.StatusOK:
		io.Copy(io.Discard, resp.Body)
		return store.Record{}, false, c.fetchErr(m, fmt.Errorf("cluster: fetch %s from %s: HTTP %d", key, m.ID, resp.StatusCode))
	}
	var rec store.Record
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxPeerBody)).Decode(&rec); err != nil {
		return store.Record{}, false, c.fetchErr(m, fmt.Errorf("cluster: fetch %s from %s: corrupt peer body: %w", key, m.ID, err))
	}
	// A record claiming a different key is corrupt, never served — the
	// same discipline the disk store applies to renamed record files.
	if rec.Key != key {
		return store.Record{}, false, c.fetchErr(m, fmt.Errorf("cluster: fetch %s from %s: body carries key %.16s…", key, m.ID, rec.Key))
	}
	if len(rec.Report) == 0 && len(rec.Tables) == 0 {
		return store.Record{}, false, c.fetchErr(m, fmt.Errorf("cluster: fetch %s from %s: empty record body", key, m.ID))
	}
	c.hits.Add(1)
	return rec, true, nil
}

// maxPeerBody bounds a peer response/replication body (reports plus
// timelines are small; anything larger is a corrupt or hostile peer).
const maxPeerBody = 32 << 20

func (c *Cluster) fetchErr(m Member, err error) error {
	c.errors.Add(1)
	c.MarkFailed(m.ID)
	c.logger.Warn("peer fetch failed", "peer", m.ID, "error", err.Error())
	return err
}

// SkipUnhealthy counts a fetch not attempted because the owner was
// already marked unhealthy.
func (c *Cluster) SkipUnhealthy() { c.skipped.Add(1) }

// Replicate best-effort pushes a freshly produced record onto member m
// (the key's owner), pacing retryable failures with the cluster Backoff.
// Failure is logged and counted, never fatal: it costs cluster-wide
// dedup convergence for this key, not the result.
func (c *Cluster) Replicate(ctx context.Context, m Member, rec store.Record) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: replicate %s: %w", rec.Key, err)
	}
	start := time.Now()
	for attempt := 0; ; attempt++ {
		err = c.replicateOnce(ctx, m, rec.Key, body)
		if err == nil {
			c.replicated.Add(1)
			return nil
		}
		if attempt >= c.repRetries {
			break
		}
		wait := c.repBackoff.Delay(attempt)
		if time.Since(start)+wait > c.repBackoff.MaxElapsed {
			break
		}
		select {
		case <-ctx.Done():
			err = ctx.Err()
			attempt = c.repRetries // stop retrying
		case <-time.After(wait):
		}
		if ctx.Err() != nil {
			break
		}
	}
	c.replicateErrors.Add(1)
	c.MarkFailed(m.ID)
	c.logger.Warn("peer replicate failed", "peer", m.ID, "key", rec.Key, "error", err.Error())
	return err
}

func (c *Cluster) replicateOnce(ctx context.Context, m Member, key string, body []byte) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, m.URL+PeerResultsPath+key, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	c.setPeerHeaders(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}

func (c *Cluster) setPeerHeaders(req *http.Request) {
	req.Header.Set(TokenHeader, c.token)
	req.Header.Set(NodeHeader, c.self.ID)
}

// Metrics snapshots the cluster counters and health gauges.
func (c *Cluster) Metrics() Metrics {
	return Metrics{
		Nodes:           len(c.members),
		PeersHealthy:    c.health.healthyCount(),
		Fetches:         c.fetches.Load(),
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Errors:          c.errors.Load(),
		Skipped:         c.skipped.Load(),
		Replicated:      c.replicated.Load(),
		ReplicateErrors: c.replicateErrors.Load(),
	}
}
