package service

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"hybridvc"
	"hybridvc/experiments"
	"hybridvc/internal/buildinfo"
	"hybridvc/internal/workload"
)

// API wire types shared with the client package.

// SubmitResponse answers POST /v1/jobs.
type SubmitResponse struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"`
	// Cached means the result was served from the content-addressed
	// cache (or coalesced onto an already-finished job) — no new
	// simulation was scheduled.
	Cached bool `json:"cached"`
	// Deduped means the submission coalesced onto a live job with the
	// same key (queued or running) instead of enqueueing a duplicate.
	Deduped bool `json:"deduped"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

// OrgInfo describes one organization (GET /v1/orgs).
type OrgInfo struct {
	Name        string `json:"name"`
	Virtualized bool   `json:"virtualized"`
}

// WorkloadInfo describes one catalog workload (GET /v1/orgs).
type WorkloadInfo struct {
	Name   string `json:"name"`
	Bytes  uint64 `json:"bytes"`
	Procs  int    `json:"procs"`
	Digest string `json:"digest"`
}

// CatalogResponse answers GET /v1/orgs: the selectable organizations and
// the workload catalog with content digests (the digests are the
// workload component of the cache key, so clients can predict keys).
type CatalogResponse struct {
	Organizations []OrgInfo      `json:"organizations"`
	Workloads     []WorkloadInfo `json:"workloads"`
}

// ExperimentInfo describes one registered experiment (GET /v1/experiments).
type ExperimentInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status   string `json:"status"` // "ok" or "draining"
	Version  string `json:"version"`
	Jobs     int    `json:"jobs"`
	Draining bool   `json:"draining"`
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /v1/orgs", s.handleOrgs)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// clientKey extracts the per-client identity for rate limiting: the
// remote IP without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.limiter.allow(clientKey(r)) {
		s.met.rateLimited.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.limiter.retryAfter()))
		writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	res, err := s.Submit(spec)
	switch {
	case err == nil:
	case err == ErrDraining:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job := res.Job
	state := job.State()
	resp := SubmitResponse{
		ID: job.ID, Key: job.Key, State: state,
		Cached:  !res.Fresh && state == StateDone,
		Deduped: !res.Fresh && state != StateDone,
	}
	code := http.StatusAccepted
	if !res.Fresh {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		st.Report = nil // keep the listing light; fetch one job for the body
		st.Tables = nil
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	found, canceled := s.Cancel(id)
	if !found {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if !canceled {
		writeError(w, http.StatusConflict, "job %s already %s", id, mustState(s, id))
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": "canceling"})
}

func mustState(s *Server, id string) string {
	if j, ok := s.Job(id); ok {
		return j.State()
	}
	return "gone"
}

// timelinePoll is how often the streaming endpoint re-checks a live
// timeline for new intervals between job-completion wakeups.
const timelinePoll = 25 * time.Millisecond

// handleTimeline streams the job's interval time-series as NDJSON: every
// recorded interval immediately, then (unless ?follow=0) new intervals
// as the simulation appends them, terminating when the job finishes.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if job.Spec.Kind == KindSweep {
		writeError(w, http.StatusNotFound, "sweep jobs have no timeline")
		return
	}
	follow := r.URL.Query().Get("follow") != "0"

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	cursor := 0
	for {
		if tl := job.timeline(); tl != nil {
			batch := tl.Since(cursor)
			for i := range batch {
				if err := enc.Encode(&batch[i]); err != nil {
					return // client went away
				}
			}
			cursor += len(batch)
			if len(batch) > 0 && flusher != nil {
				flusher.Flush()
			}
		}
		if terminal(job.State()) {
			// Final drain already happened above on this iteration.
			if tl := job.timeline(); tl == nil || tl.Len() <= cursor {
				return
			}
			continue
		}
		if !follow {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			// Loop once more to drain the tail, then exit via terminal.
		case <-time.After(timelinePoll):
		}
	}
}

func (s *Server) handleOrgs(w http.ResponseWriter, r *http.Request) {
	var resp CatalogResponse
	for _, o := range hybridvc.Organizations() {
		resp.Organizations = append(resp.Organizations, OrgInfo{
			Name: string(o), Virtualized: o.Virtualized(),
		})
	}
	for _, name := range workload.Names() {
		spec := workload.Specs[name]
		resp.Workloads = append(resp.Workloads, WorkloadInfo{
			Name:   name,
			Bytes:  spec.TotalBytes(),
			Procs:  max(1, spec.Procs),
			Digest: spec.Digest(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{Name: e.Name, Description: e.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	m := s.MetricsSnapshot()
	status := "ok"
	code := http.StatusOK
	if m.Draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthResponse{
		Status: status, Version: buildinfo.Version(),
		Jobs: m.Jobs, Draining: m.Draining,
	})
}

// handleMetrics serves the daemon counters in expvar style: one JSON
// object whose keys are the process-wide expvar variables (memstats,
// cmdline, plus anything the binary published — hvcsim's -metrics-addr
// vars use the same mechanism) extended with an "hvcd" key holding the
// scheduler/cache counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	vars := map[string]json.RawMessage{}
	expvar.Do(func(kv expvar.KeyValue) {
		vars[kv.Key] = json.RawMessage(kv.Value.String())
	})
	own, err := json.Marshal(s.MetricsSnapshot())
	if err == nil {
		vars["hvcd"] = own
	}
	writeJSON(w, http.StatusOK, vars)
}
