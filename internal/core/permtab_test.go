package core

import (
	"testing"

	"hybridvc/internal/addr"
)

// TestPermTableAgainstMap drives the table and a reference map through the
// same randomized-ish operation stream: inserts across two address spaces,
// updates, deletes, an ASID flush, and enough keys to force several grows.
func TestPermTableAgainstMap(t *testing.T) {
	tab := newPermTable()
	ref := make(map[permKey]addr.Perm)
	asids := []addr.ASID{addr.MakeASID(0, 1), addr.MakeASID(0, 2), addr.MakeASID(1, 1)}

	put := func(a addr.ASID, page uint64, p addr.Perm) {
		k := makePermKey(a, page)
		tab.set(k, p)
		ref[k] = p
	}
	del := func(a addr.ASID, page uint64) {
		k := makePermKey(a, page)
		tab.del(k)
		delete(ref, k)
	}
	check := func(when string) {
		t.Helper()
		if tab.live != len(ref) {
			t.Fatalf("%s: live %d, reference holds %d", when, tab.live, len(ref))
		}
		for k, want := range ref {
			if got, ok := tab.get(k); !ok || got != want {
				t.Fatalf("%s: get(%#x) = %v,%v want %v", when, uint64(k), got, ok, want)
			}
		}
	}

	for i := uint64(0); i < 5000; i++ {
		put(asids[i%3], i*7%4099, addr.Perm(i%3))
	}
	check("after inserts")
	if _, ok := tab.get(makePermKey(asids[0], 1<<30)); ok {
		t.Fatal("get of never-inserted key succeeded")
	}
	for i := uint64(0); i < 5000; i += 2 {
		del(asids[i%3], i*7%4099)
	}
	check("after deletes")
	for i := uint64(0); i < 2000; i++ {
		put(asids[i%3], i*13%8191, addr.PermRW)
	}
	check("after reinserts over tombstones")

	tab.flushASID(asids[1])
	for k := range ref {
		if k.asid() == asids[1] {
			delete(ref, k)
		}
	}
	check("after flushASID")
}
