package baseline

import (
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/energy"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/pipeline"
	"hybridvc/internal/stats"
	"hybridvc/internal/tlb"
)

// OVC models opportunistic virtual caching (the paper's closest prior
// work): only the L1 is virtually addressed, and only for non-synonym
// data; L2 and LLC remain physical, so every L1 miss still pays address
// translation. It reduces TLB *energy* (the TLB is probed only on L1
// misses and synonym accesses) but cannot reduce TLB *miss latency* the
// way full-hierarchy delayed translation does — the comparison the
// paper's Section II draws.
//
// The model is single-core: OVC's original coherence scheme (reverse
// physical tags in the L1) is represented functionally by the single-name
// discipline, not by a multi-core protocol.
//
// OVC is the one organization with a custom pipeline CacheStage: its
// hierarchy is split (virtual L1, physical L2/LLC), so neither the
// uniform virtual hierarchy walk nor the uniform physical one applies.
type OVC struct {
	*pipeline.Engine
	kernel *osmodel.Kernel
	tlb    *tlb.TwoLevel

	// L1VirtualHits counts L1 hits served without any translation.
	L1VirtualHits stats.Counter
	// L1MissTranslations counts TLB lookups caused by L1 misses.
	L1MissTranslations stats.Counter
}

// NewOVC builds the OVC baseline; the hierarchy config must be single-core.
func NewOVC(cfg Config, k *osmodel.Kernel) *OVC {
	if cfg.Hier.NumCores != 1 {
		panic("baseline: OVC model is single-core")
	}
	o := &OVC{
		kernel: k,
		tlb:    tlb.NewTwoLevel(tlb.DefaultTwoLevelConfig()),
	}
	o.Engine = pipeline.NewEngine(core.NewBase(cfg.Hier, cfg.DRAM, cfg.Energy), o, o, nil)
	k.AttachSink(o)
	return o
}

// Name implements core.MemSystem.
func (o *OVC) Name() string { return "ovc" }

// l1For returns the L1 array used by the access kind.
func (o *OVC) l1For(kind cache.AccessKind) *cache.Cache {
	if kind == cache.Fetch {
		return o.Hier.L1I(0)
	}
	return o.Hier.L1D(0)
}

// translate runs the two-level TLB + walk, charging energy and latency.
func (o *OVC) translate(req *core.Request) (addr.PA, addr.Perm, uint64, bool) {
	o.Acc.Access(energy.L1TLB, 1)
	tres := o.tlb.Lookup(req.Proc.ASID, req.VA.Page())
	if p := o.Probe(); p != nil {
		p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBL1, Hit: tres.Level == 1})
		if tres.Level != 1 {
			p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBL2, Hit: tres.Level == 2})
		}
	}
	var lat uint64
	if tres.Level == 0 {
		o.Acc.Access(energy.L2TLB, 1)
		lat += o.tlb.L2.Config().Latency
		leaf, wlat, ok := o.timedWalk(req.Proc, req.VA.PageAligned())
		lat += wlat
		if !ok {
			return 0, 0, lat, false
		}
		o.tlb.Insert(tlb.Entry{
			ASID: req.Proc.ASID, VPN: req.VA.Page(), PFN: leaf.Frame,
			Perm: leaf.Perm, Shared: leaf.Shared,
		})
		return leaf.PA(req.VA), leaf.Perm, lat, true
	}
	if tres.Level == 2 {
		o.Acc.Access(energy.L2TLB, 1)
		lat += o.tlb.L2.Config().Latency
	}
	return addr.FrameToPA(tres.Entry.PFN) + addr.PA(req.VA.PageOffset()),
		tres.Entry.Perm, lat, true
}

// timedWalk fetches PTEs through the physical L2/LLC path (page walkers
// bypass the L1).
func (o *OVC) timedWalk(proc *osmodel.Process, va addr.VA) (core.WalkLeaf, uint64, bool) {
	o.Acc.Access(energy.PageWalk, 1)
	path, leaf, found := proc.PT.WalkPath(va)
	var lat uint64
	for _, slot := range path {
		o.WalkSteps.Inc()
		slat, _, _ := o.physL2Access(cache.Read, slot, addr.PermRO)
		lat += slat
	}
	if p := o.Probe(); p != nil {
		p.Walk(pipeline.WalkEvent{Steps: len(path), OK: found})
	}
	if !found {
		return core.WalkLeaf{}, lat, false
	}
	return core.WalkLeaf{Frame: leaf.Frame, Perm: leaf.Perm, Shared: leaf.Shared}, lat, true
}

// physL2Access runs the L2 -> LLC -> DRAM physical path (no L1), filling
// on the way back and preserving inclusion manually. It reports the
// latency, the level that supplied the data on Result.HitLevel's scale
// (2 = L2, 3 = LLC, 0 = memory) and whether the LLC missed.
func (o *OVC) physL2Access(kind cache.AccessKind, pa addr.PA, perm addr.Perm) (uint64, int, bool) {
	n := addr.PhysName(pa)
	l2 := o.Hier.L2(0)
	lat := l2.Config().HitLatency
	if l := l2.Access(n); l != nil {
		if kind == cache.Write {
			l.State = cache.Modified
		}
		return lat, 2, false
	}
	llc := o.Hier.LLC()
	lat += llc.Config().HitLatency
	level, llcMiss := 3, false
	if l := llc.Access(n); l == nil {
		level, llcMiss = 0, true
		lat += o.DRAM.Access(pa)
		if v, evicted := llc.Fill(n, cache.Exclusive, perm); evicted {
			o.backInvalidate(v.Name)
		}
	}
	st := cache.Exclusive
	if kind == cache.Write {
		st = cache.Modified
	}
	if v, evicted := l2.Fill(n, st, perm); evicted && v.Dirty {
		if l := llc.Probe(v.Name); l != nil {
			l.State = cache.Modified
		}
	}
	return lat, level, llcMiss
}

// backInvalidate preserves LLC inclusion over the private levels.
func (o *OVC) backInvalidate(n addr.Name) {
	o.Hier.L1D(0).Invalidate(n)
	o.Hier.L1I(0).Invalidate(n)
	o.Hier.L2(0).Invalidate(n)
	// Virtual L1 lines whose physical home left the LLC are tracked via
	// the name they were filled under; OVC keeps a reverse physical tag
	// for this. We model it by flushing matching virtual lines lazily on
	// miss (functional effect: none, since data contents are not modeled
	// and translations stay valid).
}

// Route implements pipeline.FrontEnd: non-synonym accesses go to the
// virtual L1 with no up-front translation at all; synonym candidates
// translate first and run the physical L1.
func (o *OVC) Route(req *core.Request, res *core.Result) pipeline.Decision {
	candidate := req.Proc.Filter.IsCandidate(req.VA)
	if p := o.Probe(); p != nil {
		p.Filter(pipeline.FilterEvent{Core: req.Core, Candidate: candidate})
	}
	if !candidate {
		return pipeline.GoVirtual(0)
	}
	// Synonym candidate: conventional path, physical L1.
	pa, perm, lat, ok := o.translate(req)
	res.Latency += lat
	if !ok {
		fl, fixed := o.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		o.Retry(req, res)
		return pipeline.DoneNow()
	}
	if req.Kind == cache.Write && !perm.AllowsWrite() {
		fl, fixed := o.HandleFault(req.Proc, req.VA, true)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		o.Retry(req, res)
		return pipeline.DoneNow()
	}
	return pipeline.GoPhysical(pa, perm)
}

// Physical implements pipeline.CacheStage: physical L1, then the outer
// physical path.
func (o *OVC) Physical(req *core.Request, pa addr.PA, perm addr.Perm, res *core.Result) {
	l1 := o.l1For(req.Kind)
	pname := addr.PhysName(pa)
	res.Latency += l1.Config().HitLatency
	if l := l1.Access(pname); l != nil {
		if req.Kind == cache.Write {
			l.State = cache.Modified
		}
		res.HitLevel = 1
		return
	}
	lat, level, llcMiss := o.physL2Access(req.Kind, pa, perm)
	res.Latency += lat
	res.HitLevel = level
	res.LLCMiss = llcMiss
	st := cache.Exclusive
	if req.Kind == cache.Write {
		st = cache.Modified
	}
	l1.Fill(pname, st, perm)
}

// Virtual implements pipeline.CacheStage: the virtual L1 path, where a
// hit needs no translation at all and a miss translates before the
// physical outer hierarchy.
func (o *OVC) Virtual(req *core.Request, _ addr.Perm, res *core.Result) cache.AccessResult {
	l1 := o.l1For(req.Kind)
	vname := addr.VirtName(req.Proc.ASID, req.VA)
	res.Latency += l1.Config().HitLatency
	if l := l1.Access(vname); l != nil {
		if req.Kind == cache.Write {
			if !l.Perm.AllowsWrite() {
				fl, fixed := o.HandleFault(req.Proc, req.VA, true)
				res.Latency += fl
				res.Fault = true
				if !fixed {
					return cache.AccessResult{}
				}
				o.Retry(req, res)
				return cache.AccessResult{}
			}
			l.State = cache.Modified
		}
		o.L1VirtualHits.Inc()
		res.HitLevel = 1
		return cache.AccessResult{}
	}
	// L1 miss: translate, then the physical outer hierarchy.
	o.L1MissTranslations.Inc()
	pa, perm, lat, ok := o.translate(req)
	res.Latency += lat
	if !ok {
		fl, fixed := o.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return cache.AccessResult{}
		}
		o.Retry(req, res)
		return cache.AccessResult{}
	}
	if req.Kind == cache.Write && !perm.AllowsWrite() {
		fl, fixed := o.HandleFault(req.Proc, req.VA, true)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return cache.AccessResult{}
		}
		o.Retry(req, res)
		return cache.AccessResult{}
	}
	alat, level, llcMiss := o.physL2Access(req.Kind, pa, perm)
	res.Latency += alat
	res.HitLevel = level
	res.LLCMiss = llcMiss
	st := cache.Exclusive
	if req.Kind == cache.Write {
		st = cache.Modified
	}
	if v, evicted := l1.Fill(vname, st, perm); evicted && v.Dirty && !v.Name.Synonym {
		// A dirty virtual victim needs translation to write back.
		o.Acc.Access(energy.L1TLB, 1)
	}
	return cache.AccessResult{}
}

// --- osmodel.ShootdownSink ---

// TLBShootdown implements the sink.
func (o *OVC) TLBShootdown(asid addr.ASID, vpn uint64) {
	o.tlb.Shootdown(asid, vpn)
}

// FlushPage implements the sink; virtual L1 lines of the page flush too.
func (o *OVC) FlushPage(page addr.Name) {
	o.Hier.L1D(0).FlushPage(page)
	o.Hier.L1I(0).FlushPage(page)
	if page.Synonym {
		o.Hier.L2(0).FlushPage(page)
		o.Hier.LLC().FlushPage(page)
	}
}

// SetPagePerm implements the sink.
func (o *OVC) SetPagePerm(page addr.Name, perm addr.Perm) {
	o.Hier.L1D(0).SetPagePerm(page, perm)
	if !page.Synonym {
		o.TLBShootdown(page.ASID, page.Page())
	}
}

// FilterUpdate implements the sink.
func (o *OVC) FilterUpdate(addr.ASID) {}

// FlushASID implements the sink: virtual L1 lines and TLB entries of the
// address space are removed.
func (o *OVC) FlushASID(asid addr.ASID) {
	o.tlb.FlushASID(asid)
	match := func(n addr.Name) bool { return !n.Synonym && n.ASID == asid }
	o.Hier.L1D(0).FlushMatching(match)
	o.Hier.L1I(0).FlushMatching(match)
}
