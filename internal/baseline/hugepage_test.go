package baseline

import (
	"math/rand"
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/osmodel"
)

func TestConventionalHugeTLBCoversLargeFootprint(t *testing.T) {
	// A 64 MiB random footprint thrashes 4 KiB TLBs (16k pages vs 1088
	// entries) but fits in 32 x 2 MiB huge entries.
	run := func(huge bool) (*Conventional, uint64) {
		k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
		c := NewConventional(DefaultConfig(1), k)
		p, _ := k.NewProcess()
		va, err := p.Mmap(64<<20, addr.PermRW, osmodel.MmapOpts{HugePages: huge})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 20000; i++ {
			v := va + addr.VA(rng.Uint64()%(64<<20))
			if res := c.Access(core.Request{Kind: cache.Read, VA: v, Proc: p}); res.Fault {
				t.Fatal("fault")
			}
		}
		return c, c.TLBMissWalks.Value()
	}
	c4k, walks4k := run(false)
	chuge, walksHuge := run(true)
	if walksHuge*10 > walks4k {
		t.Errorf("huge pages: %d walks vs %d with 4K; no reach benefit", walksHuge, walks4k)
	}
	if chuge.HugeTLBHits.Value() == 0 {
		t.Error("no huge TLB hits")
	}
	if c4k.HugeTLBHits.Value() != 0 {
		t.Error("huge TLB hits without huge pages")
	}
}

func TestHugeMappingTranslationCorrect(t *testing.T) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	c := NewConventional(DefaultConfig(1), k)
	p, _ := k.NewProcess()
	va, err := p.Mmap(8<<20, addr.PermRW, osmodel.MmapOpts{HugePages: true})
	if err != nil {
		t.Fatal(err)
	}
	// Mappings are 2 MiB aligned and huge.
	pte, ok := p.PT.Lookup(va)
	if !ok || !pte.Huge {
		t.Fatalf("pte = %+v ok=%v", pte, ok)
	}
	if uint64(va)%addr.HugePageSize != 0 {
		t.Error("region not 2 MiB aligned")
	}
	// Cached line lands at the composed PA.
	off := addr.VA(3<<20 + 0x1240)
	c.Access(core.Request{Kind: cache.Read, VA: va + off, Proc: p})
	pa, _ := p.PT.Translate(va + off)
	if c.Hierarchy().LLC().Probe(addr.PhysName(pa)) == nil {
		t.Error("line not cached at translated PA")
	}
	// The PA really is the segment-contiguous address.
	seg, _ := k.SegMgr.LookupSoft(p.ASID, va+off)
	if seg.Translate(va+off) != pa {
		t.Error("segment and huge PT disagree")
	}
}

func TestHugePagesRejectDemand(t *testing.T) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 28})
	p, _ := k.NewProcess()
	if _, err := p.Mmap(4<<20, addr.PermRW, osmodel.MmapOpts{HugePages: true, Demand: true}); err == nil {
		t.Error("huge demand mapping accepted")
	}
}

func TestHybridUnaffectedByHugePages(t *testing.T) {
	// The hybrid design translates by segment after LLC misses, so page
	// size is irrelevant to it — but it must still work correctly when
	// the OS maps huge pages (e.g. the synonym TLB fractures them).
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	m := core.NewHybridMMU(core.DefaultHybridConfig(1), k)
	p, _ := k.NewProcess()
	va, err := p.Mmap(8<<20, addr.PermRW, osmodel.MmapOpts{HugePages: true})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Access(core.Request{Kind: cache.Write, VA: va + 0x5000, Proc: p})
	if res.Fault {
		t.Fatal("fault")
	}
	if m.Hier.LLC().Probe(addr.VirtName(p.ASID, va+0x5000)) == nil {
		t.Error("huge-backed page not cached virtually")
	}
}
