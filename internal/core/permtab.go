package core

import "hybridvc/internal/addr"

// permTable maps permKey to the permission recorded on cache fills. It is
// a linear-probe open-addressing table rather than a Go map because the
// shadow-permission lookup runs on every fill: the specialized probe is a
// single multiply plus one slot load, where the generic map pays for
// hashing, bucket metadata, and heavier probing. Each slot packs the key
// (bits 0..51: 36 page bits plus the 16-bit ASID), the slot state and the
// 2-bit permission into one word, so the whole table at 50% load is half
// the footprint of a map and a probe touches exactly one cache line. The
// table is fully deterministic, so simulation output cannot depend on map
// iteration or seeding.
type permTable struct {
	slots []uint64
	mask  uint64
	shift uint
	live  int // occupied slots
	used  int // occupied slots plus tombstones
}

const (
	permSlotKeyMask = 1<<52 - 1
	permSlotState   = 52 // 2-bit slot state
	permSlotPerm    = 54 // 2-bit addr.Perm
)

const (
	slotEmpty uint64 = iota
	slotLive
	slotDead // tombstone: keeps probe chains intact across deletes
)

func permSlotPack(k permKey, p addr.Perm, state uint64) uint64 {
	return uint64(k) | state<<permSlotState | uint64(p)<<permSlotPerm
}

func newPermTable() *permTable {
	const initLog = 10
	return &permTable{
		slots: make([]uint64, 1<<initLog),
		mask:  1<<initLog - 1,
		shift: 64 - initLog,
	}
}

// idx is Fibonacci hashing: the multiply spreads the key's page (low) and
// ASID (high) bits into the top bits selected by the shift.
func (t *permTable) idx(k permKey) uint64 {
	return uint64(k) * 0x9e3779b97f4a7c15 >> t.shift
}

// touch reads k's home slot without interpreting it. The batched front
// ends call it a block of requests ahead of the fillPerm probes so the
// table's random-index loads — host-cache misses on large footprints —
// issue in parallel instead of serially inside the decode loop.
func (t *permTable) touch(k permKey) uint64 {
	return t.slots[t.idx(k)]
}

func (t *permTable) get(k permKey) (addr.Perm, bool) {
	for i := t.idx(k); ; i = (i + 1) & t.mask {
		s := t.slots[i]
		switch {
		case s>>permSlotState&3 == slotLive && s&permSlotKeyMask == uint64(k):
			return addr.Perm(s >> permSlotPerm & 3), true
		case s>>permSlotState&3 == slotEmpty:
			return 0, false
		}
	}
}

func (t *permTable) set(k permKey, p addr.Perm) {
	dead := -1
	for i := t.idx(k); ; i = (i + 1) & t.mask {
		s := t.slots[i]
		switch s >> permSlotState & 3 {
		case slotLive:
			if s&permSlotKeyMask == uint64(k) {
				t.slots[i] = permSlotPack(k, p, slotLive)
				return
			}
		case slotDead:
			if dead < 0 {
				dead = int(i)
			}
		case slotEmpty:
			if dead >= 0 {
				i = uint64(dead)
			} else {
				t.used++
			}
			t.slots[i] = permSlotPack(k, p, slotLive)
			t.live++
			if 4*t.used > 3*len(t.slots) {
				t.grow()
			}
			return
		}
	}
}

func (t *permTable) del(k permKey) {
	for i := t.idx(k); ; i = (i + 1) & t.mask {
		s := t.slots[i]
		switch {
		case s>>permSlotState&3 == slotLive && s&permSlotKeyMask == uint64(k):
			t.slots[i] = s&^(3<<permSlotState) | slotDead<<permSlotState
			t.live--
			return
		case s>>permSlotState&3 == slotEmpty:
			return
		}
	}
}

// flushASID removes every entry of the given address space.
func (t *permTable) flushASID(asid addr.ASID) {
	for i, s := range t.slots {
		if s>>permSlotState&3 == slotLive && permKey(s&permSlotKeyMask).asid() == asid {
			t.slots[i] = s&^(3<<permSlotState) | slotDead<<permSlotState
			t.live--
		}
	}
}

// grow rehashes into a table at most half full of live entries, which
// both expands a full table and reclaims tombstone slots.
func (t *permTable) grow() {
	logSize := uint(10)
	for 2*t.live > 1<<logSize {
		logSize++
	}
	old := t.slots
	t.slots = make([]uint64, 1<<logSize)
	t.mask = 1<<logSize - 1
	t.shift = 64 - logSize
	t.live, t.used = 0, 0
	for _, s := range old {
		if s>>permSlotState&3 == slotLive {
			t.set(permKey(s&permSlotKeyMask), addr.Perm(s>>permSlotPerm&3))
		}
	}
}
