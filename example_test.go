package hybridvc_test

import (
	"fmt"

	"hybridvc"
)

// ExampleNew builds the paper's proposed system, runs a TLB-heavy workload
// on it, and reports how it fared against the conventional baseline.
func ExampleNew() {
	hybrid, err := hybridvc.New(hybridvc.Config{Org: hybridvc.HybridManySegSC})
	if err != nil {
		panic(err)
	}
	if err := hybrid.LoadWorkload("gups"); err != nil {
		panic(err)
	}
	hr, err := hybrid.Run(50_000)
	if err != nil {
		panic(err)
	}

	base, err := hybridvc.New(hybridvc.Config{Org: hybridvc.Baseline})
	if err != nil {
		panic(err)
	}
	if err := base.LoadWorkload("gups"); err != nil {
		panic(err)
	}
	br, err := base.Run(50_000)
	if err != nil {
		panic(err)
	}

	fmt.Println("hybrid faster:", hr.Cycles < br.Cycles)
	fmt.Println("hybrid saves translation energy:", hr.TranslationEnergyPJ < br.TranslationEnergyPJ)
	// Output:
	// hybrid faster: true
	// hybrid saves translation energy: true
}

// ExampleOrganizations enumerates the design points available for study.
func ExampleOrganizations() {
	for _, org := range hybridvc.Organizations() {
		fmt.Println(org)
	}
	// Output:
	// baseline
	// ideal
	// hybrid-dtlb
	// hybrid-manyseg
	// hybrid-manyseg+sc
	// enigma
	// rmm
	// direct-segment
	// ovc
	// virt-2d
	// virt-hybrid
	// victima
	// rlt-vc
}
