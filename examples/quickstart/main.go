// Quickstart: build two systems — the conventional physically addressed
// baseline and the paper's hybrid virtual caching design — run the same
// TLB-thrashing workload on both, and compare performance and translation
// energy. This is the paper's headline experiment in miniature.
package main

import (
	"fmt"
	"log"

	"hybridvc"
)

func main() {
	const workload = "gups" // random access over ~1 GiB: the TLB killer
	const insns = 200_000

	run := func(org hybridvc.Organization) (cycles uint64, energyPJ float64) {
		sys, err := hybridvc.New(hybridvc.Config{Org: org})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadWorkload(workload); err != nil {
			log.Fatal(err)
		}
		report, err := sys.Run(insns)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" ", report)
		return report.Cycles, report.TranslationEnergyPJ
	}

	fmt.Printf("workload %q, %d instructions\n\n", workload, insns)
	fmt.Println("conventional baseline (TLB before every L1 access):")
	baseCycles, baseEnergy := run(hybridvc.Baseline)

	fmt.Println("\nhybrid virtual caching (synonym filter + delayed many-segment translation):")
	hybCycles, hybEnergy := run(hybridvc.HybridManySegSC)

	fmt.Printf("\nspeedup over baseline:        %.2fx\n", float64(baseCycles)/float64(hybCycles))
	fmt.Printf("translation energy reduction: %.0f%%\n", 100*(1-hybEnergy/baseEnergy))
}
