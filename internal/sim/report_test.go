package sim

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// TestReportJSONRoundTrip fills every Report field with a distinct
// non-zero value, decodes the JSON back, and requires an exact match —
// so a field added without a json tag (or dropped from marshaling) fails
// here instead of silently vanishing from tool output.
func TestReportJSONRoundTrip(t *testing.T) {
	want := Report{
		Name:                "test-org",
		Cycles:              12345,
		Instructions:        67890,
		IPC:                 1.5,
		PerCoreIPC:          []float64{1.25, 1.75},
		TranslationEnergyPJ: 9876.5,
		DynamicEnergyPJ:     5432.1,
		LLCMissRate:         0.125,
		MemStallFraction:    0.25,
		Interrupted:         true,
	}

	// Every field must actually carry a non-zero value, or the round trip
	// proves nothing for it. Reflection keeps this in sync with the struct.
	rv := reflect.ValueOf(want)
	for i := 0; i < rv.NumField(); i++ {
		if rv.Field(i).IsZero() {
			t.Fatalf("test fixture leaves field %s zero; set it", rv.Type().Field(i).Name)
		}
		if tag := rv.Type().Field(i).Tag.Get("json"); tag == "" || tag == "-" {
			t.Errorf("field %s has no json tag", rv.Type().Field(i).Name)
		}
	}

	var got Report
	if err := json.Unmarshal([]byte(want.JSON()), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestReportJSONSanitizesNonFinite pins the by-construction guarantee:
// NaN and ±Inf floats — which json.Marshal rejects — are mapped to 0, so
// JSON cannot fail (the old code silently returned "{}" on that path).
func TestReportJSONSanitizesNonFinite(t *testing.T) {
	r := Report{
		Name:                "degenerate",
		IPC:                 math.NaN(),
		PerCoreIPC:          []float64{math.Inf(1), 2.0, math.NaN()},
		TranslationEnergyPJ: math.Inf(1),
		DynamicEnergyPJ:     math.Inf(-1),
		LLCMissRate:         math.NaN(),
		MemStallFraction:    math.NaN(),
	}
	out := r.JSON()
	if out == "{}" {
		t.Fatal("JSON returned the old empty-object failure sentinel")
	}
	var got Report
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if got.IPC != 0 || got.TranslationEnergyPJ != 0 || got.LLCMissRate != 0 {
		t.Errorf("non-finite floats not zeroed: %+v", got)
	}
	if want := []float64{0, 2.0, 0}; !reflect.DeepEqual(got.PerCoreIPC, want) {
		t.Errorf("PerCoreIPC = %v, want %v", got.PerCoreIPC, want)
	}
	// Sanitizing must not mutate the caller's slice.
	if !math.IsInf(r.PerCoreIPC[0], 1) {
		t.Error("JSON mutated the receiver's PerCoreIPC slice")
	}
}
