package experiments

import (
	"fmt"

	"hybridvc"
	"hybridvc/internal/stats"
)

// MulticoreMixes are quad-core multiprogrammed combinations, in the style
// of the paper's multi-programmed evaluation (Section VI runs mixes of
// four applications on a quad-core system sharing the LLC and the delayed
// translation hardware).
var MulticoreMixes = [][]string{
	{"gups", "mcf", "omnetpp", "xalancbmk"},
	{"stream", "milc", "soplex", "astar"},
}

// MulticoreResult reports one mix's comparison.
type MulticoreResult struct {
	Mix      string
	Baseline uint64
	Hybrid   uint64
	Speedup  float64
}

// Multicore runs quad-core multiprogrammed mixes on the baseline and the
// hybrid design. The shared LLC and the single shared index cache /
// segment table are the contended resources (the paper notes one index
// cache and segment table serve all cores).
func Multicore(scale Scale) ([]MulticoreResult, *stats.Table) {
	n := scale.pick(25_000, 500_000)
	var results []MulticoreResult
	for _, mix := range MulticoreMixes {
		label := ""
		for i, wl := range mix {
			if i > 0 {
				label += "+"
			}
			label += wl
		}
		run := func(org hybridvc.Organization) uint64 {
			sys, err := hybridvc.New(hybridvc.Config{Org: org, Cores: 4})
			if err != nil {
				panic(err)
			}
			for _, wl := range mix {
				if err := sys.LoadWorkload(wl); err != nil {
					panic(fmt.Sprintf("multicore %s: %v", wl, err))
				}
			}
			rep, err := sys.Run(n)
			if err != nil {
				panic(err)
			}
			return rep.Cycles
		}
		base := run(hybridvc.Baseline)
		hyb := run(hybridvc.HybridManySegSC)
		results = append(results, MulticoreResult{
			Mix: label, Baseline: base, Hybrid: hyb,
			Speedup: float64(base) / float64(hyb),
		})
	}
	t := stats.NewTable("Quad-core multiprogrammed mixes: baseline vs hybrid",
		"mix", "baseline cycles", "hybrid cycles", "speedup")
	for _, r := range results {
		t.AddRow(r.Mix, fmt.Sprintf("%d", r.Baseline), fmt.Sprintf("%d", r.Hybrid),
			fmt.Sprintf("%.3f", r.Speedup))
	}
	return results, t
}
