// Package cluster turns N independent hvcd daemons into one logical
// content-addressed cache. Membership is static (each node is started
// with the full member list); every job's canonical SHA-256 spec key is
// routed to exactly one owner node by rendezvous (highest-random-weight)
// hashing, so all nodes agree on ownership without coordination and a
// membership change of one node remaps only ~1/N of the key space.
//
// A node answering a local cache miss first asks the key's owner over
// the authenticated peer API (GET /v1/peer/results/{key}) before
// simulating, and best-effort replicates fresh results to the owner, so
// the cluster converges to one simulation per key. Peer calls carry
// tight timeouts and a per-peer health tracker (probing /readyz)
// degrades gracefully: an unreachable owner means simulate locally,
// never fail the job.
package cluster

import (
	"hash/fnv"
	"sort"
)

// Score is the rendezvous weight of (nodeID, key): a 64-bit FNV-1a over
// the key and the node ID with a separator (so neither value can alias
// into the other), pushed through an avalanche finalizer. The finalizer
// matters: raw FNV leaves the high bits of near-identical inputs
// correlated — node IDs like "n1".."n4" differ only in their last byte,
// and without full mixing the same node would win most keys. Higher
// score wins.
func Score(nodeID, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(nodeID))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 fmix64 finalizer: full avalanche, so a one-bit
// input difference decorrelates every output bit.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the node ID owning key under rendezvous hashing: the
// member with the highest Score, ties broken toward the lexically
// smaller ID so every node computes the same owner regardless of the
// order its peer list was written in. An empty member set returns "".
func Owner(key string, nodeIDs []string) string {
	var (
		best      string
		bestScore uint64
		have      bool
	)
	for _, id := range nodeIDs {
		s := Score(id, key)
		if !have || s > bestScore || (s == bestScore && id < best) {
			best, bestScore, have = id, s, true
		}
	}
	return best
}

// Ranked returns the member IDs ordered by descending rendezvous score
// for key (the owner first, then the nodes that would take over if the
// owner left, in order). Useful for diagnostics and tests.
func Ranked(key string, nodeIDs []string) []string {
	out := append([]string(nil), nodeIDs...)
	sort.Slice(out, func(a, b int) bool {
		sa, sb := Score(out[a], key), Score(out[b], key)
		if sa != sb {
			return sa > sb
		}
		return out[a] < out[b]
	})
	return out
}
