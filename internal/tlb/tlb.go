// Package tlb models translation look-aside buffers: the conventional
// two-level TLB of the baseline (Table IV: 64-entry 4-way L1 backed by a
// 1024-entry 8-way L2), the small synonym TLB that serves synonym
// candidates in the hybrid design, and the large delayed TLBs that perform
// page-granularity translation after LLC misses.
//
// Entries record whether the page is truly a synonym: when the synonym
// filter false-positives on a non-synonym page, the page walk installs a
// non-synonym entry whose NonSynonym flag quickly corrects future accesses
// (Section III-A of the paper).
package tlb

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/stats"
)

// Entry is one TLB translation.
type Entry struct {
	Valid bool
	ASID  addr.ASID
	VPN   uint64 // virtual page number
	PFN   uint64 // physical frame number
	Perm  addr.Perm
	// NonSynonym marks an entry installed to correct a synonym-filter
	// false positive: the page is private, so the access should proceed
	// with ASID+VA rather than the physical address.
	NonSynonym bool
	// Shared carries the page's synonym (r/w shared) status from the page
	// tables, so walks can report hypervisor- or OS-induced sharing.
	Shared bool
	lru    uint64
}

// Config describes a TLB.
type Config struct {
	Name string
	// Entries is the total entry count.
	Entries int
	// Ways is the associativity; Ways == Entries means fully associative.
	Ways int
	// Latency is the lookup latency in cycles.
	Latency uint64
}

// TLB is one set-associative TLB level.
type TLB struct {
	cfg     Config
	sets    [][]Entry
	setMask uint64
	tick    uint64
	Stats   stats.HitMiss
}

// New creates a TLB; it panics on invalid geometry (experiment
// configurations are fixed, so geometry errors are programming errors).
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("tlb %s: invalid geometry %d entries / %d ways", cfg.Name, cfg.Entries, cfg.Ways))
	}
	nsets := cfg.Entries / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("tlb %s: set count %d not a power of two", cfg.Name, nsets))
	}
	sets := make([][]Entry, nsets)
	backing := make([]Entry, cfg.Entries)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &TLB{cfg: cfg, sets: sets, setMask: uint64(nsets - 1)}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

func (t *TLB) set(vpn uint64) []Entry { return t.sets[vpn&t.setMask] }

// Lookup searches for (asid, vpn), updating LRU and statistics.
func (t *TLB) Lookup(asid addr.ASID, vpn uint64) (*Entry, bool) {
	t.tick++
	set := t.set(vpn)
	for i := range set {
		if set[i].Valid && set[i].ASID == asid && set[i].VPN == vpn {
			set[i].lru = t.tick
			t.Stats.Hit()
			return &set[i], true
		}
	}
	t.Stats.Miss()
	return nil, false
}

// Probe searches without touching LRU or statistics.
func (t *TLB) Probe(asid addr.ASID, vpn uint64) (*Entry, bool) {
	set := t.set(vpn)
	for i := range set {
		if set[i].Valid && set[i].ASID == asid && set[i].VPN == vpn {
			return &set[i], true
		}
	}
	return nil, false
}

// Touch promotes a Probe hit to a full Lookup hit: it advances the clock,
// stamps the entry's LRU, and records the hit, exactly as Lookup would —
// without rescanning the set. Batched front ends probe quietly to decide
// purity and then commit the hit through Touch in one pass.
func (t *TLB) Touch(e *Entry) {
	t.tick++
	e.lru = t.tick
	t.Stats.Hit()
}

// RecordMiss commits the clock tick and statistics of a Lookup miss whose
// scan a batched front end already performed via Probe.
func (t *TLB) RecordMiss() {
	t.tick++
	t.Stats.Miss()
}

// Insert installs an entry, evicting the set's LRU victim if needed.
// The returned victim is valid only when evicted is true.
func (t *TLB) Insert(e Entry) (victim Entry, evicted bool) {
	t.tick++
	e.Valid = true
	e.lru = t.tick
	set := t.set(e.VPN)
	// Replace an existing mapping for the same page in place.
	for i := range set {
		if set[i].Valid && set[i].ASID == e.ASID && set[i].VPN == e.VPN {
			set[i] = e
			return Entry{}, false
		}
	}
	slot := &set[0]
	for i := range set {
		if !set[i].Valid {
			slot = &set[i]
			break
		}
		if set[i].lru < slot.lru {
			slot = &set[i]
		}
	}
	if slot.Valid {
		victim, evicted = *slot, true
	}
	*slot = e
	return victim, evicted
}

// Shootdown invalidates the translation for (asid, vpn), returning whether
// an entry was present. TLB shootdowns accompany every page-table update.
func (t *TLB) Shootdown(asid addr.ASID, vpn uint64) bool {
	set := t.set(vpn)
	for i := range set {
		if set[i].Valid && set[i].ASID == asid && set[i].VPN == vpn {
			set[i] = Entry{}
			return true
		}
	}
	return false
}

// FlushASID invalidates all translations of one address space.
func (t *TLB) FlushASID(asid addr.ASID) (flushed int) {
	for si := range t.sets {
		for wi := range t.sets[si] {
			if t.sets[si][wi].Valid && t.sets[si][wi].ASID == asid {
				t.sets[si][wi] = Entry{}
				flushed++
			}
		}
	}
	return flushed
}

// FlushAll empties the TLB.
func (t *TLB) FlushAll() {
	for si := range t.sets {
		for wi := range t.sets[si] {
			t.sets[si][wi] = Entry{}
		}
	}
}

// ForEach calls fn for every valid entry (used by invariant checks that
// compare cached translations against the authoritative page tables).
func (t *TLB) ForEach(fn func(Entry)) {
	for si := range t.sets {
		for wi := range t.sets[si] {
			if t.sets[si][wi].Valid {
				fn(t.sets[si][wi])
			}
		}
	}
}

// Occupancy returns the number of valid entries.
func (t *TLB) Occupancy() int {
	n := 0
	for si := range t.sets {
		for wi := range t.sets[si] {
			if t.sets[si][wi].Valid {
				n++
			}
		}
	}
	return n
}

// TwoLevel is the conventional baseline TLB organization: a small fast L1
// backed by a larger L2, with L1 misses filled from L2 hits.
type TwoLevel struct {
	L1 *TLB
	L2 *TLB
}

// DefaultTwoLevelConfig returns the paper's Haswell-like baseline:
// 64-entry 4-way 1-cycle L1 and 1024-entry 8-way 7-cycle L2.
func DefaultTwoLevelConfig() (l1, l2 Config) {
	l1 = Config{Name: "dtlb-l1", Entries: 64, Ways: 4, Latency: 1}
	l2 = Config{Name: "dtlb-l2", Entries: 1024, Ways: 8, Latency: 7}
	return l1, l2
}

// NewTwoLevel builds a two-level TLB.
func NewTwoLevel(l1, l2 Config) *TwoLevel {
	return &TwoLevel{L1: New(l1), L2: New(l2)}
}

// Result reports a two-level lookup outcome.
type Result struct {
	Entry *Entry
	// Level is 1 or 2 for a hit, 0 for a miss in both levels.
	Level int
	// Latency is the cycles consumed by the lookup(s).
	Latency uint64
}

// Lookup searches L1 then L2; an L2 hit refills L1.
func (tl *TwoLevel) Lookup(asid addr.ASID, vpn uint64) Result {
	res := Result{Latency: tl.L1.Config().Latency}
	if e, ok := tl.L1.Lookup(asid, vpn); ok {
		res.Entry, res.Level = e, 1
		return res
	}
	res.Latency += tl.L2.Config().Latency
	if e, ok := tl.L2.Lookup(asid, vpn); ok {
		cp := *e
		tl.L1.Insert(cp)
		res.Entry, res.Level = e, 2
		return res
	}
	return res
}

// Insert installs a walked translation into both levels.
func (tl *TwoLevel) Insert(e Entry) {
	tl.L2.Insert(e)
	tl.L1.Insert(e)
}

// Shootdown invalidates (asid, vpn) in both levels.
func (tl *TwoLevel) Shootdown(asid addr.ASID, vpn uint64) {
	tl.L1.Shootdown(asid, vpn)
	tl.L2.Shootdown(asid, vpn)
}

// FlushASID invalidates an address space in both levels.
func (tl *TwoLevel) FlushASID(asid addr.ASID) {
	tl.L1.FlushASID(asid)
	tl.L2.FlushASID(asid)
}

// Misses returns the combined miss count (accesses that missed both levels).
func (tl *TwoLevel) Misses() uint64 { return tl.L2.Stats.Misses.Value() }

// Accesses returns the number of lookups performed.
func (tl *TwoLevel) Accesses() uint64 { return tl.L1.Stats.Accesses() }
