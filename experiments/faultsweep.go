package experiments

import (
	"encoding/json"
	"fmt"

	"hybridvc"
	"hybridvc/internal/core"
	"hybridvc/internal/fault"
	"hybridvc/internal/sim"
	"hybridvc/internal/stats"
)

// faultWorkload is the fixed workload of the fault sweep: the multi-
// process shared-memory mix, so filter corruption and shootdown bursts
// land on live synonym state.
const faultWorkload = "postgres"

// FaultSweep runs the deterministic fault injector with the invariant
// checker attached: every organization under the full fault mix, plus
// each fault kind in isolation on the flagship hybrid design. Each cell
// reports its injection schedule and timing fingerprint; a cell whose
// checker observes any violation fails the sweep. The table is
// byte-stable — the golden test pins that injected faults are fully
// deterministic (same seed, same schedule, same perturbed timings) for
// any worker count.
func FaultSweep(s Scale) (*stats.Table, error) {
	insns := s.pick(20_000, 100_000)
	simCfg := sim.DefaultConfig()
	simCfg.Timeslice = 10_000

	var cells []Cell
	addCell := func(org hybridvc.Organization, label string, kinds []fault.Kind) {
		cells = append(cells, Cell{
			Label:       fmt.Sprintf("faults/%s/%s/%s", faultWorkload, org, label),
			Fn:          faultCell(org, label, kinds, simCfg, insns),
			DecodeValue: decodeStringRow,
		})
	}
	for _, org := range hybridvc.Organizations() {
		addCell(org, "mixed", nil)
	}
	for _, k := range fault.AllKinds() {
		addCell(hybridvc.HybridManySegSC, k.String(), []fault.Kind{k})
	}

	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fault injection: determinism and invariants under faults",
		"org", "workload", "faults", "injected", "skipped", "checks",
		"cycles", "insns", "ipc", "walk_retries", "shootdowns")
	for _, r := range results {
		t.AddRow(r.Value.([]string)...)
	}
	return t, nil
}

// faultCell builds, perturbs and audits one organization.
func faultCell(org hybridvc.Organization, label string, kinds []fault.Kind, simCfg sim.Config, insns uint64) func() (any, error) {
	return func() (any, error) {
		sys, err := hybridvc.New(hybridvc.Config{Org: org, Cores: 1, Sim: simCfg})
		if err != nil {
			return nil, err
		}
		inj, ch, err := sys.InjectFaults(fault.Config{Seed: 13, Period: 1024, Kinds: kinds})
		if err != nil {
			return nil, err
		}
		if err := sys.LoadWorkload(faultWorkload); err != nil {
			return nil, err
		}
		rep, err := sys.Run(insns)
		if err != nil {
			return nil, err
		}
		if err := inj.Err(); err != nil {
			return nil, fmt.Errorf("%s under %s faults: %w", org, label, err)
		}
		if err := ch.Check(); err != nil {
			return nil, fmt.Errorf("%s after %s faults: %w", org, label, err)
		}
		base := sys.Mem.(core.BaseHolder).BaseState()
		return []string{
			string(org), faultWorkload, label,
			fmt.Sprintf("%d", inj.Total()),
			fmt.Sprintf("%d", inj.Skipped),
			fmt.Sprintf("%d", ch.Checks),
			fmt.Sprintf("%d", rep.Cycles),
			fmt.Sprintf("%d", rep.Instructions),
			fmt.Sprintf("%.6f", rep.IPC),
			fmt.Sprintf("%d", base.WalkRetries.Value()),
			fmt.Sprintf("%d", sys.Kernel.Shootdowns.Value()),
		}, nil
	}
}

// decodeStringRow restores a checkpointed []string row.
func decodeStringRow(data []byte) (any, error) {
	var row []string
	if err := json.Unmarshal(data, &row); err != nil {
		return nil, err
	}
	return row, nil
}
