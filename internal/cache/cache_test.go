package cache

import (
	"testing"

	"hybridvc/internal/addr"
)

var asid1 = addr.MakeASID(0, 1)
var asid2 = addr.MakeASID(0, 2)

func vn(a addr.ASID, va uint64) addr.Name { return addr.VirtName(a, addr.VA(va)) }
func pn(pa uint64) addr.Name              { return addr.PhysName(addr.PA(pa)) }

func smallCache() *Cache {
	// 4 sets x 2 ways of 64 B lines = 512 B.
	return New(Config{Name: "t", SizeBytes: 512, Ways: 2, HitLatency: 1})
}

func TestCacheGeometry(t *testing.T) {
	c := smallCache()
	if c.NumSets() != 4 {
		t.Fatalf("sets = %d, want 4", c.NumSets())
	}
	for _, bad := range []Config{
		{SizeBytes: 0, Ways: 1},
		{SizeBytes: 512, Ways: 0},
		{SizeBytes: 512, Ways: 3}, // 8 lines not divisible by 3
		{SizeBytes: 576, Ways: 3}, // 3 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := smallCache()
	n := vn(asid1, 0x1000)
	if c.Access(n) != nil {
		t.Fatal("cold access hit")
	}
	c.Fill(n, Exclusive, addr.PermRW)
	l := c.Access(n)
	if l == nil {
		t.Fatal("access after fill missed")
	}
	if l.Perm != addr.PermRW || l.State != Exclusive {
		t.Errorf("line = %+v", *l)
	}
	if c.Stats.Hits.Value() != 1 || c.Stats.Misses.Value() != 1 {
		t.Errorf("stats = %v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache()
	// Three lines mapping to the same set (stride = sets*linesize = 256).
	n0, n1, n2 := vn(asid1, 0x0), vn(asid1, 0x100), vn(asid1, 0x200)
	c.Fill(n0, Exclusive, addr.PermRW)
	c.Fill(n1, Exclusive, addr.PermRW)
	c.Access(n0) // make n1 the LRU
	v, evicted := c.Fill(n2, Exclusive, addr.PermRW)
	if !evicted || v.Name != n1 {
		t.Fatalf("evicted %v (ok=%v), want %v", v.Name, evicted, n1)
	}
	if c.Probe(n0) == nil || c.Probe(n2) == nil || c.Probe(n1) != nil {
		t.Error("post-eviction contents wrong")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := smallCache()
	n0, n1, n2 := vn(asid1, 0x0), vn(asid1, 0x100), vn(asid1, 0x200)
	c.Fill(n0, Modified, addr.PermRW)
	c.Fill(n1, Exclusive, addr.PermRW)
	c.Access(n1)
	v, evicted := c.Fill(n2, Exclusive, addr.PermRW)
	if !evicted || v.Name != n0 || !v.Dirty {
		t.Fatalf("victim = %+v (ok=%v), want dirty %v", v, evicted, n0)
	}
	if c.WriteBks.Value() != 1 {
		t.Errorf("writebacks = %d", c.WriteBks.Value())
	}
}

func TestHomonymSeparation(t *testing.T) {
	// The same VA in two address spaces must occupy two distinct lines:
	// the ASID tag extension fixes the homonym problem.
	c := smallCache()
	c.Fill(vn(asid1, 0x1000), Modified, addr.PermRW)
	c.Fill(vn(asid2, 0x1000), Exclusive, addr.PermRO)
	l1 := c.Probe(vn(asid1, 0x1000))
	l2 := c.Probe(vn(asid2, 0x1000))
	if l1 == nil || l2 == nil || l1 == l2 {
		t.Fatal("homonym lines aliased")
	}
	if l1.Perm == l2.Perm {
		t.Error("homonym lines share permission")
	}
}

func TestSynonymBitSeparatesSpaces(t *testing.T) {
	// A physical name and a virtual name with identical address bits are
	// distinct blocks (the synonym tag bit is part of the identity).
	c := smallCache()
	c.Fill(pn(0x2000), Exclusive, addr.PermRW)
	if c.Probe(vn(addr.ASID(0), 0x2000)) != nil {
		t.Error("virtual probe hit a physical line")
	}
	if c.Probe(pn(0x2000)) == nil {
		t.Error("physical line lost")
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	c := smallCache()
	n := vn(asid1, 0x40)
	c.Fill(n, Modified, addr.PermRW)
	if dirty := c.Downgrade(n); !dirty {
		t.Error("downgrading M line did not report dirty")
	}
	if c.Probe(n).State != Shared {
		t.Error("downgrade did not set Shared")
	}
	if dirty, present := c.Invalidate(n); dirty || !present {
		t.Errorf("invalidate: dirty=%v present=%v", dirty, present)
	}
	if _, present := c.Invalidate(n); present {
		t.Error("double invalidate reported present")
	}
	if c.Downgrade(n) {
		t.Error("downgrade of absent line reported dirty")
	}
}

func TestFlushPage(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 16 << 10, Ways: 4, HitLatency: 1})
	// Fill 3 lines in page 0x3000 (one dirty) and 1 line elsewhere.
	c.Fill(vn(asid1, 0x3000), Modified, addr.PermRW)
	c.Fill(vn(asid1, 0x3040), Exclusive, addr.PermRW)
	c.Fill(vn(asid1, 0x3f80), Shared, addr.PermRO)
	c.Fill(vn(asid1, 0x5000), Exclusive, addr.PermRW)
	flushed, dirty := c.FlushPage(vn(asid1, 0x3000))
	if flushed != 3 || dirty != 1 {
		t.Fatalf("flushed=%d dirty=%d, want 3,1", flushed, dirty)
	}
	if c.Probe(vn(asid1, 0x5000)) == nil {
		t.Error("unrelated line flushed")
	}
	// Same page in a different ASID must be untouched.
	c.Fill(vn(asid2, 0x3000), Exclusive, addr.PermRW)
	if f, _ := c.FlushPage(vn(asid1, 0x3000)); f != 0 {
		t.Errorf("cross-ASID flush removed %d lines", f)
	}
}

func TestSetPagePerm(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 16 << 10, Ways: 4, HitLatency: 1})
	c.Fill(vn(asid1, 0x3000), Exclusive, addr.PermRW)
	c.Fill(vn(asid1, 0x3040), Exclusive, addr.PermRW)
	c.Fill(vn(asid1, 0x4000), Exclusive, addr.PermRW)
	if n := c.SetPagePerm(vn(asid1, 0x3000), addr.PermRO); n != 2 {
		t.Fatalf("updated %d lines, want 2", n)
	}
	if c.Probe(vn(asid1, 0x3000)).Perm != addr.PermRO {
		t.Error("perm not updated")
	}
	if c.Probe(vn(asid1, 0x4000)).Perm != addr.PermRW {
		t.Error("unrelated perm changed")
	}
}

func TestOccupancyAndForEach(t *testing.T) {
	c := smallCache()
	if c.Occupancy() != 0 {
		t.Error("new cache not empty")
	}
	c.Fill(vn(asid1, 0x0), Exclusive, addr.PermRW)
	c.Fill(vn(asid1, 0x40), Exclusive, addr.PermRW)
	if c.Occupancy() != 2 {
		t.Errorf("occupancy = %d", c.Occupancy())
	}
	count := 0
	c.ForEachLine(func(addr.Name, *Line) { count++ })
	if count != 2 {
		t.Errorf("ForEachLine visited %d", count)
	}
}

func TestFillExistingUpdates(t *testing.T) {
	c := smallCache()
	n := vn(asid1, 0x80)
	c.Fill(n, Shared, addr.PermRO)
	if _, evicted := c.Fill(n, Modified, addr.PermRW); evicted {
		t.Error("refill evicted")
	}
	l := c.Probe(n)
	if l.State != Modified || l.Perm != addr.PermRW {
		t.Errorf("refill did not update: %+v", *l)
	}
	if c.Occupancy() != 1 {
		t.Error("refill duplicated line")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q", s, s.String())
		}
	}
}
