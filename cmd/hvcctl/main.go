// Command hvcctl is the thin CLI over the hvcd daemon API: submit jobs,
// watch them to completion, stream timelines, cancel, introspect the
// catalogs, and load-test the daemon.
//
// Usage:
//
//	hvcctl [-addr URL] submit -org hybrid-manyseg+sc -workloads gups,mcf -insns 200000 [-wait]
//	hvcctl [-addr URL] submit -sweep fig9 [-full] [-wait]
//	hvcctl [-addr URL] status <job-id>
//	hvcctl [-addr URL] watch <job-id>
//	hvcctl [-addr URL] timeline <job-id>
//	hvcctl [-addr URL] cancel <job-id>
//	hvcctl [-addr URL] jobs | orgs | experiments | health | metrics
//	hvcctl [-addr URL] bench -c 8 -n 64 [-insns 50000] [-out BENCH_service.json]
//	hvcctl bench-cluster [-n 60] [-out BENCH_cluster.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hybridvc/internal/buildinfo"
	"hybridvc/internal/service"
	"hybridvc/internal/service/client"
	"hybridvc/internal/stats"
)

// stdout is the command output sink, a variable so tests can capture it.
var stdout io.Writer = os.Stdout

func main() {
	addr := flag.String("addr", "http://localhost:8077", "hvcd base URL")
	servers := flag.String("servers", "", "comma-separated hvcd base URLs; submissions are owner-routed across them with round-robin failover (overrides -addr)")
	version := buildinfo.Flag()
	flag.Usage = usage
	flag.Parse()
	buildinfo.HandleFlag(version, "hvcctl")

	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var bal *client.Balancer
	c := client.New(*addr, nil)
	if *servers != "" {
		var err error
		bal, err = client.NewBalancer(strings.Split(*servers, ","), nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hvcctl:", err)
			os.Exit(2)
		}
		// Learn the membership for owner routing; a failed refresh just
		// means round-robin until the nodes come up.
		bal.Refresh(ctx)
		// Non-submit commands talk to the first server.
		c = bal.Clients()[0]
	}

	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(ctx, c, bal, args)
	case "status":
		err = cmdStatus(ctx, c, args)
	case "watch":
		err = cmdWatch(ctx, c, args)
	case "timeline":
		err = cmdTimeline(ctx, c, args)
	case "cancel":
		err = cmdCancel(ctx, c, args)
	case "jobs":
		err = cmdJobs(ctx, c, args)
	case "orgs":
		err = cmdOrgs(ctx, c)
	case "experiments":
		err = cmdExperiments(ctx, c)
	case "health":
		err = cmdHealth(ctx, c)
	case "cluster":
		err = cmdCluster(ctx, c)
	case "metrics":
		err = cmdMetrics(ctx, c, args)
	case "bench":
		err = cmdBench(ctx, c, args)
	case "bench-cluster":
		err = cmdBenchCluster(ctx, args)
	default:
		fmt.Fprintf(os.Stderr, "hvcctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `hvcctl — client for the hvcd simulation daemon

usage: hvcctl [-addr URL | -servers URL,URL,...] <command> [args]

commands:
  submit       submit a sim job (-org, -workloads, -insns, ...) or sweep (-sweep <experiment>)
  status       print one job's status and report (-json for compact machine output)
  watch        poll a job until it finishes, then print the report
  timeline     stream a job's interval time-series (NDJSON; -sse uses Server-Sent Events)
  cancel       cancel a job
  jobs         list jobs (-json for the full status array)
  orgs         list organizations and workloads
  experiments  list registered experiments
  health       daemon liveness (/healthz) and readiness (/readyz)
  cluster      node identity and cluster membership (/v1/cluster)
  metrics      daemon counters (-prom for Prometheus text format)
  bench        load-generate and record sustained jobs/sec
  bench-cluster  boot in-process 1/2/4-node clusters and record scaling, dedup and peer latency

With -servers, submissions route to each job key's cluster owner node
when computable and fail over round-robin on 429/503 or connection
errors; other commands talk to the first listed server.
`)
}

// cmdSubmit submits one job built from flags; -wait watches it to
// completion and prints the final report. A non-nil balancer routes
// the submission to the job key's cluster owner (failing over
// round-robin) and the watch follows the node that took it.
func cmdSubmit(ctx context.Context, c *client.Client, bal *client.Balancer, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	org := fs.String("org", "", "organization (sim jobs; default hybrid-manyseg+sc)")
	wls := fs.String("workloads", "", "comma-separated workload names (default gups)")
	insns := fs.Uint64("insns", 0, "instructions per core (default 200000)")
	cores := fs.Int("cores", 0, "hardware cores (default 1)")
	llc := fs.Int("llc", 0, "LLC bytes override")
	seed := fs.Int64("seed", 0, "workload seed (default 1)")
	interval := fs.Uint64("interval", 0, "timeline interval in instructions (default 10000)")
	sweep := fs.String("sweep", "", "submit a sweep of this experiment instead of a sim job")
	full := fs.Bool("full", false, "sweep at full (paper-length) scale")
	wait := fs.Bool("wait", false, "wait for completion and print the result")
	fs.Parse(args)

	spec := service.JobSpec{}
	if *sweep != "" {
		spec.Kind = service.KindSweep
		spec.Experiment = *sweep
		if *full {
			spec.Scale = "full"
		}
	} else {
		spec.Org = *org
		spec.Instructions = *insns
		spec.Cores = *cores
		spec.LLCBytes = *llc
		spec.Seed = *seed
		spec.Interval = *interval
		for _, w := range strings.Split(*wls, ",") {
			if w = strings.TrimSpace(w); w != "" {
				spec.Workloads = append(spec.Workloads, w)
			}
		}
	}
	var resp service.SubmitResponse
	var err error
	if bal != nil {
		var served *client.Client
		resp, served, err = bal.SubmitWait(ctx, spec, client.Backoff{})
		if served != nil {
			c = served // watch the node that took the job
		}
	} else {
		resp, err = c.SubmitWait(ctx, spec)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "job %s  state=%s  cached=%v  deduped=%v  key=%.16s…\n",
		resp.ID, resp.State, resp.Cached, resp.Deduped, resp.Key)
	origin := ""
	if resp.OriginLineage != "" && resp.OriginLineage != resp.Lineage {
		origin = "  origin=" + resp.OriginLineage
	}
	fmt.Fprintf(stdout, "lineage %s%s\n", resp.Lineage, origin)
	if !*wait {
		return nil
	}
	return watchAndPrint(ctx, c, resp.ID)
}

func oneArg(args []string, cmd string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("%s needs exactly one job id", cmd)
	}
	return args[0], nil
}

func printStatus(st service.JobStatus) {
	b, _ := json.MarshalIndent(st, "", "  ")
	fmt.Fprintln(stdout, string(b))
}

func cmdStatus(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print compact single-line JSON (machine-readable)")
	fs.Parse(args)
	id, err := oneArg(fs.Args(), "status")
	if err != nil {
		return err
	}
	st, err := c.Job(ctx, id)
	if err != nil {
		return err
	}
	if *jsonOut {
		return json.NewEncoder(stdout).Encode(st)
	}
	printStatus(st)
	return nil
}

func watchAndPrint(ctx context.Context, c *client.Client, id string) error {
	st, err := c.Watch(ctx, id, 100*time.Millisecond)
	if err != nil {
		return err
	}
	printStatus(st)
	if st.State != service.StateDone {
		return fmt.Errorf("job %s finished %s: %s", id, st.State, st.Error)
	}
	return nil
}

func cmdWatch(ctx context.Context, c *client.Client, args []string) error {
	id, err := oneArg(args, "watch")
	if err != nil {
		return err
	}
	return watchAndPrint(ctx, c, id)
}

func cmdTimeline(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	sse := fs.Bool("sse", false, "stream as Server-Sent Events instead of NDJSON")
	resume := fs.Int("resume", -1, "with -sse, resume after this interval index")
	fs.Parse(args)
	id, err := oneArg(fs.Args(), "timeline")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	print := func(iv stats.Interval) error { return enc.Encode(iv) }
	if *sse {
		return c.TimelineSSE(ctx, id, *resume, true, print)
	}
	return c.Timeline(ctx, id, true, print)
}

func cmdCancel(ctx context.Context, c *client.Client, args []string) error {
	id, err := oneArg(args, "cancel")
	if err != nil {
		return err
	}
	if err := c.Cancel(ctx, id); err != nil {
		return err
	}
	fmt.Printf("job %s canceling\n", id)
	return nil
}

func cmdJobs(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print the full JobStatus array as JSON")
	fs.Parse(args)
	jobs, err := c.Jobs(ctx)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(jobs)
	}
	for _, j := range jobs {
		kind := j.Spec.Kind
		what := j.Spec.Org
		if kind == service.KindSweep {
			what = j.Spec.Experiment
		}
		from := ""
		if j.Provenance != "" {
			from = " from=" + j.Provenance
			if j.OriginNode != "" {
				from += "@" + j.OriginNode
			}
		}
		fmt.Fprintf(stdout, "%-8s %-9s %-6s %-18s cached=%-5v intervals=%d%s\n",
			j.ID, j.State, kind, what, j.Cached, j.Intervals, from)
	}
	return nil
}

// cmdCluster prints the node's identity and, when clustering is
// enabled, its membership view with per-peer health.
func cmdCluster(ctx context.Context, c *client.Client) error {
	view, err := c.Cluster(ctx)
	if err != nil {
		return err
	}
	if !view.Enabled {
		fmt.Fprintf(stdout, "node %s: clustering disabled\n", view.NodeID)
		return nil
	}
	fmt.Fprintf(stdout, "node %s: %d members\n", view.NodeID, len(view.Members))
	for _, m := range view.Members {
		mark := " "
		if m.Self {
			mark = "*"
		}
		health := "healthy"
		if !m.Healthy {
			health = "unhealthy"
		}
		fmt.Fprintf(stdout, "%s %-12s %-28s %s\n", mark, m.ID, m.URL, health)
	}
	return nil
}

func cmdOrgs(ctx context.Context, c *client.Client) error {
	cat, err := c.Orgs(ctx)
	if err != nil {
		return err
	}
	fmt.Println("organizations:")
	for _, o := range cat.Organizations {
		virt := ""
		if o.Virtualized {
			virt = " (virtualized)"
		}
		fmt.Printf("  %s%s\n", o.Name, virt)
	}
	fmt.Println("workloads:")
	for _, w := range cat.Workloads {
		fmt.Printf("  %-11s %6.1f MiB  %d proc(s)  %.12s…\n",
			w.Name, float64(w.Bytes)/(1<<20), w.Procs, w.Digest)
	}
	return nil
}

func cmdExperiments(ctx context.Context, c *client.Client) error {
	exps, err := c.Experiments(ctx)
	if err != nil {
		return err
	}
	for _, e := range exps {
		fmt.Printf("%-14s %s\n", e.Name, e.Description)
	}
	return nil
}

func cmdHealth(ctx context.Context, c *client.Client) error {
	h, err := c.Health(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("healthz: status=%s version=%q jobs=%d draining=%v\n", h.Status, h.Version, h.Jobs, h.Draining)
	r, err := c.Ready(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("readyz:  status=%s draining=%v breaker=%s\n", r.Status, r.Draining, r.Breaker)
	return nil
}

func cmdMetrics(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	prom := fs.Bool("prom", false, "print the Prometheus text exposition instead of JSON")
	fs.Parse(args)
	if *prom {
		b, err := c.MetricsProm(ctx)
		if err != nil {
			return err
		}
		stdout.Write(b)
		return nil
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	b, _ := json.MarshalIndent(m, "", "  ")
	fmt.Fprintln(stdout, string(b))
	return nil
}

// benchResult is the BENCH_service.json schema: sustained jobs/sec for
// fresh (simulating) and cached (content-addressed hit) submissions.
type benchResult struct {
	Clients          int     `json:"clients"`
	Jobs             int     `json:"jobs"`
	Instructions     uint64  `json:"instructions_per_job"`
	FreshSeconds     float64 `json:"fresh_seconds"`
	FreshJobsPerSec  float64 `json:"fresh_jobs_per_sec"`
	CachedSeconds    float64 `json:"cached_seconds"`
	CachedJobsPerSec float64 `json:"cached_jobs_per_sec"`
	CacheHits        uint64  `json:"cache_hits"`
	Simulated        uint64  `json:"simulated"`
}

// cmdBench load-generates: c concurrent clients push n unique sim jobs
// (distinct seeds) and wait for completion, then resubmit the identical
// specs to measure the content-addressed cache path. Sustained jobs/sec
// for both phases lands in -out.
func cmdBench(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	conc := fs.Int("c", 8, "concurrent clients")
	n := fs.Int("n", 32, "total jobs")
	insns := fs.Uint64("insns", 50_000, "instructions per job")
	org := fs.String("org", "hybrid-manyseg+sc", "organization")
	out := fs.String("out", "BENCH_service.json", "result file")
	fs.Parse(args)
	if *conc < 1 || *n < 1 {
		return fmt.Errorf("bench: -c and -n must be positive")
	}

	specs := make([]service.JobSpec, *n)
	for i := range specs {
		specs[i] = service.JobSpec{
			Org:          *org,
			Workloads:    []string{"gups"},
			Instructions: *insns,
			Seed:         int64(i + 1), // unique seed → unique cache key
		}
	}

	run := func(phase string) (float64, error) {
		var next atomic.Int64
		var firstErr atomic.Value
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < *conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(specs) || ctx.Err() != nil {
						return
					}
					resp, err := c.SubmitWait(ctx, specs[i])
					if err == nil {
						_, err = c.Watch(ctx, resp.ID, 20*time.Millisecond)
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err, _ := firstErr.Load().(error); err != nil {
			return 0, fmt.Errorf("bench %s phase: %w", phase, err)
		}
		return time.Since(start).Seconds(), ctx.Err()
	}

	fresh, err := run("fresh")
	if err != nil {
		return err
	}
	cached, err := run("cached")
	if err != nil {
		return err
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	res := benchResult{
		Clients: *conc, Jobs: *n, Instructions: *insns,
		FreshSeconds: fresh, FreshJobsPerSec: float64(*n) / fresh,
		CachedSeconds: cached, CachedJobsPerSec: float64(*n) / cached,
		CacheHits: m.CacheHits, Simulated: m.Simulated,
	}
	b, _ := json.MarshalIndent(res, "", "  ")
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: %d jobs × %d insns, %d clients: fresh %.1f jobs/s, cached %.1f jobs/s → %s\n",
		*n, *insns, *conc, res.FreshJobsPerSec, res.CachedJobsPerSec, *out)
	return nil
}
