// Package cache models the on-chip cache hierarchy of the hybrid virtual
// caching design: set-associative write-back caches whose tags are extended
// with a synonym bit, a 16-bit ASID, and 2 permission bits (Figure 2 of the
// paper), so a block may be named either by physical address (synonym
// blocks) or by ASID+VA (non-synonym blocks). Coherence between private
// caches uses the same unified names, which is what removes the synonym
// problem: every physical block has exactly one name in the hierarchy.
package cache

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/stats"
)

// State is a MESI coherence state for lines in private caches.
type State uint8

const (
	// Invalid marks an empty or invalidated way.
	Invalid State = iota
	// Shared marks a clean copy that other caches may also hold.
	Shared
	// Exclusive marks a clean copy no other cache holds.
	Exclusive
	// Modified marks a dirty copy no other cache holds.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Config describes one cache level.
type Config struct {
	// Name labels the cache in statistics output.
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// HitLatency is the access latency in cycles.
	HitLatency uint64
}

// Line is one cache way's coherence bookkeeping: the MESI state and the
// cached permission bits of the extended tag of Figure 2. Everything else
// a way carries lives in the Cache's packed structure-of-arrays — the tag
// key it is matched by (which encodes the full block name, reconstructed
// on demand via addr.NameFromKey) and its LRU stamp — so the hot set scans
// and fills touch one densely packed word per way plus these two bytes.
type Line struct {
	State State
	Perm  addr.Perm
}

// Dirty reports whether the line holds modified data.
func (l *Line) Dirty() bool { return l.State == Modified }

// Cache is one set-associative write-back cache level.
type Cache struct {
	cfg     Config
	setMask uint64
	// keys holds each way's one-word tag key packed contiguously, so the
	// hot set scans compare one contiguous word per way instead of
	// striding through per-way structs. A valid way stores Name.Key()
	// with keyValidBit set (bit 1 is always clear in a key: addresses are
	// line-aligned, bit 0 is the synonym bit, and bits 2..3 carry the
	// payload kind); invalid ways store 0,
	// so a single compare per way resolves both tag match and validity,
	// and the full block name is recovered with addr.NameFromKey.
	keys []uint64
	// lrus holds each way's LRU stamp packed the same way; zero means the
	// way is invalid (ticks start at 1), which lets find and the Fill
	// victim scan run entirely over the packed arrays.
	lrus []uint64
	// meta holds each way's two-byte coherence state and permission; set
	// si occupies meta[si*ways : (si+1)*ways], like keys and lrus.
	meta     []Line
	ways     uint64
	tick     uint64
	Stats    stats.HitMiss
	Evicted  stats.Counter // lines evicted for capacity/conflict
	WriteBks stats.Counter // dirty evictions
}

// New creates a cache. It panics on geometries that do not divide evenly;
// cache shapes come from fixed experiment configurations.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: invalid size/ways %d/%d", cfg.Name, cfg.SizeBytes, cfg.Ways))
	}
	lines := cfg.SizeBytes / addr.LineSize
	if lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", cfg.Name, lines, cfg.Ways))
	}
	nsets := lines / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, nsets))
	}
	return &Cache{
		cfg: cfg, setMask: uint64(nsets - 1),
		keys: make([]uint64, nsets*cfg.Ways),
		lrus: make([]uint64, nsets*cfg.Ways),
		meta: make([]Line, nsets*cfg.Ways),
		ways: uint64(cfg.Ways),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.keys) / int(c.ways) }

// nameAt rebuilds the block name stored in way i from its packed key.
func (c *Cache) nameAt(i uint64) addr.Name {
	return addr.NameFromKey(c.keys[i] &^ keyValidBit)
}

// keyValidBit marks an occupied way in the packed key mirror. Name.Key()
// never sets bit 1 (addresses are line-aligned, bit 0 is the synonym bit,
// bits 2..3 hold the payload kind), so key|keyValidBit is nonzero and
// collides with no other name.
const keyValidBit = 1 << 1

// find locates n's way, scanning the packed key mirror: it returns the set
// index, the way, and whether a valid match exists.
func (c *Cache) find(n addr.Name) (si uint64, w int, ok bool) {
	k := n.Key() | keyValidBit
	si = n.Line() & c.setMask
	base := si * c.ways
	keys := c.keys[base : base+c.ways]
	for i := range keys {
		if keys[i] == k {
			return si, i, true
		}
	}
	return si, 0, false
}

// lookup returns the way holding n, or nil.
func (c *Cache) lookup(n addr.Name) *Line {
	if si, w, ok := c.find(n); ok {
		return &c.meta[si*c.ways+uint64(w)]
	}
	return nil
}

// Probe reports whether n is present, without touching LRU or statistics.
// Coherence snoops use Probe.
func (c *Cache) Probe(n addr.Name) *Line { return c.lookup(n) }

// Victim describes a line displaced by a fill.
type Victim struct {
	Name  addr.Name
	Dirty bool
}

// Access looks up n, recording hit/miss statistics and updating LRU.
// On a hit it returns (line, nil-victim-ok). It does not allocate; callers
// Fill after resolving the miss so fill ordering matches the hierarchy.
func (c *Cache) Access(n addr.Name) *Line {
	c.tick++
	si, w, ok := c.find(n)
	c.Stats.Record(ok)
	if !ok {
		return nil
	}
	c.lrus[si*c.ways+uint64(w)] = c.tick
	return &c.meta[si*c.ways+uint64(w)]
}

// Fill allocates n with the given state and permission, returning any
// displaced victim. Filling a name already present just updates it.
func (c *Cache) Fill(n addr.Name, st State, perm addr.Perm) (Victim, bool) {
	c.tick++
	k := n.Key() | keyValidBit
	base := (n.Line() & c.setMask) * c.ways
	keys := c.keys[base : base+c.ways]
	lrus := c.lrus[base : base+c.ways]
	// One pass resolves both questions: an existing way for n (update in
	// place) and, failing that, the victim — the first strict minimum
	// over the packed LRU stamps, which is the first free way when one
	// exists (invalid ways carry stamp 0) and the LRU way otherwise. The
	// value-tracking minimum lets the compiler emit conditional moves
	// instead of a data-dependent branch per way.
	victim, minLru := 0, ^uint64(0)
	hit := -1
	for i := range keys {
		if keys[i] == k {
			hit = i
			break
		}
		if lv := lrus[i]; lv < minLru {
			victim, minLru = i, lv
		}
	}
	if hit >= 0 {
		c.meta[base+uint64(hit)] = Line{State: st, Perm: perm}
		lrus[hit] = c.tick
		return Victim{}, false
	}
	var out Victim
	evicted := false
	if vk := keys[victim]; vk != 0 {
		out = Victim{Name: addr.NameFromKey(vk &^ keyValidBit), Dirty: c.meta[base+uint64(victim)].Dirty()}
		evicted = true
		c.Evicted.Inc()
		if out.Dirty {
			c.WriteBks.Inc()
		}
	}
	c.meta[base+uint64(victim)] = Line{State: st, Perm: perm}
	keys[victim] = k
	lrus[victim] = c.tick
	return out, evicted
}

// AccessFill is Access immediately followed, on a miss, by Fill — one set
// scan resolves lookup, statistics, LRU, victim choice, and install. It is
// byte-identical to the separate Access-then-Fill pair whenever nothing
// touches the cache between the two calls (the LLC lookup path and the
// index cache qualify; the private-cache fills do not, because a back-
// invalidation may change the victim between their Access and Fill). On a
// hit it returns the line and installs nothing.
func (c *Cache) AccessFill(n addr.Name, st State, perm addr.Perm) (l *Line, v Victim, evicted bool) {
	c.tick++
	k := n.Key() | keyValidBit
	base := (n.Line() & c.setMask) * c.ways
	keys := c.keys[base : base+c.ways]
	lrus := c.lrus[base : base+c.ways]
	victim, minLru := 0, ^uint64(0)
	hit := -1
	for i := range keys {
		if keys[i] == k {
			hit = i
			break
		}
		if lv := lrus[i]; lv < minLru {
			victim, minLru = i, lv
		}
	}
	if hit >= 0 {
		c.Stats.Record(true)
		lrus[hit] = c.tick
		return &c.meta[base+uint64(hit)], Victim{}, false
	}
	c.Stats.Record(false)
	c.tick++ // the fill's own tick, matching the separate-call sequence
	if vk := keys[victim]; vk != 0 {
		v = Victim{Name: addr.NameFromKey(vk &^ keyValidBit), Dirty: c.meta[base+uint64(victim)].Dirty()}
		evicted = true
		c.Evicted.Inc()
		if v.Dirty {
			c.WriteBks.Inc()
		}
	}
	c.meta[base+uint64(victim)] = Line{State: st, Perm: perm}
	keys[victim] = k
	lrus[victim] = c.tick
	return nil, v, evicted
}

// TouchSet reads every way of n's set and returns a checksum of the cached
// tag keys. It mutates nothing — no LRU, no statistics, no state — so it is
// semantically invisible to the simulation; the batched engine uses it to
// pull the tag arrays an upcoming run of accesses will scan into the host
// CPU's caches ahead of the serial dispatch loop. The checksum exists only
// so the reads cannot be optimized away.
func (c *Cache) TouchSet(n addr.Name) uint64 {
	base := (n.Line() & c.setMask) * c.ways
	keys := c.keys[base : base+c.ways]
	lrus := c.lrus[base : base+c.ways]
	var sum uint64
	for i := range keys {
		sum += keys[i] + lrus[i]
	}
	return sum
}

// Invalidate removes n if present, returning whether it was dirty.
func (c *Cache) Invalidate(n addr.Name) (wasDirty, wasPresent bool) {
	si, w, ok := c.find(n)
	if !ok {
		return false, false
	}
	i := si*c.ways + uint64(w)
	wasDirty = c.meta[i].Dirty()
	c.meta[i] = Line{}
	c.keys[i] = 0
	c.lrus[i] = 0
	return wasDirty, true
}

// Downgrade moves n to Shared (after a remote read snoop), returning whether
// the line was dirty and had to supply data.
func (c *Cache) Downgrade(n addr.Name) (wasDirty bool) {
	if l := c.lookup(n); l != nil {
		wasDirty = l.Dirty()
		l.State = Shared
	}
	return wasDirty
}

// FlushMatching invalidates every line for which match returns true and
// returns the number invalidated and how many were dirty. The OS uses this
// for page remaps, synonym status changes, and permission revocations.
func (c *Cache) FlushMatching(match func(addr.Name) bool) (flushed, dirty int) {
	for i := range c.keys {
		if c.keys[i] != 0 && match(c.nameAt(uint64(i))) {
			if c.meta[i].Dirty() {
				dirty++
			}
			c.meta[i] = Line{}
			c.keys[i] = 0
			c.lrus[i] = 0
			flushed++
		}
	}
	return flushed, dirty
}

// FlushPage invalidates all lines of a page identified by a representative
// name (ASID+virtual page for non-synonym, frame for synonym).
func (c *Cache) FlushPage(page addr.Name) (flushed, dirty int) {
	return c.FlushMatching(func(n addr.Name) bool { return n.SamePage(page) })
}

// SetPagePerm updates the permission bits of every cached line of a page —
// the paper's mechanism for r/o content sharing (Section III-D): permission
// changes update cached copies rather than flushing them.
func (c *Cache) SetPagePerm(page addr.Name, perm addr.Perm) (updated int) {
	for i := range c.keys {
		if c.keys[i] != 0 && c.nameAt(uint64(i)).SamePage(page) {
			c.meta[i].Perm = perm
			updated++
		}
	}
	return updated
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.keys {
		if c.keys[i] != 0 {
			n++
		}
	}
	return n
}

// ForEachLine calls fn for every valid line's name and coherence meta
// (used by invariant checks).
func (c *Cache) ForEachLine(fn func(addr.Name, *Line)) {
	for i := range c.keys {
		if c.keys[i] != 0 {
			fn(c.nameAt(uint64(i)), &c.meta[i])
		}
	}
}
