package telemetry

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hybridvc/internal/stats"
)

func TestEncoderCounterGauge(t *testing.T) {
	enc := NewEncoder()
	enc.Counter("jobs_total", "Jobs seen.", 42)
	enc.Gauge("queue_depth", "Queue depth.", 7)
	enc.Gauge("build_info", "Build metadata.", 1, Label{Name: "version", Value: "v1.2"})
	out := string(enc.Bytes())

	for _, want := range []string{
		"# HELP jobs_total Jobs seen.\n",
		"# TYPE jobs_total counter\n",
		"jobs_total 42\n",
		"# TYPE queue_depth gauge\n",
		"queue_depth 7\n",
		"build_info{version=\"v1.2\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := Lint(enc.Bytes()); err != nil {
		t.Fatalf("Lint rejected encoder output: %v", err)
	}
}

func TestEncoderLabelEscaping(t *testing.T) {
	enc := NewEncoder()
	enc.Gauge("g", "Help with \\ backslash\nand newline.", 1,
		Label{Name: "v", Value: "a\"b\\c\nd"})
	out := string(enc.Bytes())
	if !strings.Contains(out, `v="a\"b\\c\nd"`) {
		t.Errorf("label value not escaped: %s", out)
	}
	if !strings.Contains(out, `Help with \\ backslash\nand newline.`) {
		t.Errorf("help not escaped: %s", out)
	}
	if err := Lint(enc.Bytes()); err != nil {
		t.Fatalf("Lint rejected escaped output: %v", err)
	}
}

func TestEncoderFamilyHeaderOnce(t *testing.T) {
	enc := NewEncoder()
	enc.Counter("c_total", "C.", 1, Label{Name: "k", Value: "a"})
	enc.Counter("c_total", "C.", 2, Label{Name: "k", Value: "b"})
	out := string(enc.Bytes())
	if n := strings.Count(out, "# TYPE c_total counter"); n != 1 {
		t.Errorf("want one TYPE header, got %d:\n%s", n, out)
	}
	if err := Lint(enc.Bytes()); err != nil {
		t.Fatalf("Lint: %v", err)
	}
}

func TestEncoderFamilyTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a family with a new type should panic")
		}
	}()
	enc := NewEncoder()
	enc.Counter("m", "M.", 1)
	enc.Gauge("m", "M.", 1)
}

// TestEncoderHistogramProperty is the rendering contract: for random
// sample sets, the emitted le buckets are cumulative (monotone
// non-decreasing) and the +Inf bucket equals the histogram count.
func TestEncoderHistogramProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		h := stats.NewHistogram(10, 100, 1_000, 10_000)
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			h.Observe(uint64(rng.Intn(50_000)))
		}
		enc := NewEncoder()
		enc.Histogram("lat_seconds", "Latency.", h.Snapshot(), LatencyScale)
		out := enc.Bytes()
		if err := Lint(out); err != nil {
			t.Fatalf("trial %d: Lint: %v\n%s", trial, err, out)
		}

		var prev float64 = -1
		var infCount, count float64
		for _, line := range strings.Split(string(out), "\n") {
			if strings.HasPrefix(line, "lat_seconds_bucket") {
				name, labels, v, err := parseSample(line)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				_ = name
				if v < prev {
					t.Fatalf("trial %d: bucket counts not cumulative: %v after %v", trial, v, prev)
				}
				prev = v
				if le, _ := findLabel(labels, "le"); le == "+Inf" {
					infCount = v
				}
			}
			if strings.HasPrefix(line, "lat_seconds_count") {
				_, _, v, err := parseSample(line)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				count = v
			}
		}
		if infCount != float64(h.Count()) || count != float64(h.Count()) {
			t.Fatalf("trial %d: +Inf=%v _count=%v want %d", trial, infCount, count, h.Count())
		}
	}
}

func TestEncoderHistogramSumScaled(t *testing.T) {
	h := stats.NewHistogram(100, 1000)
	h.Observe(500)
	h.Observe(1500)
	enc := NewEncoder()
	enc.Histogram("x_seconds", "X.", h.Snapshot(), LatencyScale)
	want := fmt.Sprintf("x_seconds_sum %s\n", formatValue(2000*LatencyScale))
	if !strings.Contains(string(enc.Bytes()), want) {
		t.Errorf("missing %q in:\n%s", want, enc.Bytes())
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "foo 1\n",
		"TYPE after samples": "# TYPE foo counter\nfoo 1\n" +
			"# TYPE foo counter\n",
		"unknown type":      "# TYPE foo widget\nfoo 1\n",
		"bad metric name":   "# TYPE foo counter\n1foo 2\n",
		"bad value":         "# TYPE foo counter\nfoo abc\n",
		"duplicate series":  "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"bare histo sample": "# TYPE h histogram\nh 3\n",
		"non-monotone le": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 0\nh_bucket{le=\"0.5\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"decreasing cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"+Inf != count": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"missing _sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"count without buckets": "# TYPE h histogram\nh_count 4\nh_sum 1\n",
	}
	for name, in := range cases {
		if err := Lint([]byte(in)); err == nil {
			t.Errorf("%s: Lint accepted malformed exposition:\n%s", name, in)
		}
	}
}

func TestLintAcceptsWellFormed(t *testing.T) {
	in := "# HELP h A histogram.\n# TYPE h histogram\n" +
		"h_bucket{org=\"a\",le=\"0.5\"} 1\n" +
		"h_bucket{org=\"a\",le=\"+Inf\"} 2\n" +
		"h_sum{org=\"a\"} 1.5\n" +
		"h_count{org=\"a\"} 2\n" +
		"# TYPE up gauge\nup 1\n"
	if err := Lint([]byte(in)); err != nil {
		t.Fatalf("Lint rejected well-formed exposition: %v", err)
	}
}

func TestLineageIDs(t *testing.T) {
	a, b := NewLineageID(), NewLineageID()
	if a == b {
		t.Fatalf("lineage IDs collide: %s", a)
	}
	if !strings.HasPrefix(a, "lin-") || len(a) != len("lin-")+16 {
		t.Fatalf("unexpected lineage ID shape: %q", a)
	}
	if got := LineageFrom("req-abc.123"); got != "req-abc.123" {
		t.Errorf("valid request ID not adopted: %q", got)
	}
	for _, bad := range []string{"", "has space", strings.Repeat("x", 65), "emoji-\u00e9", "quote\""} {
		if got := LineageFrom(bad); !strings.HasPrefix(got, "lin-") {
			t.Errorf("LineageFrom(%q) = %q, want minted ID", bad, got)
		}
	}
}
