package pipeline

import (
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
)

// Probe receives typed events from the access pipeline as each reference
// flows through the stages. It is the observability seam of the simulator:
// with no probe attached (the default) every emission site is a single
// nil-check and the batched hot path stays allocation-free; with a probe
// attached, events are delivered synchronously, in program order, from the
// simulation goroutine.
//
// Event structs are passed by value and must not be retained across calls
// in a way that assumes later mutation — they are plain data snapshots.
// Probes must not mutate simulator state; emission sites sit directly next
// to the statistics counters they mirror, so a probe's event counts
// reconcile exactly with the end-of-run stats (see the cross-organization
// consistency test in probe_test.go at the repository root).
//
// Implementations that only care about a few event kinds should embed
// NopProbe and override the methods they need.
type Probe interface {
	// Route fires once per reference entering the pipeline (including
	// fault-retry re-executions), after the front end decided how the
	// cache stage runs.
	Route(RouteEvent)
	// Filter fires once per synonym-filter probe with the verdict.
	Filter(FilterEvent)
	// FalsePositive fires when the synonym TLB corrects a filter
	// candidate to a non-synonym (the access proceeds virtually).
	FalsePositive(FalsePositiveEvent)
	// TLB fires once per TLB-structure lookup, any level.
	TLB(TLBEvent)
	// Cache fires once per reference that reached the cache stage
	// (Physical or Virtual verdicts), after the access completed.
	Cache(CacheEvent)
	// Walk fires once per timed page walk (native 1D or nested 2D).
	Walk(WalkEvent)
	// Delayed fires once per delayed translation (post-LLC segment or
	// delayed-TLB translation, demand or writeback).
	Delayed(DelayedEvent)
	// Fault fires once per OS fault-handler invocation.
	Fault(FaultEvent)
	// Retry fires when a faulted reference is re-executed through the
	// pipeline after the OS repaired the mapping.
	Retry(RetryEvent)
}

// RouteEvent reports a front-end routing decision.
type RouteEvent struct {
	Core    int
	Kind    cache.AccessKind
	VA      addr.VA
	Verdict Verdict
}

// FilterEvent reports one synonym-filter probe.
type FilterEvent struct {
	Core int
	// Candidate is the filter's verdict: the address may be a synonym.
	Candidate bool
}

// FalsePositiveEvent reports a filter candidate the synonym TLB revealed
// to be a non-synonym.
type FalsePositiveEvent struct {
	Core int
	VA   addr.VA
}

// TLBLevel identifies which TLB structure a TLBEvent describes.
type TLBLevel uint8

// The TLB structures across all organizations.
const (
	TLBSynonym TLBLevel = iota // per-core synonym TLB (hybrid designs)
	TLBL1                      // first-level conventional TLB
	TLBL2                      // second-level conventional TLB
	TLBHuge                    // 2 MiB split TLB (conventional baseline)
	TLBDelayed                 // post-LLC delayed TLB
	TLBRange                   // RMM range TLB
	TLBXlatCache               // cached metadata block probe in L2/LLC (victima, rlt-vc)
	TLBRLT                     // per-core reverse-lookup record cache (rlt-vc)
	NumTLBLevels
)

var tlbLevelNames = [NumTLBLevels]string{
	"syn-tlb", "l1-tlb", "l2-tlb", "huge-tlb", "delayed-tlb", "range-tlb",
	"xlat-cache", "rlt",
}

func (l TLBLevel) String() string {
	if l >= NumTLBLevels {
		return "tlb(?)"
	}
	return tlbLevelNames[l]
}

// TLBEvent reports one TLB lookup.
type TLBEvent struct {
	Core  int
	Level TLBLevel
	Hit   bool
}

// CacheEvent reports the hierarchy outcome of one reference.
type CacheEvent struct {
	Core int
	Kind cache.AccessKind
	// Virtual reports ASID+VA addressing (false: physical).
	Virtual bool
	// HitLevel is the level that supplied the data on the unified scale
	// (1 L1, 2 private, 3 LLC, 0 memory).
	HitLevel int
	LLCMiss  bool
}

// WalkEvent reports one timed page walk.
type WalkEvent struct {
	Core int
	// Steps is the number of PTE (or nested-walk) fetches issued.
	Steps int
	// OK reports that the walk found a leaf.
	OK bool
}

// DelayedEvent reports one delayed translation after the LLC.
type DelayedEvent struct {
	Core int
	// Writeback marks translations performed for dirty evicted lines
	// rather than demand misses.
	Writeback bool
	// SCHit reports the segment-cache fast path (segment designs only).
	SCHit bool
	// Depth is the walk depth behind the fast path: index-tree nodes
	// visited for many-segment translation, page-walk steps for the
	// delayed TLB fill, 0 on an SC or delayed-TLB hit.
	Depth int
	// Fault reports that no translation covered the address.
	Fault bool
}

// FaultEvent reports one OS fault-handler invocation.
type FaultEvent struct {
	Write bool
	// Fixed reports that the handler repaired the mapping (the access
	// will be retried or resumed).
	Fixed bool
}

// RetryEvent reports a post-fault re-execution of a reference.
type RetryEvent struct {
	Core int
	Kind cache.AccessKind
	VA   addr.VA
}

// NopProbe implements Probe with empty methods; embed it to implement
// only the events a probe cares about.
type NopProbe struct{}

// Route implements Probe.
func (NopProbe) Route(RouteEvent) {}

// Filter implements Probe.
func (NopProbe) Filter(FilterEvent) {}

// FalsePositive implements Probe.
func (NopProbe) FalsePositive(FalsePositiveEvent) {}

// TLB implements Probe.
func (NopProbe) TLB(TLBEvent) {}

// Cache implements Probe.
func (NopProbe) Cache(CacheEvent) {}

// Walk implements Probe.
func (NopProbe) Walk(WalkEvent) {}

// Delayed implements Probe.
func (NopProbe) Delayed(DelayedEvent) {}

// Fault implements Probe.
func (NopProbe) Fault(FaultEvent) {}

// Retry implements Probe.
func (NopProbe) Retry(RetryEvent) {}

// CountingProbe tallies every event kind without retaining event data.
// All methods are allocation-free, so it can ride the batched hot path;
// the cross-organization consistency test uses it to prove probes and
// statistics counters never drift.
type CountingProbe struct {
	// Routes counts references by front-end verdict (indexed by Verdict).
	Routes [3]uint64
	// RouteTotal counts every reference entering the pipeline.
	RouteTotal uint64

	FilterProbes     uint64
	FilterCandidates uint64
	FalsePositives   uint64

	// TLBLookups and TLBHits are indexed by TLBLevel.
	TLBLookups [NumTLBLevels]uint64
	TLBHits    [NumTLBLevels]uint64

	CacheAccesses uint64
	// CacheHitLevel counts outcomes by HitLevel (0 = memory).
	CacheHitLevel [4]uint64
	LLCMisses     uint64

	Walks     uint64
	WalkSteps uint64

	DelayedDemand     uint64
	DelayedWritebacks uint64
	DelayedSCHits     uint64
	DelayedFaults     uint64

	Faults      uint64
	FaultsFixed uint64
	Retries     uint64
}

// Route implements Probe.
func (c *CountingProbe) Route(ev RouteEvent) {
	c.RouteTotal++
	c.Routes[ev.Verdict]++
}

// Filter implements Probe.
func (c *CountingProbe) Filter(ev FilterEvent) {
	c.FilterProbes++
	if ev.Candidate {
		c.FilterCandidates++
	}
}

// FalsePositive implements Probe.
func (c *CountingProbe) FalsePositive(FalsePositiveEvent) { c.FalsePositives++ }

// TLB implements Probe.
func (c *CountingProbe) TLB(ev TLBEvent) {
	c.TLBLookups[ev.Level]++
	if ev.Hit {
		c.TLBHits[ev.Level]++
	}
}

// Cache implements Probe.
func (c *CountingProbe) Cache(ev CacheEvent) {
	c.CacheAccesses++
	if ev.HitLevel >= 0 && ev.HitLevel < len(c.CacheHitLevel) {
		c.CacheHitLevel[ev.HitLevel]++
	}
	if ev.LLCMiss {
		c.LLCMisses++
	}
}

// Walk implements Probe.
func (c *CountingProbe) Walk(ev WalkEvent) {
	c.Walks++
	c.WalkSteps += uint64(ev.Steps)
}

// Delayed implements Probe.
func (c *CountingProbe) Delayed(ev DelayedEvent) {
	if ev.Writeback {
		c.DelayedWritebacks++
	} else {
		c.DelayedDemand++
	}
	if ev.SCHit {
		c.DelayedSCHits++
	}
	if ev.Fault {
		c.DelayedFaults++
	}
}

// Fault implements Probe.
func (c *CountingProbe) Fault(ev FaultEvent) {
	c.Faults++
	if ev.Fixed {
		c.FaultsFixed++
	}
}

// Retry implements Probe.
func (c *CountingProbe) Retry(RetryEvent) { c.Retries++ }

// multiProbe fans every event out to a fixed probe list in order.
type multiProbe []Probe

// Tee composes probes: every event is delivered to each non-nil probe in
// argument order. It returns nil when no probes remain (so the result can
// be installed directly with SetProbe), and the sole probe when only one
// remains (no fan-out cost).
func Tee(probes ...Probe) Probe {
	var ps multiProbe
	for _, p := range probes {
		if p != nil {
			ps = append(ps, p)
		}
	}
	switch len(ps) {
	case 0:
		return nil
	case 1:
		return ps[0]
	}
	return ps
}

// Route implements Probe.
func (m multiProbe) Route(ev RouteEvent) {
	for _, p := range m {
		p.Route(ev)
	}
}

// Filter implements Probe.
func (m multiProbe) Filter(ev FilterEvent) {
	for _, p := range m {
		p.Filter(ev)
	}
}

// FalsePositive implements Probe.
func (m multiProbe) FalsePositive(ev FalsePositiveEvent) {
	for _, p := range m {
		p.FalsePositive(ev)
	}
}

// TLB implements Probe.
func (m multiProbe) TLB(ev TLBEvent) {
	for _, p := range m {
		p.TLB(ev)
	}
}

// Cache implements Probe.
func (m multiProbe) Cache(ev CacheEvent) {
	for _, p := range m {
		p.Cache(ev)
	}
}

// Walk implements Probe.
func (m multiProbe) Walk(ev WalkEvent) {
	for _, p := range m {
		p.Walk(ev)
	}
}

// Delayed implements Probe.
func (m multiProbe) Delayed(ev DelayedEvent) {
	for _, p := range m {
		p.Delayed(ev)
	}
}

// Fault implements Probe.
func (m multiProbe) Fault(ev FaultEvent) {
	for _, p := range m {
		p.Fault(ev)
	}
}

// Retry implements Probe.
func (m multiProbe) Retry(ev RetryEvent) {
	for _, p := range m {
		p.Retry(ev)
	}
}
