// Command tablegen regenerates the paper's tables and figures from the
// simulator. Each experiment prints the same rows/series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Experiments are enumerated from the experiments registry — run
// `tablegen -list` for the current set with descriptions (the -exp flag
// usage is generated from the same registry, so it cannot drift).
// Independent design points of a sweep run concurrently on a worker pool
// (-jobs, default GOMAXPROCS); results are deterministic regardless of
// the worker count.
//
// Usage:
//
//	tablegen [-exp <name>|all] [-full] [-jobs N] [-out dir] [-list]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"hybridvc/experiments"
	"hybridvc/internal/buildinfo"
	"hybridvc/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+experiments.Usage()+")")
	full := flag.Bool("full", false, "run at full (paper-length) scale instead of quick scale")
	outDir := flag.String("out", "", "also write each table as CSV into this directory")
	jobs := flag.Int("jobs", 0, "parallel sweep workers (<= 0 means GOMAXPROCS)")
	list := flag.Bool("list", false, "list the registered experiments and exit")
	verbose := flag.Bool("v", false, "report per-cell sweep progress on stderr")
	ckpt := flag.String("checkpoint", "", "journal completed cells to this NDJSON file and resume from it")
	cellTimeout := flag.Duration("cell-timeout", 0, "abandon a sweep cell attempt after this long (0 = unbounded)")
	retries := flag.Int("retries", 0, "re-run a cell after a transient failure up to this many times")
	backoff := flag.Duration("retry-backoff", 0, "base pause between retry attempts (default 100ms)")
	version := buildinfo.Flag()
	flag.Parse()
	buildinfo.HandleFlag(version, "tablegen")

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.Name, e.Description)
		}
		return
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail(err)
		}
	}

	// Ctrl-C (or SIGTERM) cancels the sweep context: workers stop
	// promptly, and with -checkpoint the completed cells are already
	// journaled, so re-running the same command resumes where it stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	experiments.SetContext(ctx)
	experiments.SetCheckpoint(*ckpt)
	experiments.SetCellTimeout(*cellTimeout)
	experiments.SetRetry(*retries, *backoff)

	experiments.SetJobs(*jobs)
	if *verbose {
		experiments.SetProgress(func(done, total int, label string, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-40s %8v\n", done, total, label,
				elapsed.Round(time.Millisecond))
		})
	}

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else if e, ok := experiments.Lookup(*exp); ok {
		selected = []experiments.Experiment{e}
	} else {
		fmt.Fprintf(os.Stderr, "tablegen: unknown experiment %q (want one of: %s)\n",
			*exp, experiments.Usage())
		flag.Usage()
		os.Exit(2)
	}

	sweepStart := time.Now()
	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(scale)
		if err != nil {
			fail(fmt.Errorf("experiment %s: %w", e.Name, err))
		}
		for i, t := range tables {
			fmt.Println(t)
			if *outDir != "" {
				path := filepath.Join(*outDir, fmt.Sprintf("%s_%d.csv", e.Name, i))
				if err := writeCSV(path, t); err != nil {
					fail(err)
				}
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	if len(selected) > 1 {
		fmt.Printf("[sweep of %d experiments completed in %v with %d workers]\n",
			len(selected), time.Since(sweepStart).Round(time.Millisecond), experiments.Jobs())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tablegen:", err)
	os.Exit(1)
}

func writeCSV(path string, t *stats.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
