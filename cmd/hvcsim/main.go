// Command hvcsim runs a single simulation: pick an organization, load one
// or more named workloads, run a number of instructions per core, and
// print the performance report with a translation-energy breakdown.
//
// Flag combinations are validated before any work starts, with distinct
// exit codes so scripts can tell misuse classes apart: 2 for an unknown
// organization, 3 for an invalid flag value or combination, 4 for an
// unusable -metrics-addr. A SIGINT during the run stops the simulator at
// a consistent boundary, flushes the partial report (and timeline, if
// requested), and exits 130.
//
// Usage:
//
//	hvcsim -org hybrid-manyseg+sc -workloads gups,mcf -insns 500000 -cores 2
//	hvcsim -list
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"

	"hybridvc"
	"hybridvc/internal/buildinfo"
	"hybridvc/internal/sim"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

// Exit codes. Misuse classes are distinct so wrappers and CI scripts can
// react without parsing stderr.
const (
	exitFailure     = 1   // runtime failure
	exitUnknownOrg  = 2   // -org names no selectable organization
	exitBadFlags    = 3   // invalid flag value or combination
	exitBadMetrics  = 4   // -metrics-addr is not a usable listen address
	exitInterrupted = 130 // SIGINT: partial results were flushed
)

// options collects the validated flag set.
type options struct {
	org         string
	orgSet      bool // -org given explicitly (flag.Visit)
	workloads   []string
	insns       uint64
	cores       int
	llc         int
	dtlb        int
	ic          int
	interval    uint64
	timeline    string
	metricsAddr string
	compare     bool
}

// validate checks the flag set up front and returns a non-zero exit code
// with an actionable message for the first problem found. It is pure so
// the CLI contract is unit-testable without exec-ing the binary.
func (o *options) validate() (int, string) {
	if o.compare && o.orgSet {
		return exitBadFlags, "-compare sweeps every native organization; drop -org"
	}
	if !o.compare && !knownOrg(o.org) {
		var names []string
		for _, org := range hybridvc.Organizations() {
			names = append(names, string(org))
		}
		return exitUnknownOrg, fmt.Sprintf("unknown organization %q (want one of: %s)",
			o.org, strings.Join(names, ", "))
	}
	if o.cores < 1 {
		return exitBadFlags, fmt.Sprintf("-cores %d: need at least one core", o.cores)
	}
	if o.insns == 0 {
		return exitBadFlags, "-insns 0: nothing to simulate"
	}
	if o.llc < 0 {
		return exitBadFlags, fmt.Sprintf("-llc %d: size cannot be negative", o.llc)
	}
	if o.dtlb < 1 {
		return exitBadFlags, fmt.Sprintf("-dtlb %d: the delayed TLB needs at least one entry", o.dtlb)
	}
	if o.ic < 1 {
		return exitBadFlags, fmt.Sprintf("-ic %d: the index cache needs a positive size", o.ic)
	}
	if len(o.workloads) == 0 {
		return exitBadFlags, "-workloads: need at least one workload name"
	}
	for _, name := range o.workloads {
		if _, ok := workload.Specs[name]; !ok {
			return exitBadFlags, fmt.Sprintf("unknown workload %q (run -list for the catalog)", name)
		}
	}
	observing := o.timeline != "" || o.metricsAddr != ""
	if o.interval > 0 && !observing {
		return exitBadFlags, fmt.Sprintf(
			"-interval %d collects a time-series nobody reads; add -timeline or -metrics-addr", o.interval)
	}
	if o.metricsAddr != "" {
		if _, port, err := net.SplitHostPort(o.metricsAddr); err != nil {
			return exitBadMetrics, fmt.Sprintf("-metrics-addr %q: %v (want host:port, e.g. :8080)", o.metricsAddr, err)
		} else if port == "" {
			return exitBadMetrics, fmt.Sprintf("-metrics-addr %q: missing port (want host:port, e.g. :8080)", o.metricsAddr)
		}
	}
	return 0, ""
}

// splitWorkloads parses the comma-separated -workloads value, dropping
// empty entries.
func splitWorkloads(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func main() {
	org := flag.String("org", string(hybridvc.HybridManySegSC),
		"memory system organization (see -list)")
	wls := flag.String("workloads", "gups", "comma-separated workload names")
	insns := flag.Uint64("insns", 200_000, "instructions per core")
	cores := flag.Int("cores", 1, "hardware cores")
	llc := flag.Int("llc", 0, "LLC size in bytes (0 = default 2 MiB)")
	dtlb := flag.Int("dtlb", 1024, "delayed TLB entries (hybrid-dtlb / enigma)")
	ic := flag.Int("ic", 32<<10, "index cache bytes (many-segment)")
	seed := flag.Int64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list organizations and workloads, then exit")
	jsonOut := flag.Bool("json", false, "print the report as JSON")
	compare := flag.Bool("compare", false, "run every native organization on the workloads and rank by cycles")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	timeline := flag.String("timeline", "", "write the interval time-series to this file (.csv = CSV, else NDJSON)")
	interval := flag.Uint64("interval", 0, "instructions per time-series interval (0 = 10000 when -timeline/-metrics-addr is set)")
	metricsAddr := flag.String("metrics-addr", "", "serve live expvar metrics on this address (e.g. :8080) during the run")
	version := buildinfo.Flag()
	flag.Parse()
	buildinfo.HandleFlag(version, "hvcsim")

	if *list {
		fmt.Println("organizations:")
		for _, o := range hybridvc.Organizations() {
			fmt.Printf("  %s\n", o)
		}
		fmt.Println("workloads:")
		var names []string
		for name := range workload.Specs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			s := workload.Specs[n]
			fmt.Printf("  %-11s %4d regions, %5.1f MiB, %d proc(s)\n",
				n, len(s.Regions), float64(s.TotalBytes())/(1<<20), max(1, s.Procs))
		}
		return
	}

	opts := options{
		org:         *org,
		workloads:   splitWorkloads(*wls),
		insns:       *insns,
		cores:       *cores,
		llc:         *llc,
		dtlb:        *dtlb,
		ic:          *ic,
		interval:    *interval,
		timeline:    *timeline,
		metricsAddr: *metricsAddr,
		compare:     *compare,
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "org" {
			opts.orgSet = true
		}
	})
	if code, msg := opts.validate(); code != 0 {
		fmt.Fprintf(os.Stderr, "hvcsim: %s\n", msg)
		if code == exitUnknownOrg {
			flag.Usage()
		}
		os.Exit(code)
	}

	stopCPU := startCPUProfile(*cpuprofile)

	if opts.compare {
		runComparison(*wls, opts.insns, opts.cores, opts.llc, opts.dtlb, opts.ic, *seed)
		stopCPU()
		writeMemProfile(*memprofile)
		return
	}

	observing := opts.timeline != "" || opts.metricsAddr != ""
	if observing && opts.interval == 0 {
		opts.interval = 10_000
	}
	simCfg := sim.DefaultConfig()
	simCfg.Interval = opts.interval

	sys, err := hybridvc.New(hybridvc.Config{
		Org:               hybridvc.Organization(opts.org),
		Cores:             opts.cores,
		LLCBytes:          opts.llc,
		DelayedTLBEntries: opts.dtlb,
		IndexCacheBytes:   opts.ic,
		Seed:              *seed,
		Sim:               simCfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcsim:", err)
		os.Exit(exitFailure)
	}
	for _, name := range opts.workloads {
		if err := sys.LoadWorkload(name); err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim:", err)
			os.Exit(exitFailure)
		}
	}

	// Drive the simulator directly (rather than through sys.Run) so the
	// SIGINT handler can stop it at a consistent access boundary, and so
	// the Timeline exists before the run for the live metrics endpoint.
	simulator := sim.New(simCfg, sys.Mem, sys.Generators())
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "hvcsim: interrupt — flushing partial results (interrupt again to abort)")
		simulator.Stop()
		<-sigs
		os.Exit(exitInterrupted)
	}()
	if opts.metricsAddr != "" {
		serveMetrics(opts.metricsAddr, opts.org, *wls, simulator.Timeline())
	}
	report := simulator.Run(opts.insns)
	signal.Stop(sigs)

	if opts.timeline != "" {
		if err := writeTimeline(opts.timeline, simulator.Timeline()); err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim:", err)
			os.Exit(exitFailure)
		}
		fmt.Fprintf(os.Stderr, "hvcsim: wrote %d intervals to %s\n",
			simulator.Timeline().Len(), opts.timeline)
	}
	stopCPU()
	writeMemProfile(*memprofile)
	if *jsonOut {
		fmt.Println(report.JSON())
	} else {
		fmt.Println(report)
		fmt.Printf("per-core IPC: ")
		for i, ipc := range report.PerCoreIPC {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%.3f", ipc)
		}
		fmt.Println()
		fmt.Println("\ntranslation energy breakdown:")
		fmt.Print(sys.Mem.Energy().Breakdown())
	}
	if simulator.Interrupted() {
		fmt.Fprintf(os.Stderr, "hvcsim: run interrupted after %d instructions; report above is partial\n",
			report.Instructions)
		os.Exit(exitInterrupted)
	}
}

// writeTimeline writes the time-series to path: CSV when the extension
// is .csv, NDJSON otherwise.
func writeTimeline(path string, tl *stats.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		return tl.WriteCSV(f)
	}
	return tl.WriteNDJSON(f)
}

// serveMetrics starts an expvar HTTP endpoint publishing the run's
// identity and the latest interval snapshot; GET /debug/vars returns all
// published variables as one JSON object. The Timeline is mutex-guarded,
// so reads are safe while the simulation goroutine appends.
func serveMetrics(addr, org, wls string, tl *stats.Timeline) {
	expvar.NewString("hvcsim.org").Set(org)
	expvar.NewString("hvcsim.workloads").Set(wls)
	expvar.Publish("hvcsim.intervals", expvar.Func(func() any { return tl.Len() }))
	expvar.Publish("hvcsim.latest", expvar.Func(func() any {
		iv, ok := tl.Latest()
		if !ok {
			return nil
		}
		return iv
	}))
	go func() {
		// expvar self-registers on the default mux at /debug/vars.
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim: metrics:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "hvcsim: live metrics at http://%s/debug/vars\n", addr)
}

// knownOrg reports whether name is a selectable organization.
func knownOrg(name string) bool {
	for _, o := range hybridvc.Organizations() {
		if string(o) == name {
			return true
		}
	}
	return false
}

// startCPUProfile begins CPU profiling when path is non-empty; the
// returned function stops profiling and closes the file.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcsim:", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "hvcsim:", err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile dumps a heap profile (after a GC, so the profile shows
// live allocations) when path is non-empty.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcsim:", err)
		os.Exit(1)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "hvcsim:", err)
		os.Exit(1)
	}
}

// runComparison runs the workloads on every native organization and prints
// a ranking. Virtualized organizations are skipped (different substrate);
// OVC is skipped when more than one core is requested.
func runComparison(wls string, insns uint64, cores, llc, dtlb, ic int, seed int64) {
	type row struct {
		org    hybridvc.Organization
		report string
		cycles uint64
	}
	var rows []row
	for _, org := range hybridvc.Organizations() {
		if org.Virtualized() || (org == hybridvc.OVC && cores != 1) {
			continue
		}
		sys, err := hybridvc.New(hybridvc.Config{
			Org: org, Cores: cores, LLCBytes: llc,
			DelayedTLBEntries: dtlb, IndexCacheBytes: ic, Seed: seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim:", err)
			os.Exit(1)
		}
		for _, name := range strings.Split(wls, ",") {
			if err := sys.LoadWorkload(strings.TrimSpace(name)); err != nil {
				fmt.Fprintln(os.Stderr, "hvcsim:", err)
				os.Exit(1)
			}
		}
		rep, err := sys.Run(insns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim:", err)
			os.Exit(1)
		}
		rows = append(rows, row{org, rep.String(), rep.Cycles})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cycles < rows[j].cycles })
	fmt.Printf("workloads %q, %d instructions/core, %d core(s) — fastest first:\n", wls, insns, cores)
	for i, r := range rows {
		fmt.Printf("%2d. %s\n", i+1, r.report)
	}
}
