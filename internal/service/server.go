package service

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hybridvc"
	"hybridvc/experiments"
	"hybridvc/internal/buildinfo"
	"hybridvc/internal/service/store"
	"hybridvc/internal/stats"
	"hybridvc/internal/telemetry"
	"hybridvc/internal/workload"
)

// API wire types shared with the client package.

// SubmitResponse answers POST /v1/jobs.
type SubmitResponse struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"`
	// Cached means the result was served from the content-addressed
	// cache (or coalesced onto an already-finished job) — no new
	// simulation was scheduled.
	Cached bool `json:"cached"`
	// Deduped means the submission coalesced onto a live job with the
	// same key (queued or running) instead of enqueueing a duplicate.
	Deduped bool `json:"deduped"`
	// Lineage is this submission's lineage ID (also in the X-Lineage-Id
	// response header); OriginLineage is the lineage of the request that
	// produced — or is producing — the result this submission will see.
	// They differ exactly when the submission was deduplicated.
	Lineage       string `json:"lineage"`
	OriginLineage string `json:"origin_lineage,omitempty"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

// OrgInfo describes one organization (GET /v1/orgs).
type OrgInfo struct {
	Name        string `json:"name"`
	Virtualized bool   `json:"virtualized"`
}

// WorkloadInfo describes one catalog workload (GET /v1/orgs).
type WorkloadInfo struct {
	Name   string `json:"name"`
	Bytes  uint64 `json:"bytes"`
	Procs  int    `json:"procs"`
	Digest string `json:"digest"`
}

// CatalogResponse answers GET /v1/orgs: the selectable organizations and
// the workload catalog with content digests (the digests are the
// workload component of the cache key, so clients can predict keys).
type CatalogResponse struct {
	Organizations []OrgInfo      `json:"organizations"`
	Workloads     []WorkloadInfo `json:"workloads"`
}

// ExperimentInfo describes one registered experiment (GET /v1/experiments).
type ExperimentInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// HealthResponse answers GET /healthz — pure liveness: it is 200 as
// long as the process can answer HTTP, even while draining.
type HealthResponse struct {
	Status   string `json:"status"` // "ok" or "draining"
	Version  string `json:"version"`
	Jobs     int    `json:"jobs"`
	Draining bool   `json:"draining"`
}

// ReadyResponse answers GET /readyz — readiness: 503 while the server
// is draining or the overload breaker is open, 200 otherwise, so load
// balancers stop routing fresh work to a daemon that would shed it
// while the liveness probe keeps the process alive.
type ReadyResponse struct {
	Status   string `json:"status"` // "ready", "draining" or "overloaded"
	Draining bool   `json:"draining"`
	// Breaker is the overload breaker state: "closed", "half-open" or
	// "open".
	Breaker string `json:"breaker"`
}

// Handler returns the daemon's HTTP API, wrapped in structured request
// logging (one debug-level record per request with method, path, status,
// duration and the response's lineage ID when one was attached).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /v1/orgs", s.handleOrgs)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("GET /v1/peer/results/{key}", s.handlePeerGet)
	mux.HandleFunc("PUT /v1/peer/results/{key}", s.handlePeerPut)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.logRequests(mux)
}

// statusWriter records the response code for request logging while
// passing Flush through to the streaming endpoints.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) logRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, r)
		s.logger.Debug("http request",
			"method", r.Method, "path", r.URL.Path, "status", sw.code,
			"dur_s", time.Since(start).Seconds(),
			"lineage", sw.Header().Get(lineageHeader),
			"remote", r.RemoteAddr)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// clientKey extracts the per-client identity for rate limiting: the
// remote IP without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// lineageHeader carries the submission's lineage ID on every job-scoped
// response; X-Request-Id is the inbound header a client may use to
// supply its own.
const (
	lineageHeader   = "X-Lineage-Id"
	requestIDHeader = "X-Request-Id"
)

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	lineage := telemetry.LineageFrom(r.Header.Get(requestIDHeader))
	w.Header().Set(lineageHeader, lineage)
	if !s.limiter.allow(clientKey(r)) {
		s.met.rateLimited.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.limiter.retryAfter()))
		writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	res, err := s.SubmitWithLineage(spec, lineage)
	switch {
	case err == nil:
	case err == ErrDraining:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err == ErrOverloaded:
		w.Header().Set("Retry-After", strconv.Itoa(s.breaker.retryAfter()))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job := res.Job
	state := job.State()
	resp := SubmitResponse{
		ID: job.ID, Key: job.Key, State: state,
		Cached:        !res.Fresh && state == StateDone,
		Deduped:       !res.Fresh && state != StateDone,
		Lineage:       res.Lineage,
		OriginLineage: res.Origin,
	}
	code := http.StatusAccepted
	if !res.Fresh {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		st.Report = nil // keep the listing light; fetch one job for the body
		st.Tables = nil
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	w.Header().Set(lineageHeader, job.Lineage)
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	found, canceled := s.Cancel(id)
	if !found {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if !canceled {
		writeError(w, http.StatusConflict, "job %s already %s", id, mustState(s, id))
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": "canceling"})
}

func mustState(s *Server, id string) string {
	if j, ok := s.Job(id); ok {
		return j.State()
	}
	return "gone"
}

// timelinePoll is how often the streaming endpoint re-checks a live
// timeline for new intervals between job-completion wakeups.
const timelinePoll = 25 * time.Millisecond

// handleTimeline streams the job's interval time-series: every recorded
// interval immediately, then (unless ?follow=0) new intervals as the
// simulation appends them, terminating when the job finishes. The frame
// format is content-negotiated: NDJSON by default, Server-Sent Events
// when the client accepts text/event-stream — SSE frames carry the
// interval index as the `id:` cursor, and a reconnecting client's
// Last-Event-ID header resumes the stream right after the last interval
// it saw. Both formats share one cursor loop.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if job.Spec.Kind == KindSweep {
		writeError(w, http.StatusNotFound, "sweep jobs have no timeline")
		return
	}
	follow := r.URL.Query().Get("follow") != "0"
	sse := acceptsEventStream(r.Header.Get("Accept"))

	cursor := 0
	w.Header().Set(lineageHeader, job.Lineage)
	if sse {
		if lei := r.Header.Get("Last-Event-ID"); lei != "" {
			if n, err := strconv.Atoi(lei); err == nil && n >= 0 {
				cursor = n + 1
			}
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	write := func(iv *stats.Interval) error {
		if !sse {
			return enc.Encode(iv)
		}
		b, err := json.Marshal(iv)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", iv.Index, b)
		return err
	}

	for {
		if tl := job.timeline(); tl != nil {
			batch := tl.Since(cursor)
			for i := range batch {
				if err := write(&batch[i]); err != nil {
					return // client went away
				}
			}
			cursor += len(batch)
			if len(batch) > 0 && flusher != nil {
				flusher.Flush()
			}
		}
		if terminal(job.State()) {
			// Final drain already happened above on this iteration.
			if tl := job.timeline(); tl == nil || tl.Len() <= cursor {
				if sse {
					// Tell browser EventSource clients the stream is
					// complete so they stop auto-reconnecting.
					fmt.Fprintf(w, "event: done\ndata: {\"state\":%q}\n\n", job.State())
					if flusher != nil {
						flusher.Flush()
					}
				}
				return
			}
			continue
		}
		if !follow {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			// Loop once more to drain the tail, then exit via terminal.
		case <-time.After(timelinePoll):
		}
	}
}

// acceptsEventStream reports whether an Accept header asks for SSE.
func acceptsEventStream(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		if mt == "text/event-stream" {
			return true
		}
	}
	return false
}

func (s *Server) handleOrgs(w http.ResponseWriter, r *http.Request) {
	var resp CatalogResponse
	for _, o := range hybridvc.Organizations() {
		resp.Organizations = append(resp.Organizations, OrgInfo{
			Name: string(o), Virtualized: o.Virtualized(),
		})
	}
	for _, name := range workload.Names() {
		spec := workload.Specs[name]
		resp.Workloads = append(resp.Workloads, WorkloadInfo{
			Name:   name,
			Bytes:  spec.TotalBytes(),
			Procs:  max(1, spec.Procs),
			Digest: spec.Digest(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{Name: e.Name, Description: e.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	m := s.MetricsSnapshot()
	status := "ok"
	if m.Draining {
		status = "draining"
	}
	// Liveness is always 200: a draining daemon is still alive and still
	// serving cached results. Readiness (/readyz) carries the 503.
	writeJSON(w, http.StatusOK, HealthResponse{
		Status: status, Version: buildinfo.Version(),
		Jobs: m.Jobs, Draining: m.Draining,
	})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	m := s.MetricsSnapshot()
	resp := ReadyResponse{Status: "ready", Draining: m.Draining, Breaker: m.BreakerState}
	code := http.StatusOK
	switch {
	case m.Draining:
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	case m.BreakerState == BreakerOpen:
		resp.Status = "overloaded"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.breaker.retryAfter()))
	}
	writeJSON(w, code, resp)
}

// handleMetrics serves the daemon counters, content-negotiated on the
// Accept header. A client accepting text/plain (Prometheus scrapers) gets
// the exposition-format rendering of the counters, gauges and stage
// latency histograms; everyone else gets the original expvar-style JSON
// object — the process-wide expvar variables extended with an "hvcd" key
// holding the scheduler/cache counters — so existing JSON consumers are
// untouched.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "text/plain") {
		s.writePromMetrics(w)
		return
	}
	vars := map[string]json.RawMessage{}
	expvar.Do(func(kv expvar.KeyValue) {
		vars[kv.Key] = json.RawMessage(kv.Value.String())
	})
	own, err := json.Marshal(s.MetricsSnapshot())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "marshal metrics: %v", err)
		return
	}
	vars["hvcd"] = own
	writeJSON(w, http.StatusOK, vars)
}

// writePromMetrics renders the Prometheus text exposition. All stage
// histograms and the completed counter come from ONE collector snapshot:
// hvcd_completed_total is the end-to-end histogram's sample count, so on
// every scrape — including mid-run — the histograms' +Inf buckets and
// the counter reconcile exactly.
func (s *Server) writePromMetrics(w http.ResponseWriter) {
	m := s.MetricsSnapshot()
	st := s.tel.Snapshot()

	enc := telemetry.NewEncoder()
	enc.Counter("hvcd_submitted_total", "Accepted submissions, including deduplicated and cache-served ones.", m.Submitted)
	enc.Counter("hvcd_deduped_total", "Submissions coalesced onto a live or finished job with the same key.", m.Deduped)
	enc.Counter("hvcd_cache_hits_total", "Result-cache hits.", m.CacheHits)
	enc.Counter("hvcd_cache_misses_total", "Result-cache misses.", m.CacheMisses)
	enc.Counter("hvcd_simulated_total", "Simulations actually executed.", m.Simulated)
	enc.Counter("hvcd_sweeps_total", "Experiment sweeps actually executed.", m.Sweeps)
	enc.Counter("hvcd_completed_total", "Jobs completed successfully (equals the hvcd_e2e_seconds sample count).", st.EndToEnd.Total)
	enc.Counter("hvcd_failed_total", "Jobs that finished in the failed state.", m.Failed)
	enc.Counter("hvcd_canceled_total", "Jobs that finished in the canceled state.", m.Canceled)
	enc.Counter("hvcd_rate_limited_total", "Submissions rejected by the per-client rate limiter.", m.RateLimited)
	enc.Counter("hvcd_queue_full_total", "Submissions rejected by queue backpressure.", m.QueueFull)
	enc.Counter("hvcd_deadline_exceeded_total", "Jobs failed by the per-job deadline.", m.DeadlineExceeded)
	enc.Counter("hvcd_breaker_trips_total", "Times the overload breaker opened.", m.BreakerTrips)
	enc.Counter("hvcd_shed_total", "Fresh submissions shed while the overload breaker was open.", m.Shed)

	// Store families are emitted even when the disk tier is disabled (all
	// zeros) so dashboards and the metrics lint see a stable family set.
	var sm store.Metrics
	if m.Store != nil {
		sm = *m.Store
	}
	enc.Counter("hvcd_store_hits_total", "Durable result-store hits (restart-warm cache serves).", sm.Hits)
	enc.Counter("hvcd_store_misses_total", "Durable result-store misses.", sm.Misses)
	enc.Counter("hvcd_store_writes_total", "Records durably written to the result store.", sm.Writes)
	enc.Counter("hvcd_store_write_errors_total", "Failed durable result-store writes.", sm.WriteErrors)
	enc.Counter("hvcd_store_evictions_total", "Result-store records evicted by TTL or the size budget.", sm.Evictions)
	enc.Counter("hvcd_store_corruptions_total", "Corrupt result-store records detected and quarantined.", sm.Corruptions)

	// Cluster families follow the same discipline: emitted (all zeros)
	// even on a single-node daemon, so the family set is stable.
	var cm ClusterMetrics
	if m.Cluster != nil {
		cm = *m.Cluster
	}
	enc.Counter("hvcd_peer_fetches_total", "Peer result fetches attempted against key owners.", cm.Fetches)
	enc.Counter("hvcd_peer_hits_total", "Peer result fetches answered with a record.", cm.Hits)
	enc.Counter("hvcd_peer_misses_total", "Peer result fetches the owner cleanly missed.", cm.Misses)
	enc.Counter("hvcd_peer_errors_total", "Peer result fetches that failed (transport, auth, corrupt body).", cm.Errors)
	enc.Counter("hvcd_peer_skipped_total", "Peer fetches not attempted because the owner was marked unhealthy.", cm.Skipped)
	enc.Counter("hvcd_peer_replicated_total", "Fresh results replicated onto their owner node.", cm.Replicated)
	enc.Counter("hvcd_peer_replicate_errors_total", "Failed replications to an owner node.", cm.ReplicateErrors)
	enc.Counter("hvcd_peer_served_total", "Peer GETs this node answered with a record.", cm.Served)
	enc.Counter("hvcd_peer_accepted_total", "Replication PUTs this node installed.", cm.Accepted)

	enc.Gauge("hvcd_queue_depth", "Jobs waiting in the submission queue.", float64(m.QueueDepth))
	enc.Gauge("hvcd_jobs", "Jobs resident in the registry, any state.", float64(m.Jobs))
	enc.Gauge("hvcd_workers", "Size of the worker pool.", float64(m.Workers))
	enc.Gauge("hvcd_workers_busy", "Workers currently executing a job.", float64(m.WorkersBusy))
	enc.Gauge("hvcd_cache_entries", "Entries resident in the result cache.", float64(m.CacheLen))
	draining := 0.0
	if m.Draining {
		draining = 1
	}
	enc.Gauge("hvcd_draining", "1 while the server is draining, 0 otherwise.", draining)
	enc.Gauge("hvcd_breaker_state", "Overload breaker state: 0 closed, 1 half-open, 2 open.", BreakerStateValue(m.BreakerState))
	enc.Gauge("hvcd_store_records", "Records resident in the durable result store.", float64(sm.Records))
	enc.Gauge("hvcd_store_bytes", "Bytes resident in the durable result store.", float64(sm.Bytes))
	enc.Gauge("hvcd_cluster_nodes", "Cluster membership size (0 when clustering is disabled).", float64(cm.Nodes))
	enc.Gauge("hvcd_cluster_peers_healthy", "Peers currently believed healthy, self excluded.", float64(cm.PeersHealthy))
	enc.Gauge("hvcd_uptime_seconds", "Seconds since the server started.", float64(m.UptimeSec))
	enc.Gauge("hvcd_build_info", "Build metadata; the value is always 1.", 1,
		telemetry.Label{Name: "version", Value: buildinfo.Version()})
	enc.Gauge("hvcd_node_info", "Node identity; the value is always 1.", 1,
		telemetry.Label{Name: "node_id", Value: m.NodeID})

	enc.Histogram("hvcd_queue_wait_seconds", "Time jobs spent queued before a worker picked them up.",
		st.QueueWait, telemetry.LatencyScale)
	enc.Histogram("hvcd_execute_seconds", "Time jobs spent executing on a worker.",
		st.Execute, telemetry.LatencyScale)
	enc.Histogram("hvcd_e2e_seconds", "End-to-end job latency, submission to completion.",
		st.EndToEnd, telemetry.LatencyScale)
	enc.Histogram("hvcd_cache_serve_seconds", "Latency of submissions served from the result cache or a finished job.",
		st.CacheServe, telemetry.LatencyScale)
	for _, org := range st.Orgs() {
		enc.Histogram("hvcd_simulate_seconds", "Execution latency of simulation jobs by cache organization.",
			st.Simulate[org], telemetry.LatencyScale,
			telemetry.Label{Name: "org", Value: org})
	}

	w.Header().Set("Content-Type", telemetry.ContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(enc.Bytes())
}
