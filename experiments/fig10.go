package experiments

import (
	"fmt"

	"hybridvc"
	"hybridvc/internal/stats"
)

// Figure10Workloads are the workloads run under virtualization.
var Figure10Workloads = []string{"gups", "mcf", "omnetpp", "xalancbmk"}

// Figure10Result holds one workload's virtualized comparison: the 2D-walk
// baseline (with a nested-TLB translation cache) versus the virtualized
// hybrid design.
type Figure10Result struct {
	Workload      string
	BaselineCycle uint64
	HybridCycle   uint64
	Speedup       float64
}

// Figure10 reproduces the virtualized performance comparison of Section
// VI: the hybrid design hides the two-dimensional translation cost behind
// the LLC (the paper reports +31.7% on memory-intensive workloads).
func Figure10(scale Scale) ([]Figure10Result, *stats.Table, error) {
	n := scale.pick(40_000, 1_000_000)
	orgs := []hybridvc.Organization{hybridvc.Virt2D, hybridvc.VirtHybrid}
	var cells []Cell
	for _, wl := range Figure10Workloads {
		for _, org := range orgs {
			cells = append(cells, Cell{
				Label: fmt.Sprintf("fig10/%s/%s", wl, org),
				Config: hybridvc.Config{
					Org:        org,
					PhysBytes:  32 << 30,
					GuestBytes: 8 << 30,
				},
				Workloads:    []string{wl},
				Instructions: n,
			})
		}
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, nil, err
	}

	var results []Figure10Result
	for wi, wl := range Figure10Workloads {
		base := res[wi*len(orgs)].Report.Cycles
		hyb := res[wi*len(orgs)+1].Report.Cycles
		results = append(results, Figure10Result{
			Workload:      wl,
			BaselineCycle: base,
			HybridCycle:   hyb,
			Speedup:       float64(base) / float64(hyb),
		})
	}
	t := stats.NewTable("Virtualized performance: 2D-walk baseline vs hybrid (Section VI)",
		"workload", "2D baseline cycles", "virt-hybrid cycles", "speedup")
	for _, r := range results {
		t.AddRow(r.Workload,
			fmt.Sprintf("%d", r.BaselineCycle),
			fmt.Sprintf("%d", r.HybridCycle),
			fmt.Sprintf("%.3f", r.Speedup))
	}
	return results, t, nil
}
