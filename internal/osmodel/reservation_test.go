package osmodel

import (
	"math/rand"
	"testing"

	"hybridvc/internal/addr"
)

const chunkBytes = ReserveChunkPages * addr.PageSize

func TestMmapReservedDefersBacking(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	va, err := p.MmapReserved(8*chunkBytes, addr.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	// The physical extent is reserved immediately...
	if k.Alloc.AllocatedFrames() < 8*ReserveChunkPages {
		t.Error("reservation did not allocate the extent")
	}
	// ...but nothing is mapped or in the segment table yet.
	if _, ok := p.PT.Lookup(va); ok {
		t.Error("page mapped before touch")
	}
	if k.SegMgr.Table.Used() != 0 {
		t.Error("segments created before touch")
	}
	if u := p.ReservedUtilization(); u != 0 {
		t.Errorf("utilization = %f before any touch", u)
	}
}

func TestReservationPromotionOnFault(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	va, _ := p.MmapReserved(8*chunkBytes, addr.PermRW)
	if !p.HandleFault(va+0x123, false) {
		t.Fatal("fault on reserved chunk rejected")
	}
	// The whole chunk is mapped; the next chunk is not.
	if _, ok := p.PT.Lookup(va + chunkBytes - addr.PageSize); !ok {
		t.Error("tail of promoted chunk unmapped")
	}
	if _, ok := p.PT.Lookup(va + chunkBytes); ok {
		t.Error("next chunk mapped")
	}
	if k.SegMgr.Table.Used() != 1 {
		t.Fatalf("segments = %d, want 1", k.SegMgr.Table.Used())
	}
	// Translation consistency: PT and segment agree.
	seg, ok := k.SegMgr.LookupSoft(p.ASID, va+0x123)
	if !ok {
		t.Fatal("segment lookup failed")
	}
	paPT, _ := p.PT.Translate(va + 0x123)
	if seg.Translate(va+0x123) != paPT {
		t.Error("segment and page table disagree")
	}
	// A spurious second fault on the same chunk is rejected.
	if p.HandleFault(va+0x200, false) {
		t.Error("second fault on promoted chunk accepted")
	}
}

func TestReservationAdjacentChunksMerge(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	va, _ := p.MmapReserved(8*chunkBytes, addr.PermRW)
	// Touch chunks 0, 2, then 1: the three must merge into one segment.
	p.HandleFault(va, false)
	p.HandleFault(va+2*chunkBytes, false)
	if k.SegMgr.Table.Used() != 2 {
		t.Fatalf("segments = %d, want 2 before merge", k.SegMgr.Table.Used())
	}
	p.HandleFault(va+1*chunkBytes, false)
	if k.SegMgr.Table.Used() != 1 {
		t.Fatalf("segments = %d, want 1 after merge", k.SegMgr.Table.Used())
	}
	seg, _ := k.SegMgr.LookupSoft(p.ASID, va)
	if seg.Length != 3*chunkBytes {
		t.Errorf("merged length = %#x, want %#x", seg.Length, uint64(3*chunkBytes))
	}
	// Every promoted address resolves through the single segment.
	for off := uint64(0); off < 3*chunkBytes; off += addr.PageSize {
		a := va + addr.VA(off)
		s, ok := k.SegMgr.LookupSoft(p.ASID, a)
		if !ok || s != seg {
			t.Fatalf("address %#x not covered by merged segment", uint64(a))
		}
		paPT, _ := p.PT.Translate(a)
		if s.Translate(a) != paPT {
			t.Fatalf("translation mismatch at %#x", uint64(a))
		}
	}
	if u := p.ReservedUtilization(); u != 3.0/8.0 {
		t.Errorf("utilization = %f, want 0.375", u)
	}
}

func TestReservationFullTouchConvergesToOneSegment(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	const chunks = 16
	va, _ := p.MmapReserved(chunks*chunkBytes, addr.PermRW)
	// Touch all chunks in random order.
	order := rand.New(rand.NewSource(5)).Perm(chunks)
	for _, ci := range order {
		p.HandleFault(va+addr.VA(uint64(ci)*chunkBytes), false)
	}
	if k.SegMgr.Table.Used() != 1 {
		t.Fatalf("segments = %d, want 1 after full touch", k.SegMgr.Table.Used())
	}
	if u := p.ReservedUtilization(); u != 1.0 {
		t.Errorf("utilization = %f, want 1", u)
	}
}

func TestReservationRoundsToChunks(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	va, err := p.MmapReserved(chunkBytes+1, addr.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	r := p.FindRegion(va)
	if r.Length != 2*chunkBytes {
		t.Errorf("length = %#x, want two chunks", r.Length)
	}
	if uint64(va)%chunkBytes != 0 {
		t.Error("reservation not chunk aligned")
	}
	if _, err := p.MmapReserved(0, addr.PermRW); err == nil {
		t.Error("zero-length reservation accepted")
	}
}

func TestReservationExitReleasesEverything(t *testing.T) {
	k := newKernel(t)
	free0 := k.Alloc.FreeFrames()
	p, _ := k.NewProcess()
	va, _ := p.MmapReserved(8*chunkBytes, addr.PermRW)
	p.HandleFault(va, false)
	p.HandleFault(va+3*chunkBytes, false)
	k.Exit(p)
	if k.Alloc.FreeFrames() != free0 {
		t.Errorf("frames leaked: %d -> %d", free0, k.Alloc.FreeFrames())
	}
	if k.SegMgr.Table.Used() != 0 {
		t.Errorf("segments leaked: %d", k.SegMgr.Table.Used())
	}
}

func TestReservationVsEagerSegmentCounts(t *testing.T) {
	// The Section IV-B trade-off: for a sparsely used region, eager
	// allocation wastes memory mappings while reservations track use; for
	// dense use both converge to one segment but the reservation
	// transiently used more table entries.
	k := newKernel(t)
	p, _ := k.NewProcess()
	va, _ := p.MmapReserved(32*chunkBytes, addr.PermRW)
	// Sparse: touch every fourth chunk.
	for ci := 0; ci < 32; ci += 4 {
		p.HandleFault(va+addr.VA(uint64(ci)*chunkBytes), false)
	}
	if got := k.SegMgr.Table.Used(); got != 8 {
		t.Errorf("sparse promoted segments = %d, want 8", got)
	}
	if u := p.ReservedUtilization(); u != 0.25 {
		t.Errorf("utilization = %f, want 0.25", u)
	}
}
