module hybridvc

go 1.22
