// Package trace provides a compact binary format for instruction/memory
// reference traces, mirroring the paper's Pin-based trace methodology
// (Section III-C): workloads can be captured once from a generator and
// replayed deterministically into any memory system configuration.
//
// Format: the header magic "HVCT\x01", then one record per instruction.
// Each record is a flags byte followed, for memory operations, by the
// zigzag-varint delta of the virtual address from the previous memory
// operation (deltas compress well for real access streams).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hybridvc/internal/addr"
	"hybridvc/internal/workload"
)

var magic = [5]byte{'H', 'V', 'C', 'T', 1}

// Record flag bits.
const (
	flagMem        = 1 << 0
	flagStore      = 1 << 1
	flagDep        = 1 << 2
	flagShared     = 1 << 3
	flagMispredict = 1 << 4

	// flagKnown masks every defined bit; anything outside it in a record
	// can only come from corruption, since writers never set other bits.
	flagKnown = flagMem | flagStore | flagDep | flagShared | flagMispredict
)

// Writer streams instructions into a trace.
type Writer struct {
	w      *bufio.Writer
	lastVA uint64
	n      uint64
	header bool
}

// NewWriter creates a trace writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one instruction.
func (t *Writer) Write(in workload.Insn) error {
	if !t.header {
		if _, err := t.w.Write(magic[:]); err != nil {
			return err
		}
		t.header = true
	}
	var flags byte
	if in.IsMem {
		flags |= flagMem
	}
	if in.IsStore {
		flags |= flagStore
	}
	if in.DependsOnPrev {
		flags |= flagDep
	}
	if in.Shared {
		flags |= flagShared
	}
	if in.Mispredict {
		flags |= flagMispredict
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	if in.IsMem {
		delta := int64(uint64(in.VA) - t.lastVA)
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], delta)
		if _, err := t.w.Write(buf[:n]); err != nil {
			return err
		}
		t.lastVA = uint64(in.VA)
	}
	t.n++
	return nil
}

// Count returns the instructions written.
func (t *Writer) Count() uint64 { return t.n }

// Flush drains buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader replays a trace.
type Reader struct {
	r      countingReader
	lastVA uint64
	n      uint64
	header bool
}

// countingReader tracks the byte offset consumed from the stream so
// corruption reports can point at the failing record.
type countingReader struct {
	r   *bufio.Reader
	off uint64
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.off += uint64(n)
	return n, err
}

// NewReader creates a trace reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: countingReader{r: bufio.NewReader(r)}}
}

// ErrBadMagic reports a stream that is not a trace.
var ErrBadMagic = errors.New("trace: bad magic")

// CorruptError reports a malformed trace stream: a corrupt record, a
// mid-record truncation, or a header that is not a trace at all. Offset
// is the byte position where the bad record (or header) starts, so the
// damage can be located in the file. Err, when non-nil, is the
// underlying cause — ErrBadMagic or io.ErrUnexpectedEOF — reachable
// through errors.Is. A clean io.EOF is returned ONLY at a record
// boundary; every torn or inconsistent record surfaces as *CorruptError.
type CorruptError struct {
	Offset uint64 // byte offset of the record where corruption was detected
	Reason string // human-readable diagnosis
	Err    error  // underlying cause, if any
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("trace: corrupt record at byte %d: %s: %v", e.Offset, e.Reason, e.Err)
	}
	return fmt.Sprintf("trace: corrupt record at byte %d: %s", e.Offset, e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Next returns the next instruction, io.EOF at the end of the trace, or
// a *CorruptError describing why the stream cannot be a valid trace.
func (t *Reader) Next() (workload.Insn, error) {
	if !t.header {
		var got [5]byte
		if _, err := io.ReadFull(&t.r, got[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return workload.Insn{}, &CorruptError{Reason: "truncated header", Err: err}
			}
			return workload.Insn{}, err // empty stream: clean EOF
		}
		if got != magic {
			return workload.Insn{}, &CorruptError{Reason: "not a trace", Err: ErrBadMagic}
		}
		t.header = true
	}
	start := t.r.off
	flags, err := t.r.ReadByte()
	if err != nil {
		return workload.Insn{}, err // record boundary: clean EOF
	}
	if flags&^flagKnown != 0 {
		return workload.Insn{}, &CorruptError{Offset: start,
			Reason: fmt.Sprintf("undefined flag bits %#02x", flags&^flagKnown)}
	}
	in := workload.Insn{
		IsMem:         flags&flagMem != 0,
		IsStore:       flags&flagStore != 0,
		DependsOnPrev: flags&flagDep != 0,
		Shared:        flags&flagShared != 0,
		Mispredict:    flags&flagMispredict != 0,
	}
	if in.IsMem {
		delta, err := binary.ReadVarint(&t.r)
		if err != nil {
			reason := "malformed address delta" // e.g. varint overflow
			if err == io.EOF {
				err, reason = io.ErrUnexpectedEOF, "truncated record"
			}
			return workload.Insn{}, &CorruptError{Offset: start, Reason: reason, Err: err}
		}
		va := t.lastVA + uint64(delta)
		if va >= 1<<addr.VABits {
			return workload.Insn{}, &CorruptError{Offset: start,
				Reason: fmt.Sprintf("non-canonical virtual address %#x", va)}
		}
		t.lastVA = va
		in.VA = addr.VA(va)
	}
	t.n++
	return in, nil
}

// Count returns the instructions read so far.
func (t *Reader) Count() uint64 { return t.n }

// Capture writes n instructions from the generator into w.
func Capture(w io.Writer, g *workload.Generator, n uint64) error {
	tw := NewWriter(w)
	for i := uint64(0); i < n; i++ {
		if err := tw.Write(g.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}
