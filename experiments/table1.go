package experiments

import (
	"fmt"

	"hybridvc/internal/osmodel"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

// TableIRow is one row of Table I: the fraction of mapped pages that are
// r/w shared, and the fraction of memory accesses that touch them.
type TableIRow struct {
	Workload     string
	SharedArea   float64
	SharedAccess float64
}

// tableIWorkloads: the five synonym workloads plus the two no-sharing
// aggregate rows the paper reports.
var tableIWorkloads = []struct {
	row  string
	spec string
}{
	{"ferret", "ferret"},
	{"postgres", "postgres"},
	{"SpecJBB", "specjbb"},
	{"firefox", "firefox"},
	{"apache", "apache"},
	{"SPECCPU", "mcf"},             // representative: no r/w sharing
	{"Remaining Parsec", "stream"}, // representative: no r/w sharing
}

// TableI reproduces Table I by instantiating each workload's processes
// and sampling its access stream; one runner cell per workload.
func TableI(scale Scale) ([]TableIRow, *stats.Table, error) {
	n := scale.pick(100_000, 2_000_000)
	var cells []Cell
	for _, w := range tableIWorkloads {
		w := w
		cells = append(cells, Cell{
			Label: "table1/" + w.row,
			Fn: func() (any, error) {
				k := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
				gens, err := workload.NewGroup(workload.Specs[w.spec], k, 1)
				if err != nil {
					return nil, fmt.Errorf("table1 %s: %w", w.row, err)
				}
				var area, access stats.Mean
				for _, g := range gens {
					for i := uint64(0); i < n; i++ {
						g.Next()
					}
					area.Observe(g.Proc.SharedAreaRatio())
					access.Observe(g.Proc.SharedAccessRatio())
				}
				return TableIRow{
					Workload:     w.row,
					SharedArea:   area.Value(),
					SharedAccess: access.Value(),
				}, nil
			},
		})
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, nil, err
	}

	var rows []TableIRow
	for _, r := range res {
		rows = append(rows, r.Value.(TableIRow))
	}
	t := stats.NewTable("Table I: ratio of r/w shared memory area and accesses to the r/w shared regions",
		"workload", "shared area", "shared access")
	for _, r := range rows {
		t.AddRow(r.Workload, stats.Percent(r.SharedArea), stats.Percent(r.SharedAccess))
	}
	return rows, t, nil
}
