package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hybridvc"
	"hybridvc/internal/sim"
	"hybridvc/internal/workload"
)

// Cell is one independent job of an experiment sweep: typically one
// (organization × workload) design point. Most cells describe a complete
// system run — a hybridvc.Config, the workloads to load, and an
// instruction budget — and yield a sim.Report; experiments that need the
// trace model or custom plumbing instead supply Fn, which replaces the
// system path entirely. Cells must be self-contained: they run
// concurrently on a worker pool and may not share mutable state.
type Cell struct {
	// Label identifies the cell in errors and progress output
	// (e.g. "fig9/gups/many-segment+sc").
	Label string

	// Config assembles the system under test (system-path cells). The
	// zero Config gets the facade defaults, including Seed=1; set
	// Config.Seed for a per-cell seed.
	Config hybridvc.Config
	// Workloads are loaded into the system in order (multi-entry for
	// multiprogrammed mixes).
	Workloads []string
	// Specs are custom workload specs loaded after Workloads (used when a
	// named spec needs modification, e.g. forcing huge pages).
	Specs []workload.Spec
	// Instructions is the per-core instruction budget for Run.
	Instructions uint64
	// Extract, when set, post-processes the finished system inside the
	// worker (while the system is still alive) and becomes the cell's
	// Value. Without it the Value is nil and the Report carries the data.
	Extract func(sys *hybridvc.System, rep sim.Report) (any, error)

	// Fn, when set, replaces the system path: the cell runs Fn and stores
	// its result as the Value (Report stays zero).
	Fn func() (any, error)

	// DecodeValue, when set, reconstructs a checkpointed Value from its
	// JSON encoding so checkpoint resume (SetCheckpoint) can restore
	// Extract/Fn results without re-running the cell. A cell whose
	// checkpoint record carries a Value but has no decoder is re-run.
	DecodeValue func(data []byte) (any, error)
}

// CellResult is one cell's outcome, slotted at the cell's input index.
type CellResult struct {
	// Report is the simulation report for system-path cells.
	Report sim.Report
	// Value is the Extract or Fn result.
	Value any
}

// defaultJobs is the worker-pool width used by every experiment; it
// defaults to GOMAXPROCS so full sweeps scale with the host. Results are
// index-slotted, so tables are identical regardless of the value.
var defaultJobs atomic.Int64

func init() { defaultJobs.Store(int64(runtime.GOMAXPROCS(0))) }

// SetJobs sets the worker count used by subsequent experiment runs.
// Values below 1 reset to GOMAXPROCS. It returns the previous setting.
func SetJobs(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(defaultJobs.Swap(int64(n)))
}

// Jobs returns the current worker count.
func Jobs() int { return int(defaultJobs.Load()) }

// progressFn, when set, observes cell completions (done so far, total,
// finished cell's label and elapsed time). Used by tablegen for live
// sweep progress; nil by default.
var progressMu sync.Mutex
var progressFn func(done, total int, label string, elapsed time.Duration)

// SetProgress installs a completion observer for subsequent runs (nil
// disables). The callback may fire from multiple worker goroutines but
// never concurrently.
func SetProgress(fn func(done, total int, label string, elapsed time.Duration)) {
	progressMu.Lock()
	progressFn = fn
	progressMu.Unlock()
}

// Resilience knobs (SetContext, SetRetry, SetCellTimeout, SetCheckpoint),
// guarded by one mutex in the style of the progress observer. runCells
// snapshots them once per sweep, so changing a knob mid-sweep affects
// only subsequent runs.
var knobMu sync.Mutex
var runCtx context.Context
var retryMax int
var retryBackoff = 100 * time.Millisecond
var cellTimeout time.Duration
var checkpointPath string

// SetContext installs a cancellation context for subsequent sweeps: when
// it is cancelled, pending cells are not started, in-flight cells are
// abandoned promptly, and runCells returns the partial results together
// with the context's error. nil restores the default (never cancelled).
// It returns the previous context.
func SetContext(ctx context.Context) context.Context {
	knobMu.Lock()
	defer knobMu.Unlock()
	prev := runCtx
	runCtx = ctx
	return prev
}

// SetRetry configures transient-failure handling for subsequent sweeps: a
// cell whose failure is transient — a recovered panic, a cell timeout, or
// any error wrapping ErrTransient — is re-run up to retries times, with a
// linearly growing backoff pause between attempts (attempt n waits
// n×backoff). retries <= 0 disables retrying; backoff <= 0 keeps the
// previous backoff. It returns the previous settings.
func SetRetry(retries int, backoff time.Duration) (int, time.Duration) {
	knobMu.Lock()
	defer knobMu.Unlock()
	prevN, prevB := retryMax, retryBackoff
	retryMax = retries
	if backoff > 0 {
		retryBackoff = backoff
	}
	return prevN, prevB
}

// SetCellTimeout bounds each cell attempt for subsequent sweeps: an
// attempt that produces no result within d fails with a transient
// timeout error (and is therefore retried when retries are configured).
// d <= 0 disables the bound. It returns the previous setting.
func SetCellTimeout(d time.Duration) time.Duration {
	knobMu.Lock()
	defer knobMu.Unlock()
	prev := cellTimeout
	cellTimeout = d
	return prev
}

// SetCheckpoint directs subsequent sweeps to journal every completed cell
// to the NDJSON file at path, and to resume from it: cells whose records
// are already present (matched by index and label) are restored instead
// of re-run, so an interrupted sweep continued with the same
// configuration reaches the same final results. An empty path disables
// checkpointing. It returns the previous setting.
func SetCheckpoint(path string) string {
	knobMu.Lock()
	defer knobMu.Unlock()
	prev := checkpointPath
	checkpointPath = path
	return prev
}

// ErrTransient marks failures worth retrying. Wrap cell errors with
// Transient (or %w this sentinel) to opt into the retry path; recovered
// panics and cell timeouts are transient automatically.
var ErrTransient = errors.New("transient failure")

// transientErr tags an error as transient without changing its message.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }
func (e *transientErr) Is(target error) bool {
	return target == ErrTransient
}

// Transient wraps err so IsTransient reports true (nil stays nil).
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err}
}

// IsTransient reports whether err is worth retrying.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// snapshotKnobs captures the per-sweep resilience configuration.
func snapshotKnobs() (ctx context.Context, timeout time.Duration, retries int, backoff time.Duration, ckpt string) {
	knobMu.Lock()
	defer knobMu.Unlock()
	ctx = runCtx
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx, cellTimeout, retryMax, retryBackoff, checkpointPath
}

// RunOptions carries the per-sweep resilience configuration for RunCells
// callers that cannot use the package-level knobs (long-running services
// executing many independent sweeps concurrently: the globals are
// process-wide, so two concurrent jobs would trample each other's
// context). The zero value means: never cancelled, unbounded cells, no
// retries, no checkpoint.
type RunOptions struct {
	// Ctx cancels the sweep (nil = background).
	Ctx context.Context
	// CellTimeout bounds each cell attempt (<= 0 = unbounded).
	CellTimeout time.Duration
	// Retries re-runs transiently failed cells up to this many times,
	// with linear Backoff between attempts (Backoff <= 0 = 100ms).
	Retries int
	Backoff time.Duration
	// Checkpoint journals completed cells to this NDJSON path and
	// resumes from it ("" = disabled), exactly like SetCheckpoint.
	Checkpoint string
}

// RunCellsWith executes the cells on a pool of Jobs() workers with
// explicit per-call options and returns their results in input order —
// the reentrant form of the sweep runner used by the service daemon,
// where every job needs its own cancellation context and checkpoint
// journal. Failure semantics match the package-level path: panics become
// transient errors, failed slots keep a nil Value, and all failures are
// joined into the returned error.
func RunCellsWith(cells []Cell, opts RunOptions) ([]CellResult, error) {
	if opts.Ctx == nil {
		opts.Ctx = context.Background()
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	return runCellsOpts(cells, opts)
}

// RunCells executes the cells under the package-level resilience knobs
// (SetContext, SetRetry, SetCellTimeout, SetCheckpoint) — the same path
// every built-in experiment sweeps through. Experiments registered
// dynamically with Add should run their cells through this so tablegen
// flags and the service daemon's per-sweep knob window apply to them
// too.
func RunCells(cells []Cell) ([]CellResult, error) { return runCells(cells) }

// runCells is the package-level entry: it snapshots the Set* knobs into
// options once per sweep, so changing a knob mid-sweep affects only
// subsequent runs.
func runCells(cells []Cell) ([]CellResult, error) {
	ctx, timeout, retries, backoff, ckpt := snapshotKnobs()
	return runCellsOpts(cells, RunOptions{
		Ctx: ctx, CellTimeout: timeout, Retries: retries,
		Backoff: backoff, Checkpoint: ckpt,
	})
}

// runCellsOpts executes the cells on a pool of Jobs() workers and returns
// their results in input order. A cell that fails — via returned error or
// recovered panic — leaves its slot's Value nil; all failures are joined
// into the returned error. Because results are index-slotted and cells
// are isolated, the output is identical for any worker count, and a
// checkpointed sweep resumed after an interruption reaches the same
// final results as an uninterrupted one.
func runCellsOpts(cells []Cell, opts RunOptions) ([]CellResult, error) {
	results := make([]CellResult, len(cells))
	cellErrs := make([]error, len(cells))
	if len(cells) == 0 {
		return results, nil
	}
	ctx, timeout, retries, backoff, ckptPath :=
		opts.Ctx, opts.CellTimeout, opts.Retries, opts.Backoff, opts.Checkpoint

	restored := make([]bool, len(cells))
	var ckpt *checkpoint
	if ckptPath != "" {
		var err error
		ckpt, err = openCheckpoint(ckptPath, cells, results, restored)
		if err != nil {
			return results, err
		}
		defer ckpt.close()
	}
	pending := 0
	for i := range cells {
		if !restored[i] {
			pending++
		}
	}

	jobs := Jobs()
	if jobs > pending {
		jobs = pending
	}

	done := atomic.Int64{}
	done.Store(int64(len(cells) - pending))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					// Cancelled: leave the slot unrun; the sweep-level
					// context error covers every abandoned cell.
					continue
				}
				start := time.Now()
				results[i], cellErrs[i] = runCellResilient(ctx, cells[i], timeout, retries, backoff)
				if cellErrs[i] == nil && ckpt != nil {
					cellErrs[i] = ckpt.append(i, cells[i], results[i])
				}
				n := int(done.Add(1))
				progressMu.Lock()
				if progressFn != nil {
					progressFn(n, len(cells), cells[i].Label, time.Since(start))
				}
				progressMu.Unlock()
			}
		}()
	}
dispatch:
	for i := range cells {
		if restored[i] {
			continue
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		cellErrs = append(cellErrs, fmt.Errorf("sweep interrupted: %w", context.Cause(ctx)))
	}
	return results, errors.Join(cellErrs...)
}

// runCellResilient runs one cell, retrying transient failures with
// linear backoff up to the configured attempt budget.
func runCellResilient(ctx context.Context, c Cell, timeout time.Duration, retries int, backoff time.Duration) (CellResult, error) {
	for attempt := 0; ; attempt++ {
		res, err := runCellOnce(ctx, c, timeout)
		if err == nil || attempt >= retries || !IsTransient(err) || ctx.Err() != nil {
			return res, err
		}
		select {
		case <-ctx.Done():
			return res, err
		case <-time.After(time.Duration(attempt+1) * backoff):
		}
	}
}

// runCellOnce runs one cell attempt, bounding it by the cell timeout and
// the sweep context. A timed-out or abandoned attempt's goroutine cannot
// be killed — it is left to finish in the background and its result is
// discarded; cells are self-contained, so it cannot corrupt the sweep.
func runCellOnce(ctx context.Context, c Cell, timeout time.Duration) (CellResult, error) {
	if timeout <= 0 && ctx.Done() == nil {
		return runOneCell(c)
	}
	type outcome struct {
		res CellResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, e := runOneCell(c)
		ch <- outcome{r, e}
	}()
	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case o := <-ch:
		return o.res, o.err
	case <-expired:
		return CellResult{}, Transient(fmt.Errorf("cell %q: no result within %v", c.Label, timeout))
	case <-ctx.Done():
		return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, context.Cause(ctx))
	}
}

// runOneCell executes a single cell, converting any panic into a
// transient error so one bad design point cannot abort a whole sweep and
// sporadic (e.g. injected) panics are retried when retries are enabled.
func runOneCell(c Cell) (res CellResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = Transient(fmt.Errorf("cell %q: panic: %v\n%s", c.Label, r, debug.Stack()))
		}
	}()
	if c.Fn != nil {
		v, ferr := c.Fn()
		if ferr != nil {
			return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, ferr)
		}
		return CellResult{Value: v}, nil
	}
	sys, err := hybridvc.New(c.Config)
	if err != nil {
		return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, err)
	}
	for _, wl := range c.Workloads {
		if err := sys.LoadWorkload(wl); err != nil {
			return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, err)
		}
	}
	for _, spec := range c.Specs {
		if err := sys.LoadSpec(spec); err != nil {
			return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, err)
		}
	}
	rep, err := sys.Run(c.Instructions)
	if err != nil {
		return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, err)
	}
	res = CellResult{Report: rep}
	if c.Extract != nil {
		v, xerr := c.Extract(sys, rep)
		if xerr != nil {
			return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, xerr)
		}
		res.Value = v
	}
	return res, nil
}
