package experiments

import (
	"fmt"

	"hybridvc"
	"hybridvc/internal/stats"
)

// Figure11Workloads mixes cache-friendly and memory-intensive workloads
// for the translation-energy comparison.
var Figure11Workloads = []string{"omnetpp", "astar", "xalancbmk", "stream", "mcf", "soplex"}

// Figure11Result reports one workload's translation energy under the
// baseline and the hybrid design, and the relative saving.
type Figure11Result struct {
	Workload   string
	BaselinePJ float64
	HybridPJ   float64
	Saving     float64
}

// Figure11 reproduces the translation-energy claim (~60% reduction): the
// baseline pays a TLB lookup on every reference while the hybrid design
// pays a Bloom-filter probe and touches large structures only after LLC
// misses.
func Figure11(scale Scale) ([]Figure11Result, *stats.Table, error) {
	n := scale.pick(60_000, 1_000_000)
	orgs := []hybridvc.Organization{hybridvc.Baseline, hybridvc.HybridManySegSC}
	var cells []Cell
	for _, wl := range Figure11Workloads {
		for _, org := range orgs {
			cells = append(cells, Cell{
				Label:        fmt.Sprintf("fig11/%s/%s", wl, org),
				Config:       hybridvc.Config{Org: org},
				Workloads:    []string{wl},
				Instructions: n,
			})
		}
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, nil, err
	}

	var results []Figure11Result
	for wi, wl := range Figure11Workloads {
		base := res[wi*len(orgs)].Report.TranslationEnergyPJ
		hyb := res[wi*len(orgs)+1].Report.TranslationEnergyPJ
		results = append(results, Figure11Result{
			Workload:   wl,
			BaselinePJ: base,
			HybridPJ:   hyb,
			Saving:     1 - hyb/base,
		})
	}
	t := stats.NewTable("Translation energy: baseline vs hybrid (Section VI)",
		"workload", "baseline (pJ)", "hybrid (pJ)", "saving")
	var mean stats.Mean
	for _, r := range results {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.0f", r.BaselinePJ),
			fmt.Sprintf("%.0f", r.HybridPJ),
			stats.Percent(r.Saving))
		mean.Observe(r.Saving)
	}
	t.AddRow("mean", "", "", stats.Percent(mean.Value()))
	return results, t, nil
}
