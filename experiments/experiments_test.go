// Tests in this file validate the *shape* of every reproduced experiment
// against the paper's qualitative claims at Quick scale: who wins, roughly
// by how much, and where the crossovers fall.
package experiments

import (
	"strings"
	"testing"
)

// skipIfRace skips the heavy simulation shape tests under the race
// detector: they validate numerics on sizeable instruction windows (10x+
// slower with -race), while the runner's concurrency is covered by the
// dedicated tests in runner_test.go.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("heavy shape test skipped under -race")
	}
}

func TestTableIShape(t *testing.T) {
	skipIfRace(t)
	rows, table, err := TableI(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]TableIRow{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	// postgres dominates sharing: ~66% area, ~16% access.
	pg := byName["postgres"]
	if pg.SharedArea < 0.4 || pg.SharedArea > 0.85 {
		t.Errorf("postgres shared area = %.2f, want ~0.66", pg.SharedArea)
	}
	if pg.SharedAccess < 0.1 || pg.SharedAccess > 0.25 {
		t.Errorf("postgres shared access = %.2f, want ~0.16", pg.SharedAccess)
	}
	// Every other workload shares little; SPEC/PARSEC share nothing.
	for _, name := range []string{"ferret", "SpecJBB", "firefox", "apache"} {
		if r := byName[name]; r.SharedArea > 0.1 || r.SharedAccess > 0.02 {
			t.Errorf("%s sharing too high: %+v", name, r)
		}
	}
	for _, name := range []string{"SPECCPU", "Remaining Parsec"} {
		if r := byName[name]; r.SharedArea != 0 || r.SharedAccess != 0 {
			t.Errorf("%s shows sharing: %+v", name, r)
		}
	}
	if !strings.Contains(table.String(), "postgres") {
		t.Error("table missing rows")
	}
}

func TestTableIIShape(t *testing.T) {
	skipIfRace(t)
	rows, _, err := TableII(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TableIIRow{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	for _, r := range rows {
		// False positives stay below 0.5% of accesses (paper: <0.5%).
		if r.FalsePositiveRate > 0.005 {
			t.Errorf("%s: false positive rate %.4f > 0.5%%", r.Workload, r.FalsePositiveRate)
		}
	}
	// Non-postgres workloads bypass ~99% of TLB accesses.
	for _, name := range []string{"ferret", "specjbb", "firefox", "apache"} {
		if r := byName[name]; r.AccessReduction < 0.97 {
			t.Errorf("%s: access reduction %.3f, want >= 0.97", name, r.AccessReduction)
		}
	}
	// postgres still bypasses a large majority (paper: 83.7%).
	if r := byName["postgres"]; r.AccessReduction < 0.7 || r.AccessReduction > 0.95 {
		t.Errorf("postgres access reduction %.3f, want ~0.84", r.AccessReduction)
	}
	// Miss reduction is positive for the low-sharing workloads (the LLC
	// filters translation requests); postgres may go negative (-6.1% in
	// the paper) because of its small synonym TLB.
	for _, name := range []string{"firefox", "apache", "specjbb"} {
		if r := byName[name]; r.MissReduction <= 0 {
			t.Errorf("%s: miss reduction %.3f, want > 0", name, r.MissReduction)
		}
	}
	if r := byName["postgres"]; r.MissReduction > byName["apache"].MissReduction {
		t.Error("postgres should benefit least from the proposed TLBs")
	}
}

func TestTableIIIShape(t *testing.T) {
	skipIfRace(t)
	rows, _, err := TableIII(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TableIIIRow{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	// Segment counts: the big three exceed 32 ranges; stream/gups do not.
	for _, name := range []string{"tigr", "xalancbmk", "memcached"} {
		if byName[name].Segments <= 32 {
			t.Errorf("%s: %d segments, want > 32", name, byName[name].Segments)
		}
	}
	for _, name := range []string{"stream", "gups"} {
		if byName[name].Segments > 32 {
			t.Errorf("%s: %d segments, want <= 32", name, byName[name].Segments)
		}
	}
	// RMM MPKI: considerable for the many-segment workloads, ~0 for few.
	for _, name := range []string{"tigr", "xalancbmk", "memcached"} {
		if byName[name].RMMMPKI < 0.5 {
			t.Errorf("%s: RMM MPKI %.3f, want considerable", name, byName[name].RMMMPKI)
		}
	}
	if byName["gups"].RMMMPKI > 0.1 {
		t.Errorf("gups RMM MPKI %.3f, want ~0", byName["gups"].RMMMPKI)
	}
	// Utilization: gemsFDTD and memcached leave much allocated memory
	// untouched; stream uses nearly everything.
	if byName["gemsFDTD"].Utilization > 0.5 || byName["memcached"].Utilization > 0.6 {
		t.Error("low-utilization workloads report high usage")
	}
	if byName["stream"].Utilization < 0.9 {
		t.Errorf("stream utilization %.2f, want ~1", byName["stream"].Utilization)
	}
}

func TestFigure4Shape(t *testing.T) {
	skipIfRace(t)
	series, _, err := Figure4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Figure4Series{}
	for _, s := range series {
		byName[s.Workload] = s
	}
	last := len(Figure4Sizes) - 1
	// gups/milc/mcf: even 32K..64K entries leave most misses (paper:
	// "the increase in TLB size does not reduce the number of misses").
	for _, name := range []string{"gups", "milc", "mcf"} {
		s := byName[name]
		if s.Normalized[last] < 0.5 {
			t.Errorf("%s: 64K-entry delayed TLB removed %.0f%% of misses; should not scale",
				name, 100*(1-s.Normalized[last]))
		}
		if s.MPKI[0] < 1 {
			t.Errorf("%s: baseline MPKI %.2f too low to matter", name, s.MPKI[0])
		}
	}
	// Locality workloads benefit substantially from bigger delayed TLBs.
	for _, name := range []string{"omnetpp", "xalancbmk"} {
		s := byName[name]
		if s.Normalized[last] > 0.6 {
			t.Errorf("%s: normalized MPKI %.2f at 64K, want large reduction",
				name, s.Normalized[last])
		}
	}
	// MPKI must be non-increasing in TLB size (sanity).
	for _, s := range series {
		for i := 1; i < len(s.MPKI); i++ {
			if s.MPKI[i] > s.MPKI[i-1]*1.05 {
				t.Errorf("%s: MPKI grew with TLB size: %v", s.Workload, s.MPKI)
			}
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	skipIfRace(t)
	a, _, err := Figure7a(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range a {
		// Hit rate must grow (weakly) with size and reach ~90%+ by 8 KiB
		// for real workloads (paper: "does not suffer misses even with a
		// modestly sized index cache of 8KB").
		idx8k := -1
		for i, size := range s.Sizes {
			if size == 8<<10 {
				idx8k = i
			}
		}
		if s.HitRates[idx8k] < 0.85 {
			t.Errorf("%s: 8KB index cache hit rate %.2f, want >= 0.85", s.Label, s.HitRates[idx8k])
		}
		if s.HitRates[len(s.Sizes)-1] < s.HitRates[0] {
			t.Errorf("%s: hit rate decreased with size", s.Label)
		}
	}

	b, _, err := Figure7b(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 3 {
		t.Fatalf("series = %d", len(b))
	}
	last := len(Figure7Sizes) - 1
	idx32k := last - 1 // 32KB precedes 64KB
	// Worst case: 32KB nearly eliminates misses for 1024 segments and
	// keeps the 2048-segment rate high (the paper reports 75.5%; our
	// bulk-built tree packs nodes fully, so it is smaller than the
	// paper's incrementally maintained tree and fits even better).
	if b[0].HitRates[idx32k] < 0.9 {
		t.Errorf("1024-segment worst case: 32KB hit rate %.2f, want >= 0.9", b[0].HitRates[idx32k])
	}
	if b[1].HitRates[idx32k] < 0.6 {
		t.Errorf("2048-segment worst case: 32KB hit rate %.2f, want >= 0.6", b[1].HitRates[idx32k])
	}
	// At 2KB the worst case must be visibly degraded for 2048 segments.
	idx2k := -1
	for i, size := range Figure7Sizes {
		if size == 2<<10 {
			idx2k = i
		}
	}
	if b[1].HitRates[idx2k] > 0.85 {
		t.Errorf("2048-segment worst case: 2KB hit rate %.2f implausibly high", b[1].HitRates[idx2k])
	}
	// The 2048-segment curve is everywhere at or below the 1024 curve.
	for i := range Figure7Sizes {
		if b[1].HitRates[i] > b[0].HitRates[i]+0.02 {
			t.Errorf("2048-segment hit rate above 1024 at size %d", Figure7Sizes[i])
		}
	}
	// Tiny caches are useless against random traffic.
	if b[1].HitRates[0] > 0.3 {
		t.Errorf("64B worst-case hit rate %.2f implausibly high", b[1].HitRates[0])
	}
	// The incrementally built tree is larger (partial fill factor), so
	// its curve sits at or below the packed tree's everywhere and stays
	// below 100% at 32 KiB — approaching the paper's 75.5% figure.
	inc := b[2]
	for i := range Figure7Sizes {
		if inc.HitRates[i] > b[1].HitRates[i]+0.02 {
			t.Errorf("incremental tree beats packed tree at %dB", Figure7Sizes[i])
		}
	}
	if inc.HitRates[idx32k] >= 0.999 {
		t.Errorf("incremental tree fully cached at 32KB (%.3f); fill factor not modelled",
			inc.HitRates[idx32k])
	}
}

func TestFigure9Shape(t *testing.T) {
	skipIfRace(t)
	results, _, err := Figure9(Quick)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := Figure9Configs()
	idx := map[string]int{}
	for i, c := range cfgs {
		idx[c.Label] = i
	}
	for _, r := range results {
		get := func(label string) float64 { return r.Speedup[idx[label]] }
		// Ideal is the upper bound.
		for _, c := range cfgs {
			if get(c.Label) > get("ideal")*1.02 {
				t.Errorf("%s: %s (%.3f) beats ideal (%.3f)", r.Workload, c.Label,
					get(c.Label), get("ideal"))
			}
		}
		// Many-segment + SC beats the baseline (the paper's headline).
		if get("many-segment+sc") < 1.0 {
			t.Errorf("%s: many-segment+sc slower than baseline (%.3f)",
				r.Workload, get("many-segment+sc"))
		}
		// The SC never hurts.
		if get("many-segment+sc") < get("many-segment")*0.98 {
			t.Errorf("%s: SC slowed many-segment down: %.3f vs %.3f",
				r.Workload, get("many-segment+sc"), get("many-segment"))
		}
	}
	// gups (page working set >> any delayed TLB): many-segment clearly
	// beats the 1K delayed TLB.
	for _, r := range results {
		if r.Workload != "gups" {
			continue
		}
		if r.Speedup[idx["many-segment+sc"]] <= r.Speedup[idx["delayed-tlb-1k"]] {
			t.Errorf("gups: many-segment (%.3f) not above delayed-tlb-1k (%.3f)",
				r.Speedup[idx["many-segment+sc"]], r.Speedup[idx["delayed-tlb-1k"]])
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	skipIfRace(t)
	results, _, err := Figure10(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		// The virtualized hybrid must beat the 2D-walk baseline on every
		// memory-intensive workload (paper: +31.7% on average).
		if r.Speedup <= 1.0 {
			t.Errorf("%s: virt speedup %.3f, want > 1", r.Workload, r.Speedup)
		}
	}
	// At least one workload shows a large (>15%) gain.
	max := 0.0
	for _, r := range results {
		if r.Speedup > max {
			max = r.Speedup
		}
	}
	if max < 1.15 {
		t.Errorf("largest virtualized speedup only %.3f", max)
	}
}

func TestFigure11Shape(t *testing.T) {
	skipIfRace(t)
	results, _, err := Figure11(Quick)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range results {
		if r.Saving <= 0 {
			t.Errorf("%s: hybrid increased translation energy (%.0f vs %.0f pJ)",
				r.Workload, r.HybridPJ, r.BaselinePJ)
		}
		sum += r.Saving
	}
	// Mean saving should approach the paper's ~60%.
	mean := sum / float64(len(results))
	if mean < 0.45 {
		t.Errorf("mean translation energy saving %.0f%%, want >= 45%%", 100*mean)
	}
}

func TestAblationsRun(t *testing.T) {
	skipIfRace(t)
	a1, err := AblationFilterDesign(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if a1.NumRows() != 4 {
		t.Errorf("A1 rows = %d", a1.NumRows())
	}
	a2, err := AblationSegmentCache(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if a2.NumRows() != 2 {
		t.Errorf("A2 rows = %d", a2.NumRows())
	}
	a3, err := AblationHugePages(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if a3.NumRows() != 2 {
		t.Errorf("A3 rows = %d", a3.NumRows())
	}
	lat, err := SegmentWalkLatency(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lat.String(), "walk") {
		t.Error("latency table malformed")
	}
}

func TestMulticoreShape(t *testing.T) {
	skipIfRace(t)
	results, _, err := Multicore(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(MulticoreMixes) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Speedup <= 1.0 {
			t.Errorf("%s: quad-core hybrid speedup %.3f, want > 1", r.Mix, r.Speedup)
		}
	}
}

func TestScalePick(t *testing.T) {
	if Quick.pick(1, 2) != 1 || Full.pick(1, 2) != 2 {
		t.Error("Scale.pick wrong")
	}
}

func TestAblationSerialParallel(t *testing.T) {
	skipIfRace(t)
	a4, err := AblationSerialParallel(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if a4.NumRows() != 4 {
		t.Errorf("A4 rows = %d", a4.NumRows())
	}
	out := a4.String()
	if !strings.Contains(out, "serial (paper)") || !strings.Contains(out, "parallel") {
		t.Errorf("A4 table malformed:\n%s", out)
	}
}
