package experiments

import (
	"fmt"

	"hybridvc"
	"hybridvc/internal/core"
	"hybridvc/internal/sim"
	"hybridvc/internal/stats"
)

// parityWorkloads are the fixed workload prefixes the parity fingerprint
// runs: one miss-heavy single-process stream and one multi-process mix
// with shared (synonym) memory, so both the delayed-translation path and
// the synonym path contribute to every organization's row.
var parityWorkloads = []string{"gups", "postgres"}

// Parity runs every selectable organization on the fixed workload
// prefixes and renders a per-cell stat fingerprint: report fields plus
// the hierarchy and fault counters. The table is intentionally exhaustive
// and byte-stable — the golden test in parity_test.go diffs it against a
// checked-in rendering to prove that refactors of the access path leave
// every organization's simulated behavior bit-identical.
func Parity(s Scale) (*stats.Table, error) {
	insns := s.pick(30_000, 200_000)
	simCfg := sim.DefaultConfig()
	// A timeslice shorter than the window makes the multi-process cells
	// exercise context switching (and the filter-reload accounting).
	simCfg.Timeslice = 10_000

	var cells []Cell
	for _, org := range hybridvc.Organizations() {
		for _, wl := range parityWorkloads {
			cells = append(cells, Cell{
				Label:        fmt.Sprintf("parity/%s/%s", wl, org),
				Config:       hybridvc.Config{Org: org, Cores: 1, Sim: simCfg},
				Workloads:    []string{wl},
				Instructions: insns,
				Extract:      parityRow(string(org), wl),
			})
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Parity: per-organization stat fingerprint",
		"org", "workload", "cycles", "insns", "ipc", "xlat_pj", "dyn_pj",
		"llc_hits", "llc_misses", "mem_wbs", "back_invals", "faults", "walk_steps")
	for _, r := range results {
		t.AddRow(r.Value.([]string)...)
	}
	return t, nil
}

// parityRow extracts one cell's fingerprint while the system is alive.
func parityRow(org, wl string) func(*hybridvc.System, sim.Report) (any, error) {
	return func(sys *hybridvc.System, rep sim.Report) (any, error) {
		h := sys.Mem.Hierarchy()
		bh, ok := sys.Mem.(core.BaseHolder)
		if !ok {
			return nil, fmt.Errorf("organization %s does not expose its Base", org)
		}
		b := bh.BaseState()
		return []string{
			org, wl,
			fmt.Sprintf("%d", rep.Cycles),
			fmt.Sprintf("%d", rep.Instructions),
			fmt.Sprintf("%.6f", rep.IPC),
			fmt.Sprintf("%.3f", rep.TranslationEnergyPJ),
			fmt.Sprintf("%.3f", rep.DynamicEnergyPJ),
			fmt.Sprintf("%d", h.LLC().Stats.Hits.Value()),
			fmt.Sprintf("%d", h.LLC().Stats.Misses.Value()),
			fmt.Sprintf("%d", h.MemWritebacks.Value()),
			fmt.Sprintf("%d", h.BackInvals.Value()),
			fmt.Sprintf("%d", b.Faults.Value()),
			fmt.Sprintf("%d", b.WalkSteps.Value()),
		}, nil
	}
}
