package segment

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/stats"
)

// IndexCache caches index tree nodes by physical address. It is a regular
// physically addressed cache of 64-byte blocks (Section IV-C), 8-way by
// default, shared by all cores of the processor.
type IndexCache struct {
	c *cache.Cache
}

// NewIndexCache creates an index cache of the given size; associativity is
// 8 ways, clamped down when the cache is smaller than 8 lines (the paper's
// sensitivity study goes down to a single 64 B block).
func NewIndexCache(sizeBytes int) *IndexCache {
	ways := 8
	if lines := sizeBytes / addr.LineSize; lines < ways {
		ways = lines
	}
	return &IndexCache{c: cache.New(cache.Config{
		Name: "index-cache", SizeBytes: sizeBytes, Ways: ways, HitLatency: 3,
	})}
}

// Access looks up the node line at pa, filling on miss, and reports a hit.
func (ic *IndexCache) Access(pa addr.PA) bool {
	n := addr.PhysName(pa)
	l, _, _ := ic.c.AccessFill(n, cache.Exclusive, addr.PermRO)
	return l != nil
}

// Stats returns the hit/miss statistics.
func (ic *IndexCache) Stats() stats.HitMiss { return ic.c.Stats }

// Flush empties the cache (after a tree rebuild the node addresses move).
func (ic *IndexCache) Flush() {
	ic.c.FlushMatching(func(addr.Name) bool { return true })
}

// SizeBytes returns the configured capacity.
func (ic *IndexCache) SizeBytes() int { return ic.c.Config().SizeBytes }

// SegCacheEntries is the paper's segment cache size (128 entries).
const SegCacheEntries = 128

// scEntry caches a direct translation for one 2 MiB granule of a segment.
type scEntry struct {
	valid   bool
	asid    addr.ASID
	granule uint64 // va >> HugePageBits
	seg     *Segment
	lru     uint64
}

// SegCache is the 128-entry, 2 MiB-granularity segment cache that hides the
// index walk latency for hot regions. In virtualized systems its entries
// hold direct gVA->MA translations, skipping the gPA step (Section V-B).
type SegCache struct {
	sets  [][]scEntry
	mask  uint64
	tick  uint64
	Stats stats.HitMiss
}

// NewSegCache creates a segment cache with the given entry count, 8-way.
func NewSegCache(entries int) *SegCache {
	const ways = 8
	if entries <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("segment: invalid SC entries %d", entries))
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("segment: SC set count %d not a power of two", nsets))
	}
	sets := make([][]scEntry, nsets)
	backing := make([]scEntry, entries)
	for i := range sets {
		sets[i], backing = backing[:ways], backing[ways:]
	}
	return &SegCache{sets: sets, mask: uint64(nsets - 1)}
}

// Lookup returns the covering segment if a valid granule entry exists and
// the segment actually contains va (a granule can straddle a segment
// boundary, in which case the entry cannot serve the far side).
func (sc *SegCache) Lookup(asid addr.ASID, va addr.VA) (*Segment, bool) {
	sc.tick++
	g := va.HugePage()
	set := sc.sets[g&sc.mask]
	for i := range set {
		e := &set[i]
		if e.valid && e.asid == asid && e.granule == g {
			if e.seg.Contains(asid, va) {
				e.lru = sc.tick
				sc.Stats.Hit()
				return e.seg, true
			}
		}
	}
	sc.Stats.Miss()
	return nil, false
}

// Fill installs a granule entry for the segment covering va. A granule
// that straddles a segment boundary may occupy several ways — one per
// segment — so adjacent small segments do not thrash a shared granule.
func (sc *SegCache) Fill(asid addr.ASID, va addr.VA, seg *Segment) {
	sc.tick++
	g := va.HugePage()
	set := sc.sets[g&sc.mask]
	victim, minLru := 0, ^uint64(0)
	for i := range set {
		e := &set[i]
		// The scan stops at the first way that is either free or an exact
		// (asid, granule, segment) match — whichever comes first in way
		// order, matching the historical fill behavior exactly.
		if !e.valid || (e.asid == asid && e.granule == g && e.seg == seg) {
			victim = i
			break
		}
		// Value-tracking strict minimum so the LRU race compiles to
		// conditional moves instead of a data-dependent branch per way.
		if lv := e.lru; lv < minLru {
			victim, minLru = i, lv
		}
	}
	set[victim] = scEntry{valid: true, asid: asid, granule: g, seg: seg, lru: sc.tick}
}

// InvalidateSegment drops every entry pointing at seg (segment free/split).
func (sc *SegCache) InvalidateSegment(seg *Segment) {
	for si := range sc.sets {
		for wi := range sc.sets[si] {
			if sc.sets[si][wi].valid && sc.sets[si][wi].seg == seg {
				sc.sets[si][wi] = scEntry{}
			}
		}
	}
}

// FlushAll empties the segment cache.
func (sc *SegCache) FlushAll() {
	for si := range sc.sets {
		for wi := range sc.sets[si] {
			sc.sets[si][wi] = scEntry{}
		}
	}
}

// TranslatorConfig sets the delayed translation latencies (Section IV-C:
// 3-cycle index cache, 7-cycle segment table, ~20 cycles end to end for a
// depth-four walk).
type TranslatorConfig struct {
	// SCLatency is the segment cache lookup latency.
	SCLatency uint64
	// ICHitLatency is charged per index cache probe.
	ICHitLatency uint64
	// TableLatency is the hardware segment table access latency.
	TableLatency uint64
	// MemLatency supplies the cost of fetching an index tree node from
	// memory on an index cache miss.
	MemLatency func(pa addr.PA) uint64
}

// DefaultTranslatorConfig returns the paper's latencies with a flat
// memory-node fetch cost.
func DefaultTranslatorConfig() TranslatorConfig {
	return TranslatorConfig{
		SCLatency:    2,
		ICHitLatency: 3,
		TableLatency: 7,
		MemLatency:   func(addr.PA) uint64 { return 165 },
	}
}

// TranslateResult reports one delayed translation.
type TranslateResult struct {
	PA      addr.PA
	Perm    addr.Perm
	Seg     *Segment
	Latency uint64
	// SCHit reports the fast path.
	SCHit bool
	// Fault reports that no segment covers the address (OS interrupt).
	Fault bool
	// ICProbes and ICMisses count index cache activity for this walk.
	ICProbes, ICMisses int
}

// Translator is the hardware delayed many-segment translation engine:
// SC -> index tree walk through the index cache -> segment table.
type Translator struct {
	cfg TranslatorConfig
	// SC may be nil to model the design without a segment cache
	// (the Figure 9 ablation).
	SC  *SegCache
	IC  *IndexCache
	Mgr *Manager

	// TableAccesses counts hardware segment table reads.
	TableAccesses stats.Counter
	// Walks counts full index tree walks (SC misses).
	Walks stats.Counter
	// Faults counts translations not covered by any segment.
	Faults stats.Counter
	// WalkDepth records nodes visited per walk.
	WalkDepth *stats.Histogram

	// pathScratch backs TranslateReuse walks so the batched hot path does
	// not allocate a node-path slice per index tree walk.
	pathScratch []addr.PA
}

// NewTranslator builds a translation engine. sc may be nil.
func NewTranslator(cfg TranslatorConfig, sc *SegCache, ic *IndexCache, mgr *Manager) *Translator {
	if cfg.MemLatency == nil {
		cfg.MemLatency = DefaultTranslatorConfig().MemLatency
	}
	return &Translator{
		cfg: cfg, SC: sc, IC: ic, Mgr: mgr,
		WalkDepth: stats.NewHistogram(1, 2, 3, 4, 5, 6),
	}
}

// Translate resolves (asid, va) to a physical address after an LLC miss.
func (tr *Translator) Translate(asid addr.ASID, va addr.VA) TranslateResult {
	return tr.translate(asid, va, false)
}

// TranslateReuse is Translate with the index walk path on a
// translator-owned scratch buffer — the allocation-free variant the
// batched hot path uses. A translator serves one memory system, so the
// buffer is not contended.
func (tr *Translator) TranslateReuse(asid addr.ASID, va addr.VA) TranslateResult {
	return tr.translate(asid, va, true)
}

func (tr *Translator) translate(asid addr.ASID, va addr.VA, reuse bool) TranslateResult {
	var res TranslateResult
	if tr.SC != nil {
		res.Latency += tr.cfg.SCLatency
		if seg, ok := tr.SC.Lookup(asid, va); ok {
			res.PA = seg.Translate(va)
			res.Perm = seg.Perm
			res.Seg = seg
			res.SCHit = true
			return res
		}
	}
	tr.Walks.Inc()
	var id ID
	var path []addr.PA
	if reuse {
		id, path = tr.Mgr.Tree.LookupInto(asid, va, tr.pathScratch[:0])
		tr.pathScratch = path
	} else {
		id, path = tr.Mgr.Tree.Lookup(asid, va)
	}
	tr.WalkDepth.Observe(uint64(len(path)))
	for _, nodePA := range path {
		res.ICProbes++
		res.Latency += tr.cfg.ICHitLatency
		if !tr.IC.Access(nodePA) {
			res.ICMisses++
			res.Latency += tr.cfg.MemLatency(nodePA)
		}
	}
	res.Latency += tr.cfg.TableLatency
	tr.TableAccesses.Inc()
	seg := tr.Mgr.Table.Get(id)
	if seg == nil || !seg.Contains(asid, va) {
		res.Fault = true
		tr.Faults.Inc()
		return res
	}
	res.PA = seg.Translate(va)
	res.Perm = seg.Perm
	res.Seg = seg
	if tr.SC != nil {
		tr.SC.Fill(asid, va, seg)
	}
	return res
}
