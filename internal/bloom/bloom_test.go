package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	// The defining Bloom filter property: every inserted granule must be
	// found. This is the correctness guarantee the synonym filter relies on.
	f := New(33)
	rng := rand.New(rand.NewSource(1))
	var inserted []uint64
	for i := 0; i < 200; i++ {
		g := rng.Uint64() & (1<<33 - 1)
		f.Insert(g)
		inserted = append(inserted, g)
	}
	for _, g := range inserted {
		if !f.Contains(g) {
			t.Fatalf("false negative for granule %#x", g)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	prop := func(granules []uint32) bool {
		f := New(24)
		for _, g := range granules {
			f.Insert(uint64(g) & (1<<24 - 1))
		}
		for _, g := range granules {
			if !f.Contains(uint64(g) & (1<<24 - 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(33)
	for g := uint64(0); g < 1000; g++ {
		if f.Contains(g * 977) {
			t.Fatalf("empty filter claims to contain %#x", g*977)
		}
	}
}

func TestFalsePositiveRateModerate(t *testing.T) {
	// With a handful of inserted synonym regions (the common case per
	// Table I), false positives must be rare — the paper measures <0.5%
	// of accesses. Test the filter in isolation with 16 inserted granules.
	f := New(33)
	rng := rand.New(rand.NewSource(7))
	present := make(map[uint64]bool)
	for i := 0; i < 16; i++ {
		g := rng.Uint64() & (1<<33 - 1)
		f.Insert(g)
		present[g] = true
	}
	fp := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		g := rng.Uint64() & (1<<33 - 1)
		if present[g] {
			continue
		}
		if f.Contains(g) {
			fp++
		}
	}
	rate := float64(fp) / trials
	if rate > 0.01 {
		t.Errorf("false positive rate %.4f too high for 16 entries", rate)
	}
}

func TestIndicesWithinRange(t *testing.T) {
	prop := func(g uint64) bool {
		f := New(33)
		i1, i2 := f.Indices(g)
		return i1 < FilterBits && i2 < FilterBits
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoHashFunctionsDiffer(t *testing.T) {
	// The two hash functions partition differently (1:1 vs 1:2), so over
	// many granules they must frequently produce different indices;
	// otherwise the second function adds no filtering power.
	f := New(33)
	rng := rand.New(rand.NewSource(3))
	differ := 0
	for i := 0; i < 1000; i++ {
		g := rng.Uint64() & (1<<33 - 1)
		i1, i2 := f.Indices(g)
		if i1 != i2 {
			differ++
		}
	}
	if differ < 900 {
		t.Errorf("hash functions agree too often: differ on only %d/1000", differ)
	}
}

func TestHashDeterminism(t *testing.T) {
	f := New(24)
	g := uint64(0xabcdef)
	a1, a2 := f.Indices(g)
	b1, b2 := f.Indices(g)
	if a1 != b1 || a2 != b2 {
		t.Error("Indices not deterministic")
	}
}

func TestHashUsesAllInputBits(t *testing.T) {
	// Flipping any single input bit must change at least one index —
	// otherwise part of the address is ignored and distinct regions
	// systematically collide.
	f := New(33)
	base := uint64(0x1_2345_6789) & (1<<33 - 1)
	b1, b2 := f.Indices(base)
	for bit := 0; bit < 33; bit++ {
		g := base ^ (1 << bit)
		i1, i2 := f.Indices(g)
		if i1 == b1 && i2 == b2 {
			t.Errorf("flipping bit %d leaves both indices unchanged", bit)
		}
	}
}

func TestClearAndOccupancy(t *testing.T) {
	f := New(33)
	if f.Occupancy() != 0 {
		t.Error("new filter not empty")
	}
	f.Insert(42)
	if f.Occupancy() <= 0 {
		t.Error("occupancy did not grow")
	}
	if !f.Contains(42) {
		t.Error("lost inserted granule")
	}
	f.Clear()
	if f.Occupancy() != 0 || f.Contains(42) {
		t.Error("Clear did not empty the filter")
	}
}

func TestOccupancyCountsDistinctBits(t *testing.T) {
	f := New(33)
	f.Insert(42)
	occ := f.Occupancy()
	f.Insert(42) // same bits again
	if f.Occupancy() != occ {
		t.Error("reinserting changed occupancy")
	}
	if occ > 2.0/FilterBits+1e-12 {
		t.Errorf("single insert set more than 2 bits: occupancy %f", occ)
	}
}

func TestLoad(t *testing.T) {
	src := New(33)
	src.Insert(7)
	src.Insert(9)
	dst := New(33)
	dst.Load(src)
	if !dst.Contains(7) || !dst.Contains(9) {
		t.Error("Load lost contents")
	}
	if dst.Occupancy() != src.Occupancy() {
		t.Error("Load occupancy mismatch")
	}
	// Load replaces prior contents.
	dst2 := New(33)
	dst2.Insert(1000)
	dst2.Load(New(33))
	if dst2.Contains(1000) {
		t.Error("Load did not replace prior contents")
	}
}

func TestLoadMismatchedWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Load with mismatched width did not panic")
		}
	}()
	New(33).Load(New(24))
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", w)
				}
			}()
			New(w)
		}()
	}
}

func TestXorFold(t *testing.T) {
	cases := []struct {
		x     uint64
		width int
		want  uint64
	}{
		{0, 5, 0},
		{0b11111, 5, 0b11111},
		{0b11111_00000, 5, 0b11111},  // single high chunk
		{0b00001_00001, 5, 0},        // chunks cancel
		{0b00011_00001, 5, 0b00010},  // chunks xor
		{^uint64(0), 64, ^uint64(0)}, // identity at full width
		{0xff, 4, 0},                 // 0xf ^ 0xf
		{0xf0f0f0f0f0f0f0f0, 8, 0},   // eight 0xf0 chunks cancel pairwise? 0xf0 xor'd 8 times = 0
		{0x12345, 5, 0x12345&0x1f ^ (0x12345 >> 5 & 0x1f) ^ (0x12345 >> 10 & 0x1f) ^ (0x12345 >> 15 & 0x1f)},
	}
	for _, c := range cases {
		if got := xorFold(c.x, c.width); got != c.want {
			t.Errorf("xorFold(%#x, %d) = %#x, want %#x", c.x, c.width, got, c.want)
		}
	}
}

// TestXorFold5 pins the branch-free 5-bit fold to the generic loop on a
// dense sweep plus a pseudorandom sample of the full word range.
func TestXorFold5(t *testing.T) {
	for x := uint64(0); x < 1<<16; x++ {
		if got, want := xorFold5(x), xorFold(x, 5); got != want {
			t.Fatalf("xorFold5(%#x) = %#x, want %#x", x, got, want)
		}
	}
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 1<<16; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if got, want := xorFold5(x), xorFold(x, 5); got != want {
			t.Fatalf("xorFold5(%#x) = %#x, want %#x", x, got, want)
		}
	}
}

func TestWordsSnapshot(t *testing.T) {
	f := New(33)
	f.Insert(123456)
	w := f.Words()
	var set int
	for _, word := range w {
		for ; word != 0; word &= word - 1 {
			set++
		}
	}
	if set == 0 || set > 2 {
		t.Errorf("Words snapshot has %d bits set, want 1 or 2", set)
	}
}
