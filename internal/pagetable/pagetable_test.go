package pagetable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridvc/internal/addr"
	"hybridvc/internal/mem"
)

func newTables(t *testing.T) *Tables {
	t.Helper()
	alloc := mem.NewAllocator(64 << 20)
	tbl, err := New(alloc, mem.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestPTEEncodeDecodeRoundTrip(t *testing.T) {
	f := func(frame uint32, perm uint8, shared bool) bool {
		p := PTE{
			Present: true,
			Frame:   uint64(frame),
			Perm:    addr.Perm(perm & 3),
			Shared:  shared,
		}
		return DecodePTE(p.Encode()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if DecodePTE(0).Present {
		t.Error("zero entry decodes present")
	}
	if (PTE{}).Encode() != 0 {
		t.Error("absent entry encodes non-zero")
	}
}

func TestMapLookupTranslate(t *testing.T) {
	tbl := newTables(t)
	va := addr.VA(0x7f00_1234_5000)
	pa := addr.PA(0x42_3000)
	if err := tbl.Map(va, pa, addr.PermRW, false); err != nil {
		t.Fatal(err)
	}
	pte, ok := tbl.Lookup(va)
	if !ok || pte.Frame != pa.Frame() || pte.Perm != addr.PermRW || pte.Shared {
		t.Fatalf("lookup = %+v ok=%v", pte, ok)
	}
	got, ok := tbl.Translate(va + 0x123)
	if !ok || got != pa+0x123 {
		t.Fatalf("translate = %#x ok=%v", uint64(got), ok)
	}
	if _, ok := tbl.Lookup(va + addr.PageSize); ok {
		t.Error("adjacent page mapped")
	}
	if tbl.Mapped != 1 {
		t.Errorf("mapped count = %d", tbl.Mapped)
	}
}

func TestMapNonCanonicalFails(t *testing.T) {
	tbl := newTables(t)
	if err := tbl.Map(addr.VA(1<<52), 0, addr.PermRW, false); err == nil {
		t.Error("non-canonical map succeeded")
	}
}

func TestRemapOverwrites(t *testing.T) {
	tbl := newTables(t)
	va := addr.VA(0x1000)
	tbl.Map(va, addr.FrameToPA(10), addr.PermRW, false)
	tbl.Map(va, addr.FrameToPA(20), addr.PermRO, true)
	pte, _ := tbl.Lookup(va)
	if pte.Frame != 20 || pte.Perm != addr.PermRO || !pte.Shared {
		t.Fatalf("remap result: %+v", pte)
	}
	if tbl.Mapped != 1 {
		t.Errorf("mapped count = %d after remap", tbl.Mapped)
	}
}

func TestUnmap(t *testing.T) {
	tbl := newTables(t)
	va := addr.VA(0x2000)
	tbl.Map(va, addr.FrameToPA(5), addr.PermRW, false)
	if !tbl.Unmap(va) {
		t.Fatal("unmap found nothing")
	}
	if tbl.Unmap(va) {
		t.Error("double unmap succeeded")
	}
	if _, ok := tbl.Lookup(va); ok {
		t.Error("lookup after unmap hit")
	}
	if tbl.Mapped != 0 {
		t.Errorf("mapped count = %d", tbl.Mapped)
	}
	if tbl.Unmap(addr.VA(0x7000_0000_0000)) {
		t.Error("unmap of never-touched region succeeded")
	}
}

func TestSetSharedAndPerm(t *testing.T) {
	tbl := newTables(t)
	va := addr.VA(0x3000)
	tbl.Map(va, addr.FrameToPA(7), addr.PermRW, false)
	if !tbl.SetShared(va, true) {
		t.Fatal("SetShared failed")
	}
	pte, _ := tbl.Lookup(va)
	if !pte.Shared || pte.Frame != 7 || pte.Perm != addr.PermRW {
		t.Fatalf("after SetShared: %+v", pte)
	}
	if !tbl.SetPerm(va, addr.PermRO) {
		t.Fatal("SetPerm failed")
	}
	pte, _ = tbl.Lookup(va)
	if pte.Perm != addr.PermRO || !pte.Shared {
		t.Fatalf("after SetPerm: %+v", pte)
	}
	if tbl.SetShared(addr.VA(0x9000_0000), true) {
		t.Error("SetShared on unmapped page succeeded")
	}
	if tbl.SetPerm(addr.VA(0x9000_0000), addr.PermRW) {
		t.Error("SetPerm on unmapped page succeeded")
	}
}

func TestWalkPathLength(t *testing.T) {
	tbl := newTables(t)
	va := addr.VA(0x7f00_0000_0000)
	// Unmapped: the walk stops at the first absent level (the root entry).
	path, _, ok := tbl.WalkPath(va)
	if ok || len(path) != 1 {
		t.Fatalf("unmapped walk: len=%d ok=%v", len(path), ok)
	}
	tbl.Map(va, addr.FrameToPA(9), addr.PermRW, false)
	path, pte, ok := tbl.WalkPath(va)
	if !ok || len(path) != Levels {
		t.Fatalf("mapped walk: len=%d ok=%v", len(path), ok)
	}
	if pte.Frame != 9 {
		t.Errorf("walk leaf frame = %d", pte.Frame)
	}
	// Each path element must be a distinct table page.
	seen := map[uint64]bool{}
	for _, p := range path {
		if seen[p.Frame()] {
			t.Error("walk revisited a table page")
		}
		seen[p.Frame()] = true
	}
}

func TestWalkPathPartialDepth(t *testing.T) {
	tbl := newTables(t)
	// Map one page; a nearby VA sharing upper levels but unmapped at the
	// leaf must produce a 4-entry path ending not-ok.
	tbl.Map(0x5000, addr.FrameToPA(3), addr.PermRW, false)
	path, _, ok := tbl.WalkPath(0x6000)
	if ok || len(path) != Levels {
		t.Fatalf("sibling walk: len=%d ok=%v", len(path), ok)
	}
}

func TestIntermediateTableReuse(t *testing.T) {
	tbl := newTables(t)
	tbl.Map(0x0000, addr.FrameToPA(1), addr.PermRW, false)
	frames := tbl.FramesUsed
	// Same 2 MiB region: no new intermediate tables.
	tbl.Map(0x1000, addr.FrameToPA(2), addr.PermRW, false)
	if tbl.FramesUsed != frames {
		t.Errorf("adjacent map allocated %d new table frames", tbl.FramesUsed-frames)
	}
	// A distant VA allocates three new intermediate levels.
	tbl.Map(0x7fff_ffff_f000, addr.FrameToPA(3), addr.PermRW, false)
	if tbl.FramesUsed != frames+3 {
		t.Errorf("distant map used %d frames, want %d", tbl.FramesUsed, frames+3)
	}
}

func TestManyMappingsRandomized(t *testing.T) {
	tbl := newTables(t)
	rng := rand.New(rand.NewSource(2))
	want := map[addr.VA]uint64{}
	for i := 0; i < 2000; i++ {
		va := addr.VA(rng.Uint64() % (1 << addr.VABits)).PageAligned()
		frame := rng.Uint64() % (1 << 28)
		if err := tbl.Map(va, addr.FrameToPA(frame), addr.PermRW, false); err != nil {
			t.Fatal(err)
		}
		want[va] = frame
	}
	for va, frame := range want {
		pte, ok := tbl.Lookup(va)
		if !ok || pte.Frame != frame {
			t.Fatalf("lookup %#x: got %+v ok=%v want frame %d", uint64(va), pte, ok, frame)
		}
	}
	if tbl.Mapped != len(want) {
		t.Errorf("mapped = %d, want %d", tbl.Mapped, len(want))
	}
}

func TestOutOfMemory(t *testing.T) {
	alloc := mem.NewAllocator(2 * addr.PageSize) // root + one table page
	tbl, err := New(alloc, mem.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(0x1000, 0, addr.PermRW, false); err == nil {
		t.Error("map succeeded without memory for intermediate tables")
	}
}
