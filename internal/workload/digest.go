package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Digest returns a stable content hash of the spec: two specs describing
// the same synthetic workload (same regions, ratios, locality, sharing
// and paging behaviour) digest identically regardless of how they were
// obtained. It is the workload component of the service result-cache key
// (see internal/service), standing in for the trace-file digest of a
// trace-driven run: the generator is a pure function of (Spec, seed), so
// the spec hash identifies the reference stream up to the seed, which
// the cache key carries separately.
func (s Spec) Digest() string {
	// encoding/json marshals struct fields in declaration order, so the
	// encoding — and therefore the hash — is canonical for a given Spec.
	b, err := json.Marshal(s)
	if err != nil {
		// Unreachable: Spec holds only strings, numbers and bools.
		panic(fmt.Sprintf("workload: digest marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
