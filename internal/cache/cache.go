// Package cache models the on-chip cache hierarchy of the hybrid virtual
// caching design: set-associative write-back caches whose tags are extended
// with a synonym bit, a 16-bit ASID, and 2 permission bits (Figure 2 of the
// paper), so a block may be named either by physical address (synonym
// blocks) or by ASID+VA (non-synonym blocks). Coherence between private
// caches uses the same unified names, which is what removes the synonym
// problem: every physical block has exactly one name in the hierarchy.
package cache

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/stats"
)

// State is a MESI coherence state for lines in private caches.
type State uint8

const (
	// Invalid marks an empty or invalidated way.
	Invalid State = iota
	// Shared marks a clean copy that other caches may also hold.
	Shared
	// Exclusive marks a clean copy no other cache holds.
	Exclusive
	// Modified marks a dirty copy no other cache holds.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Config describes one cache level.
type Config struct {
	// Name labels the cache in statistics output.
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// HitLatency is the access latency in cycles.
	HitLatency uint64
}

// Line is one cache way's bookkeeping: the extended tag of Figure 2.
type Line struct {
	// key caches Name.Key() so the set scan in lookup compares one word
	// instead of the three-field Name struct. Zero for invalid ways.
	key   uint64
	Name  addr.Name
	lru   uint64
	Valid bool
	State State
	Perm  addr.Perm
}

// Dirty reports whether the line holds modified data.
func (l *Line) Dirty() bool { return l.State == Modified }

// Cache is one set-associative write-back cache level.
type Cache struct {
	cfg      Config
	sets     [][]Line
	setMask  uint64
	tick     uint64
	Stats    stats.HitMiss
	Evicted  stats.Counter // lines evicted for capacity/conflict
	WriteBks stats.Counter // dirty evictions
}

// New creates a cache. It panics on geometries that do not divide evenly;
// cache shapes come from fixed experiment configurations.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: invalid size/ways %d/%d", cfg.Name, cfg.SizeBytes, cfg.Ways))
	}
	lines := cfg.SizeBytes / addr.LineSize
	if lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", cfg.Name, lines, cfg.Ways))
	}
	nsets := lines / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, nsets))
	}
	sets := make([][]Line, nsets)
	backing := make([]Line, nsets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nsets - 1)}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

func (c *Cache) set(n addr.Name) []Line {
	return c.sets[n.Line()&c.setMask]
}

// lookup returns the way holding n, or nil.
func (c *Cache) lookup(n addr.Name) *Line {
	k := n.Key()
	set := c.set(n)
	for i := range set {
		if set[i].key == k && set[i].Valid {
			return &set[i]
		}
	}
	return nil
}

// Probe reports whether n is present, without touching LRU or statistics.
// Coherence snoops use Probe.
func (c *Cache) Probe(n addr.Name) *Line { return c.lookup(n) }

// Victim describes a line displaced by a fill.
type Victim struct {
	Name  addr.Name
	Dirty bool
}

// Access looks up n, recording hit/miss statistics and updating LRU.
// On a hit it returns (line, nil-victim-ok). It does not allocate; callers
// Fill after resolving the miss so fill ordering matches the hierarchy.
func (c *Cache) Access(n addr.Name) *Line {
	c.tick++
	l := c.lookup(n)
	c.Stats.Record(l != nil)
	if l != nil {
		l.lru = c.tick
	}
	return l
}

// Fill allocates n with the given state and permission, returning any
// displaced victim. Filling a name already present just updates it.
func (c *Cache) Fill(n addr.Name, st State, perm addr.Perm) (Victim, bool) {
	c.tick++
	if l := c.lookup(n); l != nil {
		l.State = st
		l.Perm = perm
		l.lru = c.tick
		return Victim{}, false
	}
	set := c.set(n)
	victim := &set[0]
	for i := range set {
		if !set[i].Valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	var out Victim
	evicted := false
	if victim.Valid {
		out = Victim{Name: victim.Name, Dirty: victim.Dirty()}
		evicted = true
		c.Evicted.Inc()
		if out.Dirty {
			c.WriteBks.Inc()
		}
	}
	*victim = Line{key: n.Key(), Valid: true, Name: n, State: st, Perm: perm, lru: c.tick}
	return out, evicted
}

// Invalidate removes n if present, returning whether it was dirty.
func (c *Cache) Invalidate(n addr.Name) (wasDirty, wasPresent bool) {
	if l := c.lookup(n); l != nil {
		wasDirty = l.Dirty()
		*l = Line{}
		return wasDirty, true
	}
	return false, false
}

// Downgrade moves n to Shared (after a remote read snoop), returning whether
// the line was dirty and had to supply data.
func (c *Cache) Downgrade(n addr.Name) (wasDirty bool) {
	if l := c.lookup(n); l != nil {
		wasDirty = l.Dirty()
		l.State = Shared
	}
	return wasDirty
}

// FlushMatching invalidates every line for which match returns true and
// returns the number invalidated and how many were dirty. The OS uses this
// for page remaps, synonym status changes, and permission revocations.
func (c *Cache) FlushMatching(match func(addr.Name) bool) (flushed, dirty int) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.Valid && match(l.Name) {
				if l.Dirty() {
					dirty++
				}
				*l = Line{}
				flushed++
			}
		}
	}
	return flushed, dirty
}

// FlushPage invalidates all lines of a page identified by a representative
// name (ASID+virtual page for non-synonym, frame for synonym).
func (c *Cache) FlushPage(page addr.Name) (flushed, dirty int) {
	return c.FlushMatching(func(n addr.Name) bool { return n.SamePage(page) })
}

// SetPagePerm updates the permission bits of every cached line of a page —
// the paper's mechanism for r/o content sharing (Section III-D): permission
// changes update cached copies rather than flushing them.
func (c *Cache) SetPagePerm(page addr.Name, perm addr.Perm) (updated int) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.Valid && l.Name.SamePage(page) {
				l.Perm = perm
				updated++
			}
		}
	}
	return updated
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].Valid {
				n++
			}
		}
	}
	return n
}

// ForEachLine calls fn for every valid line (used by invariant checks).
func (c *Cache) ForEachLine(fn func(*Line)) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].Valid {
				fn(&c.sets[si][wi])
			}
		}
	}
}
