// The service-chaos suite (make chaos): a live hvcd daemon driven
// through seeded store faults, deadline-exceeded jobs, an overload trip
// and mid-stream client disconnects. Every scenario ends by proving the
// daemon converged back to healthy. Run race-enabled.
package chaos_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hybridvc/internal/service"
	"hybridvc/internal/service/chaos"
	"hybridvc/internal/service/client"
	"hybridvc/internal/stats"
)

// startServer builds and starts a daemon; the returned stop function
// drains it with a deadline (tests that "restart" call stop themselves,
// otherwise cleanup does).
func startServer(t *testing.T, cfg service.Config) (*service.Server, *client.Client, func()) {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	}
	t.Cleanup(stop)
	return srv, client.New(ts.URL, nil), stop
}

// watchDone waits for the job to reach a terminal state within a bound —
// the no-deadlocked-watcher assertion every scenario leans on.
func watchDone(t *testing.T, c *client.Client, id string) service.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.Watch(ctx, id, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("watcher for %s did not unblock: %v", id, err)
	}
	return st
}

func waitRunning(t *testing.T, c *client.Client, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.StateRunning || st.State == service.StateDone {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosStoreFaultsNeverServeCorrupt is the core durability scenario:
// twelve jobs run against a store whose writes fail, tear and bit-flip
// on a seeded cadence; the daemon restarts over the same directory and
// every resubmission must produce the canonical bytes — good records
// serve from disk, mangled ones quarantine and re-simulate, and no
// corrupt record is ever served.
func TestChaosStoreFaultsNeverServeCorrupt(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.New(chaos.Options{
		Seed:           42,
		FailWriteEvery: 4, // jobs 4, 8, 12: write fails, nothing durable
		TearWriteEvery: 3, // jobs 3, 6, 9: record truncated on disk
		FlipBitEvery:   5, // jobs 5, 10: record bit-flipped on disk
	})
	// Good records: jobs 1, 2, 7, 11.
	const jobs, good = 12, 4

	srv1, c1, stop1 := startServer(t, service.Config{
		Workers: 1, StoreDir: dir, StoreHooks: inj.StoreHooks(),
	})
	ctx := context.Background()
	specs := make([]service.JobSpec, jobs)
	canonical := make(map[string][]byte) // cache key → report bytes
	for i := range specs {
		specs[i] = service.JobSpec{Instructions: 30_000, Seed: int64(i + 1)}
		resp, err := c1.Submit(ctx, specs[i])
		if err != nil {
			t.Fatal(err)
		}
		st := watchDone(t, c1, resp.ID)
		if st.State != service.StateDone {
			t.Fatalf("job %d finished %s (%s)", i+1, st.State, st.Error)
		}
		canonical[resp.Key] = st.Report
	}
	counts := inj.Counts()
	if counts.Writes != jobs || counts.Failed != 3 || counts.Torn != 3 || counts.Flipped != 2 {
		t.Fatalf("injection cadence off: %+v", counts)
	}
	if m := srv1.Store().Metrics(); m.WriteErrors != uint64(counts.Failed) {
		t.Errorf("store write errors = %d, want %d injected", m.WriteErrors, counts.Failed)
	}
	stop1()

	// "Restart": a fresh daemon over the same store directory, faults
	// stopped — the convergence phase.
	inj.StopFaults()
	srv2, c2, _ := startServer(t, service.Config{
		Workers: 1, StoreDir: dir, StoreHooks: inj.StoreHooks(),
	})
	diskServed := 0
	for i, spec := range specs {
		resp, err := c2.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		st := watchDone(t, c2, resp.ID)
		if st.State != service.StateDone {
			t.Fatalf("restart job %d finished %s (%s)", i+1, st.State, st.Error)
		}
		if !bytes.Equal(st.Report, canonical[resp.Key]) {
			t.Errorf("job %d: post-restart report differs from canonical bytes", i+1)
		}
		if st.Provenance == "disk" {
			diskServed++
			if !resp.Cached {
				t.Errorf("job %d: disk-served but not reported cached", i+1)
			}
		}
	}
	if diskServed != good {
		t.Errorf("disk-served %d results, want exactly the %d uncorrupted records", diskServed, good)
	}
	m2 := srv2.Store().Metrics()
	mangled := uint64(counts.Torn + counts.Flipped)
	if m2.Corruptions != mangled {
		t.Errorf("corruptions = %d, want %d (every mangled record quarantined)", m2.Corruptions, mangled)
	}
	if q := srv2.Store().Quarantined(); q != int(mangled) {
		t.Errorf("quarantined files = %d, want %d", q, mangled)
	}
	snap := srv2.MetricsSnapshot()
	if snap.Simulated != uint64(jobs-good) {
		t.Errorf("restart re-simulated %d, want %d (only lost/corrupt records)", snap.Simulated, jobs-good)
	}
	// Healthy again: with faults stopped, every re-run was durably
	// rewritten, so the store holds all twelve records.
	if m2.WriteErrors != 0 || srv2.Store().Len() != jobs {
		t.Errorf("store did not converge: write_errors=%d records=%d, want 0/%d",
			m2.WriteErrors, srv2.Store().Len(), jobs)
	}
}

// TestChaosDeadlines: slow jobs blow a 2s per-job deadline — one
// mid-execution, one possibly still queued behind it — and both land in
// failed-with-reason, watchers unblocked, after which a quick job runs
// normally. The deadline is generous enough that a 10k-instruction job
// clears it even race-instrumented.
func TestChaosDeadlines(t *testing.T) {
	srv, c, _ := startServer(t, service.Config{
		Workers: 1, JobTimeout: 2 * time.Second,
	})
	ctx := context.Background()
	a, err := c.Submit(ctx, service.JobSpec{Instructions: 2_000_000_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(ctx, service.JobSpec{Instructions: 2_000_000_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{a.ID, b.ID} {
		st := watchDone(t, c, id)
		if st.State != service.StateFailed {
			t.Fatalf("job %s finished %s (%s), want failed", id, st.State, st.Error)
		}
		if !strings.Contains(st.Error, "deadline exceeded") {
			t.Errorf("job %s failure reason %q lacks the deadline", id, st.Error)
		}
	}
	if m := srv.MetricsSnapshot(); m.DeadlineExceeded != 2 || m.Failed != 2 {
		t.Errorf("deadline/failed = %d/%d, want 2/2", m.DeadlineExceeded, m.Failed)
	}

	// Convergence: a fast job under the same deadline completes, and the
	// expired specs re-run fresh rather than coalescing onto the corpses.
	quick, err := c.Submit(ctx, service.JobSpec{Instructions: 10_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st := watchDone(t, c, quick.ID); st.State != service.StateDone {
		t.Errorf("quick job under deadline finished %s (%s)", st.State, st.Error)
	}
	retry, err := c.Submit(ctx, service.JobSpec{Instructions: 2_000_000_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if retry.ID == a.ID || retry.Cached || retry.Deduped {
		t.Errorf("resubmission coalesced onto an expired job: %+v", retry)
	}
	watchDone(t, c, retry.ID)
}

// TestChaosBreakerTripsAndRecovers drives the overload state machine end
// to end over live HTTP: sustained queue waits trip the breaker, fresh
// submissions shed 503 + Retry-After while cached results still serve,
// /readyz goes unready, and after the cooldown the daemon recovers.
func TestChaosBreakerTripsAndRecovers(t *testing.T) {
	srv, c, _ := startServer(t, service.Config{
		Workers:          1,
		BreakerQueueWait: time.Millisecond,
		BreakerTrips:     2,
		BreakerCooldown:  time.Second,
	})
	ctx := context.Background()

	// A long blocker pins the one worker while two short jobs accumulate
	// queue wait behind it.
	blocker, err := c.Submit(ctx, service.JobSpec{Instructions: 2_000_000_000, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, c, blocker.ID)
	short1, err := c.Submit(ctx, service.JobSpec{Instructions: 10_000, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	short2, err := c.Submit(ctx, service.JobSpec{Instructions: 10_000, Seed: 102})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // both shorts now exceed the 1ms wait
	if err := c.Cancel(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	watchDone(t, c, blocker.ID)
	st1, st2 := watchDone(t, c, short1.ID), watchDone(t, c, short2.ID)
	if st1.State != service.StateDone || st2.State != service.StateDone {
		t.Fatalf("short jobs finished %s/%s", st1.State, st2.State)
	}

	tripAt := time.Now()
	if m := srv.MetricsSnapshot(); m.BreakerState != service.BreakerOpen || m.BreakerTrips != 1 {
		t.Fatalf("breaker = %s after %d trips, want open/1", m.BreakerState, m.BreakerTrips)
	}

	// Open: fresh work sheds with 503 + Retry-After…
	_, err = c.Submit(ctx, service.JobSpec{Instructions: 10_000, Seed: 103})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != 503 {
		t.Fatalf("fresh submit while open: %v, want 503", err)
	}
	if !apiErr.IsRetryable() || apiErr.RetryAfter <= 0 {
		t.Errorf("shed response not retryable with Retry-After: %+v", apiErr)
	}
	// …but cached results keep flowing…
	hit, err := c.Submit(ctx, service.JobSpec{Instructions: 10_000, Seed: 101})
	if err != nil || !(hit.Cached || hit.Deduped) {
		t.Errorf("cached spec while open: err=%v resp=%+v, want served", err, hit)
	}
	// …and readiness reflects the shed while liveness stays up.
	ready, err := c.Ready(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ready.Status != "overloaded" || ready.Breaker != service.BreakerOpen {
		t.Errorf("readyz while open = %+v", ready)
	}
	health, err := c.Health(ctx)
	if err != nil || health.Status != "ok" {
		t.Errorf("healthz while open = %+v err=%v, want ok (liveness)", health, err)
	}
	if m := srv.MetricsSnapshot(); m.Shed == 0 {
		t.Error("shed counter did not move")
	}

	// Cooldown elapses → half-open admits a probe; an idle queue makes it
	// a fast pickup, closing the breaker.
	time.Sleep(time.Second - time.Since(tripAt) + 50*time.Millisecond)
	probe, err := c.Submit(ctx, service.JobSpec{Instructions: 10_000, Seed: 104})
	if err != nil {
		t.Fatalf("probe after cooldown rejected: %v", err)
	}
	if st := watchDone(t, c, probe.ID); st.State != service.StateDone {
		t.Fatalf("probe finished %s (%s)", st.State, st.Error)
	}
	if m := srv.MetricsSnapshot(); m.BreakerState != service.BreakerClosed {
		t.Errorf("breaker = %s after fast probe, want closed", m.BreakerState)
	}
	ready, err = c.Ready(ctx)
	if err != nil || ready.Status != "ready" {
		t.Errorf("readyz after recovery = %+v err=%v", ready, err)
	}
}

// TestChaosClientDisconnectMidStream: a timeline subscriber vanishing
// mid-stream must not wedge the handler, the job, or the drain path.
func TestChaosClientDisconnectMidStream(t *testing.T) {
	_, c, _ := startServer(t, service.Config{Workers: 1})
	ctx := context.Background()
	resp, err := c.Submit(ctx, service.JobSpec{Instructions: 2_000_000_000, Interval: 5_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	streamCtx, cancelStream := context.WithCancel(ctx)
	defer cancelStream()
	got := 0
	err = c.Timeline(streamCtx, resp.ID, true, func(stats.Interval) error {
		got++
		cancelStream() // client walks away after the first frame
		return nil
	})
	if err == nil && got == 0 {
		t.Fatal("stream ended cleanly without delivering anything")
	}

	// The daemon is unaffected: job still cancelable, then a fresh job
	// completes and health stays ok. Cleanup drains — a wedged stream
	// handler would hang it.
	if err := c.Cancel(ctx, resp.ID); err != nil {
		t.Fatal(err)
	}
	if st := watchDone(t, c, resp.ID); st.State != service.StateCanceled {
		t.Errorf("job after disconnect+cancel = %s", st.State)
	}
	after, err := c.Submit(ctx, service.JobSpec{Instructions: 10_000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st := watchDone(t, c, after.ID); st.State != service.StateDone {
		t.Errorf("post-disconnect job finished %s (%s)", st.State, st.Error)
	}
	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Errorf("health after disconnect = %+v err=%v", h, err)
	}
}
