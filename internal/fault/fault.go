// Package fault provides deterministic fault injection and runtime
// invariant checking for the hybrid virtual caching simulator.
//
// The Injector attaches to a memory system like any other pipeline probe:
// it counts references through the Route emission point and, at seeded
// period boundaries, perturbs the system with one of the modelled fault
// kinds — synonym-filter soft errors, forced false-positive storms, TLB
// shootdown bursts, mmap/munmap remap churn through the OS model, and
// transient page-walk failures with bounded retry. Every choice the
// injector makes (target address space, fault kind, bit, page) comes from
// one seeded math/rand stream over deterministically ordered inputs, so a
// given (seed, config, workload) triple produces a byte-identical run
// regardless of host or worker count.
//
// The Checker (see checker.go) verifies the paper's structural invariants
// — one name per physical block, zero synonym-filter false negatives,
// translation-structure/page-table agreement, and probe-event/statistics
// reconciliation — and is designed to be run after every injected fault.
//
// All injected faults are *recoverable* by construction: they perturb
// timing, traffic and structure contents, never translation results, so
// the invariants must hold at every injection point for every
// organization.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"hybridvc/internal/addr"
	"hybridvc/internal/bloom"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/pipeline"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// FilterSoftError flips one bit of a process's synonym filter,
	// modelling an SRAM soft error. A set bit only widens the candidate
	// set (extra false positives); a cleared bit could create the false
	// negatives the design forbids, so the detected parity error makes
	// the OS rebuild the filter from its live synonym ranges before the
	// filter is consulted again.
	FilterSoftError Kind = iota
	// FilterStorm saturates the filter granules of Burst private pages,
	// forcing a false-positive storm: the pages classify as synonym
	// candidates and take the TLB path until the entries correct them.
	FilterStorm
	// ShootdownBurst broadcasts Burst spurious TLB shootdowns for mapped
	// pages — the over-invalidation real kernels perform when batching
	// shootdown IPIs. Translation structures drop the entries and re-walk
	// the unchanged page tables.
	ShootdownBurst
	// RemapChurn maps and unmaps injector-owned scratch regions through
	// the OS model mid-run, churning the allocator, segment manager,
	// page tables and flush/shootdown machinery under the workload.
	RemapChurn
	// WalkTransient arms Burst transient page-walk failures: the next
	// walks detect a bad PTE fetch and re-issue, bounded by
	// pipeline.MaxWalkRetries.
	WalkTransient

	numKinds
)

var kindNames = [numKinds]string{
	"filter-soft-error", "filter-storm", "shootdown-burst", "remap-churn", "walk-transient",
}

func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
	return kindNames[k]
}

// AllKinds lists every injectable fault kind.
func AllKinds() []Kind {
	return []Kind{FilterSoftError, FilterStorm, ShootdownBurst, RemapChurn, WalkTransient}
}

// Event describes one injected fault, delivered to Config.OnFault.
type Event struct {
	// Seq numbers injections from 1 in injection order.
	Seq uint64
	// Kind is the injected fault class.
	Kind Kind
	// ASID is the targeted address space (zero for WalkTransient, which
	// arms a core-side failure rather than targeting a process).
	ASID addr.ASID
	// Detail is a human-readable description of the specific perturbation.
	Detail string
}

// Config parameterizes an Injector.
type Config struct {
	// Seed drives every random choice (default 1).
	Seed int64
	// Period is the number of references between injections (default 4096).
	Period uint64
	// Kinds restricts injection to the listed fault classes (default all).
	Kinds []Kind
	// Burst scales multi-shot kinds: shootdowns per burst, pages per
	// filter storm, armed walk transients (default 8).
	Burst int
	// ChurnRegions bounds how many scratch regions RemapChurn keeps mapped
	// per address space before it starts unmapping (default 4).
	ChurnRegions int
	// ChurnBytes is the scratch region size (default 64 KiB).
	ChurnBytes uint64
	// OnFault, when set, observes every injection.
	OnFault func(Event)
}

func (c *Config) fillDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Period == 0 {
		c.Period = 4096
	}
	if len(c.Kinds) == 0 {
		c.Kinds = AllKinds()
	}
	if c.Burst <= 0 {
		c.Burst = 8
	}
	if c.ChurnRegions <= 0 {
		c.ChurnRegions = 4
	}
	if c.ChurnBytes == 0 {
		c.ChurnBytes = 64 << 10
	}
}

// maxArmedWalks caps the armed walk-transient budget so organizations
// whose walkers do not consult the shared walk path (OVC's private
// walker, nested 2D walks) cannot accumulate an unbounded budget.
const maxArmedWalks = 64

// Injector deterministically perturbs a running system. It implements
// pipeline.Probe (attach with SetProbe, composed via pipeline.Tee) and
// pipeline.WalkFaulter (attach with Base.SetWalkFaulter).
type Injector struct {
	pipeline.NopProbe
	cfg     Config
	kernel  *osmodel.Kernel
	rng     *rand.Rand
	checker *Checker

	accesses   uint64
	seq        uint64
	walkBudget int
	// churn holds the injector-owned scratch regions, oldest first.
	churn map[addr.ASID][]addr.VA

	// Injected counts applied faults by Kind.
	Injected [numKinds]uint64
	// Skipped counts injection slots that found no eligible target.
	Skipped uint64

	// firstErr is the first checker violation observed after an injection.
	firstErr error
}

// NewInjector builds an injector over the kernel that owns the workload's
// address spaces (the guest kernel in virtualized organizations).
func NewInjector(cfg Config, k *osmodel.Kernel) *Injector {
	cfg.fillDefaults()
	return &Injector{
		cfg:    cfg,
		kernel: k,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		churn:  make(map[addr.ASID][]addr.VA),
	}
}

// SetChecker wires an invariant checker to run after every injection; the
// first violation is retained and returned by Err.
func (in *Injector) SetChecker(c *Checker) { in.checker = c }

// Err returns the first invariant violation observed after an injection,
// or nil.
func (in *Injector) Err() error { return in.firstErr }

// Counts returns the per-kind injection counts keyed by Kind name.
func (in *Injector) Counts() map[string]uint64 {
	m := make(map[string]uint64, numKinds)
	for k, n := range in.Injected {
		m[Kind(k).String()] = n
	}
	return m
}

// Total returns the number of faults injected.
func (in *Injector) Total() uint64 { return in.seq }

// Route implements pipeline.Probe: every reference advances the injection
// clock; at period boundaries one fault is injected. The Route event
// fires after the front end decided and before the cache stage runs, so
// the hierarchy is never mutated mid-update.
func (in *Injector) Route(pipeline.RouteEvent) {
	in.accesses++
	if in.accesses%in.cfg.Period != 0 {
		return
	}
	in.inject()
	if in.checker != nil {
		if err := in.checker.Check(); err != nil && in.firstErr == nil {
			in.firstErr = fmt.Errorf("after fault #%d: %w", in.seq, err)
		}
	}
}

// FailWalk implements pipeline.WalkFaulter: armed walk transients drain
// one per walk attempt.
func (in *Injector) FailWalk(int) bool {
	if in.walkBudget > 0 {
		in.walkBudget--
		return true
	}
	return false
}

// inject applies one fault of a seeded-random enabled kind.
func (in *Injector) inject() {
	kind := in.cfg.Kinds[in.rng.Intn(len(in.cfg.Kinds))]
	var ev Event
	var ok bool
	switch kind {
	case FilterSoftError:
		ev, ok = in.filterSoftError()
	case FilterStorm:
		ev, ok = in.filterStorm()
	case ShootdownBurst:
		ev, ok = in.shootdownBurst()
	case RemapChurn:
		ev, ok = in.remapChurn()
	case WalkTransient:
		ev, ok = in.walkTransient()
	}
	if !ok {
		in.Skipped++
		return
	}
	in.seq++
	in.Injected[kind]++
	ev.Seq, ev.Kind = in.seq, kind
	if in.cfg.OnFault != nil {
		in.cfg.OnFault(ev)
	}
}

// pickProc selects a live process deterministically: ASIDs sort before
// the seeded draw so Go's randomized map iteration cannot leak into the
// fault schedule.
func (in *Injector) pickProc() *osmodel.Process {
	asids := in.kernel.ASIDs()
	if len(asids) == 0 {
		return nil
	}
	sort.Slice(asids, func(i, j int) bool { return asids[i] < asids[j] })
	return in.kernel.Process(asids[in.rng.Intn(len(asids))])
}

// filterSoftError flips one filter bit. Cleared bits are repaired by an
// immediate OS rebuild (the parity-detection model), so the filter's
// no-false-negative guarantee is never observable-broken.
func (in *Injector) filterSoftError() (Event, bool) {
	p := in.pickProc()
	if p == nil {
		return Event{}, false
	}
	coarse := in.rng.Intn(2) == 1
	bit := uint64(in.rng.Intn(bloom.FilterBits))
	set := in.rng.Intn(2) == 1
	changed := p.Filter.CorruptBit(coarse, bit, set)
	if !set && changed {
		in.kernel.RebuildFilter(p)
	}
	which := "fine"
	if coarse {
		which = "coarse"
	}
	return Event{ASID: p.ASID,
		Detail: fmt.Sprintf("%s bit %d -> %v (changed=%v)", which, bit, set, changed)}, true
}

// filterStorm marks Burst private pages in the target's filter, forcing
// those granules to classify as synonym candidates (pure false
// positives: extra set bits can never produce a false negative).
func (in *Injector) filterStorm() (Event, bool) {
	p := in.pickProc()
	if p == nil {
		return Event{}, false
	}
	var private []*osmodel.Region
	for _, r := range p.Regions {
		if !r.Shared && r.Length >= addr.PageSize {
			private = append(private, r)
		}
	}
	if len(private) == 0 {
		return Event{}, false
	}
	r := private[in.rng.Intn(len(private))]
	pages := r.Length / addr.PageSize
	for i := 0; i < in.cfg.Burst; i++ {
		va := r.Start + addr.VA((in.rng.Uint64()%pages)*addr.PageSize)
		p.Filter.MarkSynonym(va)
	}
	return Event{ASID: p.ASID,
		Detail: fmt.Sprintf("%d private pages in [%#x,%#x) forced candidate",
			in.cfg.Burst, uint64(r.Start), uint64(r.End()))}, true
}

// shootdownBurst broadcasts Burst spurious shootdowns for mapped pages.
func (in *Injector) shootdownBurst() (Event, bool) {
	p := in.pickProc()
	if p == nil || len(p.Regions) == 0 {
		return Event{}, false
	}
	r := p.Regions[in.rng.Intn(len(p.Regions))]
	pages := r.Length / addr.PageSize
	if pages == 0 {
		return Event{}, false
	}
	for i := 0; i < in.cfg.Burst; i++ {
		va := r.Start + addr.VA((in.rng.Uint64()%pages)*addr.PageSize)
		in.kernel.ShootdownPage(p.ASID, va.Page())
	}
	return Event{ASID: p.ASID,
		Detail: fmt.Sprintf("%d spurious shootdowns in [%#x,%#x)",
			in.cfg.Burst, uint64(r.Start), uint64(r.End()))}, true
}

// remapChurn maps a fresh injector-owned scratch region, or unmaps the
// oldest once ChurnRegions are live. Only regions the injector created
// are ever unmapped, so no workload reference can dangle.
func (in *Injector) remapChurn() (Event, bool) {
	p := in.pickProc()
	if p == nil {
		return Event{}, false
	}
	owned := in.churn[p.ASID]
	if len(owned) < in.cfg.ChurnRegions {
		va, err := p.Mmap(in.cfg.ChurnBytes, addr.PermRW, osmodel.MmapOpts{})
		if err != nil {
			return Event{}, false // fragmentation: skip this slot
		}
		in.churn[p.ASID] = append(owned, va)
		return Event{ASID: p.ASID,
			Detail: fmt.Sprintf("mmap scratch %#x+%d", uint64(va), in.cfg.ChurnBytes)}, true
	}
	va := owned[0]
	if err := in.kernel.Munmap(p, va); err != nil {
		return Event{}, false
	}
	in.churn[p.ASID] = append(owned[:0], owned[1:]...)
	return Event{ASID: p.ASID, Detail: fmt.Sprintf("munmap scratch %#x", uint64(va))}, true
}

// walkTransient arms Burst transient walk failures (capped).
func (in *Injector) walkTransient() (Event, bool) {
	in.walkBudget += in.cfg.Burst
	if in.walkBudget > maxArmedWalks {
		in.walkBudget = maxArmedWalks
	}
	return Event{Detail: fmt.Sprintf("armed %d transient walk failures", in.walkBudget)}, true
}
