// Package segment implements the paper's scalable delayed translation
// (Section IV): variable-length segments mapping contiguous virtual ranges
// to contiguous physical ranges, a system-wide 2048-entry segment table, an
// OS-maintained B-tree index over ASID+VA (the index tree) materialized in
// physical memory, a hardware index cache for tree nodes, and a small
// 2 MiB-granularity segment cache (SC) that short-circuits the walk.
package segment

import (
	"fmt"
	"sort"

	"hybridvc/internal/addr"
)

// TableCapacity is the paper's system-wide segment count (2048 entries,
// ~48 KiB of base/offset/limit state).
const TableCapacity = 2048

// ID names a segment table slot.
type ID int32

// NoID marks "no segment".
const NoID ID = -1

// Key is the index tree search key: ASID concatenated with the 48-bit VA.
type Key uint64

// MakeKey builds a tree key.
func MakeKey(asid addr.ASID, va addr.VA) Key {
	return Key(uint64(asid)<<addr.VABits | uint64(va)&(1<<addr.VABits-1))
}

// ASID extracts the address space component of the key.
func (k Key) ASID() addr.ASID { return addr.ASID(k >> addr.VABits) }

// VA extracts the virtual address component of the key.
func (k Key) VA() addr.VA { return addr.VA(k & (1<<addr.VABits - 1)) }

// Segment maps [Base, Base+Length) of one address space onto the contiguous
// physical range starting at PABase.
type Segment struct {
	ID     ID
	ASID   addr.ASID
	Base   addr.VA
	Length uint64
	PABase addr.PA
	Perm   addr.Perm
	// Touched tracks how many distinct 4 KiB pages were accessed, for the
	// eager-allocation utilization study (Table III).
	Touched map[uint64]struct{}
}

// Contains reports whether the segment covers (asid, va).
func (s *Segment) Contains(asid addr.ASID, va addr.VA) bool {
	return s.ASID == asid && va >= s.Base && uint64(va-s.Base) < s.Length
}

// Translate maps va (which must be within the segment) to its PA.
func (s *Segment) Translate(va addr.VA) addr.PA {
	return s.PABase + addr.PA(va-s.Base)
}

// Pages returns the segment length in 4 KiB pages (rounded up).
func (s *Segment) Pages() uint64 {
	return (s.Length + addr.PageSize - 1) / addr.PageSize
}

// Touch records an access for utilization accounting.
func (s *Segment) Touch(va addr.VA) {
	if s.Touched == nil {
		s.Touched = make(map[uint64]struct{})
	}
	s.Touched[va.Page()] = struct{}{}
}

// Utilization returns touched pages / allocated pages.
func (s *Segment) Utilization() float64 {
	p := s.Pages()
	if p == 0 {
		return 0
	}
	return float64(len(s.Touched)) / float64(p)
}

func (s *Segment) String() string {
	return fmt.Sprintf("seg%d[%s %#x+%#x -> %#x %s]",
		s.ID, s.ASID, uint64(s.Base), s.Length, uint64(s.PABase), s.Perm)
}

// Table is the system-wide segment table: the OS-maintained in-memory copy
// that the equal-sized hardware table mirrors (so segment misses occur only
// on cold entries).
type Table struct {
	slots [TableCapacity]*Segment
	free  []ID
	used  int
}

// NewTable creates an empty table with all slots free.
func NewTable() *Table {
	t := &Table{}
	for i := TableCapacity - 1; i >= 0; i-- {
		t.free = append(t.free, ID(i))
	}
	return t
}

// Alloc assigns a slot to s and stores it, returning the ID. It reports
// failure when the table is full (the OS must then merge or spill).
func (t *Table) Alloc(s *Segment) (ID, bool) {
	if len(t.free) == 0 {
		return NoID, false
	}
	id := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	s.ID = id
	t.slots[id] = s
	t.used++
	return id, true
}

// Get returns the segment in slot id, or nil.
func (t *Table) Get(id ID) *Segment {
	if id < 0 || id >= TableCapacity {
		return nil
	}
	return t.slots[id]
}

// Release frees slot id. It panics on double release (an OS bookkeeping
// bug in the simulator).
func (t *Table) Release(id ID) {
	if t.slots[id] == nil {
		panic(fmt.Sprintf("segment: release of free slot %d", id))
	}
	t.slots[id] = nil
	t.free = append(t.free, id)
	t.used--
}

// Used returns the number of occupied slots.
func (t *Table) Used() int { return t.used }

// Capacity returns the slot count.
func (t *Table) Capacity() int { return TableCapacity }

// ErrNoSlots is returned when the segment table is exhausted.
var ErrNoSlots = fmt.Errorf("segment: table full (%d slots)", TableCapacity)

// ErrOverlap is returned when a new segment would overlap an existing one
// in the same address space.
var ErrOverlap = fmt.Errorf("segment: virtual range overlaps existing segment")

// Manager is the OS view of segment translation: it owns the table and the
// index tree and keeps them consistent.
type Manager struct {
	Table *Table
	Tree  *IndexTree
	// byASID orders each address space's segments by base address.
	byASID map[addr.ASID][]*Segment
	// MaxUsed tracks the high-water mark of concurrently live segments,
	// reported in Table III.
	MaxUsed int
	// OnRebuild, when set, runs after every index tree rebuild; the MMU
	// uses it to flush the index cache, whose cached node addresses move.
	OnRebuild func()
	// Incremental maintains the index tree with in-place B-tree inserts
	// and lazy deletes instead of bulk rebuilds: node addresses stay
	// stable (no index cache flush) at the cost of a ~2/3 node fill
	// factor, as a real OS-maintained tree runs.
	Incremental bool
}

// NewManager creates a manager whose index tree nodes are materialized
// through the given node arena.
func NewManager(arena *NodeArena) *Manager {
	return &Manager{
		Table:  NewTable(),
		Tree:   NewIndexTree(arena),
		byASID: make(map[addr.ASID][]*Segment),
	}
}

// Allocate creates a segment and indexes it. The virtual range must not
// overlap an existing segment of the same address space.
func (m *Manager) Allocate(asid addr.ASID, base addr.VA, length uint64, paBase addr.PA, perm addr.Perm) (*Segment, error) {
	if length == 0 {
		return nil, fmt.Errorf("segment: zero-length segment")
	}
	segs := m.byASID[asid]
	i := sort.Search(len(segs), func(i int) bool { return segs[i].Base > base })
	if i > 0 {
		prev := segs[i-1]
		if uint64(base-prev.Base) < prev.Length {
			return nil, ErrOverlap
		}
	}
	if i < len(segs) && uint64(segs[i].Base-base) < length {
		return nil, ErrOverlap
	}
	s := &Segment{ASID: asid, Base: base, Length: length, PABase: paBase, Perm: perm}
	if _, ok := m.Table.Alloc(s); !ok {
		return nil, ErrNoSlots
	}
	segs = append(segs, nil)
	copy(segs[i+1:], segs[i:])
	segs[i] = s
	m.byASID[asid] = segs
	if m.Table.Used() > m.MaxUsed {
		m.MaxUsed = m.Table.Used()
	}
	if m.Incremental {
		if err := m.Tree.Insert(TreeEntry{Key: MakeKey(asid, base), Value: s.ID}); err != nil {
			// Roll back the bookkeeping; the caller sees the failure.
			m.byASID[asid] = append(segs[:i], segs[i+1:]...)
			m.Table.Release(s.ID)
			return nil, err
		}
	} else {
		m.rebuildTree()
	}
	return s, nil
}

// Free removes a segment from the table and index.
func (m *Manager) Free(s *Segment) {
	segs := m.byASID[s.ASID]
	for i, x := range segs {
		if x == s {
			m.byASID[s.ASID] = append(segs[:i], segs[i+1:]...)
			break
		}
	}
	m.Table.Release(s.ID)
	if m.Incremental {
		m.Tree.Delete(MakeKey(s.ASID, s.Base))
		return
	}
	m.rebuildTree()
}

// Compact merges adjacent segments of the address space whose virtual and
// physical ranges are both contiguous and whose permissions match — the
// inverse of fragmentation, applied by the OS when table pressure builds
// (e.g. after many reservation promotions or frees). It returns the number
// of merges performed.
func (m *Manager) Compact(asid addr.ASID) int {
	segs := m.byASID[asid]
	merges := 0
	for i := 0; i+1 < len(segs); {
		a, b := segs[i], segs[i+1]
		if a.Base+addr.VA(a.Length) == b.Base &&
			a.PABase+addr.PA(a.Length) == b.PABase &&
			a.Perm == b.Perm {
			// Extend a over b and drop b.
			if m.Incremental {
				m.Tree.Delete(MakeKey(asid, b.Base))
			}
			a.Length += b.Length
			for page := range b.Touched {
				a.Touch(addr.PageToVA(page))
			}
			m.Table.Release(b.ID)
			segs = append(segs[:i+1], segs[i+2:]...)
			merges++
			continue
		}
		i++
	}
	m.byASID[asid] = segs
	if merges > 0 && !m.Incremental {
		m.rebuildTree()
	}
	return merges
}

// LookupSoft finds the segment covering (asid, va) functionally (the OS /
// simulator view; hardware uses the index tree walk).
func (m *Manager) LookupSoft(asid addr.ASID, va addr.VA) (*Segment, bool) {
	segs := m.byASID[asid]
	i := sort.Search(len(segs), func(i int) bool { return segs[i].Base > va })
	if i == 0 {
		return nil, false
	}
	s := segs[i-1]
	if s.Contains(asid, va) {
		return s, true
	}
	return nil, false
}

// Segments returns the address space's segments ordered by base.
func (m *Manager) Segments(asid addr.ASID) []*Segment { return m.byASID[asid] }

// Split replaces s with parts segments covering the same virtual range but
// backed by separate physical extents obtained from allocPhys. It models
// external fragmentation (the paper's index-cache study artificially breaks
// each segment into 10). The original physical extent is released via
// freePhys before the pieces are allocated.
func (m *Manager) Split(s *Segment, parts int,
	allocPhys func(frames uint64) (addr.PA, bool),
	freePhys func(pa addr.PA, frames uint64)) error {
	if parts < 2 {
		return fmt.Errorf("segment: split into %d parts", parts)
	}
	pages := s.Pages()
	if uint64(parts) > pages {
		parts = int(pages)
		if parts < 2 {
			return fmt.Errorf("segment: %d pages cannot split", pages)
		}
	}
	asid, base, perm := s.ASID, s.Base, s.Perm
	m.Free(s)
	freePhys(s.PABase, pages)
	per := pages / uint64(parts)
	rem := pages % uint64(parts)
	va := base
	for i := 0; i < parts; i++ {
		n := per
		if uint64(i) < rem {
			n++
		}
		pa, ok := allocPhys(n)
		if !ok {
			return fmt.Errorf("segment: out of physical memory during split")
		}
		if _, err := m.Allocate(asid, va, n*addr.PageSize, pa, perm); err != nil {
			return err
		}
		va += addr.VA(n * addr.PageSize)
	}
	return nil
}

// rebuildTree reconstructs the index tree from all live segments. Segment
// creation is rare relative to lookups, so a bulk rebuild keeps the tree
// perfectly balanced, matching the paper's depth-four bound for 2048
// segments.
func (m *Manager) rebuildTree() {
	entries := make([]TreeEntry, 0, m.Table.Used())
	for _, segs := range m.byASID {
		for _, s := range segs {
			entries = append(entries, TreeEntry{Key: MakeKey(s.ASID, s.Base), Value: s.ID})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	m.Tree.Build(entries)
	if m.OnRebuild != nil {
		m.OnRebuild()
	}
}
