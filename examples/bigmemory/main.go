// Big-memory scaling: the motivation for many-segment delayed translation.
//
// Fixed-granularity delayed TLBs stop helping once the page working set
// exceeds any affordable TLB (Figure 4 of the paper); variable-length
// segments translate the same workload with a handful of entries. This
// example sweeps the delayed TLB size on a GUPS-style random-access
// workload and then shows the many-segment translator handling it with a
// ~16-cycle warm walk.
package main

import (
	"fmt"
	"log"

	"hybridvc"
	"hybridvc/internal/core"
)

func main() {
	const workload = "gups"
	const insns = 100_000

	fmt.Println("delayed TLB scaling on gups (random access over ~1 GiB):")
	fmt.Printf("%-28s %-10s %s\n", "configuration", "cycles", "delayed-TLB MPKI")
	var first uint64
	for _, entries := range []int{1024, 4096, 16384, 65536} {
		sys, err := hybridvc.New(hybridvc.Config{
			Org:               hybridvc.HybridDelayedTLB,
			DelayedTLBEntries: entries,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadWorkload(workload); err != nil {
			log.Fatal(err)
		}
		report, err := sys.Run(insns)
		if err != nil {
			log.Fatal(err)
		}
		mmu := sys.Mem.(*core.HybridMMU)
		mpki := 1000 * float64(mmu.DelayedTLBMisses.Value()) / float64(report.Instructions)
		fmt.Printf("%-28s %-10d %.1f\n",
			fmt.Sprintf("delayed TLB, %5d entries", entries), report.Cycles, mpki)
		if first == 0 {
			first = report.Cycles
		}
	}

	sys, err := hybridvc.New(hybridvc.Config{Org: hybridvc.HybridManySegSC})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.LoadWorkload(workload); err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run(insns)
	if err != nil {
		log.Fatal(err)
	}
	mmu := sys.Mem.(*core.HybridMMU)
	fmt.Printf("%-28s %-10d (SC hit rate %.1f%%, %d segments cover the heap)\n",
		"many-segment + SC", report.Cycles,
		100*mmu.Translator().SC.Stats.HitRate(),
		sys.Kernel.MaxSegments())
	fmt.Printf("\nmany-segment speedup over the 1K delayed TLB: %.2fx\n",
		float64(first)/float64(report.Cycles))
}
