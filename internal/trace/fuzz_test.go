package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/workload"
)

func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), true, false, false, uint64(0x2000))
	f.Add(uint64(0), false, false, false, uint64(0))
	f.Add(uint64(1)<<47, true, true, true, uint64(0xfff))
	f.Fuzz(func(t *testing.T, va1 uint64, store, dep, shared bool, va2 uint64) {
		ins := []workload.Insn{
			{IsMem: true, IsStore: store, DependsOnPrev: dep, Shared: shared,
				VA: addr.VA(va1 % (1 << addr.VABits))},
			{}, // an ALU instruction
			{IsMem: true, VA: addr.VA(va2 % (1 << addr.VABits))},
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, in := range ins {
			if err := w.Write(in); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(&buf)
		for i, want := range ins {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("record %d: %+v != %+v", i, got, want)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("want EOF, got %v", err)
		}
	})
}

// FuzzReaderNeverPanics hammers the reader with damaged streams. Two
// properties must hold on every input: Next never panics, and every
// terminating error is either a clean io.EOF (possible only at a record
// boundary) or a typed *CorruptError — no untyped failures leak out.
// The corpus seeds the damage classes corruption tests cover: torn
// headers, mid-record truncations at every prefix of a small valid
// trace, and single bit flips.
func FuzzReaderNeverPanics(f *testing.F) {
	f.Add([]byte("HVCT\x01\x01\x80\x80"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	// A small valid trace, hand-assembled so the seeds are deterministic:
	// an ALU op, two memory ops (forward then backward delta), a store.
	var valid bytes.Buffer
	valid.Write(magic[:])
	valid.WriteByte(0)
	for _, delta := range []int64{0x4000, -0x1000, 0x40} {
		var tmp [binary.MaxVarintLen64]byte
		flags := byte(flagMem)
		if delta == 0x40 {
			flags |= flagStore
		}
		valid.WriteByte(flags)
		valid.Write(tmp[:binary.PutVarint(tmp[:], delta)])
	}
	whole := valid.Bytes()
	f.Add(whole)
	for i := 1; i < len(whole); i++ { // every truncation point
		f.Add(whole[:i])
	}
	for i := 0; i < len(whole); i++ { // a bit flip in every byte
		flipped := bytes.Clone(whole)
		flipped[i] ^= 1 << (i % 8)
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			_, err := r.Next()
			if err == nil {
				continue
			}
			var ce *CorruptError
			if err != io.EOF && !errors.As(err, &ce) {
				t.Fatalf("untyped error %v (%T): want io.EOF or *CorruptError", err, err)
			}
			return
		}
	})
}
