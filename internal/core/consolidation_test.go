package core

import (
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/virt"
)

// setupTwoVMs consolidates two VMs onto one (2-core) VirtHybridMMU.
func setupTwoVMs(t *testing.T) (*VirtHybridMMU, *virt.Hypervisor, *virt.VM, *virt.VM) {
	t.Helper()
	hv := virt.NewHypervisor(4 << 30)
	vmA, err := hv.NewVM(512<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	vmB, err := hv.NewVM(512<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultVirtHybridConfig(2)
	cfg.Hier.L1D = cache.Config{Name: "L1D", SizeBytes: 1 << 10, Ways: 2, HitLatency: 4}
	cfg.Hier.L2 = cache.Config{Name: "L2", SizeBytes: 4 << 10, Ways: 4, HitLatency: 6}
	cfg.Hier.LLC = cache.Config{Name: "LLC", SizeBytes: 32 << 10, Ways: 8, HitLatency: 27}
	m := NewVirtHybridMMU(cfg, vmA, hv)
	m.AddVM(vmB)
	return m, hv, vmA, vmB
}

func TestVMsCannotShareVirtualLines(t *testing.T) {
	// Section V: "a VM cannot access virtually-addressed cachelines of
	// another VM, since their ASIDs do not match." Two VMs map the same
	// gVA; each caches under its own VMID-extended name.
	m, _, vmA, vmB := setupTwoVMs(t)
	pA, _ := vmA.Kernel.NewProcess()
	pB, _ := vmB.Kernel.NewProcess()
	gvaA, _ := pA.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	gvaB, _ := pB.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	if gvaA != gvaB {
		t.Fatalf("setup: gVAs differ (%#x vs %#x)", uint64(gvaA), uint64(gvaB))
	}
	if pA.ASID == pB.ASID {
		t.Fatal("cross-VM ASID collision")
	}

	r1 := m.Access(Request{Core: 0, Kind: cache.Write, VA: gvaA, Proc: pA})
	if r1.Fault {
		t.Fatal("fault")
	}
	// VM B's access to the same gVA must MISS (different ASID name) and
	// resolve to a different machine address.
	r2 := m.Access(Request{Core: 1, Kind: cache.Read, VA: gvaB, Proc: pB})
	if !r2.LLCMiss {
		t.Error("VM B hit VM A's virtually named line")
	}
	if m.Hier.LLC().Probe(addr.VirtName(pA.ASID, gvaA)) == nil ||
		m.Hier.LLC().Probe(addr.VirtName(pB.ASID, gvaB)) == nil {
		t.Error("per-VM lines not both cached")
	}
	// Machine addresses differ (separate host backings).
	gpaA, _ := pA.PT.Translate(gvaA)
	gpaB, _ := pB.PT.Translate(gvaB)
	maA, _ := vmA.TranslateGPA(addr.GPA(gpaA))
	maB, _ := vmB.TranslateGPA(addr.GPA(gpaB))
	if maA == maB {
		t.Error("distinct VMs share a machine frame without sharing")
	}
}

func TestCrossVMHypervisorSharing(t *testing.T) {
	// Hypervisor-induced sharing across VMs: one machine frame, two gVAs
	// in two VMs. Both host filters flag; both cache physically; the
	// second VM hits the first's physically named line.
	m, hv, vmA, vmB := setupTwoVMs(t)
	pA, _ := vmA.Kernel.NewProcess()
	pB, _ := vmB.Kernel.NewProcess()
	gvaA, _ := pA.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	gvaB, _ := pB.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	vmA.TrackProcessRegion(pA, gvaA, addr.PageSize)
	vmB.TrackProcessRegion(pB, gvaB, addr.PageSize)
	pteA, _ := pA.PT.Lookup(gvaA)
	pteB, _ := pB.PT.Lookup(gvaB)
	if err := hv.ShareGuestFrames(vmA, pteA.Frame, vmB, pteB.Frame); err != nil {
		t.Fatal(err)
	}

	w := m.Access(Request{Core: 0, Kind: cache.Write, VA: gvaA, Proc: pA})
	if w.Fault {
		t.Fatal("fault on shared write")
	}
	r := m.Access(Request{Core: 1, Kind: cache.Read, VA: gvaB, Proc: pB})
	if r.Fault {
		t.Fatal("fault on shared read")
	}
	if r.LLCMiss {
		t.Error("cross-VM shared data not found under its single machine name")
	}
	if m.TrueSynonymAccesses.Value() != 2 {
		t.Errorf("true synonym accesses = %d, want 2", m.TrueSynonymAccesses.Value())
	}
}

func TestConsolidatedDelayedTranslationIsPerVM(t *testing.T) {
	// Each VM's delayed translation composes through its own guest
	// segments and host segments.
	m, _, vmA, vmB := setupTwoVMs(t)
	pA, _ := vmA.Kernel.NewProcess()
	pB, _ := vmB.Kernel.NewProcess()
	gvaA, _ := pA.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	gvaB, _ := pB.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	maA, _, okA := m.delayed2D(0, pA, gvaA+0x40, false)
	maB, _, okB := m.delayed2D(0, pB, gvaB+0x40, false)
	if !okA || !okB {
		t.Fatal("delayed translation failed")
	}
	gpaA, _ := pA.PT.Translate(gvaA + 0x40)
	wantA, _ := vmA.TranslateGPA(addr.GPA(gpaA))
	gpaB, _ := pB.PT.Translate(gvaB + 0x40)
	wantB, _ := vmB.TranslateGPA(addr.GPA(gpaB))
	if maA != wantA || maB != wantB {
		t.Errorf("composition wrong: %#x/%#x want %#x/%#x",
			uint64(maA), uint64(maB), uint64(wantA), uint64(wantB))
	}
	if maA == maB {
		t.Error("two VMs' private data at one machine address")
	}
}
