package segment

import (
	"math/rand"
	"sort"
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/mem"
)

func newTree() (*IndexTree, *NodeArena) {
	arena := NewNodeArena(mem.NewAllocator(1 << 30))
	return NewIndexTree(arena), arena
}

func TestInsertBuildsValidTree(t *testing.T) {
	tree, _ := newTree()
	asid := addr.MakeASID(0, 1)
	// Insert 2048 keys in random order.
	perm := rand.New(rand.NewSource(81)).Perm(2048)
	for _, i := range perm {
		e := TreeEntry{Key: MakeKey(asid, addr.VA(i)<<21), Value: ID(i)}
		if err := tree.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 2048 {
		t.Fatalf("len = %d", tree.Len())
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every key resolves; interior addresses resolve to the predecessor.
	for i := 0; i < 2048; i += 31 {
		va := addr.VA(i) << 21
		id, _ := tree.Lookup(asid, va)
		if id != ID(i) {
			t.Fatalf("lookup %d = %d", i, id)
		}
		id2, _ := tree.Lookup(asid, va+0x1234)
		if id2 != ID(i) {
			t.Fatalf("interior lookup %d = %d", i, id2)
		}
	}
	// Incremental trees run at a partial fill factor.
	ff := tree.FillFactor()
	if ff < 0.4 || ff > 0.95 {
		t.Errorf("fill factor = %.2f, expected mid-range", ff)
	}
	// Depth exceeds the packed depth-4 bound because of the fill factor.
	if tree.Depth() < 4 {
		t.Errorf("depth = %d", tree.Depth())
	}
}

func TestInsertDuplicateRejected(t *testing.T) {
	tree, _ := newTree()
	asid := addr.MakeASID(0, 1)
	e := TreeEntry{Key: MakeKey(asid, 0x1000), Value: 1}
	if err := tree.Insert(e); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(e); err == nil {
		t.Error("duplicate insert accepted")
	}
	if tree.Len() != 1 {
		t.Errorf("len = %d after duplicate", tree.Len())
	}
}

func TestDeleteAndPredecessorAcrossDrainedLeaves(t *testing.T) {
	// The lazy-deletion hazard: delete a separator key, insert a segment
	// whose range crosses the stale separator, and look up beyond it. The
	// leaf chain must find the predecessor in the left sibling.
	tree, _ := newTree()
	asid := addr.MakeASID(0, 1)
	// Enough keys to force several leaves.
	for i := 0; i < 32; i++ {
		if err := tree.Insert(TreeEntry{Key: MakeKey(asid, addr.VA(i)*0x10000), Value: ID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a whole leaf's worth of middle keys.
	for i := 10; i < 20; i++ {
		if !tree.Delete(MakeKey(asid, addr.VA(i)*0x10000)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tree.Delete(MakeKey(asid, 0x999999)) {
		t.Error("deleting absent key succeeded")
	}
	// A lookup in the drained range must find key 9 via the leaf chain.
	id, path := tree.Lookup(asid, addr.VA(15)*0x10000+0x42)
	if id != 9 {
		t.Fatalf("lookup across drained leaves = %d, want 9", id)
	}
	if len(path) == 0 {
		t.Error("no path recorded")
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalMatchesReferenceUnderChurn(t *testing.T) {
	tree, _ := newTree()
	asid := addr.MakeASID(0, 1)
	rng := rand.New(rand.NewSource(91))
	refKeys := map[Key]ID{}
	for step := 0; step < 5000; step++ {
		k := MakeKey(asid, addr.VA(rng.Uint64()%(1<<30)) & ^addr.VA(0xfff))
		switch {
		case rng.Intn(3) != 0:
			if _, dup := refKeys[k]; dup {
				continue
			}
			v := ID(step % TableCapacity)
			if err := tree.Insert(TreeEntry{Key: k, Value: v}); err != nil {
				t.Fatal(err)
			}
			refKeys[k] = v
		default:
			got := tree.Delete(k)
			_, want := refKeys[k]
			if got != want {
				t.Fatalf("step %d: delete = %v want %v", step, got, want)
			}
			delete(refKeys, k)
		}
		if step%500 == 0 {
			if err := tree.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tree.Len() != len(refKeys) {
		t.Fatalf("len = %d want %d", tree.Len(), len(refKeys))
	}
	// Sorted reference for predecessor queries.
	keys := make([]Key, 0, len(refKeys))
	for k := range refKeys {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	rng2 := rand.New(rand.NewSource(92))
	for trial := 0; trial < 3000; trial++ {
		va := addr.VA(rng2.Uint64() % (1 << 30))
		k := MakeKey(asid, va)
		i := sort.Search(len(keys), func(i int) bool { return keys[i] > k })
		want := NoID
		if i > 0 {
			want = refKeys[keys[i-1]]
		}
		got, _ := tree.Lookup(asid, va)
		if got != want {
			t.Fatalf("lookup %#x = %d want %d", uint64(va), got, want)
		}
	}
}

func TestIncrementalManagerEndToEnd(t *testing.T) {
	alloc := mem.NewAllocator(1 << 32)
	m := NewManager(NewNodeArena(alloc))
	m.Incremental = true
	flushes := 0
	m.OnRebuild = func() { flushes++ }
	asid := addr.MakeASID(0, 1)
	var segs []*Segment
	for i := 0; i < 200; i++ {
		pa, _ := alloc.AllocContiguous(16)
		s, err := m.Allocate(asid, addr.VA(i)<<20, 16*addr.PageSize, pa, addr.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, s)
	}
	// Incremental mode never rebuilds (no index cache flushes).
	if flushes != 0 {
		t.Errorf("%d rebuild flushes in incremental mode", flushes)
	}
	// Free half, keep translating correctly.
	for i := 0; i < 200; i += 2 {
		m.Free(segs[i])
		alloc.Free(segs[i].PABase, segs[i].Pages())
	}
	for i := 1; i < 200; i += 2 {
		va := addr.VA(i)<<20 + 0x2345
		id, _ := m.Tree.Lookup(asid, va)
		if id != segs[i].ID {
			t.Fatalf("segment %d: tree ID %d want %d", i, id, segs[i].ID)
		}
	}
	// Freed ranges fault.
	if id, _ := m.Tree.Lookup(asid, addr.VA(0)<<20); id != NoID {
		if s := m.Table.Get(id); s != nil && s.Contains(asid, 0) {
			t.Error("freed range still translates")
		}
	}
}

func TestIncrementalTranslatorKeepsIndexCacheWarm(t *testing.T) {
	// The practical payoff of incremental maintenance: allocating a new
	// segment does not move existing node addresses, so the index cache
	// stays warm — unlike the bulk rebuild.
	alloc := mem.NewAllocator(1 << 32)
	m := NewManager(NewNodeArena(alloc))
	m.Incremental = true
	ic := NewIndexCache(32 << 10)
	m.OnRebuild = ic.Flush
	asid := addr.MakeASID(0, 1)
	pa, _ := alloc.AllocContiguous(256)
	s0, _ := m.Allocate(asid, 0, 256*addr.PageSize, pa, addr.PermRW)
	tr := NewTranslator(DefaultTranslatorConfig(), nil, ic, m)
	tr.Translate(asid, s0.Base)
	warm := tr.Translate(asid, s0.Base)
	if warm.ICMisses != 0 {
		t.Fatal("setup: walk not warm")
	}
	pa2, _ := alloc.AllocContiguous(16)
	if _, err := m.Allocate(asid, 1<<30, 16*addr.PageSize, pa2, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	after := tr.Translate(asid, s0.Base)
	if after.ICMisses != 0 {
		t.Errorf("index cache went cold after an incremental insert (%d misses)", after.ICMisses)
	}
}
