// Command tablegen regenerates the paper's tables and figures from the
// simulator. Each experiment prints the same rows/series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	tablegen -exp table1|table2|table3|fig4|fig7a|fig7b|fig9|fig10|fig11|latency|ablations|all [-full]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hybridvc/experiments"
	"hybridvc/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, table2, table3, fig4, fig7a, fig7b, fig9, fig10, fig11, multicore, consolidation, latency, ablations, all)")
	full := flag.Bool("full", false, "run at full (paper-length) scale instead of quick scale")
	outDir := flag.String("out", "", "also write each table as CSV into this directory")
	flag.Parse()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "tablegen:", err)
			os.Exit(1)
		}
	}

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}

	runners := map[string]func() []*stats.Table{
		"table1": func() []*stats.Table {
			_, t := experiments.TableI(scale)
			return []*stats.Table{t}
		},
		"table2": func() []*stats.Table {
			_, t := experiments.TableII(scale)
			return []*stats.Table{t}
		},
		"table3": func() []*stats.Table {
			_, t := experiments.TableIII(scale)
			return []*stats.Table{t}
		},
		"fig4": func() []*stats.Table {
			_, t := experiments.Figure4(scale)
			return []*stats.Table{t}
		},
		"fig7a": func() []*stats.Table {
			_, t := experiments.Figure7a(scale)
			return []*stats.Table{t}
		},
		"fig7b": func() []*stats.Table {
			_, t := experiments.Figure7b(scale)
			return []*stats.Table{t}
		},
		"fig9": func() []*stats.Table {
			_, t := experiments.Figure9(scale)
			return []*stats.Table{t}
		},
		"fig10": func() []*stats.Table {
			_, t := experiments.Figure10(scale)
			return []*stats.Table{t}
		},
		"fig11": func() []*stats.Table {
			_, t := experiments.Figure11(scale)
			return []*stats.Table{t}
		},
		"consolidation": func() []*stats.Table {
			return []*stats.Table{experiments.Consolidation(scale)}
		},
		"multicore": func() []*stats.Table {
			_, t := experiments.Multicore(scale)
			return []*stats.Table{t}
		},
		"latency": func() []*stats.Table {
			return []*stats.Table{experiments.SegmentWalkLatency(scale)}
		},
		"ablations": func() []*stats.Table {
			return []*stats.Table{
				experiments.AblationFilterDesign(scale),
				experiments.AblationSegmentCache(scale),
				experiments.AblationHugePages(scale),
				experiments.AblationSerialParallel(scale),
			}
		},
	}
	order := []string{"table1", "table2", "table3", "fig4", "fig7a", "fig7b",
		"fig9", "fig10", "fig11", "multicore", "consolidation", "latency", "ablations"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else if _, ok := runners[*exp]; ok {
		selected = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "tablegen: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	for _, name := range selected {
		start := time.Now()
		for i, t := range runners[name]() {
			fmt.Println(t)
			if *outDir != "" {
				path := filepath.Join(*outDir, fmt.Sprintf("%s_%d.csv", name, i))
				if err := writeCSV(path, t); err != nil {
					fmt.Fprintln(os.Stderr, "tablegen:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func writeCSV(path string, t *stats.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
