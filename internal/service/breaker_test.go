package service

import (
	"testing"
	"time"
)

// fakeClock steps a breaker through time deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }
func newTestBreaker(threshold time.Duration, trips int, cooldown time.Duration) (*breaker, *fakeClock) {
	b := newBreaker(threshold, trips, cooldown)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	b.now = clk.now
	return b, clk
}

// TestBreakerStateMachine walks the full closed → open → half-open →
// closed cycle and the half-open → open relapse, on an injected clock.
func TestBreakerStateMachine(t *testing.T) {
	b, clk := newTestBreaker(100*time.Millisecond, 3, 5*time.Second)

	// Closed: fast pickups keep it closed; slow streaks below the trip
	// count reset on a fast one.
	for i := 0; i < 2; i++ {
		b.observe(200 * time.Millisecond)
	}
	b.observe(10 * time.Millisecond) // resets consec
	b.observe(200 * time.Millisecond)
	b.observe(200 * time.Millisecond)
	if st, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state = %s, want closed (streak was reset)", st)
	}
	if !b.admit() {
		t.Fatal("closed breaker refused admission")
	}

	// Third consecutive slow pickup trips it.
	b.observe(200 * time.Millisecond)
	st, tripped, _ := b.snapshot()
	if st != BreakerOpen || tripped != 1 {
		t.Fatalf("state/tripped = %s/%d, want open/1", st, tripped)
	}
	if b.admit() {
		t.Fatal("open breaker admitted a fresh submission")
	}
	if _, _, shed := b.snapshot(); shed != 1 {
		t.Fatalf("shed = %d, want 1", shed)
	}
	if ra := b.retryAfter(); ra < 1 || ra > 5 {
		t.Fatalf("retryAfter = %d, want within cooldown", ra)
	}

	// Cooldown elapses → half-open admits a probe.
	clk.advance(5 * time.Second)
	if !b.admit() {
		t.Fatal("breaker did not half-open after cooldown")
	}
	if st, _, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", st)
	}

	// Slow probe relapses to open.
	b.observe(200 * time.Millisecond)
	if st, tripped, _ := b.snapshot(); st != BreakerOpen || tripped != 2 {
		t.Fatalf("state/tripped = %s/%d, want open/2 after slow probe", st, tripped)
	}

	// Second cooldown, fast probe closes it for good.
	clk.advance(5 * time.Second)
	if !b.admit() {
		t.Fatal("no probe admitted after second cooldown")
	}
	b.observe(10 * time.Millisecond)
	if st, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state = %s, want closed after fast probe", st)
	}
	if !b.admit() {
		t.Fatal("closed breaker refused admission after recovery")
	}
}

// TestBreakerDisabled: a zero threshold never sheds and never trips.
func TestBreakerDisabled(t *testing.T) {
	b, _ := newTestBreaker(0, 1, time.Second)
	for i := 0; i < 10; i++ {
		b.observe(time.Hour)
		if !b.admit() {
			t.Fatal("disabled breaker shed a submission")
		}
	}
	if st, tripped, shed := b.snapshot(); st != BreakerClosed || tripped != 0 || shed != 0 {
		t.Fatalf("disabled breaker reported %s/%d/%d", st, tripped, shed)
	}
}

// TestBreakerStateValue pins the gauge mapping.
func TestBreakerStateValue(t *testing.T) {
	for state, want := range map[string]float64{
		BreakerClosed: 0, BreakerHalfOpen: 1, BreakerOpen: 2,
	} {
		if got := BreakerStateValue(state); got != want {
			t.Errorf("BreakerStateValue(%s) = %v, want %v", state, got, want)
		}
	}
}
