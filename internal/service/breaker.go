package service

import (
	"sync"
	"time"
)

// Breaker states, exported as the hvcd_breaker_state gauge (and the
// string form in /readyz and MetricsSnapshot).
const (
	BreakerClosed   = "closed"    // gauge 0: admitting fresh work
	BreakerHalfOpen = "half-open" // gauge 1: probing after a cooldown
	BreakerOpen     = "open"      // gauge 2: shedding fresh submissions
)

// BreakerStateValue maps a breaker state string to its gauge value.
func BreakerStateValue(state string) float64 {
	switch state {
	case BreakerHalfOpen:
		return 1
	case BreakerOpen:
		return 2
	default:
		return 0
	}
}

// breaker is the daemon's overload circuit breaker. It watches the one
// signal that directly measures overload — how long jobs sat in the
// queue before a worker picked them up (the same quantity the
// hvcd_queue_wait_seconds histogram records) — and trips when that wait
// exceeds the threshold for `trips` consecutive pickups. While open,
// fresh submissions are shed with ErrOverloaded (HTTP 503 + Retry-After)
// but deduplicated, cached and disk-served results keep flowing: the
// daemon degrades to a read-mostly cache instead of collapsing under a
// queue it can no longer drain. After the cooldown the breaker goes
// half-open and the next pickup decides: a fast one closes it, a slow
// one re-opens it for another cooldown.
//
// A zero threshold disables the breaker entirely (always closed).
type breaker struct {
	threshold time.Duration
	trips     int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu       sync.Mutex
	state    string
	consec   int       // consecutive over-threshold pickups while closed
	openedAt time.Time // last closed/half-open → open transition
	tripped  uint64    // total open transitions
	shed     uint64    // submissions rejected while open
}

// newBreaker builds a breaker; threshold <= 0 disables it.
func newBreaker(threshold time.Duration, trips int, cooldown time.Duration) *breaker {
	if trips < 1 {
		trips = 1
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{
		threshold: threshold,
		trips:     trips,
		cooldown:  cooldown,
		now:       time.Now,
		state:     BreakerClosed,
	}
}

// admit reports whether a fresh submission may be enqueued, counting the
// shed ones. An open breaker whose cooldown has elapsed transitions to
// half-open and admits the probe.
func (b *breaker) admit() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.consec = 0
		} else {
			b.shed++
			return false
		}
	}
	return true
}

// observe records one job's queue wait at worker pickup and drives the
// state machine.
func (b *breaker) observe(queueWait time.Duration) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	slow := queueWait > b.threshold
	switch b.state {
	case BreakerClosed:
		if !slow {
			b.consec = 0
			return
		}
		b.consec++
		if b.consec >= b.trips {
			b.trip()
		}
	case BreakerHalfOpen:
		if slow {
			b.trip()
		} else {
			b.state = BreakerClosed
			b.consec = 0
		}
	case BreakerOpen:
		// Jobs admitted before the trip are still draining; their waits
		// carry no new information about the post-trip queue.
	}
}

// trip opens the breaker. Caller holds b.mu.
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.tripped++
	b.consec = 0
}

// snapshot returns the state string and counters.
func (b *breaker) snapshot() (state string, tripped, shed uint64) {
	if b.threshold <= 0 {
		return BreakerClosed, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.tripped, b.shed
}

// retryAfter estimates whole seconds until the breaker could admit again
// (the Retry-After header on shed submissions). At least 1.
func (b *breaker) retryAfter() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 1
	}
	left := b.cooldown - b.now().Sub(b.openedAt)
	secs := int((left + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
