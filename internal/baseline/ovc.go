package baseline

import (
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/energy"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/stats"
	"hybridvc/internal/tlb"
)

// OVC models opportunistic virtual caching (the paper's closest prior
// work): only the L1 is virtually addressed, and only for non-synonym
// data; L2 and LLC remain physical, so every L1 miss still pays address
// translation. It reduces TLB *energy* (the TLB is probed only on L1
// misses and synonym accesses) but cannot reduce TLB *miss latency* the
// way full-hierarchy delayed translation does — the comparison the
// paper's Section II draws.
//
// The model is single-core: OVC's original coherence scheme (reverse
// physical tags in the L1) is represented functionally by the single-name
// discipline, not by a multi-core protocol.
type OVC struct {
	*core.Base
	kernel *osmodel.Kernel
	tlb    *tlb.TwoLevel

	// L1VirtualHits counts L1 hits served without any translation.
	L1VirtualHits stats.Counter
	// L1MissTranslations counts TLB lookups caused by L1 misses.
	L1MissTranslations stats.Counter
}

// NewOVC builds the OVC baseline; the hierarchy config must be single-core.
func NewOVC(cfg Config, k *osmodel.Kernel) *OVC {
	if cfg.Hier.NumCores != 1 {
		panic("baseline: OVC model is single-core")
	}
	o := &OVC{
		Base:   core.NewBase(cfg.Hier, cfg.DRAM, cfg.Energy),
		kernel: k,
		tlb:    tlb.NewTwoLevel(tlb.DefaultTwoLevelConfig()),
	}
	k.AttachSink(o)
	return o
}

// Name implements core.MemSystem.
func (o *OVC) Name() string { return "ovc" }

// Energy implements core.MemSystem.
func (o *OVC) Energy() *energy.Accumulator { return o.Acc }

// Hierarchy implements core.MemSystem.
func (o *OVC) Hierarchy() *cache.Hierarchy { return o.Hier }

// l1For returns the L1 array used by the access kind.
func (o *OVC) l1For(kind cache.AccessKind) *cache.Cache {
	if kind == cache.Fetch {
		return o.Hier.L1I(0)
	}
	return o.Hier.L1D(0)
}

// translate runs the two-level TLB + walk, charging energy and latency.
func (o *OVC) translate(req core.Request) (addr.PA, addr.Perm, uint64, bool) {
	o.Acc.Access(energy.L1TLB, 1)
	tres := o.tlb.Lookup(req.Proc.ASID, req.VA.Page())
	var lat uint64
	if tres.Level == 0 {
		o.Acc.Access(energy.L2TLB, 1)
		lat += o.tlb.L2.Config().Latency
		leaf, wlat, ok := o.timedWalk(req.Proc, req.VA.PageAligned())
		lat += wlat
		if !ok {
			return 0, 0, lat, false
		}
		o.tlb.Insert(tlb.Entry{
			ASID: req.Proc.ASID, VPN: req.VA.Page(), PFN: leaf.Frame,
			Perm: leaf.Perm, Shared: leaf.Shared,
		})
		return leaf.PA(req.VA), leaf.Perm, lat, true
	}
	if tres.Level == 2 {
		o.Acc.Access(energy.L2TLB, 1)
		lat += o.tlb.L2.Config().Latency
	}
	return addr.FrameToPA(tres.Entry.PFN) + addr.PA(req.VA.PageOffset()),
		tres.Entry.Perm, lat, true
}

// timedWalk fetches PTEs through the physical L2/LLC path (page walkers
// bypass the L1).
func (o *OVC) timedWalk(proc *osmodel.Process, va addr.VA) (core.WalkLeaf, uint64, bool) {
	o.Acc.Access(energy.PageWalk, 1)
	path, leaf, found := proc.PT.WalkPath(va)
	var lat uint64
	for _, slot := range path {
		o.WalkSteps.Inc()
		lat += o.physL2Access(cache.Read, slot, addr.PermRO)
	}
	if !found {
		return core.WalkLeaf{}, lat, false
	}
	return core.WalkLeaf{Frame: leaf.Frame, Perm: leaf.Perm, Shared: leaf.Shared}, lat, true
}

// physL2Access runs the L2 -> LLC -> DRAM physical path (no L1), filling
// on the way back and preserving inclusion manually.
func (o *OVC) physL2Access(kind cache.AccessKind, pa addr.PA, perm addr.Perm) uint64 {
	n := addr.PhysName(pa)
	l2 := o.Hier.L2(0)
	lat := l2.Config().HitLatency
	if l := l2.Access(n); l != nil {
		if kind == cache.Write {
			l.State = cache.Modified
		}
		return lat
	}
	llc := o.Hier.LLC()
	lat += llc.Config().HitLatency
	if l := llc.Access(n); l == nil {
		lat += o.DRAM.Access(pa)
		if v, evicted := llc.Fill(n, cache.Exclusive, perm); evicted {
			o.backInvalidate(v.Name)
		}
	}
	st := cache.Exclusive
	if kind == cache.Write {
		st = cache.Modified
	}
	if v, evicted := l2.Fill(n, st, perm); evicted && v.Dirty {
		if l := llc.Probe(v.Name); l != nil {
			l.State = cache.Modified
		}
	}
	return lat
}

// backInvalidate preserves LLC inclusion over the private levels.
func (o *OVC) backInvalidate(n addr.Name) {
	o.Hier.L1D(0).Invalidate(n)
	o.Hier.L1I(0).Invalidate(n)
	o.Hier.L2(0).Invalidate(n)
	// Virtual L1 lines whose physical home left the LLC are tracked via
	// the name they were filled under; OVC keeps a reverse physical tag
	// for this. We model it by flushing matching virtual lines lazily on
	// miss (functional effect: none, since data contents are not modeled
	// and translations stay valid).
}

// Access implements core.MemSystem.
func (o *OVC) Access(req core.Request) core.Result {
	var res core.Result
	l1 := o.l1For(req.Kind)

	candidate := req.Proc.Filter.IsCandidate(req.VA)
	if !candidate {
		// Virtual L1 path: a hit needs no translation at all.
		vname := addr.VirtName(req.Proc.ASID, req.VA)
		res.Latency += l1.Config().HitLatency
		if l := l1.Access(vname); l != nil {
			if req.Kind == cache.Write {
				if !l.Perm.AllowsWrite() {
					fl, fixed := o.HandleFault(req.Proc, req.VA, true)
					res.Latency += fl
					res.Fault = true
					if !fixed {
						return res
					}
					return o.retry(req, res)
				}
				l.State = cache.Modified
			}
			o.L1VirtualHits.Inc()
			res.HitLevel = 1
			return res
		}
		// L1 miss: translate, then the physical outer hierarchy.
		o.L1MissTranslations.Inc()
		pa, perm, lat, ok := o.translate(req)
		res.Latency += lat
		if !ok {
			fl, fixed := o.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
			res.Latency += fl
			res.Fault = true
			if !fixed {
				return res
			}
			return o.retry(req, res)
		}
		if req.Kind == cache.Write && !perm.AllowsWrite() {
			fl, fixed := o.HandleFault(req.Proc, req.VA, true)
			res.Latency += fl
			res.Fault = true
			if !fixed {
				return res
			}
			return o.retry(req, res)
		}
		res.Latency += o.physL2Access(req.Kind, pa, perm)
		st := cache.Exclusive
		if req.Kind == cache.Write {
			st = cache.Modified
		}
		if v, evicted := l1.Fill(vname, st, perm); evicted && v.Dirty && !v.Name.Synonym {
			// A dirty virtual victim needs translation to write back.
			o.Acc.Access(energy.L1TLB, 1)
		}
		return res
	}

	// Synonym candidate: conventional path, physical L1.
	pa, perm, lat, ok := o.translate(req)
	res.Latency += lat
	if !ok {
		fl, fixed := o.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return res
		}
		return o.retry(req, res)
	}
	if req.Kind == cache.Write && !perm.AllowsWrite() {
		fl, fixed := o.HandleFault(req.Proc, req.VA, true)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return res
		}
		return o.retry(req, res)
	}
	pname := addr.PhysName(pa)
	res.Latency += l1.Config().HitLatency
	if l := l1.Access(pname); l != nil {
		if req.Kind == cache.Write {
			l.State = cache.Modified
		}
		res.HitLevel = 1
		return res
	}
	res.Latency += o.physL2Access(req.Kind, pa, perm)
	st := cache.Exclusive
	if req.Kind == cache.Write {
		st = cache.Modified
	}
	l1.Fill(pname, st, perm)
	return res
}

// retry re-executes the access once after a fault fixed the mapping.
func (o *OVC) retry(req core.Request, res core.Result) core.Result {
	r2 := o.Access(req)
	res.Latency += r2.Latency
	res.LLCMiss = r2.LLCMiss
	res.HitLevel = r2.HitLevel
	return res
}

// --- osmodel.ShootdownSink ---

// TLBShootdown implements the sink.
func (o *OVC) TLBShootdown(asid addr.ASID, vpn uint64) {
	o.tlb.Shootdown(asid, vpn)
}

// FlushPage implements the sink; virtual L1 lines of the page flush too.
func (o *OVC) FlushPage(page addr.Name) {
	o.Hier.L1D(0).FlushPage(page)
	o.Hier.L1I(0).FlushPage(page)
	if page.Synonym {
		o.Hier.L2(0).FlushPage(page)
		o.Hier.LLC().FlushPage(page)
	}
}

// SetPagePerm implements the sink.
func (o *OVC) SetPagePerm(page addr.Name, perm addr.Perm) {
	o.Hier.L1D(0).SetPagePerm(page, perm)
	if !page.Synonym {
		o.TLBShootdown(page.ASID, page.Page())
	}
}

// FilterUpdate implements the sink.
func (o *OVC) FilterUpdate(addr.ASID) {}

// FlushASID implements the sink: virtual L1 lines and TLB entries of the
// address space are removed.
func (o *OVC) FlushASID(asid addr.ASID) {
	o.tlb.FlushASID(asid)
	match := func(n addr.Name) bool { return !n.Synonym && n.ASID == asid }
	o.Hier.L1D(0).FlushMatching(match)
	o.Hier.L1I(0).FlushMatching(match)
}
