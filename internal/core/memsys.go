// Package core implements the paper's primary contribution: the hybrid
// virtual caching MMU. The entire cache hierarchy is virtually addressed
// (ASID+VA) for non-synonym pages with translation delayed until LLC
// misses (through a delayed TLB or the scalable many-segment translator),
// while synonym candidates — detected by the Bloom-filter synonym filter —
// take a conventional pre-L1 TLB path and are cached physically.
//
// The package also defines the MemSystem interface and shared plumbing
// (physical access path, timed page walker) that the baseline
// organizations in internal/baseline build on.
package core

import (
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/energy"
	"hybridvc/internal/mem"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/stats"
)

// Request is one memory reference presented to a memory system.
type Request struct {
	// Core is the issuing core index.
	Core int
	// Kind is Read, Write, or Fetch.
	Kind cache.AccessKind
	// VA is the (guest) virtual address.
	VA addr.VA
	// Proc is the issuing process.
	Proc *osmodel.Process
}

// Result reports the outcome of a reference.
type Result struct {
	// Latency is the end-to-end memory access latency in cycles.
	Latency uint64
	// LLCMiss reports that the data came from DRAM.
	LLCMiss bool
	// HitLevel is the cache level that supplied the data (0 = memory).
	HitLevel int
	// Fault reports that the OS had to intervene (demand paging, CoW).
	Fault bool
}

// MemSystem is a complete memory system organization: address translation
// plus the cache hierarchy and DRAM.
type MemSystem interface {
	// Access performs one reference.
	Access(req Request) Result
	// Energy returns the translation-energy accumulator.
	Energy() *energy.Accumulator
	// Hierarchy exposes the cache hierarchy for statistics.
	Hierarchy() *cache.Hierarchy
	// Name identifies the organization in reports.
	Name() string
}

// FaultLatency is the cycles charged for an OS fault handler invocation
// (demand paging, CoW break, cold segment fill).
const FaultLatency = 3000

// Base bundles the pieces every memory system shares and the physical
// access path they all use.
type Base struct {
	Hier *cache.Hierarchy
	DRAM *mem.DRAM
	Acc  *energy.Accumulator

	// Faults counts OS interventions.
	Faults stats.Counter
	// WalkSteps counts PTE fetches issued by timed page walks.
	WalkSteps stats.Counter
}

// NewBase builds the shared substrate.
func NewBase(hcfg cache.HierarchyConfig, dcfg mem.DRAMConfig, model energy.Model) *Base {
	return &Base{
		Hier: cache.NewHierarchy(hcfg),
		DRAM: mem.NewDRAM(dcfg),
		Acc:  energy.NewAccumulator(model),
	}
}

// PhysAccess performs a physically addressed access (synonym data, PTE
// fetches, baseline data) through the hierarchy and DRAM, returning the
// latency and whether the LLC missed.
func (b *Base) PhysAccess(core int, kind cache.AccessKind, pa addr.PA, perm addr.Perm) (uint64, cache.AccessResult) {
	res := b.Hier.Access(core, kind, addr.PhysName(pa), perm)
	lat := res.Latency
	if res.LLCMiss {
		lat += b.DRAM.Access(pa)
	}
	// Physical writebacks need no translation; ignore res.Writebacks here.
	return lat, res
}

// TimedWalk performs a hardware page walk for (proc, va), fetching each
// PTE through the cache hierarchy (so large caches absorb walk traffic).
// It returns the leaf, the total latency, and whether the walk succeeded.
func (b *Base) TimedWalk(core int, proc *osmodel.Process, va addr.VA) (pte WalkLeaf, latency uint64, ok bool) {
	b.Acc.Access(energy.PageWalk, 1)
	path, leaf, found := proc.PT.WalkPath(va)
	for _, slot := range path {
		b.WalkSteps.Inc()
		lat, _ := b.PhysAccess(core, cache.Read, slot, addr.PermRO)
		latency += lat
	}
	if !found {
		return WalkLeaf{}, latency, false
	}
	return WalkLeaf{
		Frame:  leaf.Frame,
		Perm:   leaf.Perm,
		Shared: leaf.Shared,
		Huge:   leaf.Huge,
	}, latency, true
}

// WalkLeaf is the result of a page walk.
type WalkLeaf struct {
	Frame  uint64
	Perm   addr.Perm
	Shared bool
	// Huge marks a 2 MiB leaf; Frame is then the 2 MiB-aligned frame.
	Huge bool
}

// PA composes the leaf with the in-page offset.
func (l WalkLeaf) PA(va addr.VA) addr.PA {
	if l.Huge {
		return addr.FrameToPA(l.Frame) + addr.PA(uint64(va)&(addr.HugePageSize-1))
	}
	return addr.FrameToPA(l.Frame) + addr.PA(va.PageOffset())
}

// FrameFor4K returns the 4 KiB frame backing va — for huge leaves this
// "fractures" the mapping into the page-granular TLB entries real CPUs
// install when a structure only supports 4 KiB translations.
func (l WalkLeaf) FrameFor4K(va addr.VA) uint64 {
	if !l.Huge {
		return l.Frame
	}
	return l.Frame + (uint64(va)>>addr.PageBits)&(addr.HugePageSize/addr.PageSize-1)
}

// HandleFault invokes the OS fault handler and charges its latency.
func (b *Base) HandleFault(proc *osmodel.Process, va addr.VA, isWrite bool) (uint64, bool) {
	b.Faults.Inc()
	ok := proc.HandleFault(va, isWrite)
	return FaultLatency, ok
}
