package cache

import (
	"math/rand"
	"testing"

	"hybridvc/internal/addr"
)

func testHierarchy(cores int) *Hierarchy {
	// Small geometry so evictions happen quickly in tests.
	return NewHierarchy(HierarchyConfig{
		NumCores: cores,
		L1I:      Config{Name: "L1I", SizeBytes: 512, Ways: 2, HitLatency: 2},
		L1D:      Config{Name: "L1D", SizeBytes: 512, Ways: 2, HitLatency: 4},
		L2:       Config{Name: "L2", SizeBytes: 2 << 10, Ways: 4, HitLatency: 6},
		LLC:      Config{Name: "LLC", SizeBytes: 8 << 10, Ways: 8, HitLatency: 27},
	})
}

func TestHierarchyMissFillHit(t *testing.T) {
	h := testHierarchy(1)
	n := vn(asid1, 0x1000)
	res := h.Access(0, Read, n, addr.PermRW)
	if !res.LLCMiss || res.HitLevel != 0 {
		t.Fatalf("cold access: %+v", res)
	}
	if res.Latency != 4+6+27 {
		t.Errorf("cold latency = %d, want 37", res.Latency)
	}
	res = h.Access(0, Read, n, addr.PermRW)
	if res.LLCMiss || res.HitLevel != 1 || res.Latency != 4 {
		t.Errorf("warm access: %+v", res)
	}
	if res.Perm != addr.PermRW {
		t.Errorf("perm = %v", res.Perm)
	}
}

func TestHierarchyFetchUsesL1I(t *testing.T) {
	h := testHierarchy(1)
	n := vn(asid1, 0x2000)
	h.Access(0, Fetch, n, addr.PermExec)
	if h.L1I(0).Probe(n) == nil {
		t.Error("fetch did not fill L1I")
	}
	if h.L1D(0).Probe(n) != nil {
		t.Error("fetch filled L1D")
	}
	res := h.Access(0, Fetch, n, addr.PermExec)
	if res.HitLevel != 1 || res.Latency != 2 {
		t.Errorf("fetch hit: %+v", res)
	}
}

func TestHierarchyL2AndLLCHits(t *testing.T) {
	h := testHierarchy(1)
	base := vn(asid1, 0x0)
	h.Access(0, Read, base, addr.PermRW)
	// Evict base from L1 (512B, 2 ways, 4 sets => stride 256 conflicts).
	h.Access(0, Read, vn(asid1, 0x100), addr.PermRW)
	h.Access(0, Read, vn(asid1, 0x200), addr.PermRW)
	res := h.Access(0, Read, base, addr.PermRW)
	if res.HitLevel != 2 || res.Latency != 4+6 {
		t.Fatalf("want L2 hit at 10 cycles, got %+v", res)
	}
	// Now evict from L2 as well (2KB, 4 ways, 8 sets => stride 512).
	for i := uint64(1); i <= 8; i++ {
		h.Access(0, Read, vn(asid1, i*0x200), addr.PermRW)
	}
	res = h.Access(0, Read, base, addr.PermRW)
	if res.HitLevel != 3 || res.Latency != 4+6+27 {
		t.Fatalf("want LLC hit at 37 cycles, got %+v", res)
	}
}

func TestCoherenceWriteInvalidatesRemote(t *testing.T) {
	h := testHierarchy(2)
	n := pn(0x4000) // a synonym (physical) shared block
	h.Access(0, Read, n, addr.PermRW)
	h.Access(1, Read, n, addr.PermRW)
	if h.L1D(0).Probe(n) == nil || h.L1D(1).Probe(n) == nil {
		t.Fatal("both cores should cache the block")
	}
	h.Access(0, Write, n, addr.PermRW)
	if h.L1D(1).Probe(n) != nil || h.L2(1).Probe(n) != nil {
		t.Error("write did not invalidate remote copies")
	}
	if h.CoherenceInvals.Value() == 0 {
		t.Error("no coherence invalidations counted")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCoherenceReadDowngradesRemoteModified(t *testing.T) {
	h := testHierarchy(2)
	n := pn(0x4000)
	h.Access(0, Write, n, addr.PermRW)
	if got := h.L1D(0).Probe(n).State; got != Modified {
		t.Fatalf("writer state = %v", got)
	}
	res := h.Access(1, Read, n, addr.PermRW)
	if res.LLCMiss {
		t.Error("read of remote-dirty block went to memory")
	}
	if got := h.L1D(0).Probe(n).State; got != Shared {
		t.Errorf("remote state after read = %v, want S", got)
	}
	if got := h.L1D(1).Probe(n).State; got != Shared {
		t.Errorf("reader state = %v, want S", got)
	}
	if h.CoherenceDowngrades.Value() == 0 {
		t.Error("no downgrades counted")
	}
	// The dirty data must survive in the LLC.
	if l := h.LLC().Probe(n); l == nil || l.State != Modified {
		t.Error("LLC did not absorb dirty data")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWriteToSharedUpgrades(t *testing.T) {
	h := testHierarchy(2)
	n := pn(0x8000)
	h.Access(0, Read, n, addr.PermRW)
	h.Access(1, Read, n, addr.PermRW)
	// Core 1 writes its Shared copy: upgrade must invalidate core 0.
	h.Access(1, Write, n, addr.PermRW)
	if h.L1D(0).Probe(n) != nil {
		t.Error("upgrade did not invalidate the other sharer")
	}
	if got := h.L1D(1).Probe(n).State; got != Modified {
		t.Errorf("writer state = %v, want M", got)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	h := testHierarchy(1)
	// Touch enough distinct lines to force LLC evictions (LLC holds 128).
	for i := uint64(0); i < 200; i++ {
		h.Access(0, Read, vn(asid1, i*0x40), addr.PermRW)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyWritebackReachesMemory(t *testing.T) {
	h := testHierarchy(1)
	n := vn(asid1, 0x0)
	h.Access(0, Write, n, addr.PermRW)
	// Evict through the whole hierarchy: stream over > LLC capacity.
	var wbs []addr.Name
	for i := uint64(1); i < 400; i++ {
		res := h.Access(0, Read, vn(asid1, i*0x40), addr.PermRW)
		wbs = append(wbs, res.Writebacks...)
	}
	found := false
	for _, w := range wbs {
		if w == n {
			found = true
		}
	}
	if !found {
		t.Error("dirty block never written back to memory")
	}
	if h.MemWritebacks.Value() == 0 {
		t.Error("no memory writebacks counted")
	}
}

func TestHierarchyFlushPage(t *testing.T) {
	h := testHierarchy(2)
	h.Access(0, Write, vn(asid1, 0x3000), addr.PermRW)
	h.Access(1, Read, vn(asid1, 0x3040), addr.PermRW)
	flushed, dirty := h.FlushPage(vn(asid1, 0x3000))
	if flushed == 0 || dirty == 0 {
		t.Fatalf("flushed=%d dirty=%d", flushed, dirty)
	}
	if h.LLC().Probe(vn(asid1, 0x3000)) != nil {
		t.Error("line survived page flush")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestHierarchySetPagePerm(t *testing.T) {
	h := testHierarchy(1)
	h.Access(0, Read, vn(asid1, 0x3000), addr.PermRW)
	if n := h.SetPagePerm(vn(asid1, 0x3000), addr.PermRO); n == 0 {
		t.Fatal("no lines updated")
	}
	res := h.Access(0, Read, vn(asid1, 0x3000), addr.PermRW)
	if res.Perm != addr.PermRO {
		t.Errorf("perm after update = %v", res.Perm)
	}
}

func TestHierarchyFlushASID(t *testing.T) {
	h := testHierarchy(1)
	h.Access(0, Read, vn(asid1, 0x1000), addr.PermRW)
	h.Access(0, Read, vn(asid2, 0x1000), addr.PermRW)
	h.Access(0, Read, pn(0x9000), addr.PermRW)
	if n := h.FlushASID(asid1); n == 0 {
		t.Fatal("nothing flushed")
	}
	if h.LLC().Probe(vn(asid1, 0x1000)) != nil {
		t.Error("asid1 line survived")
	}
	if h.LLC().Probe(vn(asid2, 0x1000)) == nil {
		t.Error("asid2 line flushed")
	}
	if h.LLC().Probe(pn(0x9000)) == nil {
		t.Error("physical line flushed by ASID flush")
	}
}

func TestHierarchyRandomizedInvariants(t *testing.T) {
	// Random multi-core access storms must never violate MESI exclusivity
	// or inclusion.
	h := testHierarchy(4)
	rng := rand.New(rand.NewSource(11))
	names := make([]addr.Name, 64)
	for i := range names {
		if i%4 == 0 {
			names[i] = pn(uint64(i) * 0x40) // shared synonym lines
		} else {
			names[i] = vn(addr.MakeASID(0, uint32(i%3+1)), uint64(i)*0x40)
		}
	}
	for step := 0; step < 5000; step++ {
		core := rng.Intn(4)
		kind := Read
		switch rng.Intn(3) {
		case 1:
			kind = Write
		case 2:
			kind = Fetch
		}
		n := names[rng.Intn(len(names))]
		if kind == Write && !n.Synonym {
			// Virtual lines are per-ASID private in this test; writes to
			// them exercise the upgrade path only within one core.
			core = int(n.ASID.Proc()) % 4
		}
		h.Access(core, kind, n, addr.PermRW)
		if step%500 == 0 {
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultHierarchyConfig(t *testing.T) {
	cfg := DefaultHierarchyConfig(4)
	h := NewHierarchy(cfg)
	if h.NumCores() != 4 {
		t.Errorf("cores = %d", h.NumCores())
	}
	if h.LLC().Config().SizeBytes != 2<<20 {
		t.Errorf("LLC size = %d", h.LLC().Config().SizeBytes)
	}
	if h.Config().L2.HitLatency != 6 {
		t.Errorf("L2 latency = %d", h.Config().L2.HitLatency)
	}
}

func TestNewHierarchyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-core hierarchy did not panic")
		}
	}()
	NewHierarchy(HierarchyConfig{NumCores: 0})
}
