package baseline

import (
	"math/rand"
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/virt"
)

func setupVirt2D(t *testing.T) (*Virt2D, *virt.VM, *osmodel.Process) {
	t.Helper()
	hv := virt.NewHypervisor(2 << 30)
	vm, err := hv.NewVM(512<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVirt2D(smallConfig(1), vm)
	p, err := vm.Kernel.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	return v, vm, p
}

func TestVirt2DTranslatesToMachineAddress(t *testing.T) {
	v, vm, p := setupVirt2D(t)
	gva, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	res := v.Access(core.Request{Kind: cache.Read, VA: gva, Proc: p})
	if res.Fault {
		t.Fatal("fault")
	}
	if v.Walks2D.Value() != 1 {
		t.Errorf("2D walks = %d", v.Walks2D.Value())
	}
	gpa, _ := p.PT.Translate(gva)
	ma, _ := vm.TranslateGPA(addr.GPA(gpa))
	if v.Hierarchy().LLC().Probe(addr.PhysName(ma)) == nil {
		t.Error("data not cached at the machine address")
	}
	// TLB hit on the second access: no more walks.
	v.Access(core.Request{Kind: cache.Read, VA: gva, Proc: p})
	if v.Walks2D.Value() != 1 {
		t.Error("warm access walked again")
	}
	if v.Name() != "virt-2d-baseline" {
		t.Error("name")
	}
}

func TestVirt2DWalkCostExceedsNativeWalk(t *testing.T) {
	// The virtualization tax: a cold 2D walk reads up to 24 PTEs versus 4
	// for a native walk, so TLB-miss-heavy workloads suffer far more.
	v, _, p := setupVirt2D(t)
	gva, _ := p.Mmap(256<<20, addr.PermRW, osmodel.MmapOpts{})
	rng := rand.New(rand.NewSource(2))
	var total uint64
	const n = 3000
	for i := 0; i < n; i++ {
		va := gva + addr.VA(rng.Uint64()%(256<<20))
		total += v.Access(core.Request{Kind: cache.Read, VA: va, Proc: p}).Latency
	}

	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	c := NewConventional(smallConfig(1), k)
	pn, _ := k.NewProcess()
	nva, _ := pn.Mmap(256<<20, addr.PermRW, osmodel.MmapOpts{})
	rng2 := rand.New(rand.NewSource(2))
	var nativeTotal uint64
	for i := 0; i < n; i++ {
		va := nva + addr.VA(rng2.Uint64()%(256<<20))
		nativeTotal += c.Access(core.Request{Kind: cache.Read, VA: va, Proc: pn}).Latency
	}
	if total <= nativeTotal {
		t.Errorf("virtualized walks (%d) not costlier than native (%d)", total, nativeTotal)
	}
}

func TestVirt2DShootdownSink(t *testing.T) {
	v, _, p := setupVirt2D(t)
	gva, _ := p.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	v.Access(core.Request{Kind: cache.Read, VA: gva, Proc: p})
	if err := v.vm.Kernel.MarkShared(p, gva, addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, ok := v.tlbs[0].L1.Probe(p.ASID, gva.Page()); ok {
		t.Error("TLB entry survived shootdown")
	}
}
