package service_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"hybridvc/internal/service"
	"hybridvc/internal/service/client"
)

// TestCrashRestartServesFromDisk is the durable-store acceptance path: a
// daemon completes a job, is dropped SIGKILL-style (HTTP listener torn
// down, no Drain, in-memory cache gone), and a fresh daemon over the
// same store directory serves the resubmission from disk — byte-
// identical report, provenance=disk, zero new simulations.
func TestCrashRestartServesFromDisk(t *testing.T) {
	storeDir := t.TempDir()
	ctx := context.Background()
	spec := service.JobSpec{Instructions: 60_000, Interval: 5_000, Seed: 77}

	// First life: run the job for real.
	srv1, err := service.New(service.Config{
		Workers: 1, StoreDir: storeDir, SpoolDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1.Start()
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := client.New(ts1.URL, nil)
	first, err := c1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := c1.Watch(ctx, first.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != service.StateDone || len(st1.Report) == 0 {
		t.Fatalf("first life job: %s (%s)", st1.State, st1.Error)
	}
	if m := srv1.MetricsSnapshot(); m.Simulated != 1 || m.Store == nil || m.Store.Writes != 1 {
		t.Fatalf("first life counters: %+v store=%+v", m, m.Store)
	}

	// "Crash": the listener dies with no Drain — nothing in memory
	// survives. (The worker goroutines are reaped at cleanup; the point
	// is srv2 sees only what the store made durable.)
	ts1.Close()
	t.Cleanup(func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv1.Drain(dctx)
	})

	// Second life: same store directory, cold memory.
	srv2, c2 := startServer(t, service.Config{Workers: 1, StoreDir: storeDir})
	second, err := c2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatalf("restart resubmission not served as cached: %+v", second)
	}
	if second.Key != first.Key {
		t.Errorf("cache key changed across restart: %s vs %s", second.Key, first.Key)
	}
	st2, err := c2.Job(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Provenance != "disk" {
		t.Errorf("provenance = %q, want disk", st2.Provenance)
	}
	if !bytes.Equal(st1.Report, st2.Report) {
		t.Errorf("disk-served report differs from the original bytes:\n%s\nvs\n%s", st1.Report, st2.Report)
	}
	if st2.Intervals != st1.Intervals {
		t.Errorf("disk-served job replays %d intervals, original recorded %d", st2.Intervals, st1.Intervals)
	}
	if st2.ParentLineage != st1.Lineage {
		t.Errorf("disk-served parent lineage %q does not chain to the producing run %q",
			st2.ParentLineage, st1.Lineage)
	}

	// Exactly one simulation across both daemon lives, and the second
	// life's hit came off the disk tier.
	m2 := srv2.MetricsSnapshot()
	if m2.Simulated != 0 {
		t.Errorf("second life re-simulated %d times, want 0", m2.Simulated)
	}
	if m2.Store == nil || m2.Store.Hits != 1 {
		t.Errorf("second life store counters: %+v, want 1 hit", m2.Store)
	}
	if total := srv1.MetricsSnapshot().Simulated + m2.Simulated; total != 1 {
		t.Errorf("simulations across both lives = %d, want exactly 1", total)
	}
}
