// Command hvctrace captures workload reference traces to the compact
// binary format and inspects them — the Pin-style trace methodology of the
// paper's Section III-C, made reusable.
//
// Usage:
//
//	hvctrace -capture gups -insns 1000000 -out gups.hvct
//	hvctrace -info gups.hvct
//	hvctrace -dump 20 gups.hvct
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hybridvc/internal/buildinfo"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/trace"
	"hybridvc/internal/workload"
)

func main() {
	capture := flag.String("capture", "", "workload name to capture")
	insns := flag.Uint64("insns", 1_000_000, "instructions to capture")
	out := flag.String("out", "trace.hvct", "output trace path")
	seed := flag.Int64("seed", 1, "workload seed")
	info := flag.String("info", "", "trace file to summarize")
	dump := flag.Int("dump", 0, "print the first n decoded records of the trace file argument")
	version := buildinfo.Flag()
	flag.Parse()
	buildinfo.HandleFlag(version, "hvctrace")

	switch {
	case *capture != "":
		if err := doCapture(*capture, *insns, *out, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "hvctrace:", err)
			os.Exit(1)
		}
	case *info != "":
		if err := doInfo(*info); err != nil {
			fmt.Fprintln(os.Stderr, "hvctrace:", err)
			os.Exit(1)
		}
	case *dump > 0:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "hvctrace: -dump needs one trace file argument")
			os.Exit(2)
		}
		if err := doDump(flag.Arg(0), *dump, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hvctrace:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doCapture(name string, insns uint64, out string, seed int64) error {
	spec, err := workload.Get(name)
	if err != nil {
		return err
	}
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 32 << 30})
	g, err := workload.New(spec, k, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Capture(f, g, insns); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("captured %d instructions of %q to %s (%d bytes, %.2f B/insn)\n",
		insns, name, out, st.Size(), float64(st.Size())/float64(insns))
	return nil
}

func doInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	var mem, stores, deps, shared, mispredicts uint64
	pages := map[uint64]bool{}
	for {
		in, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if in.IsMem {
			mem++
			pages[in.VA.Page()] = true
			if in.IsStore {
				stores++
			}
			if in.Shared {
				shared++
			}
		}
		if in.DependsOnPrev {
			deps++
		}
		if in.Mispredict {
			mispredicts++
		}
	}
	n := r.Count()
	fmt.Printf("%s: %d instructions\n", path, n)
	fmt.Printf("  memory refs:    %d (%.1f%%)\n", mem, pct(mem, n))
	fmt.Printf("  stores:         %d (%.1f%% of refs)\n", stores, pct(stores, mem))
	fmt.Printf("  dependent:      %d (%.1f%%)\n", deps, pct(deps, n))
	fmt.Printf("  shared refs:    %d (%.1f%% of refs)\n", shared, pct(shared, mem))
	fmt.Printf("  mispredicts:    %d (%.2f%%)\n", mispredicts, pct(mispredicts, n))
	fmt.Printf("  page footprint: %d pages (%.1f MiB)\n", len(pages), float64(len(pages))*4/1024)
	return nil
}

// doDump prints the first n decoded records of the trace at path,
// one human-readable line per instruction.
func doDump(path string, n int, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	for i := 0; i < n; i++ {
		in, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		kind := "alu  "
		switch {
		case in.IsStore:
			kind = "store"
		case in.IsMem:
			kind = "load "
		}
		fmt.Fprintf(w, "%6d  %s", i, kind)
		if in.IsMem {
			fmt.Fprintf(w, "  va=0x%012x", uint64(in.VA))
		}
		if in.DependsOnPrev {
			fmt.Fprint(w, "  dep")
		}
		if in.Shared {
			fmt.Fprint(w, "  shared")
		}
		if in.Mispredict {
			fmt.Fprint(w, "  mispredict")
		}
		fmt.Fprintln(w)
	}
	return nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
