// Command benchcheck gates hot-path performance regressions: it compares
// a freshly measured BENCH_hotpath.json against the committed baseline
// and exits non-zero when any organization's batched throughput dropped
// by more than the threshold.
//
// Usage (see `make bench-check`):
//
//	benchcheck -base BENCH_hotpath.json -new /tmp/fresh.json -threshold 0.10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// benchFile mirrors the subset of BENCH_hotpath.json the check reads.
type benchFile struct {
	Organizations []benchRow `json:"organizations"`
}

type benchRow struct {
	Org             string  `json:"org"`
	BatchRefsPerSec float64 `json:"batch_refs_per_sec"`
}

func main() {
	base := flag.String("base", "BENCH_hotpath.json", "recorded baseline results")
	fresh := flag.String("new", "", "freshly measured results to check")
	threshold := flag.Float64("threshold", 0.10, "max allowed fractional regression per organization")
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -new is required")
		os.Exit(2)
	}
	regressions, err := check(*base, *fresh, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchcheck: REGRESSION:", r)
		}
		os.Exit(1)
	}
	fmt.Println("benchcheck: ok — no organization regressed beyond the threshold")
}

// check compares the fresh batch throughput of every baseline organization
// and returns one message per regression beyond the threshold. Fresh
// organizations missing from the baseline are ignored (new design points);
// baseline organizations missing from the fresh run are reported — a
// silently dropped row must not pass the gate.
func check(basePath, freshPath string, threshold float64) ([]string, error) {
	baseRows, err := load(basePath)
	if err != nil {
		return nil, err
	}
	freshRows, err := load(freshPath)
	if err != nil {
		return nil, err
	}
	var regressions []string
	for org, b := range baseRows {
		f, ok := freshRows[org]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in %s but missing from %s", org, basePath, freshPath))
			continue
		}
		floor := b * (1 - threshold)
		if f < floor {
			regressions = append(regressions, fmt.Sprintf(
				"%s: batch %.0f refs/s < %.0f (baseline %.0f - %.0f%%)",
				org, f, floor, b, 100*threshold))
		}
	}
	return regressions, nil
}

// load reads a results file into org -> batch refs/sec.
func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Organizations) == 0 {
		return nil, fmt.Errorf("%s: no organization rows", path)
	}
	out := make(map[string]float64, len(bf.Organizations))
	for _, r := range bf.Organizations {
		out[r.Org] = r.BatchRefsPerSec
	}
	return out, nil
}
