// Tests pinning the unified Result.HitLevel scale: every organization
// reports 1 for an L1 hit, 2 for the private level behind the L1 (the L2,
// or OVC's physical L2 path), 3 for the shared LLC and 0 for memory.
package hybridvc_test

import (
	"testing"

	"hybridvc"
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
)

// TestHitLevelScaleAcrossOrganizations drives the same cold line twice on
// every organization: the first reference must come from memory (level 0,
// LLC miss), the second from the L1 (level 1, no LLC miss).
func TestHitLevelScaleAcrossOrganizations(t *testing.T) {
	for _, org := range hybridvc.Organizations() {
		org := org
		t.Run(string(org), func(t *testing.T) {
			sys := newHotpathSystem(t, org, "stream")
			g := sys.Generators()[0]
			req := core.Request{Core: 0, Kind: cache.Read, VA: g.CodeStart, Proc: g.Proc}

			first := sys.Mem.Access(req)
			if first.HitLevel != 0 || !first.LLCMiss {
				t.Errorf("cold access: HitLevel=%d LLCMiss=%v, want level 0 from memory",
					first.HitLevel, first.LLCMiss)
			}
			second := sys.Mem.Access(req)
			if second.HitLevel != 1 || second.LLCMiss {
				t.Errorf("warm access: HitLevel=%d LLCMiss=%v, want an L1 hit",
					second.HitLevel, second.LLCMiss)
			}
		})
	}
}

// TestHitLevelDeepLevels peels the hierarchy level by level on the hybrid
// organization (a uniformly virtual hierarchy): invalidating the line from
// the levels above the one under test must surface levels 2, 3 and 0.
func TestHitLevelDeepLevels(t *testing.T) {
	sys := newHotpathSystem(t, hybridvc.HybridManySegSC, "stream")
	g := sys.Generators()[0]
	req := core.Request{Core: 0, Kind: cache.Read, VA: g.CodeStart, Proc: g.Proc}
	name := addr.VirtName(g.Proc.ASID, g.CodeStart)
	hier := sys.Mem.Hierarchy()

	sys.Mem.Access(req) // fill all levels

	hier.L1D(0).Invalidate(name)
	if r := sys.Mem.Access(req); r.HitLevel != 2 || r.LLCMiss {
		t.Errorf("L2 hit: HitLevel=%d LLCMiss=%v, want level 2", r.HitLevel, r.LLCMiss)
	}
	hier.L1D(0).Invalidate(name)
	hier.L2(0).Invalidate(name)
	if r := sys.Mem.Access(req); r.HitLevel != 3 || r.LLCMiss {
		t.Errorf("LLC hit: HitLevel=%d LLCMiss=%v, want level 3", r.HitLevel, r.LLCMiss)
	}
	hier.L1D(0).Invalidate(name)
	hier.L2(0).Invalidate(name)
	hier.LLC().Invalidate(name)
	if r := sys.Mem.Access(req); r.HitLevel != 0 || !r.LLCMiss {
		t.Errorf("memory: HitLevel=%d LLCMiss=%v, want level 0", r.HitLevel, r.LLCMiss)
	}
}

// TestHitLevelOVCOuterPath checks the split hierarchy maps onto the same
// scale: an OVC virtual L1 miss that hits the physical L2 reports level 2,
// the LLC level 3, and memory level 0 — indistinguishable from the uniform
// organizations to a consumer of Result.
func TestHitLevelOVCOuterPath(t *testing.T) {
	sys := newHotpathSystem(t, hybridvc.OVC, "stream")
	g := sys.Generators()[0]
	req := core.Request{Core: 0, Kind: cache.Read, VA: g.CodeStart, Proc: g.Proc}
	vname := addr.VirtName(g.Proc.ASID, g.CodeStart)
	pa, ok := g.Proc.PT.Translate(g.CodeStart)
	if !ok {
		t.Fatal("code page not mapped")
	}
	pname := addr.PhysName(pa)
	hier := sys.Mem.Hierarchy()

	sys.Mem.Access(req) // fill the virtual L1 and the physical outer levels

	hier.L1D(0).Invalidate(vname)
	if r := sys.Mem.Access(req); r.HitLevel != 2 || r.LLCMiss {
		t.Errorf("physical L2 hit: HitLevel=%d LLCMiss=%v, want level 2", r.HitLevel, r.LLCMiss)
	}
	hier.L1D(0).Invalidate(vname)
	hier.L2(0).Invalidate(pname)
	if r := sys.Mem.Access(req); r.HitLevel != 3 || r.LLCMiss {
		t.Errorf("LLC hit: HitLevel=%d LLCMiss=%v, want level 3", r.HitLevel, r.LLCMiss)
	}
	hier.L1D(0).Invalidate(vname)
	hier.L2(0).Invalidate(pname)
	hier.LLC().Invalidate(pname)
	if r := sys.Mem.Access(req); r.HitLevel != 0 || !r.LLCMiss {
		t.Errorf("memory: HitLevel=%d LLCMiss=%v, want level 0", r.HitLevel, r.LLCMiss)
	}
}
