package baseline

import (
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/energy"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/pipeline"
	"hybridvc/internal/stats"
	"hybridvc/internal/tlb"
	"hybridvc/internal/virt"
)

// Virt2D is the virtualized baseline: physically (machine) addressed
// caches, a per-core two-level TLB caching direct gVA->MA translations,
// and a hardware two-dimensional page walker with a nested TLB — the
// "state-of-the-art translation cache for two-dimensional address
// translation" the paper compares against. Every TLB miss pays up to 24
// memory accesses through the cache hierarchy before the L1 access can
// proceed.
type Virt2D struct {
	*pipeline.Engine
	vm      *virt.VM
	walkers map[uint32]*virt.Walker2D
	tlbs    []*tlb.TwoLevel

	// Walks2D counts full nested walks.
	Walks2D stats.Counter

	// missMemo records that RouteBatch probed both TLB levels for
	// (core, asid, vpn) and missed; the immediately-following scalar Route
	// for that stopper commits the misses without rescanning. One-shot:
	// cleared unconditionally at Route entry and on any shootdown.
	missMemoValid bool
	missMemoCore  int
	missMemoASID  addr.ASID
	missMemoVPN   uint64
}

// NewVirt2D builds the virtualized baseline over vm; AddVM consolidates
// further virtual machines.
func NewVirt2D(cfg Config, vm *virt.VM) *Virt2D {
	v := &Virt2D{
		vm:      vm,
		walkers: make(map[uint32]*virt.Walker2D),
	}
	v.Engine = pipeline.NewEngine(core.NewBase(cfg.Hier, cfg.DRAM, cfg.Energy), v, nil, nil)
	for i := 0; i < cfg.Hier.NumCores; i++ {
		v.tlbs = append(v.tlbs, tlb.NewTwoLevel(tlb.DefaultTwoLevelConfig()))
	}
	v.AddVM(vm)
	return v
}

// AddVM consolidates another VM onto this processor.
func (v *Virt2D) AddVM(vm *virt.VM) {
	v.walkers[vm.VMID] = virt.NewWalker2D(vm, true)
	vm.Kernel.AttachSink(v)
}

// Name implements core.MemSystem.
func (v *Virt2D) Name() string { return "virt-2d-baseline" }

// timed2DWalk issues a nested walk, charging its reads through the caches.
func (v *Virt2D) timed2DWalk(coreID int, proc *osmodel.Process, gva addr.VA) (virt.Walk2DResult, uint64) {
	v.Walks2D.Inc()
	v.Acc.Access(energy.PageWalk, 1)
	res := v.walkers[proc.ASID.VMID()].Walk(proc, gva)
	v.Acc.Access(energy.NestedTLB, uint64(res.NestedTLBHits))
	var lat uint64
	for _, ma := range res.Path {
		l, _ := v.PhysAccess(coreID, cache.Read, ma, addr.PermRO)
		lat += l
	}
	if p := v.Probe(); p != nil {
		p.Walk(pipeline.WalkEvent{Core: coreID, Steps: len(res.Path), OK: res.OK})
	}
	return res, lat
}

// Route implements pipeline.FrontEnd.
func (v *Virt2D) Route(req *core.Request, res *core.Result) pipeline.Decision {
	tl := v.tlbs[req.Core]
	memoMiss := v.missMemoValid && v.missMemoCore == req.Core &&
		v.missMemoASID == req.Proc.ASID && v.missMemoVPN == req.VA.Page()
	v.missMemoValid = false
	v.Acc.Access(energy.L1TLB, 1)
	var tres tlb.Result
	if memoMiss {
		// RouteBatch already scanned both levels and missed; commit the
		// ticks and statistics those lookups would have recorded and fall
		// through to the nested walk with tres.Level == 0.
		tl.L1.RecordMiss()
		tl.L2.RecordMiss()
	} else {
		tres = tl.Lookup(req.Proc.ASID, req.VA.Page())
	}
	if p := v.Probe(); p != nil {
		p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBL1, Hit: tres.Level == 1})
		if tres.Level != 1 {
			p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBL2, Hit: tres.Level == 2})
		}
	}
	var ma addr.PA
	var perm addr.Perm
	switch tres.Level {
	case 1:
		ma = addr.FrameToPA(tres.Entry.PFN) + addr.PA(req.VA.PageOffset())
		perm = tres.Entry.Perm
	case 2:
		v.Acc.Access(energy.L2TLB, 1)
		res.Latency += tl.L2.Config().Latency
		ma = addr.FrameToPA(tres.Entry.PFN) + addr.PA(req.VA.PageOffset())
		perm = tres.Entry.Perm
	default:
		v.Acc.Access(energy.L2TLB, 1)
		res.Latency += tl.L2.Config().Latency
		wres, wlat := v.timed2DWalk(req.Core, req.Proc, req.VA.PageAligned())
		res.Latency += wlat
		if !wres.OK {
			fl, fixed := v.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
			res.Latency += fl
			res.Fault = true
			if !fixed {
				return pipeline.DoneNow()
			}
			wres, wlat = v.timed2DWalk(req.Core, req.Proc, req.VA.PageAligned())
			res.Latency += wlat
			if !wres.OK {
				return pipeline.DoneNow()
			}
		}
		perm = wres.GuestPTE.Perm
		tl.Insert(tlb.Entry{
			ASID: req.Proc.ASID, VPN: req.VA.Page(), PFN: wres.MA.Frame(),
			Perm: perm, Shared: wres.GuestPTE.Shared || wres.HostShared,
		})
		ma = wres.MA.PageAligned() + addr.PA(req.VA.PageOffset())
	}

	if req.Kind == cache.Write && !perm.AllowsWrite() {
		fl, fixed := v.HandleFault(req.Proc, req.VA, true)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
	}
	return pipeline.GoPhysical(ma, perm)
}

// RouteBatch implements pipeline.BatchFrontEnd: TLB hits (either level,
// probed quietly in L1-then-L2 order) decode purely and commit in the
// same pass — the hitting level's probe is promoted with tlb.Touch, an L1
// miss records its statistics, and an L2 hit refills L1, exactly the
// bookkeeping the scalar Lookup performs, without rescanning any set.
// Nested 2D walks and write faults stop the run so the scalar path
// handles them.
func (v *Virt2D) RouteBatch(reqs []core.Request, res []core.Result, dec []pipeline.Decision) int {
	i := 0
	for ; i < len(reqs); i++ {
		req := &reqs[i]
		tl := v.tlbs[req.Core]
		vpn := req.VA.Page()
		if e, ok := tl.L1.Probe(req.Proc.ASID, vpn); ok {
			if req.Kind == cache.Write && !e.Perm.AllowsWrite() {
				break
			}
			v.Acc.Access(energy.L1TLB, 1)
			tl.L1.Touch(e)
			dec[i] = pipeline.GoPhysical(addr.FrameToPA(e.PFN)+addr.PA(req.VA.PageOffset()), e.Perm)
			continue
		}
		if e, ok := tl.L2.Probe(req.Proc.ASID, vpn); ok {
			if req.Kind == cache.Write && !e.Perm.AllowsWrite() {
				break
			}
			v.Acc.Access(energy.L1TLB, 1)
			v.Acc.Access(energy.L2TLB, 1)
			tl.L1.RecordMiss()
			tl.L2.Touch(e)
			cp := *e
			tl.L1.Insert(cp)
			res[i].Latency += tl.L2.Config().Latency
			dec[i] = pipeline.GoPhysical(addr.FrameToPA(e.PFN)+addr.PA(req.VA.PageOffset()), e.Perm)
			continue
		}
		// Nested 2D walk: the scalar path handles it. Leave a memo so its
		// Route does not rescan the sets this pass just probed.
		v.missMemoValid, v.missMemoCore = true, req.Core
		v.missMemoASID, v.missMemoVPN = req.Proc.ASID, vpn
		break
	}
	return i
}

// --- osmodel.ShootdownSink ---

// TLBShootdown implements the sink.
func (v *Virt2D) TLBShootdown(asid addr.ASID, vpn uint64) {
	v.missMemoValid = false
	for _, tl := range v.tlbs {
		tl.Shootdown(asid, vpn)
	}
}

// FlushPage implements the sink.
func (v *Virt2D) FlushPage(page addr.Name) {
	if page.Synonym {
		v.Hier.FlushPage(page)
	}
}

// SetPagePerm implements the sink.
func (v *Virt2D) SetPagePerm(page addr.Name, perm addr.Perm) {
	if !page.Synonym {
		v.TLBShootdown(page.ASID, page.Page())
	}
}

// FilterUpdate implements the sink.
func (v *Virt2D) FilterUpdate(addr.ASID) {}

// FlushASID implements the sink.
func (v *Virt2D) FlushASID(asid addr.ASID) {
	v.missMemoValid = false
	for _, tl := range v.tlbs {
		tl.FlushASID(asid)
	}
}
