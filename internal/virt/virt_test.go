package virt

import (
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/osmodel"
)

func newVM(t *testing.T, chunks int) (*Hypervisor, *VM) {
	t.Helper()
	hv := NewHypervisor(1 << 30)
	vm, err := hv.NewVM(256<<20, chunks)
	if err != nil {
		t.Fatal(err)
	}
	return hv, vm
}

func TestNewVMBacksGuestSpace(t *testing.T) {
	hv, vm := newVM(t, 4)
	if vm.VMID == 0 {
		t.Fatal("VMID 0 assigned to a guest")
	}
	if len(vm.HostSegs) != 4 {
		t.Fatalf("host segments = %d", len(vm.HostSegs))
	}
	// Every gPA page must translate through both host PT and host segments
	// consistently.
	for _, gpa := range []uint64{0, addr.PageSize, 128 << 20, 256<<20 - addr.PageSize} {
		maPT, ok1 := vm.HostPT.Translate(addr.VA(gpa))
		maSeg, ok2 := vm.TranslateGPA(addr.GPA(gpa))
		if !ok1 || !ok2 || maPT != maSeg {
			t.Fatalf("gPA %#x: PT %#x(%v) seg %#x(%v)", gpa, uint64(maPT), ok1, uint64(maSeg), ok2)
		}
	}
	if _, ok := vm.TranslateGPA(addr.GPA(257 << 20)); ok {
		t.Error("out-of-range gPA translated")
	}
	if hv.VM(vm.VMID) != vm {
		t.Error("VM registry broken")
	}
}

func TestGuestASIDsCarryVMID(t *testing.T) {
	_, vm := newVM(t, 1)
	p, err := vm.Kernel.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	if p.ASID.VMID() != vm.VMID {
		t.Errorf("guest ASID VMID = %d, want %d", p.ASID.VMID(), vm.VMID)
	}
	// Two VMs' processes must never share an ASID.
	hv2 := NewHypervisor(1 << 30)
	vmA, _ := hv2.NewVM(64<<20, 1)
	vmB, _ := hv2.NewVM(64<<20, 1)
	pa, _ := vmA.Kernel.NewProcess()
	pb, _ := vmB.Kernel.NewProcess()
	if pa.ASID == pb.ASID {
		t.Error("cross-VM ASID collision")
	}
}

func TestWalk2DFullDepthIs24Accesses(t *testing.T) {
	_, vm := newVM(t, 1)
	p, _ := vm.Kernel.NewProcess()
	gva, err := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker2D(vm, false)
	res := w.Walk(p, gva+0x123)
	if !res.OK {
		t.Fatalf("walk failed: %+v", res)
	}
	// 4 guest levels x (4 host reads + 1 guest PTE read) + 4 host reads
	// for the data gPA = 24.
	if len(res.Path) != 24 {
		t.Errorf("2D walk touched %d addresses, want 24", len(res.Path))
	}
	// The final MA must agree with the functional composition.
	gpa, _ := p.PT.Translate(gva + 0x123)
	wantMA, _ := vm.TranslateGPA(addr.GPA(gpa))
	if res.MA != wantMA {
		t.Errorf("MA = %#x, want %#x", uint64(res.MA), uint64(wantMA))
	}
	if res.GPA != addr.GPA(gpa) {
		t.Errorf("GPA = %#x, want %#x", uint64(res.GPA), uint64(gpa))
	}
	if w.Accesses.Value() != 24 {
		t.Errorf("accesses = %d", w.Accesses.Value())
	}
}

func TestWalk2DNestedTLBReducesAccesses(t *testing.T) {
	_, vm := newVM(t, 1)
	p, _ := vm.Kernel.NewProcess()
	gva, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	w := NewWalker2D(vm, true)
	cold := w.Walk(p, gva)
	if !cold.OK || len(cold.Path) != 24 {
		t.Fatalf("cold walk: %d accesses ok=%v", len(cold.Path), cold.OK)
	}
	// A second walk of a nearby page reuses host translations for the
	// guest table pages: each of the 5 host walks collapses to a TLB hit,
	// leaving 4 guest PTE reads + 0 host reads = 4...
	warm := w.Walk(p, gva+addr.PageSize)
	if len(warm.Path) >= len(cold.Path) {
		t.Errorf("nested TLB did not reduce accesses: %d -> %d", len(cold.Path), len(warm.Path))
	}
	if warm.NestedTLBHits == 0 {
		t.Error("no nested TLB hits recorded")
	}
	// 4 guest PTE reads (host walks cached) + 4 host reads for the new
	// data page's gPA = 8.
	if len(warm.Path) != 8 {
		t.Errorf("warm walk = %d accesses, want 8", len(warm.Path))
	}
}

func TestWalk2DUnmappedGuestPage(t *testing.T) {
	_, vm := newVM(t, 1)
	p, _ := vm.Kernel.NewProcess()
	w := NewWalker2D(vm, false)
	res := w.Walk(p, 0x7000_0000)
	if res.OK {
		t.Fatal("walk of unmapped gva succeeded")
	}
	// It still pays host translation for the guest root table read.
	if len(res.Path) == 0 {
		t.Error("no accesses recorded for failed walk")
	}
}

func TestShareGuestFramesMarksHostFilters(t *testing.T) {
	hv := NewHypervisor(1 << 30)
	vmA, _ := hv.NewVM(64<<20, 1)
	vmB, _ := hv.NewVM(64<<20, 1)
	pA, _ := vmA.Kernel.NewProcess()
	pB, _ := vmB.Kernel.NewProcess()
	gvaA, _ := pA.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	gvaB, _ := pB.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	vmA.TrackProcessRegion(pA, gvaA, addr.PageSize)
	vmB.TrackProcessRegion(pB, gvaB, addr.PageSize)

	pteA, _ := pA.PT.Lookup(gvaA)
	pteB, _ := pB.PT.Lookup(gvaB)
	if err := hv.ShareGuestFrames(vmA, pteA.Frame, vmB, pteB.Frame); err != nil {
		t.Fatal(err)
	}
	// Host filters must flag the guest virtual addresses even though the
	// guest OSes never marked them.
	if !vmA.HostFilter.ProbeQuiet(gvaA) {
		t.Error("vmA host filter missing gVA")
	}
	if !vmB.HostFilter.ProbeQuiet(gvaB) {
		t.Error("vmB host filter missing gVA")
	}
	// Guest filters stay clean.
	if pA.Filter.ProbeQuiet(gvaA) || pB.Filter.ProbeQuiet(gvaB) {
		t.Error("guest filters polluted by hypervisor sharing")
	}
	// Both now reach the same machine frame, and the 2D walk reports the
	// sharing.
	maA, _ := vmA.HostPT.Translate(addr.PageToVA(pteA.Frame))
	maB, _ := vmB.HostPT.Translate(addr.PageToVA(pteB.Frame))
	if maA != maB {
		t.Error("frames not shared")
	}
	w := NewWalker2D(vmB, false)
	res := w.Walk(pB, gvaB)
	if !res.OK || !res.HostShared {
		t.Errorf("walk did not report host sharing: %+v", res)
	}
}

func TestContentShareROKeepsFiltersClean(t *testing.T) {
	hv := NewHypervisor(1 << 30)
	vmA, _ := hv.NewVM(64<<20, 1)
	vmB, _ := hv.NewVM(64<<20, 1)
	pA, _ := vmA.Kernel.NewProcess()
	pB, _ := vmB.Kernel.NewProcess()
	gvaA, _ := pA.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	gvaB, _ := pB.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	pteA, _ := pA.PT.Lookup(gvaA)
	pteB, _ := pB.PT.Lookup(gvaB)

	if err := hv.ContentShareRO(vmA, pteA.Frame, vmB, pteB.Frame); err != nil {
		t.Fatal(err)
	}
	if vmA.HostFilter.ProbeQuiet(gvaA) || vmB.HostFilter.ProbeQuiet(gvaB) {
		t.Error("r/o content sharing marked host filters")
	}
	// Both host mappings are now read-only at the same MA.
	w := NewWalker2D(vmB, false)
	res := w.Walk(pB, gvaB)
	if !res.OK {
		t.Fatal("walk failed")
	}
	maA, _ := vmA.HostPT.Translate(addr.PageToVA(pteA.Frame))
	if res.MA.PageAligned() != maA.PageAligned() {
		t.Error("content share did not alias machine frames")
	}
	if hv.ContentShares.Value() != 1 {
		t.Error("content share not counted")
	}

	// Breaking the share gives vmB a private frame again.
	if err := hv.BreakContentShare(vmB, pteB.Frame); err != nil {
		t.Fatal(err)
	}
	maB, _ := vmB.HostPT.Translate(addr.PageToVA(pteB.Frame))
	if maB.PageAligned() == maA.PageAligned() {
		t.Error("break did not copy")
	}
	pte, _ := vmB.HostPT.Lookup(addr.PageToVA(pteB.Frame))
	if pte.Perm != addr.PermRW {
		t.Error("broken share not r/w")
	}
}

func TestNewVMErrors(t *testing.T) {
	hv := NewHypervisor(16 << 20)
	if _, err := hv.NewVM(0, 1); err == nil {
		t.Error("zero-size VM created")
	}
	if _, err := hv.NewVM(addr.PageSize+1, 1); err == nil {
		t.Error("unaligned VM created")
	}
	if _, err := hv.NewVM(1<<30, 1); err == nil {
		t.Error("oversized VM created")
	}
}

func TestDestroyVMReclaimsMachineMemory(t *testing.T) {
	hv := NewHypervisor(1 << 30)
	free0 := hv.Machine.FreeFrames()
	vm, err := hv.NewVM(128<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := vm.Kernel.NewProcess()
	gva, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	_ = gva
	hv.DestroyVM(vm)
	if hv.Machine.FreeFrames() != free0 {
		t.Errorf("machine frames leaked: %d -> %d", free0, hv.Machine.FreeFrames())
	}
	if hv.HostSegMgr.Table.Used() != 0 {
		t.Errorf("host segments leaked: %d", hv.HostSegMgr.Table.Used())
	}
	if hv.VM(vm.VMID) != nil {
		t.Error("VM registry retains destroyed VM")
	}
}

func TestDestroyVMReclaimsCoWFrames(t *testing.T) {
	hv := NewHypervisor(1 << 30)
	vmA, _ := hv.NewVM(64<<20, 1)
	free0 := hv.Machine.FreeFrames() // before the VM under test exists
	vmB, _ := hv.NewVM(64<<20, 1)
	pB, _ := vmB.Kernel.NewProcess()
	gvaB, _ := pB.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	pteB, _ := pB.PT.Lookup(gvaB)
	pA, _ := vmA.Kernel.NewProcess()
	gvaA, _ := pA.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	pteA, _ := pA.PT.Lookup(gvaA)
	if err := hv.ContentShareRO(vmA, pteA.Frame, vmB, pteB.Frame); err != nil {
		t.Fatal(err)
	}
	if err := hv.BreakContentShare(vmB, pteB.Frame); err != nil {
		t.Fatal(err)
	}
	hv.DestroyVM(vmB)
	if hv.Machine.FreeFrames() != free0 {
		t.Errorf("CoW frame leaked: %d -> %d", free0, hv.Machine.FreeFrames())
	}
	// vmA remains fully functional.
	if _, ok := vmA.TranslateGPA(0); !ok {
		t.Error("surviving VM broken")
	}
}

func TestWalk2DGuestHugePage(t *testing.T) {
	_, vm := newVM(t, 1)
	p, _ := vm.Kernel.NewProcess()
	gva, err := p.Mmap(4<<20, addr.PermRW, osmodel.MmapOpts{HugePages: true})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker2D(vm, false)
	off := addr.VA(1<<20 + 0x360) // beyond the 4 KiB offset bits
	res := w.Walk(p, gva+off)
	if !res.OK {
		t.Fatalf("walk failed: %+v", res)
	}
	// The composed GPA/MA must agree with the functional translation.
	gpa, _ := p.PT.Translate(gva + off)
	if res.GPA != addr.GPA(gpa) {
		t.Errorf("GPA = %#x, want %#x (huge offset lost)", uint64(res.GPA), uint64(gpa))
	}
	want, _ := vm.TranslateGPA(addr.GPA(gpa))
	if res.MA != want {
		t.Errorf("MA = %#x, want %#x", uint64(res.MA), uint64(want))
	}
	// The guest walk is one level shorter: 3 guest levels x 5 + 4 = 19.
	if len(res.Path) != 19 {
		t.Errorf("huge guest walk = %d accesses, want 19", len(res.Path))
	}
}
