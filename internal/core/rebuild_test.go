package core

import (
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/osmodel"
)

// setupStaleFilter builds a process whose filter carries stale bits: a
// large shared region is created, accessed, and then transitioned back to
// private, leaving the filter saturated while no synonyms remain.
func setupStaleFilter(t *testing.T, threshold float64) (*HybridMMU, *osmodel.Kernel, *osmodel.Process, addr.VA) {
	t.Helper()
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	cfg := smallHybridConfig(1, DelayedSegments, true)
	cfg.FPRebuildThreshold = threshold
	cfg.FPWindow = 512
	m := NewHybridMMU(cfg, k)
	p, _ := k.NewProcess()
	vas, err := k.ShareAnonymous([]*osmodel.Process{p}, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.MarkPrivate(p, vas[0], 4<<20); err != nil {
		t.Fatal(err)
	}
	// Filter still flags the now-private range (stale bits).
	if !p.Filter.ProbeQuiet(vas[0]) {
		t.Fatal("setup: filter already clean")
	}
	return m, k, p, vas[0]
}

func TestMarkPrivateTransition(t *testing.T) {
	m, k, p, va := setupStaleFilter(t, 0)
	// PTE sharing bit cleared.
	pte, ok := p.PT.Lookup(va)
	if !ok || pte.Shared {
		t.Fatalf("PTE after MarkPrivate: %+v ok=%v", pte, ok)
	}
	// Accesses are false positives: detected as candidates, corrected to
	// the virtual path by the TLB, and cached under ASID+VA.
	res := m.Access(Request{Kind: cache.Read, VA: va, Proc: p})
	if res.Fault {
		t.Fatal("fault")
	}
	if m.FalsePositives.Value() != 1 {
		t.Errorf("false positives = %d, want 1", m.FalsePositives.Value())
	}
	if m.Hier.LLC().Probe(addr.VirtName(p.ASID, va)) == nil {
		t.Error("private page not cached virtually after transition")
	}
	// The live synonym range list is empty.
	if len(p.SynonymRanges) != 0 {
		t.Errorf("synonym ranges = %d", len(p.SynonymRanges))
	}
	_ = k
}

func TestAdaptiveRebuildClearsStaleFilter(t *testing.T) {
	m, _, p, va := setupStaleFilter(t, 0.02)
	// Hammer the stale range: false positives accumulate until the
	// policy fires and the rebuilt (empty) filter stops flagging.
	for i := 0; i < 4096; i++ {
		m.Access(Request{Kind: cache.Read, VA: va + addr.VA((i%1024)*addr.PageSize), Proc: p})
	}
	if m.FilterRebuilds.Value() == 0 {
		t.Fatal("adaptive policy never fired")
	}
	if p.Filter.ProbeQuiet(va) {
		t.Error("filter still stale after rebuild")
	}
	// After the rebuild, accesses stop being candidates.
	before := m.SynonymCandidates.Value()
	for i := 0; i < 256; i++ {
		m.Access(Request{Kind: cache.Read, VA: va + addr.VA((i%1024)*addr.PageSize), Proc: p})
	}
	if got := m.SynonymCandidates.Value() - before; got != 0 {
		t.Errorf("%d candidates after rebuild, want 0", got)
	}
}

func TestAdaptiveRebuildDisabledByDefault(t *testing.T) {
	m, _, p, va := setupStaleFilter(t, 0)
	for i := 0; i < 4096; i++ {
		m.Access(Request{Kind: cache.Read, VA: va + addr.VA((i%1024)*addr.PageSize), Proc: p})
	}
	if m.FilterRebuilds.Value() != 0 {
		t.Error("policy fired while disabled")
	}
	if !p.Filter.ProbeQuiet(va) {
		t.Error("filter rebuilt without policy")
	}
}

func TestAdaptiveRebuildSparesLiveSynonyms(t *testing.T) {
	// A rebuild must keep flagging live synonym ranges.
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	cfg := smallHybridConfig(1, DelayedSegments, true)
	cfg.FPRebuildThreshold = 0.02
	cfg.FPWindow = 512
	m := NewHybridMMU(cfg, k)
	p, _ := k.NewProcess()
	stale, _ := k.ShareAnonymous([]*osmodel.Process{p}, 2<<20)
	live, _ := k.ShareAnonymous([]*osmodel.Process{p}, 8*addr.PageSize)
	if err := k.MarkPrivate(p, stale[0], 2<<20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		m.Access(Request{Kind: cache.Read, VA: stale[0] + addr.VA((i%512)*addr.PageSize), Proc: p})
	}
	if m.FilterRebuilds.Value() == 0 {
		t.Fatal("policy never fired")
	}
	if !p.Filter.ProbeQuiet(live[0]) {
		t.Error("rebuild dropped a live synonym range")
	}
	res := m.Access(Request{Kind: cache.Write, VA: live[0], Proc: p})
	if res.Fault {
		t.Fatal("live synonym access faulted")
	}
	if m.TrueSynonymAccesses.Value() == 0 {
		t.Error("live synonym not detected after rebuild")
	}
}
