package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenFaultSweep pins the injector's determinism end to end: the
// fault sweep's full table — injection schedules AND the fault-perturbed
// timing fingerprints — must match the checked-in golden byte for byte,
// at one worker and at eight. Regenerate deliberately with
// `go test ./experiments -run GoldenFaultSweep -update`.
func TestGoldenFaultSweep(t *testing.T) {
	skipIfRace(t)
	golden := filepath.Join("testdata", "faults_quick.golden")

	for _, jobs := range []int{1, 8} {
		prev := SetJobs(jobs)
		tbl, err := FaultSweep(Quick)
		SetJobs(prev)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		got := tbl.String()

		if *updateGolden {
			if jobs == 1 {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (generate with -update): %v", err)
		}
		if got != string(want) {
			t.Errorf("jobs=%d: fault sweep diverged from golden\n--- got ---\n%s\n--- want ---\n%s",
				jobs, got, want)
		}
	}
}
