package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hybridvc/internal/service"
	"hybridvc/internal/service/client"
)

// startDaemon boots an in-process hvcd and points a client at it.
func startDaemon(t *testing.T) *client.Client {
	t.Helper()
	srv, err := service.New(service.Config{Workers: 2, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
		ts.Close()
	})
	return client.New(ts.URL, nil)
}

// capture redirects command output for one test.
func capture(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	prev := stdout
	stdout = &buf
	t.Cleanup(func() { stdout = prev })
	return &buf
}

func TestStatusShowsLineage(t *testing.T) {
	c := startDaemon(t)
	buf := capture(t)
	ctx := context.Background()

	if err := cmdSubmit(ctx, c, nil, []string{"-insns", "30000", "-wait"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "lineage lin-") {
		t.Errorf("submit output missing lineage line:\n%s", out)
	}

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := cmdStatus(ctx, c, []string{jobs[0].ID}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"lineage": "lin-`) {
		t.Errorf("status output missing lineage field:\n%s", buf.String())
	}
}

func TestMetricsPromFlag(t *testing.T) {
	c := startDaemon(t)
	buf := capture(t)
	ctx := context.Background()

	if err := cmdMetrics(ctx, c, []string{"-prom"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# TYPE hvcd_completed_total counter", "# TYPE hvcd_e2e_seconds histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("prom metrics output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := cmdMetrics(ctx, c, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"completed"`) {
		t.Errorf("JSON metrics output missing completed counter:\n%s", buf.String())
	}
}
