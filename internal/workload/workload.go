// Package workload generates synthetic instruction/memory reference
// streams standing in for the paper's benchmark binaries (SPEC CPU2006,
// PARSEC, BioBench, NPB, Graph500, GUPS, and the shared-memory server
// workloads). Each named spec is calibrated to the per-workload statistics
// the paper reports: memory footprint and page working set (Figure 4),
// number of eagerly allocated segments and memory utilization (Table III),
// and r/w shared area and access ratios (Tables I and II).
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"hybridvc/internal/addr"
	"hybridvc/internal/osmodel"
)

// Pattern selects the access pattern over the touched working set.
type Pattern int

const (
	// Uniform picks addresses uniformly at random (GUPS-like).
	Uniform Pattern = iota
	// Zipf concentrates 90% of accesses on a hot fraction.
	Zipf
	// Chase is dependent random access (pointer chasing, mcf-like).
	Chase
	// Stream walks memory sequentially.
	Stream
)

// Insn is one instruction of the generated stream.
type Insn struct {
	IsMem         bool
	IsStore       bool
	DependsOnPrev bool
	VA            addr.VA
	// Shared marks accesses targeting the r/w shared (synonym) region.
	Shared bool
	// Mispredict marks a branch the two-level predictor got wrong: the
	// front end refills after a pipeline flush.
	Mispredict bool
}

// Spec parameterizes one workload.
type Spec struct {
	Name string
	// Regions are the sizes of eagerly allocated private regions; each
	// becomes (at least) one segment.
	Regions []uint64
	// TouchFrac is the fraction of each region the workload ever touches
	// (Table III utilization).
	TouchFrac float64
	// MemRatio is the fraction of instructions that access memory.
	MemRatio float64
	// StoreFrac is the fraction of memory accesses that are stores.
	StoreFrac float64
	// Pattern and HotFrac control locality.
	Pattern Pattern
	HotFrac float64
	// DepFrac is the fraction of loads that depend on the previous load.
	DepFrac float64
	// Procs is the process count (multi-process server workloads).
	Procs int
	// SharedBytes is the size of the r/w shared (synonym) region mapped
	// into every process; 0 for no sharing.
	SharedBytes uint64
	// SharedAccessFrac is the probability a memory access targets the
	// shared region (Table I "shared access").
	SharedAccessFrac float64
	// HugePages backs the private regions with 2 MiB mappings (the
	// transparent-huge-page mitigation for baseline TLB reach).
	HugePages bool
	// PhaseInsns rotates the Zipf hot region every this many instructions,
	// modelling program phases; 0 disables phase behaviour.
	PhaseInsns uint64
	// BranchRatio is the fraction of instructions that are branches and
	// MispredictRate the fraction of those the predictor misses (defaults
	// 0.15 and 0.03 when BranchRatio is 0 — typical integer-code rates).
	BranchRatio    float64
	MispredictRate float64
}

// TotalBytes returns the private allocation footprint.
func (s Spec) TotalBytes() uint64 {
	var t uint64
	for _, r := range s.Regions {
		t += r
	}
	return t
}

// repeat returns n copies of size (helper for many-segment specs).
func repeat(n int, size uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = size
	}
	return out
}

const (
	kib = uint64(1) << 10
	mib = uint64(1) << 20
	gib = uint64(1) << 30
)

// Specs is the named workload table. Region counts reproduce the paper's
// Table III segment counts; touch fractions its utilization column; the
// shared parameters Tables I and II; footprints are scaled to keep the
// simulations tractable while keeping page working sets far beyond TLB
// reach where the paper's do (GUPS, mcf, milc).
var Specs = map[string]Spec{
	// --- big-memory / memory-intensive workloads (Figures 4 and 9) ---
	"gups": {
		Name: "gups", Regions: repeat(8, 128*mib), TouchFrac: 1.0,
		MemRatio: 0.55, StoreFrac: 0.5, Pattern: Uniform, DepFrac: 0.0,
	},
	"milc": {
		Name: "milc", Regions: repeat(17, 32*mib), TouchFrac: 1.0,
		MemRatio: 0.45, StoreFrac: 0.3, Pattern: Uniform, DepFrac: 0.1,
	},
	"mcf": {
		Name: "mcf", Regions: repeat(42, 8*mib), TouchFrac: 0.95,
		MemRatio: 0.5, StoreFrac: 0.2, Pattern: Chase, DepFrac: 0.8,
	},
	"xalancbmk": {
		Name: "xalancbmk", Regions: repeat(234, 1*mib), TouchFrac: 0.9,
		MemRatio: 0.4, StoreFrac: 0.25, Pattern: Zipf, HotFrac: 0.05, DepFrac: 0.3,
	},
	"tigr": {
		Name: "tigr", Regions: repeat(368, 1*mib), TouchFrac: 0.83,
		MemRatio: 0.5, StoreFrac: 0.15, Pattern: Zipf, HotFrac: 0.3, DepFrac: 0.5,
	},
	"omnetpp": {
		Name: "omnetpp", Regions: repeat(79, 2*mib), TouchFrac: 0.9,
		MemRatio: 0.4, StoreFrac: 0.3, Pattern: Zipf, HotFrac: 0.1, DepFrac: 0.4,
	},
	"soplex": {
		Name: "soplex", Regions: repeat(28, 8*mib), TouchFrac: 0.9,
		MemRatio: 0.4, StoreFrac: 0.2, Pattern: Zipf, HotFrac: 0.08, DepFrac: 0.2,
	},
	"graph500": {
		Name: "graph500", Regions: repeat(12, 48*mib), TouchFrac: 1.0,
		MemRatio: 0.45, StoreFrac: 0.2, Pattern: Uniform, DepFrac: 0.5,
	},
	// --- Table III segment-count / utilization workloads ---
	"astar": {
		Name: "astar", Regions: repeat(52, 1*mib), TouchFrac: 0.95,
		MemRatio: 0.35, StoreFrac: 0.25, Pattern: Zipf, HotFrac: 0.2, DepFrac: 0.3,
	},
	"cactus": {
		Name: "cactus", Regions: repeat(60, 2*mib), TouchFrac: 0.9,
		MemRatio: 0.4, StoreFrac: 0.3, Pattern: Stream, DepFrac: 0.05,
	},
	"gemsFDTD": {
		Name: "gemsFDTD", Regions: repeat(99, 2*mib), TouchFrac: 0.28,
		MemRatio: 0.45, StoreFrac: 0.35, Pattern: Stream, DepFrac: 0.05,
	},
	"canneal": {
		Name: "canneal", Regions: repeat(36, 8*mib), TouchFrac: 0.9,
		MemRatio: 0.4, StoreFrac: 0.2, Pattern: Uniform, DepFrac: 0.4,
	},
	"stream": {
		Name: "stream", Regions: repeat(8, 16*mib), TouchFrac: 1.0,
		MemRatio: 0.5, StoreFrac: 0.33, Pattern: Stream, DepFrac: 0.0,
	},
	"mummer": {
		Name: "mummer", Regions: repeat(42, 4*mib), TouchFrac: 0.75,
		MemRatio: 0.45, StoreFrac: 0.1, Pattern: Chase, DepFrac: 0.6,
	},
	"memcached": {
		Name: "memcached", Regions: repeat(640, 8*mib), TouchFrac: 0.45,
		MemRatio: 0.4, StoreFrac: 0.3, Pattern: Zipf, HotFrac: 0.1, DepFrac: 0.3,
	},
	"npb-cg": {
		Name: "npb-cg", Regions: repeat(14, 16*mib), TouchFrac: 0.95,
		MemRatio: 0.45, StoreFrac: 0.2, Pattern: Stream, DepFrac: 0.1,
	},
	// --- shared-memory (synonym) workloads (Tables I and II) ---
	"ferret": {
		Name: "ferret", Regions: repeat(6, 16*mib), TouchFrac: 0.9,
		MemRatio: 0.4, StoreFrac: 0.25, Pattern: Zipf, HotFrac: 0.15, DepFrac: 0.2,
		Procs: 2, SharedBytes: 1 * mib, SharedAccessFrac: 0.0024,
	},
	"postgres": {
		Name: "postgres", Regions: repeat(8, 8*mib), TouchFrac: 0.9,
		MemRatio: 0.4, StoreFrac: 0.3, Pattern: Zipf, HotFrac: 0.1, DepFrac: 0.3,
		Procs: 4, SharedBytes: 128 * mib, SharedAccessFrac: 0.16,
	},
	"specjbb": {
		Name: "specjbb", Regions: repeat(12, 16*mib), TouchFrac: 0.9,
		MemRatio: 0.4, StoreFrac: 0.3, Pattern: Zipf, HotFrac: 0.1, DepFrac: 0.3,
		Procs: 1, SharedBytes: 128 * kib, SharedAccessFrac: 0.0008,
	},
	"firefox": {
		Name: "firefox", Regions: repeat(24, 4*mib), TouchFrac: 0.85,
		MemRatio: 0.35, StoreFrac: 0.3, Pattern: Zipf, HotFrac: 0.1, DepFrac: 0.3,
		Procs: 2, SharedBytes: 1500 * kib, SharedAccessFrac: 0.005,
	},
	"apache": {
		Name: "apache", Regions: repeat(10, 4*mib), TouchFrac: 0.9,
		MemRatio: 0.35, StoreFrac: 0.3, Pattern: Zipf, HotFrac: 0.1, DepFrac: 0.2,
		Procs: 4, SharedBytes: 512 * kib, SharedAccessFrac: 0.004,
	},
}

// Names returns the catalog workload names in sorted order.
func Names() []string {
	names := make([]string, 0, len(Specs))
	for name := range Specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Get returns the named spec.
func Get(name string) (Spec, error) {
	s, ok := Specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
	}
	return s, nil
}

// Generator produces the instruction stream of one process of a workload.
type Generator struct {
	Spec Spec
	Proc *osmodel.Process
	rng  *rand.Rand

	regions     []genRegion
	cumBytes    []uint64
	totalTouch  uint64
	sharedStart addr.VA
	sharedLen   uint64

	// CodeStart/CodeLen describe the synthetic code region for fetches.
	CodeStart addr.VA
	CodeLen   uint64

	chasePtr  addr.VA
	streamPt  uint64
	emitted   uint64
	phaseBase uint64
	// Phases counts hot-region rotations performed.
	Phases uint64
}

type genRegion struct {
	start addr.VA
	touch uint64 // touched prefix in bytes
}

// groupState carries the shared region across a multi-process group.
type groupState struct {
	vas []addr.VA
}

// NewGroup instantiates the workload's processes in the kernel and returns
// one generator per process. Multi-process specs share one synonym region
// created through the OS (updating filters and page tables).
func NewGroup(spec Spec, k *osmodel.Kernel, seed int64) ([]*Generator, error) {
	n := spec.Procs
	if n <= 0 {
		n = 1
	}
	procs := make([]*osmodel.Process, n)
	for i := range procs {
		p, err := k.NewProcess()
		if err != nil {
			return nil, err
		}
		procs[i] = p
	}
	var gs groupState
	if spec.SharedBytes > 0 {
		vas, err := k.ShareAnonymous(procs, spec.SharedBytes)
		if err != nil {
			return nil, err
		}
		gs.vas = vas
	}
	gens := make([]*Generator, n)
	for i, p := range procs {
		g := &Generator{
			Spec: spec,
			Proc: p,
			rng:  rand.New(rand.NewSource(seed + int64(i)*7919)),
		}
		// Code region: 256 KiB of eagerly mapped text.
		code, err := p.Mmap(256*kib, addr.PermExec, osmodel.MmapOpts{})
		if err != nil {
			return nil, err
		}
		g.CodeStart, g.CodeLen = code, 256*kib
		for _, size := range spec.Regions {
			va, err := p.Mmap(size, addr.PermRW, osmodel.MmapOpts{HugePages: spec.HugePages})
			if err != nil {
				return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
			}
			touch := uint64(float64(size) * spec.TouchFrac)
			touch = (touch + addr.PageSize - 1) &^ uint64(addr.PageSize-1)
			if touch == 0 {
				touch = addr.PageSize
			}
			if touch > size {
				touch = size
			}
			g.regions = append(g.regions, genRegion{start: va, touch: touch})
			g.totalTouch += touch
			g.cumBytes = append(g.cumBytes, g.totalTouch)
		}
		if spec.SharedBytes > 0 {
			g.sharedStart = gs.vas[i]
			g.sharedLen = spec.SharedBytes
		}
		g.chasePtr = g.regions[0].start
		gens[i] = g
	}
	return gens, nil
}

// New instantiates a single-process generator (convenience).
func New(spec Spec, k *osmodel.Kernel, seed int64) (*Generator, error) {
	s := spec
	s.Procs = 1
	gens, err := NewGroup(s, k, seed)
	if err != nil {
		return nil, err
	}
	return gens[0], nil
}

// pickPrivate chooses a private target address according to the pattern.
func (g *Generator) pickPrivate() addr.VA {
	switch g.Spec.Pattern {
	case Stream:
		off := g.streamPt % g.totalTouch
		g.streamPt += addr.LineSize
		return g.offsetToVA(off)
	case Zipf:
		hot := uint64(float64(g.totalTouch) * g.Spec.HotFrac)
		if hot < addr.PageSize {
			hot = addr.PageSize
		}
		if g.rng.Float64() < 0.9 {
			return g.offsetToVA((g.phaseBase + g.rng.Uint64()%hot) % g.totalTouch)
		}
		return g.offsetToVA(g.rng.Uint64() % g.totalTouch)
	case Chase:
		// The chase pointer jumps pseudo-randomly; each step depends on
		// the loaded value.
		g.chasePtr = g.offsetToVA(g.rng.Uint64() % g.totalTouch)
		return g.chasePtr
	default: // Uniform
		return g.offsetToVA(g.rng.Uint64() % g.totalTouch)
	}
}

// offsetToVA maps a global touched-byte offset onto the owning region.
func (g *Generator) offsetToVA(off uint64) addr.VA {
	lo, hi := 0, len(g.cumBytes)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cumBytes[mid] > off {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	base := uint64(0)
	if lo > 0 {
		base = g.cumBytes[lo-1]
	}
	return g.regions[lo].start + addr.VA(off-base)
}

// Next produces the next instruction.
func (g *Generator) Next() Insn {
	g.emitted++
	if g.Spec.PhaseInsns > 0 && g.emitted%g.Spec.PhaseInsns == 0 {
		// Rotate the hot region by its own size: a program phase change.
		hot := uint64(float64(g.totalTouch) * g.Spec.HotFrac)
		if hot < addr.PageSize {
			hot = addr.PageSize
		}
		g.phaseBase = (g.phaseBase + hot) % g.totalTouch
		g.Phases++
	}
	if g.rng.Float64() >= g.Spec.MemRatio {
		br, mr := g.Spec.BranchRatio, g.Spec.MispredictRate
		if br == 0 {
			br, mr = 0.15, 0.03
		}
		// Non-memory instructions include branches; a mispredicted one
		// flushes the pipeline.
		if g.rng.Float64() < br && g.rng.Float64() < mr {
			return Insn{Mispredict: true}
		}
		return Insn{}
	}
	in := Insn{IsMem: true}
	in.IsStore = g.rng.Float64() < g.Spec.StoreFrac
	if g.sharedLen > 0 && g.rng.Float64() < g.Spec.SharedAccessFrac {
		in.VA = g.sharedStart + addr.VA(g.rng.Uint64()%g.sharedLen)
		in.Shared = true
	} else {
		in.VA = g.pickPrivate()
		if g.Spec.Pattern == Chase {
			in.DependsOnPrev = !in.IsStore
		} else {
			in.DependsOnPrev = g.rng.Float64() < g.Spec.DepFrac
		}
	}
	// Record utilization / shared-ratio accounting in the OS model.
	g.Proc.Touch(in.VA, g.Proc.FindRegion(in.VA))
	return in
}

// Emitted returns the number of instructions generated.
func (g *Generator) Emitted() uint64 { return g.emitted }

// PrewarmTouch records a touch on every page of the touched working set,
// modelling the full application run (the paper's Table III utilization is
// measured over complete executions, far longer than a sampled simulation
// window). It only affects utilization accounting, not caches or TLBs.
func (g *Generator) PrewarmTouch() {
	for _, r := range g.regions {
		region := g.Proc.FindRegion(r.start)
		for off := uint64(0); off < r.touch; off += addr.PageSize {
			g.Proc.Touch(r.start+addr.VA(off), region)
		}
	}
	code := g.Proc.FindRegion(g.CodeStart)
	for off := uint64(0); off < g.CodeLen; off += addr.PageSize {
		g.Proc.Touch(g.CodeStart+addr.VA(off), code)
	}
}

// HotPages returns the set of pages forming the current Zipf hot region;
// empty for non-Zipf patterns.
func (g *Generator) HotPages() map[uint64]bool {
	if g.Spec.Pattern != Zipf {
		return nil
	}
	hot := uint64(float64(g.totalTouch) * g.Spec.HotFrac)
	if hot < addr.PageSize {
		hot = addr.PageSize
	}
	pages := make(map[uint64]bool)
	for off := uint64(0); off < hot; off += addr.PageSize {
		pages[g.offsetToVA((g.phaseBase+off)%g.totalTouch).Page()] = true
	}
	return pages
}

// PageWorkingSet estimates the distinct-page footprint of the touched
// working set, in 4 KiB pages.
func (g *Generator) PageWorkingSet() uint64 {
	return (g.totalTouch + addr.PageSize - 1) / addr.PageSize
}
