// Package trace provides a compact binary format for instruction/memory
// reference traces, mirroring the paper's Pin-based trace methodology
// (Section III-C): workloads can be captured once from a generator and
// replayed deterministically into any memory system configuration.
//
// Format: the header magic "HVCT\x01", then one record per instruction.
// Each record is a flags byte followed, for memory operations, by the
// zigzag-varint delta of the virtual address from the previous memory
// operation (deltas compress well for real access streams).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hybridvc/internal/addr"
	"hybridvc/internal/workload"
)

var magic = [5]byte{'H', 'V', 'C', 'T', 1}

// Record flag bits.
const (
	flagMem        = 1 << 0
	flagStore      = 1 << 1
	flagDep        = 1 << 2
	flagShared     = 1 << 3
	flagMispredict = 1 << 4
)

// Writer streams instructions into a trace.
type Writer struct {
	w      *bufio.Writer
	lastVA uint64
	n      uint64
	header bool
}

// NewWriter creates a trace writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one instruction.
func (t *Writer) Write(in workload.Insn) error {
	if !t.header {
		if _, err := t.w.Write(magic[:]); err != nil {
			return err
		}
		t.header = true
	}
	var flags byte
	if in.IsMem {
		flags |= flagMem
	}
	if in.IsStore {
		flags |= flagStore
	}
	if in.DependsOnPrev {
		flags |= flagDep
	}
	if in.Shared {
		flags |= flagShared
	}
	if in.Mispredict {
		flags |= flagMispredict
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	if in.IsMem {
		delta := int64(uint64(in.VA) - t.lastVA)
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], delta)
		if _, err := t.w.Write(buf[:n]); err != nil {
			return err
		}
		t.lastVA = uint64(in.VA)
	}
	t.n++
	return nil
}

// Count returns the instructions written.
func (t *Writer) Count() uint64 { return t.n }

// Flush drains buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader replays a trace.
type Reader struct {
	r      *bufio.Reader
	lastVA uint64
	n      uint64
	header bool
}

// NewReader creates a trace reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ErrBadMagic reports a stream that is not a trace.
var ErrBadMagic = errors.New("trace: bad magic")

// Next returns the next instruction, or io.EOF at the end of the trace.
func (t *Reader) Next() (workload.Insn, error) {
	if !t.header {
		var got [5]byte
		if _, err := io.ReadFull(t.r, got[:]); err != nil {
			return workload.Insn{}, err
		}
		if got != magic {
			return workload.Insn{}, ErrBadMagic
		}
		t.header = true
	}
	flags, err := t.r.ReadByte()
	if err != nil {
		return workload.Insn{}, err
	}
	in := workload.Insn{
		IsMem:         flags&flagMem != 0,
		IsStore:       flags&flagStore != 0,
		DependsOnPrev: flags&flagDep != 0,
		Shared:        flags&flagShared != 0,
		Mispredict:    flags&flagMispredict != 0,
	}
	if in.IsMem {
		delta, err := binary.ReadVarint(t.r)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return workload.Insn{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		t.lastVA += uint64(delta)
		in.VA = addr.VA(t.lastVA)
	}
	t.n++
	return in, nil
}

// Count returns the instructions read so far.
func (t *Reader) Count() uint64 { return t.n }

// Capture writes n instructions from the generator into w.
func Capture(w io.Writer, g *workload.Generator, n uint64) error {
	tw := NewWriter(w)
	for i := uint64(0); i < n; i++ {
		if err := tw.Write(g.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}
