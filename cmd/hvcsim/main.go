// Command hvcsim runs a single simulation: pick an organization, load one
// or more named workloads, run a number of instructions per core, and
// print the performance report with a translation-energy breakdown.
//
// Usage:
//
//	hvcsim -org hybrid-manyseg+sc -workloads gups,mcf -insns 500000 -cores 2
//	hvcsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hybridvc"
	"hybridvc/internal/workload"
)

func main() {
	org := flag.String("org", string(hybridvc.HybridManySegSC),
		"memory system organization (see -list)")
	wls := flag.String("workloads", "gups", "comma-separated workload names")
	insns := flag.Uint64("insns", 200_000, "instructions per core")
	cores := flag.Int("cores", 1, "hardware cores")
	llc := flag.Int("llc", 0, "LLC size in bytes (0 = default 2 MiB)")
	dtlb := flag.Int("dtlb", 1024, "delayed TLB entries (hybrid-dtlb / enigma)")
	ic := flag.Int("ic", 32<<10, "index cache bytes (many-segment)")
	seed := flag.Int64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list organizations and workloads, then exit")
	jsonOut := flag.Bool("json", false, "print the report as JSON")
	compare := flag.Bool("compare", false, "run every native organization on the workloads and rank by cycles")
	flag.Parse()

	if *list {
		fmt.Println("organizations:")
		for _, o := range hybridvc.Organizations() {
			fmt.Printf("  %s\n", o)
		}
		fmt.Println("workloads:")
		var names []string
		for name := range workload.Specs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			s := workload.Specs[n]
			fmt.Printf("  %-11s %4d regions, %5.1f MiB, %d proc(s)\n",
				n, len(s.Regions), float64(s.TotalBytes())/(1<<20), max(1, s.Procs))
		}
		return
	}

	if *compare {
		runComparison(*wls, *insns, *cores, *llc, *dtlb, *ic, *seed)
		return
	}

	sys, err := hybridvc.New(hybridvc.Config{
		Org:               hybridvc.Organization(*org),
		Cores:             *cores,
		LLCBytes:          *llc,
		DelayedTLBEntries: *dtlb,
		IndexCacheBytes:   *ic,
		Seed:              *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcsim:", err)
		os.Exit(1)
	}
	for _, name := range strings.Split(*wls, ",") {
		if err := sys.LoadWorkload(strings.TrimSpace(name)); err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim:", err)
			os.Exit(1)
		}
	}
	report, err := sys.Run(*insns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcsim:", err)
		os.Exit(1)
	}
	if *jsonOut {
		fmt.Println(report.JSON())
		return
	}
	fmt.Println(report)
	fmt.Printf("per-core IPC: ")
	for i, ipc := range report.PerCoreIPC {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%.3f", ipc)
	}
	fmt.Println()
	fmt.Println("\ntranslation energy breakdown:")
	fmt.Print(sys.Mem.Energy().Breakdown())
}

// runComparison runs the workloads on every native organization and prints
// a ranking. Virtualized organizations are skipped (different substrate);
// OVC is skipped when more than one core is requested.
func runComparison(wls string, insns uint64, cores, llc, dtlb, ic int, seed int64) {
	type row struct {
		org    hybridvc.Organization
		report string
		cycles uint64
	}
	var rows []row
	for _, org := range hybridvc.Organizations() {
		if org.Virtualized() || (org == hybridvc.OVC && cores != 1) {
			continue
		}
		sys, err := hybridvc.New(hybridvc.Config{
			Org: org, Cores: cores, LLCBytes: llc,
			DelayedTLBEntries: dtlb, IndexCacheBytes: ic, Seed: seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim:", err)
			os.Exit(1)
		}
		for _, name := range strings.Split(wls, ",") {
			if err := sys.LoadWorkload(strings.TrimSpace(name)); err != nil {
				fmt.Fprintln(os.Stderr, "hvcsim:", err)
				os.Exit(1)
			}
		}
		rep, err := sys.Run(insns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim:", err)
			os.Exit(1)
		}
		rows = append(rows, row{org, rep.String(), rep.Cycles})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cycles < rows[j].cycles })
	fmt.Printf("workloads %q, %d instructions/core, %d core(s) — fastest first:\n", wls, insns, cores)
	for i, r := range rows {
		fmt.Printf("%2d. %s\n", i+1, r.report)
	}
}
