# Build/CI entry points. `make ci` is the gate: vet plus the full test
# suite under the race detector (the sweep runner is concurrent).
GO ?= go

.PHONY: all build test race vet ci bench sweep sweep-full clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The heavy simulation shape tests skip themselves under -race (they
# validate numerics, not concurrency, and are 10x+ slower instrumented);
# the runner's concurrency is still exercised end to end by the tests in
# experiments/runner_test.go. `ci` therefore runs both the plain suite
# and the race-instrumented one.
race:
	$(GO) test -race ./...

ci: vet test race

# bench runs the per-experiment benchmarks and the full-sweep benchmark,
# which writes BENCH_sweep.json (wall-clock seconds per Quick sweep) for
# tracking the perf trajectory.
bench:
	$(GO) test -run=NONE -bench=BenchmarkQuickFullSweep -benchtime=1x .

bench-all:
	$(GO) test -run=NONE -bench=. -benchmem .

# sweep regenerates every table/figure at Quick scale on all cores;
# sweep-full runs the paper-length windows.
sweep:
	$(GO) run ./cmd/tablegen -exp all

sweep-full:
	$(GO) run ./cmd/tablegen -exp all -full

clean:
	rm -f BENCH_sweep.json
