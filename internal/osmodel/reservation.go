package osmodel

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/segment"
)

// Reservation-based allocation (Section IV-B, after Navarro et al.):
// eager allocation wastes the unused tail of each region (Table III shows
// 17-75% waste for four workloads), while pure demand paging destroys the
// contiguity segments need. A reservation allocates the full contiguous
// physical extent up front but *promotes* fixed-size sub-chunks to real,
// translated segments only on first touch. Adjacent promoted chunks merge
// into a single segment, so a fully touched reservation converges to one
// segment — at the cost of transiently needing more table entries.

// ReserveChunkPages is the promotion granularity (2 MiB).
const ReserveChunkPages = addr.HugePageSize / addr.PageSize

// Reservation tracks a reserved-but-partially-promoted region.
type Reservation struct {
	Start  addr.VA
	Length uint64
	PABase addr.PA
	Perm   addr.Perm
	// promoted[i] is non-nil when chunk i is backed by that segment.
	promoted []*segment.Segment
}

// chunks returns the chunk count.
func (r *Reservation) chunks() int { return len(r.promoted) }

// chunkOf returns the chunk index containing va.
func (r *Reservation) chunkOf(va addr.VA) int {
	return int(uint64(va-r.Start) / (ReserveChunkPages * addr.PageSize))
}

// PromotedChunks returns how many chunks have been promoted.
func (r *Reservation) PromotedChunks() int {
	n := 0
	for _, s := range r.promoted {
		if s != nil {
			n++
		}
	}
	return n
}

// MmapReserved allocates a region with reservation-based backing: the
// physical extent is contiguous and reserved immediately, but pages are
// mapped and segments created only as chunks are touched (via HandleFault).
func (p *Process) MmapReserved(length uint64, perm addr.Perm) (addr.VA, error) {
	if length == 0 {
		return 0, fmt.Errorf("osmodel: zero-length reservation")
	}
	// Round to whole chunks so promotion never splits a chunk.
	chunkBytes := uint64(ReserveChunkPages * addr.PageSize)
	length = (length + chunkBytes - 1) &^ (chunkBytes - 1)
	frames := length / addr.PageSize
	pa, ok := p.k.Alloc.AllocContiguous(frames)
	if !ok {
		return 0, fmt.Errorf("osmodel: cannot reserve %d contiguous frames", frames)
	}
	// Align the VA to the chunk size so chunk boundaries are 2 MiB
	// boundaries (also keeps segment-cache granules clean).
	p.vaNext = (p.vaNext + addr.VA(chunkBytes-1)) &^ addr.VA(chunkBytes-1)
	start := p.vaNext
	p.vaNext += addr.VA(length) + addr.PageSize

	r := &Region{Start: start, Length: length, Perm: perm, Demand: true}
	r.Reservation = &Reservation{
		Start: start, Length: length, PABase: pa, Perm: perm,
		promoted: make([]*segment.Segment, length/chunkBytes),
	}
	p.Regions = append(p.Regions, r)
	return start, nil
}

// promoteChunk backs the chunk containing va: page-table entries appear,
// and the chunk joins a segment — merging with promoted neighbours so
// contiguous use converges to few segments.
func (p *Process) promoteChunk(r *Region, va addr.VA) bool {
	res := r.Reservation
	ci := res.chunkOf(va)
	if res.promoted[ci] != nil {
		return false // already promoted
	}
	chunkBytes := uint64(ReserveChunkPages * addr.PageSize)
	chunkVA := res.Start + addr.VA(uint64(ci)*chunkBytes)
	chunkPA := res.PABase + addr.PA(uint64(ci)*chunkBytes)

	// Map the chunk's pages.
	for f := uint64(0); f < ReserveChunkPages; f++ {
		if err := p.PT.Map(chunkVA+addr.VA(f*addr.PageSize), chunkPA+addr.PA(f*addr.PageSize), res.Perm, false); err != nil {
			return false
		}
	}

	// Determine the merged extent: this chunk plus adjacent promoted runs.
	lo, hi := ci, ci
	for lo > 0 && res.promoted[lo-1] != nil {
		lo--
	}
	for hi < res.chunks()-1 && res.promoted[hi+1] != nil {
		hi++
	}
	// Free the neighbours' segments (they are subsumed).
	freed := map[*segment.Segment]bool{}
	for i := lo; i <= hi; i++ {
		if s := res.promoted[i]; s != nil && !freed[s] {
			p.k.SegMgr.Free(s)
			freed[s] = true
		}
	}
	base := res.Start + addr.VA(uint64(lo)*chunkBytes)
	length := uint64(hi-lo+1) * chunkBytes
	paBase := res.PABase + addr.PA(uint64(lo)*chunkBytes)
	seg, err := p.k.SegMgr.Allocate(p.ASID, base, length, paBase, res.Perm)
	if err != nil {
		return false
	}
	for i := lo; i <= hi; i++ {
		res.promoted[i] = seg
	}
	// Refresh the region's segment list (distinct promoted segments).
	r.Segments = r.Segments[:0]
	seen := map[*segment.Segment]bool{}
	for _, s := range res.promoted {
		if s != nil && !seen[s] {
			r.Segments = append(r.Segments, s)
			seen[s] = true
		}
	}
	return true
}

// ReservedUtilization returns promoted/reserved chunks across the
// process's reservations (1.0 when no reservations exist).
func (p *Process) ReservedUtilization() float64 {
	var promoted, total int
	for _, r := range p.Regions {
		if r.Reservation == nil {
			continue
		}
		promoted += r.Reservation.PromotedChunks()
		total += r.Reservation.chunks()
	}
	if total == 0 {
		return 1
	}
	return float64(promoted) / float64(total)
}
