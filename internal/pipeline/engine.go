package pipeline

import (
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/energy"
)

// Verdict is a FrontEnd's routing decision for one reference.
type Verdict uint8

const (
	// Done means the front end completed the access itself (an
	// unrecoverable fault dead-end, or a fault-and-retry that already
	// folded the retried access into the result).
	Done Verdict = iota
	// Physical sends the access through the cache stage under its
	// physical (machine) address.
	Physical
	// Virtual sends the access through the cache stage under ASID+VA,
	// deferring translation to the Backend on an LLC miss.
	Virtual
)

// Decision carries a Verdict and the address/permission it resolved.
type Decision struct {
	Verdict Verdict
	PA      addr.PA
	Perm    addr.Perm
}

// DoneNow reports the access as already completed by the front end.
func DoneNow() Decision { return Decision{Verdict: Done} }

// GoPhysical routes the access physically at pa.
func GoPhysical(pa addr.PA, perm addr.Perm) Decision {
	return Decision{Verdict: Physical, PA: pa, Perm: perm}
}

// GoVirtual routes the access virtually; perm is recorded on cache fills.
func GoVirtual(perm addr.Perm) Decision {
	return Decision{Verdict: Virtual, Perm: perm}
}

// FrontEnd is the pre-L1 stage: synonym filtering, TLB lookups, range or
// direct segments, permission checks and the faults they raise. Route
// accumulates front-end latency/faults into res and decides how (or
// whether) the cache stage runs.
type FrontEnd interface {
	Route(req *Request, res *Result) Decision
}

// CacheStage replaces the default full-hierarchy cache access for
// organizations whose hierarchy is not uniformly addressed (OVC's
// virtual-L1/physical-outer split). Physical completes a physically
// routed access; Virtual completes a virtually routed one and returns the
// hierarchy outcome for the Backend.
type CacheStage interface {
	Physical(req *Request, pa addr.PA, perm addr.Perm, res *Result)
	Virtual(req *Request, perm addr.Perm, res *Result) cache.AccessResult
}

// Backend is the post-LLC stage of virtually routed accesses: delayed
// translation on the miss, DRAM, and writeback translation.
type Backend interface {
	Finish(req *Request, res *Result, hres *cache.AccessResult)
}

// BatchFrontEnd is an optional FrontEnd extension for the structure-of-
// arrays batch path. RouteBatch decodes a maximal prefix of reqs whose
// routing is pure: decided entirely from front-end state (synonym filters,
// TLBs, segment registers, shadow permissions) without touching any
// order-sensitive shared state — no cache hierarchy or DRAM accesses, no
// timed page walks, no OS faults. For each decoded element i it writes the
// decision into dec[i], adds any front-end latency to res[i], and commits
// the front-end bookkeeping (energy, TLB LRU and statistics, counters)
// that element would incur on the scalar path. It returns the number of
// elements decoded. The first impure element stops the prefix and must be
// left fully untouched (pure probes only, nothing committed): the engine
// routes it through the scalar path, which redoes its front end exactly,
// and then resumes batch decoding after it. Returning 0 is always correct
// and means "scalar-process the first element".
//
// The slices are parallel and equally sized; dec entries are engine-owned
// scratch reused across calls, so stale contents must be overwritten, not
// read.
type BatchFrontEnd interface {
	FrontEnd
	RouteBatch(reqs []Request, res []Result, dec []Decision) int
}

// BatchCacheStage is an optional CacheStage extension: PhysicalBatch
// completes a run of physically routed accesses in order, equivalent to
// one Physical call per element (dec[i].PA/Perm carry element i's route).
// Custom stages implement it where a batched pass is profitable — e.g. to
// prefetch their private structures across the run — and the engine falls
// back to per-element Physical calls otherwise.
type BatchCacheStage interface {
	CacheStage
	PhysicalBatch(reqs []Request, dec []Decision, res []Result)
}

// Engine executes a declaratively composed organization: it owns the
// shared substrate (Base) and runs FrontEnd -> cache stage -> Backend for
// every reference. Organizations embed *Engine and so inherit Access,
// AccessBatch, Energy, Hierarchy and the Base plumbing; a complete
// MemSystem is the engine plus a Name method and the stage hooks.
type Engine struct {
	*Base
	front FrontEnd
	cache CacheStage // nil: the standard full hierarchy
	back  Backend    // nil: no post-LLC stage

	// bfront/bcache cache the optional batch interfaces of front/cache so
	// the hot loop pays a nil-check instead of a type assertion per chunk.
	bfront BatchFrontEnd
	bcache BatchCacheStage

	// dec is the engine-owned decision lane of the structure-of-arrays
	// batch path: RouteBatch decodes reqs[i] into dec[i], and the dispatch
	// stage consumes the run without re-entering the front end.
	dec []Decision
	// wbs snapshots a batched access's writebacks so backend stages can
	// walk them while nested accesses (page walks) reuse the hierarchy's
	// scratch buffer.
	wbs []addr.Name
	// hres is the reusable hierarchy outcome handed to the Backend. A
	// local would escape through the interface call and cost one heap
	// allocation per virtually routed access. Reuse is safe: re-entrant
	// accesses (fault retries) finish before the outcome is stored.
	hres cache.AccessResult
	// touch accumulates TouchSets checksums so the prefetch pass cannot be
	// dead-code-eliminated.
	touch uint64
}

// NewEngine composes an organization. cacheStage and back may be nil.
func NewEngine(base *Base, front FrontEnd, cacheStage CacheStage, back Backend) *Engine {
	e := &Engine{Base: base, front: front, cache: cacheStage, back: back}
	e.bfront, _ = front.(BatchFrontEnd)
	e.bcache, _ = cacheStage.(BatchCacheStage)
	return e
}

// Energy implements MemSystem for every organization.
func (e *Engine) Energy() *energy.Accumulator { return e.Acc }

// Hierarchy implements MemSystem for every organization.
func (e *Engine) Hierarchy() *cache.Hierarchy { return e.Hier }

// Access performs one reference through the stage pipeline.
func (e *Engine) Access(req Request) Result {
	var res Result
	e.access(&req, &res)
	return res
}

// AccessBatch performs len(reqs) references in order, writing outcome i
// into res[i]. It is the allocation-free hot path: both slices are caller
// provided (and reused across calls), and the hierarchy, translator and
// writeback plumbing run on engine-owned scratch buffers. Results are
// identical to len(reqs) scalar Access calls.
//
// It panics when res is shorter than reqs. When res is longer, only the
// first len(reqs) entries are written; the tail is left untouched (not
// zeroed), so callers may batch into a window of a larger reusable buffer.
// A zero-length batch returns immediately without touching engine state.
//
// When the front end implements BatchFrontEnd and no probe is attached,
// the batch runs as a staged structure-of-arrays pass: RouteBatch decodes
// a run of pure routes into the engine's decision lane, the decoded run is
// dispatched through the cache/backend stages (with the tag sets of
// upcoming lanes touched block-wise to overlap host-memory latency), and
// any impure element between runs goes through the scalar access path.
// With a probe attached the whole batch takes the scalar path, preserving
// the exact per-reference event order observers rely on.
func (e *Engine) AccessBatch(reqs []Request, res []Result) {
	if len(res) < len(reqs) {
		panic("pipeline: AccessBatch result slice shorter than request slice")
	}
	if len(reqs) == 0 {
		return
	}
	res = res[:len(reqs)]
	for i := range res {
		res[i] = Result{}
	}
	prev := e.scratchMode
	e.scratchMode = true
	if e.bfront == nil || e.probe != nil {
		for i := range reqs {
			e.access(&reqs[i], &res[i])
		}
		e.scratchMode = prev
		return
	}
	if cap(e.dec) < len(reqs) {
		e.dec = make([]Decision, len(reqs))
	}
	// streak counts consecutive RouteBatch calls that decoded nothing: the
	// stream is in an impure stretch (a TLB-miss walk storm, say), where
	// probing ahead is pure overhead. The loop then scalar-processes a few
	// elements — the streak length, capped — before probing again, so the
	// probe cost amortizes over the stretch while a return to pure traffic
	// is still noticed within a handful of elements.
	streak := 0
	for i := 0; i < len(reqs); {
		if streak > 0 {
			skip := min(streak, maxImpureSkip)
			for k := 0; k < skip && i < len(reqs); k++ {
				e.access(&reqs[i], &res[i])
				i++
			}
			if i == len(reqs) {
				break
			}
		}
		n := e.bfront.RouteBatch(reqs[i:], res[i:], e.dec[:len(reqs)-i])
		if n > 0 {
			e.dispatchRun(reqs[i:i+n], e.dec[:n], res[i:i+n])
			i += n
			streak = 0
		} else {
			streak++
		}
		if i < len(reqs) {
			// The element that stopped the run is impure (timed walk, OS
			// fault, rebuild step): the scalar path handles it whole, then
			// batch decoding resumes after it.
			e.access(&reqs[i], &res[i])
			i++
		}
	}
	e.scratchMode = prev
}

// maxImpureSkip bounds how many elements the batch loop scalar-processes
// between decode attempts during an impure stretch.
const maxImpureSkip = 8

// prefetchBlock is the number of decoded lanes whose cache sets are
// touched ahead of the serial dispatch loop. Large enough to give the host
// CPU real memory-level parallelism across independent tag fetches, small
// enough that the touched sets still sit in host caches when their lane
// dispatches.
const prefetchBlock = 32

// dispatchRun completes a run of decoded lanes: for each block of up to
// prefetchBlock lanes it first touches the hierarchy sets the lanes will
// scan (semantically invisible — see Hierarchy.TouchSets), then executes
// the cache/backend stages per lane exactly as the scalar path would.
// Physically routed lanes through a BatchCacheStage dispatch as sub-runs.
func (e *Engine) dispatchRun(reqs []Request, dec []Decision, res []Result) {
	for lo := 0; lo < len(reqs); lo += prefetchBlock {
		hi := lo + prefetchBlock
		if hi > len(reqs) {
			hi = len(reqs)
		}
		if e.cache == nil {
			e.prefetchLanes(reqs[lo:hi], dec[lo:hi])
		}
		i := lo
		for i < hi {
			if e.bcache != nil && dec[i].Verdict == Physical {
				j := i + 1
				for j < hi && dec[j].Verdict == Physical {
					j++
				}
				e.bcache.PhysicalBatch(reqs[i:j], dec[i:j], res[i:j])
				i = j
				continue
			}
			req, r := &reqs[i], &res[i]
			switch dec[i].Verdict {
			case Physical:
				if e.cache != nil {
					e.cache.Physical(req, dec[i].PA, dec[i].Perm, r)
				} else {
					lat, hres := e.PhysAccess(req.Core, req.Kind, dec[i].PA, dec[i].Perm)
					r.Latency += lat
					r.LLCMiss = hres.LLCMiss
					r.HitLevel = hres.HitLevel
				}
			case Virtual:
				if e.cache != nil {
					e.hres = e.cache.Virtual(req, dec[i].Perm, r)
				} else {
					e.hres = e.hierAccess(req.Core, req.Kind, addr.VirtName(req.Proc.ASID, req.VA), dec[i].Perm)
					// Snapshot the writebacks: the backend may issue nested
					// hierarchy accesses (walks) that reuse the scratch
					// buffer backing hres.Writebacks.
					e.wbs = append(e.wbs[:0], e.hres.Writebacks...)
					e.hres.Writebacks = e.wbs
					r.Latency += e.hres.Latency
					r.HitLevel = e.hres.HitLevel
				}
				if e.back != nil {
					e.back.Finish(req, r, &e.hres)
				}
			}
			i++
		}
	}
}

// prefetchLanes touches the hierarchy sets each decoded lane will scan.
// The checksum accumulates into e.touch so the loads stay live.
func (e *Engine) prefetchLanes(reqs []Request, dec []Decision) {
	t := e.touch
	for i := range dec {
		switch dec[i].Verdict {
		case Physical:
			t += e.Hier.TouchSets(reqs[i].Core, reqs[i].Kind, addr.PhysName(dec[i].PA))
		case Virtual:
			t += e.Hier.TouchSets(reqs[i].Core, reqs[i].Kind, addr.VirtName(reqs[i].Proc.ASID, reqs[i].VA))
		}
	}
	e.touch = t
}

// Retry re-executes the request after a fault repaired the mapping and
// folds the retried outcome into res. res.Fault stays set: the original
// reference did fault, whatever the retry then did. The retried access
// re-enters the pipeline, so it emits its own Route/Cache events; the
// Retry event lets observers reconcile event counts with the number of
// references the driver issued.
func (e *Engine) Retry(req *Request, res *Result) {
	if p := e.probe; p != nil {
		p.Retry(RetryEvent{Core: req.Core, Kind: req.Kind, VA: req.VA})
	}
	r2 := e.Access(*req)
	res.Latency += r2.Latency
	res.LLCMiss = r2.LLCMiss
	res.HitLevel = r2.HitLevel
}

// access runs the three stages for one reference. Probe events fire from
// the stable points of the flow: Route after the front end decided, Cache
// after the hierarchy (and, for virtual routes, the backend) completed —
// so the CacheEvent carries the reference's final HitLevel/LLCMiss on the
// unified scale regardless of which cache stage ran.
func (e *Engine) access(req *Request, res *Result) {
	d := e.front.Route(req, res)
	if p := e.probe; p != nil {
		p.Route(RouteEvent{Core: req.Core, Kind: req.Kind, VA: req.VA, Verdict: d.Verdict})
	}
	switch d.Verdict {
	case Physical:
		if e.cache != nil {
			e.cache.Physical(req, d.PA, d.Perm, res)
		} else {
			lat, hres := e.PhysAccess(req.Core, req.Kind, d.PA, d.Perm)
			res.Latency += lat
			res.LLCMiss = hres.LLCMiss
			res.HitLevel = hres.HitLevel
		}
		if p := e.probe; p != nil {
			p.Cache(CacheEvent{Core: req.Core, Kind: req.Kind,
				HitLevel: res.HitLevel, LLCMiss: res.LLCMiss})
		}
	case Virtual:
		if e.cache != nil {
			e.hres = e.cache.Virtual(req, d.Perm, res)
		} else {
			e.hres = e.hierAccess(req.Core, req.Kind, addr.VirtName(req.Proc.ASID, req.VA), d.Perm)
			if e.scratchMode {
				// Snapshot the writebacks: the backend may issue nested
				// hierarchy accesses (walks) that reuse the scratch buffer
				// backing hres.Writebacks.
				e.wbs = append(e.wbs[:0], e.hres.Writebacks...)
				e.hres.Writebacks = e.wbs
			}
			res.Latency += e.hres.Latency
			res.HitLevel = e.hres.HitLevel
		}
		if e.back != nil {
			e.back.Finish(req, res, &e.hres)
		}
		if p := e.probe; p != nil {
			p.Cache(CacheEvent{Core: req.Core, Kind: req.Kind, Virtual: true,
				HitLevel: res.HitLevel, LLCMiss: res.LLCMiss})
		}
	}
}
