package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridvc/internal/addr"
)

// refLRUSet is a reference model of one set: a slice ordered by recency.
type refLRUSet struct {
	names []addr.Name
	ways  int
}

func (r *refLRUSet) touch(n addr.Name) bool {
	for i, x := range r.names {
		if x == n {
			r.names = append(append(append([]addr.Name{}, r.names[:i]...), r.names[i+1:]...), n)
			return true
		}
	}
	return false
}

func (r *refLRUSet) fill(n addr.Name) (victim addr.Name, evicted bool) {
	if r.touch(n) {
		return addr.Name{}, false
	}
	if len(r.names) == r.ways {
		victim, evicted = r.names[0], true
		r.names = r.names[1:]
	}
	r.names = append(r.names, n)
	return victim, evicted
}

// TestCacheMatchesLRUReference drives random access/fill traffic through
// one cache set and a reference true-LRU model; hits, misses, and victims
// must agree exactly.
func TestCacheMatchesLRUReference(t *testing.T) {
	const ways = 4
	c := New(Config{Name: "ref", SizeBytes: ways * addr.LineSize, Ways: ways, HitLatency: 1})
	ref := &refLRUSet{ways: ways}
	rng := rand.New(rand.NewSource(21))
	asid := addr.MakeASID(0, 1)
	// 8 distinct lines over a 4-way set: plenty of evictions.
	names := make([]addr.Name, 8)
	for i := range names {
		names[i] = addr.VirtName(asid, addr.VA(i*addr.LineSize))
	}
	for step := 0; step < 10000; step++ {
		n := names[rng.Intn(len(names))]
		if rng.Intn(2) == 0 {
			got := c.Access(n) != nil
			want := ref.touch(n)
			if got != want {
				t.Fatalf("step %d: access hit=%v want %v", step, got, want)
			}
		} else {
			v, evicted := c.Fill(n, Exclusive, addr.PermRW)
			rv, revicted := ref.fill(n)
			if evicted != revicted || (evicted && v.Name != rv) {
				t.Fatalf("step %d: victim %v(%v) want %v(%v)", step, v.Name, evicted, rv, revicted)
			}
		}
	}
}

// TestCacheSetIndexingProperty: lines differing only above the set-index
// bits always land in the same set; FlushMatching over everything empties
// the cache.
func TestCacheSetIndexingProperty(t *testing.T) {
	f := func(lineA, lineB uint16) bool {
		c := New(Config{Name: "p", SizeBytes: 4 << 10, Ways: 4, HitLatency: 1})
		asid := addr.MakeASID(0, 1)
		a := addr.VirtName(asid, addr.VA(lineA)*addr.LineSize)
		b := addr.VirtName(asid, addr.VA(lineB)*addr.LineSize)
		c.Fill(a, Exclusive, addr.PermRW)
		c.Fill(b, Modified, addr.PermRW)
		want := 2
		if a == b {
			want = 1
		}
		if c.Occupancy() != want {
			return false
		}
		flushed, _ := c.FlushMatching(func(addr.Name) bool { return true })
		return flushed == want && c.Occupancy() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHierarchyWritebackConservation: every dirty line eventually either
// stays cached or appears in a writeback — no dirty data silently vanishes.
func TestHierarchyWritebackConservation(t *testing.T) {
	h := testHierarchy(1)
	asid := addr.MakeASID(0, 1)
	written := map[addr.Name]bool{}
	writtenBack := map[addr.Name]bool{}
	rng := rand.New(rand.NewSource(31))
	for step := 0; step < 5000; step++ {
		n := addr.VirtName(asid, addr.VA(rng.Intn(1024))*addr.LineSize)
		kind := Read
		if rng.Intn(3) == 0 {
			kind = Write
			written[n] = true
		}
		res := h.Access(0, kind, n, addr.PermRW)
		for _, wb := range res.Writebacks {
			writtenBack[wb] = true
		}
	}
	// Each written line is either still cached somewhere (dirty or clean)
	// or was written back.
	for n := range written {
		if writtenBack[n] {
			continue
		}
		if h.LLC().Probe(n) != nil || h.L2(0).Probe(n) != nil || h.L1D(0).Probe(n) != nil {
			continue
		}
		t.Fatalf("dirty line %v vanished without a writeback", n)
	}
}
