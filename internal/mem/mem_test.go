package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridvc/internal/addr"
)

func TestAllocatorBasic(t *testing.T) {
	a := NewAllocator(16 * addr.PageSize)
	if a.TotalFrames() != 16 || a.FreeFrames() != 16 {
		t.Fatalf("frames: total=%d free=%d", a.TotalFrames(), a.FreeFrames())
	}
	pa, ok := a.AllocContiguous(4)
	if !ok || pa != 0 {
		t.Fatalf("first alloc: pa=%#x ok=%v", uint64(pa), ok)
	}
	if a.FreeFrames() != 12 || a.AllocatedFrames() != 4 {
		t.Errorf("after alloc: free=%d allocated=%d", a.FreeFrames(), a.AllocatedFrames())
	}
	pa2, ok := a.AllocContiguous(12)
	if !ok || pa2 != addr.FrameToPA(4) {
		t.Fatalf("second alloc: pa=%#x ok=%v", uint64(pa2), ok)
	}
	if _, ok := a.AllocFrame(); ok {
		t.Error("allocation succeeded with no free frames")
	}
	a.Free(pa, 4)
	if a.FreeFrames() != 4 {
		t.Errorf("after free: free=%d", a.FreeFrames())
	}
	if pa3, ok := a.AllocContiguous(4); !ok || pa3 != pa {
		t.Errorf("realloc of freed extent: pa=%#x ok=%v", uint64(pa3), ok)
	}
}

func TestAllocatorContiguity(t *testing.T) {
	// Contiguous allocations must be physically contiguous — this is the
	// property segment translation depends on.
	a := NewAllocator(1024 * addr.PageSize)
	pa, ok := a.AllocContiguous(100)
	if !ok {
		t.Fatal("allocation failed")
	}
	for i := uint64(0); i < 100; i++ {
		want := addr.PA(uint64(pa) + i*addr.PageSize)
		if want.Frame() != pa.Frame()+i {
			t.Fatalf("frame %d not contiguous", i)
		}
	}
}

func TestAllocatorCoalescing(t *testing.T) {
	a := NewAllocator(8 * addr.PageSize)
	p0, _ := a.AllocContiguous(2)
	p1, _ := a.AllocContiguous(2)
	p2, _ := a.AllocContiguous(2)
	p3, _ := a.AllocContiguous(2)
	a.Free(p0, 2)
	a.Free(p2, 2)
	if a.NumFreeExtents() != 2 {
		t.Errorf("free extents = %d, want 2", a.NumFreeExtents())
	}
	if a.LargestFreeExtent() != 2 {
		t.Errorf("largest = %d, want 2", a.LargestFreeExtent())
	}
	// Freeing p1 must merge p0,p1,p2 into one 6-frame extent.
	a.Free(p1, 2)
	if a.NumFreeExtents() != 1 || a.LargestFreeExtent() != 6 {
		t.Errorf("after middle free: extents=%d largest=%d",
			a.NumFreeExtents(), a.LargestFreeExtent())
	}
	a.Free(p3, 2)
	if a.NumFreeExtents() != 1 || a.LargestFreeExtent() != 8 {
		t.Errorf("after all free: extents=%d largest=%d",
			a.NumFreeExtents(), a.LargestFreeExtent())
	}
	// Full reallocation must succeed.
	if _, ok := a.AllocContiguous(8); !ok {
		t.Error("full-size alloc failed after coalescing")
	}
}

func TestAllocatorFragmentationBlocksLargeAlloc(t *testing.T) {
	a := NewAllocator(8 * addr.PageSize)
	var singles []addr.PA
	for i := 0; i < 8; i++ {
		p, ok := a.AllocFrame()
		if !ok {
			t.Fatal("single alloc failed")
		}
		singles = append(singles, p)
	}
	// Free every other frame: 4 frames free but max contiguous run is 1.
	for i := 0; i < 8; i += 2 {
		a.Free(singles[i], 1)
	}
	if a.FreeFrames() != 4 {
		t.Fatalf("free = %d", a.FreeFrames())
	}
	if _, ok := a.AllocContiguous(2); ok {
		t.Error("contiguous alloc succeeded despite fragmentation")
	}
	if _, ok := a.AllocFrame(); !ok {
		t.Error("single alloc failed with free frames available")
	}
}

func TestAllocatorDoubleFreePanics(t *testing.T) {
	a := NewAllocator(8 * addr.PageSize)
	p, _ := a.AllocContiguous(2)
	a.Free(p, 2)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	a.Free(p, 2)
}

func TestAllocatorZeroAlloc(t *testing.T) {
	a := NewAllocator(8 * addr.PageSize)
	if _, ok := a.AllocContiguous(0); ok {
		t.Error("zero-frame allocation succeeded")
	}
}

func TestAllocatorRandomizedInvariant(t *testing.T) {
	// Random alloc/free sequences must conserve frames and never hand out
	// overlapping extents.
	rng := rand.New(rand.NewSource(42))
	a := NewAllocator(256 * addr.PageSize)
	type alloc struct {
		pa addr.PA
		n  uint64
	}
	var live []alloc
	owner := make(map[uint64]int) // frame -> allocation index
	for step := 0; step < 2000; step++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			n := uint64(rng.Intn(16) + 1)
			pa, ok := a.AllocContiguous(n)
			if !ok {
				continue
			}
			for f := pa.Frame(); f < pa.Frame()+n; f++ {
				if _, taken := owner[f]; taken {
					t.Fatalf("frame %d double-allocated", f)
				}
				owner[f] = len(live)
			}
			live = append(live, alloc{pa, n})
		} else {
			i := rng.Intn(len(live))
			al := live[i]
			a.Free(al.pa, al.n)
			for f := al.pa.Frame(); f < al.pa.Frame()+al.n; f++ {
				delete(owner, f)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if a.AllocatedFrames() != uint64(len(owner)) {
			t.Fatalf("allocated count %d != tracked %d",
				a.AllocatedFrames(), len(owner))
		}
	}
}

func TestNewAllocatorPanics(t *testing.T) {
	for _, size := range []uint64{0, addr.PageSize - 1, addr.PageSize + 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAllocator(%d) did not panic", size)
				}
			}()
			NewAllocator(size)
		}()
	}
}

func TestStoreReadWrite(t *testing.T) {
	s := NewStore()
	if v := s.Read64(0x1000); v != 0 {
		t.Errorf("unwritten read = %#x", v)
	}
	s.Write64(0x1000, 0xdead_beef_cafe_f00d)
	if v := s.Read64(0x1000); v != 0xdead_beef_cafe_f00d {
		t.Errorf("read back = %#x", v)
	}
	// Adjacent word untouched.
	if v := s.Read64(0x1008); v != 0 {
		t.Errorf("adjacent word = %#x", v)
	}
	if s.PagesBacked() != 1 {
		t.Errorf("pages backed = %d", s.PagesBacked())
	}
	s.ZeroPage(0x1008)
	if v := s.Read64(0x1000); v != 0 {
		t.Errorf("after ZeroPage: %#x", v)
	}
}

func TestStoreRoundTripProperty(t *testing.T) {
	s := NewStore()
	f := func(off uint16, v uint64) bool {
		pa := addr.PA(uint64(off&0x1ff) * 8)
		s.Write64(pa, v)
		return s.Read64(pa) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreUnalignedPanics(t *testing.T) {
	s := NewStore()
	defer func() {
		if recover() == nil {
			t.Error("unaligned access did not panic")
		}
	}()
	s.Read64(3)
}

func TestDRAMRowBuffer(t *testing.T) {
	d := NewDRAM(DRAMConfig{Banks: 2, RowBytes: 1024, RowHitCycles: 50, RowMissCycles: 150})
	if lat := d.Access(0); lat != 150 {
		t.Errorf("cold access = %d, want 150", lat)
	}
	if lat := d.Access(64); lat != 50 {
		t.Errorf("same-row access = %d, want 50", lat)
	}
	// Row 1 maps to bank 1; row 0 stays open in bank 0.
	if lat := d.Access(1024); lat != 150 {
		t.Errorf("new row = %d, want 150", lat)
	}
	if lat := d.Access(128); lat != 50 {
		t.Errorf("bank 0 row still open = %d, want 50", lat)
	}
	// Row 2 maps back to bank 0 and closes row 0.
	if lat := d.Access(2048); lat != 150 {
		t.Errorf("conflicting row = %d, want 150", lat)
	}
	if lat := d.Access(0); lat != 150 {
		t.Errorf("evicted row reopened = %d, want 150", lat)
	}
	if d.Accesses != 6 || d.RowHits != 2 {
		t.Errorf("accesses=%d hits=%d", d.Accesses, d.RowHits)
	}
	if got, want := d.RowHitRate(), 2.0/6.0; got != want {
		t.Errorf("row hit rate = %f, want %f", got, want)
	}
}

func TestDRAMSequentialLocality(t *testing.T) {
	// Streaming accesses must enjoy a high row hit rate; random accesses a
	// low one. This is the property that separates stream from gups.
	d := NewDRAM(DefaultDRAMConfig())
	for i := uint64(0); i < 10000; i++ {
		d.Access(addr.PA(i * 64))
	}
	if d.RowHitRate() < 0.9 {
		t.Errorf("sequential row hit rate = %f, want >= 0.9", d.RowHitRate())
	}

	d2 := NewDRAM(DefaultDRAMConfig())
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		d2.Access(addr.PA(rng.Uint64() % (1 << 32)).LineAligned())
	}
	if d2.RowHitRate() > 0.2 {
		t.Errorf("random row hit rate = %f, want <= 0.2", d2.RowHitRate())
	}
}

func TestNewDRAMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid DRAM config did not panic")
		}
	}()
	NewDRAM(DRAMConfig{Banks: 0, RowBytes: 1024})
}
