package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

// fake installs a fake build-info reader for the duration of the test.
func fake(t *testing.T, bi *debug.BuildInfo, ok bool) {
	t.Helper()
	prev := read
	read = func() (*debug.BuildInfo, bool) { return bi, ok }
	t.Cleanup(func() { read = prev })
}

func TestVersionNoBuildInfo(t *testing.T) {
	fake(t, nil, false)
	if v := Version(); !strings.HasPrefix(v, "unknown") {
		t.Errorf("Version() = %q, want unknown prefix", v)
	}
}

func TestVersionModuleStamped(t *testing.T) {
	fake(t, &debug.BuildInfo{Main: debug.Module{Version: "v1.2.3"}}, true)
	if v := Version(); !strings.HasPrefix(v, "v1.2.3 (") {
		t.Errorf("Version() = %q, want v1.2.3 prefix", v)
	}
}

func TestVersionVCSFallback(t *testing.T) {
	fake(t, &debug.BuildInfo{
		Main: debug.Module{Version: "(devel)"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			{Key: "vcs.modified", Value: "true"},
		},
	}, true)
	v := Version()
	if !strings.HasPrefix(v, "0123456789ab-dirty (") {
		t.Errorf("Version() = %q, want short dirty revision", v)
	}
}

func TestVersionDevelWithoutVCS(t *testing.T) {
	fake(t, &debug.BuildInfo{}, true)
	if v := Version(); !strings.HasPrefix(v, "(devel) (") {
		t.Errorf("Version() = %q, want (devel) prefix", v)
	}
}

func TestPrint(t *testing.T) {
	fake(t, &debug.BuildInfo{Main: debug.Module{Version: "v0.9.0"}}, true)
	var sb strings.Builder
	Print(&sb, "hvcd")
	if got := sb.String(); !strings.HasPrefix(got, "hvcd v0.9.0") {
		t.Errorf("Print wrote %q", got)
	}
}
