package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text exposition (format v0.0.4) without
// any external dependency. It enforces the well-formedness properties
// the daemon's /metrics contract promises:
//
//   - every sample belongs to a family declared by a preceding # TYPE
//     line with a known type;
//   - metric and label names match the Prometheus grammar and sample
//     values parse as floats (including +Inf/-Inf/NaN);
//   - no series (name + full label set) appears twice;
//   - histogram families expose _bucket/_sum/_count only, each bucket
//     series has strictly increasing `le` bounds with monotone
//     non-decreasing cumulative counts, ends in a `+Inf` bucket, and
//     that +Inf count equals the series' _count sample.
//
// A nil return means the exposition is scrape-ready.
func Lint(data []byte) error {
	l := &linter{
		types:   map[string]string{},
		sampled: map[string]bool{},
		series:  map[string]int{},
		buckets: map[string]*bucketState{},
		counts:  map[string]float64{},
		sums:    map[string]bool{},
	}
	for i, line := range strings.Split(string(data), "\n") {
		if err := l.line(strings.TrimRight(line, "\r"), i+1); err != nil {
			return err
		}
	}
	return l.finish()
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

var knownTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// bucketState tracks one histogram bucket series (family + labels
// without le) while its _bucket samples stream past.
type bucketState struct {
	family   string
	lastLE   float64
	lastCum  float64
	seenAny  bool
	seenInf  bool
	infCount float64
	line     int
}

type linter struct {
	types   map[string]string // family → type
	sampled map[string]bool   // family → samples seen (TYPE must precede)
	series  map[string]int    // series key → first line (dup detection)
	buckets map[string]*bucketState
	counts  map[string]float64 // histogram series key → _count value
	sums    map[string]bool    // histogram series key → _sum present
}

func (l *linter) line(line string, n int) error {
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return l.comment(line, n)
	}
	name, labels, value, err := parseSample(line)
	if err != nil {
		return fmt.Errorf("line %d: %w", n, err)
	}
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("line %d: bad metric name %q", n, name)
	}
	for _, lb := range labels {
		if !labelNameRe.MatchString(lb.Name) {
			return fmt.Errorf("line %d: bad label name %q", n, lb.Name)
		}
	}

	family, role := name, ""
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && l.types[base] == "histogram" {
			family, role = base, suffix
			break
		}
	}
	typ, declared := l.types[family]
	if !declared {
		return fmt.Errorf("line %d: sample %s has no preceding # TYPE", n, name)
	}
	if typ == "histogram" && role == "" {
		return fmt.Errorf("line %d: histogram family %s exposes bare sample %s", n, family, name)
	}
	l.sampled[family] = true

	key := name + canonicalLabels(labels, "")
	if first, dup := l.series[key]; dup {
		return fmt.Errorf("line %d: duplicate series %s (first at line %d)", n, key, first)
	}
	l.series[key] = n

	if typ != "histogram" {
		return nil
	}
	hkey := family + canonicalLabels(labels, "le")
	switch role {
	case "_bucket":
		le, ok := findLabel(labels, "le")
		if !ok {
			return fmt.Errorf("line %d: bucket sample %s without le label", n, name)
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("line %d: bucket le=%q does not parse: %v", n, le, err)
		}
		bs := l.buckets[hkey]
		if bs == nil {
			bs = &bucketState{family: family, line: n}
			l.buckets[hkey] = bs
		}
		if bs.seenInf {
			return fmt.Errorf("line %d: bucket after +Inf in series %s", n, hkey)
		}
		if bs.seenAny && bound <= bs.lastLE {
			return fmt.Errorf("line %d: le buckets not strictly increasing in %s (%v after %v)",
				n, hkey, bound, bs.lastLE)
		}
		if bs.seenAny && value < bs.lastCum {
			return fmt.Errorf("line %d: cumulative bucket count decreased in %s (%v after %v)",
				n, hkey, value, bs.lastCum)
		}
		bs.seenAny, bs.lastLE, bs.lastCum = true, bound, value
		if le == "+Inf" {
			bs.seenInf, bs.infCount = true, value
		}
	case "_count":
		l.counts[hkey] = value
	case "_sum":
		l.sums[hkey] = true
	}
	return nil
}

func (l *linter) comment(line string, n int) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("line %d: malformed TYPE line %q", n, line)
		}
		name, typ := fields[2], fields[3]
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("line %d: bad metric name %q in TYPE", n, name)
		}
		if !knownTypes[typ] {
			return fmt.Errorf("line %d: unknown metric type %q", n, typ)
		}
		if _, dup := l.types[name]; dup {
			return fmt.Errorf("line %d: duplicate TYPE for %s", n, name)
		}
		if l.sampled[name] {
			return fmt.Errorf("line %d: TYPE for %s after its samples", n, name)
		}
		l.types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("line %d: malformed HELP line %q", n, line)
		}
	}
	return nil
}

func (l *linter) finish() error {
	for key, bs := range l.buckets {
		if !bs.seenInf {
			return fmt.Errorf("histogram series %s has no +Inf bucket", key)
		}
		count, ok := l.counts[key]
		if !ok {
			return fmt.Errorf("histogram series %s has buckets but no _count", key)
		}
		if count != bs.infCount {
			return fmt.Errorf("histogram series %s: +Inf bucket %v != _count %v",
				key, bs.infCount, count)
		}
		if !l.sums[key] {
			return fmt.Errorf("histogram series %s has no _sum", key)
		}
	}
	for key := range l.counts {
		if _, ok := l.buckets[key]; !ok {
			return fmt.Errorf("histogram series %s has _count but no buckets", key)
		}
	}
	return nil
}

// parseSample splits one exposition sample line into name, labels and
// value. Timestamps (an optional trailing integer) are accepted.
func parseSample(line string) (string, []Label, float64, error) {
	name := line
	var labels []Label
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		var err error
		labels, rest, err = parseLabels(line[i+1:])
		if err != nil {
			return "", nil, 0, err
		}
	} else if i := strings.IndexByte(line, ' '); i >= 0 {
		name, rest = line[:i], line[i:]
	} else {
		return "", nil, 0, fmt.Errorf("sample %q has no value", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q: want value [timestamp], got %q", name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: bad value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("sample %q: bad timestamp %q", name, fields[1])
		}
	}
	return name, labels, v, nil
}

// parseLabels consumes `name="value",...}` and returns the remainder of
// the line after the closing brace.
func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	for {
		s = strings.TrimLeft(s, " ,")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label set %q missing =", s)
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s value not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("label %s value unterminated", name)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if s == "" {
					return nil, "", fmt.Errorf("label %s value ends in backslash", name)
				}
				esc := s[0]
				s = s[1:]
				switch esc {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(esc)
				default:
					val.WriteByte(esc) // tolerate Go-style escapes from %q
				}
				continue
			}
			val.WriteByte(c)
		}
		labels = append(labels, Label{Name: name, Value: val.String()})
	}
}

// canonicalLabels renders a sorted, deduplication-stable key for a label
// set, optionally dropping one label (le for histogram grouping).
func canonicalLabels(labels []Label, drop string) string {
	kept := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.Name == drop {
			continue
		}
		kept = append(kept, fmt.Sprintf("%s=%q", l.Name, l.Value))
	}
	sort.Strings(kept)
	return "{" + strings.Join(kept, ",") + "}"
}

// findLabel returns the value of the named label.
func findLabel(labels []Label, name string) (string, bool) {
	for _, l := range labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}
