package cache

import (
	"fmt"

	"hybridvc/internal/addr"
)

// PayloadListener receives eviction notifications for metadata blocks.
// When a translation- or record-bearing block leaves the LLC (capacity
// eviction, ASID flush, or an explicit FlushName shootdown), the owning
// organization is told so it can reconcile its own state — the cache-side
// mirror of the OS shootdown contract.
type PayloadListener interface {
	PayloadEvicted(n addr.Name, payload uint64)
}

// payloadTable is the hierarchy-owned open-addressed map from a metadata
// block's packed name key to its one-word payload. It follows the permTable
// idiom (Fibonacci hashing, linear probing, tombstoned deletes, grow at 3/4
// occupancy) but keys are full 64-bit Name.Key() values, so live slots are
// marked with keyValidBit — bit 1, which Name.Key() never sets — instead of
// packing state into spare key bits. Steady-state lookups allocate nothing.
type payloadTable struct {
	keys  []uint64 // Name.Key()|keyValidBit, 0 (empty), or payloadTomb
	vals  []uint64
	used  int // live + tombstones
	live  int
	shift uint
}

const payloadInitLog = 8

// payloadTomb marks a deleted slot. Metadata names always carry a nonzero
// payload kind in key bits 2..3, so no stored key ever equals the bare
// valid bit.
const payloadTomb = uint64(keyValidBit)

func newPayloadTable() *payloadTable {
	return &payloadTable{
		keys:  make([]uint64, 1<<payloadInitLog),
		vals:  make([]uint64, 1<<payloadInitLog),
		shift: 64 - payloadInitLog,
	}
}

func (t *payloadTable) idx(k uint64) uint64 {
	return k * 0x9e3779b97f4a7c15 >> t.shift
}

func (t *payloadTable) get(k uint64) (uint64, bool) {
	mask := uint64(len(t.keys) - 1)
	sk := k | keyValidBit
	for i := t.idx(k); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case sk:
			return t.vals[i], true
		case 0:
			return 0, false
		}
	}
}

func (t *payloadTable) set(k, v uint64) {
	mask := uint64(len(t.keys) - 1)
	sk := k | keyValidBit
	free := -1
	for i := t.idx(k); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case sk:
			t.vals[i] = v
			return
		case payloadTomb:
			if free < 0 {
				free = int(i)
			}
		case 0:
			if free < 0 {
				free = int(i)
				t.used++
			}
			t.keys[free] = sk
			t.vals[free] = v
			t.live++
			if 4*t.used > 3*len(t.keys) {
				t.grow()
			}
			return
		}
	}
}

func (t *payloadTable) del(k uint64) (uint64, bool) {
	mask := uint64(len(t.keys) - 1)
	sk := k | keyValidBit
	for i := t.idx(k); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case sk:
			v := t.vals[i]
			t.keys[i] = payloadTomb
			t.vals[i] = 0
			t.live--
			return v, true
		case 0:
			return 0, false
		}
	}
}

// grow rehashes into a table at most half full of live entries, reclaiming
// tombstones in the process.
func (t *payloadTable) grow() {
	size := len(t.keys)
	for t.live*2 >= size {
		size *= 2
	}
	keys, vals := t.keys, t.vals
	t.keys = make([]uint64, size)
	t.vals = make([]uint64, size)
	t.shift = 64 - log2(uint64(size))
	t.used, t.live = 0, 0
	for i, sk := range keys {
		if sk != 0 && sk != payloadTomb {
			t.set(sk&^keyValidBit, vals[i])
		}
	}
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// forEach visits every live entry in slot order (deterministic for a given
// insertion history).
func (t *payloadTable) forEach(fn func(k, v uint64)) {
	for i, sk := range t.keys {
		if sk != 0 && sk != payloadTomb {
			fn(sk&^keyValidBit, t.vals[i])
		}
	}
}

// SetPayloadListener installs the eviction-notification sink for metadata
// blocks. A single owner per hierarchy suffices: each organization that
// parks payloads in the caches owns all of them.
func (h *Hierarchy) SetPayloadListener(l PayloadListener) { h.payloadListener = l }

// Payload returns the payload word recorded for a metadata block name.
func (h *Hierarchy) Payload(n addr.Name) (uint64, bool) { return h.payloads.get(n.Key()) }

// PayloadCount returns the number of live metadata payloads.
func (h *Hierarchy) PayloadCount() int { return h.payloads.live }

// ForEachPayload visits every live (name, payload) pair in table slot
// order, which is deterministic for a given run.
func (h *Hierarchy) ForEachPayload(fn func(n addr.Name, payload uint64)) {
	h.payloads.forEach(func(k, v uint64) { fn(addr.NameFromKey(k), v) })
}

// ProbePayload looks a metadata block up in core's private L2 and then the
// shared LLC — never the L1s, which stay data/instruction only — recording
// normal hit/miss statistics and LRU updates. An LLC hit promotes the block
// into the probing core's L2 (inclusion preserved via the usual victim
// path). It returns the payload word, the lookup latency, and whether the
// block was resident. On a miss nothing is filled: the caller walks the
// authoritative structure and calls FillPayload.
func (h *Hierarchy) ProbePayload(core int, n addr.Name) (payload, latency uint64, ok bool) {
	latency = h.l2[core].Config().HitLatency
	if h.l2[core].Access(n) != nil {
		p, _ := h.payloads.get(n.Key())
		return p, latency, true
	}
	latency += h.llc.Config().HitLatency
	if l := h.llc.Access(n); l != nil {
		p, _ := h.payloads.get(n.Key())
		if v, evicted := h.l2[core].Fill(n, Shared, l.Perm); evicted {
			h.handleL2Victim(core, v)
		}
		return p, latency, true
	}
	return 0, latency, false
}

// FillPayload installs a metadata block into the LLC and the filling core's
// private L2 with the given payload word. Metadata blocks are always clean
// and Shared (the authoritative copy lives in OS structures), so eviction
// never writes them back; the LLC victim, if any, is back-invalidated like
// any other fill and its own payload — when it was a metadata block — is
// dropped with notification.
func (h *Hierarchy) FillPayload(core int, n addr.Name, payload uint64) {
	h.payloads.set(n.Key(), payload)
	if v, evicted := h.llc.Fill(n, Shared, addr.PermRO); evicted {
		h.backInvalidate(v.Name, nil)
		if v.Dirty {
			h.MemWritebacks.Inc()
		}
	}
	if v, evicted := h.l2[core].Fill(n, Shared, addr.PermRO); evicted {
		h.handleL2Victim(core, v)
	}
}

// FlushName invalidates the exact block everywhere (all private caches and
// the LLC) and, for metadata blocks, drops the payload with notification.
// This is the shootdown-driven invalidation path: when the OS changes a
// mapping, the owning organization flushes the affected translation or
// record block by name.
func (h *Hierarchy) FlushName(n addr.Name) (flushed int) {
	dirty := false
	for c := 0; c < h.cfg.NumCores; c++ {
		for _, pc := range []*Cache{h.l1d[c], h.l1i[c], h.l2[c]} {
			if d, present := pc.Invalidate(n); present {
				flushed++
				dirty = dirty || d
			}
		}
	}
	if d, present := h.llc.Invalidate(n); present {
		flushed++
		dirty = dirty || d
	}
	if dirty {
		h.MemWritebacks.Inc()
	}
	if n.Kind != addr.PayloadData {
		h.evictPayload(n)
	}
	return flushed
}

// evictPayload removes a metadata block's payload entry and notifies the
// owner. Called wherever a metadata block leaves the LLC: capacity
// back-invalidation, explicit FlushName, or an ASID flush.
func (h *Hierarchy) evictPayload(n addr.Name) {
	if v, ok := h.payloads.del(n.Key()); ok && h.payloadListener != nil {
		h.payloadListener.PayloadEvicted(n, v)
	}
}

// checkPayloadResidency verifies the payload⇔LLC-residency invariant in
// both directions: every payload entry names an LLC-resident block, and
// every LLC-resident metadata block has a payload entry.
func (h *Hierarchy) checkPayloadResidency() error {
	var err error
	h.payloads.forEach(func(k, _ uint64) {
		if err == nil && h.llc.Probe(addr.NameFromKey(k)) == nil {
			err = fmt.Errorf("cache: payload entry %v has no LLC-resident block", addr.NameFromKey(k))
		}
	})
	if err != nil {
		return err
	}
	h.llc.ForEachLine(func(n addr.Name, _ *Line) {
		if err == nil && n.Kind != addr.PayloadData {
			if _, ok := h.payloads.get(n.Key()); !ok {
				err = fmt.Errorf("cache: metadata block %v resident without payload entry", n)
			}
		}
	})
	return err
}
