package synfilter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridvc/internal/addr"
)

func TestEmptyFilterRejectsEverything(t *testing.T) {
	f := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		va := addr.VA(rng.Uint64() % (1 << addr.VABits))
		if f.IsCandidate(va) {
			t.Fatalf("empty filter flagged %#x", uint64(va))
		}
	}
	if f.Lookups.Value() != 1000 || f.Candidates.Value() != 0 {
		t.Errorf("stats: lookups=%d candidates=%d", f.Lookups.Value(), f.Candidates.Value())
	}
}

func TestMarkedPageIsAlwaysCandidate(t *testing.T) {
	// The correctness guarantee: a marked synonym page must always be
	// detected, along with every other page in its 32 KiB granule.
	f := New()
	va := addr.VA(0x7f12_3456_7000)
	f.MarkSynonym(va)
	if !f.IsCandidate(va) {
		t.Fatal("marked page not a candidate")
	}
	// Any offset within the page hits too.
	if !f.IsCandidate(va + 0xfff) {
		t.Fatal("offset within marked page not a candidate")
	}
	// Pages within the same 32 KiB granule are necessarily candidates
	// (granule-level tracking).
	granuleStart := addr.VA(uint64(va) &^ (1<<FineBits - 1))
	if !f.IsCandidate(granuleStart) {
		t.Fatal("same-granule page not a candidate")
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	prop := func(pages []uint32) bool {
		f := New()
		vas := make([]addr.VA, len(pages))
		for i, p := range pages {
			vas[i] = addr.PageToVA(uint64(p))
			f.MarkSynonym(vas[i])
		}
		for _, va := range vas {
			if !f.ProbeQuiet(va) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateLowForTypicalLoad(t *testing.T) {
	// Table II: with realistic numbers of shared regions, false positives
	// stay below a fraction of a percent of lookups. Mark 8 shared regions
	// of 8 pages each (the common allocation pattern) and probe distant
	// addresses.
	f := New()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 8; i++ {
		start := addr.VA(rng.Uint64()%(1<<40)) & ^addr.VA(1<<FineBits-1)
		f.MarkSynonymRange(start, 8*addr.PageSize)
	}
	fp := 0
	const trials = 200000
	for i := 0; i < trials; i++ {
		// Probe addresses in a disjoint upper region.
		va := addr.VA(1<<41 + rng.Uint64()%(1<<40))
		if f.ProbeQuiet(va) {
			fp++
		}
	}
	rate := float64(fp) / trials
	if rate > 0.005 {
		t.Errorf("false positive rate %.5f exceeds 0.5%%", rate)
	}
}

func TestCoarseFilterScreensDistantAddresses(t *testing.T) {
	// An address whose fine granule collides but whose 16 MiB region was
	// never marked must be rejected: the two-granularity AND reduces false
	// positives. Construct a colliding fine granule by brute force.
	f := New()
	marked := addr.VA(0x1000_0000)
	f.MarkSynonym(marked)
	// Find a VA in a different coarse region whose fine granule hashes to
	// the same fine-filter bits.
	finder := New()
	finder.MarkSynonym(marked)
	var collision addr.VA
	found := false
	for g := uint64(0); g < 1<<22 && !found; g++ {
		va := addr.VA(g << FineBits)
		if uint64(va)>>CoarseBits == uint64(marked)>>CoarseBits {
			continue
		}
		if finder.fineContains(va) {
			collision = va
			found = true
		}
	}
	if !found {
		t.Skip("no fine collision found in search range")
	}
	if f.ProbeQuiet(collision) {
		t.Errorf("coarse filter failed to screen %#x", uint64(collision))
	}
}

// fineContains exposes the fine filter for the screening test.
func (f *Filter) fineContains(va addr.VA) bool {
	return f.fine.Contains(uint64(va) >> FineBits)
}

func TestMarkRangeCoversAllPages(t *testing.T) {
	f := New()
	start := addr.VA(0x4000_0000)
	f.MarkSynonymRange(start, 64*addr.PageSize)
	for off := uint64(0); off < 64*addr.PageSize; off += addr.PageSize {
		if !f.ProbeQuiet(start + addr.VA(off)) {
			t.Fatalf("page at offset %#x not covered", off)
		}
	}
	if f.Inserts.Value() != 64 {
		t.Errorf("inserts = %d, want 64", f.Inserts.Value())
	}
}

func TestClearAndRebuild(t *testing.T) {
	f := New()
	f.MarkSynonymRange(0x1000_0000, 16*addr.PageSize)
	f.MarkSynonymRange(0x2000_0000, 16*addr.PageSize)
	f.Clear()
	if f.ProbeQuiet(0x1000_0000) {
		t.Fatal("cleared filter still hits")
	}
	// Rebuild with only the second range live (first went private).
	f.Rebuild([]Range{{Start: 0x2000_0000, Length: 16 * addr.PageSize}})
	if f.ProbeQuiet(0x1000_0000) {
		t.Error("rebuilt filter kept stale range")
	}
	if !f.ProbeQuiet(0x2000_0000) {
		t.Error("rebuilt filter lost live range")
	}
}

func TestOccupancyGrows(t *testing.T) {
	f := New()
	fine0, coarse0 := f.Occupancy()
	if fine0 != 0 || coarse0 != 0 {
		t.Fatal("new filter not empty")
	}
	f.MarkSynonym(0x5000_0000)
	fine1, coarse1 := f.Occupancy()
	if fine1 <= 0 || coarse1 <= 0 {
		t.Error("occupancy did not grow")
	}
}

func TestLoadCopiesContents(t *testing.T) {
	master := New()
	master.MarkSynonym(0x7000_0000)
	perCore := New()
	perCore.Load(master)
	if !perCore.ProbeQuiet(0x7000_0000) {
		t.Fatal("loaded filter missing contents")
	}
	// Master updates after the load are not visible until reloaded —
	// that is why the OS uses shootdowns on status changes.
	master.MarkSynonym(0x9990_0000)
	if perCore.ProbeQuiet(0x9990_0000) && !master.ProbeQuiet(0x7000_0000) {
		t.Error("per-core filter aliases master")
	}
}

func TestPairEitherFilterFlags(t *testing.T) {
	guest := New()
	host := New()
	pair := NewPair(guest, host)
	gShared := addr.VA(0x1111_0000)
	hShared := addr.VA(0x2222_0000)
	guest.MarkSynonym(gShared) // OS-induced synonym
	host.MarkSynonym(hShared)  // hypervisor-induced synonym (indexed by gVA)
	if !pair.IsCandidate(gShared) {
		t.Error("guest-marked page not flagged")
	}
	if !pair.IsCandidate(hShared) {
		t.Error("host-marked page not flagged")
	}
	if pair.IsCandidate(0x7777_0000) {
		t.Error("unmarked page flagged by pair")
	}
	if pair.Lookups.Value() != 3 || pair.Candidates.Value() != 2 {
		t.Errorf("pair stats: %d/%d", pair.Candidates.Value(), pair.Lookups.Value())
	}
}
