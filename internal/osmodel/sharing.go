package osmodel

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/segment"
	"hybridvc/internal/synfilter"
)

// fineGranule aligns shared mappings to the synonym filter's fine
// granularity (32 KiB), matching the paper's observation that shared pages
// are commonly allocated as 8 consecutive 4 KiB pages.
const fineGranule = 1 << synfilter.FineBits

// ShareAnonymous creates an r/w shared (synonym) mapping of length bytes
// visible in every given process, returning the per-process virtual
// addresses. The pages are physically addressed in caches, so each process
// marks its synonym filter and broadcasts the update like a TLB shootdown.
func (k *Kernel) ShareAnonymous(procs []*Process, length uint64) ([]addr.VA, error) {
	if len(procs) == 0 || length == 0 {
		return nil, fmt.Errorf("osmodel: invalid share request")
	}
	length = (length + addr.PageSize - 1) &^ uint64(addr.PageSize-1)
	frames := length / addr.PageSize
	pa, ok := k.Alloc.AllocContiguous(frames)
	if !ok {
		return nil, fmt.Errorf("osmodel: out of physical memory for shared mapping")
	}
	k.sharedExtents[pa] = &sharedExtent{frames: frames, refs: len(procs)}
	vas := make([]addr.VA, len(procs))
	for i, p := range procs {
		// Shared mappings live in the dedicated shm area, aligned to the
		// fine filter granule (shared pages commonly come in 8-page runs).
		p.shmNext = (p.shmNext + fineGranule - 1) &^ addr.VA(fineGranule-1)
		start := p.shmNext
		p.shmNext += addr.VA(length) + addr.PageSize
		r := &Region{Start: start, Length: length, Perm: addr.PermRW, Shared: true, sharedPA: pa}
		for f := uint64(0); f < frames; f++ {
			va := start + addr.VA(f*addr.PageSize)
			if err := p.PT.Map(va, pa+addr.PA(f*addr.PageSize), addr.PermRW, true); err != nil {
				return nil, err
			}
		}
		p.Regions = append(p.Regions, r)
		p.SynonymRanges = append(p.SynonymRanges, synfilter.Range{Start: start, Length: length})
		p.Filter.MarkSynonymRange(start, length)
		k.FilterUpdates.Inc()
		k.sink.FilterUpdate(p.ASID)
		vas[i] = start
	}
	return vas, nil
}

// MarkShared transitions an existing private page range of p to synonym
// status — e.g. when a second process maps it. Cached ASID+VA lines of the
// affected pages must be flushed (they will be re-cached under the physical
// address), the delayed translation entries shot down, and the filter
// updated (Section III-A "Page Deallocation and Remap").
func (k *Kernel) MarkShared(p *Process, va addr.VA, length uint64) error {
	r := p.FindRegion(va)
	if r == nil || va.PageAligned() != va {
		return fmt.Errorf("osmodel: MarkShared of unmapped or unaligned range")
	}
	if uint64(r.End()-va) < length {
		return fmt.Errorf("osmodel: MarkShared beyond region end")
	}
	for off := uint64(0); off < length; off += addr.PageSize {
		page := va + addr.VA(off)
		if !p.PT.SetShared(page, true) {
			return fmt.Errorf("osmodel: page %#x not mapped", uint64(page))
		}
		k.sink.FlushPage(addr.VirtName(p.ASID, page))
		k.sink.TLBShootdown(p.ASID, page.Page())
		k.Shootdowns.Inc()
	}
	r.Shared = true
	p.SynonymRanges = append(p.SynonymRanges, synfilter.Range{Start: va, Length: length})
	p.Filter.MarkSynonymRange(va, length)
	k.FilterUpdates.Inc()
	k.sink.FilterUpdate(p.ASID)
	return nil
}

// RebuildFilter reconstructs p's synonym filter from its live synonym
// ranges, shedding stale bits accumulated by shared->private transitions.
func (k *Kernel) RebuildFilter(p *Process) {
	p.Filter.Rebuild(p.SynonymRanges)
	k.FilterUpdates.Inc()
	k.sink.FilterUpdate(p.ASID)
}

// MarkPrivate transitions a synonym range of p back to private. The PTE
// sharing bits clear and the physically addressed cache lines flush (the
// pages will be re-cached under ASID+VA), but — per Section III-B — the
// Bloom filter is NOT cleared, since other pages may share its bits. The
// stale bits cause false positives until the filter is rebuilt; the
// hybrid MMU's adaptive policy (or an explicit RebuildFilter call)
// handles that.
func (k *Kernel) MarkPrivate(p *Process, va addr.VA, length uint64) error {
	r := p.FindRegion(va)
	if r == nil || va.PageAligned() != va {
		return fmt.Errorf("osmodel: MarkPrivate of unmapped or unaligned range")
	}
	for off := uint64(0); off < length; off += addr.PageSize {
		page := va + addr.VA(off)
		pte, ok := p.PT.Lookup(page)
		if !ok {
			return fmt.Errorf("osmodel: page %#x not mapped", uint64(page))
		}
		p.PT.SetShared(page, false)
		// Flush the physically addressed copies; the single-name
		// invariant then lets ASID+VA caching take over.
		k.sink.FlushPage(addr.PhysName(addr.FrameToPA(pte.Frame)))
		k.sink.TLBShootdown(p.ASID, page.Page())
		k.Shootdowns.Inc()
	}
	if uint64(r.End()-va) <= length || va == r.Start {
		r.Shared = false
	}
	// The pages are now non-synonyms, so delayed translation must cover
	// them: register segments over the contiguous physical runs.
	runStart := addr.VA(0)
	var runPA addr.PA
	var runLen uint64
	flush := func() error {
		if runLen == 0 {
			return nil
		}
		seg, err := k.SegMgr.Allocate(p.ASID, runStart, runLen, runPA, r.Perm)
		if err != nil {
			return err
		}
		r.Segments = append(r.Segments, seg)
		runLen = 0
		return nil
	}
	for off := uint64(0); off < length; off += addr.PageSize {
		page := va + addr.VA(off)
		pa, _ := p.PT.Translate(page)
		if runLen > 0 && pa == runPA+addr.PA(runLen) {
			runLen += addr.PageSize
			continue
		}
		if err := flush(); err != nil {
			return err
		}
		runStart, runPA, runLen = page, pa, addr.PageSize
	}
	if err := flush(); err != nil {
		return err
	}
	// Drop fully covered ranges from the live list (used by rebuilds).
	kept := p.SynonymRanges[:0]
	for _, sr := range p.SynonymRanges {
		if sr.Start >= va && uint64(sr.Start-va)+sr.Length <= length {
			continue
		}
		kept = append(kept, sr)
	}
	p.SynonymRanges = kept
	return nil
}

// ContentShare deduplicates: the page at dstVA of dst is replaced by a
// read-only mapping of the frame backing srcVA of src. Both mappings
// become r/o, but — per Section III-D — they are NOT marked in the synonym
// filters: r/o synonyms cannot cause coherence problems, so both processes
// keep accessing the data by ASID+VA. Cached copies only have their
// permission bits updated.
func (k *Kernel) ContentShare(dst *Process, dstVA addr.VA, src *Process, srcVA addr.VA) error {
	srcPTE, ok := src.PT.Lookup(srcVA)
	if !ok {
		return fmt.Errorf("osmodel: source page unmapped")
	}
	dstPTE, ok := dst.PT.Lookup(dstVA)
	if !ok {
		return fmt.Errorf("osmodel: destination page unmapped")
	}
	// Free the duplicate frame and point dst at src's frame.
	if dstPTE.Frame != srcPTE.Frame {
		k.Alloc.Free(addr.FrameToPA(dstPTE.Frame), 1)
	}
	if err := dst.PT.Map(dstVA, addr.FrameToPA(srcPTE.Frame), addr.PermRO, false); err != nil {
		return err
	}
	src.PT.SetPerm(srcVA, addr.PermRO)
	// The old dst translation is stale: shoot it down and flush the dst
	// page's cached lines (they hold the duplicate frame's data).
	k.sink.TLBShootdown(dst.ASID, dstVA.Page())
	k.sink.FlushPage(addr.VirtName(dst.ASID, dstVA))
	k.Shootdowns.Inc()
	// src keeps its data; only the permission changes on cached copies.
	k.sink.SetPagePerm(addr.VirtName(src.ASID, srcVA), addr.PermRO)
	k.sink.TLBShootdown(src.ASID, srcVA.Page())
	k.Shootdowns.Inc()
	return nil
}

// breakCoW services a write to a content-shared r/o page: allocate a fresh
// frame, copy (implicitly), and remap private r/w (Section III-D).
func (p *Process) breakCoW(va addr.VA) bool {
	frame, ok := p.k.Alloc.AllocFrame()
	if !ok {
		return false
	}
	if err := p.PT.Map(va, frame, addr.PermRW, false); err != nil {
		return false
	}
	p.k.sink.TLBShootdown(p.ASID, va.Page())
	p.k.sink.FlushPage(addr.VirtName(p.ASID, va))
	p.k.CoWFaults.Inc()
	return true
}

// MapDMA allocates a buffer for device DMA. DMA pages are synonym pages by
// definition (devices address them physically), so they are marked in the
// filter and cached under their physical address.
func (k *Kernel) MapDMA(p *Process, length uint64) (addr.VA, error) {
	vas, err := k.ShareAnonymous([]*Process{p}, length)
	if err != nil {
		return 0, err
	}
	return vas[0], nil
}

// FragmentSegments splits every segment of the process into parts pieces
// backed by disjoint physical extents — the paper's external-fragmentation
// injection for the index cache study (Section IV-D).
func (k *Kernel) FragmentSegments(p *Process, parts int) error {
	for _, r := range p.Regions {
		if len(r.Segments) == 0 {
			continue
		}
		var newSegs []*segment.Segment
		for _, s := range r.Segments {
			if s.Pages() < 2 {
				newSegs = append(newSegs, s)
				continue
			}
			base := s.Base
			end := base + addr.VA(s.Length)
			if err := k.SegMgr.Split(s, parts,
				func(frames uint64) (addr.PA, bool) { return k.Alloc.AllocContiguous(frames) },
				func(pa addr.PA, frames uint64) { k.Alloc.Free(pa, frames) },
			); err != nil {
				return err
			}
			// Re-collect the pieces and refresh the page tables.
			for _, ns := range k.SegMgr.Segments(p.ASID) {
				if ns.Base >= base && ns.Base < end {
					newSegs = append(newSegs, ns)
					for f := uint64(0); f < ns.Pages(); f++ {
						va := ns.Base + addr.VA(f*addr.PageSize)
						if err := p.PT.Map(va, ns.PABase+addr.PA(f*addr.PageSize), ns.Perm, false); err != nil {
							return err
						}
						k.sink.TLBShootdown(p.ASID, va.Page())
						k.sink.FlushPage(addr.VirtName(p.ASID, va))
					}
				}
			}
		}
		r.Segments = newSegs
	}
	return nil
}

// Exit tears down the process: segments and frames are released, hardware
// translations shot down, and the ASID's cached lines flushed.
func (k *Kernel) Exit(p *Process) {
	for _, r := range p.Regions {
		if res := r.Reservation; res != nil {
			// Reservation frames were allocated as one extent; promoted
			// segments only borrow from it.
			for _, s := range r.Segments {
				k.SegMgr.Free(s)
			}
			k.Alloc.Free(res.PABase, res.Length/addr.PageSize)
			continue
		}
		if r.Shared && len(r.Segments) == 0 {
			// A ShareAnonymous mapping: the extent frees with its last
			// reference (releaseShared ignores unknown extents).
			k.releaseShared(r.sharedPA)
			continue
		}
		for _, s := range r.Segments {
			k.SegMgr.Free(s)
			k.Alloc.Free(s.PABase, s.Pages())
		}
	}
	p.PT.Destroy()
	delete(k.procs, p.ASID)
	if k.lastASID == p.ASID {
		k.lastProc = nil
	}
	// Flush every hardware trace of the ASID so it can be recycled; the
	// hybrid design otherwise risks a new process hitting the old one's
	// virtually named cache lines.
	k.sink.FlushASID(p.ASID)
	k.sink.FilterUpdate(p.ASID)
}

// Munmap removes a whole region previously returned by Mmap (Section
// III-A "Page Deallocation and Remap"): cached ASID+VA lines of the pages
// flush, translations shoot down, and the backing segments and frames are
// released. va must be the region's start address.
func (k *Kernel) Munmap(p *Process, va addr.VA) error {
	idx := -1
	for i, r := range p.Regions {
		if r.Start == va {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("osmodel: Munmap of unknown region %#x", uint64(va))
	}
	r := p.Regions[idx]
	for off := uint64(0); off < r.Length; off += addr.PageSize {
		page := va + addr.VA(off)
		pte, mapped := p.PT.Lookup(page)
		if !mapped {
			continue // demand page never touched
		}
		if pte.Shared {
			k.sink.FlushPage(addr.PhysName(addr.FrameToPA(pte.Frame)))
		} else {
			k.sink.FlushPage(addr.VirtName(p.ASID, page))
		}
		k.sink.TLBShootdown(p.ASID, page.Page())
		k.Shootdowns.Inc()
		p.PT.Unmap(page)
		if pte.Huge {
			off += addr.HugePageSize - addr.PageSize
		}
		// Demand-paged frames are freed page by page; eager and reserved
		// regions free via their segments/extent below.
		if r.Demand && r.Reservation == nil {
			k.Alloc.Free(addr.FrameToPA(pte.Frame), 1)
		}
	}
	switch {
	case r.Reservation != nil:
		for _, s := range r.Segments {
			k.SegMgr.Free(s)
		}
		k.Alloc.Free(r.Reservation.PABase, r.Reservation.Length/addr.PageSize)
	case r.Shared && len(r.Segments) == 0:
		k.releaseShared(r.sharedPA)
	default:
		for _, s := range r.Segments {
			k.SegMgr.Free(s)
			k.Alloc.Free(s.PABase, s.Pages())
		}
	}
	p.Regions = append(p.Regions[:idx], p.Regions[idx+1:]...)
	return nil
}
