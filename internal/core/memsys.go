// Package core implements the paper's primary contribution: the hybrid
// virtual caching MMU. The entire cache hierarchy is virtually addressed
// (ASID+VA) for non-synonym pages with translation delayed until LLC
// misses (through a delayed TLB or the scalable many-segment translator),
// while synonym candidates — detected by the Bloom-filter synonym filter —
// take a conventional pre-L1 TLB path and are cached physically.
//
// The package defines the MemSystem interface and re-exports the shared
// access-pipeline plumbing (requests, results, the physical access path,
// the timed page walker) from internal/pipeline, which the baseline
// organizations in internal/baseline build on as well. Every organization
// is wired as pipeline stages (FrontEnd -> cache stage -> Backend) run by
// the shared pipeline.Engine.
package core

import (
	"hybridvc/internal/cache"
	"hybridvc/internal/energy"
	"hybridvc/internal/mem"
	"hybridvc/internal/pipeline"
)

// Request is one memory reference presented to a memory system.
type Request = pipeline.Request

// Result reports the outcome of a reference. Result.HitLevel uses the
// same scale in every organization: 1/2/3 for the level that supplied the
// data, 0 for memory.
type Result = pipeline.Result

// Base bundles the pieces every memory system shares and the physical
// access path they all use.
type Base = pipeline.Base

// WalkLeaf is the result of a page walk.
type WalkLeaf = pipeline.WalkLeaf

// Probe receives typed pipeline events (see internal/pipeline).
type Probe = pipeline.Probe

// CountingProbe tallies every pipeline event kind, allocation-free.
type CountingProbe = pipeline.CountingProbe

// FaultLatency is the cycles charged for an OS fault handler invocation
// (demand paging, CoW break, cold segment fill).
const FaultLatency = pipeline.FaultLatency

// NewBase builds the shared substrate.
func NewBase(hcfg cache.HierarchyConfig, dcfg mem.DRAMConfig, model energy.Model) *Base {
	return pipeline.NewBase(hcfg, dcfg, model)
}

// MemSystem is a complete memory system organization: address translation
// plus the cache hierarchy and DRAM.
type MemSystem interface {
	// Access performs one reference.
	Access(req Request) Result
	// AccessBatch performs len(reqs) references in order, writing outcome
	// i into res[i] — the allocation-free hot path. Both slices are caller
	// provided and reusable; results match len(reqs) Access calls.
	AccessBatch(reqs []Request, res []Result)
	// Energy returns the translation-energy accumulator.
	Energy() *energy.Accumulator
	// Hierarchy exposes the cache hierarchy for statistics.
	Hierarchy() *cache.Hierarchy
	// Probe returns the attached event probe (nil: observability off).
	Probe() Probe
	// SetProbe attaches (nil: detaches) the event probe. With no probe
	// the hot path pays one nil-check per emission site and stays
	// allocation-free.
	SetProbe(p Probe)
	// Name identifies the organization in reports.
	Name() string
}

// BaseHolder is implemented by every organization embedding *Base (all of
// them, through the pipeline engine): generic tooling uses it to reach
// the shared counters without a per-organization type switch.
type BaseHolder interface {
	BaseState() *Base
}
