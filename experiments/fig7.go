package experiments

import (
	"fmt"
	"math/rand"

	"hybridvc/internal/addr"
	"hybridvc/internal/core"
	"hybridvc/internal/mem"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/segment"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

// Figure7Sizes are the index cache capacities swept (64 B to 64 KiB).
var Figure7Sizes = []int{64, 256, 512, 1 << 10, 2 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}

// Figure7Series is one index-cache hit-rate curve.
type Figure7Series struct {
	Label string
	// Sizes are the index cache capacities probed, parallel to HitRates.
	Sizes    []int
	HitRates []float64
}

// figure7SingleWorkloads drive the single-application curves; the paper
// picks the ten workloads causing the most misses. External fragmentation
// is injected by splitting every segment into ten pieces.
var figure7SingleWorkloads = []string{"mcf", "xalancbmk", "tigr", "omnetpp", "memcached"}

// Figure7a measures index cache hit rates for real workloads (single
// applications and a quad-core multiprogrammed mix), with each segment
// artificially broken into 10 to add external fragmentation.
func Figure7a(scale Scale) ([]Figure7Series, *stats.Table) {
	n := scale.pick(60_000, 1_000_000)
	sizes := Figure7Sizes
	if scale == Quick {
		sizes = []int{64, 512, 2 << 10, 8 << 10, 32 << 10, 64 << 10}
	}
	var series []Figure7Series

	runOne := func(label string, names []string, cores int) {
		s := Figure7Series{Label: label, Sizes: sizes}
		for _, size := range sizes {
			k := osmodel.NewKernel(osmodel.Config{PhysBytes: 32 << 30})
			cfg := core.DefaultHybridConfig(cores)
			cfg.Delayed = core.DelayedSegments
			cfg.WithSegmentCache = false // expose the index cache
			cfg.IndexCacheBytes = size
			ms := core.NewHybridMMU(cfg, k)
			var gens []*workload.Generator
			for _, name := range names {
				g, err := workload.NewGroup(workload.Specs[name], k, 1)
				if err != nil {
					panic(fmt.Sprintf("fig7a %s: %v", name, err))
				}
				gens = append(gens, g...)
			}
			// Inject external fragmentation: up to x10 segments per
			// region, capped so the 2048-entry segment table holds the
			// result.
			if factor := fragmentFactor(k.MaxSegments()); factor >= 2 {
				for _, g := range gens {
					if err := k.FragmentSegments(g.Proc, factor); err != nil {
						panic(fmt.Sprintf("fig7a fragmentation: %v", err))
					}
				}
			}
			driveMem(ms, gens, n)
			s.HitRates = append(s.HitRates, ms.Translator().IC.Stats().HitRate())
		}
		series = append(series, s)
	}

	singles := figure7SingleWorkloads
	if scale == Quick {
		singles = []string{"mcf", "xalancbmk", "omnetpp"}
	}
	for _, name := range singles {
		runOne(name, []string{name}, 1)
	}
	runOne("multi (quad-core mix)", []string{"mcf", "xalancbmk", "omnetpp", "tigr"}, 4)

	t := figure7Table("Figure 7a: index cache hit rate, real workloads (x10 fragmentation)", sizes, series)
	return series, t
}

// Figure7b measures the worst case: 1024 or 2048 equally sized segments
// spread over a 40-bit physical space, probed uniformly at random. For
// 2048 segments two tree constructions are compared: the bulk-built,
// perfectly packed tree (≈25 KiB — it fits a 32 KiB index cache entirely)
// and an incrementally maintained tree at its natural ~2/3 fill factor,
// which reproduces the paper's 75.5%-at-32 KiB figure.
func Figure7b(scale Scale) ([]Figure7Series, *stats.Table) {
	n := scale.pick(200_000, 1_000_000)
	var series []Figure7Series
	for _, cfg := range []struct {
		label       string
		segs        int
		incremental bool
	}{
		{"1024 entry", 1024, false},
		{"2048 entry", 2048, false},
		{"2048 entry (incremental tree)", 2048, true},
	} {
		s := Figure7Series{Label: cfg.label, Sizes: Figure7Sizes}
		for _, size := range Figure7Sizes {
			alloc := mem.NewAllocator(1 << 34)
			mgr := segment.NewManager(segment.NewNodeArena(alloc))
			ic := segment.NewIndexCache(size)
			mgr.OnRebuild = ic.Flush
			asid := addr.MakeASID(0, 1)
			// Distribute the 40-bit space over the segments.
			segLen := uint64(1<<40) / uint64(cfg.segs)
			entries := make([]segment.TreeEntry, 0, cfg.segs)
			for i := 0; i < cfg.segs; i++ {
				seg := &segment.Segment{
					ASID: asid, Base: addr.VA(uint64(i) * segLen),
					Length: segLen, PABase: 0, Perm: addr.PermRW,
				}
				id, ok := mgr.Table.Alloc(seg)
				if !ok {
					panic("fig7b: table full")
				}
				entries = append(entries, segment.TreeEntry{
					Key: segment.MakeKey(asid, seg.Base), Value: id,
				})
			}
			if cfg.incremental {
				// Insert in shuffled order, as an OS would allocate.
				for _, i := range rand.New(rand.NewSource(19)).Perm(len(entries)) {
					if err := mgr.Tree.Insert(entries[i]); err != nil {
						panic(err)
					}
				}
			} else {
				mgr.Tree.Build(entries)
			}
			tr := segment.NewTranslator(segment.DefaultTranslatorConfig(), nil, ic, mgr)
			rng := rand.New(rand.NewSource(17))
			for i := uint64(0); i < n; i++ {
				tr.Translate(asid, addr.VA(rng.Uint64()&(1<<40-1)))
			}
			s.HitRates = append(s.HitRates, ic.Stats().HitRate())
		}
		series = append(series, s)
	}
	t := figure7Table("Figure 7b: index cache hit rate, synthetic worst case (uniform random)", Figure7Sizes, series)
	return series, t
}

// fragmentFactor picks the largest split factor (<= 10, the paper's x10)
// that keeps the fragmented segment count within the table capacity.
func fragmentFactor(current int) int {
	if current == 0 {
		return 0
	}
	f := 1800 / current
	if f > 10 {
		f = 10
	}
	return f
}

func figure7Table(title string, sizes []int, series []Figure7Series) *stats.Table {
	cols := []string{"series"}
	for _, size := range sizes {
		if size < 1024 {
			cols = append(cols, fmt.Sprintf("%dB", size))
		} else {
			cols = append(cols, fmt.Sprintf("%dKB", size/1024))
		}
	}
	t := stats.NewTable(title, cols...)
	for _, s := range series {
		row := []string{s.Label}
		for _, hr := range s.HitRates {
			row = append(row, fmt.Sprintf("%.1f%%", 100*hr))
		}
		t.AddRow(row...)
	}
	return t
}
