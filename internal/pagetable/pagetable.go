// Package pagetable implements x86-64-style four-level page tables stored
// in simulated physical frames. Hardware page walks therefore issue real
// memory accesses through the cache hierarchy, which is what lets large
// on-chip caches absorb translation traffic — the effect the paper's
// delayed translation exploits.
//
// Page table entries carry a sharing (synonym) bit, which the paper adds to
// mark pages whose state the synonym filter must report (Section III-A,
// footnote 2): the TLB fill uses it to distinguish true synonyms from
// filter false positives.
package pagetable

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/mem"
)

// Levels is the number of page table levels (PML4, PDPT, PD, PT).
const Levels = 4

// PTE bit assignments. The frame number occupies bits 12..51. Permission
// uses the two "available" bits 9-10 and sharing uses bit 58 (a reserved
// bit, per the paper).
const (
	ptePresent   = 1 << 0
	pteHuge      = 1 << 7 // the x86 PS bit: level-1 entry maps 2 MiB
	pteShared    = 1 << 58
	ptePermLo    = 9 // bits 9-10 hold addr.Perm
	pteFrameLo   = addr.PageBits
	pteFrameMask = (uint64(1)<<40 - 1) << pteFrameLo
)

// PTE is a decoded leaf page table entry.
type PTE struct {
	Present bool
	Frame   uint64
	Perm    addr.Perm
	// Shared marks the page as a synonym page: it must be accessed through
	// physical addressing.
	Shared bool
	// Huge marks a 2 MiB mapping (a level-1 entry with the PS bit).
	Huge bool
}

// Encode packs the PTE into its 64-bit on-"disk" form.
func (p PTE) Encode() uint64 {
	if !p.Present {
		return 0
	}
	v := uint64(ptePresent)
	v |= (p.Frame << pteFrameLo) & pteFrameMask
	v |= uint64(p.Perm) << ptePermLo
	if p.Shared {
		v |= pteShared
	}
	if p.Huge {
		v |= pteHuge
	}
	return v
}

// DecodePTE unpacks a 64-bit entry.
func DecodePTE(v uint64) PTE {
	if v&ptePresent == 0 {
		return PTE{}
	}
	return PTE{
		Present: true,
		Frame:   (v & pteFrameMask) >> pteFrameLo,
		Perm:    addr.Perm(v >> ptePermLo & 3),
		Shared:  v&pteShared != 0,
		Huge:    v&pteHuge != 0,
	}
}

// indexAt returns the 9-bit table index for the given level
// (level 3 = PML4 ... level 0 = PT).
func indexAt(va addr.VA, level int) uint64 {
	return uint64(va) >> (addr.PageBits + 9*level) & 0x1ff
}

// Tables is one address space's four-level page table.
type Tables struct {
	alloc *mem.Allocator
	store *mem.Store
	root  addr.PA
	// tableFrames lists every frame holding table pages, for Destroy.
	tableFrames []addr.PA
	// FramesUsed counts frames consumed by table pages.
	FramesUsed int
	// Mapped counts present leaf mappings.
	Mapped int
}

// New allocates an empty table hierarchy (one root frame).
// It returns an error when physical memory is exhausted.
func New(alloc *mem.Allocator, store *mem.Store) (*Tables, error) {
	root, ok := alloc.AllocFrame()
	if !ok {
		return nil, fmt.Errorf("pagetable: out of physical memory for root")
	}
	store.ZeroPage(root)
	return &Tables{
		alloc: alloc, store: store, root: root,
		tableFrames: []addr.PA{root}, FramesUsed: 1,
	}, nil
}

// Destroy releases every table frame back to the allocator. The Tables
// value must not be used afterwards. It does not free data frames; the OS
// owns those.
func (t *Tables) Destroy() {
	for _, f := range t.tableFrames {
		t.store.ZeroPage(f)
		t.alloc.Free(f, 1)
	}
	t.tableFrames = nil
	t.FramesUsed = 0
	t.Mapped = 0
}

// Root returns the physical address of the top-level table (the CR3 value).
func (t *Tables) Root() addr.PA { return t.root }

// entryAddr returns the physical address of the PTE slot for va at level,
// given the table page's physical address.
func entryAddr(table addr.PA, va addr.VA, level int) addr.PA {
	return table + addr.PA(indexAt(va, level)*8)
}

// Map installs a 4 KiB translation. Intermediate table pages are allocated
// on demand. Remapping an existing VA overwrites the leaf.
func (t *Tables) Map(va addr.VA, pa addr.PA, perm addr.Perm, shared bool) error {
	if !va.Canonical() {
		return fmt.Errorf("pagetable: non-canonical VA %#x", uint64(va))
	}
	table := t.root
	for level := Levels - 1; level > 0; level-- {
		slot := entryAddr(table, va, level)
		v := t.store.Read64(slot)
		if level == 1 && v&ptePresent != 0 && v&pteHuge != 0 {
			return fmt.Errorf("pagetable: 4 KiB map inside existing 2 MiB mapping at %#x", uint64(va))
		}
		if v&ptePresent == 0 {
			frame, ok := t.alloc.AllocFrame()
			if !ok {
				return fmt.Errorf("pagetable: out of physical memory at level %d", level)
			}
			t.store.ZeroPage(frame)
			t.tableFrames = append(t.tableFrames, frame)
			t.FramesUsed++
			v = ptePresent | uint64(frame)&^uint64(addr.PageSize-1)
			t.store.Write64(slot, v)
		}
		table = nextTable(v)
	}
	slot := entryAddr(table, va, 0)
	if t.store.Read64(slot)&ptePresent == 0 {
		t.Mapped++
	}
	t.store.Write64(slot, PTE{Present: true, Frame: pa.Frame(), Perm: perm, Shared: shared}.Encode())
	return nil
}

// MapHuge installs a 2 MiB translation at a level-1 entry with the PS
// bit. Both addresses must be 2 MiB aligned.
func (t *Tables) MapHuge(va addr.VA, pa addr.PA, perm addr.Perm, shared bool) error {
	if !va.Canonical() {
		return fmt.Errorf("pagetable: non-canonical VA %#x", uint64(va))
	}
	if uint64(va)%addr.HugePageSize != 0 || uint64(pa)%addr.HugePageSize != 0 {
		return fmt.Errorf("pagetable: MapHuge of unaligned addresses %#x -> %#x",
			uint64(va), uint64(pa))
	}
	table := t.root
	for level := Levels - 1; level > 1; level-- {
		slot := entryAddr(table, va, level)
		v := t.store.Read64(slot)
		if v&ptePresent == 0 {
			frame, ok := t.alloc.AllocFrame()
			if !ok {
				return fmt.Errorf("pagetable: out of physical memory at level %d", level)
			}
			t.store.ZeroPage(frame)
			t.tableFrames = append(t.tableFrames, frame)
			t.FramesUsed++
			v = ptePresent | uint64(frame)&^uint64(addr.PageSize-1)
			t.store.Write64(slot, v)
		}
		table = nextTable(v)
	}
	slot := entryAddr(table, va, 1)
	if v := t.store.Read64(slot); v&ptePresent != 0 {
		if v&pteHuge == 0 {
			return fmt.Errorf("pagetable: 2 MiB map over existing 4 KiB mappings at %#x", uint64(va))
		}
	} else {
		t.Mapped++
	}
	t.store.Write64(slot, PTE{Present: true, Frame: pa.Frame(), Perm: perm, Shared: shared, Huge: true}.Encode())
	return nil
}

// Unmap removes the leaf translation for va, returning whether one existed.
// Intermediate tables are not reclaimed (matching common OS behaviour).
func (t *Tables) Unmap(va addr.VA) bool {
	slot, _, ok := t.entrySlot(va)
	if !ok || t.store.Read64(slot)&ptePresent == 0 {
		return false
	}
	t.store.Write64(slot, 0)
	t.Mapped--
	return true
}

// nextTable extracts the next-level table address from an intermediate
// entry.
func nextTable(v uint64) addr.PA {
	return addr.PA(v &^ uint64(ptePresent) &^ uint64(pteShared) &^ (3 << ptePermLo))
}

// entrySlot walks to va's leaf slot — the level-0 entry, or a level-1
// entry whose PS bit maps a 2 MiB page — without allocating.
func (t *Tables) entrySlot(va addr.VA) (slot addr.PA, huge, ok bool) {
	table := t.root
	for level := Levels - 1; level > 0; level-- {
		s := entryAddr(table, va, level)
		v := t.store.Read64(s)
		if v&ptePresent == 0 {
			return 0, false, false
		}
		if level == 1 && v&pteHuge != 0 {
			return s, true, true
		}
		table = nextTable(v)
	}
	return entryAddr(table, va, 0), false, true
}

// Lookup performs a functional (untimed) walk.
func (t *Tables) Lookup(va addr.VA) (PTE, bool) {
	slot, _, ok := t.entrySlot(va)
	if !ok {
		return PTE{}, false
	}
	pte := DecodePTE(t.store.Read64(slot))
	return pte, pte.Present
}

// SetShared flips the sharing (synonym) bit of an existing mapping,
// returning false if the page is unmapped.
func (t *Tables) SetShared(va addr.VA, shared bool) bool {
	slot, _, ok := t.entrySlot(va)
	if !ok {
		return false
	}
	v := t.store.Read64(slot)
	if v&ptePresent == 0 {
		return false
	}
	pte := DecodePTE(v)
	pte.Shared = shared
	t.store.Write64(slot, pte.Encode())
	return true
}

// SetPerm updates the permission of an existing mapping, returning false if
// the page is unmapped.
func (t *Tables) SetPerm(va addr.VA, perm addr.Perm) bool {
	slot, _, ok := t.entrySlot(va)
	if !ok {
		return false
	}
	v := t.store.Read64(slot)
	if v&ptePresent == 0 {
		return false
	}
	pte := DecodePTE(v)
	pte.Perm = perm
	t.store.Write64(slot, pte.Encode())
	return true
}

// WalkPath returns the physical addresses of the table entries a hardware
// walker reads for va (root to leaf, up to Levels entries), the decoded
// leaf, and whether the walk reached a present leaf. A timed walker issues
// one memory access per returned address.
func (t *Tables) WalkPath(va addr.VA) (path []addr.PA, pte PTE, ok bool) {
	table := t.root
	for level := Levels - 1; level >= 0; level-- {
		slot := entryAddr(table, va, level)
		path = append(path, slot)
		v := t.store.Read64(slot)
		if v&ptePresent == 0 {
			return path, PTE{}, false
		}
		if level == 0 || (level == 1 && v&pteHuge != 0) {
			return path, DecodePTE(v), true
		}
		table = nextTable(v)
	}
	return path, PTE{}, false
}

// Translate is a convenience functional translation of a full address.
func (t *Tables) Translate(va addr.VA) (addr.PA, bool) {
	pte, ok := t.Lookup(va)
	if !ok {
		return 0, false
	}
	if pte.Huge {
		off := uint64(va) & (addr.HugePageSize - 1)
		return addr.FrameToPA(pte.Frame) + addr.PA(off), true
	}
	return addr.FrameToPA(pte.Frame) + addr.PA(va.PageOffset()), true
}
