package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridvc/internal/addr"
)

// refTLB is a map-backed reference: unlimited capacity, exact contents.
// The real TLB may evict, so: every real hit must agree with the
// reference's value, and a reference miss implies a real miss.
type refTLB map[[2]uint64]Entry

func key(asid addr.ASID, vpn uint64) [2]uint64 { return [2]uint64{uint64(asid), vpn} }

func TestTLBAgainstReference(t *testing.T) {
	tb := New(Config{Name: "ref", Entries: 64, Ways: 4, Latency: 1})
	ref := refTLB{}
	rng := rand.New(rand.NewSource(41))
	asids := []addr.ASID{addr.MakeASID(0, 1), addr.MakeASID(0, 2)}
	for step := 0; step < 20000; step++ {
		asid := asids[rng.Intn(2)]
		vpn := rng.Uint64() % 256
		switch rng.Intn(4) {
		case 0: // insert
			e := Entry{ASID: asid, VPN: vpn, PFN: rng.Uint64() % 1000, Perm: addr.PermRW}
			tb.Insert(e)
			ref[key(asid, vpn)] = e
		case 1: // shootdown
			tb.Shootdown(asid, vpn)
			delete(ref, key(asid, vpn))
		default: // lookup
			got, hit := tb.Lookup(asid, vpn)
			want, present := ref[key(asid, vpn)]
			if hit && !present {
				t.Fatalf("step %d: TLB returned a shot-down/never-inserted entry", step)
			}
			if hit && got.PFN != want.PFN {
				t.Fatalf("step %d: stale PFN %d want %d", step, got.PFN, want.PFN)
			}
		}
	}
}

func TestTLBOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(vpns []uint16) bool {
		tb := New(Config{Name: "p", Entries: 16, Ways: 4, Latency: 1})
		asid := addr.MakeASID(0, 1)
		for _, v := range vpns {
			tb.Insert(Entry{ASID: asid, VPN: uint64(v)})
		}
		return tb.Occupancy() <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBFlushASIDCompleteProperty(t *testing.T) {
	f := func(vpnsA, vpnsB []uint16) bool {
		tb := New(Config{Name: "p", Entries: 64, Ways: 8, Latency: 1})
		a, b := addr.MakeASID(0, 1), addr.MakeASID(0, 2)
		for _, v := range vpnsA {
			tb.Insert(Entry{ASID: a, VPN: uint64(v)})
		}
		for _, v := range vpnsB {
			tb.Insert(Entry{ASID: b, VPN: uint64(v)})
		}
		tb.FlushASID(a)
		// No A entries survive; surviving entries are all B's.
		for _, v := range vpnsA {
			if _, ok := tb.Probe(a, uint64(v)); ok {
				return false
			}
		}
		ok := true
		for si := range tb.sets {
			for wi := range tb.sets[si] {
				e := tb.sets[si][wi]
				if e.Valid && e.ASID != b {
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
