// Shared memory and the synonym filter: a postgres-like multi-process
// workload where four processes communicate through a 128 MiB r/w shared
// region (a synonym region: the same physical pages appear at different
// virtual addresses in each process).
//
// The example shows the paper's synonym machinery end to end:
//   - the OS marks the shared range in each process's Bloom filter pair;
//   - accesses to shared pages are detected and cached by physical
//     address, so every process hits the same cache lines (the single-name
//     invariant removes the synonym coherence problem);
//   - private accesses bypass the TLB entirely — the Table II effect.
package main

import (
	"fmt"
	"log"

	"hybridvc"
	"hybridvc/internal/core"
)

func main() {
	sys, err := hybridvc.New(hybridvc.Config{Org: hybridvc.HybridManySegSC})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.LoadWorkload("postgres"); err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run(300_000)
	if err != nil {
		log.Fatal(err)
	}

	mmu := sys.Mem.(*core.HybridMMU)
	gens := sys.Generators()
	fmt.Printf("postgres-like workload: %d processes, one shared region\n\n", len(gens))

	p := gens[0].Proc
	fine, coarse := p.Filter.Occupancy()
	fmt.Printf("synonym filter occupancy (proc 0): fine %.1f%%, coarse %.1f%%\n",
		100*fine, 100*coarse)

	total := mmu.SynonymCandidates.Value() + mmu.NonSynonymAccesses.Value()
	fmt.Printf("memory references:        %d\n", total)
	fmt.Printf("synonym candidates:       %d (%.1f%%)\n",
		mmu.SynonymCandidates.Value(),
		100*float64(mmu.SynonymCandidates.Value())/float64(total))
	fmt.Printf("  true synonyms:          %d\n", mmu.TrueSynonymAccesses.Value())
	fmt.Printf("  filter false positives: %d (%.4f%% of all references)\n",
		mmu.FalsePositives.Value(),
		100*float64(mmu.FalsePositives.Value())/float64(total))
	fmt.Printf("TLB accesses avoided:     %.1f%% of references bypass the TLB\n",
		100*float64(mmu.NonSynonymAccesses.Value())/float64(total))

	fmt.Printf("\nshared area / shared access (Table I metrics): %.1f%% / %.1f%%\n",
		100*p.SharedAreaRatio(), 100*p.SharedAccessRatio())
	fmt.Printf("\n%v\n", report)
}
