package stats

import (
	"bytes"
	"sync"
	"testing"
)

// TestTimelineConcurrentReaders hammers every read path of a Timeline
// while a writer goroutine appends — the exact shape of the service's
// streaming endpoint (a Since cursor polling behind a live simulation)
// and the live metrics endpoint (Latest/Len). Run under `go test -race`
// this pins the mutex discipline: any unguarded access trips the
// detector.
func TestTimelineConcurrentReaders(t *testing.T) {
	const total = 2000
	tl := &Timeline{}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: the simulator appending one interval per window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < total; i++ {
			tl.Append(Interval{Index: i, Insns: 10, Refs: uint64(i)})
		}
	}()

	// Streaming readers: each keeps a Since cursor and must observe the
	// intervals in order with no gaps, exactly once.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cursor, next := 0, 0
			for {
				batch := tl.Since(cursor)
				for _, iv := range batch {
					if iv.Index != next {
						t.Errorf("streaming reader: got interval %d, want %d", iv.Index, next)
						return
					}
					next++
				}
				cursor += len(batch)
				if cursor >= total {
					return
				}
				select {
				case <-stop:
					// Writer finished; one final drain then done.
					rest := tl.Since(cursor)
					for _, iv := range rest {
						if iv.Index != next {
							t.Errorf("final drain: got interval %d, want %d", iv.Index, next)
							return
						}
						next++
					}
					return
				default:
				}
			}
		}()
	}

	// Snapshot readers: Len/Latest/Intervals/WriteNDJSON concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := tl.Len()
				if iv, ok := tl.Latest(); ok && iv.Index >= total {
					t.Errorf("Latest index %d out of range", iv.Index)
				}
				if ivs := tl.Intervals(); len(ivs) < n {
					t.Errorf("Intervals shrank: %d < %d", len(ivs), n)
				}
				var buf bytes.Buffer
				if err := tl.WriteNDJSON(&buf); err != nil {
					t.Errorf("WriteNDJSON: %v", err)
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}

	wg.Wait()

	if got := tl.Len(); got != total {
		t.Fatalf("Len = %d, want %d", got, total)
	}
	if tail := tl.Since(total); tail != nil {
		t.Fatalf("Since(total) = %d intervals, want nil", len(tail))
	}
	if tl.Since(-5)[0].Index != 0 {
		t.Fatal("Since with a negative cursor must start at 0")
	}
}
