package core

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/energy"
	"hybridvc/internal/mem"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/pipeline"
	"hybridvc/internal/segment"
	"hybridvc/internal/stats"
	"hybridvc/internal/synfilter"
	"hybridvc/internal/tlb"
	"hybridvc/internal/virt"
)

// VirtHybridConfig parameterizes the virtualized hybrid MMU (Section V).
type VirtHybridConfig struct {
	Hier   cache.HierarchyConfig
	DRAM   mem.DRAMConfig
	Energy energy.Model

	// SynTLBEntries sizes the per-core synonym TLB.
	SynTLBEntries int
	// WithSegmentCache enables the 128-entry gVA->MA segment cache that
	// skips the two-step segment translation (Section V-B).
	WithSegmentCache bool
	// IndexCacheBytes sizes each of the guest and host index caches.
	IndexCacheBytes int
}

// DefaultVirtHybridConfig returns the paper's virtualized configuration.
func DefaultVirtHybridConfig(n int) VirtHybridConfig {
	return VirtHybridConfig{
		Hier:             cache.DefaultHierarchyConfig(n),
		DRAM:             mem.DefaultDRAMConfig(),
		Energy:           energy.DefaultModel(),
		SynTLBEntries:    64,
		WithSegmentCache: true,
		IndexCacheBytes:  32 << 10,
	}
}

// virtSCEntry caches a direct gVA->MA translation for a 2 MiB granule,
// valid only when the granule is contiguous in machine memory (inside one
// guest segment and one host segment).
type virtSCEntry struct {
	valid   bool
	asid    addr.ASID
	granule uint64
	maBase  addr.PA
	perm    addr.Perm
	lru     uint64
}

// VirtSegCache is the virtualized segment cache: 128 entries of direct
// gVA->MA mappings at 2 MiB granularity, skipping the gPA step.
type VirtSegCache struct {
	sets  [][]virtSCEntry
	mask  uint64
	tick  uint64
	Stats stats.HitMiss
}

// NewVirtSegCache creates the SC with the given entry count (8-way).
func NewVirtSegCache(entries int) *VirtSegCache {
	const ways = 8
	if entries <= 0 || entries%ways != 0 || (entries/ways)&(entries/ways-1) != 0 {
		panic(fmt.Sprintf("core: invalid virt SC entries %d", entries))
	}
	nsets := entries / ways
	sets := make([][]virtSCEntry, nsets)
	backing := make([]virtSCEntry, entries)
	for i := range sets {
		sets[i], backing = backing[:ways], backing[ways:]
	}
	return &VirtSegCache{sets: sets, mask: uint64(nsets - 1)}
}

// Lookup returns the MA for (asid, gva) on a hit.
func (sc *VirtSegCache) Lookup(asid addr.ASID, gva addr.VA) (addr.PA, addr.Perm, bool) {
	sc.tick++
	set := sc.sets[gva.HugePage()&sc.mask]
	for i := range set {
		e := &set[i]
		if e.valid && e.asid == asid && e.granule == gva.HugePage() {
			e.lru = sc.tick
			sc.Stats.Hit()
			off := uint64(gva) & (addr.HugePageSize - 1)
			return e.maBase + addr.PA(off), e.perm, true
		}
	}
	sc.Stats.Miss()
	return 0, 0, false
}

// Fill installs a granule mapping.
func (sc *VirtSegCache) Fill(asid addr.ASID, gva addr.VA, maBase addr.PA, perm addr.Perm) {
	sc.tick++
	set := sc.sets[gva.HugePage()&sc.mask]
	slot := &set[0]
	for i := range set {
		if !set[i].valid {
			slot = &set[i]
			break
		}
		if set[i].lru < slot.lru {
			slot = &set[i]
		}
	}
	*slot = virtSCEntry{valid: true, asid: asid, granule: gva.HugePage(), maBase: maBase, perm: perm, lru: sc.tick}
}

// FlushAll empties the SC.
func (sc *VirtSegCache) FlushAll() {
	for si := range sc.sets {
		for wi := range sc.sets[si] {
			sc.sets[si][wi] = virtSCEntry{}
		}
	}
}

// VirtHybridMMU is the hybrid virtual caching MMU for a processor running
// one or more virtual machines: guest+host synonym filters classify
// accesses, non-synonyms run the whole hierarchy as VMID-extended ASID +
// gVA (so VMs can never hit each other's virtually named lines), and LLC
// misses perform two-step delayed segment translation (guest gVA->gPA,
// host gPA->MA), short-cut by the direct gVA->MA segment cache. Like the
// native MMU it is its own pipeline FrontEnd and Backend.
type VirtHybridMMU struct {
	*pipeline.Engine
	cfg VirtHybridConfig
	// vm is the primary VM (the first registered).
	vm  *virt.VM
	vms map[uint32]*virt.VM

	synTLB  []*tlb.TLB
	walkers map[uint32]*virt.Walker2D

	guestXlate map[uint32]*segment.Translator
	hostXlate  *segment.Translator
	sc         *VirtSegCache

	pairs map[addr.ASID]*synfilter.Pair

	shadowPerm *permTable

	SynonymCandidates   stats.Counter
	FalsePositives      stats.Counter
	TrueSynonymAccesses stats.Counter
	NonSynonymAccesses  stats.Counter
	DelayedTranslations stats.Counter
	TwoStepXlations     stats.Counter // SC misses requiring guest+host steps
	FilterReloads       stats.Counter
}

// NewVirtHybridMMU builds the virtualized hybrid MMU over one VM. Use
// AddVM to consolidate more VMs onto the same hardware.
func NewVirtHybridMMU(cfg VirtHybridConfig, vm *virt.VM, hv *virt.Hypervisor) *VirtHybridMMU {
	if cfg.SynTLBEntries == 0 {
		cfg.SynTLBEntries = 64
	}
	if cfg.IndexCacheBytes == 0 {
		cfg.IndexCacheBytes = 32 << 10
	}
	m := &VirtHybridMMU{
		cfg:        cfg,
		vm:         vm,
		vms:        make(map[uint32]*virt.VM),
		walkers:    make(map[uint32]*virt.Walker2D),
		guestXlate: make(map[uint32]*segment.Translator),
		pairs:      make(map[addr.ASID]*synfilter.Pair),
		shadowPerm: newPermTable(),
	}
	m.Engine = pipeline.NewEngine(NewBase(cfg.Hier, cfg.DRAM, cfg.Energy), m, nil, m)
	for i := 0; i < cfg.Hier.NumCores; i++ {
		m.synTLB = append(m.synTLB, tlb.New(tlb.Config{
			Name: fmt.Sprintf("vsyn-tlb[%d]", i), Entries: cfg.SynTLBEntries, Ways: 4, Latency: 1,
		}))
	}
	hIC := segment.NewIndexCache(cfg.IndexCacheBytes)
	tcfg := m.translatorConfig()
	m.hostXlate = segment.NewTranslator(tcfg, nil, hIC, hv.HostSegMgr)
	hv.HostSegMgr.OnRebuild = hIC.Flush
	if cfg.WithSegmentCache {
		m.sc = NewVirtSegCache(segment.SegCacheEntries)
	}
	m.AddVM(vm)
	return m
}

// translatorConfig builds the shared delayed-translation latencies.
func (m *VirtHybridMMU) translatorConfig() segment.TranslatorConfig {
	tcfg := segment.DefaultTranslatorConfig()
	tcfg.MemLatency = func(pa addr.PA) uint64 { return m.DRAM.Access(pa) }
	return tcfg
}

// AddVM consolidates another virtual machine onto this processor: its
// guest kernel gets its own index-cached segment translator and 2D walker
// and this MMU becomes its shootdown sink.
func (m *VirtHybridMMU) AddVM(vm *virt.VM) {
	m.vms[vm.VMID] = vm
	m.walkers[vm.VMID] = virt.NewWalker2D(vm, true)
	gIC := segment.NewIndexCache(m.cfg.IndexCacheBytes)
	m.guestXlate[vm.VMID] = segment.NewTranslator(m.translatorConfig(), nil, gIC, vm.Kernel.SegMgr)
	vm.Kernel.SegMgr.OnRebuild = gIC.Flush
	vm.Kernel.AttachSink(m)
}

// vmOf resolves the VM owning an address space via the ASID's VMID.
func (m *VirtHybridMMU) vmOf(asid addr.ASID) *virt.VM {
	if vm, ok := m.vms[asid.VMID()]; ok {
		return vm
	}
	return m.vm
}

// Name implements MemSystem.
func (m *VirtHybridMMU) Name() string {
	if m.sc != nil {
		return "virt-hybrid+sc"
	}
	return "virt-hybrid"
}

// SC exposes the virtualized segment cache (nil when disabled).
func (m *VirtHybridMMU) SC() *VirtSegCache { return m.sc }

// pair returns the guest+host filter pair for a process.
func (m *VirtHybridMMU) pair(p *osmodel.Process) *synfilter.Pair {
	pr, ok := m.pairs[p.ASID]
	if !ok {
		pr = synfilter.NewPair(p.Filter, m.vmOf(p.ASID).HostFilter)
		m.pairs[p.ASID] = pr
	}
	return pr
}

// fillPerm mirrors the native MMU's shadow permission cache, using the
// guest page tables.
func (m *VirtHybridMMU) fillPerm(proc *osmodel.Process, gva addr.VA) addr.Perm {
	key := makePermKey(proc.ASID, gva.Page())
	if p, ok := m.shadowPerm.get(key); ok {
		return p
	}
	pte, ok := proc.PT.Lookup(gva.PageAligned())
	if !ok {
		return addr.PermNone
	}
	m.shadowPerm.set(key, pte.Perm)
	return pte.Perm
}

// timed2DWalk performs a nested walk, charging each of its machine-address
// reads through the cache hierarchy.
func (m *VirtHybridMMU) timed2DWalk(core int, proc *osmodel.Process, gva addr.VA) (virt.Walk2DResult, uint64) {
	m.Acc.Access(energy.PageWalk, 1)
	res := m.walkers[proc.ASID.VMID()].Walk(proc, gva)
	m.Acc.Access(energy.NestedTLB, uint64(res.NestedTLBHits))
	var lat uint64
	for _, ma := range res.Path {
		l, _ := m.PhysAccess(core, cache.Read, ma, addr.PermRO)
		lat += l
	}
	if p := m.Probe(); p != nil {
		p.Walk(pipeline.WalkEvent{Core: core, Steps: len(res.Path), OK: res.OK})
	}
	return res, lat
}

// Route implements pipeline.FrontEnd: Figure 1 extended with Section V.
func (m *VirtHybridMMU) Route(req *Request, res *Result) pipeline.Decision {
	m.Acc.Access(energy.SynonymFilter, 2) // both guest and host filters
	candidate := m.pair(req.Proc).IsCandidate(req.VA)
	if p := m.Probe(); p != nil {
		p.Filter(pipeline.FilterEvent{Core: req.Core, Candidate: candidate})
	}
	if candidate {
		m.SynonymCandidates.Inc()
		return m.routeSynonym(req, res)
	}
	m.NonSynonymAccesses.Inc()
	return m.routeVirtual(req, res)
}

// prefetchPerms warms the shadow-permission slots for the next block of
// requests, exactly as HybridMMU.prefetchPerms does. Reads only.
func (m *VirtHybridMMU) prefetchPerms(reqs []Request) {
	n := len(reqs)
	if n > permPrefetchBlock {
		n = permPrefetchBlock
	}
	var t uint64
	for j := 0; j < n; j++ {
		t += m.shadowPerm.touch(makePermKey(reqs[j].Proc.ASID, reqs[j].VA.Page()))
	}
	permTouchSink += t
}

// RouteBatch implements pipeline.BatchFrontEnd with the same quiet-probe /
// commit discipline as the native hybrid MMU: non-synonym accesses (and
// filter false positives) with a mapped, permission-satisfying guest page
// decode purely, as do true synonyms hitting the synonym TLB; 2D walks and
// OS faults stop the run for the scalar path.
func (m *VirtHybridMMU) RouteBatch(reqs []Request, res []Result, dec []pipeline.Decision) int {
	i := 0
	for ; i < len(reqs); i++ {
		if i%permPrefetchBlock == 0 {
			m.prefetchPerms(reqs[i:])
		}
		req := &reqs[i]
		isWrite := req.Kind == cache.Write
		pr := m.pair(req.Proc)
		if !pr.ProbeQuiet(req.VA) {
			perm := m.fillPerm(req.Proc, req.VA)
			if perm == addr.PermNone || (isWrite && !perm.AllowsWrite()) {
				break
			}
			m.Acc.Access(energy.SynonymFilter, 2)
			pr.CountNonCandidates(1)
			m.NonSynonymAccesses.Inc()
			dec[i] = pipeline.GoVirtual(perm)
			continue
		}
		st := m.synTLB[req.Core]
		e, hit := st.Probe(req.Proc.ASID, req.VA.Page())
		if !hit {
			break // 2D nested walk: impure
		}
		if e.NonSynonym {
			perm := m.fillPerm(req.Proc, req.VA)
			if perm == addr.PermNone || (isWrite && !perm.AllowsWrite()) {
				break
			}
			m.Acc.Access(energy.SynonymFilter, 2)
			pr.IsCandidate(req.VA)
			m.SynonymCandidates.Inc()
			m.Acc.Access(energy.SynonymTLB, 1)
			res[i].Latency += st.Config().Latency
			st.Lookup(req.Proc.ASID, req.VA.Page())
			m.FalsePositives.Inc()
			dec[i] = pipeline.GoVirtual(perm)
			continue
		}
		if isWrite && !e.Perm.AllowsWrite() {
			break
		}
		m.Acc.Access(energy.SynonymFilter, 2)
		pr.IsCandidate(req.VA)
		m.SynonymCandidates.Inc()
		m.Acc.Access(energy.SynonymTLB, 1)
		res[i].Latency += st.Config().Latency
		st.Lookup(req.Proc.ASID, req.VA.Page())
		m.TrueSynonymAccesses.Inc()
		ma := addr.FrameToPA(e.PFN) + addr.PA(req.VA.PageOffset())
		dec[i] = pipeline.GoPhysical(ma, e.Perm)
	}
	return i
}

// routeSynonym: TLB (gVA->MA) before L1, filled by 2D walks.
func (m *VirtHybridMMU) routeSynonym(req *Request, res *Result) pipeline.Decision {
	st := m.synTLB[req.Core]
	m.Acc.Access(energy.SynonymTLB, 1)
	res.Latency += st.Config().Latency

	e, hit := st.Lookup(req.Proc.ASID, req.VA.Page())
	if p := m.Probe(); p != nil {
		p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBSynonym, Hit: hit})
	}
	if !hit {
		wres, lat := m.timed2DWalk(req.Core, req.Proc, req.VA.PageAligned())
		res.Latency += lat
		if !wres.OK {
			fl, fixed := m.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
			res.Latency += fl
			res.Fault = true
			if !fixed {
				return pipeline.DoneNow()
			}
			wres, lat = m.timed2DWalk(req.Core, req.Proc, req.VA.PageAligned())
			res.Latency += lat
			if !wres.OK {
				return pipeline.DoneNow()
			}
		}
		shared := wres.GuestPTE.Shared || wres.HostShared
		ne := tlb.Entry{
			ASID: req.Proc.ASID, VPN: req.VA.Page(), PFN: wres.MA.Frame(),
			Perm: wres.GuestPTE.Perm, Shared: shared, NonSynonym: !shared,
		}
		st.Insert(ne)
		e = &ne
	}
	if e.NonSynonym {
		m.FalsePositives.Inc()
		if p := m.Probe(); p != nil {
			p.FalsePositive(pipeline.FalsePositiveEvent{Core: req.Core, VA: req.VA})
		}
		return m.routeVirtual(req, res)
	}
	m.TrueSynonymAccesses.Inc()
	if req.Kind == cache.Write && !e.Perm.AllowsWrite() {
		fl, fixed := m.HandleFault(req.Proc, req.VA, true)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		m.Retry(req, res)
		return pipeline.DoneNow()
	}
	ma := addr.FrameToPA(e.PFN) + addr.PA(req.VA.PageOffset())
	return pipeline.GoPhysical(ma, e.Perm)
}

// routeVirtual: VMID-extended ASID + gVA addressing; demand-paging and
// CoW faults resolve before the hierarchy runs.
func (m *VirtHybridMMU) routeVirtual(req *Request, res *Result) pipeline.Decision {
	perm := m.fillPerm(req.Proc, req.VA)
	if perm == addr.PermNone {
		fl, fixed := m.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		perm = m.fillPerm(req.Proc, req.VA)
		if perm == addr.PermNone {
			return pipeline.DoneNow()
		}
	}
	if req.Kind == cache.Write && !perm.AllowsWrite() {
		fl, fixed := m.HandleFault(req.Proc, req.VA, true)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		perm = m.fillPerm(req.Proc, req.VA)
	}
	return pipeline.GoVirtual(perm)
}

// Finish implements pipeline.Backend: two-step delayed segment
// translation after LLC misses, DRAM, and writeback translation.
func (m *VirtHybridMMU) Finish(req *Request, res *Result, hres *cache.AccessResult) {
	if hres.LLCMiss {
		res.LLCMiss = true
		m.DelayedTranslations.Inc()
		ma, lat, ok := m.delayed2D(req.Core, req.Proc, req.VA, false)
		res.Latency += lat
		if !ok {
			fl, _ := m.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
			res.Latency += fl
			res.Fault = true
			return
		}
		res.Latency += m.DRAM.Access(ma)
	}
	for _, wb := range hres.Writebacks {
		if !wb.Synonym {
			if p := m.vmOf(wb.ASID).Kernel.Process(wb.ASID); p != nil {
				m.delayed2D(req.Core, p, addr.VA(wb.Addr), true)
			}
		}
	}
}

// delayed2D translates gVA -> MA after an LLC miss: SC first, then the
// guest and host segment walks. wb marks writeback translations.
func (m *VirtHybridMMU) delayed2D(core int, proc *osmodel.Process, gva addr.VA, wb bool) (addr.PA, uint64, bool) {
	var lat uint64
	if m.sc != nil {
		m.Acc.Access(energy.SegmentCache, 1)
		lat += 2
		if ma, _, ok := m.sc.Lookup(proc.ASID, gva); ok {
			if p := m.Probe(); p != nil {
				p.Delayed(pipeline.DelayedEvent{Core: core, Writeback: wb, SCHit: true})
			}
			return ma, lat, true
		}
	}
	m.TwoStepXlations.Inc()
	// Guest step: gVA -> gPA.
	g := m.xlate(m.guestXlate[proc.ASID.VMID()], proc.ASID, gva)
	m.Acc.Access(energy.IndexCache, uint64(g.ICProbes))
	m.Acc.Access(energy.SegmentTable, 1)
	lat += g.Latency
	if g.Fault {
		if p := m.Probe(); p != nil {
			p.Delayed(pipeline.DelayedEvent{Core: core, Writeback: wb,
				Depth: g.ICProbes, Fault: true})
		}
		return 0, lat, false
	}
	gpa := addr.GPA(g.PA)
	// Host step: gPA -> MA.
	h := m.xlate(m.hostXlate, hostASIDOf(proc.ASID.VMID()), addr.VA(gpa))
	m.Acc.Access(energy.IndexCache, uint64(h.ICProbes))
	m.Acc.Access(energy.SegmentTable, 1)
	lat += h.Latency
	if p := m.Probe(); p != nil {
		p.Delayed(pipeline.DelayedEvent{Core: core, Writeback: wb,
			Depth: g.ICProbes + h.ICProbes, Fault: h.Fault})
	}
	if h.Fault {
		return 0, lat, false
	}
	ma := h.PA
	if m.sc != nil {
		m.fillSC(proc.ASID, gva, g.Seg, h.Seg, ma)
	}
	return ma, lat, true
}

// fillSC installs a direct gVA->MA granule entry when the whole 2 MiB
// granule is contiguous through both segment mappings.
func (m *VirtHybridMMU) fillSC(asid addr.ASID, gva addr.VA, gseg, hseg *segment.Segment, ma addr.PA) {
	gStart := gva & ^addr.VA(addr.HugePageSize-1)
	gEnd := gStart + addr.HugePageSize - 1
	if !gseg.Contains(asid, gStart) || !gseg.Contains(asid, gEnd) {
		return
	}
	hostASID := hostASIDOf(asid.VMID())
	gpaStart := addr.VA(gseg.Translate(gStart))
	gpaEnd := addr.VA(gseg.Translate(gEnd))
	if !hseg.Contains(hostASID, gpaStart) || !hseg.Contains(hostASID, gpaEnd) {
		return
	}
	maBase := hseg.Translate(gpaStart)
	off := uint64(gva) & (addr.HugePageSize - 1)
	if maBase+addr.PA(off) != ma {
		return // non-contiguous composition; stay conservative
	}
	m.sc.Fill(asid, gva, maBase, m.fillPerm(m.vmOf(asid).Kernel.Process(asid), gva))
}

// xlate runs one segment translation step, on the translator's scratch
// path buffer when the engine is in batched (allocation-free) mode.
func (m *VirtHybridMMU) xlate(tr *segment.Translator, asid addr.ASID, va addr.VA) segment.TranslateResult {
	if m.ScratchMode() {
		return tr.TranslateReuse(asid, va)
	}
	return tr.Translate(asid, va)
}

// hostASIDOf mirrors virt's host pseudo-ASID convention.
func hostASIDOf(vmid uint32) addr.ASID { return addr.MakeASID(vmid, 0) }

// --- osmodel.ShootdownSink ---

// TLBShootdown implements the sink.
func (m *VirtHybridMMU) TLBShootdown(asid addr.ASID, vpn uint64) {
	for _, st := range m.synTLB {
		st.Shootdown(asid, vpn)
	}
	if m.sc != nil {
		m.sc.FlushAll()
	}
	m.shadowPerm.del(makePermKey(asid, vpn))
}

// FlushPage implements the sink.
func (m *VirtHybridMMU) FlushPage(page addr.Name) {
	m.Hier.FlushPage(page)
	if !page.Synonym {
		m.shadowPerm.del(makePermKey(page.ASID, page.Page()))
	}
}

// SetPagePerm implements the sink.
func (m *VirtHybridMMU) SetPagePerm(page addr.Name, perm addr.Perm) {
	m.Hier.SetPagePerm(page, perm)
	if !page.Synonym {
		m.shadowPerm.set(makePermKey(page.ASID, page.Page()), perm)
	}
}

// FilterUpdate implements the sink.
func (m *VirtHybridMMU) FilterUpdate(asid addr.ASID) { m.FilterReloads.Inc() }

// FlushASID implements the sink.
func (m *VirtHybridMMU) FlushASID(asid addr.ASID) {
	m.Hier.FlushASID(asid)
	for _, st := range m.synTLB {
		st.FlushASID(asid)
	}
	if m.sc != nil {
		m.sc.FlushAll()
	}
	m.shadowPerm.flushASID(asid)
	delete(m.pairs, asid)
}
