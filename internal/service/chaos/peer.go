package chaos

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"
)

// Peer-fault injection: a PeerProxy stands between a cluster node and
// the peer it fetches results from, downgrading the peer on command —
// down (connections die), slow (responses stall past any sane fetch
// timeout), corrupt (bodies mangled) — so the chaos suite can prove the
// cluster's graceful-degradation contract: an unreachable or lying
// owner costs a local simulation, never a failed job and never a
// corrupt result served.

// PeerMode selects the proxy's current behaviour.
type PeerMode int32

const (
	// PeerPass forwards requests verbatim.
	PeerPass PeerMode = iota
	// PeerDown kills every connection without answering — the owner
	// process is gone.
	PeerDown
	// PeerSlow stalls every response until the caller gives up — a
	// wedged or overloaded owner.
	PeerSlow
	// PeerCorrupt forwards the request but mangles the response body at
	// a seeded offset — a lying owner or a broken middlebox.
	PeerCorrupt
)

// PeerCounts reports how many requests the proxy saw in each mode.
type PeerCounts struct {
	Passed, Dropped, Stalled, Corrupted int
}

// PeerProxy is the fault-injecting reverse proxy. Construct with
// NewPeerProxy, point the fetching node's member list at URL(), switch
// faults with SetMode at any time (safe concurrently), Close when done.
type PeerProxy struct {
	target string
	hc     *http.Client
	srv    *httptest.Server
	mode   atomic.Int32
	stall  atomic.Int64 // nanoseconds; 0 = until the client disconnects

	mu     sync.Mutex
	rng    *rand.Rand
	counts PeerCounts
}

// NewPeerProxy builds a proxy forwarding to the target base URL, with
// corruption offsets drawn from seed. It starts in PeerPass mode.
func NewPeerProxy(target string, seed int64) *PeerProxy {
	p := &PeerProxy{
		target: target,
		hc:     &http.Client{},
		rng:    rand.New(rand.NewSource(seed)),
	}
	p.srv = httptest.NewServer(http.HandlerFunc(p.handle))
	return p
}

// URL is the proxy's base URL — what the fetching node believes is the
// peer's address.
func (p *PeerProxy) URL() string { return p.srv.URL }

// SetMode switches the fault behaviour for all subsequent requests.
func (p *PeerProxy) SetMode(m PeerMode) { p.mode.Store(int32(m)) }

// SetStall bounds how long PeerSlow holds a response (0 = until the
// caller's own timeout disconnects it).
func (p *PeerProxy) SetStall(d time.Duration) { p.stall.Store(int64(d)) }

// Counts snapshots the per-mode request counts.
func (p *PeerProxy) Counts() PeerCounts {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts
}

// Close shuts the proxy down.
func (p *PeerProxy) Close() { p.srv.Close() }

func (p *PeerProxy) handle(w http.ResponseWriter, r *http.Request) {
	mode := PeerMode(p.mode.Load())
	p.mu.Lock()
	switch mode {
	case PeerDown:
		p.counts.Dropped++
	case PeerSlow:
		p.counts.Stalled++
	case PeerCorrupt:
		p.counts.Corrupted++
	default:
		p.counts.Passed++
	}
	p.mu.Unlock()

	switch mode {
	case PeerDown:
		// Abort the connection without a response: the caller sees a
		// transport error, exactly like a dead process.
		panic(http.ErrAbortHandler)
	case PeerSlow:
		stall := time.Duration(p.stall.Load())
		if stall <= 0 {
			<-r.Context().Done()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(stall):
		}
	}

	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.hc.Do(req)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	if mode == PeerCorrupt && len(body) > 2 {
		body = p.corrupt(body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// corrupt mangles a response body deterministically from the seed:
// alternating seeded truncation (invalid JSON) and a byte flip inside
// the JSON prelude — `{"key":"…` — which breaks the syntax or the key
// match. Both shapes are always detectable by the fetch-side record
// validation, so the suite's no-corrupt-result assertion is exact.
func (p *PeerProxy) corrupt(body []byte) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng.Intn(2) == 0 {
		return body[:1+p.rng.Intn(len(body)-1)]
	}
	mangled := append([]byte(nil), body...)
	n := min(12, len(mangled))
	mangled[p.rng.Intn(n)] ^= 1 << p.rng.Intn(8)
	return mangled
}
