package workload

import (
	"math"
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/osmodel"
)

func kernel() *osmodel.Kernel {
	return osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
}

func TestAllSpecsInstantiate(t *testing.T) {
	for name, spec := range Specs {
		k := kernel()
		gens, err := NewGroup(spec, k, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := spec.Procs
		if want <= 0 {
			want = 1
		}
		if len(gens) != want {
			t.Errorf("%s: %d generators, want %d", name, len(gens), want)
		}
		// Generate some instructions; all memory VAs must be mapped.
		for _, g := range gens {
			for i := 0; i < 2000; i++ {
				in := g.Next()
				if !in.IsMem {
					continue
				}
				if _, ok := g.Proc.PT.Lookup(in.VA.PageAligned()); !ok {
					t.Fatalf("%s: generated unmapped VA %#x", name, uint64(in.VA))
				}
			}
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nonexistent"); err == nil {
		t.Error("unknown workload accepted")
	}
	if s, err := Get("gups"); err != nil || s.Name != "gups" {
		t.Error("known workload rejected")
	}
}

func TestMemRatioApproximatelyRespected(t *testing.T) {
	k := kernel()
	g, err := New(Specs["gups"], k, 2)
	if err != nil {
		t.Fatal(err)
	}
	mem := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().IsMem {
			mem++
		}
	}
	got := float64(mem) / n
	if math.Abs(got-g.Spec.MemRatio) > 0.02 {
		t.Errorf("mem ratio = %.3f, want ~%.3f", got, g.Spec.MemRatio)
	}
	if g.Emitted() != n {
		t.Errorf("emitted = %d", g.Emitted())
	}
}

func TestSharedAccessFraction(t *testing.T) {
	k := kernel()
	gens, err := NewGroup(Specs["postgres"], k, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := gens[0]
	shared, mem := 0, 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.IsMem {
			mem++
			if in.Shared {
				shared++
			}
		}
	}
	got := float64(shared) / float64(mem)
	if math.Abs(got-0.16) > 0.02 {
		t.Errorf("shared access fraction = %.3f, want ~0.16", got)
	}
	// The OS-side accounting must agree.
	if r := g.Proc.SharedAccessRatio(); math.Abs(r-got) > 0.01 {
		t.Errorf("OS-side shared ratio %.3f disagrees with stream %.3f", r, got)
	}
	// And the shared pages must be synonym-marked.
	if !g.Proc.Filter.ProbeQuiet(gens[0].sharedStart) {
		t.Error("shared region not in synonym filter")
	}
}

func TestSegmentCountsMatchTableIII(t *testing.T) {
	// Region counts translate into live segment counts (plus one code
	// segment per process) — the Table III reproduction hinges on this.
	for _, name := range []string{"stream", "mcf", "tigr"} {
		k := kernel()
		spec := Specs[name]
		if _, err := NewGroup(spec, k, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := len(spec.Regions) + 1 // + code region
		if got := k.MaxSegments(); got < want || got > want+4 {
			t.Errorf("%s: %d segments, want ~%d", name, got, want)
		}
	}
}

func TestTouchFracBoundsFootprint(t *testing.T) {
	k := kernel()
	g, err := New(Specs["gemsFDTD"], k, 4) // TouchFrac 0.28
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		g.Next()
	}
	// A sampled window touches only part of the working set, so
	// utilization must stay below the touch fraction (plus slack for the
	// fully touched code region).
	u := g.Proc.Utilization()
	if u > 0.35 {
		t.Errorf("utilization %.3f far above touch fraction 0.28", u)
	}
	// PrewarmTouch models the full run: utilization converges to the
	// touch fraction.
	g.PrewarmTouch()
	u = g.Proc.Utilization()
	if math.Abs(u-0.28) > 0.03 {
		t.Errorf("prewarmed utilization %.3f, want ~0.28", u)
	}
}

func TestStreamPatternIsSequential(t *testing.T) {
	k := kernel()
	g, err := New(Specs["stream"], k, 5)
	if err != nil {
		t.Fatal(err)
	}
	var prev addr.VA
	increasing, mem := 0, 0
	for i := 0; i < 10000; i++ {
		in := g.Next()
		if !in.IsMem {
			continue
		}
		mem++
		if in.VA > prev {
			increasing++
		}
		prev = in.VA
	}
	if float64(increasing)/float64(mem) < 0.95 {
		t.Errorf("stream pattern not sequential: %d/%d increasing", increasing, mem)
	}
}

func TestChasePatternDependence(t *testing.T) {
	k := kernel()
	g, err := New(Specs["mcf"], k, 6)
	if err != nil {
		t.Fatal(err)
	}
	dep, loads := 0, 0
	for i := 0; i < 20000; i++ {
		in := g.Next()
		if in.IsMem && !in.IsStore {
			loads++
			if in.DependsOnPrev {
				dep++
			}
		}
	}
	if float64(dep)/float64(loads) < 0.9 {
		t.Errorf("chase workload loads not dependent: %d/%d", dep, loads)
	}
}

func TestZipfConcentratesAccesses(t *testing.T) {
	k := kernel()
	g, err := New(Specs["omnetpp"], k, 7) // HotFrac 0.1
	if err != nil {
		t.Fatal(err)
	}
	hot := g.HotPages()
	if len(hot) == 0 {
		t.Fatal("no hot pages for a Zipf workload")
	}
	inHot, mem := 0, 0
	distinct := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.IsMem && !in.Shared {
			mem++
			distinct[in.VA.Page()] = true
			if hot[in.VA.Page()] {
				inHot++
			}
		}
	}
	// ~90% of accesses must land in the hot region.
	if frac := float64(inHot) / float64(mem); frac < 0.85 {
		t.Errorf("hot region holds only %.2f of accesses", frac)
	}
	if uint64(len(distinct)) > g.PageWorkingSet() {
		t.Errorf("touched %d pages > working set %d", len(distinct), g.PageWorkingSet())
	}
}

func TestUniformSpreadsAccesses(t *testing.T) {
	k := kernel()
	g, err := New(Specs["gups"], k, 8)
	if err != nil {
		t.Fatal(err)
	}
	pages := map[uint64]bool{}
	mem := 0
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if in.IsMem {
			pages[in.VA.Page()] = true
			mem++
		}
	}
	// With a 1 GiB working set and ~25k accesses, nearly every access
	// lands on a fresh page.
	if float64(len(pages))/float64(mem) < 0.9 {
		t.Errorf("gups touched only %d distinct pages over %d accesses", len(pages), mem)
	}
}

func TestPhaseRotationMovesHotRegion(t *testing.T) {
	k := kernel()
	spec := Specs["omnetpp"]
	spec.PhaseInsns = 20000
	g, err := New(spec, k, 12)
	if err != nil {
		t.Fatal(err)
	}
	hot0 := g.HotPages()
	// Run past one phase boundary.
	for i := 0; i < 25000; i++ {
		g.Next()
	}
	if g.Phases != 1 {
		t.Fatalf("phases = %d, want 1", g.Phases)
	}
	hot1 := g.HotPages()
	overlap := 0
	for p := range hot1 {
		if hot0[p] {
			overlap++
		}
	}
	// The rotated hot region must be (almost) disjoint from the old one.
	if float64(overlap)/float64(len(hot1)) > 0.1 {
		t.Errorf("hot regions overlap %d/%d after a phase change", overlap, len(hot1))
	}
	// Accesses concentrate on the new hot region.
	inHot, mem := 0, 0
	for i := 0; i < 15000; i++ {
		in := g.Next()
		if in.IsMem && !in.Shared {
			mem++
			if hot1[in.VA.Page()] {
				inHot++
			}
		}
	}
	if frac := float64(inHot) / float64(mem); frac < 0.8 {
		t.Errorf("post-phase hot fraction %.2f", frac)
	}
}

func TestDeterministicStreams(t *testing.T) {
	k1, k2 := kernel(), kernel()
	g1, _ := New(Specs["mcf"], k1, 42)
	g2, _ := New(Specs["mcf"], k2, 42)
	for i := 0; i < 10000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestCodeRegionMapped(t *testing.T) {
	k := kernel()
	g, _ := New(Specs["stream"], k, 9)
	if g.CodeLen == 0 {
		t.Fatal("no code region")
	}
	for off := uint64(0); off < g.CodeLen; off += addr.PageSize {
		pte, ok := g.Proc.PT.Lookup(g.CodeStart + addr.VA(off))
		if !ok || pte.Perm != addr.PermExec {
			t.Fatalf("code page %#x unmapped or wrong perm", off)
		}
	}
}

func TestBranchMispredictsEmitted(t *testing.T) {
	k := kernel()
	g, err := New(Specs["stream"], k, 10)
	if err != nil {
		t.Fatal(err)
	}
	miss := 0
	const n = 200000
	for i := 0; i < n; i++ {
		in := g.Next()
		if in.Mispredict {
			if in.IsMem {
				t.Fatal("memory op marked mispredict")
			}
			miss++
		}
	}
	// Default rates: 15% branches x 3% mispredict over non-mem insns
	// (~50% of the stream) => ~0.22% of instructions.
	rate := float64(miss) / n
	if rate < 0.0005 || rate > 0.006 {
		t.Errorf("mispredict rate %.4f outside plausible band", rate)
	}
}
