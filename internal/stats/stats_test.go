package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
}

func TestHitMiss(t *testing.T) {
	var h HitMiss
	for i := 0; i < 3; i++ {
		h.Hit()
	}
	h.Miss()
	if h.Accesses() != 4 {
		t.Errorf("accesses = %d, want 4", h.Accesses())
	}
	if h.HitRate() != 0.75 {
		t.Errorf("hit rate = %f, want 0.75", h.HitRate())
	}
	if h.MissRate() != 0.25 {
		t.Errorf("miss rate = %f, want 0.25", h.MissRate())
	}
	h.Record(true)
	h.Record(false)
	if h.Hits.Value() != 4 || h.Misses.Value() != 2 {
		t.Errorf("after Record: %v", h)
	}

	var sum HitMiss
	sum.AddAll(h)
	sum.AddAll(h)
	if sum.Hits.Value() != 8 || sum.Misses.Value() != 4 {
		t.Errorf("AddAll: %v", sum)
	}
	if !strings.Contains(h.String(), "hits=4") {
		t.Errorf("String: %q", h.String())
	}
}

func TestHitMissEmpty(t *testing.T) {
	var h HitMiss
	if h.HitRate() != 0 || h.MissRate() != 0 {
		t.Error("empty HitMiss rates must be 0")
	}
}

func TestRatioAndPerKilo(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator must be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio(3,4) != 0.75")
	}
	if PerKilo(5, 0) != 0 {
		t.Error("PerKilo with zero units must be 0")
	}
	if PerKilo(5, 1000) != 5 {
		t.Errorf("PerKilo(5,1000) = %f, want 5", PerKilo(5, 1000))
	}
	if Percent(0.1234) != "12.34%" {
		t.Errorf("Percent = %q", Percent(0.1234))
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	if h.NumBuckets() != 4 {
		t.Fatalf("buckets = %d, want 4", h.NumBuckets())
	}
	for _, v := range []uint64{0, 10, 11, 100, 500, 1001, 5000} {
		h.Observe(v)
	}
	wantCounts := []uint64{2, 2, 1, 2}
	for i, want := range wantCounts {
		if got := h.Bucket(i); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Max() != 5000 {
		t.Errorf("max = %d", h.Max())
	}
	wantMean := float64(0+10+11+100+500+1001+5000) / 7
	if h.Mean() != wantMean {
		t.Errorf("mean = %f, want %f", h.Mean(), wantMean)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(8)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("p50 = %d, want 1", q)
	}
	if q := h.Quantile(0.99); q != 8 {
		t.Errorf("p99 = %d, want 8", q)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, bounds := range [][]uint64{{}, {5, 5}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramCountInvariant(t *testing.T) {
	f := func(samples []uint16) bool {
		h := NewHistogram(16, 256, 4096)
		for _, s := range samples {
			h.Observe(uint64(s))
		}
		var sum uint64
		for i := 0; i < h.NumBuckets(); i++ {
			sum += h.Bucket(i)
		}
		return sum == h.Count() && sum == uint64(len(samples))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Error("empty mean must be 0")
	}
	m.Observe(1)
	m.Observe(2)
	m.Observe(3)
	if m.Value() != 2 || m.N() != 3 {
		t.Errorf("mean = %f n = %d", m.Value(), m.N())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table I", "workload", "shared area", "shared access")
	tb.AddRow("ferret", "0.94%", "0.24%")
	tb.AddRow("postgres") // short row padded
	out := tb.String()
	for _, want := range []string{"Table I", "workload", "ferret", "0.94%", "postgres"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("rows = %d", tb.NumRows())
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "x,y") // comma must be quoted
	tb.AddRow("2", "z")
	var buf strings.Builder
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n2,z\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestAddRowRejectsOverflow(t *testing.T) {
	tb := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("AddRow accepted more cells than columns")
		}
		if tb.NumRows() != 0 {
			t.Error("overflowing row was recorded")
		}
	}()
	tb.AddRow("1", "2", "3") // one cell too many — must panic, not truncate
}

// TestHistogramCumulativeRendering is the property a Prometheus-style
// cumulative rendering of Snapshot depends on: partial sums over the
// per-bucket counts are monotone non-decreasing, and the final
// cumulative value (the +Inf bucket) equals Count().
func TestHistogramCumulativeRendering(t *testing.T) {
	f := func(samples []uint16) bool {
		h := NewHistogram(10, 100, 1_000, 10_000)
		var sum uint64
		for _, s := range samples {
			h.Observe(uint64(s))
			sum += uint64(s)
		}
		snap := h.Snapshot()
		if len(snap.Counts) != len(snap.Bounds)+1 {
			return false
		}
		var cum, prev uint64
		for _, c := range snap.Counts {
			cum += c
			if cum < prev {
				return false
			}
			prev = cum
		}
		return cum == h.Count() &&
			snap.Total == h.Count() &&
			snap.Sum == sum && h.Sum() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHistogramSnapshotQuantileAgreement: the snapshot's precomputed
// percentiles must match Quantile at snapshot time, and every quantile
// is an upper bound that some bucket's cumulative count justifies.
func TestHistogramSnapshotQuantileAgreement(t *testing.T) {
	h := NewHistogram(10, 100, 1_000)
	for v := uint64(1); v <= 2_000; v += 7 {
		h.Observe(v)
	}
	snap := h.Snapshot()
	for _, c := range []struct {
		q    float64
		want uint64
	}{{0.50, snap.P50}, {0.90, snap.P90}, {0.99, snap.P99}} {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, snapshot says %d", c.q, got, c.want)
		}
	}
	if h.Quantile(1.0) != h.Max() {
		t.Errorf("Quantile(1.0) = %d, want max %d", h.Quantile(1.0), h.Max())
	}
	if snap.Max != h.Max() {
		t.Errorf("snapshot max = %d, want %d", snap.Max, h.Max())
	}
}
