package experiments

import (
	"fmt"
	"math/rand"

	"hybridvc/internal/addr"
	"hybridvc/internal/core"
	"hybridvc/internal/mem"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/segment"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

// Figure7Sizes are the index cache capacities swept (64 B to 64 KiB).
var Figure7Sizes = []int{64, 256, 512, 1 << 10, 2 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}

// Figure7Series is one index-cache hit-rate curve.
type Figure7Series struct {
	Label string
	// Sizes are the index cache capacities probed, parallel to HitRates.
	Sizes    []int
	HitRates []float64
}

// figure7SingleWorkloads drive the single-application curves; the paper
// picks the ten workloads causing the most misses. External fragmentation
// is injected by splitting every segment into ten pieces.
var figure7SingleWorkloads = []string{"mcf", "xalancbmk", "tigr", "omnetpp", "memcached"}

// fig7aCell measures one (workload set × index cache size) point: hybrid
// MMU with the segment cache disabled, x10 external fragmentation.
func fig7aCell(names []string, cores, size int, n uint64) (float64, error) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 32 << 30})
	cfg := core.DefaultHybridConfig(cores)
	cfg.Delayed = core.DelayedSegments
	cfg.WithSegmentCache = false // expose the index cache
	cfg.IndexCacheBytes = size
	ms := core.NewHybridMMU(cfg, k)
	var gens []*workload.Generator
	for _, name := range names {
		g, err := workload.NewGroup(workload.Specs[name], k, 1)
		if err != nil {
			return 0, fmt.Errorf("fig7a %s: %w", name, err)
		}
		gens = append(gens, g...)
	}
	// Inject external fragmentation: up to x10 segments per region, capped
	// so the 2048-entry segment table holds the result.
	if factor := fragmentFactor(k.MaxSegments()); factor >= 2 {
		for _, g := range gens {
			if err := k.FragmentSegments(g.Proc, factor); err != nil {
				return 0, fmt.Errorf("fig7a fragmentation: %w", err)
			}
		}
	}
	driveMem(ms, gens, n)
	return ms.Translator().IC.Stats().HitRate(), nil
}

// Figure7a measures index cache hit rates for real workloads (single
// applications and a quad-core multiprogrammed mix), with each segment
// artificially broken into 10 to add external fragmentation.
func Figure7a(scale Scale) ([]Figure7Series, *stats.Table, error) {
	n := scale.pick(60_000, 1_000_000)
	sizes := Figure7Sizes
	if scale == Quick {
		sizes = []int{64, 512, 2 << 10, 8 << 10, 32 << 10, 64 << 10}
	}
	singles := figure7SingleWorkloads
	if scale == Quick {
		singles = []string{"mcf", "xalancbmk", "omnetpp"}
	}
	type curve struct {
		label string
		names []string
		cores int
	}
	var curves []curve
	for _, name := range singles {
		curves = append(curves, curve{name, []string{name}, 1})
	}
	curves = append(curves, curve{"multi (quad-core mix)", []string{"mcf", "xalancbmk", "omnetpp", "tigr"}, 4})

	var cells []Cell
	for _, cv := range curves {
		for _, size := range sizes {
			cv, size := cv, size
			cells = append(cells, Cell{
				Label: fmt.Sprintf("fig7a/%s/%d", cv.label, size),
				Fn: func() (any, error) {
					return fig7aCell(cv.names, cv.cores, size, n)
				},
			})
		}
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, nil, err
	}

	var series []Figure7Series
	for ci, cv := range curves {
		s := Figure7Series{Label: cv.label, Sizes: sizes}
		for si := range sizes {
			s.HitRates = append(s.HitRates, res[ci*len(sizes)+si].Value.(float64))
		}
		series = append(series, s)
	}
	t := figure7Table("Figure 7a: index cache hit rate, real workloads (x10 fragmentation)", sizes, series)
	return series, t, nil
}

// fig7bCell measures one synthetic worst-case point: segs equal segments
// over a 40-bit space, probed uniformly at random through an index cache
// of the given size.
func fig7bCell(segs int, incremental bool, size int, n uint64) (float64, error) {
	alloc := mem.NewAllocator(1 << 34)
	mgr := segment.NewManager(segment.NewNodeArena(alloc))
	ic := segment.NewIndexCache(size)
	mgr.OnRebuild = ic.Flush
	asid := addr.MakeASID(0, 1)
	// Distribute the 40-bit space over the segments.
	segLen := uint64(1<<40) / uint64(segs)
	entries := make([]segment.TreeEntry, 0, segs)
	for i := 0; i < segs; i++ {
		seg := &segment.Segment{
			ASID: asid, Base: addr.VA(uint64(i) * segLen),
			Length: segLen, PABase: 0, Perm: addr.PermRW,
		}
		id, ok := mgr.Table.Alloc(seg)
		if !ok {
			return 0, fmt.Errorf("fig7b: table full at %d segments", i)
		}
		entries = append(entries, segment.TreeEntry{
			Key: segment.MakeKey(asid, seg.Base), Value: id,
		})
	}
	if incremental {
		// Insert in shuffled order, as an OS would allocate.
		for _, i := range rand.New(rand.NewSource(19)).Perm(len(entries)) {
			if err := mgr.Tree.Insert(entries[i]); err != nil {
				return 0, err
			}
		}
	} else {
		mgr.Tree.Build(entries)
	}
	tr := segment.NewTranslator(segment.DefaultTranslatorConfig(), nil, ic, mgr)
	rng := rand.New(rand.NewSource(17))
	for i := uint64(0); i < n; i++ {
		tr.Translate(asid, addr.VA(rng.Uint64()&(1<<40-1)))
	}
	return ic.Stats().HitRate(), nil
}

// Figure7b measures the worst case: 1024 or 2048 equally sized segments
// spread over a 40-bit physical space, probed uniformly at random. For
// 2048 segments two tree constructions are compared: the bulk-built,
// perfectly packed tree (≈25 KiB — it fits a 32 KiB index cache entirely)
// and an incrementally maintained tree at its natural ~2/3 fill factor,
// which reproduces the paper's 75.5%-at-32 KiB figure.
func Figure7b(scale Scale) ([]Figure7Series, *stats.Table, error) {
	n := scale.pick(200_000, 1_000_000)
	curves := []struct {
		label       string
		segs        int
		incremental bool
	}{
		{"1024 entry", 1024, false},
		{"2048 entry", 2048, false},
		{"2048 entry (incremental tree)", 2048, true},
	}
	var cells []Cell
	for _, cv := range curves {
		for _, size := range Figure7Sizes {
			cv, size := cv, size
			cells = append(cells, Cell{
				Label: fmt.Sprintf("fig7b/%s/%d", cv.label, size),
				Fn: func() (any, error) {
					return fig7bCell(cv.segs, cv.incremental, size, n)
				},
			})
		}
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, nil, err
	}

	var series []Figure7Series
	for ci, cv := range curves {
		s := Figure7Series{Label: cv.label, Sizes: Figure7Sizes}
		for si := range Figure7Sizes {
			s.HitRates = append(s.HitRates, res[ci*len(Figure7Sizes)+si].Value.(float64))
		}
		series = append(series, s)
	}
	t := figure7Table("Figure 7b: index cache hit rate, synthetic worst case (uniform random)", Figure7Sizes, series)
	return series, t, nil
}

// fragmentFactor picks the largest split factor (<= 10, the paper's x10)
// that keeps the fragmented segment count within the table capacity.
func fragmentFactor(current int) int {
	if current == 0 {
		return 0
	}
	f := 1800 / current
	if f > 10 {
		f = 10
	}
	return f
}

func figure7Table(title string, sizes []int, series []Figure7Series) *stats.Table {
	cols := []string{"series"}
	for _, size := range sizes {
		if size < 1024 {
			cols = append(cols, fmt.Sprintf("%dB", size))
		} else {
			cols = append(cols, fmt.Sprintf("%dKB", size/1024))
		}
	}
	t := stats.NewTable(title, cols...)
	for _, s := range series {
		row := []string{s.Label}
		for _, hr := range s.HitRates {
			row = append(row, fmt.Sprintf("%.1f%%", 100*hr))
		}
		t.AddRow(row...)
	}
	return t
}
