package cluster

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

// tracker is the per-peer health view: a background loop probes every
// peer's /readyz on a fixed interval, and failed peer calls mark a peer
// unhealthy immediately (only a successful probe restores it, so one
// timed-out fetch suppresses further fetches to that owner until the
// next probe proves it back). Peers with no evidence yet are
// optimistically healthy — the first fetch is the probe.
type tracker struct {
	cluster  *Cluster
	interval time.Duration

	mu    sync.Mutex
	down  map[string]bool // peer ID → known-unhealthy
	stopC chan struct{}
}

func newTracker(c *Cluster, interval time.Duration) *tracker {
	return &tracker{cluster: c, interval: interval, down: make(map[string]bool)}
}

func (t *tracker) healthy(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.down[id]
}

func (t *tracker) markFailed(id string) {
	if id == t.cluster.self.ID {
		return
	}
	t.mu.Lock()
	t.down[id] = true
	t.mu.Unlock()
}

func (t *tracker) markHealthy(id string) {
	t.mu.Lock()
	delete(t.down, id)
	t.mu.Unlock()
}

// healthyCount counts reachable peers (self excluded).
func (t *tracker) healthyCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, m := range t.cluster.members {
		if m.ID != t.cluster.self.ID && !t.down[m.ID] {
			n++
		}
	}
	return n
}

func (t *tracker) start() {
	t.mu.Lock()
	if t.stopC != nil {
		t.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	t.stopC = stop
	t.mu.Unlock()
	go t.loop(stop)
}

func (t *tracker) stop() {
	t.mu.Lock()
	if t.stopC != nil {
		close(t.stopC)
		t.stopC = nil
	}
	t.mu.Unlock()
}

func (t *tracker) loop(stop <-chan struct{}) {
	ticker := time.NewTicker(t.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() { t.probeAll(ctx); close(done) }()
			select {
			case <-done:
			case <-stop:
				cancel()
				<-done
				return
			}
			cancel()
		}
	}
}

// probeAll probes every peer once, concurrently, and updates health from
// the verdicts. A 200 /readyz is healthy; anything else — 503 from a
// draining or overloaded peer included — is not a node to fetch from.
func (t *tracker) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range t.cluster.members {
		if m.ID == t.cluster.self.ID {
			continue
		}
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			if t.probe(ctx, m) {
				t.markHealthy(m.ID)
			} else {
				t.markFailed(m.ID)
			}
		}(m)
	}
	wg.Wait()
}

func (t *tracker) probe(ctx context.Context, m Member) bool {
	ctx, cancel := context.WithTimeout(ctx, t.cluster.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := t.cluster.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}
