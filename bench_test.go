// Benchmark harness: one benchmark per paper table/figure (regenerating
// the same rows/series via the experiments package) plus microbenchmarks
// of the core hardware structures. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks run at Quick scale; use `go run ./cmd/tablegen
// -full` for paper-length sweeps.
package hybridvc_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"hybridvc"
	"hybridvc/experiments"
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/mem"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/segment"
	"hybridvc/internal/synfilter"
	"hybridvc/internal/tlb"
	"hybridvc/internal/workload"
)

// sinkTable prevents dead-code elimination of experiment results.
var sinkTable interface{}

// --- one benchmark per table/figure ---

func BenchmarkTable1SharedMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.TableI(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable2SynonymFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.TableII(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable3Segments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.TableIII(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure4DelayedTLBScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Figure4(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure7aIndexCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Figure7a(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure7bIndexCacheWorstCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Figure7b(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure9NativePerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Figure9(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure10VirtualizedPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Figure10(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure11TranslationEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Figure11(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkSegmentWalkLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.SegmentWalkLatency(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkAblationFilterDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationFilterDesign(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkAblationSegmentCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationSegmentCache(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkMulticoreMixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Multicore(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkAblationHugePages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationHugePages(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkQuickFullSweep runs every registered experiment (the whole
// `tablegen -exp all` sweep) at Quick scale on the parallel runner and
// records the wall-clock per sweep in BENCH_sweep.json, so the perf
// trajectory of the full evaluation is tracked over time.
func BenchmarkQuickFullSweep(b *testing.B) {
	start := time.Now()
	for i := 0; i < b.N; i++ {
		for _, e := range experiments.All() {
			tables, err := e.Run(experiments.Quick)
			if err != nil {
				b.Fatal(err)
			}
			sinkTable = tables
		}
	}
	secs := time.Since(start).Seconds() / float64(b.N)
	b.ReportMetric(secs, "s/sweep")
	out, err := json.MarshalIndent(map[string]any{
		"name":              "quick_full_sweep",
		"jobs":              experiments.Jobs(),
		"experiments":       len(experiments.All()),
		"seconds_per_sweep": secs,
	}, "", "  ")
	if err == nil {
		if werr := os.WriteFile("BENCH_sweep.json", append(out, '\n'), 0o644); werr != nil {
			b.Logf("BENCH_sweep.json not written: %v", werr)
		}
	}
}

// --- microbenchmarks of the hardware structures ---

func BenchmarkSynonymFilterLookup(b *testing.B) {
	f := synfilter.New()
	f.MarkSynonymRange(0x7000_0000_0000, 1<<20)
	rng := rand.New(rand.NewSource(1))
	vas := make([]addr.VA, 4096)
	for i := range vas {
		vas[i] = addr.VA(rng.Uint64() % (1 << addr.VABits))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.IsCandidate(vas[i%len(vas)])
	}
}

func BenchmarkTLBLookup(b *testing.B) {
	t := tlb.New(tlb.Config{Name: "b", Entries: 1024, Ways: 8, Latency: 7})
	asid := addr.MakeASID(0, 1)
	for vpn := uint64(0); vpn < 1024; vpn++ {
		t.Insert(tlb.Entry{ASID: asid, VPN: vpn, PFN: vpn})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(asid, uint64(i)%2048)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Config{Name: "b", SizeBytes: 2 << 20, Ways: 16, HitLatency: 27})
	asid := addr.MakeASID(0, 1)
	names := make([]addr.Name, 8192)
	for i := range names {
		names[i] = addr.VirtName(asid, addr.VA(i*64))
		c.Fill(names[i], cache.Exclusive, addr.PermRW)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(names[i%len(names)])
	}
}

func BenchmarkIndexTreeLookup(b *testing.B) {
	alloc := mem.NewAllocator(1 << 30)
	mgr := segment.NewManager(segment.NewNodeArena(alloc))
	asid := addr.MakeASID(0, 1)
	entries := make([]segment.TreeEntry, 2048)
	for i := range entries {
		entries[i] = segment.TreeEntry{
			Key:   segment.MakeKey(asid, addr.VA(i)<<21),
			Value: segment.ID(i),
		}
	}
	mgr.Tree.Build(entries)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.Tree.Lookup(asid, addr.VA(rng.Uint64()%(2048<<21)))
	}
}

func BenchmarkSegmentTranslate(b *testing.B) {
	alloc := mem.NewAllocator(1 << 32)
	mgr := segment.NewManager(segment.NewNodeArena(alloc))
	ic := segment.NewIndexCache(32 << 10)
	mgr.OnRebuild = ic.Flush
	asid := addr.MakeASID(0, 1)
	for i := 0; i < 512; i++ {
		pa, _ := alloc.AllocContiguous(256)
		if _, err := mgr.Allocate(asid, addr.VA(i)<<21, 256*addr.PageSize, pa, addr.PermRW); err != nil {
			b.Fatal(err)
		}
	}
	tr := segment.NewTranslator(segment.DefaultTranslatorConfig(),
		segment.NewSegCache(segment.SegCacheEntries), ic, mgr)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Translate(asid, addr.VA(rng.Uint64()%(512<<21)))
	}
}

func BenchmarkPageWalk(b *testing.B) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	p, err := k.NewProcess()
	if err != nil {
		b.Fatal(err)
	}
	va, err := p.Mmap(64<<20, addr.PermRW, osmodel.MmapOpts{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PT.WalkPath(va + addr.VA(uint64(i)%(64<<20)))
	}
}

func BenchmarkHybridMMUAccess(b *testing.B) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
	m := core.NewHybridMMU(core.DefaultHybridConfig(1), k)
	g, err := workload.New(workload.Specs["gups"], k, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := g.Next()
		if !in.IsMem {
			continue
		}
		kind := cache.Read
		if in.IsStore {
			kind = cache.Write
		}
		m.Access(core.Request{Kind: kind, VA: in.VA, Proc: g.Proc})
	}
}

func BenchmarkEndToEndSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := hybridvc.New(hybridvc.Config{Org: hybridvc.HybridManySegSC})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.LoadWorkload("omnetpp"); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(50_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSerialParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationSerialParallel(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}
