package pipeline

import (
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/energy"
)

// Verdict is a FrontEnd's routing decision for one reference.
type Verdict uint8

const (
	// Done means the front end completed the access itself (an
	// unrecoverable fault dead-end, or a fault-and-retry that already
	// folded the retried access into the result).
	Done Verdict = iota
	// Physical sends the access through the cache stage under its
	// physical (machine) address.
	Physical
	// Virtual sends the access through the cache stage under ASID+VA,
	// deferring translation to the Backend on an LLC miss.
	Virtual
)

// Decision carries a Verdict and the address/permission it resolved.
type Decision struct {
	Verdict Verdict
	PA      addr.PA
	Perm    addr.Perm
}

// DoneNow reports the access as already completed by the front end.
func DoneNow() Decision { return Decision{Verdict: Done} }

// GoPhysical routes the access physically at pa.
func GoPhysical(pa addr.PA, perm addr.Perm) Decision {
	return Decision{Verdict: Physical, PA: pa, Perm: perm}
}

// GoVirtual routes the access virtually; perm is recorded on cache fills.
func GoVirtual(perm addr.Perm) Decision {
	return Decision{Verdict: Virtual, Perm: perm}
}

// FrontEnd is the pre-L1 stage: synonym filtering, TLB lookups, range or
// direct segments, permission checks and the faults they raise. Route
// accumulates front-end latency/faults into res and decides how (or
// whether) the cache stage runs.
type FrontEnd interface {
	Route(req *Request, res *Result) Decision
}

// CacheStage replaces the default full-hierarchy cache access for
// organizations whose hierarchy is not uniformly addressed (OVC's
// virtual-L1/physical-outer split). Physical completes a physically
// routed access; Virtual completes a virtually routed one and returns the
// hierarchy outcome for the Backend.
type CacheStage interface {
	Physical(req *Request, pa addr.PA, perm addr.Perm, res *Result)
	Virtual(req *Request, perm addr.Perm, res *Result) cache.AccessResult
}

// Backend is the post-LLC stage of virtually routed accesses: delayed
// translation on the miss, DRAM, and writeback translation.
type Backend interface {
	Finish(req *Request, res *Result, hres *cache.AccessResult)
}

// Engine executes a declaratively composed organization: it owns the
// shared substrate (Base) and runs FrontEnd -> cache stage -> Backend for
// every reference. Organizations embed *Engine and so inherit Access,
// AccessBatch, Energy, Hierarchy and the Base plumbing; a complete
// MemSystem is the engine plus a Name method and the stage hooks.
type Engine struct {
	*Base
	front FrontEnd
	cache CacheStage // nil: the standard full hierarchy
	back  Backend    // nil: no post-LLC stage

	// wbs snapshots a batched access's writebacks so backend stages can
	// walk them while nested accesses (page walks) reuse the hierarchy's
	// scratch buffer.
	wbs []addr.Name
	// hres is the reusable hierarchy outcome handed to the Backend. A
	// local would escape through the interface call and cost one heap
	// allocation per virtually routed access. Reuse is safe: re-entrant
	// accesses (fault retries) finish before the outcome is stored.
	hres cache.AccessResult
}

// NewEngine composes an organization. cacheStage and back may be nil.
func NewEngine(base *Base, front FrontEnd, cacheStage CacheStage, back Backend) *Engine {
	return &Engine{Base: base, front: front, cache: cacheStage, back: back}
}

// Energy implements MemSystem for every organization.
func (e *Engine) Energy() *energy.Accumulator { return e.Acc }

// Hierarchy implements MemSystem for every organization.
func (e *Engine) Hierarchy() *cache.Hierarchy { return e.Hier }

// Access performs one reference through the stage pipeline.
func (e *Engine) Access(req Request) Result {
	var res Result
	e.access(&req, &res)
	return res
}

// AccessBatch performs len(reqs) references in order, writing outcome i
// into res[i]. It is the allocation-free hot path: both slices are caller
// provided (and reused across calls), and the hierarchy, translator and
// writeback plumbing run on engine-owned scratch buffers. Results are
// identical to len(reqs) scalar Access calls. It panics when res is
// shorter than reqs.
func (e *Engine) AccessBatch(reqs []Request, res []Result) {
	if len(res) < len(reqs) {
		panic("pipeline: AccessBatch result slice shorter than request slice")
	}
	prev := e.scratchMode
	e.scratchMode = true
	for i := range reqs {
		res[i] = Result{}
		e.access(&reqs[i], &res[i])
	}
	e.scratchMode = prev
}

// Retry re-executes the request after a fault repaired the mapping and
// folds the retried outcome into res. res.Fault stays set: the original
// reference did fault, whatever the retry then did. The retried access
// re-enters the pipeline, so it emits its own Route/Cache events; the
// Retry event lets observers reconcile event counts with the number of
// references the driver issued.
func (e *Engine) Retry(req *Request, res *Result) {
	if p := e.probe; p != nil {
		p.Retry(RetryEvent{Core: req.Core, Kind: req.Kind, VA: req.VA})
	}
	r2 := e.Access(*req)
	res.Latency += r2.Latency
	res.LLCMiss = r2.LLCMiss
	res.HitLevel = r2.HitLevel
}

// access runs the three stages for one reference. Probe events fire from
// the stable points of the flow: Route after the front end decided, Cache
// after the hierarchy (and, for virtual routes, the backend) completed —
// so the CacheEvent carries the reference's final HitLevel/LLCMiss on the
// unified scale regardless of which cache stage ran.
func (e *Engine) access(req *Request, res *Result) {
	d := e.front.Route(req, res)
	if p := e.probe; p != nil {
		p.Route(RouteEvent{Core: req.Core, Kind: req.Kind, VA: req.VA, Verdict: d.Verdict})
	}
	switch d.Verdict {
	case Physical:
		if e.cache != nil {
			e.cache.Physical(req, d.PA, d.Perm, res)
		} else {
			lat, hres := e.PhysAccess(req.Core, req.Kind, d.PA, d.Perm)
			res.Latency += lat
			res.LLCMiss = hres.LLCMiss
			res.HitLevel = hres.HitLevel
		}
		if p := e.probe; p != nil {
			p.Cache(CacheEvent{Core: req.Core, Kind: req.Kind,
				HitLevel: res.HitLevel, LLCMiss: res.LLCMiss})
		}
	case Virtual:
		if e.cache != nil {
			e.hres = e.cache.Virtual(req, d.Perm, res)
		} else {
			e.hres = e.hierAccess(req.Core, req.Kind, addr.VirtName(req.Proc.ASID, req.VA), d.Perm)
			if e.scratchMode {
				// Snapshot the writebacks: the backend may issue nested
				// hierarchy accesses (walks) that reuse the scratch buffer
				// backing hres.Writebacks.
				e.wbs = append(e.wbs[:0], e.hres.Writebacks...)
				e.hres.Writebacks = e.wbs
			}
			res.Latency += e.hres.Latency
			res.HitLevel = e.hres.HitLevel
		}
		if e.back != nil {
			e.back.Finish(req, res, &e.hres)
		}
		if p := e.probe; p != nil {
			p.Cache(CacheEvent{Core: req.Core, Kind: req.Kind, Virtual: true,
				HitLevel: res.HitLevel, LLCMiss: res.LLCMiss})
		}
	}
}
