// Package stats provides the small set of statistics primitives shared by
// the simulator components: hit/miss counters, ratios, histograms, and a
// registry for rendering experiment tables.
package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Counter counts events.
type Counter uint64

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { *c++ }

// Value returns the current count.
func (c Counter) Value() uint64 { return uint64(c) }

// HitMiss tracks accesses that either hit or miss a structure.
type HitMiss struct {
	Hits   Counter
	Misses Counter
}

// Hit records a hit.
func (h *HitMiss) Hit() { h.Hits.Inc() }

// Miss records a miss.
func (h *HitMiss) Miss() { h.Misses.Inc() }

// Record records a hit when hit is true and a miss otherwise.
func (h *HitMiss) Record(hit bool) {
	if hit {
		h.Hit()
	} else {
		h.Miss()
	}
}

// Accesses returns hits + misses.
func (h HitMiss) Accesses() uint64 { return h.Hits.Value() + h.Misses.Value() }

// HitRate returns hits/accesses, or 0 for no accesses.
func (h HitMiss) HitRate() float64 {
	return Ratio(h.Hits.Value(), h.Accesses())
}

// MissRate returns misses/accesses, or 0 for no accesses.
func (h HitMiss) MissRate() float64 {
	return Ratio(h.Misses.Value(), h.Accesses())
}

// Add accumulates another HitMiss into h.
func (h *HitMiss) AddAll(other HitMiss) {
	h.Hits.Add(other.Hits.Value())
	h.Misses.Add(other.Misses.Value())
}

func (h HitMiss) String() string {
	return fmt.Sprintf("hits=%d misses=%d (%.2f%% hit)",
		h.Hits.Value(), h.Misses.Value(), 100*h.HitRate())
}

// Ratio returns num/den as a float, and 0 when den is 0.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// PerKilo returns events per thousand units (e.g. misses per kilo
// instruction, the paper's MPKI metric). It returns 0 when units is 0.
func PerKilo(events, units uint64) float64 {
	if units == 0 {
		return 0
	}
	return 1000 * float64(events) / float64(units)
}

// Percent formats a fraction in [0,1] as a percentage string.
func Percent(frac float64) string { return fmt.Sprintf("%.2f%%", 100*frac) }

// Histogram accumulates integer samples into explicit buckets.
type Histogram struct {
	// bounds[i] is the inclusive upper bound of bucket i; a final overflow
	// bucket collects everything above the last bound.
	bounds []uint64
	counts []uint64
	total  uint64
	sum    uint64
	max    uint64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. It panics on empty or unsorted bounds: histogram shapes are fixed
// at construction by the experiment definitions.
func NewHistogram(bounds ...uint64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of observed samples, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest observed sample, or 0 if empty.
func (h *Histogram) Max() uint64 { return h.max }

// Sum returns the sum of all observed samples (Prometheus histogram
// exposition needs the raw sum alongside the bucket counts).
func (h *Histogram) Sum() uint64 { return h.sum }

// Bucket returns the count of bucket i (the final bucket is overflow).
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// NumBuckets returns the bucket count including the overflow bucket.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) using
// bucket boundaries; the overflow bucket reports the observed max.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// HistogramSnapshot is a Histogram frozen for serialization: bucket
// bounds and counts plus the summary statistics experiments report.
type HistogramSnapshot struct {
	// Bounds are the inclusive per-bucket upper bounds; Counts has one
	// extra final element for the overflow bucket.
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Total  uint64   `json:"total"`
	Sum    uint64   `json:"sum"`
	Mean   float64  `json:"mean"`
	Max    uint64   `json:"max"`
	P50    uint64   `json:"p50"`
	P90    uint64   `json:"p90"`
	P99    uint64   `json:"p99"`
}

// Snapshot freezes the histogram's current state. The returned slices
// are copies; the histogram may keep observing.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Total:  h.total,
		Sum:    h.sum,
		Mean:   h.Mean(),
		Max:    h.max,
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P99:    h.Quantile(0.99),
	}
}

// MarshalJSON serializes the histogram as its snapshot.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(h.Snapshot())
}

// CSVHeader returns the column names WriteCSVRow emits: one "le_<bound>"
// column per bucket, "overflow", then the summary columns.
func (s HistogramSnapshot) CSVHeader() []string {
	cols := make([]string, 0, len(s.Counts)+5)
	for _, b := range s.Bounds {
		cols = append(cols, fmt.Sprintf("le_%d", b))
	}
	cols = append(cols, "overflow", "total", "mean", "max", "p50", "p90", "p99")
	return cols
}

// CSVRow returns the snapshot's values aligned with CSVHeader.
func (s HistogramSnapshot) CSVRow() []string {
	row := make([]string, 0, len(s.Counts)+5)
	for _, c := range s.Counts {
		row = append(row, fmt.Sprintf("%d", c))
	}
	row = append(row,
		fmt.Sprintf("%d", s.Total),
		fmt.Sprintf("%.4f", s.Mean),
		fmt.Sprintf("%d", s.Max),
		fmt.Sprintf("%d", s.P50),
		fmt.Sprintf("%d", s.P90),
		fmt.Sprintf("%d", s.P99))
	return row
}

// WriteCSV writes the snapshot as a two-line CSV (header + row).
func (s HistogramSnapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(s.CSVHeader()); err != nil {
		return err
	}
	if err := cw.Write(s.CSVRow()); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Reset clears all observations, keeping the bucket shape.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max = 0, 0, 0
}

// Mean accumulates a running mean over float64 samples.
type Mean struct {
	n   uint64
	sum float64
}

// Observe adds a sample.
func (m *Mean) Observe(v float64) { m.n++; m.sum += v }

// Value returns the mean of observed samples, or 0 if empty.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// N returns the number of samples.
func (m *Mean) N() uint64 { return m.n }

// Table renders experiment results as an aligned text table, matching the
// row/column shape the paper reports.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells. It panics
// when given more cells than the table has columns — like histogram
// bounds, a table's shape is fixed at construction by the experiment
// definition, and dropping surplus cells would silently corrupt results.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("stats: AddRow got %d cells for %d columns in table %q",
			len(cells), len(t.Columns), t.Title))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteCSV writes the table as CSV (header row, then data rows) for
// downstream plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
