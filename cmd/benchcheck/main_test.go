package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeResults(t *testing.T, name string, rows string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	content := `{"organizations":[` + rows + `]}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckPassesWithinThreshold(t *testing.T) {
	base := writeResults(t, "base.json",
		`{"org":"baseline","batch_refs_per_sec":1000000},
		 {"org":"hybrid-manyseg+sc","batch_refs_per_sec":500000}`)
	fresh := writeResults(t, "fresh.json",
		`{"org":"baseline","batch_refs_per_sec":950000},
		 {"org":"hybrid-manyseg+sc","batch_refs_per_sec":460000}`)
	regs, err := check(base, fresh, 0.10, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("want no regressions, got %v", regs)
	}
}

func TestCheckFlagsRegression(t *testing.T) {
	base := writeResults(t, "base.json",
		`{"org":"baseline","batch_refs_per_sec":1000000}`)
	fresh := writeResults(t, "fresh.json",
		`{"org":"baseline","batch_refs_per_sec":850000}`)
	regs, err := check(base, fresh, 0.10, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "baseline") {
		t.Errorf("want one baseline regression, got %v", regs)
	}
}

func TestCheckFlagsMissingOrg(t *testing.T) {
	base := writeResults(t, "base.json",
		`{"org":"baseline","batch_refs_per_sec":1000000},
		 {"org":"rmm","batch_refs_per_sec":800000}`)
	fresh := writeResults(t, "fresh.json",
		`{"org":"baseline","batch_refs_per_sec":1000000}`)
	regs, err := check(base, fresh, 0.10, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "rmm") {
		t.Errorf("want rmm reported missing, got %v", regs)
	}
}

func TestCheckIgnoresNewOrgs(t *testing.T) {
	base := writeResults(t, "base.json",
		`{"org":"baseline","batch_refs_per_sec":1000000}`)
	fresh := writeResults(t, "fresh.json",
		`{"org":"baseline","batch_refs_per_sec":1000000},
		 {"org":"brand-new","batch_refs_per_sec":10}`)
	regs, err := check(base, fresh, 0.10, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("new orgs must not fail the gate, got %v", regs)
	}
}

func TestCheckFlagsSpeedupBelowFloor(t *testing.T) {
	// The virt-2d 0.96x scenario: throughput within tolerance, but the
	// batched path is slower than scalar. The default 1.0 floor must
	// catch it even though the refs/sec comparison passes.
	base := writeResults(t, "base.json",
		`{"org":"baseline","batch_refs_per_sec":1000000,"speedup":1.20},
		 {"org":"virt-2d","batch_refs_per_sec":800000,"speedup":1.02}`)
	fresh := writeResults(t, "fresh.json",
		`{"org":"baseline","batch_refs_per_sec":1000000,"speedup":1.20},
		 {"org":"virt-2d","batch_refs_per_sec":790000,"speedup":0.96}`)
	regs, err := check(base, fresh, 0.10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "virt-2d") || !strings.Contains(regs[0], "0.96") {
		t.Errorf("want one virt-2d speedup regression, got %v", regs)
	}
}

func TestCheckSpeedupFloorAppliesToNewOrgs(t *testing.T) {
	// New design points skip the baseline throughput comparison but not
	// the speedup floor: a brand-new org must still beat scalar.
	base := writeResults(t, "base.json",
		`{"org":"baseline","batch_refs_per_sec":1000000,"speedup":1.20}`)
	fresh := writeResults(t, "fresh.json",
		`{"org":"baseline","batch_refs_per_sec":1000000,"speedup":1.20},
		 {"org":"brand-new","batch_refs_per_sec":900000,"speedup":0.50}`)
	regs, err := check(base, fresh, 0.10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "brand-new") {
		t.Errorf("want one brand-new speedup regression, got %v", regs)
	}
}

func TestCheckSpeedupFloorCoversPayloadOrgs(t *testing.T) {
	// The typed-payload organizations (victima, rlt-vc) land as fresh rows
	// before the committed baseline carries them. They skip the throughput
	// comparison like any new design point, but each must independently
	// clear the batch/scalar floor — one failing row must be reported even
	// when the other passes.
	base := writeResults(t, "base.json",
		`{"org":"baseline","batch_refs_per_sec":1000000,"speedup":1.20}`)
	fresh := writeResults(t, "fresh.json",
		`{"org":"baseline","batch_refs_per_sec":1000000,"speedup":1.20},
		 {"org":"victima","batch_refs_per_sec":700000,"speedup":1.15},
		 {"org":"rlt-vc","batch_refs_per_sec":650000,"speedup":0.93}`)
	regs, err := check(base, fresh, 0.10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "rlt-vc") || !strings.Contains(regs[0], "0.93") {
		t.Errorf("want exactly the rlt-vc speedup regression, got %v", regs)
	}
	for _, r := range regs {
		if strings.Contains(r, "victima") {
			t.Errorf("victima cleared the floor but was flagged: %v", r)
		}
	}
}

func TestCheckNegativeFloorDisablesSpeedupGate(t *testing.T) {
	base := writeResults(t, "base.json",
		`{"org":"baseline","batch_refs_per_sec":1000000}`)
	fresh := writeResults(t, "fresh.json",
		`{"org":"baseline","batch_refs_per_sec":1000000}`)
	// Rows without a speedup column decode as 0; a negative floor must
	// keep legacy files passing.
	regs, err := check(base, fresh, 0.10, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("disabled floor still flagged: %v", regs)
	}
}

func TestCheckRejectsEmptyFile(t *testing.T) {
	base := writeResults(t, "base.json", ``)
	fresh := writeResults(t, "fresh.json",
		`{"org":"baseline","batch_refs_per_sec":1}`)
	if _, err := check(base, fresh, 0.10, -1); err == nil {
		t.Error("want error for results file with no rows")
	}
}

func TestPickToleranceValidation(t *testing.T) {
	cases := []struct {
		name      string
		tolerance float64
		threshold float64
		set       map[string]bool
		want      float64
		wantErr   bool
	}{
		{"default", 0.10, 0.10, map[string]bool{}, 0.10, false},
		{"explicit tolerance", 0.25, 0.10, map[string]bool{"tolerance": true}, 0.25, false},
		{"deprecated threshold honoured", 0.10, 0.05, map[string]bool{"threshold": true}, 0.05, false},
		{"both agree", 0.2, 0.2, map[string]bool{"tolerance": true, "threshold": true}, 0.2, false},
		{"both disagree", 0.2, 0.3, map[string]bool{"tolerance": true, "threshold": true}, 0, true},
		{"negative", -0.1, 0.1, map[string]bool{"tolerance": true}, 0, true},
		{"one", 1.0, 0.1, map[string]bool{"tolerance": true}, 0, true},
		{"above one", 5, 0.1, map[string]bool{"tolerance": true}, 0, true},
		{"zero is allowed", 0, 0.1, map[string]bool{"tolerance": true}, 0, false},
	}
	for _, tc := range cases {
		got, err := pickTolerance(tc.tolerance, tc.threshold, tc.set)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", tc.name, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("%s: tolerance = %v, want %v", tc.name, got, tc.want)
		}
	}
}
