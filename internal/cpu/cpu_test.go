package cpu

import "testing"

func TestALUThroughputBoundedByCommitWidth(t *testing.T) {
	c := New(DefaultConfig())
	const n = 100000
	for i := 0; i < n; i++ {
		c.Retire(1, false, false)
	}
	ipc := c.IPC()
	if ipc > float64(c.Config().CommitWidth)+0.01 {
		t.Errorf("IPC %.2f exceeds commit width", ipc)
	}
	if ipc < float64(c.Config().CommitWidth)-0.1 {
		t.Errorf("IPC %.2f well below commit width for pure ALU", ipc)
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	// Independent 200-cycle loads must overlap within the ROB window:
	// throughput should approach one load per few cycles, far better than
	// 200 cycles each.
	c := New(DefaultConfig())
	const n = 10000
	for i := 0; i < n; i++ {
		c.Retire(200, false, true)
	}
	perLoad := float64(c.Cycles()) / n
	if perLoad > 20 {
		t.Errorf("independent loads cost %.1f cycles each; no MLP", perLoad)
	}
}

func TestDependentMissesSerialize(t *testing.T) {
	// Pointer chasing: each load depends on the previous one, so the
	// total must be ~n*latency.
	c := New(DefaultConfig())
	const n, lat = 1000, 200
	for i := 0; i < n; i++ {
		c.Retire(lat, true, true)
	}
	if c.Cycles() < n*lat {
		t.Errorf("dependent loads took %d cycles, want >= %d", c.Cycles(), n*lat)
	}
	if c.Cycles() > n*lat+n*5 {
		t.Errorf("dependent loads took %d cycles, way over serial bound", c.Cycles())
	}
}

func TestLatencySensitivity(t *testing.T) {
	// Same instruction mix with slower memory must take longer — the
	// property every experiment relies on.
	run := func(lat uint64) uint64 {
		c := New(DefaultConfig())
		for i := 0; i < 5000; i++ {
			if i%3 == 0 {
				c.Retire(lat, i%6 == 0, true)
			} else {
				c.Retire(1, false, false)
			}
		}
		return c.Cycles()
	}
	fast, slow := run(10), run(300)
	if slow <= fast {
		t.Errorf("300-cycle memory (%d cycles) not slower than 10-cycle (%d)", slow, fast)
	}
}

func TestROBLimitsOverlap(t *testing.T) {
	// A tiny ROB must expose memory latency that a large ROB hides.
	run := func(rob int) uint64 {
		cfg := DefaultConfig()
		cfg.ROBSize = rob
		if cfg.LSQSize > rob {
			cfg.LSQSize = rob
		}
		c := New(cfg)
		for i := 0; i < 5000; i++ {
			c.Retire(200, false, true)
		}
		return c.Cycles()
	}
	small, large := run(4), run(256)
	if small <= large {
		t.Errorf("ROB=4 (%d cycles) not slower than ROB=256 (%d)", small, large)
	}
	if float64(small) < 2*float64(large) {
		t.Errorf("ROB effect too weak: %d vs %d", small, large)
	}
}

func TestLSQLimitsMemoryOverlap(t *testing.T) {
	run := func(lsq int) uint64 {
		cfg := DefaultConfig()
		cfg.LSQSize = lsq
		cfg.ROBSize = 512
		c := New(cfg)
		for i := 0; i < 5000; i++ {
			c.Retire(200, false, true)
		}
		return c.Cycles()
	}
	small, large := run(2), run(256)
	if small <= large {
		t.Errorf("LSQ=2 (%d) not slower than LSQ=256 (%d)", small, large)
	}
}

func TestCommitMonotonic(t *testing.T) {
	c := New(DefaultConfig())
	var prev uint64
	for i := 0; i < 1000; i++ {
		lat := uint64(1)
		if i%7 == 0 {
			lat = 50
		}
		commit := c.Retire(lat, i%3 == 0, i%2 == 0)
		if commit < prev {
			t.Fatalf("commit went backwards: %d after %d", commit, prev)
		}
		prev = commit
	}
	if c.Retired() != 1000 {
		t.Errorf("retired = %d", c.Retired())
	}
	if c.Cycles() != prev {
		t.Errorf("Cycles() = %d, last commit = %d", c.Cycles(), prev)
	}
}

func TestMemStallAttribution(t *testing.T) {
	alu := New(DefaultConfig())
	for i := 0; i < 1000; i++ {
		alu.Retire(1, false, false)
	}
	if alu.MemStallCycles() != 0 {
		t.Errorf("ALU-only core reports %d memory stall cycles", alu.MemStallCycles())
	}
	chase := New(DefaultConfig())
	for i := 0; i < 1000; i++ {
		chase.Retire(200, true, true)
	}
	frac := float64(chase.MemStallCycles()) / float64(chase.Cycles())
	if frac < 0.9 {
		t.Errorf("pointer chase memory stall fraction %.2f, want ~1", frac)
	}
}

func TestIPCEmptyCore(t *testing.T) {
	c := New(DefaultConfig())
	if c.IPC() != 0 {
		t.Error("empty core has nonzero IPC")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config did not panic")
		}
	}()
	New(Config{ROBSize: 0, LSQSize: 1, IssueWidth: 1, CommitWidth: 1})
}

func TestSlotClockPacing(t *testing.T) {
	s := slotClock{width: 2}
	got := []uint64{s.next(0), s.next(0), s.next(0), s.next(0), s.next(0)}
	want := []uint64{0, 0, 1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	// Jumping forward resets the per-cycle count.
	if c := s.next(10); c != 10 {
		t.Errorf("jump slot = %d", c)
	}
	if c := s.next(5); c != 10 {
		t.Errorf("past-min slot = %d, want 10", c)
	}
}

func TestMispredictStallsDispatch(t *testing.T) {
	// A stream with mispredicts must run at lower IPC than without.
	clean := New(DefaultConfig())
	for i := 0; i < 10000; i++ {
		clean.Retire(1, false, false)
	}
	dirty := New(DefaultConfig())
	for i := 0; i < 10000; i++ {
		if i%100 == 0 {
			dirty.Mispredict()
		} else {
			dirty.Retire(1, false, false)
		}
	}
	if dirty.Cycles() <= clean.Cycles() {
		t.Errorf("mispredicts free: %d vs %d cycles", dirty.Cycles(), clean.Cycles())
	}
	// Each mispredict costs roughly the refill penalty.
	extra := dirty.Cycles() - clean.Cycles()
	perMiss := float64(extra) / 100
	if perMiss < float64(MispredictPenalty)/2 || perMiss > float64(MispredictPenalty)*2 {
		t.Errorf("per-mispredict cost %.1f, want ~%d", perMiss, MispredictPenalty)
	}
}
