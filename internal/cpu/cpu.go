// Package cpu provides the OoO-lite timing model that stands in for the
// paper's MARSSx86 out-of-order core (Table IV: 128-entry ROB, 80-entry
// LSQ, 5-wide issue, 4-wide commit). The model dispatches instructions at
// up to IssueWidth per cycle, bounds in-flight work by ROB and LSQ
// occupancy, lets independent memory operations overlap (memory-level
// parallelism), serializes dependent operations, and commits in order at
// up to CommitWidth per cycle. It preserves the relative performance
// orderings the paper reports while remaining deterministic and fast.
package cpu

import "fmt"

// Config sets the core's structural parameters.
type Config struct {
	ROBSize     int
	LSQSize     int
	IssueWidth  int
	CommitWidth int
}

// DefaultConfig returns the paper's Table IV core.
func DefaultConfig() Config {
	return Config{ROBSize: 128, LSQSize: 80, IssueWidth: 5, CommitWidth: 4}
}

// slotClock paces events at a bounded number per cycle.
type slotClock struct {
	width int
	cycle uint64
	used  int
}

// next returns the earliest cycle >= minCycle with a free slot and
// consumes it.
func (s *slotClock) next(minCycle uint64) uint64 {
	if minCycle > s.cycle {
		s.cycle = minCycle
		s.used = 0
	}
	if s.used == s.width {
		s.cycle++
		s.used = 0
	}
	s.used++
	return s.cycle
}

// Core is one timing core.
type Core struct {
	cfg Config

	dispatch slotClock
	commit   slotClock

	// rob[i % ROBSize] holds the commit cycle of instruction i; dispatch
	// of instruction i must wait for instruction i-ROBSize to commit.
	rob []uint64
	// lsq is the analogous ring for memory operations.
	lsq     []uint64
	memOps  uint64
	retired uint64

	lastCommit   uint64
	lastComplete uint64 // completion cycle of the previous instruction

	// memStall accumulates cycles by which memory operations pushed the
	// commit point past the previous commit — an attribution of lost
	// cycles to the memory system.
	memStall uint64
}

// New creates a core; it panics on non-positive parameters (configurations
// are fixed per experiment).
func New(cfg Config) *Core {
	if cfg.ROBSize <= 0 || cfg.LSQSize <= 0 || cfg.IssueWidth <= 0 || cfg.CommitWidth <= 0 {
		panic(fmt.Sprintf("cpu: invalid config %+v", cfg))
	}
	return &Core{
		cfg:      cfg,
		dispatch: slotClock{width: cfg.IssueWidth},
		commit:   slotClock{width: cfg.CommitWidth},
		rob:      make([]uint64, cfg.ROBSize),
		lsq:      make([]uint64, cfg.LSQSize),
	}
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Now returns the core's notion of the current cycle: the dispatch clock,
// which is where memory requests are issued from.
func (c *Core) Now() uint64 { return c.dispatch.cycle }

// MispredictPenalty is the pipeline refill cost of a mispredicted branch
// (front-end redirect through rename, typical of a 14-19 stage pipeline).
const MispredictPenalty = 14

// Mispredict models a branch misprediction: dispatch stalls for the
// pipeline refill after the branch resolves.
func (c *Core) Mispredict() uint64 {
	commit := c.Retire(1, true, false)
	// Younger instructions cannot dispatch until the refill completes.
	if resume := commit + MispredictPenalty; resume > c.dispatch.cycle {
		c.dispatch.cycle = resume
		c.dispatch.used = 0
	}
	return commit
}

// Retire advances the core by one instruction.
//
// latency is the instruction's execution latency: 1 for simple ALU work,
// or the full memory latency for loads. dependsOnPrev serializes this
// instruction behind the previous one's completion (pointer chasing).
// isMem marks loads/stores, which additionally occupy an LSQ slot.
//
// It returns the instruction's commit cycle.
func (c *Core) Retire(latency uint64, dependsOnPrev, isMem bool) uint64 {
	// Dispatch: wait for a ROB slot (instruction i-ROBSize committed) and
	// an issue slot; memory operations also wait for an LSQ slot.
	minCycle := c.rob[c.retired%uint64(c.cfg.ROBSize)]
	if isMem {
		if prev := c.lsq[c.memOps%uint64(c.cfg.LSQSize)]; prev > minCycle {
			minCycle = prev
		}
	}
	disp := c.dispatch.next(minCycle)

	// Execute: dependent instructions wait for the previous completion.
	start := disp
	if dependsOnPrev && c.lastComplete > start {
		start = c.lastComplete
	}
	complete := start + latency
	c.lastComplete = complete

	// Commit: in order, bounded per cycle.
	minCommit := complete
	if c.lastCommit > minCommit {
		minCommit = c.lastCommit
	}
	commit := c.commit.next(minCommit)
	c.lastCommit = commit

	c.rob[c.retired%uint64(c.cfg.ROBSize)] = commit
	c.retired++
	if isMem {
		c.lsq[c.memOps%uint64(c.cfg.LSQSize)] = commit
		c.memOps++
		if latency > 1 && commit > c.lastCommitBeforeThis() {
			c.memStall += commit - c.lastCommitBeforeThis()
		}
	}
	return commit
}

// lastCommitBeforeThis returns the commit cycle preceding the instruction
// just retired (for stall attribution).
func (c *Core) lastCommitBeforeThis() uint64 {
	if c.retired < 2 {
		return 0
	}
	return c.rob[(c.retired-2)%uint64(c.cfg.ROBSize)]
}

// MemStallCycles estimates cycles by which long-latency memory operations
// delayed commit — a coarse memory-boundedness attribution.
func (c *Core) MemStallCycles() uint64 { return c.memStall }

// Cycles returns the total cycles elapsed (the last commit cycle).
func (c *Core) Cycles() uint64 { return c.lastCommit }

// Retired returns the number of instructions retired.
func (c *Core) Retired() uint64 { return c.retired }

// IPC returns retired instructions per cycle.
func (c *Core) IPC() float64 {
	if c.lastCommit == 0 {
		return 0
	}
	return float64(c.retired) / float64(c.lastCommit)
}
