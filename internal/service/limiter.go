package service

import (
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client (keyed by remote
// IP) may submit at rate jobs/second with bursts up to burst. A zero
// rate disables limiting. The implementation is self-contained — the
// module deliberately has no external dependencies.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	clients map[string]*bucket

	// now is injectable for tests.
	now func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxClients bounds the bucket map; past it, stale buckets (full ones,
// which behave identically to absent ones) are pruned.
const maxClients = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		clients: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow reports whether the client may proceed, consuming one token.
func (l *rateLimiter) allow(client string) bool {
	if l == nil || l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.clients[client]
	if !ok {
		if len(l.clients) >= maxClients {
			l.prune()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// prune drops buckets that have refilled to full — indistinguishable
// from a fresh client. Called with the mutex held.
func (l *rateLimiter) prune() {
	now := l.now()
	for key, b := range l.clients {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.clients, key)
		}
	}
}

// retryAfter estimates the seconds until the client has one token again
// (for the Retry-After header). At least 1.
func (l *rateLimiter) retryAfter() int {
	if l == nil || l.rate <= 0 {
		return 1
	}
	s := int(1 / l.rate)
	if s < 1 {
		s = 1
	}
	return s
}
