// Virtualization: two-dimensional translation is the costliest part of
// hardware-assisted virtual memory — a cold nested walk reads up to 24
// page table entries (gVA -> gPA -> MA). The paper's hybrid design defers
// the whole 2D translation past the LLC, where most of it never happens.
//
// This example runs the same guest workload on the virtualized baseline
// (2D walker + nested-TLB translation cache) and on the virtualized
// hybrid design, then demonstrates a hypervisor-induced synonym: two
// guest frames backed by one machine frame, detected by the host filter.
package main

import (
	"fmt"
	"log"

	"hybridvc"
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/osmodel"
)

func main() {
	const workload = "mcf"
	const insns = 150_000

	run := func(org hybridvc.Organization) uint64 {
		sys, err := hybridvc.New(hybridvc.Config{
			Org:        org,
			PhysBytes:  32 << 30,
			GuestBytes: 8 << 30,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadWorkload(workload); err != nil {
			log.Fatal(err)
		}
		report, err := sys.Run(insns)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" ", report)
		return report.Cycles
	}

	fmt.Printf("guest workload %q inside a VM, %d instructions\n\n", workload, insns)
	fmt.Println("2D-walk baseline (nested TLB translation cache):")
	base := run(hybridvc.Virt2D)
	fmt.Println("\nvirtualized hybrid (guest+host filters, delayed 2-step segments):")
	hyb := run(hybridvc.VirtHybrid)
	fmt.Printf("\nvirtualized speedup: %.2fx\n\n", float64(base)/float64(hyb))

	// Hypervisor-induced synonym demo: the hypervisor makes one machine
	// frame back two guest frames. The guest OS knows nothing about it —
	// the host filter (indexed by gVA) detects the synonym.
	sys, err := hybridvc.New(hybridvc.Config{
		Org: hybridvc.VirtHybrid, PhysBytes: 8 << 30, GuestBytes: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := sys.Kernel.NewProcess()
	if err != nil {
		log.Fatal(err)
	}
	gvaA, err := p.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	if err != nil {
		log.Fatal(err)
	}
	gvaB, err := p.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	if err != nil {
		log.Fatal(err)
	}
	sys.VM.TrackProcessRegion(p, gvaA, addr.PageSize)
	sys.VM.TrackProcessRegion(p, gvaB, addr.PageSize)
	pteA, _ := p.PT.Lookup(gvaA)
	pteB, _ := p.PT.Lookup(gvaB)
	if err := sys.Hypervisor.ShareGuestFrames(sys.VM, pteA.Frame, sys.VM, pteB.Frame); err != nil {
		log.Fatal(err)
	}

	mmu := sys.Mem.(*core.VirtHybridMMU)
	mmu.Access(core.Request{Kind: cache.Read, VA: gvaA, Proc: p})
	mmu.Access(core.Request{Kind: cache.Read, VA: gvaB, Proc: p})
	fmt.Println("hypervisor-induced sharing demo:")
	fmt.Printf("  guest filter flags gvaA: %v (guest OS unaware)\n", p.Filter.ProbeQuiet(gvaA))
	fmt.Printf("  host filter flags gvaA:  %v\n", sys.VM.HostFilter.ProbeQuiet(gvaA))
	fmt.Printf("  host filter flags gvaB:  %v\n", sys.VM.HostFilter.ProbeQuiet(gvaB))
	fmt.Printf("  synonym candidates seen by the MMU: %d (both accesses)\n",
		mmu.SynonymCandidates.Value())
}
