package pagetable

import (
	"testing"

	"hybridvc/internal/addr"
)

func FuzzPTEEncodeDecode(f *testing.F) {
	f.Add(uint64(0), uint8(0), false, false)
	f.Add(uint64(0x12345), uint8(2), true, false)
	f.Add(uint64(1)<<39, uint8(3), false, true)
	f.Fuzz(func(t *testing.T, frame uint64, perm uint8, shared, huge bool) {
		p := PTE{
			Present: true,
			Frame:   frame & (1<<40 - 1),
			Perm:    addr.Perm(perm & 3),
			Shared:  shared,
			Huge:    huge,
		}
		got := DecodePTE(p.Encode())
		if got != p {
			t.Fatalf("round trip: %+v -> %+v", p, got)
		}
	})
}

func FuzzMapLookupAgree(f *testing.F) {
	f.Add(uint64(0x1000), uint64(7))
	f.Add(uint64(0x7fff_ffff_f000), uint64(1<<20))
	f.Fuzz(func(t *testing.T, rawVA, frame uint64) {
		va := addr.VA(rawVA % (1 << addr.VABits)).PageAligned()
		frame &= 1<<28 - 1
		tbl := newTables(t)
		if err := tbl.Map(va, addr.FrameToPA(frame), addr.PermRW, false); err != nil {
			t.Fatal(err)
		}
		pte, ok := tbl.Lookup(va)
		if !ok || pte.Frame != frame {
			t.Fatalf("lookup after map: %+v ok=%v want frame %d", pte, ok, frame)
		}
		// The timed walk agrees with the functional lookup.
		path, leaf, ok := tbl.WalkPath(va)
		if !ok || leaf.Frame != frame || len(path) != Levels {
			t.Fatalf("walk disagrees: %+v ok=%v path=%d", leaf, ok, len(path))
		}
	})
}
