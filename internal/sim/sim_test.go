package sim

import (
	"strings"
	"testing"

	"hybridvc/internal/baseline"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/workload"
)

func smallHier(n int) cache.HierarchyConfig {
	cfg := cache.DefaultHierarchyConfig(n)
	cfg.LLC.SizeBytes = 256 << 10 // shrink so misses occur within short runs
	return cfg
}

func newHybridSim(t *testing.T, wl string, cores int) *Simulator {
	t.Helper()
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
	hcfg := core.DefaultHybridConfig(cores)
	hcfg.Hier = smallHier(cores)
	ms := core.NewHybridMMU(hcfg, k)
	gens, err := workload.NewGroup(workload.Specs[wl], k, 1)
	if err != nil {
		t.Fatal(err)
	}
	return New(DefaultConfig(), ms, gens)
}

func TestRunProducesSaneReport(t *testing.T) {
	s := newHybridSim(t, "stream", 1)
	r := s.Run(20000)
	if r.Instructions != 20000 {
		t.Errorf("instructions = %d", r.Instructions)
	}
	if r.Cycles == 0 || r.IPC <= 0 || r.IPC > 5 {
		t.Errorf("implausible report: %+v", r)
	}
	if r.TranslationEnergyPJ <= 0 {
		t.Error("no translation energy")
	}
	if r.Name != "hybrid-manyseg+sc" {
		t.Errorf("name = %q", r.Name)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := newHybridSim(t, "mcf", 1).Run(15000)
	b := newHybridSim(t, "mcf", 1).Run(15000)
	if a.Cycles != b.Cycles || a.DynamicEnergyPJ != b.DynamicEnergyPJ {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMultiProcessWorkloadTimeslices(t *testing.T) {
	// postgres has 4 processes; on 1 core they must timeslice.
	s := newHybridSim(t, "postgres", 1)
	s.Run(200000)
	if s.ContextSwitches.Value() < 3 {
		t.Errorf("context switches = %d", s.ContextSwitches.Value())
	}
}

func TestMultiCoreDistribution(t *testing.T) {
	s := newHybridSim(t, "postgres", 4)
	r := s.Run(10000)
	if len(r.PerCoreIPC) != 4 {
		t.Errorf("per-core IPCs = %d", len(r.PerCoreIPC))
	}
	if r.Instructions != 40000 {
		t.Errorf("instructions = %d", r.Instructions)
	}
	if s.ContextSwitches.Value() != 0 {
		t.Error("4 procs on 4 cores should not context switch")
	}
}

func TestPointerChaseSlowerThanStream(t *testing.T) {
	// A basic sanity ordering: dependent random access must run at far
	// lower IPC than streaming.
	chase := newHybridSim(t, "mcf", 1).Run(20000)
	stream := newHybridSim(t, "stream", 1).Run(20000)
	if chase.IPC >= stream.IPC {
		t.Errorf("mcf IPC %.3f >= stream IPC %.3f", chase.IPC, stream.IPC)
	}
}

func TestHybridBeatsBaselineOnTLBThrashingWorkload(t *testing.T) {
	// The paper's headline direction: for big-memory workloads the hybrid
	// design outperforms the conventional baseline because LLC hits skip
	// translation entirely and delayed translation is scalable.
	run := func(mk func(k *osmodel.Kernel) core.MemSystem) Report {
		k := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
		ms := mk(k)
		gens, err := workload.NewGroup(workload.Specs["gups"], k, 1)
		if err != nil {
			t.Fatal(err)
		}
		return New(DefaultConfig(), ms, gens).Run(30000)
	}
	hybrid := run(func(k *osmodel.Kernel) core.MemSystem {
		cfg := core.DefaultHybridConfig(1)
		cfg.Hier = smallHier(1)
		return core.NewHybridMMU(cfg, k)
	})
	base := run(func(k *osmodel.Kernel) core.MemSystem {
		cfg := baseline.DefaultConfig(1)
		cfg.Hier = smallHier(1)
		return baseline.NewConventional(cfg, k)
	})
	if hybrid.Cycles >= base.Cycles {
		t.Errorf("hybrid (%d cycles) not faster than baseline (%d) on gups",
			hybrid.Cycles, base.Cycles)
	}
}

func TestHybridSavesTranslationEnergy(t *testing.T) {
	// The ~60% translation-energy claim: on a workload with locality the
	// baseline still pays a TLB probe on every reference, while the
	// hybrid pays a cheap filter probe and touches the delayed structures
	// only on LLC misses (mostly segment cache hits).
	spec := workload.Spec{
		Name: "server-mix", Regions: []uint64{64 << 20}, TouchFrac: 1.0,
		MemRatio: 0.4, StoreFrac: 0.3, Pattern: workload.Zipf,
		HotFrac: 0.008, DepFrac: 0.2,
	}
	run := func(mk func(k *osmodel.Kernel) core.MemSystem) Report {
		k := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
		ms := mk(k)
		gens, err := workload.NewGroup(spec, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		return New(DefaultConfig(), ms, gens).Run(100000)
	}
	hybrid := run(func(k *osmodel.Kernel) core.MemSystem {
		return core.NewHybridMMU(core.DefaultHybridConfig(1), k)
	})
	base := run(func(k *osmodel.Kernel) core.MemSystem {
		return baseline.NewConventional(baseline.DefaultConfig(1), k)
	})
	saving := 1 - hybrid.TranslationEnergyPJ/base.TranslationEnergyPJ
	if saving < 0.5 {
		t.Errorf("translation energy saving %.0f%% (hybrid %.0f vs base %.0f pJ)",
			100*saving, hybrid.TranslationEnergyPJ, base.TranslationEnergyPJ)
	}
}

func TestNewPanicsWithoutGenerators(t *testing.T) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 28})
	ms := baseline.NewIdeal(baseline.DefaultConfig(1), k)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(DefaultConfig(), ms, nil)
}

// TestStopFlushesPartialReport pins the interruption contract: Stop()
// quiesces the simulator at a chunk boundary, and the resulting report
// is a valid — just shorter — run marked Interrupted.
func TestStopFlushesPartialReport(t *testing.T) {
	s := newHybridSim(t, "stream", 1)
	s.Stop() // request a stop before Run: quiesce after the first chunk
	r := s.Run(1_000_000)
	if !s.Interrupted() || !r.Interrupted {
		t.Fatalf("Interrupted() = %v, report.Interrupted = %v after Stop",
			s.Interrupted(), r.Interrupted)
	}
	if r.Instructions == 0 || r.Instructions >= 1_000_000 {
		t.Errorf("partial run retired %d instructions, want (0, 1000000)", r.Instructions)
	}
	if r.Cycles == 0 || r.IPC <= 0 {
		t.Errorf("partial report is not valid: %+v", r)
	}
	if !strings.Contains(r.JSON(), `"interrupted": true`) {
		t.Error("JSON report does not carry the interrupted flag")
	}
}

// TestCompletedReportOmitsInterrupted keeps existing JSON outputs
// byte-stable: a run that finishes normally must not gain the field.
func TestCompletedReportOmitsInterrupted(t *testing.T) {
	r := newHybridSim(t, "stream", 1).Run(5000)
	if r.Interrupted {
		t.Fatal("completed run marked interrupted")
	}
	if strings.Contains(r.JSON(), "interrupted") {
		t.Error("completed report JSON mentions interrupted")
	}
}
