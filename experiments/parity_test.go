package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current implementation")

// TestGoldenParity proves refactors of the access path preserve behavior:
// every organization's full stat fingerprint on the fixed workload
// prefixes must match the checked-in golden byte for byte, with the sweep
// runner at one worker and at eight (determinism across worker counts).
// Regenerate deliberately with `go test ./experiments -run GoldenParity -update`.
func TestGoldenParity(t *testing.T) {
	skipIfRace(t)
	golden := filepath.Join("testdata", "parity_quick.golden")

	for _, jobs := range []int{1, 8} {
		prev := SetJobs(jobs)
		tbl, err := Parity(Quick)
		SetJobs(prev)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		got := tbl.String()

		if *updateGolden {
			if jobs == 1 {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (generate with -update): %v", err)
		}
		if got != string(want) {
			t.Errorf("jobs=%d: parity table diverged from golden\n--- got ---\n%s\n--- want ---\n%s",
				jobs, got, want)
		}
	}
}
