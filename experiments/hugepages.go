package experiments

import (
	"fmt"

	"hybridvc"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

// AblationHugePages (A3) pits the conventional mitigation for TLB reach —
// transparent 2 MiB huge pages — against delayed many-segment translation.
// Huge pages multiply TLB reach 512x but still cap it (32 entries x 2 MiB
// = 64 MiB here), while segments cover arbitrarily large contiguous
// regions; the paper's Section IV argument in one table.
func AblationHugePages(scale Scale) (*stats.Table, error) {
	n := scale.pick(40_000, 500_000)
	workloads := []string{"gups", "mcf"}
	points := []struct {
		label string
		org   hybridvc.Organization
		huge  bool
	}{
		{"baseline 4K", hybridvc.Baseline, false},
		{"baseline 2M (THP)", hybridvc.Baseline, true},
		{"hybrid many-seg+SC", hybridvc.HybridManySegSC, false},
	}
	var cells []Cell
	for _, wl := range workloads {
		spec := workload.Specs[wl]
		for _, p := range points {
			s := spec
			s.HugePages = p.huge
			cells = append(cells, Cell{
				Label:        fmt.Sprintf("hugepages/%s/%s", wl, p.label),
				Config:       hybridvc.Config{Org: p.org},
				Specs:        []workload.Spec{s},
				Instructions: n,
			})
		}
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Ablation A3: huge pages vs many-segment delayed translation",
		"workload", "baseline 4K", "baseline 2M (THP)", "hybrid many-seg+SC")
	for wi, wl := range workloads {
		base4k := res[wi*len(points)].Report.Cycles
		base2m := res[wi*len(points)+1].Report.Cycles
		hybrid := res[wi*len(points)+2].Report.Cycles
		t.AddRow(wl,
			fmt.Sprintf("%d (1.00x)", base4k),
			fmt.Sprintf("%d (%.2fx)", base2m, float64(base4k)/float64(base2m)),
			fmt.Sprintf("%d (%.2fx)", hybrid, float64(base4k)/float64(hybrid)))
	}
	return t, nil
}
