// Package baseline implements the memory system organizations the paper
// compares against: the conventional physically addressed hierarchy with a
// two-level TLB (Table IV, Haswell-like), an ideal TLB (no translation
// cost), RMM-style range translation with 32 pre-L1 segments, and direct
// segments. An Enigma-style organization is available through the hybrid
// MMU's FilterBypass configuration (see internal/core).
package baseline

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/energy"
	"hybridvc/internal/mem"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/pipeline"
	"hybridvc/internal/segment"
	"hybridvc/internal/stats"
	"hybridvc/internal/tlb"
)

// Config parameterizes the baseline organizations.
type Config struct {
	Hier   cache.HierarchyConfig
	DRAM   mem.DRAMConfig
	Energy energy.Model
}

// DefaultConfig returns the paper's Table IV baseline for n cores.
func DefaultConfig(n int) Config {
	return Config{
		Hier:   cache.DefaultHierarchyConfig(n),
		DRAM:   mem.DefaultDRAMConfig(),
		Energy: energy.DefaultModel(),
	}
}

// Conventional is the physically addressed baseline: a per-core two-level
// TLB in front of the L1, hardware page walks on misses. It is a pure
// FrontEnd organization: every access routes physically, with no cache
// stage override and no backend.
type Conventional struct {
	*pipeline.Engine
	tlbs []*tlb.TwoLevel
	// hugeTLBs hold 2 MiB translations (32 entries, probed in parallel
	// with the 4 KiB L1 TLB, like a real split dTLB).
	hugeTLBs []*tlb.TLB
	kernel   *osmodel.Kernel

	// TLBMissWalks counts page walks triggered by TLB misses.
	TLBMissWalks stats.Counter
	TLBShoots    stats.Counter
	// HugeTLBHits counts translations served by the 2 MiB TLB.
	HugeTLBHits stats.Counter

	// missMemo records that RouteBatch just probed every TLB level for
	// (core, asid, vpn) and found all of them missing. The engine scalar-
	// processes that stopper immediately, so the very next translate call
	// consumes the memo and commits the misses directly instead of
	// rescanning three sets it already knows are empty. One-shot: cleared
	// unconditionally at translate entry and on any shootdown.
	missMemoValid bool
	missMemoCore  int
	missMemoASID  addr.ASID
	missMemoVPN   uint64
}

// NewConventional builds the baseline and registers as the kernel's sink.
func NewConventional(cfg Config, k *osmodel.Kernel) *Conventional {
	c := &Conventional{kernel: k}
	c.Engine = pipeline.NewEngine(core.NewBase(cfg.Hier, cfg.DRAM, cfg.Energy), c, nil, nil)
	for i := 0; i < cfg.Hier.NumCores; i++ {
		c.tlbs = append(c.tlbs, tlb.NewTwoLevel(tlb.DefaultTwoLevelConfig()))
		c.hugeTLBs = append(c.hugeTLBs, tlb.New(tlb.Config{
			Name: fmt.Sprintf("huge-tlb[%d]", i), Entries: 32, Ways: 32, Latency: 1,
		}))
	}
	k.AttachSink(c)
	return c
}

// Name implements core.MemSystem.
func (c *Conventional) Name() string { return "baseline" }

// TLB exposes core i's two-level TLB.
func (c *Conventional) TLB(core int) *tlb.TwoLevel { return c.tlbs[core] }

// translate resolves VA->PA through the TLB hierarchy, charging latency
// beyond the L1-overlapped lookup and walk costs.
func (c *Conventional) translate(req *core.Request) (addr.PA, addr.Perm, uint64, bool) {
	tl := c.tlbs[req.Core]
	memoMiss := c.missMemoValid && c.missMemoCore == req.Core &&
		c.missMemoASID == req.Proc.ASID && c.missMemoVPN == req.VA.Page()
	c.missMemoValid = false
	c.Acc.Access(energy.L1TLB, 1)
	var tres tlb.Result
	if memoMiss {
		// RouteBatch already scanned all three levels and missed; commit
		// the clock ticks and statistics those lookups would have recorded
		// and fall through to the walk with tres.Level == 0.
		c.hugeTLBs[req.Core].RecordMiss()
		tl.L1.RecordMiss()
		tl.L2.RecordMiss()
	} else {
		// The 2 MiB TLB is probed in parallel with the 4 KiB L1 TLB.
		if e, ok := c.hugeTLBs[req.Core].Lookup(req.Proc.ASID, req.VA.HugePage()); ok {
			c.HugeTLBHits.Inc()
			if p := c.Probe(); p != nil {
				p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBHuge, Hit: true})
			}
			off := uint64(req.VA) & (addr.HugePageSize - 1)
			return addr.FrameToPA(e.PFN) + addr.PA(off), e.Perm, 0, true
		}
		tres = tl.Lookup(req.Proc.ASID, req.VA.Page())
	}
	if p := c.Probe(); p != nil {
		p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBHuge, Hit: false})
		p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBL1, Hit: tres.Level == 1})
		if tres.Level != 1 {
			p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBL2, Hit: tres.Level == 2})
		}
	}
	var lat uint64
	switch tres.Level {
	case 1:
		// L1 TLB lookup overlaps L1 cache indexing: no added latency.
	case 2:
		c.Acc.Access(energy.L2TLB, 1)
		lat = tl.L2.Config().Latency
	default:
		c.Acc.Access(energy.L2TLB, 1)
		lat = tl.L2.Config().Latency
		c.TLBMissWalks.Inc()
		leaf, wlat, ok := c.TimedWalk(req.Core, req.Proc, req.VA.PageAligned())
		lat += wlat
		if !ok {
			return 0, 0, lat, false
		}
		if leaf.Huge {
			c.hugeTLBs[req.Core].Insert(tlb.Entry{
				ASID: req.Proc.ASID, VPN: req.VA.HugePage(), PFN: leaf.Frame,
				Perm: leaf.Perm, Shared: leaf.Shared,
			})
		} else {
			tl.Insert(tlb.Entry{
				ASID: req.Proc.ASID, VPN: req.VA.Page(), PFN: leaf.Frame,
				Perm: leaf.Perm, Shared: leaf.Shared,
			})
		}
		return leaf.PA(req.VA), leaf.Perm, lat, true
	}
	return addr.FrameToPA(tres.Entry.PFN) + addr.PA(req.VA.PageOffset()),
		tres.Entry.Perm, lat, true
}

// Route implements pipeline.FrontEnd.
func (c *Conventional) Route(req *core.Request, res *core.Result) pipeline.Decision {
	pa, perm, lat, ok := c.translate(req)
	res.Latency += lat
	if !ok {
		fl, fixed := c.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		pa, perm, lat, ok = c.translate(req)
		res.Latency += lat
		if !ok {
			return pipeline.DoneNow()
		}
	}
	if req.Kind == cache.Write && !perm.AllowsWrite() {
		fl, fixed := c.HandleFault(req.Proc, req.VA, true)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		pa, perm, _, _ = c.translate(req)
	}
	return pipeline.GoPhysical(pa, perm)
}

// RouteBatch implements pipeline.BatchFrontEnd: an element is pure when
// some TLB level already translates it (huge, L1, or L2 — probed quietly
// in the same priority order translate uses) and the access does not
// write-fault. A pure element commits in the same pass: the probe that hit
// is promoted with tlb.Touch, the levels that missed record their misses,
// and an L2 hit refills L1 — the exact bookkeeping translate's replayed
// lookups would do, without rescanning any set. TLB misses (timed walks)
// and faults stop the run with nothing committed.
func (c *Conventional) RouteBatch(reqs []core.Request, res []core.Result, dec []pipeline.Decision) int {
	i := 0
	for ; i < len(reqs); i++ {
		if !c.routeBatchOne(&reqs[i], &res[i], &dec[i]) {
			break
		}
	}
	return i
}

// routeBatchOne decodes one batch element when some TLB level already
// translates it (huge, L1, or L2, probed in translate's priority order),
// committing the hit in the same pass. It reports false — leaving the
// element untouched apart from the all-levels-missed memo — when the
// element is impure (timed walk or write fault). DirectSegment reuses it
// element-wise for its out-of-segment accesses.
func (c *Conventional) routeBatchOne(req *core.Request, res *core.Result, dec *pipeline.Decision) bool {
	tl := c.tlbs[req.Core]
	huge := c.hugeTLBs[req.Core]
	if e, ok := huge.Probe(req.Proc.ASID, req.VA.HugePage()); ok {
		if req.Kind == cache.Write && !e.Perm.AllowsWrite() {
			return false
		}
		c.Acc.Access(energy.L1TLB, 1)
		huge.Touch(e)
		c.HugeTLBHits.Inc()
		off := uint64(req.VA) & (addr.HugePageSize - 1)
		*dec = pipeline.GoPhysical(addr.FrameToPA(e.PFN)+addr.PA(off), e.Perm)
		return true
	}
	vpn := req.VA.Page()
	if e, ok := tl.L1.Probe(req.Proc.ASID, vpn); ok {
		if req.Kind == cache.Write && !e.Perm.AllowsWrite() {
			return false
		}
		c.Acc.Access(energy.L1TLB, 1)
		huge.RecordMiss()
		tl.L1.Touch(e)
		// L1 TLB lookup overlaps L1 cache indexing: no added latency.
		*dec = pipeline.GoPhysical(addr.FrameToPA(e.PFN)+addr.PA(req.VA.PageOffset()), e.Perm)
		return true
	}
	if e, ok := tl.L2.Probe(req.Proc.ASID, vpn); ok {
		if req.Kind == cache.Write && !e.Perm.AllowsWrite() {
			return false
		}
		c.Acc.Access(energy.L1TLB, 1)
		c.Acc.Access(energy.L2TLB, 1)
		huge.RecordMiss()
		tl.L1.RecordMiss()
		tl.L2.Touch(e)
		cp := *e
		tl.L1.Insert(cp)
		res.Latency += tl.L2.Config().Latency
		*dec = pipeline.GoPhysical(addr.FrameToPA(e.PFN)+addr.PA(req.VA.PageOffset()), e.Perm)
		return true
	}
	// TLB miss: the scalar path walks. Leave a memo so its translate does
	// not rescan the sets this pass just probed.
	c.missMemoValid, c.missMemoCore = true, req.Core
	c.missMemoASID, c.missMemoVPN = req.Proc.ASID, vpn
	return false
}

// --- osmodel.ShootdownSink ---

// TLBShootdown invalidates the page in every core's TLBs.
func (c *Conventional) TLBShootdown(asid addr.ASID, vpn uint64) {
	c.TLBShoots.Inc()
	c.missMemoValid = false
	for i, tl := range c.tlbs {
		tl.Shootdown(asid, vpn)
		c.hugeTLBs[i].Shootdown(asid, vpn>>(addr.HugePageBits-addr.PageBits))
	}
}

// FlushPage is a no-op for physical caches (remaps do not change the
// physical names; the OS copies or zeroes frames functionally).
func (c *Conventional) FlushPage(page addr.Name) {
	if page.Synonym {
		c.Hier.FlushPage(page)
	}
}

// SetPagePerm updates TLB permissions by shooting the entries down.
func (c *Conventional) SetPagePerm(page addr.Name, perm addr.Perm) {
	if !page.Synonym {
		c.TLBShootdown(page.ASID, page.Page())
	}
}

// FilterUpdate is a no-op: the baseline has no synonym filters.
func (c *Conventional) FilterUpdate(addr.ASID) {}

// FlushASID drops the address space's TLB entries (physical cache lines
// stay; the frames are recycled by the OS).
func (c *Conventional) FlushASID(asid addr.ASID) {
	c.missMemoValid = false
	for i, tl := range c.tlbs {
		tl.FlushASID(asid)
		c.hugeTLBs[i].FlushASID(asid)
	}
}

// Ideal models perfect translation: zero latency, zero energy — the
// paper's "ideal TLB" upper bound.
type Ideal struct {
	*pipeline.Engine
	kernel *osmodel.Kernel
}

// NewIdeal builds the ideal memory system.
func NewIdeal(cfg Config, k *osmodel.Kernel) *Ideal {
	i := &Ideal{kernel: k}
	i.Engine = pipeline.NewEngine(core.NewBase(cfg.Hier, cfg.DRAM, cfg.Energy), i, nil, nil)
	k.AttachSink(i)
	return i
}

// Name implements core.MemSystem.
func (i *Ideal) Name() string { return "ideal" }

// Route implements pipeline.FrontEnd.
func (i *Ideal) Route(req *core.Request, res *core.Result) pipeline.Decision {
	pa, ok := req.Proc.PT.Translate(req.VA)
	if !ok {
		fl, fixed := i.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		pa, _ = req.Proc.PT.Translate(req.VA)
	}
	return pipeline.GoPhysical(pa, addr.PermRW)
}

// RouteBatch implements pipeline.BatchFrontEnd: translation is free and
// stateless, so every mapped address decodes purely; only unmapped pages
// (demand-paging faults) stop the run.
func (i *Ideal) RouteBatch(reqs []core.Request, res []core.Result, dec []pipeline.Decision) int {
	n := 0
	for ; n < len(reqs); n++ {
		pa, ok := reqs[n].Proc.PT.Translate(reqs[n].VA)
		if !ok {
			break
		}
		dec[n] = pipeline.GoPhysical(pa, addr.PermRW)
	}
	return n
}

// TLBShootdown implements osmodel.ShootdownSink.
func (i *Ideal) TLBShootdown(addr.ASID, uint64) {}

// FlushPage implements osmodel.ShootdownSink.
func (i *Ideal) FlushPage(page addr.Name) {
	if page.Synonym {
		i.Hier.FlushPage(page)
	}
}

// SetPagePerm implements osmodel.ShootdownSink.
func (i *Ideal) SetPagePerm(addr.Name, addr.Perm) {}

// FilterUpdate implements osmodel.ShootdownSink.
func (i *Ideal) FilterUpdate(addr.ASID) {}

// FlushASID implements osmodel.ShootdownSink.
func (i *Ideal) FlushASID(addr.ASID) {}

// RangeTLB is RMM's 32-entry fully associative range table, operating at
// the L2 TLB latency (7 cycles) on the critical pre-L1 path.
type RangeTLB struct {
	entries []*segment.Segment
	lru     []uint64
	tick    uint64
	cap     int
	Stats   stats.HitMiss
}

// NewRangeTLB creates a range TLB with the given capacity (RMM: 32).
func NewRangeTLB(capacity int) *RangeTLB {
	if capacity <= 0 {
		panic(fmt.Sprintf("baseline: invalid range TLB capacity %d", capacity))
	}
	return &RangeTLB{cap: capacity}
}

// Lookup finds a cached range covering (asid, va).
func (r *RangeTLB) Lookup(asid addr.ASID, va addr.VA) (*segment.Segment, bool) {
	r.tick++
	for i, s := range r.entries {
		if s.Contains(asid, va) {
			r.lru[i] = r.tick
			r.Stats.Hit()
			return s, true
		}
	}
	r.Stats.Miss()
	return nil, false
}

// Probe finds a covering range without touching LRU or statistics,
// returning its index so the batched route path can commit the hit with
// Touch instead of rescanning the table.
func (r *RangeTLB) Probe(asid addr.ASID, va addr.VA) (*segment.Segment, int, bool) {
	for i, s := range r.entries {
		if s.Contains(asid, va) {
			return s, i, true
		}
	}
	return nil, -1, false
}

// Touch commits a quiet Probe hit at index i: it advances the clock,
// promotes the entry to MRU, and records the hit — exactly the bookkeeping
// Lookup would have done, without rescanning the table.
func (r *RangeTLB) Touch(i int) {
	r.tick++
	r.lru[i] = r.tick
	r.Stats.Hit()
}

// RecordMiss commits a quiet probe miss: it advances the clock and records
// the miss Lookup would have recorded.
func (r *RangeTLB) RecordMiss() {
	r.tick++
	r.Stats.Miss()
}

// Insert caches a range, evicting the LRU entry when full.
func (r *RangeTLB) Insert(s *segment.Segment) {
	r.tick++
	if len(r.entries) < r.cap {
		r.entries = append(r.entries, s)
		r.lru = append(r.lru, r.tick)
		return
	}
	victim := 0
	for i := range r.lru {
		if r.lru[i] < r.lru[victim] {
			victim = i
		}
	}
	r.entries[victim] = s
	r.lru[victim] = r.tick
}

// FlushASID drops every cached range of the address space.
func (r *RangeTLB) FlushASID(asid addr.ASID) {
	kept := r.entries[:0]
	keptLRU := r.lru[:0]
	for i, s := range r.entries {
		if s.ASID != asid {
			kept = append(kept, s)
			keptLRU = append(keptLRU, r.lru[i])
		}
	}
	r.entries = kept
	r.lru = keptLRU
}

// Misses returns the miss count (the Table III "RMM MPKI" numerator).
func (r *RangeTLB) Misses() uint64 { return r.Stats.Misses.Value() }

// RMM is the redundant-memory-mapping baseline: an L1 page TLB, a 32-entry
// range TLB at the L2 level, and redundant paging as the fallback.
type RMM struct {
	*pipeline.Engine
	kernel *osmodel.Kernel
	l1tlbs []*tlb.TLB
	ranges []*RangeTLB

	// RangeWalks counts range-table fills after range TLB misses.
	RangeWalks stats.Counter

	// missMemo records that RouteBatch just probed the L1 TLB and the
	// range TLB for (core, asid, vpn) and both missed. The engine scalar-
	// processes that stopper immediately, so the very next Route consumes
	// the memo and commits both misses directly instead of rescanning the
	// TLB set and the 32-entry range table. One-shot: cleared
	// unconditionally at Route entry and on any shootdown.
	missMemoValid bool
	missMemoCore  int
	missMemoASID  addr.ASID
	missMemoVPN   uint64
}

// RMMRangeEntries is RMM's per-core range TLB capacity.
const RMMRangeEntries = 32

// NewRMM builds the RMM baseline.
func NewRMM(cfg Config, k *osmodel.Kernel) *RMM {
	r := &RMM{kernel: k}
	r.Engine = pipeline.NewEngine(core.NewBase(cfg.Hier, cfg.DRAM, cfg.Energy), r, nil, nil)
	for i := 0; i < cfg.Hier.NumCores; i++ {
		r.l1tlbs = append(r.l1tlbs, tlb.New(tlb.Config{
			Name: fmt.Sprintf("rmm-l1tlb[%d]", i), Entries: 64, Ways: 4, Latency: 1,
		}))
		r.ranges = append(r.ranges, NewRangeTLB(RMMRangeEntries))
	}
	k.AttachSink(r)
	return r
}

// Name implements core.MemSystem.
func (r *RMM) Name() string { return "rmm" }

// Range exposes core i's range TLB.
func (r *RMM) Range(core int) *RangeTLB { return r.ranges[core] }

// Route implements pipeline.FrontEnd.
func (r *RMM) Route(req *core.Request, res *core.Result) pipeline.Decision {
	var pa addr.PA
	var perm addr.Perm

	memoMiss := r.missMemoValid && r.missMemoCore == req.Core &&
		r.missMemoASID == req.Proc.ASID && r.missMemoVPN == req.VA.Page()
	r.missMemoValid = false
	r.Acc.Access(energy.L1TLB, 1)
	var e *tlb.Entry
	var ok bool
	if memoMiss {
		// RouteBatch already scanned the L1 TLB set and the range table and
		// missed both; commit the clock ticks and statistics those lookups
		// would have recorded and fall through to the range walk.
		r.l1tlbs[req.Core].RecordMiss()
	} else {
		e, ok = r.l1tlbs[req.Core].Lookup(req.Proc.ASID, req.VA.Page())
	}
	if ok {
		if p := r.Probe(); p != nil {
			p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBL1, Hit: true})
		}
		pa = addr.FrameToPA(e.PFN) + addr.PA(req.VA.PageOffset())
		perm = e.Perm
	} else {
		if p := r.Probe(); p != nil {
			p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBL1, Hit: false})
		}
		// Range TLB at the L2 TLB position: 7 cycles on the critical path.
		r.Acc.Access(energy.SegmentTable, 1)
		res.Latency += 7
		var rseg *segment.Segment
		var rok bool
		if memoMiss {
			r.ranges[req.Core].RecordMiss()
		} else {
			rseg, rok = r.ranges[req.Core].Lookup(req.Proc.ASID, req.VA)
		}
		if p := r.Probe(); p != nil {
			p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBRange, Hit: rok})
		}
		if seg, ok := rseg, rok; ok {
			pa = seg.Translate(req.VA)
			perm = seg.Perm
		} else {
			// Range walk: the OS range table supplies the segment; charge
			// a page-walk-like cost through the cache hierarchy.
			r.RangeWalks.Inc()
			leaf, wlat, ok := r.TimedWalk(req.Core, req.Proc, req.VA.PageAligned())
			res.Latency += wlat
			if !ok {
				fl, fixed := r.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
				res.Latency += fl
				res.Fault = true
				if !fixed {
					return pipeline.DoneNow()
				}
				leaf, wlat, _ = r.TimedWalk(req.Core, req.Proc, req.VA.PageAligned())
				res.Latency += wlat
			}
			pa = leaf.PA(req.VA)
			perm = leaf.Perm
			if seg, ok := r.kernel.SegMgr.LookupSoft(req.Proc.ASID, req.VA); ok {
				r.ranges[req.Core].Insert(seg)
			}
		}
		r.l1tlbs[req.Core].Insert(tlb.Entry{
			ASID: req.Proc.ASID, VPN: req.VA.Page(), PFN: pa.Frame(), Perm: perm,
		})
	}

	if req.Kind == cache.Write && !perm.AllowsWrite() {
		fl, fixed := r.HandleFault(req.Proc, req.VA, true)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
	}
	return pipeline.GoPhysical(pa, perm)
}

// RouteBatch implements pipeline.BatchFrontEnd: L1 TLB hits and range TLB
// hits decode purely — probed quietly, then committed with tlb.Touch /
// RecordMiss and the L1 refill the scalar range path performs, without
// rescanning either structure. Range walks and write faults stop the run,
// leaving the all-levels-missed memo for the scalar redo.
func (r *RMM) RouteBatch(reqs []core.Request, res []core.Result, dec []pipeline.Decision) int {
	i := 0
	for ; i < len(reqs); i++ {
		req := &reqs[i]
		l1 := r.l1tlbs[req.Core]
		var pa addr.PA
		var perm addr.Perm
		if e, ok := l1.Probe(req.Proc.ASID, req.VA.Page()); ok {
			pa = addr.FrameToPA(e.PFN) + addr.PA(req.VA.PageOffset())
			perm = e.Perm
			if req.Kind == cache.Write && !perm.AllowsWrite() {
				break
			}
			r.Acc.Access(energy.L1TLB, 1)
			l1.Touch(e)
		} else if seg, si, ok := r.ranges[req.Core].Probe(req.Proc.ASID, req.VA); ok {
			pa = seg.Translate(req.VA)
			perm = seg.Perm
			if req.Kind == cache.Write && !perm.AllowsWrite() {
				break
			}
			r.Acc.Access(energy.L1TLB, 1)
			l1.RecordMiss()
			r.Acc.Access(energy.SegmentTable, 1)
			res[i].Latency += 7
			r.ranges[req.Core].Touch(si)
			l1.Insert(tlb.Entry{
				ASID: req.Proc.ASID, VPN: req.VA.Page(), PFN: pa.Frame(), Perm: perm,
			})
		} else {
			// Range walk: the scalar path fills. Leave a memo so its Route
			// does not rescan the TLB set and range table this pass just
			// probed.
			r.missMemoValid, r.missMemoCore = true, req.Core
			r.missMemoASID, r.missMemoVPN = req.Proc.ASID, req.VA.Page()
			break
		}
		dec[i] = pipeline.GoPhysical(pa, perm)
	}
	return i
}

// TLBShootdown implements osmodel.ShootdownSink.
func (r *RMM) TLBShootdown(asid addr.ASID, vpn uint64) {
	r.missMemoValid = false
	for _, t := range r.l1tlbs {
		t.Shootdown(asid, vpn)
	}
}

// FlushPage implements osmodel.ShootdownSink.
func (r *RMM) FlushPage(page addr.Name) {
	if page.Synonym {
		r.Hier.FlushPage(page)
	}
}

// SetPagePerm implements osmodel.ShootdownSink.
func (r *RMM) SetPagePerm(page addr.Name, perm addr.Perm) {
	if !page.Synonym {
		r.TLBShootdown(page.ASID, page.Page())
	}
}

// FilterUpdate implements osmodel.ShootdownSink.
func (r *RMM) FilterUpdate(addr.ASID) {}

// FlushASID implements osmodel.ShootdownSink.
func (r *RMM) FlushASID(asid addr.ASID) {
	r.missMemoValid = false
	for _, t := range r.l1tlbs {
		t.FlushASID(asid)
	}
	// Range TLBs hold segment pointers; drop any for the ASID.
	for _, rt := range r.ranges {
		rt.FlushASID(asid)
	}
}

// DirectSegment gives each process one base/limit/offset register triple
// covering its largest contiguous region; addresses inside it translate
// for free, everything else takes the conventional TLB path. It runs its
// own engine (with itself as FrontEnd) over the Conventional baseline's
// substrate, falling back to the conventional Route outside the segment.
type DirectSegment struct {
	*Conventional
	*pipeline.Engine
	segs map[addr.ASID]*segment.Segment
	// memoASID/memoSeg cache the last segs lookup (hit or miss), sparing
	// the hot paths a map probe per reference; AssignSegment invalidates.
	memoASID  addr.ASID
	memoSeg   *segment.Segment
	memoValid bool

	// InSegment counts accesses translated by the direct segment.
	InSegment stats.Counter
}

// NewDirectSegment builds the direct segment baseline.
func NewDirectSegment(cfg Config, k *osmodel.Kernel) *DirectSegment {
	d := &DirectSegment{
		Conventional: NewConventional(cfg, k),
		segs:         make(map[addr.ASID]*segment.Segment),
	}
	d.Engine = pipeline.NewEngine(d.Conventional.BaseState(), d, nil, nil)
	return d
}

// Name implements core.MemSystem.
func (d *DirectSegment) Name() string { return "direct-segment" }

// AssignSegment installs the process's direct segment registers, picking
// its largest backing segment.
func (d *DirectSegment) AssignSegment(p *osmodel.Process) {
	var best *segment.Segment
	for _, s := range d.kernel.SegMgr.Segments(p.ASID) {
		if best == nil || s.Length > best.Length {
			best = s
		}
	}
	if best != nil {
		d.segs[p.ASID] = best
	}
	d.memoValid = false
}

// segFor returns the process's direct segment (nil if none), through the
// one-entry memo.
func (d *DirectSegment) segFor(asid addr.ASID) *segment.Segment {
	if d.memoValid && d.memoASID == asid {
		return d.memoSeg
	}
	s := d.segs[asid]
	d.memoASID, d.memoSeg, d.memoValid = asid, s, true
	return s
}

// Route implements pipeline.FrontEnd: inside the direct segment the
// translation is free; outside, the conventional TLB front end runs.
func (d *DirectSegment) Route(req *core.Request, res *core.Result) pipeline.Decision {
	if s := d.segFor(req.Proc.ASID); s != nil && s.Contains(req.Proc.ASID, req.VA) {
		d.InSegment.Inc()
		return pipeline.GoPhysical(s.Translate(req.VA), s.Perm)
	}
	return d.Conventional.Route(req, res)
}

// RouteBatch implements pipeline.BatchFrontEnd. It must be defined here —
// not inherited — because the promoted Conventional.RouteBatch would
// silently skip the direct-segment check. In-segment accesses decode for
// free (exactly like the scalar path, which performs no permission check
// inside the segment); out-of-segment accesses run through the
// conventional decoder's single-pass probe-and-commit element-wise.
func (d *DirectSegment) RouteBatch(reqs []core.Request, res []core.Result, dec []pipeline.Decision) int {
	i := 0
	for ; i < len(reqs); i++ {
		req := &reqs[i]
		if s := d.segFor(req.Proc.ASID); s != nil && s.Contains(req.Proc.ASID, req.VA) {
			d.InSegment.Inc()
			dec[i] = pipeline.GoPhysical(s.Translate(req.VA), s.Perm)
			continue
		}
		if !d.Conventional.routeBatchOne(req, &res[i], &dec[i]) {
			break
		}
	}
	return i
}
