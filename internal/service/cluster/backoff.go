package cluster

import (
	"math/rand"
	"time"
)

// Backoff is the retry pacing policy shared across the cluster: the
// daemon's peer replication, the client package's SubmitWait (which
// aliases this type, so existing callers are untouched) and the
// hvcctl balancer all pace retryable failures with the same capped
// jittered exponential. The zero value is usable; every field defaults.
type Backoff struct {
	// Base is the first retry's delay (default 100ms).
	Base time.Duration
	// Max caps any single computed delay (default 5s). A server-supplied
	// Retry-After is honoured as-is, uncapped.
	Max time.Duration
	// MaxElapsed bounds the total time spent retrying, measured from the
	// first attempt: once a computed wait would cross it, the last error
	// is returned instead of sleeping (default 2m).
	MaxElapsed time.Duration
	// Jitter is the fraction of each delay randomized away, spreading
	// synchronized retry herds: a delay d becomes uniform in
	// [d*(1-Jitter), d]. 0 defaults to 0.5; negative disables jitter.
	Jitter float64
}

// WithDefaults returns the policy with zero fields filled in.
func (b Backoff) WithDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.MaxElapsed <= 0 {
		b.MaxElapsed = 2 * time.Minute
	}
	if b.Jitter == 0 {
		b.Jitter = 0.5
	}
	return b
}

// Delay computes the (jittered) delay before retry number attempt
// (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	d := b.Base
	for i := 0; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 {
		d -= time.Duration(b.Jitter * rand.Float64() * float64(d))
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
