// BenchmarkHotPath measures the batched access hot path against the
// scalar one: every organization runs the same gups reference stream
// through per-reference Access calls and through Interleave-sized
// AccessBatch chunks, on identically seeded twin systems. Each path does
// one untimed warmup pass and is then scored as the best of three timed
// passes, the standard way to strip GC/scheduler noise from a steady-state
// measurement. The refs/sec of both paths and their ratio land in
// BENCH_hotpath.json so the hot-path trajectory is tracked alongside
// BENCH_sweep.json. Run via:
//
//	make bench-hotpath
package hybridvc_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"hybridvc"
	"hybridvc/internal/core"
	"hybridvc/internal/sim"
)

// preRefactorScalarRefsPerSec is the hybrid-manyseg+sc throughput of the
// pre-refactor scalar loop (the monolithic per-reference Access of commit
// 8488e5e), measured on this machine with the exact protocol below: gups,
// 256 KiB LLC, seed 1, 200k requests, one warmup pass, best of three timed
// passes. The refactor replaced that code, so the reference point is
// recorded here; regenerate it with a `git worktree add <dir> 8488e5e` and
// the same measurement loop. The scalar column in the rows below is the
// post-refactor engine's scalar path, which already includes this PR's
// shared-structure optimizations and therefore beats the recorded baseline.
const preRefactorScalarRefsPerSec = 1_240_000

func BenchmarkHotPath(b *testing.B) {
	type row struct {
		Org              string  `json:"org"`
		Refs             int     `json:"refs"`
		ScalarRefsPerSec float64 `json:"scalar_refs_per_sec"`
		BatchRefsPerSec  float64 `json:"batch_refs_per_sec"`
		Speedup          float64 `json:"speedup"`
	}
	const refs = 200_000
	const trials = 3
	chunk := sim.DefaultConfig().Interleave

	// bestOf runs pass once untimed to reach steady state, then returns the
	// fastest of `trials` timed repetitions.
	bestOf := func(pass func()) float64 {
		pass()
		best := 0.0
		for t := 0; t < trials; t++ {
			runtime.GC()
			start := time.Now()
			pass()
			if secs := time.Since(start).Seconds(); t == 0 || secs < best {
				best = secs
			}
		}
		return best
	}

	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, org := range hybridvc.Organizations() {
			scalarSys := newHotpathSystem(b, org, "gups")
			batchSys := newHotpathSystem(b, org, "gups")
			sreqs := collectRequests(scalarSys, refs)
			breqs := collectRequests(batchSys, refs)
			res := make([]core.Result, chunk)

			scalarSecs := bestOf(func() {
				for j := range sreqs {
					scalarSys.Mem.Access(sreqs[j])
				}
			})
			batchSecs := bestOf(func() {
				for lo := 0; lo < refs; lo += chunk {
					hi := min(lo+chunk, refs)
					batchSys.Mem.AccessBatch(breqs[lo:hi], res[:hi-lo])
				}
			})

			rows = append(rows, row{
				Org:              string(org),
				Refs:             refs,
				ScalarRefsPerSec: float64(refs) / scalarSecs,
				BatchRefsPerSec:  float64(refs) / batchSecs,
				Speedup:          scalarSecs / batchSecs,
			})
		}
	}

	var vsPre float64
	for _, r := range rows {
		b.Logf("%-18s scalar %12.0f refs/s   batch %12.0f refs/s   %.2fx",
			r.Org, r.ScalarRefsPerSec, r.BatchRefsPerSec, r.Speedup)
		if r.Org == string(hybridvc.HybridManySegSC) {
			vsPre = r.BatchRefsPerSec / preRefactorScalarRefsPerSec
			b.Logf("%-18s batch vs pre-refactor scalar loop (%.0f refs/s @ 8488e5e): %.2fx",
				r.Org, float64(preRefactorScalarRefsPerSec), vsPre)
			b.ReportMetric(vsPre, "speedup-vs-prerefactor")
		}
	}
	out, err := json.MarshalIndent(map[string]any{
		"name":          "hotpath",
		"refs_per_org":  refs,
		"chunk":         chunk,
		"organizations": rows,
		"prerefactor_baseline": map[string]any{
			"commit":              "8488e5e",
			"org":                 string(hybridvc.HybridManySegSC),
			"scalar_refs_per_sec": float64(preRefactorScalarRefsPerSec),
			"speedup":             vsPre,
		},
	}, "", "  ")
	if err == nil {
		// BENCH_HOTPATH_OUT redirects the result file so regression checks
		// (make bench-check) can compare a fresh run against the committed
		// BENCH_hotpath.json without overwriting it.
		path := os.Getenv("BENCH_HOTPATH_OUT")
		if path == "" {
			path = "BENCH_hotpath.json"
		}
		if werr := os.WriteFile(path, append(out, '\n'), 0o644); werr != nil {
			b.Logf("%s not written: %v", path, werr)
		}
	}
}
