package trace

import (
	"bytes"
	"io"
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/workload"
)

func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), true, false, false, uint64(0x2000))
	f.Add(uint64(0), false, false, false, uint64(0))
	f.Add(uint64(1)<<47, true, true, true, uint64(0xfff))
	f.Fuzz(func(t *testing.T, va1 uint64, store, dep, shared bool, va2 uint64) {
		ins := []workload.Insn{
			{IsMem: true, IsStore: store, DependsOnPrev: dep, Shared: shared,
				VA: addr.VA(va1 % (1 << addr.VABits))},
			{}, // an ALU instruction
			{IsMem: true, VA: addr.VA(va2 % (1 << addr.VABits))},
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, in := range ins {
			if err := w.Write(in); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(&buf)
		for i, want := range ins {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("record %d: %+v != %+v", i, got, want)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("want EOF, got %v", err)
		}
	})
}

func FuzzReaderNeverPanics(f *testing.F) {
	f.Add([]byte("HVCT\x01\x01\x80\x80"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			if _, err := r.Next(); err != nil {
				return // any error is fine; panics are not
			}
		}
	})
}
