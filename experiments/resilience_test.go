package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// withKnobs resets every resilience knob after the test so the package-
// level configuration cannot leak between tests.
func withKnobs(t *testing.T) {
	t.Helper()
	prevCtx := SetContext(nil)
	prevTimeout := SetCellTimeout(0)
	prevRetries, prevBackoff := SetRetry(0, 0)
	prevCkpt := SetCheckpoint("")
	t.Cleanup(func() {
		SetContext(prevCtx)
		SetCellTimeout(prevTimeout)
		SetRetry(prevRetries, prevBackoff)
		SetCheckpoint(prevCkpt)
	})
}

// fnCell builds a trivial Fn cell returning its own index.
func fnCell(i int, fn func() (any, error)) Cell {
	return Cell{Label: fmt.Sprintf("cell-%d", i), Fn: fn, DecodeValue: decodeStringRow}
}

// TestContextCancelStopsSweep proves cancellation is prompt: once the
// context fires, pending cells never start and runCells reports the
// interruption.
func TestContextCancelStopsSweep(t *testing.T) {
	withKnobs(t)
	ctx, cancel := context.WithCancel(context.Background())
	SetContext(ctx)
	prev := SetJobs(2)
	defer SetJobs(prev)

	var started atomic.Int64
	release := make(chan struct{})
	cells := make([]Cell, 16)
	for i := range cells {
		i := i
		cells[i] = fnCell(i, func() (any, error) {
			started.Add(1)
			<-release
			return []string{fmt.Sprint(i)}, nil
		})
	}
	go func() {
		for started.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		close(release)
	}()
	_, err := runCells(cells)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	if n := started.Load(); n > 4 {
		t.Errorf("%d cells started after prompt cancellation (2 workers)", n)
	}
}

// TestRetryRecoversTransientFailures proves the retry path: cells that
// fail transiently (explicitly marked, or via panic) succeed within the
// attempt budget, and non-transient failures are not retried.
func TestRetryRecoversTransientFailures(t *testing.T) {
	withKnobs(t)
	SetRetry(3, time.Millisecond)

	var transientTries, panicTries, fatalTries atomic.Int64
	cells := []Cell{
		fnCell(0, func() (any, error) {
			if transientTries.Add(1) < 3 {
				return nil, Transient(errors.New("injected hiccup"))
			}
			return []string{"ok"}, nil
		}),
		fnCell(1, func() (any, error) {
			if panicTries.Add(1) < 2 {
				panic("injected panic")
			}
			return []string{"ok"}, nil
		}),
		fnCell(2, func() (any, error) {
			fatalTries.Add(1)
			return nil, errors.New("permanent failure")
		}),
	}
	results, err := runCells(cells)
	if err == nil {
		t.Fatal("permanent failure not reported")
	}
	if got := results[0].Value; !reflect.DeepEqual(got, any([]string{"ok"})) {
		t.Errorf("transient cell result %v after %d tries", got, transientTries.Load())
	}
	if got := results[1].Value; !reflect.DeepEqual(got, any([]string{"ok"})) {
		t.Errorf("panicking cell result %v after %d tries", got, panicTries.Load())
	}
	if n := fatalTries.Load(); n != 1 {
		t.Errorf("non-transient cell ran %d times, want 1", n)
	}
}

// TestCellTimeoutIsTransient proves a hung cell is abandoned at the
// timeout and the failure classifies as transient (so retries apply).
func TestCellTimeoutIsTransient(t *testing.T) {
	withKnobs(t)
	SetCellTimeout(10 * time.Millisecond)

	var tries atomic.Int64
	hang := make(chan struct{})
	defer close(hang)
	cells := []Cell{fnCell(0, func() (any, error) {
		if tries.Add(1) == 1 {
			<-hang
		}
		return []string{"ok"}, nil
	})}
	_, err := runCells(cells)
	if err == nil || !IsTransient(err) {
		t.Fatalf("timeout error %v is not transient", err)
	}

	SetRetry(1, time.Millisecond)
	tries.Store(0)
	results, err := runCells(cells)
	if err != nil {
		t.Fatalf("retry after timeout failed: %v", err)
	}
	if got := results[0].Value; !reflect.DeepEqual(got, any([]string{"ok"})) {
		t.Errorf("result %v after timeout retry", got)
	}
}

// TestCheckpointResume proves the resume contract: a sweep interrupted
// partway, then re-run against the same checkpoint, reaches results
// identical to an uninterrupted sweep — restored cells do not re-run.
func TestCheckpointResume(t *testing.T) {
	withKnobs(t)
	ckpt := filepath.Join(t.TempDir(), "sweep.ndjson")
	SetCheckpoint(ckpt)
	prev := SetJobs(1)
	defer SetJobs(prev)

	var runs atomic.Int64
	fail := atomic.Bool{}
	fail.Store(true)
	mk := func() []Cell {
		cells := make([]Cell, 6)
		for i := range cells {
			i := i
			cells[i] = fnCell(i, func() (any, error) {
				if i >= 3 && fail.Load() {
					return nil, fmt.Errorf("interrupted before cell %d", i)
				}
				runs.Add(1)
				return []string{fmt.Sprintf("value-%d", i)}, nil
			})
		}
		return cells
	}

	if _, err := runCells(mk()); err == nil {
		t.Fatal("interrupted sweep reported success")
	}
	if n := runs.Load(); n != 3 {
		t.Fatalf("%d cells completed before interruption, want 3", n)
	}

	fail.Store(false)
	results, err := runCells(mk())
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if n := runs.Load(); n != 6 {
		t.Errorf("resume re-ran completed cells: %d total runs, want 6", n)
	}
	for i, r := range results {
		want := []string{fmt.Sprintf("value-%d", i)}
		if !reflect.DeepEqual(r.Value, any(want)) {
			t.Errorf("cell %d resumed to %v, want %v", i, r.Value, want)
		}
	}

	// A torn trailing record (crash mid-write) must not poison resume.
	f, err := os.OpenFile(ckpt, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":2,"label":"cell-2","val`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := runCells(mk()); err != nil {
		t.Fatalf("resume with torn trailing record: %v", err)
	}
	if n := runs.Load(); n != 6 {
		t.Errorf("torn record caused re-runs: %d total runs, want 6", n)
	}
}

// TestCheckpointResumeMatchesUninterrupted proves byte-level determinism
// of resume on the real system path: a fault-sweep cell checkpointed and
// restored yields the same table as running fresh.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	skipIfRace(t)
	withKnobs(t)

	fresh, err := FaultSweep(Quick)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "faults.ndjson")
	SetCheckpoint(ckpt)
	first, err := FaultSweep(Quick)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := FaultSweep(Quick) // every cell restored from the journal
	if err != nil {
		t.Fatal(err)
	}
	if fresh.String() != first.String() {
		t.Errorf("checkpointed sweep diverged from plain sweep")
	}
	if fresh.String() != resumed.String() {
		t.Errorf("resumed sweep diverged from uninterrupted sweep")
	}
}

// TestRunnerRaceSafety exercises the worker pool's panic recovery,
// retry, and checkpoint paths concurrently; run with -race it proves the
// new machinery is goroutine-safe.
func TestRunnerRaceSafety(t *testing.T) {
	withKnobs(t)
	SetRetry(2, time.Millisecond)
	SetCheckpoint(filepath.Join(t.TempDir(), "race.ndjson"))
	prev := SetJobs(8)
	defer SetJobs(prev)

	var flaky [32]atomic.Int64
	cells := make([]Cell, len(flaky))
	for i := range cells {
		i := i
		cells[i] = fnCell(i, func() (any, error) {
			if i%3 == 0 && flaky[i].Add(1) == 1 {
				panic(fmt.Sprintf("first-attempt panic in cell %d", i))
			}
			return []string{fmt.Sprint(i)}, nil
		})
	}
	results, err := runCells(cells)
	if err != nil {
		t.Fatalf("runCells: %v", err)
	}
	for i, r := range results {
		if !reflect.DeepEqual(r.Value, any([]string{fmt.Sprint(i)})) {
			t.Errorf("cell %d: %v", i, r.Value)
		}
	}
}
