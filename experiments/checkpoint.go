package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"hybridvc/internal/sim"
)

// checkpointRecord is one completed cell journaled to the NDJSON
// checkpoint file: the cell's input index and label (the resume key) plus
// its serialized results.
type checkpointRecord struct {
	Index  int             `json:"index"`
	Label  string          `json:"label"`
	Report json.RawMessage `json:"report,omitempty"`
	Value  json.RawMessage `json:"value,omitempty"`
}

// checkpoint journals completed cells so an interrupted sweep can resume.
// Records append from multiple workers under a mutex; each record is one
// line, flushed and synced before append returns, so a crash loses at
// most the record being written — and resume tolerates a torn final line.
type checkpoint struct {
	mu sync.Mutex
	f  *os.File
}

// openCheckpoint loads any existing checkpoint at path, restores matching
// records into results (marking restored), and opens the file for
// appending the rest of the sweep.
func openCheckpoint(path string, cells []Cell, results []CellResult, restored []bool) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		restoreCheckpoint(data, cells, results, restored)
	case !errors.Is(err, fs.ErrNotExist):
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	// Each record fsyncs on append, but a freshly created journal also
	// needs its DIRECTORY entry durable, or a crash right after creation
	// can lose the whole file name. Best-effort, like the record syncs'
	// host filesystems allow.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return &checkpoint{f: f}, nil
}

// restoreCheckpoint replays journal lines against the sweep's cells. A
// record restores its cell only when the index and label still match and
// every value the cell needs can be reconstructed; anything else — torn
// trailing line from a crash, records from a different sweep shape, a
// Value without a DecodeValue hook — is ignored and the cell re-runs.
func restoreCheckpoint(data []byte, cells []Cell, results []CellResult, restored []bool) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec checkpointRecord
		if json.Unmarshal(line, &rec) != nil {
			continue
		}
		i := rec.Index
		if i < 0 || i >= len(cells) || cells[i].Label != rec.Label || restored[i] {
			continue
		}
		var res CellResult
		if len(rec.Report) > 0 {
			var rep sim.Report
			if json.Unmarshal(rec.Report, &rep) != nil {
				continue
			}
			res.Report = rep
		}
		needsValue := cells[i].Extract != nil || cells[i].Fn != nil
		if needsValue {
			if cells[i].DecodeValue == nil || len(rec.Value) == 0 {
				continue
			}
			v, err := cells[i].DecodeValue(rec.Value)
			if err != nil {
				continue
			}
			res.Value = v
		}
		results[i] = res
		restored[i] = true
	}
}

// append journals one completed cell.
func (c *checkpoint) append(i int, cell Cell, res CellResult) error {
	rec := checkpointRecord{Index: i, Label: cell.Label}
	if cell.Fn == nil {
		// System-path cells carry a report; reuse the report's own
		// (sanitized, infallible) encoder for consistency with every
		// other report the harness writes.
		rec.Report = json.RawMessage(res.Report.JSON())
	}
	if res.Value != nil {
		v, err := json.Marshal(res.Value)
		if err != nil {
			return fmt.Errorf("checkpoint cell %q: %w", cell.Label, err)
		}
		rec.Value = v
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint cell %q: %w", cell.Label, err)
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(line); err != nil {
		return fmt.Errorf("checkpoint cell %q: %w", cell.Label, err)
	}
	return c.f.Sync()
}

func (c *checkpoint) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.f.Close()
}
