// Command hvcd is the simulation-as-a-service daemon: a long-running
// HTTP server that accepts simulation and sweep jobs, schedules them on
// a bounded worker pool, and serves repeated submissions of the same
// configuration from a content-addressed result cache instead of
// re-simulating.
//
// API (see DESIGN.md §10):
//
//	POST   /v1/jobs               submit a job (dedup via cache key)
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          status + report
//	GET    /v1/jobs/{id}/timeline streamed interval time-series (NDJSON or SSE)
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/orgs               organization + workload catalog
//	GET    /v1/experiments        experiment registry
//	GET    /healthz, /readyz      liveness; readiness (503 draining/overloaded)
//	GET    /metrics               counters as JSON or Prometheus text
//
// SIGTERM/SIGINT drains gracefully: submissions are refused, running
// simulations quiesce at a chunk boundary, running sweeps checkpoint
// completed cells into the spool dir (resubmitting the same spec after a
// restart resumes), and the process exits once the workers finish or the
// drain timeout expires.
//
// Usage:
//
//	hvcd -addr :8077 -workers 4 -queue 64 -rate 50
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridvc/internal/buildinfo"
	"hybridvc/internal/service"
	"hybridvc/internal/service/cluster"
)

// newCluster assembles the cluster view from the -peers flag family.
// An empty -peers keeps the daemon single-node (nil cluster).
func newCluster(peers, nodeID, advertise, token string, timeout, probe time.Duration, logger *slog.Logger) (*cluster.Cluster, error) {
	if peers == "" {
		return nil, nil
	}
	if nodeID == "" {
		return nil, fmt.Errorf("-peers requires -node-id")
	}
	members, err := cluster.ParsePeers(peers)
	if err != nil {
		return nil, err
	}
	return cluster.New(cluster.Config{
		NodeID:        nodeID,
		Advertise:     advertise,
		Members:       members,
		Token:         token,
		FetchTimeout:  timeout,
		ProbeInterval: probe,
		Logger:        logger,
	})
}

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "job worker pool size (<= 0 means GOMAXPROCS)")
	queue := flag.Int("queue", 64, "pending-job queue depth (full queue answers 429)")
	cacheEntries := flag.Int("cache", 1024, "content-addressed result cache entries")
	rate := flag.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
	burst := flag.Int("burst", 10, "per-client submission burst")
	cellTimeout := flag.Duration("cell-timeout", 0, "abandon a job cell attempt after this long (0 = unbounded)")
	retries := flag.Int("retries", 0, "re-run transiently failed cells up to this many times")
	backoff := flag.Duration("retry-backoff", 0, "base pause between retry attempts (default 100ms)")
	spool := flag.String("spool", "", "sweep checkpoint spool directory (default: per-process temp dir)")
	storeDir := flag.String("store", "", "durable result store directory (empty = memory-only cache)")
	storeTTL := flag.Duration("store-ttl", 24*time.Hour, "expire store records this long after write (< 0 = never)")
	storeMaxBytes := flag.Int64("store-max-bytes", 256<<20, "store size budget, oldest records evicted first (< 0 = unbounded)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline from submission to completion (0 = unbounded)")
	breakerWait := flag.Duration("breaker-queue-wait", 0, "open the overload breaker when queue waits exceed this (0 = breaker disabled)")
	breakerTrips := flag.Int("breaker-trips", 3, "consecutive slow queue waits that trip the breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long the tripped breaker sheds before probing again")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	nodeID := flag.String("node-id", "", "this node's identity in logs, metrics and the cluster (default hvcd)")
	peers := flag.String("peers", "", "static cluster membership as id=url,... (empty = single node)")
	advertise := flag.String("advertise", "", "this node's base URL as peers reach it (required with -peers when -node-id is absent from the list)")
	clusterToken := flag.String("cluster-token", "", "shared secret authenticating peer API calls")
	peerTimeout := flag.Duration("peer-timeout", 2*time.Second, "per-call budget for peer fetch/replicate")
	probeInterval := flag.Duration("peer-probe-interval", time.Second, "cadence of the per-peer /readyz health probes")
	quiet := flag.Bool("quiet", false, "log warnings and errors only")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	version := buildinfo.Flag()
	flag.Parse()
	buildinfo.HandleFlag(version, "hvcd")

	logger, err := newLogger(*logFormat, *quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcd:", err)
		os.Exit(2)
	}
	clus, err := newCluster(*peers, *nodeID, *advertise, *clusterToken, *peerTimeout, *probeInterval, logger)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcd:", err)
		os.Exit(2)
	}
	srv, err := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		RatePerSec:   *rate,
		RateBurst:    *burst,
		CellTimeout:  *cellTimeout,
		Retries:      *retries,
		RetryBackoff: *backoff,
		SpoolDir:     *spool,
		Logger:       logger,

		StoreDir:      *storeDir,
		StoreTTL:      *storeTTL,
		StoreMaxBytes: *storeMaxBytes,
		JobTimeout:    *jobTimeout,

		BreakerQueueWait: *breakerWait,
		BreakerTrips:     *breakerTrips,
		BreakerCooldown:  *breakerCooldown,

		NodeID:  *nodeID,
		Cluster: clus,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcd:", err)
		os.Exit(1)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	logger.Info("hvcd listening", "version", buildinfo.Version(), "addr", *addr)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "hvcd:", err)
		os.Exit(1)
	case sig := <-sigs:
		logger.Info("hvcd draining on signal", "signal", sig.String(), "max_wait", drainTimeout.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "hvcd: shutdown:", err)
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "hvcd:", drainErr)
		os.Exit(1)
	}
	logger.Info("hvcd drained cleanly")
}

// newLogger builds the daemon's structured logger on stderr. Every job
// lifecycle transition logs at info with its lineage ID, spec key and
// stage latencies; per-request logs are at debug. -quiet raises the
// level to warn, keeping the daemon silent in normal operation.
func newLogger(format string, quiet bool) (*slog.Logger, error) {
	level := slog.LevelInfo
	if quiet {
		level = slog.LevelWarn
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}
