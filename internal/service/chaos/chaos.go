// Package chaos is hvcd's deterministic service-chaos harness: a seeded
// fault injector that plugs into the durable result store's write hooks,
// plus the test suite (make chaos, race-enabled) that drives a live
// daemon through injected disk write errors, torn records, jobs blowing
// their deadlines and clients disconnecting mid-stream, and asserts the
// robustness contract — no corrupt record is ever served, no watcher
// deadlocks, and the daemon converges back to healthy once the faults
// stop.
//
// Determinism: faults fire on a fixed write cadence (every Nth write)
// and fault parameters (torn-write offsets, flipped bits) come from one
// rand.Rand seeded at construction, so a failing chaos run replays
// exactly from its seed.
package chaos

import (
	"errors"
	"math/rand"
	"sync"

	"hybridvc/internal/service/store"
)

// ErrInjected is the error every injected disk-write fault returns, so
// tests (and logs) can tell injected failures from real ones.
var ErrInjected = errors.New("chaos: injected disk write error")

// Options selects the faults and their cadence. Cadences are 1-based
// counts over store writes: Every=3 means writes 3, 6, 9, … are hit.
// A zero cadence disables that fault.
type Options struct {
	// Seed drives all randomized fault parameters.
	Seed int64
	// FailWriteEvery makes every Nth Put fail outright with ErrInjected
	// before touching the disk (a full-disk / EIO stand-in).
	FailWriteEvery int
	// TearWriteEvery truncates every Nth Put's framed record at a seeded
	// offset before it hits the disk (a torn / partial write).
	TearWriteEvery int
	// FlipBitEvery flips one seeded bit in every Nth Put's framed record
	// (silent media corruption).
	FlipBitEvery int
}

// Counts reports what the injector actually did.
type Counts struct {
	Writes int // store writes observed
	Failed int // writes failed with ErrInjected
	Torn   int // writes truncated
	Flipped int // writes bit-flipped
	// Keys affected per fault, in injection order.
	FailedKeys, TornKeys, FlippedKeys []string
}

// Injector produces the store hooks. One injector serves one store; it
// is safe for concurrent Puts.
type Injector struct {
	opts Options

	mu      sync.Mutex
	rng     *rand.Rand
	n       int // writes seen (BeforeWrite calls)
	stopped bool
	counts  Counts
	// fate decided in BeforeWrite, consumed by TransformRecord of the
	// same Put (keyed so concurrent Puts cannot cross wires).
	fates map[string]byte
}

const (
	fateTear = byte(iota + 1)
	fateFlip
)

// New builds an injector from seeded options.
func New(o Options) *Injector {
	return &Injector{
		opts:  o,
		rng:   rand.New(rand.NewSource(o.Seed)),
		fates: make(map[string]byte),
	}
}

// StoreHooks returns the hooks to place in service.Config.StoreHooks.
func (in *Injector) StoreHooks() store.Hooks {
	return store.Hooks{
		BeforeWrite:     in.beforeWrite,
		TransformRecord: in.transform,
	}
}

// StopFaults disables all injection from now on — the "faults stop"
// phase of a convergence test. Counters keep their totals.
func (in *Injector) StopFaults() {
	in.mu.Lock()
	in.stopped = true
	in.mu.Unlock()
}

// Counts snapshots what fired so far.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	c := in.counts
	c.FailedKeys = append([]string(nil), in.counts.FailedKeys...)
	c.TornKeys = append([]string(nil), in.counts.TornKeys...)
	c.FlippedKeys = append([]string(nil), in.counts.FlippedKeys...)
	return c
}

// every reports whether the nth (1-based) write falls on the cadence.
func every(n, cadence int) bool { return cadence > 0 && n%cadence == 0 }

func (in *Injector) beforeWrite(key string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.stopped {
		return nil
	}
	in.n++
	in.counts.Writes++
	switch {
	case every(in.n, in.opts.FailWriteEvery):
		in.counts.Failed++
		in.counts.FailedKeys = append(in.counts.FailedKeys, key)
		return ErrInjected
	case every(in.n, in.opts.TearWriteEvery):
		in.fates[key] = fateTear
	case every(in.n, in.opts.FlipBitEvery):
		in.fates[key] = fateFlip
	}
	return nil
}

func (in *Injector) transform(key string, encoded []byte) []byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	fate := in.fates[key]
	delete(in.fates, key)
	if in.stopped || fate == 0 || len(encoded) == 0 {
		return encoded
	}
	switch fate {
	case fateTear:
		in.counts.Torn++
		in.counts.TornKeys = append(in.counts.TornKeys, key)
		return encoded[:in.rng.Intn(len(encoded))]
	case fateFlip:
		in.counts.Flipped++
		in.counts.FlippedKeys = append(in.counts.FlippedKeys, key)
		mangled := append([]byte(nil), encoded...)
		// Flip inside the back half — always checksummed payload, never
		// the header's unverified reserved bytes.
		half := len(mangled) / 2
		mangled[half+in.rng.Intn(len(mangled)-half)] ^= 1 << in.rng.Intn(8)
		return mangled
	}
	return encoded
}
