package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hybridvc"
	"hybridvc/internal/sim"
)

func TestRunnerOrderingAndValues(t *testing.T) {
	const n = 40
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Label: fmt.Sprintf("cell-%d", i),
			Fn:    func() (any, error) { return i * i, nil },
		}
	}
	defer SetJobs(SetJobs(7))
	res, err := runCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Value.(int) != i*i {
			t.Fatalf("slot %d holds %v, want %d", i, r.Value, i*i)
		}
	}
}

func TestRunnerPanicBecomesError(t *testing.T) {
	cells := []Cell{
		{Label: "good", Fn: func() (any, error) { return 1, nil }},
		{Label: "boom", Fn: func() (any, error) { panic("exploded") }},
		{Label: "also-good", Fn: func() (any, error) { return 3, nil }},
		{Label: "bad", Fn: func() (any, error) { return nil, errors.New("bad cell") }},
	}
	res, err := runCells(cells)
	if err == nil {
		t.Fatal("panicking cell produced no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"boom"`) || !strings.Contains(msg, "exploded") {
		t.Errorf("error does not identify the panicking cell: %v", msg)
	}
	if !strings.Contains(msg, `"bad"`) || !strings.Contains(msg, "bad cell") {
		t.Errorf("error does not include the failing cell: %v", msg)
	}
	// Healthy cells still produce results.
	if res[0].Value.(int) != 1 || res[2].Value.(int) != 3 {
		t.Error("healthy cells lost their results")
	}
	if res[1].Value != nil || res[3].Value != nil {
		t.Error("failed cells left non-nil values")
	}
}

func TestRunnerSystemCellErrors(t *testing.T) {
	_, err := runCells([]Cell{{
		Label:        "bad-org",
		Config:       hybridvc.Config{Org: "bogus"},
		Workloads:    []string{"stream"},
		Instructions: 100,
	}})
	if err == nil || !strings.Contains(err.Error(), "bad-org") {
		t.Errorf("bad organization not reported: %v", err)
	}
	_, err = runCells([]Cell{{
		Label:        "bad-workload",
		Workloads:    []string{"no-such-workload"},
		Instructions: 100,
	}})
	if err == nil || !strings.Contains(err.Error(), "bad-workload") {
		t.Errorf("bad workload not reported: %v", err)
	}
}

func TestRunnerExtract(t *testing.T) {
	res, err := runCells([]Cell{{
		Label:        "extract",
		Config:       hybridvc.Config{Org: hybridvc.Baseline, LLCBytes: 256 << 10},
		Workloads:    []string{"stream"},
		Instructions: 2000,
		Extract: func(sys *hybridvc.System, rep sim.Report) (any, error) {
			return rep.Instructions, nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Value.(uint64) != 2000 {
		t.Errorf("extract saw %v instructions, want 2000", res[0].Value)
	}
	if res[0].Report.Cycles == 0 {
		t.Error("report missing")
	}
}

func TestSetJobsClamps(t *testing.T) {
	prev := SetJobs(3)
	if Jobs() != 3 {
		t.Errorf("Jobs() = %d, want 3", Jobs())
	}
	SetJobs(0) // resets to GOMAXPROCS
	if Jobs() < 1 {
		t.Errorf("Jobs() = %d after reset", Jobs())
	}
	SetJobs(prev)
}

// TestRunnerDeterminism asserts the acceptance criterion: the parallel
// runner produces byte-identical tables regardless of worker count.
// Figure 9 at Quick scale exercises the full system path (timing cores,
// every organization class).
func TestRunnerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 9 sweep twice")
	}
	skipIfRace(t) // TestRunnerSmallDeterminism keeps -race coverage
	render := func(jobs int) string {
		defer SetJobs(SetJobs(jobs))
		_, table, err := Figure9(Quick)
		if err != nil {
			t.Fatal(err)
		}
		return table.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("jobs=1 and jobs=8 tables differ:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
			serial, parallel)
	}
}

// TestRunnerSmallDeterminism is the race-friendly determinism check: a
// small grid of real system cells (every cell builds its own kernel,
// caches and timing core) must produce identical results at jobs=1 and
// jobs=4. It runs under -race, exercising the worker pool end to end.
func TestRunnerSmallDeterminism(t *testing.T) {
	grid := func() []Cell {
		var cells []Cell
		for _, wl := range []string{"stream", "omnetpp"} {
			for _, org := range []hybridvc.Organization{hybridvc.Baseline, hybridvc.HybridManySegSC} {
				cells = append(cells, Cell{
					Label:        fmt.Sprintf("smoke/%s/%s", wl, org),
					Config:       hybridvc.Config{Org: org, LLCBytes: 256 << 10},
					Workloads:    []string{wl},
					Instructions: 2000,
				})
			}
		}
		return cells
	}
	run := func(jobs int) []uint64 {
		defer SetJobs(SetJobs(jobs))
		res, err := runCells(grid())
		if err != nil {
			t.Fatal(err)
		}
		var cycles []uint64
		for _, r := range res {
			cycles = append(cycles, r.Report.Cycles)
		}
		return cycles
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("cell %d: jobs=1 got %d cycles, jobs=4 got %d", i, serial[i], parallel[i])
		}
		if serial[i] == 0 {
			t.Errorf("cell %d: zero cycles", i)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"table1", "table2", "table3", "fig4", "fig7a", "fig7b",
		"fig9", "fig10", "fig11", "multicore", "consolidation", "latency", "ablations", "xarch", "parity", "faults"}
	if len(names) != len(want) {
		t.Fatalf("registry has %d experiments %v, want %d", len(names), names, len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("registry[%d] = %q, want %q", i, names[i], n)
		}
	}
	for _, n := range names {
		e, ok := Lookup(n)
		if !ok || e.Run == nil || e.Description == "" {
			t.Errorf("experiment %q incomplete", n)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup found a nonexistent experiment")
	}
	if !strings.Contains(Usage(), "fig9, ") || !strings.HasSuffix(Usage(), "all") {
		t.Errorf("Usage() malformed: %q", Usage())
	}
}

func TestRegistryRunsQuickExperiment(t *testing.T) {
	e, ok := Lookup("latency")
	if !ok {
		t.Fatal("latency experiment missing")
	}
	tables, err := e.Run(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || !strings.Contains(tables[0].String(), "walk") {
		t.Errorf("latency tables malformed: %v", tables)
	}
}
