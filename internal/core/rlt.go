package core

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/energy"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/pipeline"
	"hybridvc/internal/stats"
	"hybridvc/internal/tlb"
)

// recordPages is how many consecutive pages one reverse-lookup record
// block covers: a 64-byte line holds eight 8-byte records.
const recordPages = 8

// rltWalkLatency is the cost of rebuilding a record block from the OS
// synonym-range table when neither the record cache nor the data caches
// hold it (an OS-structure lookup off the critical L1 path).
const rltWalkLatency = 40

// RLTVC is a virtually tagged hierarchy whose synonym detection uses an
// exact reverse-lookup table instead of the hybrid design's Bloom filter:
// a per-core record cache answers "is this page a synonym?" precisely, its
// misses probe the data caches for the record block (a typed-payload line
// bitmap covering recordPages pages), and only a full miss rebuilds the
// record from the OS synonym ranges. Exactness trades the Bloom filter's
// false positives for record storage that competes with data in the LLC —
// the fig4/table2-style comparison this organization exists for. Delayed
// translation (post-LLC) reuses the embedded hybrid MMU's backend.
type RLTVC struct {
	*HybridMMU
	*pipeline.Engine
	rlt []*tlb.TLB

	// RLTWalks counts record rebuilds from the OS ranges (both the record
	// cache and the data caches missed).
	RLTWalks stats.Counter
	// CachedRecordHits counts record-cache misses served by a cached
	// record block instead of a rebuild.
	CachedRecordHits stats.Counter
	// RecordFills counts record blocks installed after rebuilds.
	RecordFills stats.Counter
	// RecordEvictions counts record blocks pushed out of the LLC by data
	// (or flushed on synonym-range changes).
	RecordEvictions stats.Counter
}

// NewRLTVC builds the organization over an inner hybrid MMU (whose Bloom
// filter goes unused on the front end, but whose virtual routing, delayed
// translation and writeback machinery are reused verbatim) and registers
// as the kernel's sink and the hierarchy's payload-eviction listener.
func NewRLTVC(cfg HybridConfig, k *osmodel.Kernel) *RLTVC {
	m := &RLTVC{HybridMMU: NewHybridMMU(cfg, k)}
	m.Engine = pipeline.NewEngine(m.HybridMMU.BaseState(), m, nil, m.HybridMMU)
	for i := 0; i < cfg.Hier.NumCores; i++ {
		m.rlt = append(m.rlt, tlb.New(tlb.Config{
			Name: fmt.Sprintf("rlt[%d]", i), Entries: 64, Ways: 4, Latency: 1,
		}))
	}
	m.Hier.SetPayloadListener(m)
	k.AttachSink(m)
	return m
}

// Name implements MemSystem.
func (m *RLTVC) Name() string { return "rlt-vc" }

// RLT exposes core i's record cache.
func (m *RLTVC) RLT(core int) *tlb.TLB { return m.rlt[core] }

// recordGroup returns the base VPN of the record block covering vpn.
func recordGroup(vpn uint64) uint64 { return vpn &^ (recordPages - 1) }

// recordName is the cache name of the record block covering (asid, vpn).
func recordName(asid addr.ASID, vpn uint64) addr.Name {
	return addr.PayloadName(addr.PayloadSynRecord, asid, addr.PageToVA(recordGroup(vpn)))
}

// recordBitmap rebuilds a record block's payload from the authoritative OS
// synonym ranges: bit i is set when page group+i lies in a live range.
func recordBitmap(proc *osmodel.Process, group uint64) uint64 {
	var bits uint64
	for i := uint64(0); i < recordPages; i++ {
		va := addr.PageToVA(group + i)
		for _, r := range proc.SynonymRanges {
			if va >= r.Start && va < r.Start+addr.VA(r.Length) {
				bits |= 1 << i
				break
			}
		}
	}
	return bits
}

// lookupRecord classifies vpn after a record-cache miss: it probes the
// data caches for the record block and rebuilds it from the OS ranges on a
// full miss, charging the latency into res.
func (m *RLTVC) lookupRecord(req *Request, res *Result) bool {
	vpn := req.VA.Page()
	name := recordName(req.Proc.ASID, vpn)
	payload, lat, hit := m.Hier.ProbePayload(req.Core, name)
	res.Latency += lat
	if p := m.Probe(); p != nil {
		p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBXlatCache, Hit: hit})
	}
	if hit {
		m.CachedRecordHits.Inc()
	} else {
		m.RLTWalks.Inc()
		m.Acc.Access(energy.SegmentTable, 1)
		res.Latency += rltWalkLatency
		payload = recordBitmap(req.Proc, recordGroup(vpn))
		m.Hier.FillPayload(req.Core, name, payload)
		m.RecordFills.Inc()
	}
	return payload>>(vpn-recordGroup(vpn))&1 != 0
}

// Route implements pipeline.FrontEnd. The record cache replaces the Bloom
// filter probe (same overlapped position, same energy component), and its
// verdict is exact: a synonym classification is always true, so the
// false-positive path never runs and the FalsePositives counter stays zero
// by construction.
func (m *RLTVC) Route(req *Request, res *Result) pipeline.Decision {
	m.Acc.Access(energy.SynonymFilter, 1)
	rc := m.rlt[req.Core]
	vpn := req.VA.Page()
	e, hit := rc.Lookup(req.Proc.ASID, vpn)
	if p := m.Probe(); p != nil {
		p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBRLT, Hit: hit})
	}
	var isSyn bool
	if hit {
		isSyn = !e.NonSynonym
	} else {
		isSyn = m.lookupRecord(req, res)
	}
	if p := m.Probe(); p != nil {
		p.Filter(pipeline.FilterEvent{Core: req.Core, Candidate: isSyn})
	}
	if !isSyn {
		if !hit {
			m.insertNonSynonym(req.Core, req.Proc, vpn)
		}
		m.NonSynonymAccesses.Inc()
		return m.routeVirtual(req, res)
	}
	m.SynonymCandidates.Inc()
	m.Acc.Access(energy.SynonymTLB, 1)
	res.Latency += rc.Config().Latency
	if !hit {
		leaf, lat, ok := m.TimedWalk(req.Core, req.Proc, req.VA.PageAligned())
		res.Latency += lat
		if !ok {
			fl, fixed := m.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
			res.Latency += fl
			res.Fault = true
			if !fixed {
				return pipeline.DoneNow()
			}
			leaf, lat, ok = m.TimedWalk(req.Core, req.Proc, req.VA.PageAligned())
			res.Latency += lat
			if !ok {
				return pipeline.DoneNow()
			}
		}
		ne := tlb.Entry{
			ASID: req.Proc.ASID, VPN: vpn, PFN: leaf.FrameFor4K(req.VA),
			Perm: leaf.Perm, Shared: leaf.Shared,
		}
		rc.Insert(ne)
		e = &ne
	}
	m.TrueSynonymAccesses.Inc()
	if req.Kind == cache.Write && !e.Perm.AllowsWrite() {
		fl, fixed := m.HandleFault(req.Proc, req.VA, true)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		// The fault remapped the page privately (CoW); retry as a fresh
		// access (the shootdown already removed the stale entry).
		m.Retry(req, res)
		return pipeline.DoneNow()
	}
	pa := addr.FrameToPA(e.PFN) + addr.PA(req.VA.PageOffset())
	return pipeline.GoPhysical(pa, e.Perm)
}

// insertNonSynonym caches a page's non-synonym classification, carrying
// the page-table frame so the entry audits cleanly against the tables.
// Unmapped pages (demand paging still pending) are not cached: the fault
// path runs first and the next access retries.
func (m *RLTVC) insertNonSynonym(core int, proc *osmodel.Process, vpn uint64) {
	pte, ok := proc.PT.Lookup(addr.PageToVA(vpn))
	if !ok {
		return
	}
	pfn := pte.Frame
	if pte.Huge {
		pfn |= vpn & (addr.HugePageSize/addr.PageSize - 1)
	}
	m.rlt[core].Insert(tlb.Entry{
		ASID: proc.ASID, VPN: vpn, PFN: pfn,
		Perm: pte.Perm, Shared: pte.Shared, NonSynonym: true,
	})
}

// RouteBatch implements pipeline.BatchFrontEnd: record-cache hits decode
// purely (virtual for non-synonyms, physical for synonyms); record-cache
// misses touch the hierarchy (record probe or rebuild) and stop the run.
func (m *RLTVC) RouteBatch(reqs []Request, res []Result, dec []pipeline.Decision) int {
	i := 0
	for ; i < len(reqs); i++ {
		if i%permPrefetchBlock == 0 {
			m.prefetchPerms(reqs[i:])
		}
		req := &reqs[i]
		isWrite := req.Kind == cache.Write
		rc := m.rlt[req.Core]
		e, hit := rc.Probe(req.Proc.ASID, req.VA.Page())
		if !hit {
			break
		}
		if e.NonSynonym {
			perm := m.fillPerm(req.Proc, req.VA)
			if perm == addr.PermNone || (isWrite && !perm.AllowsWrite()) {
				break
			}
			m.Acc.Access(energy.SynonymFilter, 1)
			rc.Touch(e)
			m.NonSynonymAccesses.Inc()
			dec[i] = pipeline.GoVirtual(perm)
			continue
		}
		if isWrite && !e.Perm.AllowsWrite() {
			break
		}
		m.Acc.Access(energy.SynonymFilter, 1)
		rc.Touch(e)
		m.SynonymCandidates.Inc()
		m.TrueSynonymAccesses.Inc()
		m.Acc.Access(energy.SynonymTLB, 1)
		res[i].Latency += rc.Config().Latency
		dec[i] = pipeline.GoPhysical(addr.FrameToPA(e.PFN)+addr.PA(req.VA.PageOffset()), e.Perm)
	}
	return i
}

// PayloadEvicted implements cache.PayloadListener: a record block left the
// LLC (data pushed it out, or a flush below removed it).
func (m *RLTVC) PayloadEvicted(addr.Name, uint64) { m.RecordEvictions.Inc() }

// PayloadCoherence audits one cached record block against the live OS
// synonym ranges (the fault checker's PayloadCoherence hook).
func (m *RLTVC) PayloadCoherence(n addr.Name, payload uint64) error {
	if n.Kind != addr.PayloadSynRecord {
		return fmt.Errorf("rlt-vc: unexpected payload kind in block %s", n)
	}
	proc := m.kernel.Process(n.ASID)
	if proc == nil {
		return fmt.Errorf("rlt-vc: record block %s names dead address space", n)
	}
	if want := recordBitmap(proc, addr.VA(n.Addr).Page()); payload != want {
		return fmt.Errorf("rlt-vc: record block %s bitmap %#x disagrees with synonym ranges (%#x)",
			n, payload, want)
	}
	return nil
}

// flushRecords removes every cached record block of the address space,
// with notification.
func (m *RLTVC) flushRecords(asid addr.ASID) {
	var doomed []addr.Name
	m.Hier.ForEachPayload(func(n addr.Name, _ uint64) {
		if n.Kind == addr.PayloadSynRecord && n.ASID == asid {
			doomed = append(doomed, n)
		}
	})
	for _, n := range doomed {
		m.Hier.FlushName(n)
	}
}

// --- osmodel.ShootdownSink (extends the inner hybrid MMU's handling) ---

// TLBShootdown additionally invalidates the page in every record cache and
// flushes its record block: the remap may change the page's synonym
// classification, so the cached record must be rebuilt.
func (m *RLTVC) TLBShootdown(asid addr.ASID, vpn uint64) {
	m.HybridMMU.TLBShootdown(asid, vpn)
	for _, rc := range m.rlt {
		rc.Shootdown(asid, vpn)
	}
	m.Hier.FlushName(recordName(asid, vpn))
}

// FilterUpdate fires when an address space's synonym ranges changed: the
// exact records are rebuilt lazily, so every cached classification of the
// space is dropped.
func (m *RLTVC) FilterUpdate(asid addr.ASID) {
	m.HybridMMU.FilterUpdate(asid)
	for _, rc := range m.rlt {
		rc.FlushASID(asid)
	}
	m.flushRecords(asid)
}

// FlushASID additionally drops the address space's record-cache entries
// (its record blocks go with the inner hierarchy ASID flush).
func (m *RLTVC) FlushASID(asid addr.ASID) {
	m.HybridMMU.FlushASID(asid)
	for _, rc := range m.rlt {
		rc.FlushASID(asid)
	}
}

var _ cache.PayloadListener = (*RLTVC)(nil)
