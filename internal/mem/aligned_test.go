package mem

import (
	"math/rand"
	"testing"

	"hybridvc/internal/addr"
)

func TestAllocContiguousAlignedBasic(t *testing.T) {
	a := NewAllocator(1024 * addr.PageSize)
	// Misalign the pool: take 3 frames first.
	a.AllocContiguous(3)
	pa, ok := a.AllocContiguousAligned(512, 512)
	if !ok {
		t.Fatal("aligned alloc failed")
	}
	if pa.Frame()%512 != 0 {
		t.Fatalf("start frame %d not 512-aligned", pa.Frame())
	}
	// The unaligned head gap [3, 512) must remain allocatable.
	if gap, ok := a.AllocContiguous(509); !ok || gap != addr.FrameToPA(3) {
		t.Errorf("head gap lost: %#x ok=%v", uint64(gap), ok)
	}
}

func TestAllocContiguousAlignedEdges(t *testing.T) {
	a := NewAllocator(64 * addr.PageSize)
	if _, ok := a.AllocContiguousAligned(0, 8); ok {
		t.Error("zero-frame aligned alloc succeeded")
	}
	if _, ok := a.AllocContiguousAligned(8, 0); ok {
		t.Error("zero-alignment alloc succeeded")
	}
	if _, ok := a.AllocContiguousAligned(128, 8); ok {
		t.Error("oversized aligned alloc succeeded")
	}
	// Exact fit from frame 0.
	pa, ok := a.AllocContiguousAligned(64, 8)
	if !ok || pa != 0 {
		t.Fatalf("exact fit: %#x ok=%v", uint64(pa), ok)
	}
	if a.FreeFrames() != 0 {
		t.Error("frames unaccounted")
	}
	a.Free(pa, 64)
	if a.FreeFrames() != 64 || a.NumFreeExtents() != 1 {
		t.Error("free after aligned alloc broken")
	}
}

func TestAllocAlignedRandomizedConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := NewAllocator(4096 * addr.PageSize)
	type alloc struct {
		pa addr.PA
		n  uint64
	}
	var live []alloc
	owner := map[uint64]bool{}
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			n := uint64(rng.Intn(32) + 1)
			align := uint64(1) << uint(rng.Intn(6)) // 1..32
			var pa addr.PA
			var ok bool
			if rng.Intn(2) == 0 {
				pa, ok = a.AllocContiguousAligned(n, align)
				if ok && pa.Frame()%align != 0 {
					t.Fatalf("unaligned result: frame %d align %d", pa.Frame(), align)
				}
			} else {
				pa, ok = a.AllocContiguous(n)
			}
			if !ok {
				continue
			}
			for f := pa.Frame(); f < pa.Frame()+n; f++ {
				if owner[f] {
					t.Fatalf("double allocation of frame %d", f)
				}
				owner[f] = true
			}
			live = append(live, alloc{pa, n})
		} else {
			i := rng.Intn(len(live))
			al := live[i]
			a.Free(al.pa, al.n)
			for f := al.pa.Frame(); f < al.pa.Frame()+al.n; f++ {
				delete(owner, f)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if a.AllocatedFrames() != uint64(len(owner)) {
			t.Fatalf("step %d: allocated %d tracked %d", step, a.AllocatedFrames(), len(owner))
		}
	}
}
