package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridvc"
	"hybridvc/experiments"
	"hybridvc/internal/service/cluster"
	"hybridvc/internal/service/store"
	"hybridvc/internal/sim"
	"hybridvc/internal/telemetry"
)

// Config parameterizes a Server. The zero value is usable: every field
// defaults sensibly in New.
type Config struct {
	// Workers sizes the job worker pool (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-job queue; a submission that finds
	// it full is rejected with 429 (default 64).
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache
	// (default 1024).
	CacheEntries int

	// RatePerSec limits each client to this many submissions per second
	// with bursts of RateBurst (0 disables limiting; burst default 10).
	RatePerSec float64
	RateBurst  int

	// Resilience knobs applied to every job, reusing the experiments
	// runner machinery: per-cell timeout, transient retries with linear
	// backoff.
	CellTimeout  time.Duration
	Retries      int
	RetryBackoff time.Duration

	// SpoolDir holds sweep checkpoint journals, keyed by cache key, so
	// a drained sweep resumes when the same spec is resubmitted
	// (default: a per-process temp dir).
	SpoolDir string

	// StoreDir enables the durable result store: completed results are
	// persisted there (atomic, checksummed — see the store package) and
	// a restarted daemon serves them as warm cache hits with
	// provenance=disk. Empty disables the disk tier; the daemon is then
	// memory-only as before.
	StoreDir string
	// StoreTTL expires store records this long after they were written
	// (default 24h; < 0 disables expiry).
	StoreTTL time.Duration
	// StoreMaxBytes bounds the store size, evicting oldest records
	// first (default 256 MiB; < 0 is unbounded).
	StoreMaxBytes int64
	// StoreHooks inject store write faults; the chaos harness seeds
	// them. Zero value for production.
	StoreHooks store.Hooks

	// JobTimeout is the per-job deadline, armed at submission: a job
	// still unfinished this long after it was accepted — stuck in the
	// queue or executing — is cancelled and lands in the failed state
	// with a deadline-exceeded reason, so watchers always unblock
	// (0 = unbounded).
	JobTimeout time.Duration

	// BreakerQueueWait arms the overload breaker: when jobs wait longer
	// than this in the queue for BreakerTrips consecutive worker
	// pickups, the breaker opens and fresh submissions are shed with
	// 503 + Retry-After for BreakerCooldown while cached, deduplicated
	// and disk-served results keep flowing (0 disables the breaker;
	// trips default 3, cooldown default 5s).
	BreakerQueueWait time.Duration
	BreakerTrips     int
	BreakerCooldown  time.Duration

	// NodeID names this daemon in logs, metrics (hvcd_node_info) and
	// cluster provenance. Default "hvcd"; clustered daemons must give
	// each node a distinct ID.
	NodeID string
	// Cluster enables multi-node operation: on a local cache miss the
	// submit path asks the key's rendezvous owner for the result before
	// simulating, and freshly simulated results are best-effort
	// replicated to their owner. Nil runs the daemon single-node, as
	// before.
	Cluster *cluster.Cluster

	// Logger receives structured request and job-lifecycle logs: one
	// record per lifecycle transition carrying the lineage ID, spec key,
	// org/experiment and stage latencies (nil = silent).
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.RateBurst <= 0 {
		c.RateBurst = 10
	}
	if c.StoreTTL == 0 {
		c.StoreTTL = 24 * time.Hour
	}
	if c.StoreMaxBytes == 0 {
		c.StoreMaxBytes = 256 << 20
	}
	if c.BreakerTrips <= 0 {
		c.BreakerTrips = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.NodeID == "" {
		c.NodeID = "hvcd"
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// metrics are the daemon's counters, served by /metrics and snapshotted
// by MetricsSnapshot. All fields are monotonic except the gauges derived
// at snapshot time.
type metrics struct {
	submitted   atomic.Uint64 // accepted submissions (incl. dedup/cache)
	deduped     atomic.Uint64 // submissions coalesced onto a live job
	simulated   atomic.Uint64 // simulations actually executed
	sweeps      atomic.Uint64 // experiment sweeps actually executed
	failed      atomic.Uint64
	canceled    atomic.Uint64
	rateLimited atomic.Uint64 // submissions rejected 429 by the limiter
	queueFull   atomic.Uint64 // submissions rejected 429 by backpressure
	deadlines   atomic.Uint64 // jobs failed by the per-job deadline
	busy        atomic.Int64  // workers currently executing a job (gauge)

	peerServed   atomic.Uint64 // peer GETs answered with a record
	peerAccepted atomic.Uint64 // peer PUTs (replications) accepted

	// The "completed" counter lives in the telemetry collector: it IS the
	// end-to-end latency histogram's sample count, so the counter and the
	// stage-histogram +Inf buckets reconcile exactly on every scrape.
}

// MetricsSnapshot is the exported counter set (see Server.MetricsSnapshot).
type MetricsSnapshot struct {
	Submitted   uint64 `json:"submitted"`
	Deduped     uint64 `json:"deduped"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheLen    int    `json:"cache_entries"`
	Simulated   uint64 `json:"simulated"`
	Sweeps      uint64 `json:"sweeps"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Canceled    uint64 `json:"canceled"`
	RateLimited uint64 `json:"rate_limited"`
	QueueFull   uint64 `json:"queue_full"`
	QueueDepth  int    `json:"queue_depth"`
	Jobs        int    `json:"jobs"`
	Workers     int    `json:"workers"`
	WorkersBusy int    `json:"workers_busy"`
	Draining    bool   `json:"draining"`
	UptimeSec   int64  `json:"uptime_sec"`

	// DeadlineExceeded counts jobs failed by the per-job deadline (a
	// subset of Failed).
	DeadlineExceeded uint64 `json:"deadline_exceeded"`

	// Overload breaker: state string ("closed", "half-open", "open"),
	// total open transitions, and submissions shed while open.
	BreakerState string `json:"breaker_state"`
	BreakerTrips uint64 `json:"breaker_trips"`
	Shed         uint64 `json:"shed"`

	// Store is the durable-tier counter block; nil when the disk store
	// is disabled.
	Store *store.Metrics `json:"store,omitempty"`

	// NodeID identifies this daemon (always present, "hvcd" by default).
	NodeID string `json:"node_id"`
	// Cluster is the multi-node counter block; nil when clustering is
	// disabled.
	Cluster *ClusterMetrics `json:"cluster,omitempty"`
}

// ClusterMetrics is the multi-node counter block of MetricsSnapshot:
// the cluster package's own counters plus the peer-API serving counters
// that live on the daemon side.
type ClusterMetrics struct {
	Nodes           int    `json:"nodes"`
	PeersHealthy    int    `json:"peers_healthy"`
	Fetches         uint64 `json:"peer_fetches"`
	Hits            uint64 `json:"peer_hits"`
	Misses          uint64 `json:"peer_misses"`
	Errors          uint64 `json:"peer_errors"`
	Skipped         uint64 `json:"peer_skipped"`
	Replicated      uint64 `json:"replicated"`
	ReplicateErrors uint64 `json:"replicate_errors"`
	// Served counts peer GETs this node answered with a record;
	// Accepted counts replication PUTs it installed.
	Served   uint64 `json:"peer_served"`
	Accepted uint64 `json:"peer_accepted"`
}

// Server schedules jobs on a bounded worker pool and answers the HTTP
// API (see Handler). Construct with New, start the workers with Start,
// stop with Drain.
type Server struct {
	cfg     Config
	cache   *resultCache
	store   *store.Store     // durable second tier; nil when disabled
	cluster *cluster.Cluster // multi-node peer tier; nil when disabled
	limiter *rateLimiter
	breaker *breaker
	met     metrics
	tel     *telemetry.Collector
	logger  *slog.Logger

	// lifetime is the parent context of every job; drain cancels it
	// after the grace period.
	lifetime context.Context
	endLife  context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job // by ID
	byKey    map[string]*Job // latest job per cache key (dedup index)
	queue    chan *Job
	draining bool
	nextID   atomic.Uint64
	started  time.Time

	// sweepMu serializes sweep jobs: the experiments package's
	// resilience knobs are process-wide, so concurrent sweeps would
	// trample each other's cancellation context and checkpoint journal.
	// A sweep is internally parallel across its cells (experiments.Jobs()
	// workers), so one at a time keeps the machine busy regardless.
	sweepMu sync.Mutex

	wg sync.WaitGroup
}

// New builds a server. Call Start to launch the worker pool.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if cfg.SpoolDir == "" {
		dir, err := os.MkdirTemp("", "hvcd-spool-")
		if err != nil {
			return nil, fmt.Errorf("service: spool dir: %w", err)
		}
		cfg.SpoolDir = dir
	} else if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: spool dir: %w", err)
	}
	var disk *store.Store
	if cfg.StoreDir != "" {
		var err error
		disk, err = store.Open(store.Options{
			Dir:      cfg.StoreDir,
			TTL:      cfg.StoreTTL,
			MaxBytes: cfg.StoreMaxBytes,
			Hooks:    cfg.StoreHooks,
		})
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:      cfg,
		cache:    newResultCache(cfg.CacheEntries),
		store:    disk,
		cluster:  cfg.Cluster,
		limiter:  newRateLimiter(cfg.RatePerSec, cfg.RateBurst),
		breaker:  newBreaker(cfg.BreakerQueueWait, cfg.BreakerTrips, cfg.BreakerCooldown),
		tel:      telemetry.NewCollector(),
		logger:   cfg.Logger,
		lifetime: ctx,
		endLife:  cancel,
		jobs:     make(map[string]*Job),
		byKey:    make(map[string]*Job),
		queue:    make(chan *Job, cfg.QueueDepth),
		started:  time.Now(),
	}, nil
}

// Store returns the durable result store (nil when disabled).
func (s *Server) Store() *store.Store { return s.store }

// Cluster returns the multi-node cluster view (nil when disabled).
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// NodeID returns this daemon's node identity.
func (s *Server) NodeID() string { return s.cfg.NodeID }

// Telemetry returns the daemon's stage-latency collector (the /metrics
// Prometheus exposition renders it).
func (s *Server) Telemetry() *telemetry.Collector { return s.tel }

// Start launches the worker pool (and, when clustering is enabled, the
// peer health probes). It must be called exactly once.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	if s.cluster != nil {
		s.cluster.Start()
	}
	s.logger.Info("hvcd started",
		"node", s.cfg.NodeID, "clustered", s.cluster != nil,
		"workers", s.cfg.Workers, "queue_depth", s.cfg.QueueDepth,
		"cache_entries", s.cfg.CacheEntries, "spool", s.cfg.SpoolDir)
}

// Submission outcomes beyond plain errors.
var (
	// ErrQueueFull is returned when the bounded queue rejects a job —
	// the HTTP layer maps it to 429 with Retry-After.
	ErrQueueFull = errors.New("job queue is full")
	// ErrDraining is returned once Drain has begun — mapped to 503.
	ErrDraining = errors.New("server is draining")
	// ErrOverloaded is returned while the overload breaker is open:
	// fresh submissions are shed (mapped to 503 + Retry-After) while
	// deduplicated, cached and disk-served results keep flowing.
	ErrOverloaded = errors.New("server overloaded: breaker open, retry later")
)

// SubmitResult reports how a submission was satisfied.
type SubmitResult struct {
	Job *Job
	// Fresh means a new job was queued; false means the submission was
	// coalesced onto an existing job or served from the result cache.
	Fresh bool
	// Lineage is this submission's lineage ID (distinct per request even
	// when the job is shared); Origin is the lineage of the run that
	// produced — or will produce — the result: the request's own lineage
	// for fresh jobs, the live job's for coalesced submissions, and the
	// producing run's for cache hits.
	Lineage string
	Origin  string
}

// Submit schedules a job spec under a freshly minted lineage ID. See
// SubmitWithLineage.
func (s *Server) Submit(spec JobSpec) (SubmitResult, error) {
	return s.SubmitWithLineage(spec, telemetry.NewLineageID())
}

// SubmitWithLineage validates, normalizes and schedules a job spec.
// Identical specs deduplicate through the content-addressed key: a key
// with a live (queued/running/done) job coalesces onto it, a key with a
// cached result gets a job born done, and only genuinely new work is
// enqueued. In a cluster, a key every local tier misses is first asked
// of its rendezvous owner node; only when the owner has nothing (or is
// unreachable) does the simulation run here. A full queue returns
// ErrQueueFull; a draining server ErrDraining. lineage identifies this
// submission in logs and traces (empty mints one).
func (s *Server) SubmitWithLineage(spec JobSpec, lineage string) (SubmitResult, error) {
	if lineage == "" {
		lineage = telemetry.NewLineageID()
	}
	arrived := time.Now()
	if err := spec.Normalize(); err != nil {
		return SubmitResult{}, err
	}
	key := spec.CacheKey()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return SubmitResult{}, ErrDraining
	}
	s.met.submitted.Add(1)
	if res, ok := s.serveLocalLocked(spec, key, lineage, arrived, true); ok {
		s.mu.Unlock()
		return res, nil
	}
	s.mu.Unlock()

	// Every local tier missed. In a cluster, ask the key's rendezvous
	// owner for the record before burning a worker on a simulation some
	// other node may already have run. The fetch happens outside s.mu —
	// it is a network call and must not stall unrelated submissions.
	if rec, ok := s.fetchFromOwner(key); ok {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.draining {
			return SubmitResult{}, ErrDraining
		}
		// A racing submission may have installed the key while we were
		// on the network; prefer the local copy.
		if res, ok := s.serveLocalLocked(spec, key, lineage, arrived, false); ok {
			return res, nil
		}
		return s.installPeerLocked(spec, key, lineage, arrived, rec), nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining { // drain may have begun during the peer fetch
		return SubmitResult{}, ErrDraining
	}
	if res, ok := s.serveLocalLocked(spec, key, lineage, arrived, false); ok {
		return res, nil
	}

	// Only genuinely fresh work reaches the breaker: an open breaker
	// sheds new simulations but everything above — dedup, memory, disk,
	// peer — still serves.
	if !s.breaker.admit() {
		return SubmitResult{}, ErrOverloaded
	}

	job := newJob(s.newID(), key, lineage, spec, s.lifetime)
	select {
	case s.queue <- job:
	default:
		s.met.queueFull.Add(1)
		job.cancel()
		return SubmitResult{}, ErrQueueFull
	}
	job.armDeadline(s.cfg.JobTimeout)
	s.register(job)
	s.logJob(job, "", "submitted")
	return SubmitResult{Job: job, Fresh: true, Lineage: lineage, Origin: lineage}, nil
}

// serveLocalLocked tries every local tier for key and reports whether
// the submission was satisfied. The caller holds s.mu. count=false is
// the post-peer-fetch recheck: it must not re-count a cache miss the
// first pass already recorded, and it skips the disk tier — any record
// that arrived in the interim (racing submission, replication PUT) was
// also promoted into the memory LRU, which the peek covers.
func (s *Server) serveLocalLocked(spec JobSpec, key, lineage string, arrived time.Time, count bool) (SubmitResult, bool) {
	// Coalesce onto a live job with the same key: queued or running
	// (the submitter shares its id and will see its result), or done
	// (its result is the cached result). Failed/canceled jobs do not
	// absorb resubmissions — the user is asking to try again.
	if prev, ok := s.byKey[key]; ok {
		switch prev.State() {
		case StateQueued, StateRunning:
			s.met.deduped.Add(1)
			s.logJob(prev, lineage, "submitted",
				"coalesced", true, "origin", prev.Lineage)
			return SubmitResult{Job: prev, Lineage: lineage, Origin: prev.Lineage}, true
		case StateDone:
			s.met.deduped.Add(1)
			s.cache.hits.Add(1)
			s.tel.ObserveCacheServe(time.Since(arrived))
			s.logJob(prev, lineage, "submitted",
				"cache_hit", true, "origin", prev.Lineage)
			return SubmitResult{Job: prev, Lineage: lineage, Origin: prev.Lineage}, true
		}
	}

	// A cold key may still hit the result cache (the original job aged
	// out of the registry, or the key was evicted from byKey on retry).
	var e *cacheEntry
	var ok bool
	if count {
		e, ok = s.cache.get(key)
	} else {
		e, ok = s.cache.peek(key)
	}
	if ok {
		job := newJob(s.newID(), key, lineage, spec, s.lifetime)
		job.finishCached(e.reportJSON, e.tables, e.intervals, e.lineage, "memory", e.originNode)
		s.register(job)
		s.tel.ObserveCacheServe(time.Since(arrived))
		s.logJob(job, "", "submitted", "cache_hit", true, "provenance", "memory", "origin", e.lineage)
		return SubmitResult{Job: job, Lineage: lineage, Origin: e.lineage}, true
	}

	// Second tier: the durable store. A hit means some earlier daemon
	// life produced this exact result — serve it, promote it into the
	// memory LRU, and record provenance=disk in the lineage chain. A
	// miss is an in-memory index lookup, not disk I/O.
	if count && s.store != nil {
		if rec, ok := s.store.Get(key); ok {
			e := &cacheEntry{
				reportJSON: rec.Report, tables: rec.Tables,
				intervals: rec.Intervals, lineage: rec.Lineage,
				originNode: rec.Node,
			}
			s.cache.put(key, e)
			job := newJob(s.newID(), key, lineage, spec, s.lifetime)
			job.finishCached(e.reportJSON, e.tables, e.intervals, e.lineage, "disk", e.originNode)
			s.register(job)
			s.tel.ObserveCacheServe(time.Since(arrived))
			s.logJob(job, "", "submitted", "cache_hit", true, "provenance", "disk", "origin", e.lineage)
			return SubmitResult{Job: job, Lineage: lineage, Origin: e.lineage}, true
		}
	}
	return SubmitResult{}, false
}

// fetchFromOwner asks the key's rendezvous owner for its record over
// the peer API. It returns false — meaning "simulate locally" — when
// clustering is off, this node owns the key itself, the owner is
// already marked unhealthy (counted as skipped), or the fetch misses
// or fails: a degraded owner must never fail the submission.
func (s *Server) fetchFromOwner(key string) (store.Record, bool) {
	c := s.cluster
	if c == nil {
		return store.Record{}, false
	}
	owner := c.OwnerOf(key)
	if owner.ID == c.NodeID() {
		return store.Record{}, false
	}
	if !c.Healthy(owner.ID) {
		c.SkipUnhealthy()
		return store.Record{}, false
	}
	rec, ok, err := c.Fetch(s.lifetime, owner, key)
	if err != nil || !ok {
		return store.Record{}, false
	}
	return rec, true
}

// installPeerLocked serves a submission from a record fetched off the
// key's owner: the record is promoted into the local memory LRU and
// disk store (so the next hit is local) and the born-done job carries
// provenance "peer" with the originating node. The caller holds s.mu.
func (s *Server) installPeerLocked(spec JobSpec, key, lineage string, arrived time.Time, rec store.Record) SubmitResult {
	e := &cacheEntry{
		reportJSON: rec.Report, tables: rec.Tables,
		intervals: rec.Intervals, lineage: rec.Lineage,
		originNode: rec.Node,
	}
	s.cache.put(key, e)
	if s.store != nil {
		if perr := s.store.Put(rec); perr != nil {
			s.logger.Warn("peer record store write failed",
				"key", key, "error", perr.Error())
		}
	}
	job := newJob(s.newID(), key, lineage, spec, s.lifetime)
	job.finishCached(e.reportJSON, e.tables, e.intervals, e.lineage, "peer", rec.Node)
	s.register(job)
	s.tel.ObserveCacheServe(time.Since(arrived))
	s.logJob(job, "", "submitted", "cache_hit", true,
		"provenance", "peer", "origin", e.lineage, "origin_node", rec.Node)
	return SubmitResult{Job: job, Lineage: lineage, Origin: e.lineage}
}

// logJob emits one structured lifecycle record: every line carries the
// lineage ID, job ID, spec key and what the job is (org or experiment),
// so a single lineage grep reconstructs a request's whole life. A
// non-empty lineage overrides the job's own (a coalesced submission logs
// under its own lineage ID, with the job's as "origin" in extra).
func (s *Server) logJob(job *Job, lineage, event string, extra ...any) {
	if lineage == "" {
		lineage = job.Lineage
	}
	attrs := make([]any, 0, 10+len(extra))
	attrs = append(attrs, "event", event, "job", job.ID,
		"lineage", lineage, "key", job.Key, "kind", job.Spec.Kind)
	if job.Spec.Kind == KindSweep {
		attrs = append(attrs, "experiment", job.Spec.Experiment)
	} else {
		attrs = append(attrs, "org", job.Spec.Org)
	}
	attrs = append(attrs, extra...)
	s.logger.Info("job "+event, attrs...)
}

// register indexes a job; the caller holds s.mu.
func (s *Server) register(job *Job) {
	s.jobs[job.ID] = job
	s.byKey[job.Key] = job
}

func (s *Server) newID() string {
	return fmt.Sprintf("j-%d", s.nextID.Add(1))
}

// Job returns the job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every known job, oldest first (by numeric id).
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool {
		return jobSeq(out[a].ID) < jobSeq(out[b].ID)
	})
	return out
}

func jobSeq(id string) uint64 {
	var n uint64
	fmt.Sscanf(strings.TrimPrefix(id, "j-"), "%d", &n)
	return n
}

// Cancel cancels the job by ID. It reports whether the job exists and
// whether it was still cancelable (non-terminal).
func (s *Server) Cancel(id string) (found, canceled bool) {
	j, ok := s.Job(id)
	if !ok {
		return false, false
	}
	if terminal(j.State()) {
		return true, false
	}
	j.Cancel()
	return true, true
}

// MetricsSnapshot captures the daemon counters.
func (s *Server) MetricsSnapshot() MetricsSnapshot {
	s.mu.Lock()
	jobs, draining := len(s.jobs), s.draining
	s.mu.Unlock()
	breakerState, breakerTrips, shed := s.breaker.snapshot()
	var storeMet *store.Metrics
	if s.store != nil {
		m := s.store.Metrics()
		storeMet = &m
	}
	var clusterMet *ClusterMetrics
	if s.cluster != nil {
		cm := s.cluster.Metrics()
		clusterMet = &ClusterMetrics{
			Nodes: cm.Nodes, PeersHealthy: cm.PeersHealthy,
			Fetches: cm.Fetches, Hits: cm.Hits, Misses: cm.Misses,
			Errors: cm.Errors, Skipped: cm.Skipped,
			Replicated: cm.Replicated, ReplicateErrors: cm.ReplicateErrors,
			Served:   s.met.peerServed.Load(),
			Accepted: s.met.peerAccepted.Load(),
		}
	}
	return MetricsSnapshot{
		Submitted:   s.met.submitted.Load(),
		Deduped:     s.met.deduped.Load(),
		CacheHits:   s.cache.hits.Load(),
		CacheMisses: s.cache.misses.Load(),
		CacheLen:    s.cache.len(),
		Simulated:   s.met.simulated.Load(),
		Sweeps:      s.met.sweeps.Load(),
		Completed:   s.tel.Completed(),
		Failed:      s.met.failed.Load(),
		Canceled:    s.met.canceled.Load(),
		RateLimited: s.met.rateLimited.Load(),
		QueueFull:   s.met.queueFull.Load(),
		QueueDepth:  len(s.queue),
		Jobs:        jobs,
		Workers:     s.cfg.Workers,
		WorkersBusy: int(s.met.busy.Load()),
		Draining:    draining,
		UptimeSec:   int64(time.Since(s.started).Seconds()),

		DeadlineExceeded: s.met.deadlines.Load(),
		BreakerState:     breakerState,
		BreakerTrips:     breakerTrips,
		Shed:             shed,
		Store:            storeMet,
		NodeID:           s.cfg.NodeID,
		Cluster:          clusterMet,
	}
}

// Drain gracefully stops the server: new submissions are refused with
// ErrDraining, the queue is closed, every non-terminal job's context is
// cancelled — a running simulation quiesces at its next chunk boundary,
// a running sweep stops dispatching cells while its checkpoint journal
// (keyed by cache key in the spool dir) retains every completed cell, so
// resubmitting the same spec after a restart resumes rather than
// restarts — and the workers are awaited until ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	close(s.queue) // Submit holds s.mu while sending, so this is safe
	var live []*Job
	for _, j := range s.jobs {
		if !terminal(j.State()) {
			live = append(live, j)
		}
	}
	s.mu.Unlock()

	if s.cluster != nil {
		s.cluster.Stop()
	}
	s.logger.Info("hvcd draining", "live_jobs", len(live))
	for _, j := range live {
		j.Cancel()
	}

	waited := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(waited)
	}()
	var err error
	select {
	case <-waited:
	case <-ctx.Done():
		err = fmt.Errorf("service: drain: %w", ctx.Err())
	}
	s.endLife()
	// Queued jobs the workers never picked up die with the lifetime
	// context; mark them canceled so watchers unblock.
	for _, j := range s.Jobs() {
		if !terminal(j.State()) {
			j.finish(StateCanceled, nil, nil, "server drained")
			s.met.canceled.Add(1)
			s.logJob(j, "", "canceled", "error", "server drained")
		}
	}
	return err
}

// runJob executes one job on a worker.
func (s *Server) runJob(job *Job) {
	s.met.busy.Add(1)
	defer s.met.busy.Add(-1)
	if !job.start() {
		if job.Expired() {
			// The deadline fired while the job sat in the queue.
			job.finish(StateFailed, nil, nil, "job deadline exceeded while queued")
			s.met.deadlines.Add(1)
			s.met.failed.Add(1)
			s.unbindKey(job)
			s.logJob(job, "", "failed", "error", "job deadline exceeded while queued")
			return
		}
		// Cancelled while queued.
		job.finish(StateCanceled, nil, nil, "canceled before start")
		s.met.canceled.Add(1)
		s.logJob(job, "", "canceled", "error", "canceled before start")
		return
	}
	queueWait, _, _ := job.latencies(time.Now())
	s.breaker.observe(queueWait)
	s.logJob(job, "", "running", "queue_wait_s", queueWait.Seconds())

	var (
		report []byte
		tables []string
		err    error
	)
	switch job.Spec.Kind {
	case KindSweep:
		tables, err = s.runSweep(job)
	default:
		report, err = s.runSim(job)
	}

	switch {
	case err == nil:
		entry := &cacheEntry{reportJSON: report, tables: tables, lineage: job.Lineage, originNode: s.cfg.NodeID}
		if tl := job.timeline(); tl != nil {
			entry.intervals = tl.Intervals()
		}
		s.cache.put(job.Key, entry)
		rec := store.Record{
			Key: job.Key, Report: report, Tables: tables,
			Intervals: entry.intervals, Lineage: job.Lineage,
			Node: s.cfg.NodeID,
		}
		if s.store != nil {
			// Durable tier is best-effort on the write path: a failed write
			// (full disk, injected fault) costs warm restarts, not this
			// result.
			if perr := s.store.Put(rec); perr != nil {
				s.logger.Warn("result store write failed",
					"job", job.ID, "key", job.Key, "error", perr.Error())
			}
		}
		s.replicateToOwner(job, rec)
		// Observe stage latencies BEFORE finish wakes watchers: a client
		// that sees "done" must also see the counters agreeing.
		wait, exec, e2e := job.latencies(time.Now())
		s.tel.ObserveCompleted(job.Spec.Org, wait, exec, e2e)
		job.finish(StateDone, report, tables, "")
		s.logJob(job, "", "done", "queue_wait_s", wait.Seconds(),
			"exec_s", exec.Seconds(), "e2e_s", e2e.Seconds())
	case job.Expired():
		// Deadline fired mid-execution: terminal failed, not canceled, so
		// watchers see the reason and resubmission runs fresh.
		job.finish(StateFailed, nil, nil, "job deadline exceeded: "+err.Error())
		s.met.deadlines.Add(1)
		s.met.failed.Add(1)
		s.unbindKey(job)
		_, exec, e2e := job.latencies(time.Now())
		s.logJob(job, "", "failed", "error", "job deadline exceeded",
			"exec_s", exec.Seconds(), "e2e_s", e2e.Seconds())
	case job.ctx.Err() != nil:
		job.finish(StateCanceled, nil, nil, err.Error())
		s.met.canceled.Add(1)
		s.unbindKey(job)
		_, exec, e2e := job.latencies(time.Now())
		s.logJob(job, "", "canceled", "error", err.Error(),
			"exec_s", exec.Seconds(), "e2e_s", e2e.Seconds())
	default:
		job.finish(StateFailed, nil, nil, err.Error())
		s.met.failed.Add(1)
		s.unbindKey(job)
		_, exec, e2e := job.latencies(time.Now())
		s.logJob(job, "", "failed", "error", err.Error(),
			"exec_s", exec.Seconds(), "e2e_s", e2e.Seconds())
	}
}

// replicateToOwner best-effort pushes a freshly simulated result onto
// the key's rendezvous owner, so the cluster converges to one
// simulation per key: the next node to miss on this key asks the owner
// and finds it. Runs on the worker before the job finishes (bounded by
// the cluster's replicate budget, a few fetch timeouts at worst);
// failure is logged and counted by the cluster, never surfaced to the
// job. A no-op outside a cluster, for keys this node owns itself, and
// for owners already marked unhealthy.
func (s *Server) replicateToOwner(job *Job, rec store.Record) {
	c := s.cluster
	if c == nil {
		return
	}
	owner := c.OwnerOf(rec.Key)
	if owner.ID == c.NodeID() || !c.Healthy(owner.ID) {
		return
	}
	if err := c.Replicate(s.lifetime, owner, rec); err != nil {
		s.logJob(job, "", "replicate_failed", "owner", owner.ID, "error", err.Error())
	} else {
		s.logJob(job, "", "replicated", "owner", owner.ID)
	}
}

// unbindKey removes a failed/canceled job from the dedup index so a
// resubmission of the same spec runs fresh instead of coalescing onto
// the corpse.
func (s *Server) unbindKey(job *Job) {
	s.mu.Lock()
	if s.byKey[job.Key] == job {
		delete(s.byKey, job.Key)
	}
	s.mu.Unlock()
}

// runOptions assembles the per-job resilience options for the
// experiments runner.
func (s *Server) runOptions(job *Job) experiments.RunOptions {
	return experiments.RunOptions{
		Ctx:         job.ctx,
		CellTimeout: s.cfg.CellTimeout,
		Retries:     s.cfg.Retries,
		Backoff:     s.cfg.RetryBackoff,
	}
}

// runSim executes a sim job as one experiments.Cell through RunCells, so
// it inherits the sweep runner's panic containment, per-cell timeout and
// transient-retry machinery with a per-job cancellation context. The
// simulator is driven directly (not through System.Run) so cancellation
// can quiesce it at a chunk boundary and the timeline is streamable
// while the run is in flight.
func (s *Server) runSim(job *Job) ([]byte, error) {
	spec := job.Spec
	cell := experiments.Cell{
		Label: "service/" + job.ID + "/" + spec.Org,
		Fn: func() (any, error) {
			sys, err := hybridvc.New(hybridvc.Config{
				Org:               hybridvc.Organization(spec.Org),
				Cores:             spec.Cores,
				LLCBytes:          spec.LLCBytes,
				DelayedTLBEntries: spec.DelayedTLBEntries,
				IndexCacheBytes:   spec.IndexCacheBytes,
				Seed:              spec.Seed,
			})
			if err != nil {
				return nil, err
			}
			for _, name := range spec.Workloads {
				if err := sys.LoadWorkload(name); err != nil {
					return nil, err
				}
			}
			simCfg := sim.DefaultConfig()
			simCfg.Interval = spec.Interval
			simulator := sim.New(simCfg, sys.Mem, sys.Generators())
			job.setTimeline(simulator.Timeline())

			// Quiesce at a chunk boundary on cancellation; the watcher
			// exits when the run finishes.
			ranDone := make(chan struct{})
			defer close(ranDone)
			go func() {
				select {
				case <-job.ctx.Done():
					simulator.Stop()
				case <-ranDone:
				}
			}()

			s.met.simulated.Add(1)
			rep := simulator.Run(spec.Instructions)
			if simulator.Interrupted() {
				return nil, fmt.Errorf("simulation interrupted after %d instructions: %w",
					rep.Instructions, context.Cause(job.ctx))
			}
			return rep.JSON(), nil
		},
	}
	results, err := experiments.RunCellsWith([]experiments.Cell{cell}, s.runOptions(job))
	if err != nil {
		return nil, err
	}
	text, ok := results[0].Value.(string)
	if !ok {
		return nil, fmt.Errorf("service: sim cell returned %T, want string", results[0].Value)
	}
	return []byte(text), nil
}

// runSweep executes a sweep job through the experiment registry with the
// package-level resilience knobs pointed at this job for the duration
// (serialized by sweepMu — see the field comment). The checkpoint
// journal is content-addressed in the spool dir, so a sweep cancelled by
// drain resumes its completed cells when the same spec is resubmitted.
func (s *Server) runSweep(job *Job) ([]string, error) {
	e, ok := experiments.Lookup(job.Spec.Experiment)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", job.Spec.Experiment) // unreachable post-Normalize
	}

	ckpt := filepath.Join(s.cfg.SpoolDir, job.Key+".ndjson")
	job.setCheckpoint(ckpt)

	s.sweepMu.Lock()
	prevCtx := experiments.SetContext(job.ctx)
	prevCkpt := experiments.SetCheckpoint(ckpt)
	prevTimeout := experiments.SetCellTimeout(s.cfg.CellTimeout)
	prevRetries, prevBackoff := experiments.SetRetry(s.cfg.Retries, s.cfg.RetryBackoff)
	s.met.sweeps.Add(1)
	tables, err := e.Run(job.Spec.ExperimentScale())
	experiments.SetContext(prevCtx)
	experiments.SetCheckpoint(prevCkpt)
	experiments.SetCellTimeout(prevTimeout)
	experiments.SetRetry(prevRetries, prevBackoff)
	s.sweepMu.Unlock()

	if err != nil {
		return nil, err
	}
	rendered := make([]string, len(tables))
	for i, t := range tables {
		rendered[i] = t.String()
	}
	// The sweep completed; its journal has served its purpose.
	os.Remove(ckpt)
	job.setCheckpoint("")
	return rendered, nil
}
