package experiments

import (
	"fmt"
	"strings"

	"hybridvc/internal/stats"
)

// Experiment is one named, self-describing entry of the evaluation: a
// table or figure of the paper (or an ablation) that can regenerate its
// tables at either scale. The tablegen command and the benchmark suite
// both enumerate experiments from this registry.
type Experiment struct {
	// Name is the CLI identifier (e.g. "fig9").
	Name string
	// Description is a one-line summary shown by `tablegen -list`.
	Description string
	// Run regenerates the experiment's tables at the given scale. It
	// returns an error instead of panicking; partial sweeps report every
	// failed cell.
	Run func(Scale) ([]*stats.Table, error)
}

var (
	registry []Experiment
	byName   = map[string]Experiment{}
)

// Add adds an experiment to the registry. Registration order is the
// canonical `-exp all` execution order. A duplicate name is rejected
// with an error — never silently overwritten, which would reorder or
// replace an experiment every other caller can already see — as is a
// missing name or Run function.
func Add(e Experiment) error {
	if e.Name == "" || e.Run == nil {
		return fmt.Errorf("experiments: Add needs a name and a Run function")
	}
	if _, dup := byName[e.Name]; dup {
		return fmt.Errorf("experiments: duplicate experiment %q", e.Name)
	}
	registry = append(registry, e)
	byName[e.Name] = e
	return nil
}

// Register adds an experiment and panics on error. It is the init-time
// form: the built-in registry is assembled once, below, where a bad
// entry is a programming error; dynamic registration should use Add and
// handle the error.
func Register(e Experiment) {
	if err := Add(e); err != nil {
		panic(err)
	}
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, bool) {
	e, ok := byName[name]
	return e, ok
}

// All returns every registered experiment in canonical order.
func All() []Experiment {
	return append([]Experiment(nil), registry...)
}

// Names returns the experiment names in canonical order.
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

// Usage renders the selectable experiment names as a flag-help string
// ("table1, table2, ... , all"), so command usage cannot drift from the
// registry.
func Usage() string {
	return strings.Join(append(Names(), "all"), ", ")
}

// one adapts an experiment function returning a single table.
func one(fn func(Scale) (*stats.Table, error)) func(Scale) ([]*stats.Table, error) {
	return func(s Scale) ([]*stats.Table, error) {
		t, err := fn(s)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{t}, nil
	}
}

// drop adapts an experiment function returning (typed results, table).
func drop[T any](fn func(Scale) (T, *stats.Table, error)) func(Scale) ([]*stats.Table, error) {
	return func(s Scale) ([]*stats.Table, error) {
		_, t, err := fn(s)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{t}, nil
	}
}

// init assembles the registry in the canonical order of the evaluation:
// the characterization tables first, then the structure-sensitivity
// figures, the performance and energy comparisons, and the ablations.
func init() {
	Register(Experiment{"table1", "Table I: r/w shared memory area and accesses", drop(TableI)})
	Register(Experiment{"table2", "Table II: synonym filter effectiveness vs two-level TLB", drop(TableII)})
	Register(Experiment{"table3", "Table III: segment counts, RMM MPKI, memory utilization", drop(TableIII)})
	Register(Experiment{"fig4", "Figure 4: delayed TLB size scaling (normalized MPKI)", drop(Figure4)})
	Register(Experiment{"fig7a", "Figure 7a: index cache hit rate, real workloads", drop(Figure7a)})
	Register(Experiment{"fig7b", "Figure 7b: index cache hit rate, synthetic worst case", drop(Figure7b)})
	Register(Experiment{"fig9", "Figure 9: native performance (speedup over baseline)", drop(Figure9)})
	Register(Experiment{"fig10", "Virtualized performance: 2D-walk baseline vs hybrid", drop(Figure10)})
	Register(Experiment{"fig11", "Translation energy: baseline vs hybrid", drop(Figure11)})
	Register(Experiment{"multicore", "Quad-core multiprogrammed mixes", drop(Multicore)})
	Register(Experiment{"consolidation", "VM consolidation: two VMs on a dual-core processor", one(Consolidation)})
	Register(Experiment{"latency", "Delayed many-segment translation walk statistics", one(SegmentWalkLatency)})
	Register(Experiment{"ablations", "Ablations A1-A4: filter design, segment cache, huge pages, serial/parallel", func(s Scale) ([]*stats.Table, error) {
		var tables []*stats.Table
		for _, fn := range []func(Scale) (*stats.Table, error){
			AblationFilterDesign, AblationSegmentCache, AblationHugePages, AblationSerialParallel,
		} {
			t, err := fn(s)
			if err != nil {
				return nil, err
			}
			tables = append(tables, t)
		}
		return tables, nil
	}})
	Register(Experiment{"xarch", "Translation architectures: victima and rlt-vc vs baseline TLB and hybrid Bloom filter", one(XArch)})
	Register(Experiment{"parity", "Cross-organization stat fingerprint (golden refactor-parity check)", one(Parity)})
	Register(Experiment{"faults", "Deterministic fault injection with runtime invariant checking", one(FaultSweep)})
}
