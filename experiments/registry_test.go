package experiments

import (
	"strings"
	"testing"

	"hybridvc/internal/stats"
)

func noopRun(Scale) ([]*stats.Table, error) { return nil, nil }

// removeExperiment undoes a test registration so registry-mutating tests
// leave the canonical registry exactly as init built it.
func removeExperiment(name string) {
	delete(byName, name)
	for i, e := range registry {
		if e.Name == name {
			registry = append(registry[:i], registry[i+1:]...)
			return
		}
	}
}

func TestAddRejectsDuplicateName(t *testing.T) {
	const name = "registry-test-dup"
	if err := Add(Experiment{Name: name, Description: "first", Run: noopRun}); err != nil {
		t.Fatalf("first Add: %v", err)
	}
	defer removeExperiment(name)

	err := Add(Experiment{Name: name, Description: "second", Run: noopRun})
	if err == nil {
		t.Fatal("duplicate Add succeeded; want an error")
	}
	if !strings.Contains(err.Error(), name) {
		t.Errorf("duplicate error %q does not name the experiment", err)
	}

	// The original registration must be intact — not overwritten.
	e, ok := Lookup(name)
	if !ok || e.Description != "first" {
		t.Errorf("Lookup(%q) = %+v, %v; want the first registration intact", name, e, ok)
	}
	count := 0
	for _, n := range Names() {
		if n == name {
			count++
		}
	}
	if count != 1 {
		t.Errorf("registry lists %q %d times, want exactly once", name, count)
	}
}

func TestAddRejectsIncompleteEntries(t *testing.T) {
	if err := Add(Experiment{Name: "", Run: noopRun}); err == nil {
		t.Error("Add with empty name succeeded; want error")
	}
	if err := Add(Experiment{Name: "registry-test-norun"}); err == nil {
		t.Error("Add with nil Run succeeded; want error")
		removeExperiment("registry-test-norun")
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	const name = "registry-test-panic"
	Register(Experiment{Name: name, Run: noopRun})
	defer removeExperiment(name)
	defer func() {
		if recover() == nil {
			t.Error("Register of a duplicate did not panic")
		}
	}()
	Register(Experiment{Name: name, Run: noopRun})
}
