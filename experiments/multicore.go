package experiments

import (
	"fmt"
	"strings"

	"hybridvc"
	"hybridvc/internal/stats"
)

// MulticoreMixes are quad-core multiprogrammed combinations, in the style
// of the paper's multi-programmed evaluation (Section VI runs mixes of
// four applications on a quad-core system sharing the LLC and the delayed
// translation hardware).
var MulticoreMixes = [][]string{
	{"gups", "mcf", "omnetpp", "xalancbmk"},
	{"stream", "milc", "soplex", "astar"},
}

// MulticoreResult reports one mix's comparison.
type MulticoreResult struct {
	Mix      string
	Baseline uint64
	Hybrid   uint64
	Speedup  float64
}

// Multicore runs quad-core multiprogrammed mixes on the baseline and the
// hybrid design. The shared LLC and the single shared index cache /
// segment table are the contended resources (the paper notes one index
// cache and segment table serve all cores).
func Multicore(scale Scale) ([]MulticoreResult, *stats.Table, error) {
	n := scale.pick(25_000, 500_000)
	orgs := []hybridvc.Organization{hybridvc.Baseline, hybridvc.HybridManySegSC}
	var cells []Cell
	for _, mix := range MulticoreMixes {
		for _, org := range orgs {
			cells = append(cells, Cell{
				Label:        fmt.Sprintf("multicore/%s/%s", strings.Join(mix, "+"), org),
				Config:       hybridvc.Config{Org: org, Cores: 4},
				Workloads:    mix,
				Instructions: n,
			})
		}
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, nil, err
	}

	var results []MulticoreResult
	for mi, mix := range MulticoreMixes {
		base := res[mi*len(orgs)].Report.Cycles
		hyb := res[mi*len(orgs)+1].Report.Cycles
		results = append(results, MulticoreResult{
			Mix: strings.Join(mix, "+"), Baseline: base, Hybrid: hyb,
			Speedup: float64(base) / float64(hyb),
		})
	}
	t := stats.NewTable("Quad-core multiprogrammed mixes: baseline vs hybrid",
		"mix", "baseline cycles", "hybrid cycles", "speedup")
	for _, r := range results {
		t.AddRow(r.Mix, fmt.Sprintf("%d", r.Baseline), fmt.Sprintf("%d", r.Hybrid),
			fmt.Sprintf("%.3f", r.Speedup))
	}
	return results, t, nil
}
