package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Interval is one windowed snapshot of the simulation: all counters are
// deltas over the window (not running totals), so summing a field across
// every interval of a run reproduces the end-of-run figure exactly.
type Interval struct {
	// Index is the interval's ordinal, starting at 0.
	Index int `json:"index"`
	// StartInsns/EndInsns bound the window in total retired instructions
	// (summed over cores); the final interval of a run may be partial.
	StartInsns uint64 `json:"start_insns"`
	EndInsns   uint64 `json:"end_insns"`
	// Insns and Cycles are the window's deltas; IPC is their ratio.
	Insns  uint64  `json:"insns"`
	Cycles uint64  `json:"cycles"`
	IPC    float64 `json:"ipc"`

	// Refs counts memory references completing in the window.
	Refs uint64 `json:"refs"`
	// HitLevels counts references by the level that served them
	// (index 0 = memory, 1 = L1, 2 = private, 3 = LLC).
	HitLevels [4]uint64 `json:"hit_levels"`
	LLCMisses uint64    `json:"llc_misses"`
	// MPKI breaks misses-per-kilo-instruction out by level: MPKI[k] counts
	// references that missed every level up to and including k's supplier
	// (L1MPKI = refs not served by L1, etc.); MPKI[0] is memory accesses.
	L1MPKI  float64 `json:"l1_mpki"`
	L2MPKI  float64 `json:"l2_mpki"`
	LLCMPKI float64 `json:"llc_mpki"`

	// Synonym-filter activity (hybrid organizations; zero elsewhere).
	FilterProbes   uint64  `json:"filter_probes"`
	Candidates     uint64  `json:"candidates"`
	FalsePositives uint64  `json:"false_positives"`
	FPRate         float64 `json:"fp_rate"`

	Faults  uint64 `json:"faults"`
	Retries uint64 `json:"retries"`

	// Delayed translation activity behind the LLC.
	DelayedTranslations   uint64 `json:"delayed_translations"`
	WritebackTranslations uint64 `json:"writeback_translations"`

	// DynamicEnergyPJ is the translation energy spent in the window.
	DynamicEnergyPJ float64 `json:"dynamic_energy_pj"`

	// WalkDepth is the window's page/segment walk depth distribution.
	WalkDepth HistogramSnapshot `json:"walk_depth"`
}

// intervalCSVHeader lists the scalar columns WriteCSV emits, in order.
var intervalCSVHeader = []string{
	"index", "start_insns", "end_insns", "insns", "cycles", "ipc",
	"refs", "hit_mem", "hit_l1", "hit_l2", "hit_llc", "llc_misses",
	"l1_mpki", "l2_mpki", "llc_mpki",
	"filter_probes", "candidates", "false_positives", "fp_rate",
	"faults", "retries", "delayed_translations", "writeback_translations",
	"dynamic_energy_pj", "walk_depth_mean", "walk_depth_max", "walk_depth_p99",
}

func (iv *Interval) csvRow() []string {
	return []string{
		fmt.Sprintf("%d", iv.Index),
		fmt.Sprintf("%d", iv.StartInsns),
		fmt.Sprintf("%d", iv.EndInsns),
		fmt.Sprintf("%d", iv.Insns),
		fmt.Sprintf("%d", iv.Cycles),
		fmt.Sprintf("%.6f", iv.IPC),
		fmt.Sprintf("%d", iv.Refs),
		fmt.Sprintf("%d", iv.HitLevels[0]),
		fmt.Sprintf("%d", iv.HitLevels[1]),
		fmt.Sprintf("%d", iv.HitLevels[2]),
		fmt.Sprintf("%d", iv.HitLevels[3]),
		fmt.Sprintf("%d", iv.LLCMisses),
		fmt.Sprintf("%.6f", iv.L1MPKI),
		fmt.Sprintf("%.6f", iv.L2MPKI),
		fmt.Sprintf("%.6f", iv.LLCMPKI),
		fmt.Sprintf("%d", iv.FilterProbes),
		fmt.Sprintf("%d", iv.Candidates),
		fmt.Sprintf("%d", iv.FalsePositives),
		fmt.Sprintf("%.6f", iv.FPRate),
		fmt.Sprintf("%d", iv.Faults),
		fmt.Sprintf("%d", iv.Retries),
		fmt.Sprintf("%d", iv.DelayedTranslations),
		fmt.Sprintf("%d", iv.WritebackTranslations),
		fmt.Sprintf("%.4f", iv.DynamicEnergyPJ),
		fmt.Sprintf("%.4f", iv.WalkDepth.Mean),
		fmt.Sprintf("%d", iv.WalkDepth.Max),
		fmt.Sprintf("%d", iv.WalkDepth.P99),
	}
}

// Timeline is a thread-safe, append-only series of intervals. The
// simulator appends from its goroutine; readers (the live metrics
// endpoint, tests) may snapshot concurrently.
type Timeline struct {
	mu        sync.Mutex
	intervals []Interval
}

// Append adds one interval.
func (t *Timeline) Append(iv Interval) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.intervals = append(t.intervals, iv)
}

// Len returns the number of intervals recorded so far.
func (t *Timeline) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.intervals)
}

// Intervals returns a copy of the recorded intervals.
func (t *Timeline) Intervals() []Interval {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Interval(nil), t.intervals...)
}

// Since returns a copy of the intervals recorded at index from onwards
// (nil when from is at or past the end). It is the streaming cursor:
// a reader that remembers how many intervals it has already emitted can
// poll Since(cursor) to pick up exactly the new ones, concurrently with
// the simulator appending.
func (t *Timeline) Since(from int) []Interval {
	t.mu.Lock()
	defer t.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(t.intervals) {
		return nil
	}
	return append([]Interval(nil), t.intervals[from:]...)
}

// Latest returns the most recent interval and true, or false when empty.
func (t *Timeline) Latest() (Interval, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.intervals) == 0 {
		return Interval{}, false
	}
	return t.intervals[len(t.intervals)-1], true
}

// WriteNDJSON writes one JSON object per line, one line per interval.
func (t *Timeline) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, iv := range t.Intervals() {
		if err := enc.Encode(&iv); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the intervals as CSV with a header row. The walk-depth
// histogram is reduced to its mean/max/p99 columns; use NDJSON for the
// full per-bucket distribution.
func (t *Timeline) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(intervalCSVHeader); err != nil {
		return err
	}
	for _, iv := range t.Intervals() {
		if err := cw.Write(iv.csvRow()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
