// Interval time-series acceptance: the windowed collector must produce
// well-formed intervals whose per-field sums telescope exactly to the
// final report — the deltas are computed against the same quantities the
// report reads, so nothing may leak between windows.
package hybridvc_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"hybridvc"
	"hybridvc/internal/sim"
	"hybridvc/internal/stats"
)

// newTimelineSystem runs the acceptance workload: hybrid-manyseg+sc, a
// small LLC (busy delayed-translation path), 120k instructions at a 10k
// interval.
func runTimeline(t *testing.T) (*stats.Timeline, sim.Report) {
	t.Helper()
	simCfg := sim.DefaultConfig()
	simCfg.Interval = 10_000
	sys, err := hybridvc.New(hybridvc.Config{
		Org:      hybridvc.HybridManySegSC,
		LLCBytes: 256 << 10,
		Seed:     1,
		Sim:      simCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadWorkload("gups"); err != nil {
		t.Fatal(err)
	}
	report, err := sys.Run(120_000)
	if err != nil {
		t.Fatal(err)
	}
	tl := sys.LastSim.Timeline()
	if tl == nil {
		t.Fatal("Timeline() is nil with Interval set")
	}
	return tl, report
}

func TestTimelineSumsMatchReport(t *testing.T) {
	tl, report := runTimeline(t)
	ivs := tl.Intervals()
	if len(ivs) < 10 {
		t.Fatalf("got %d intervals, want >= 10", len(ivs))
	}

	var insns, cycles uint64
	var energy float64
	prevEnd := uint64(0)
	for i, iv := range ivs {
		if iv.Index != i {
			t.Errorf("interval %d: index %d", i, iv.Index)
		}
		if iv.StartInsns != prevEnd {
			t.Errorf("interval %d: starts at %d, previous ended at %d", i, iv.StartInsns, prevEnd)
		}
		if iv.EndInsns <= iv.StartInsns {
			t.Errorf("interval %d: empty window [%d,%d]", i, iv.StartInsns, iv.EndInsns)
		}
		if iv.Insns != iv.EndInsns-iv.StartInsns {
			t.Errorf("interval %d: Insns %d != EndInsns-StartInsns %d",
				i, iv.Insns, iv.EndInsns-iv.StartInsns)
		}
		prevEnd = iv.EndInsns
		insns += iv.Insns
		cycles += iv.Cycles
		energy += iv.DynamicEnergyPJ
	}
	if insns != report.Instructions {
		t.Errorf("summed interval insns %d != report instructions %d", insns, report.Instructions)
	}
	if cycles != report.Cycles {
		t.Errorf("summed interval cycles %d != report cycles %d", cycles, report.Cycles)
	}
	if diff := math.Abs(energy - report.DynamicEnergyPJ); diff > 1e-6*report.DynamicEnergyPJ {
		t.Errorf("summed interval energy %.3f pJ != report %.3f pJ", energy, report.DynamicEnergyPJ)
	}
}

func TestTimelineNDJSONWellFormed(t *testing.T) {
	tl, _ := runTimeline(t)
	var buf bytes.Buffer
	if err := tl.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var iv stats.Interval
		if err := json.Unmarshal(sc.Bytes(), &iv); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if iv.Index != lines {
			t.Errorf("line %d decodes to index %d", lines, iv.Index)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != tl.Len() {
		t.Errorf("NDJSON has %d lines, timeline has %d intervals", lines, tl.Len())
	}
}

func TestTimelineCSVWellFormed(t *testing.T) {
	tl, _ := runTimeline(t)
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(rows) != tl.Len()+1 {
		t.Fatalf("CSV has %d rows, want header + %d intervals", len(rows), tl.Len())
	}
	cols := len(strings.Split(rows[0], ","))
	for i, row := range rows {
		if got := len(strings.Split(row, ",")); got != cols {
			t.Errorf("row %d has %d columns, header has %d", i, got, cols)
		}
	}
}

// TestTimelineStreamWhileSimulating follows a live timeline with a Since
// cursor while the simulation goroutine appends intervals — the service
// daemon's streaming endpoint does exactly this. Under `go test -race`
// it pins that concurrent streaming is race-free; in any mode it checks
// the streamed sequence is gapless, duplicate-free, and telescopes to
// the final report.
func TestTimelineStreamWhileSimulating(t *testing.T) {
	simCfg := sim.DefaultConfig()
	simCfg.Interval = 5_000
	sys, err := hybridvc.New(hybridvc.Config{
		Org:      hybridvc.HybridManySegSC,
		LLCBytes: 256 << 10,
		Seed:     1,
		Sim:      simCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadWorkload("gups"); err != nil {
		t.Fatal(err)
	}
	simulator := sim.New(simCfg, sys.Mem, sys.Generators())

	done := make(chan sim.Report, 1)
	go func() { done <- simulator.Run(150_000) }()

	var streamed []stats.Interval
	cursor := 0
	var report sim.Report
	for running := true; running; {
		select {
		case report = <-done:
			running = false
		default:
		}
		batch := simulator.Timeline().Since(cursor)
		streamed = append(streamed, batch...)
		cursor += len(batch)
	}
	// Final drain after the run finished.
	streamed = append(streamed, simulator.Timeline().Since(cursor)...)

	if len(streamed) == 0 {
		t.Fatal("streamed no intervals")
	}
	var insns uint64
	for i, iv := range streamed {
		if iv.Index != i {
			t.Fatalf("streamed interval %d has index %d (gap or duplicate)", i, iv.Index)
		}
		insns += iv.Insns
	}
	if insns != report.Instructions {
		t.Errorf("streamed insns sum %d != report instructions %d", insns, report.Instructions)
	}
	if n := simulator.Timeline().Len(); n != len(streamed) {
		t.Errorf("streamed %d of %d intervals", len(streamed), n)
	}
}
