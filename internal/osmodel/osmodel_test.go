package osmodel

import (
	"testing"

	"hybridvc/internal/addr"
)

func newKernel(t *testing.T) *Kernel {
	t.Helper()
	return NewKernel(Config{PhysBytes: 1 << 30})
}

// recordingSink records maintenance traffic for assertions.
type recordingSink struct {
	shootdowns    []uint64
	flushedPages  []addr.Name
	permUpdates   []addr.Name
	filterUpdates []addr.ASID
	flushedASIDs  []addr.ASID
}

func (r *recordingSink) TLBShootdown(asid addr.ASID, vpn uint64) {
	r.shootdowns = append(r.shootdowns, vpn)
}
func (r *recordingSink) FlushPage(p addr.Name) { r.flushedPages = append(r.flushedPages, p) }
func (r *recordingSink) SetPagePerm(p addr.Name, _ addr.Perm) {
	r.permUpdates = append(r.permUpdates, p)
}
func (r *recordingSink) FilterUpdate(a addr.ASID) { r.filterUpdates = append(r.filterUpdates, a) }
func (r *recordingSink) FlushASID(a addr.ASID)    { r.flushedASIDs = append(r.flushedASIDs, a) }

func TestNewProcessDistinctASIDs(t *testing.T) {
	k := newKernel(t)
	p1, err := k.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := k.NewProcess()
	if p1.ASID == p2.ASID {
		t.Fatal("ASIDs collide")
	}
	if k.Process(p1.ASID) != p1 || k.Process(p2.ASID) != p2 {
		t.Error("process registry broken")
	}
	if p1.ASID.VMID() != 0 {
		t.Error("native process has nonzero VMID")
	}
}

func TestVMIDInASID(t *testing.T) {
	k := NewKernel(Config{PhysBytes: 1 << 24, VMID: 5})
	p, _ := k.NewProcess()
	if p.ASID.VMID() != 5 {
		t.Errorf("VMID = %d", p.ASID.VMID())
	}
}

func TestMmapEagerBacksEverything(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	va, err := p.Mmap(1<<20, addr.PermRW, MmapOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Every page must be mapped immediately, backed by one segment.
	for off := uint64(0); off < 1<<20; off += addr.PageSize {
		if _, ok := p.PT.Lookup(va + addr.VA(off)); !ok {
			t.Fatalf("page %#x unmapped after eager mmap", off)
		}
	}
	r := p.FindRegion(va)
	if r == nil || len(r.Segments) != 1 {
		t.Fatalf("region: %+v", r)
	}
	s := r.Segments[0]
	if s.Length != 1<<20 || s.Base != va {
		t.Errorf("segment: %v", s)
	}
	// The segment translation must agree with the page tables.
	pa1, _ := p.PT.Translate(va + 0x5123)
	if pa2 := s.Translate(va + 0x5123); pa1 != pa2 {
		t.Errorf("segment/PT disagree: %#x vs %#x", uint64(pa1), uint64(pa2))
	}
}

func TestMmapDemandPaging(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	va, err := p.Mmap(1<<20, addr.PermRW, MmapOpts{Demand: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.PT.Lookup(va); ok {
		t.Fatal("demand page mapped before touch")
	}
	if !p.HandleFault(va+0x123, false) {
		t.Fatal("legal fault rejected")
	}
	if _, ok := p.PT.Lookup(va); !ok {
		t.Fatal("fault did not map page")
	}
	if k.PageFaults.Value() != 1 {
		t.Errorf("fault count = %d", k.PageFaults.Value())
	}
	// A fault outside every region is illegal.
	if p.HandleFault(0x7fff_0000_0000, false) {
		t.Error("wild fault accepted")
	}
	// A second fault on the same page is spurious (already mapped, RW).
	if p.HandleFault(va+0x200, false) {
		t.Error("spurious fault accepted")
	}
}

func TestMmapFragmentationFallback(t *testing.T) {
	// Fragment physical memory so no single extent can back the request;
	// eager backing must split into multiple segments.
	k := NewKernel(Config{PhysBytes: 1 << 22}) // 1024 frames
	p, _ := k.NewProcess()
	// Grab all remaining memory, then free scattered 50-frame holes so
	// the largest contiguous run is 50 frames.
	frames := k.Alloc.FreeFrames()
	base, ok := k.Alloc.AllocContiguous(frames)
	if !ok {
		t.Fatal("setup alloc failed")
	}
	for off := uint64(0); off+100 <= frames; off += 100 {
		k.Alloc.Free(base+addr.PA(off*addr.PageSize), 50)
	}
	va, err := p.Mmap(150*addr.PageSize, addr.PermRW, MmapOpts{})
	if err != nil {
		t.Fatalf("fragmented mmap failed: %v", err)
	}
	r := p.FindRegion(va)
	if len(r.Segments) < 2 {
		t.Errorf("expected multiple segments, got %d", len(r.Segments))
	}
	for off := uint64(0); off < 150*addr.PageSize; off += addr.PageSize {
		if _, ok := p.PT.Lookup(va + addr.VA(off)); !ok {
			t.Fatalf("page %#x unmapped", off)
		}
	}
}

func TestShareAnonymousCreatesSynonyms(t *testing.T) {
	k := newKernel(t)
	sink := &recordingSink{}
	k.AttachSink(sink)
	p1, _ := k.NewProcess()
	p2, _ := k.NewProcess()
	vas, err := k.ShareAnonymous([]*Process{p1, p2}, 8*addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Both processes map the same physical frames.
	pa1, ok1 := p1.PT.Translate(vas[0])
	pa2, ok2 := p2.PT.Translate(vas[1])
	if !ok1 || !ok2 || pa1 != pa2 {
		t.Fatalf("shared mapping mismatch: %#x %#x", uint64(pa1), uint64(pa2))
	}
	// PTEs carry the shared bit.
	pte, _ := p1.PT.Lookup(vas[0])
	if !pte.Shared {
		t.Error("shared bit missing")
	}
	// Both filters flag the range; the filter update was broadcast.
	if !p1.Filter.ProbeQuiet(vas[0]) || !p2.Filter.ProbeQuiet(vas[1]) {
		t.Error("filters not updated")
	}
	if len(sink.filterUpdates) != 2 {
		t.Errorf("filter updates = %d", len(sink.filterUpdates))
	}
	// Region accounting feeds Table I.
	if p1.SharedAreaRatio() != 1.0 {
		t.Errorf("shared area ratio = %f", p1.SharedAreaRatio())
	}
}

func TestMarkSharedTransition(t *testing.T) {
	k := newKernel(t)
	sink := &recordingSink{}
	k.AttachSink(sink)
	p, _ := k.NewProcess()
	va, _ := p.Mmap(4*addr.PageSize, addr.PermRW, MmapOpts{})
	if p.Filter.ProbeQuiet(va) {
		t.Fatal("private region flagged before transition")
	}
	if err := k.MarkShared(p, va, 4*addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if !p.Filter.ProbeQuiet(va) {
		t.Error("filter not updated")
	}
	pte, _ := p.PT.Lookup(va)
	if !pte.Shared {
		t.Error("PTE shared bit not set")
	}
	// The transition must flush the affected pages (4 pages) and shoot
	// down their translations.
	if len(sink.flushedPages) != 4 || len(sink.shootdowns) != 4 {
		t.Errorf("flushes=%d shootdowns=%d, want 4,4",
			len(sink.flushedPages), len(sink.shootdowns))
	}
	if err := k.MarkShared(p, 0xdead_000, addr.PageSize); err == nil {
		t.Error("MarkShared of unmapped range succeeded")
	}
}

func TestRebuildFilterDropsStaleRanges(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	va1, _ := p.Mmap(4*addr.PageSize, addr.PermRW, MmapOpts{})
	va2, _ := p.Mmap(4*addr.PageSize, addr.PermRW, MmapOpts{})
	k.MarkShared(p, va1, 4*addr.PageSize)
	k.MarkShared(p, va2, 4*addr.PageSize)
	// Range 1 goes private again: drop it from the live list and rebuild.
	p.SynonymRanges = p.SynonymRanges[1:]
	k.RebuildFilter(p)
	if !p.Filter.ProbeQuiet(va2) {
		t.Error("live range lost")
	}
	// va1 may still false-positive only if it shares granule bits with
	// va2 — with distinct granules it must be gone.
	if uint64(va1)>>15 != uint64(va2)>>15 && p.Filter.ProbeQuiet(va1) {
		t.Error("stale range survived rebuild")
	}
}

func TestContentShareAndCoW(t *testing.T) {
	k := newKernel(t)
	sink := &recordingSink{}
	k.AttachSink(sink)
	p1, _ := k.NewProcess()
	p2, _ := k.NewProcess()
	va1, _ := p1.Mmap(addr.PageSize, addr.PermRW, MmapOpts{})
	va2, _ := p2.Mmap(addr.PageSize, addr.PermRW, MmapOpts{})

	freeBefore := k.Alloc.FreeFrames()
	if err := k.ContentShare(p2, va2, p1, va1); err != nil {
		t.Fatal(err)
	}
	// Deduplication frees one frame.
	if k.Alloc.FreeFrames() != freeBefore+1 {
		t.Errorf("free frames %d -> %d, want +1", freeBefore, k.Alloc.FreeFrames())
	}
	// Both map the same frame, read-only, and are NOT synonym-marked.
	pa1, _ := p1.PT.Translate(va1)
	pa2, _ := p2.PT.Translate(va2)
	if pa1 != pa2 {
		t.Fatal("content share did not alias frames")
	}
	pte1, _ := p1.PT.Lookup(va1)
	pte2, _ := p2.PT.Lookup(va2)
	if pte1.Perm != addr.PermRO || pte2.Perm != addr.PermRO {
		t.Error("pages not read-only")
	}
	if p1.Filter.ProbeQuiet(va1) || p2.Filter.ProbeQuiet(va2) {
		t.Error("r/o content sharing polluted the synonym filters")
	}
	if len(sink.permUpdates) == 0 {
		t.Error("no cached-permission updates issued")
	}

	// A write breaks CoW: p2 gets a fresh private r/w frame.
	if !p2.HandleFault(va2, true) {
		t.Fatal("CoW fault rejected")
	}
	pa2after, _ := p2.PT.Translate(va2)
	if pa2after == pa1 {
		t.Error("CoW did not copy")
	}
	pte2, _ = p2.PT.Lookup(va2)
	if pte2.Perm != addr.PermRW {
		t.Error("CoW page not r/w")
	}
	if k.CoWFaults.Value() != 1 {
		t.Errorf("CoW faults = %d", k.CoWFaults.Value())
	}
}

func TestMapDMAIsSynonym(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	va, err := k.MapDMA(p, 16*addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Filter.ProbeQuiet(va) {
		t.Error("DMA pages not synonym-marked")
	}
	pte, _ := p.PT.Lookup(va)
	if !pte.Shared {
		t.Error("DMA PTE not shared")
	}
}

func TestFragmentSegmentsInjection(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	va, _ := p.Mmap(100*addr.PageSize, addr.PermRW, MmapOpts{})
	if got := len(p.FindRegion(va).Segments); got != 1 {
		t.Fatalf("segments before = %d", got)
	}
	if err := k.FragmentSegments(p, 10); err != nil {
		t.Fatal(err)
	}
	if got := len(p.FindRegion(va).Segments); got != 10 {
		t.Fatalf("segments after = %d, want 10", got)
	}
	// Page tables must still translate every page consistently with the
	// owning segment.
	for off := uint64(0); off < 100*addr.PageSize; off += addr.PageSize {
		a := va + addr.VA(off)
		paPT, ok := p.PT.Translate(a)
		if !ok {
			t.Fatalf("page %#x lost", off)
		}
		seg, ok := k.SegMgr.LookupSoft(p.ASID, a)
		if !ok || seg.Translate(a) != paPT {
			t.Fatalf("segment/PT mismatch at %#x", off)
		}
	}
}

func TestUtilizationAccounting(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	va, _ := p.Mmap(10*addr.PageSize, addr.PermRW, MmapOpts{})
	r := p.FindRegion(va)
	for i := 0; i < 5; i++ {
		p.Touch(va+addr.VA(i*addr.PageSize), r)
	}
	if u := p.Utilization(); u != 0.5 {
		t.Errorf("utilization = %f, want 0.5", u)
	}
	if p.TotalAccesses.Value() != 5 || p.SharedAccesses.Value() != 0 {
		t.Error("access accounting wrong")
	}
}

func TestExitReleasesResources(t *testing.T) {
	k := newKernel(t)
	free0 := k.Alloc.FreeFrames()
	p, _ := k.NewProcess()
	va, _ := p.Mmap(64*addr.PageSize, addr.PermRW, MmapOpts{})
	_ = va
	used := k.SegMgr.Table.Used()
	if used == 0 {
		t.Fatal("no segments allocated")
	}
	k.Exit(p)
	if k.SegMgr.Table.Used() != 0 {
		t.Error("segments leaked on exit")
	}
	if k.Alloc.FreeFrames() != free0 {
		t.Errorf("frames: %d -> %d", free0, k.Alloc.FreeFrames())
	}
	if k.Process(p.ASID) != nil {
		t.Error("process registry retains exited process")
	}
}

func TestMmapErrors(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	if _, err := p.Mmap(0, addr.PermRW, MmapOpts{}); err == nil {
		t.Error("zero-length mmap succeeded")
	}
	// Exhaust memory: a too-large eager mmap must fail.
	if _, err := p.Mmap(1<<31, addr.PermRW, MmapOpts{}); err == nil {
		t.Error("oversized mmap succeeded")
	}
}
