// Command benchcheck gates hot-path performance regressions: it compares
// a freshly measured BENCH_hotpath.json against the committed baseline
// and exits non-zero when any organization's batched throughput dropped
// by more than the threshold, or when any organization's batch/scalar
// speedup in the fresh run fell below the floor — the batched path must
// never be slower than the scalar path it replaces (the virt-2d 0.96x
// regression is the canonical example the floor exists to catch).
//
// The allowed regression is the -tolerance flag (default 0.10 = 10%), so
// gates with different noise floors — the hot-path microbenchmark vs the
// service throughput benchmark — can run the same checker with different
// slack. -threshold is the deprecated alias of -tolerance. The speedup
// floor is the -speedup-floor flag (default 1.0; negative disables it,
// for results files that carry no speedup column).
//
// Usage (see `make bench-check`):
//
//	benchcheck -base BENCH_hotpath.json -new /tmp/fresh.json -tolerance 0.10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"hybridvc/internal/buildinfo"
)

// benchFile mirrors the subset of BENCH_hotpath.json the check reads.
type benchFile struct {
	Organizations []benchRow `json:"organizations"`
}

type benchRow struct {
	Org             string  `json:"org"`
	BatchRefsPerSec float64 `json:"batch_refs_per_sec"`
	Speedup         float64 `json:"speedup"`
}

func main() {
	base := flag.String("base", "BENCH_hotpath.json", "recorded baseline results")
	fresh := flag.String("new", "", "freshly measured results to check")
	tolerance := flag.Float64("tolerance", 0.10, "max allowed fractional regression per organization (0 <= t < 1)")
	threshold := flag.Float64("threshold", 0.10, "deprecated alias of -tolerance")
	speedupFloor := flag.Float64("speedup-floor", 1.0, "min batch/scalar speedup per organization in the fresh run (negative disables)")
	version := buildinfo.Flag()
	flag.Parse()
	buildinfo.HandleFlag(version, "benchcheck")
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -new is required")
		os.Exit(2)
	}
	tol, err := pickTolerance(*tolerance, *threshold, flagsSet())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	regressions, err := check(*base, *fresh, tol, *speedupFloor)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchcheck: REGRESSION:", r)
		}
		os.Exit(1)
	}
	fmt.Println("benchcheck: ok — no organization regressed beyond the tolerance")
}

// flagsSet reports which flags were given explicitly.
func flagsSet() map[string]bool {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// pickTolerance resolves -tolerance against its deprecated -threshold
// alias and validates the result: a tolerance below 0 would fail every
// run, and 1 or above would pass any regression including a drop to
// zero, so both are rejected rather than silently gating nothing.
func pickTolerance(tolerance, threshold float64, set map[string]bool) (float64, error) {
	if set["tolerance"] && set["threshold"] && tolerance != threshold {
		return 0, fmt.Errorf("-tolerance %v and -threshold %v disagree; drop the deprecated -threshold", tolerance, threshold)
	}
	tol := tolerance
	if set["threshold"] && !set["tolerance"] {
		tol = threshold
	}
	if tol < 0 || tol >= 1 {
		return 0, fmt.Errorf("-tolerance %v out of range: want 0 <= t < 1 (fraction of baseline throughput)", tol)
	}
	return tol, nil
}

// check compares the fresh batch throughput of every baseline organization
// and returns one message per regression beyond the threshold, plus one
// per fresh organization whose batch/scalar speedup fell below the floor
// (speedupFloor < 0 disables that gate). Fresh organizations missing from
// the baseline are ignored for the throughput comparison (new design
// points) but still face the speedup floor; baseline organizations missing
// from the fresh run are reported — a silently dropped row must not pass
// the gate.
func check(basePath, freshPath string, threshold, speedupFloor float64) ([]string, error) {
	baseRows, err := load(basePath)
	if err != nil {
		return nil, err
	}
	freshRows, err := load(freshPath)
	if err != nil {
		return nil, err
	}
	var regressions []string
	for org, b := range baseRows {
		f, ok := freshRows[org]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in %s but missing from %s", org, basePath, freshPath))
			continue
		}
		floor := b.BatchRefsPerSec * (1 - threshold)
		if f.BatchRefsPerSec < floor {
			regressions = append(regressions, fmt.Sprintf(
				"%s: batch %.0f refs/s < %.0f (baseline %.0f - %.0f%%)",
				org, f.BatchRefsPerSec, floor, b.BatchRefsPerSec, 100*threshold))
		}
	}
	if speedupFloor >= 0 {
		for org, f := range freshRows {
			if f.Speedup < speedupFloor {
				regressions = append(regressions, fmt.Sprintf(
					"%s: batch/scalar speedup %.2fx < %.2fx floor — the batched path must not be slower than scalar",
					org, f.Speedup, speedupFloor))
			}
		}
	}
	sort.Strings(regressions)
	return regressions, nil
}

// load reads a results file into org -> row.
func load(path string) (map[string]benchRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Organizations) == 0 {
		return nil, fmt.Errorf("%s: no organization rows", path)
	}
	out := make(map[string]benchRow, len(bf.Organizations))
	for _, r := range bf.Organizations {
		out[r.Org] = r
	}
	return out, nil
}
