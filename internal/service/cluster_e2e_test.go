// End-to-end tests of the multi-node cluster: several in-process hvcd
// daemons sharing a static membership, exercised over live HTTP — owner
// agreement, peer fetch with provenance, replication convergence,
// cluster-wide dedup, the clustered metrics exposition, and the
// owner-routing client balancer.
package service_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hybridvc/internal/service"
	"hybridvc/internal/service/client"
	"hybridvc/internal/service/cluster"
	"hybridvc/internal/telemetry"
)

// clusterNode is one daemon of an in-process test cluster.
type clusterNode struct {
	id  string
	srv *service.Server
	c   *client.Client
	url string
}

const testClusterToken = "e2e-shared-secret"

// startCluster boots n clustered daemons. The listeners are bound
// before any daemon starts, so every member URL is known up front —
// the same ordering a deployment's static -peers flag relies on.
func startCluster(t *testing.T, n int, mut func(i int, cfg *service.Config)) []*clusterNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	members := make([]cluster.Member, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		members[i] = cluster.Member{ID: fmt.Sprintf("n%d", i+1), URL: "http://" + ln.Addr().String()}
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		clus, err := cluster.New(cluster.Config{
			NodeID:        members[i].ID,
			Members:       members,
			Token:         testClusterToken,
			FetchTimeout:  2 * time.Second,
			ProbeInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := service.Config{
			Workers: 1, SpoolDir: t.TempDir(),
			NodeID: members[i].ID, Cluster: clus,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		srv, err := service.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		nodes[i] = &clusterNode{
			id: members[i].ID, srv: srv,
			c: client.New(members[i].URL, nil), url: members[i].URL,
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := srv.Drain(ctx); err != nil {
				t.Errorf("drain %s: %v", members[i].ID, err)
			}
			ts.Close()
		})
	}
	return nodes
}

// specCacheKey computes a spec's content-addressed key exactly as the
// servers will, without mutating the caller's copy.
func specCacheKey(t *testing.T, spec service.JobSpec) string {
	t.Helper()
	spec.Workloads = append([]string(nil), spec.Workloads...)
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	return spec.CacheKey()
}

// nodeByID finds a cluster node by member ID.
func nodeByID(t *testing.T, nodes []*clusterNode, id string) *clusterNode {
	t.Helper()
	for _, n := range nodes {
		if n.id == id {
			return n
		}
	}
	t.Fatalf("no node %q", id)
	return nil
}

// clusterMet unwraps a node's cluster metrics block (fatal when absent —
// a clustered node must always expose it).
func clusterMet(t *testing.T, n *clusterNode) service.ClusterMetrics {
	t.Helper()
	m := n.srv.MetricsSnapshot()
	if m.Cluster == nil {
		t.Fatalf("node %s: no cluster metrics block", n.id)
	}
	return *m.Cluster
}

// TestClusterOwnerAgreement: every node derives the same owner for any
// key — the property the whole fetch protocol stands on — and the
// /v1/cluster view exposes the same sorted membership everywhere.
func TestClusterOwnerAgreement(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	ctx := context.Background()
	for seed := int64(1); seed <= 20; seed++ {
		key := specCacheKey(t, service.JobSpec{Instructions: 30_000, Seed: seed})
		owner := nodes[0].srv.Cluster().OwnerOf(key)
		for _, n := range nodes[1:] {
			if got := n.srv.Cluster().OwnerOf(key); got.ID != owner.ID {
				t.Fatalf("seed %d: node %s owner %s, node %s owner %s",
					seed, nodes[0].id, owner.ID, n.id, got.ID)
			}
		}
	}
	for _, n := range nodes {
		view, err := n.c.Cluster(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !view.Enabled || view.NodeID != n.id || len(view.Members) != 3 {
			t.Fatalf("node %s cluster view: %+v", n.id, view)
		}
		for i, m := range view.Members {
			if m.ID != fmt.Sprintf("n%d", i+1) {
				t.Errorf("node %s member[%d] = %s, want sorted membership", n.id, i, m.ID)
			}
			if m.Self != (m.ID == n.id) {
				t.Errorf("node %s: member %s self flag = %v", n.id, m.ID, m.Self)
			}
		}
	}
}

// TestClusterPeerFetchProvenance: a result simulated on its owner is
// served to a submission on any other node via a peer fetch, with
// byte-identical report, provenance "peer" and the owner's node ID —
// and the fetched record is promoted locally so the next submission on
// that node never crosses the network again.
func TestClusterPeerFetchProvenance(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	ctx := context.Background()
	spec := service.JobSpec{Instructions: 30_000, Seed: 7}
	key := specCacheKey(t, spec)
	owner := nodeByID(t, nodes, nodes[0].srv.Cluster().OwnerOf(key).ID)
	var other *clusterNode
	for _, n := range nodes {
		if n.id != owner.id {
			other = n
			break
		}
	}

	resp, err := owner.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached || resp.Deduped {
		t.Fatalf("first submission on owner not fresh: %+v", resp)
	}
	canonical := waitState(t, owner.c, resp.ID, service.StateDone).Report

	peerResp, err := other.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !peerResp.Cached {
		t.Fatalf("peer-served submission not reported cached: %+v", peerResp)
	}
	st := waitState(t, other.c, peerResp.ID, service.StateDone)
	if st.Provenance != "peer" || st.OriginNode != owner.id {
		t.Fatalf("peer-served job provenance=%q origin_node=%q, want peer/%s",
			st.Provenance, st.OriginNode, owner.id)
	}
	if !bytes.Equal(st.Report, canonical) {
		t.Error("peer-served report differs from the owner's bytes")
	}

	// The fetched record was installed locally: a resubmission on the
	// same node serves without another peer call.
	before := clusterMet(t, other)
	again, err := other.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitState(t, other.c, again.ID, service.StateDone)
	if st2.OriginNode != owner.id || !bytes.Equal(st2.Report, canonical) {
		t.Errorf("local re-serve lost origin: origin_node=%q", st2.OriginNode)
	}
	after := clusterMet(t, other)
	if after.Fetches != before.Fetches {
		t.Errorf("resubmission crossed the network: fetches %d → %d", before.Fetches, after.Fetches)
	}
	if before.Fetches != 1 || before.Hits != 1 {
		t.Errorf("non-owner fetch counters = %d/%d, want exactly one hit", before.Fetches, before.Hits)
	}
	if om := clusterMet(t, owner); om.Served != 1 {
		t.Errorf("owner served %d peer GETs, want 1", om.Served)
	}

	// Cluster-wide accounting: exactly one simulation for the key.
	sims := uint64(0)
	for _, n := range nodes {
		sims += n.srv.MetricsSnapshot().Simulated
	}
	if sims != 1 {
		t.Errorf("cluster simulated %d times for one key, want 1", sims)
	}
}

// TestClusterReplicationConverges: a simulation on a NON-owner node
// replicates onto the owner before the job finishes, so the owner (and,
// through it, every other node) serves the result without simulating.
func TestClusterReplicationConverges(t *testing.T) {
	nodes := startCluster(t, 3, func(i int, cfg *service.Config) {
		cfg.StoreDir = t.TempDir() // replication should land durably too
	})
	ctx := context.Background()

	// Find a spec owned by some node other than n1, and submit it to n1.
	var spec service.JobSpec
	var owner *clusterNode
	for seed := int64(1); ; seed++ {
		spec = service.JobSpec{Instructions: 30_000, Seed: seed}
		id := nodes[0].srv.Cluster().OwnerOf(specCacheKey(t, spec)).ID
		if id != nodes[0].id {
			owner = nodeByID(t, nodes, id)
			break
		}
	}
	resp, err := nodes[0].c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	canonical := waitState(t, nodes[0].c, resp.ID, service.StateDone).Report

	// The job finished, so the synchronous best-effort replication has
	// already run: the owner holds the record.
	if m := clusterMet(t, nodes[0]); m.Replicated != 1 || m.ReplicateErrors != 0 {
		t.Fatalf("submitter replicated/errors = %d/%d, want 1/0", m.Replicated, m.ReplicateErrors)
	}
	if m := clusterMet(t, owner); m.Accepted != 1 {
		t.Fatalf("owner accepted %d replications, want 1", m.Accepted)
	}

	// The owner serves locally — no peer fetch, origin preserved.
	oresp, err := owner.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !oresp.Cached {
		t.Fatalf("owner submission after replication not cached: %+v", oresp)
	}
	st := waitState(t, owner.c, oresp.ID, service.StateDone)
	if st.Provenance != "memory" || st.OriginNode != nodes[0].id {
		t.Errorf("owner serve provenance=%q origin_node=%q, want memory/%s",
			st.Provenance, st.OriginNode, nodes[0].id)
	}
	if !bytes.Equal(st.Report, canonical) {
		t.Error("owner-served report differs from the simulating node's bytes")
	}
	if m := clusterMet(t, owner); m.Fetches != 0 {
		t.Errorf("owner fetched %d times serving its own key", m.Fetches)
	}
	if owner.srv.Store().Len() != 1 {
		t.Errorf("replicated record not durable on owner: store holds %d", owner.srv.Store().Len())
	}

	// A third node fetches it off the owner — the full triangle.
	third := nodes[0]
	for _, n := range nodes {
		if n.id != owner.id && n.id != nodes[0].id {
			third = n
			break
		}
	}
	tresp, err := third.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	tst := waitState(t, third.c, tresp.ID, service.StateDone)
	if tst.Provenance != "peer" || !bytes.Equal(tst.Report, canonical) {
		t.Errorf("third-node serve provenance=%q, want peer with canonical bytes", tst.Provenance)
	}
}

// TestClusterWideDedup: every key submitted to every node, and the
// cluster as a whole simulates each key exactly once.
func TestClusterWideDedup(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	ctx := context.Background()
	const keys = 6
	peerServes := 0
	for seed := int64(1); seed <= keys; seed++ {
		spec := service.JobSpec{Instructions: 30_000, Seed: seed}
		// Rotate which node sees the spec first, so both the fetch path
		// (first submit off-owner) and the replicate path get exercised.
		for j := 0; j < len(nodes); j++ {
			n := nodes[(int(seed)+j)%len(nodes)]
			resp, err := n.c.Submit(ctx, spec)
			if err != nil {
				t.Fatal(err)
			}
			st := waitState(t, n.c, resp.ID, service.StateDone)
			if st.State != service.StateDone {
				t.Fatalf("seed %d on %s finished %s (%s)", seed, n.id, st.State, st.Error)
			}
			if j > 0 && !resp.Cached && !resp.Deduped {
				t.Errorf("seed %d resubmission on %s ran fresh", seed, n.id)
			}
			if st.Provenance == "peer" {
				peerServes++
			}
		}
	}
	var sims uint64
	for _, n := range nodes {
		sims += n.srv.MetricsSnapshot().Simulated
	}
	if sims != keys {
		t.Errorf("cluster simulated %d jobs for %d unique keys", sims, keys)
	}
	if peerServes == 0 {
		t.Error("no submission was served over the peer API")
	}
}

// TestClusterMetricsExposition: a clustered node's /metrics is
// well-formed, carries the peer/cluster families with live values, and
// stamps the node identity label.
func TestClusterMetricsExposition(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	ctx := context.Background()
	spec := service.JobSpec{Instructions: 30_000, Seed: 3}
	resp, err := nodes[0].c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, nodes[0].c, resp.ID, service.StateDone)

	body, err := nodes[0].c.MetricsProm(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.Lint(body); err != nil {
		t.Fatalf("clustered exposition not well-formed: %v\n%s", err, body)
	}
	if v := promValue(t, body, "hvcd_cluster_nodes"); v != 3 {
		t.Errorf("hvcd_cluster_nodes = %v, want 3", v)
	}
	if v := promValue(t, body, `hvcd_node_info{node_id="n1"}`); v != 1 {
		t.Errorf("hvcd_node_info = %v, want 1", v)
	}
	// Health probes run on a 50ms cadence against live peers, so both
	// should be healthy by the time a job has completed.
	if v := promValue(t, body, "hvcd_cluster_peers_healthy"); v != 2 {
		t.Errorf("hvcd_cluster_peers_healthy = %v, want 2", v)
	}

	snap := nodes[0].srv.MetricsSnapshot()
	if snap.NodeID != "n1" {
		t.Errorf("snapshot node_id = %q", snap.NodeID)
	}
}

// TestClusterPeerAuth: peer routes demand the shared token and do not
// exist at all on a single-node daemon.
func TestClusterPeerAuth(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	ctx := context.Background()
	spec := service.JobSpec{Instructions: 30_000, Seed: 1}
	key := specCacheKey(t, spec)
	resp, err := nodes[0].c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, nodes[0].c, resp.ID, service.StateDone)

	get := func(url, token string) int {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set(cluster.TokenHeader, token)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		io.Copy(io.Discard, r.Body)
		return r.StatusCode
	}
	peerURL := nodes[0].url + cluster.PeerResultsPath + key
	if code := get(peerURL, ""); code != http.StatusUnauthorized {
		t.Errorf("tokenless peer GET = %d, want 401", code)
	}
	if code := get(peerURL, "wrong-token"); code != http.StatusUnauthorized {
		t.Errorf("bad-token peer GET = %d, want 401", code)
	}
	if code := get(peerURL, testClusterToken); code != http.StatusOK {
		t.Errorf("authenticated peer GET = %d, want 200", code)
	}

	// Single-node daemon: the route answers 404 — clustering disabled.
	_, _, soloURL := startServerURL(t, service.Config{Workers: 1})
	if code := get(soloURL+cluster.PeerResultsPath+key, testClusterToken); code != http.StatusNotFound {
		t.Errorf("single-node peer GET = %d, want 404", code)
	}
}

// TestBalancerOwnerRouting: the client balancer learns the membership
// from /v1/cluster and routes every submission straight to its key's
// owner, so no peer fetch ever happens — convergence by routing alone.
func TestBalancerOwnerRouting(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	ctx := context.Background()
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.url
	}
	bal, err := client.NewBalancer(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bal.Refresh(ctx); err != nil {
		t.Fatal(err)
	}

	const keys = 6
	for seed := int64(1); seed <= keys; seed++ {
		spec := service.JobSpec{Instructions: 30_000, Seed: seed}
		ownerID, ok := bal.Owner(spec)
		if !ok {
			t.Fatalf("seed %d: balancer has no owner after Refresh", seed)
		}
		resp, served, err := bal.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		owner := nodeByID(t, nodes, ownerID)
		if served.Base() != strings.TrimRight(owner.url, "/") {
			t.Errorf("seed %d routed to %s, owner is %s (%s)", seed, served.Base(), ownerID, owner.url)
		}
		if resp.Cached || resp.Deduped {
			t.Errorf("seed %d: owner-routed first submission not fresh: %+v", seed, resp)
		}
		st := waitState(t, served, resp.ID, service.StateDone)
		if st.State != service.StateDone {
			t.Fatalf("seed %d finished %s (%s)", seed, st.State, st.Error)
		}
	}
	// Owner routing means zero cross-node traffic: no fetches anywhere,
	// and the per-node simulation counts sum to the key count.
	var sims uint64
	for _, n := range nodes {
		m := clusterMet(t, n)
		if m.Fetches != 0 || m.Replicated != 0 {
			t.Errorf("node %s: fetches=%d replicated=%d with owner routing, want 0/0",
				n.id, m.Fetches, m.Replicated)
		}
		sims += n.srv.MetricsSnapshot().Simulated
	}
	if sims != keys {
		t.Errorf("cluster simulated %d for %d owner-routed keys", sims, keys)
	}
}

// TestBalancerFailover: a dead server in the list costs nothing — the
// balancer fails over round-robin and the submission lands.
func TestBalancerFailover(t *testing.T) {
	_, _, liveURL := startServerURL(t, service.Config{Workers: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close() // nothing will ever answer here

	bal, err := client.NewBalancer([]string{deadURL, liveURL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := bal.Refresh(ctx); err != nil {
		t.Fatal(err) // the live server answers /v1/cluster
	}
	for seed := int64(1); seed <= 3; seed++ {
		resp, served, err := bal.Submit(ctx, service.JobSpec{Instructions: 30_000, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if served.Base() != strings.TrimRight(liveURL, "/") {
			t.Errorf("seed %d served by %s, want the live server", seed, served.Base())
		}
		waitState(t, served, resp.ID, service.StateDone)
	}
}
