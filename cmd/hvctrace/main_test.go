package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDumpGolden decodes the captured golden trace and compares the
// human-readable dump byte-for-byte against the committed expectation.
func TestDumpGolden(t *testing.T) {
	tracePath := filepath.Join("testdata", "golden.hvct")
	want, err := os.ReadFile(filepath.Join("testdata", "golden_dump16.txt"))
	if err != nil {
		t.Fatalf("read golden dump: %v", err)
	}
	var buf bytes.Buffer
	if err := doDump(tracePath, 16, &buf); err != nil {
		t.Fatalf("doDump: %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("dump mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 16 {
		t.Errorf("dump printed %d lines, want 16", lines)
	}
}

// TestDumpPastEOF asks for more records than the trace holds; the dump
// must stop cleanly at EOF.
func TestDumpPastEOF(t *testing.T) {
	var buf bytes.Buffer
	if err := doDump(filepath.Join("testdata", "golden.hvct"), 10_000, &buf); err != nil {
		t.Fatalf("doDump: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 64 {
		t.Errorf("dump printed %d lines, want the trace's 64", lines)
	}
}
