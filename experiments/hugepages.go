package experiments

import (
	"fmt"

	"hybridvc"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

// AblationHugePages (A3) pits the conventional mitigation for TLB reach —
// transparent 2 MiB huge pages — against delayed many-segment translation.
// Huge pages multiply TLB reach 512x but still cap it (32 entries x 2 MiB
// = 64 MiB here), while segments cover arbitrarily large contiguous
// regions; the paper's Section IV argument in one table.
func AblationHugePages(scale Scale) *stats.Table {
	n := scale.pick(40_000, 500_000)
	t := stats.NewTable("Ablation A3: huge pages vs many-segment delayed translation",
		"workload", "baseline 4K", "baseline 2M (THP)", "hybrid many-seg+SC")
	for _, wl := range []string{"gups", "mcf"} {
		spec := workload.Specs[wl]
		run := func(org hybridvc.Organization, huge bool) uint64 {
			s := spec
			s.HugePages = huge
			sys, err := hybridvc.New(hybridvc.Config{Org: org})
			if err != nil {
				panic(err)
			}
			if err := sys.LoadSpec(s); err != nil {
				panic(fmt.Sprintf("hugepages %s: %v", wl, err))
			}
			rep, err := sys.Run(n)
			if err != nil {
				panic(err)
			}
			return rep.Cycles
		}
		base4k := run(hybridvc.Baseline, false)
		base2m := run(hybridvc.Baseline, true)
		hybrid := run(hybridvc.HybridManySegSC, false)
		t.AddRow(wl,
			fmt.Sprintf("%d (1.00x)", base4k),
			fmt.Sprintf("%d (%.2fx)", base2m, float64(base4k)/float64(base2m)),
			fmt.Sprintf("%d (%.2fx)", hybrid, float64(base4k)/float64(hybrid)))
	}
	return t
}
