package segment

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/mem"
)

// Index tree geometry (Section IV-C): each node occupies one 64-byte cache
// block and holds six keys with seven values, so 2048 segments fit in a
// tree of depth four.
const (
	// NodeKeys is the maximum keys per node.
	NodeKeys = 6
	// NodeChildren is the maximum children per internal node.
	NodeChildren = 7
	// NodesPerPage is how many 64 B nodes fit in a 4 KiB frame.
	NodesPerPage = addr.PageSize / addr.LineSize
)

// NodeArena materializes index tree nodes at physical addresses so the
// index cache (a physically addressed cache of 64 B blocks) can cache them
// and so node fetches are charged as memory accesses. Node *contents* are
// kept in Go structures rather than encoded into the backing store; the
// paper's hardware packs six keys and seven values into a 64 B line with
// field compression, which affects only the encoding, not the traffic.
type NodeArena struct {
	alloc  *mem.Allocator
	frames []addr.PA
	next   int // next free node slot within the last frame
	// Live counts nodes currently allocated.
	Live int
}

// NewNodeArena creates an arena drawing frames from alloc.
func NewNodeArena(alloc *mem.Allocator) *NodeArena {
	return &NodeArena{alloc: alloc}
}

// newNodePA assigns the physical address for a new node.
func (a *NodeArena) newNodePA() (addr.PA, error) {
	if len(a.frames) == 0 || a.next == NodesPerPage {
		f, ok := a.alloc.AllocFrame()
		if !ok {
			return 0, fmt.Errorf("segment: out of memory for index tree nodes")
		}
		a.frames = append(a.frames, f)
		a.next = 0
	}
	pa := a.frames[len(a.frames)-1] + addr.PA(a.next*addr.LineSize)
	a.next++
	a.Live++
	return pa, nil
}

// Reset releases every frame (used when the tree is rebuilt).
func (a *NodeArena) Reset() {
	for _, f := range a.frames {
		a.alloc.Free(f, 1)
	}
	a.frames = a.frames[:0]
	a.next = 0
	a.Live = 0
}

// TreeEntry is one (segment start key, segment ID) pair.
type TreeEntry struct {
	Key   Key
	Value ID
}

// node is one index tree node, pinned at a physical line address.
type node struct {
	pa       addr.PA
	leaf     bool
	keys     []Key
	values   []ID    // leaf only, parallel to keys
	children []*node // internal only, len(keys)+1
	// prev/next doubly link the leaves so predecessor lookups can step
	// left past leaves drained by lazy deletion (each hop costs one more
	// node fetch, charged in the walk path).
	prev, next *node
}

// IndexTree is the OS-maintained B-tree mapping ASID+VA to segment IDs.
// It is bulk-built from the sorted segment list, which keeps it perfectly
// balanced.
type IndexTree struct {
	arena *NodeArena
	root  *node
	depth int
	count int
}

// NewIndexTree creates an empty tree.
func NewIndexTree(arena *NodeArena) *IndexTree {
	return &IndexTree{arena: arena}
}

// Depth returns the number of node levels (0 for an empty tree).
func (t *IndexTree) Depth() int { return t.depth }

// Len returns the number of entries.
func (t *IndexTree) Len() int { return t.count }

// NodeCount returns the number of materialized nodes.
func (t *IndexTree) NodeCount() int { return t.arena.Live }

// Build replaces the tree contents with the given entries, which must be
// sorted by key and duplicate-free. It panics on unsorted input: the
// manager always supplies a sorted segment list.
func (t *IndexTree) Build(entries []TreeEntry) {
	for i := 1; i < len(entries); i++ {
		if entries[i].Key <= entries[i-1].Key {
			panic("segment: Build input not strictly sorted")
		}
	}
	t.arena.Reset()
	t.root = nil
	t.depth = 0
	t.count = len(entries)
	if len(entries) == 0 {
		return
	}

	// Leaf level: chunk entries into nodes of at most NodeKeys.
	var level []*node
	for start := 0; start < len(entries); start += NodeKeys {
		end := start + NodeKeys
		if end > len(entries) {
			end = len(entries)
		}
		n := &node{leaf: true}
		for _, e := range entries[start:end] {
			n.keys = append(n.keys, e.Key)
			n.values = append(n.values, e.Value)
		}
		if len(level) > 0 {
			prev := level[len(level)-1]
			prev.next = n
			n.prev = prev
		}
		level = append(level, n)
	}
	t.depth = 1

	// Internal levels: group children by NodeChildren per parent. A
	// parent's separator key i is the minimum key of child i+1's subtree.
	for len(level) > 1 {
		var parents []*node
		for start := 0; start < len(level); start += NodeChildren {
			end := start + NodeChildren
			if end > len(level) {
				end = len(level)
			}
			p := &node{}
			p.children = append(p.children, level[start:end]...)
			for _, c := range level[start+1 : end] {
				p.keys = append(p.keys, c.minKey())
			}
			parents = append(parents, p)
		}
		level = parents
		t.depth++
	}
	t.root = level[0]
	t.assignAddresses()
}

// minKey returns the smallest key in the node's subtree.
func (n *node) minKey() Key {
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0]
}

// assignAddresses pins every node at a physical line, breadth-first so
// sibling nodes share frames (good spatial locality in the index cache).
func (t *IndexTree) assignAddresses() {
	queue := []*node{t.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		pa, err := t.arena.newNodePA()
		if err != nil {
			panic(err) // tree nodes are tiny; exhaustion means misconfiguration
		}
		n.pa = pa
		if !n.leaf {
			queue = append(queue, n.children...)
		}
	}
}

// Lookup walks the tree for the segment whose start key is the greatest
// key <= MakeKey(asid, va). It returns the segment ID (or NoID), and the
// physical addresses of the nodes visited — the accesses a hardware walker
// issues against the index cache.
func (t *IndexTree) Lookup(asid addr.ASID, va addr.VA) (ID, []addr.PA) {
	if t.root == nil {
		return NoID, nil
	}
	return t.LookupInto(asid, va, make([]addr.PA, 0, t.depth))
}

// LookupInto is Lookup appending the visited node addresses into path
// (reusing its backing array) instead of allocating per walk; callers on
// the batched hot path pass a scratch slice they own.
func (t *IndexTree) LookupInto(asid addr.ASID, va addr.VA, path []addr.PA) (ID, []addr.PA) {
	if t.root == nil {
		return NoID, path
	}
	key := MakeKey(asid, va)
	n := t.root
	for {
		path = append(path, n.pa)
		if n.leaf {
			// Greatest entry key <= key, stepping to left siblings when
			// lazy deletion drained this leaf's range.
			for n != nil {
				for i := len(n.keys) - 1; i >= 0; i-- {
					if n.keys[i] <= key {
						return n.values[i], path
					}
				}
				n = n.prev
				if n != nil {
					path = append(path, n.pa)
				}
			}
			return NoID, path
		}
		// The leftmost child whose subtree may contain the predecessor:
		// route right past every separator <= key.
		i := 0
		for i < len(n.keys) && n.keys[i] <= key {
			i++
		}
		n = n.children[i]
	}
}

// checkInvariants validates B-tree structure; tests use it.
func (t *IndexTree) checkInvariants() error {
	if t.root == nil {
		return nil
	}
	var walk func(n *node, depth int, lo, hi Key) (int, error)
	walk = func(n *node, depth int, lo, hi Key) (int, error) {
		// Lazy deletion may drain a leaf completely; internal nodes never
		// lose keys, so only leaves (and the root) may be empty.
		if len(n.keys) == 0 && n != t.root && !n.leaf {
			return 0, fmt.Errorf("empty internal node")
		}
		if len(n.keys) > NodeKeys {
			return 0, fmt.Errorf("node has %d keys", len(n.keys))
		}
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i] <= n.keys[i-1] {
				return 0, fmt.Errorf("unsorted keys")
			}
		}
		for _, k := range n.keys {
			if k < lo || k > hi {
				return 0, fmt.Errorf("key %d outside [%d,%d]", k, lo, hi)
			}
		}
		if n.leaf {
			if len(n.values) != len(n.keys) {
				return 0, fmt.Errorf("leaf values/keys mismatch")
			}
			return depth, nil
		}
		if len(n.children) != len(n.keys)+1 {
			return 0, fmt.Errorf("children/keys mismatch")
		}
		want := -1
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i] - 1
			}
			d, err := walk(c, depth+1, clo, chi)
			if err != nil {
				return 0, err
			}
			if want == -1 {
				want = d
			} else if d != want {
				return 0, fmt.Errorf("unbalanced leaves")
			}
		}
		return want, nil
	}
	_, err := walk(t.root, 1, 0, ^Key(0))
	return err
}
