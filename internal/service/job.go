package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"hybridvc/internal/stats"
)

// Job states. A job moves queued → running → one of the terminal states;
// a deduplicated or cache-served submission is born done.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// Job is one scheduled unit of work. All mutable fields are guarded by
// mu; the HTTP handlers, the worker running the job, and the streaming
// endpoint all touch jobs concurrently.
type Job struct {
	// ID and Key are immutable after creation.
	ID  string
	Key string

	// Lineage is the lineage ID of the submission that created this job
	// (immutable). Coalesced submissions keep their own lineage IDs in
	// the response/logs but share this job; a cache-served job's chain
	// back to the producing run is in parentLineage.
	Lineage string

	// Spec is the normalized spec (immutable after creation).
	Spec JobSpec

	// cancel aborts the job's context; done closes when the job reaches
	// a terminal state (watchers and the streaming endpoint select on it).
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu            sync.Mutex
	state         string
	errMsg        string
	reportJSON    []byte
	tables        []string
	cached        bool
	provenance    string // cache-served jobs: "memory", "disk" or "peer"
	originNode    string // cluster node that originally simulated the result
	checkpoint    string
	parentLineage string
	created       time.Time
	started       time.Time
	finished      time.Time
	tl            *stats.Timeline

	// expired marks a job whose per-job deadline fired; the worker then
	// finalizes it as failed-with-reason instead of canceled. deadline
	// is the armed timer, stopped on finish.
	expired  bool
	deadline *time.Timer
}

// newJob creates a queued job with its own cancellation context,
// parented on the server lifetime rather than any HTTP request: the
// submitting connection may vanish while the job runs.
func newJob(id, key, lineage string, spec JobSpec, parent context.Context) *Job {
	ctx, cancel := context.WithCancel(parent)
	return &Job{
		ID: id, Key: key, Lineage: lineage, Spec: spec,
		ctx: ctx, cancel: cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
	}
}

// Done returns the channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation. It is idempotent and a no-op once the
// job is terminal.
func (j *Job) Cancel() { j.cancel() }

// armDeadline starts the job's deadline clock: d after now, a
// still-unfinished job is marked expired and its context cancelled, so
// a running simulation quiesces at its next chunk boundary and the
// worker finalizes the job as failed ("deadline exceeded") rather than
// leaving watchers hanging on a job that will never finish. d <= 0
// leaves the job unbounded.
func (j *Job) armDeadline(d time.Duration) {
	if d <= 0 {
		return
	}
	j.mu.Lock()
	if !terminal(j.state) {
		j.deadline = time.AfterFunc(d, j.expire)
	}
	j.mu.Unlock()
}

// expire marks the job deadline-exceeded and cancels its context. A
// no-op once the job is terminal (the timer racing a normal finish).
func (j *Job) expire() {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return
	}
	j.expired = true
	j.mu.Unlock()
	j.cancel()
}

// Expired reports whether the job's deadline fired before it finished.
func (j *Job) Expired() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.expired
}

// State returns the current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// timeline returns the live (or cached) timeline, which may be nil
// before the simulation constructs it and for sweep jobs.
func (j *Job) timeline() *stats.Timeline {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tl
}

// setTimeline publishes the timeline for streaming readers. The worker
// calls it as soon as the simulator exists, before the run starts.
func (j *Job) setTimeline(tl *stats.Timeline) {
	j.mu.Lock()
	j.tl = tl
	j.mu.Unlock()
}

// start transitions queued → running. It returns false when the job was
// already cancelled (the worker then finalizes it without running).
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	if j.ctx.Err() != nil {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state exactly once, recording the
// outcome and waking watchers. Later calls are ignored.
func (j *Job) finish(state string, report []byte, tables []string, errMsg string) {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.reportJSON = report
	j.tables = tables
	j.errMsg = errMsg
	j.finished = time.Now()
	if j.deadline != nil {
		j.deadline.Stop()
		j.deadline = nil
	}
	j.mu.Unlock()
	j.cancel() // release the context watcher; idempotent
	close(j.done)
}

// finishCached marks a freshly created job done with a cache-served
// result (it was never queued). parentLineage is the lineage ID of the
// job that originally produced the cached result, so the lineage chain
// request → cached result → producing run stays traceable; provenance
// records which tier served it ("memory", "disk" or "peer") and
// originNode which cluster node originally simulated it (empty outside
// a cluster).
func (j *Job) finishCached(report []byte, tables []string, intervals []stats.Interval, parentLineage, provenance, originNode string) {
	tl := &stats.Timeline{}
	for _, iv := range intervals {
		tl.Append(iv)
	}
	j.mu.Lock()
	j.cached = true
	j.provenance = provenance
	j.originNode = originNode
	j.tl = tl
	j.parentLineage = parentLineage
	j.created = time.Now()
	j.mu.Unlock()
	j.finish(StateDone, report, tables, "")
}

// latencies reports the job's lifecycle-stage durations as of now:
// queue wait (created→started), execution (started→now) and end-to-end
// (created→now). Unstarted jobs report zero wait and execution.
func (j *Job) latencies(now time.Time) (queueWait, execute, endToEnd time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.started.IsZero() {
		queueWait = j.started.Sub(j.created)
		execute = now.Sub(j.started)
	}
	endToEnd = now.Sub(j.created)
	return
}

// setCheckpoint records the sweep checkpoint journal path so a drain
// survivor can report where its partial progress lives.
func (j *Job) setCheckpoint(path string) {
	j.mu.Lock()
	j.checkpoint = path
	j.mu.Unlock()
}

// JobStatus is the wire representation of a job (GET /v1/jobs/{id}).
type JobStatus struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	// Provenance records which cache tier served a born-done job:
	// "memory" (LRU), "disk" (durable store) or "peer" (fetched from the
	// key's owner node). Empty for fresh runs and coalesced submissions.
	Provenance string `json:"provenance,omitempty"`
	// OriginNode is the cluster node that originally simulated the
	// result. Empty for locally simulated results outside a cluster.
	OriginNode string `json:"origin_node,omitempty"`
	Error      string `json:"error,omitempty"`

	// Lineage is the lineage ID of the submission that created the job;
	// ParentLineage (cache-served jobs only) is the lineage of the run
	// that originally produced the result.
	Lineage       string `json:"lineage"`
	ParentLineage string `json:"parent_lineage,omitempty"`

	Spec JobSpec `json:"spec"`

	// Report is the simulation report (sim jobs, done only); the bytes
	// are exactly what the simulation produced, so cache hits are
	// byte-identical to the original run.
	Report json.RawMessage `json:"report,omitempty"`
	// Tables are the rendered result tables (sweep jobs, done only).
	Tables []string `json:"tables,omitempty"`
	// Checkpoint is the sweep journal path for a canceled/drained sweep;
	// resubmitting the same spec resumes from it.
	Checkpoint string `json:"checkpoint,omitempty"`

	// Intervals counts timeline intervals recorded so far.
	Intervals int `json:"intervals"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Key: j.Key, State: j.state, Cached: j.cached,
		Provenance: j.provenance, OriginNode: j.originNode,
		Error: j.errMsg, Spec: j.Spec, Checkpoint: j.checkpoint,
		Lineage: j.Lineage, ParentLineage: j.parentLineage,
		Created: j.created,
	}
	if len(j.reportJSON) > 0 {
		st.Report = append(json.RawMessage(nil), j.reportJSON...)
	}
	st.Tables = append([]string(nil), j.tables...)
	if j.tl != nil {
		st.Intervals = j.tl.Len()
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}
