package experiments

import (
	"fmt"

	"hybridvc/internal/core"
	"hybridvc/internal/cpu"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/sim"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

// a4Result carries one serial/parallel cell's measurements.
type a4Result struct {
	cycles    uint64
	delayed   uint64
	dynamicPJ float64
}

// AblationSerialParallel (A4) quantifies Section IV-C's design choice:
// delayed translation can run in parallel with the LLC access (hiding its
// latency) or serially after the miss (saving the energy of translations
// that an LLC hit would have made unnecessary). The paper chooses serial;
// this table shows the latency/energy trade both ways.
func AblationSerialParallel(scale Scale) (*stats.Table, error) {
	n := scale.pick(40_000, 500_000)
	workloads := []string{"omnetpp", "gups"}
	modes := []bool{false, true}
	var cells []Cell
	for _, wl := range workloads {
		for _, parallel := range modes {
			wl, parallel := wl, parallel
			mode := "serial"
			if parallel {
				mode = "parallel"
			}
			cells = append(cells, Cell{
				Label: fmt.Sprintf("ablation-a4/%s/%s", wl, mode),
				Fn: func() (any, error) {
					k := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
					cfg := core.DefaultHybridConfig(1)
					cfg.ParallelDelayed = parallel
					ms := core.NewHybridMMU(cfg, k)
					gens, err := workload.NewGroup(workload.Specs[wl], k, 1)
					if err != nil {
						return nil, fmt.Errorf("a4 %s: %w", wl, err)
					}
					s := sim.New(sim.Config{CPU: cpu.DefaultConfig(), FetchEvery: 8, Timeslice: 50_000, Interleave: 128}, ms, gens)
					rep := s.Run(n)
					return a4Result{
						cycles:    rep.Cycles,
						delayed:   ms.DelayedTranslations.Value(),
						dynamicPJ: rep.DynamicEnergyPJ,
					}, nil
				},
			})
		}
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Ablation A4: serial vs parallel delayed translation",
		"workload", "mode", "cycles", "delayed xlations", "dynamic energy (pJ)")
	for wi, wl := range workloads {
		for mi, parallel := range modes {
			r := res[wi*len(modes)+mi].Value.(a4Result)
			mode := "serial (paper)"
			if parallel {
				mode = "parallel"
			}
			t.AddRow(wl, mode,
				fmt.Sprintf("%d", r.cycles),
				fmt.Sprintf("%d", r.delayed),
				fmt.Sprintf("%.0f", r.dynamicPJ))
		}
	}
	return t, nil
}
