package segment

import (
	"math/rand"
	"sort"
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/mem"
)

var asidA = addr.MakeASID(0, 1)
var asidB = addr.MakeASID(0, 2)

func newManager(t *testing.T) (*Manager, *mem.Allocator) {
	t.Helper()
	alloc := mem.NewAllocator(1 << 30)
	return NewManager(NewNodeArena(alloc)), alloc
}

func TestKeyRoundTrip(t *testing.T) {
	k := MakeKey(asidA, 0x7fff_ffff_f000)
	if k.ASID() != asidA || k.VA() != 0x7fff_ffff_f000 {
		t.Fatalf("round trip: %v %#x", k.ASID(), uint64(k.VA()))
	}
	// Keys order first by ASID, then by VA.
	if MakeKey(asidA, 0xffff_ffff_ffff) >= MakeKey(asidB, 0) {
		t.Error("key ordering violates ASID-major order")
	}
}

func TestSegmentContainsTranslate(t *testing.T) {
	s := &Segment{ASID: asidA, Base: 0x10000, Length: 0x4000, PABase: 0x9_0000, Perm: addr.PermRW}
	if !s.Contains(asidA, 0x10000) || !s.Contains(asidA, 0x13fff) {
		t.Error("segment excludes interior addresses")
	}
	if s.Contains(asidA, 0x14000) || s.Contains(asidA, 0xffff) {
		t.Error("segment includes exterior addresses")
	}
	if s.Contains(asidB, 0x10000) {
		t.Error("segment crosses address spaces")
	}
	if got := s.Translate(0x10123); got != 0x9_0123 {
		t.Errorf("translate = %#x", uint64(got))
	}
	if s.Pages() != 4 {
		t.Errorf("pages = %d", s.Pages())
	}
}

func TestSegmentUtilization(t *testing.T) {
	s := &Segment{ASID: asidA, Base: 0, Length: 10 * addr.PageSize}
	if s.Utilization() != 0 {
		t.Error("untouched segment has nonzero utilization")
	}
	s.Touch(0x0)
	s.Touch(0x10)   // same page
	s.Touch(0x1000) // second page
	if got := s.Utilization(); got != 0.2 {
		t.Errorf("utilization = %f, want 0.2", got)
	}
}

func TestTableAllocRelease(t *testing.T) {
	tb := NewTable()
	if tb.Capacity() != TableCapacity || tb.Used() != 0 {
		t.Fatal("fresh table wrong")
	}
	s := &Segment{}
	id, ok := tb.Alloc(s)
	if !ok || tb.Get(id) != s || s.ID != id {
		t.Fatal("alloc broken")
	}
	tb.Release(id)
	if tb.Get(id) != nil || tb.Used() != 0 {
		t.Fatal("release broken")
	}
	if tb.Get(NoID) != nil || tb.Get(TableCapacity) != nil {
		t.Error("out-of-range Get returned a segment")
	}
}

func TestTableExhaustion(t *testing.T) {
	tb := NewTable()
	for i := 0; i < TableCapacity; i++ {
		if _, ok := tb.Alloc(&Segment{}); !ok {
			t.Fatalf("alloc %d failed early", i)
		}
	}
	if _, ok := tb.Alloc(&Segment{}); ok {
		t.Error("alloc beyond capacity succeeded")
	}
}

func TestTableDoubleReleasePanics(t *testing.T) {
	tb := NewTable()
	id, _ := tb.Alloc(&Segment{})
	tb.Release(id)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	tb.Release(id)
}

func TestManagerAllocateLookup(t *testing.T) {
	m, _ := newManager(t)
	s, err := m.Allocate(asidA, 0x10000, 0x8000, 0x100000, addr.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.LookupSoft(asidA, 0x12000)
	if !ok || got != s {
		t.Fatal("lookup missed allocated segment")
	}
	if _, ok := m.LookupSoft(asidA, 0x18000); ok {
		t.Error("lookup hit beyond segment end")
	}
	if _, ok := m.LookupSoft(asidA, 0xf000); ok {
		t.Error("lookup hit before segment start")
	}
	if _, ok := m.LookupSoft(asidB, 0x12000); ok {
		t.Error("lookup crossed address spaces")
	}
}

func TestManagerOverlapRejected(t *testing.T) {
	m, _ := newManager(t)
	if _, err := m.Allocate(asidA, 0x10000, 0x8000, 0, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ base, len uint64 }{
		{0x10000, 0x1000}, // exact start
		{0x17000, 0x2000}, // tail overlap
		{0xf000, 0x2000},  // head overlap
		{0x12000, 0x1000}, // interior
	} {
		if _, err := m.Allocate(asidA, addr.VA(c.base), c.len, 0, addr.PermRW); err == nil {
			t.Errorf("overlap %+v accepted", c)
		}
	}
	// Adjacent (touching) ranges are fine.
	if _, err := m.Allocate(asidA, 0x18000, 0x1000, 0, addr.PermRW); err != nil {
		t.Errorf("adjacent allocation rejected: %v", err)
	}
	// Same range in another address space is fine.
	if _, err := m.Allocate(asidB, 0x10000, 0x8000, 0, addr.PermRW); err != nil {
		t.Errorf("cross-ASID allocation rejected: %v", err)
	}
	if _, err := m.Allocate(asidA, 0x20000, 0, 0, addr.PermRW); err == nil {
		t.Error("zero-length allocation accepted")
	}
}

func TestManagerFree(t *testing.T) {
	m, _ := newManager(t)
	s, _ := m.Allocate(asidA, 0x10000, 0x1000, 0, addr.PermRW)
	m.Free(s)
	if _, ok := m.LookupSoft(asidA, 0x10000); ok {
		t.Error("freed segment still found")
	}
	if m.Table.Used() != 0 {
		t.Error("table slot leaked")
	}
	// The range can be reallocated.
	if _, err := m.Allocate(asidA, 0x10000, 0x1000, 0, addr.PermRW); err != nil {
		t.Error(err)
	}
	if m.MaxUsed != 1 {
		t.Errorf("MaxUsed = %d", m.MaxUsed)
	}
}

func TestManagerSplitFragmentation(t *testing.T) {
	m, alloc := newManager(t)
	pa, _ := alloc.AllocContiguous(100)
	s, err := m.Allocate(asidA, 0x100000, 100*addr.PageSize, pa, addr.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Split(s, 10,
		func(frames uint64) (addr.PA, bool) { return alloc.AllocContiguous(frames) },
		func(p addr.PA, frames uint64) { alloc.Free(p, frames) })
	if err != nil {
		t.Fatal(err)
	}
	segs := m.Segments(asidA)
	if len(segs) != 10 {
		t.Fatalf("split produced %d segments", len(segs))
	}
	// The union must cover the original range exactly, in order.
	va := addr.VA(0x100000)
	var total uint64
	for _, s := range segs {
		if s.Base != va {
			t.Fatalf("gap at %#x", uint64(va))
		}
		va += addr.VA(s.Length)
		total += s.Length
	}
	if total != 100*addr.PageSize {
		t.Errorf("total length = %#x", total)
	}
	// Every address must still resolve.
	for off := uint64(0); off < 100*addr.PageSize; off += addr.PageSize {
		if _, ok := m.LookupSoft(asidA, addr.VA(0x100000+off)); !ok {
			t.Fatalf("address %#x lost after split", 0x100000+off)
		}
	}
}

func TestIndexTreeEmpty(t *testing.T) {
	m, _ := newManager(t)
	id, path := m.Tree.Lookup(asidA, 0x1000)
	if id != NoID || path != nil {
		t.Error("empty tree lookup returned something")
	}
	if m.Tree.Depth() != 0 || m.Tree.Len() != 0 {
		t.Error("empty tree has size")
	}
}

func TestIndexTreeDepthFour(t *testing.T) {
	// The paper's bound: 2048 segments fit in a depth-four tree with
	// fanout seven.
	m, _ := newManager(t)
	entries := make([]TreeEntry, TableCapacity)
	for i := range entries {
		entries[i] = TreeEntry{Key: MakeKey(asidA, addr.VA(i)<<20), Value: ID(i % TableCapacity)}
	}
	m.Tree.Build(entries)
	if d := m.Tree.Depth(); d != 4 {
		t.Errorf("depth = %d, want 4", d)
	}
	if err := m.Tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every key must resolve to its own value, and interior addresses to
	// their predecessor.
	for i := 0; i < TableCapacity; i += 37 {
		va := addr.VA(i) << 20
		id, path := m.Tree.Lookup(asidA, va)
		if id != ID(i%TableCapacity) {
			t.Fatalf("lookup %d returned %d", i, id)
		}
		if len(path) != 4 {
			t.Fatalf("path length %d", len(path))
		}
		id2, _ := m.Tree.Lookup(asidA, va+0x8000)
		if id2 != id {
			t.Fatalf("interior lookup returned %d, want %d", id2, id)
		}
	}
	// An address below the first segment start must miss.
	if id, _ := m.Tree.Lookup(addr.MakeASID(0, 0), 0); id != NoID {
		t.Error("address below all keys resolved")
	}
}

func TestIndexTreeBuildUnsortedPanics(t *testing.T) {
	m, _ := newManager(t)
	defer func() {
		if recover() == nil {
			t.Error("unsorted build did not panic")
		}
	}()
	m.Tree.Build([]TreeEntry{{Key: 5}, {Key: 3}})
}

func TestIndexTreeRandomizedAgainstReference(t *testing.T) {
	m, _ := newManager(t)
	rng := rand.New(rand.NewSource(4))
	keys := map[Key]ID{}
	for len(keys) < 500 {
		va := addr.VA(rng.Uint64()%(1<<40)) & ^addr.VA(0xfff)
		k := MakeKey(asidA, va)
		if _, dup := keys[k]; !dup {
			keys[k] = ID(len(keys))
		}
	}
	entries := make([]TreeEntry, 0, len(keys))
	for k, v := range keys {
		entries = append(entries, TreeEntry{Key: k, Value: v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	m.Tree.Build(entries)
	if err := m.Tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reference: binary search for predecessor.
	ref := func(k Key) ID {
		i := sort.Search(len(entries), func(i int) bool { return entries[i].Key > k })
		if i == 0 {
			return NoID
		}
		return entries[i-1].Value
	}
	for trial := 0; trial < 5000; trial++ {
		va := addr.VA(rng.Uint64() % (1 << 40))
		got, path := m.Tree.Lookup(asidA, va)
		if want := ref(MakeKey(asidA, va)); got != want {
			t.Fatalf("lookup %#x: got %d want %d", uint64(va), got, want)
		}
		if len(path) != m.Tree.Depth() && got != NoID {
			t.Fatalf("path length %d, depth %d", len(path), m.Tree.Depth())
		}
	}
}

func TestNodeArenaPacksAndResets(t *testing.T) {
	alloc := mem.NewAllocator(1 << 20)
	arena := NewNodeArena(alloc)
	pas := map[addr.PA]bool{}
	for i := 0; i < NodesPerPage+1; i++ {
		pa, err := arena.newNodePA()
		if err != nil {
			t.Fatal(err)
		}
		if pas[pa] {
			t.Fatal("duplicate node address")
		}
		if uint64(pa)%addr.LineSize != 0 {
			t.Fatal("node not line aligned")
		}
		pas[pa] = true
	}
	// 65 nodes need exactly 2 frames.
	if alloc.AllocatedFrames() != 2 {
		t.Errorf("frames = %d, want 2", alloc.AllocatedFrames())
	}
	arena.Reset()
	if alloc.AllocatedFrames() != 0 || arena.Live != 0 {
		t.Error("reset leaked frames")
	}
}

func TestCompactMergesAdjacentSegments(t *testing.T) {
	m, alloc := newManager(t)
	// Three VA- and PA-contiguous pieces plus one disjoint segment.
	pa, _ := alloc.AllocContiguous(48)
	for i := 0; i < 3; i++ {
		s, err := m.Allocate(asidA, addr.VA(i*16)*addr.PageSize, 16*addr.PageSize,
			pa+addr.PA(i*16)*addr.PageSize, addr.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		s.Touch(s.Base)
	}
	paX, _ := alloc.AllocContiguous(8)
	if _, err := m.Allocate(asidA, 1<<30, 8*addr.PageSize, paX, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	if merges := m.Compact(asidA); merges != 2 {
		t.Fatalf("merges = %d, want 2", merges)
	}
	if m.Table.Used() != 2 {
		t.Errorf("segments after compact = %d, want 2", m.Table.Used())
	}
	// Every address in the merged range still translates correctly.
	for off := uint64(0); off < 48*addr.PageSize; off += addr.PageSize {
		s, ok := m.LookupSoft(asidA, addr.VA(off))
		if !ok || s.Translate(addr.VA(off)) != pa+addr.PA(off) {
			t.Fatalf("translation broken at %#x", off)
		}
		if id, _ := m.Tree.Lookup(asidA, addr.VA(off)); id != s.ID {
			t.Fatalf("tree stale at %#x", off)
		}
	}
	// Touch accounting survives the merge.
	s, _ := m.LookupSoft(asidA, 0)
	if len(s.Touched) != 3 {
		t.Errorf("touched pages after merge = %d, want 3", len(s.Touched))
	}
}

func TestCompactSkipsNonContiguous(t *testing.T) {
	m, alloc := newManager(t)
	// VA-adjacent but physically disjoint: must NOT merge.
	paA, _ := alloc.AllocContiguous(16)
	paB, _ := alloc.AllocContiguous(32) // leaves a gap after paA? ensure disjoint phys ordering
	_ = paB
	paC, _ := alloc.AllocContiguous(16)
	m.Allocate(asidA, 0, 16*addr.PageSize, paA, addr.PermRW)
	m.Allocate(asidA, 16*addr.PageSize, 16*addr.PageSize, paC, addr.PermRW)
	if merges := m.Compact(asidA); merges != 0 {
		t.Errorf("merged physically disjoint segments (%d merges)", merges)
	}
	// Permission mismatch also blocks merging.
	m2, alloc2 := newManager(t)
	pa2, _ := alloc2.AllocContiguous(32)
	m2.Allocate(asidA, 0, 16*addr.PageSize, pa2, addr.PermRW)
	m2.Allocate(asidA, 16*addr.PageSize, 16*addr.PageSize, pa2+16*addr.PageSize, addr.PermRO)
	if merges := m2.Compact(asidA); merges != 0 {
		t.Errorf("merged mixed-permission segments (%d merges)", merges)
	}
}

func TestCompactIncrementalMode(t *testing.T) {
	m, alloc := newManager(t)
	m.Incremental = true
	pa, _ := alloc.AllocContiguous(64)
	for i := 0; i < 4; i++ {
		if _, err := m.Allocate(asidA, addr.VA(i*16)*addr.PageSize, 16*addr.PageSize,
			pa+addr.PA(i*16)*addr.PageSize, addr.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	if merges := m.Compact(asidA); merges != 3 {
		t.Fatalf("merges = %d, want 3", merges)
	}
	for off := uint64(0); off < 64*addr.PageSize; off += 8 * addr.PageSize {
		s, ok := m.LookupSoft(asidA, addr.VA(off))
		if !ok {
			t.Fatalf("lookup lost %#x", off)
		}
		if id, _ := m.Tree.Lookup(asidA, addr.VA(off)); id != s.ID {
			t.Fatalf("incremental tree stale at %#x: %d vs %d", off, id, s.ID)
		}
	}
}
