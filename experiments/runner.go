package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hybridvc"
	"hybridvc/internal/sim"
	"hybridvc/internal/workload"
)

// Cell is one independent job of an experiment sweep: typically one
// (organization × workload) design point. Most cells describe a complete
// system run — a hybridvc.Config, the workloads to load, and an
// instruction budget — and yield a sim.Report; experiments that need the
// trace model or custom plumbing instead supply Fn, which replaces the
// system path entirely. Cells must be self-contained: they run
// concurrently on a worker pool and may not share mutable state.
type Cell struct {
	// Label identifies the cell in errors and progress output
	// (e.g. "fig9/gups/many-segment+sc").
	Label string

	// Config assembles the system under test (system-path cells). The
	// zero Config gets the facade defaults, including Seed=1; set
	// Config.Seed for a per-cell seed.
	Config hybridvc.Config
	// Workloads are loaded into the system in order (multi-entry for
	// multiprogrammed mixes).
	Workloads []string
	// Specs are custom workload specs loaded after Workloads (used when a
	// named spec needs modification, e.g. forcing huge pages).
	Specs []workload.Spec
	// Instructions is the per-core instruction budget for Run.
	Instructions uint64
	// Extract, when set, post-processes the finished system inside the
	// worker (while the system is still alive) and becomes the cell's
	// Value. Without it the Value is nil and the Report carries the data.
	Extract func(sys *hybridvc.System, rep sim.Report) (any, error)

	// Fn, when set, replaces the system path: the cell runs Fn and stores
	// its result as the Value (Report stays zero).
	Fn func() (any, error)
}

// CellResult is one cell's outcome, slotted at the cell's input index.
type CellResult struct {
	// Report is the simulation report for system-path cells.
	Report sim.Report
	// Value is the Extract or Fn result.
	Value any
}

// defaultJobs is the worker-pool width used by every experiment; it
// defaults to GOMAXPROCS so full sweeps scale with the host. Results are
// index-slotted, so tables are identical regardless of the value.
var defaultJobs atomic.Int64

func init() { defaultJobs.Store(int64(runtime.GOMAXPROCS(0))) }

// SetJobs sets the worker count used by subsequent experiment runs.
// Values below 1 reset to GOMAXPROCS. It returns the previous setting.
func SetJobs(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(defaultJobs.Swap(int64(n)))
}

// Jobs returns the current worker count.
func Jobs() int { return int(defaultJobs.Load()) }

// progressFn, when set, observes cell completions (done so far, total,
// finished cell's label and elapsed time). Used by tablegen for live
// sweep progress; nil by default.
var progressMu sync.Mutex
var progressFn func(done, total int, label string, elapsed time.Duration)

// SetProgress installs a completion observer for subsequent runs (nil
// disables). The callback may fire from multiple worker goroutines but
// never concurrently.
func SetProgress(fn func(done, total int, label string, elapsed time.Duration)) {
	progressMu.Lock()
	progressFn = fn
	progressMu.Unlock()
}

// runCells executes the cells on a pool of Jobs() workers and returns
// their results in input order. A cell that fails — via returned error or
// recovered panic — leaves its slot's Value nil; all failures are joined
// into the returned error. Because results are index-slotted and cells
// are isolated, the output is identical for any worker count.
func runCells(cells []Cell) ([]CellResult, error) {
	results := make([]CellResult, len(cells))
	cellErrs := make([]error, len(cells))
	if len(cells) == 0 {
		return results, nil
	}
	jobs := Jobs()
	if jobs > len(cells) {
		jobs = len(cells)
	}

	var done atomic.Int64
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				results[i], cellErrs[i] = runOneCell(cells[i])
				n := int(done.Add(1))
				progressMu.Lock()
				if progressFn != nil {
					progressFn(n, len(cells), cells[i].Label, time.Since(start))
				}
				progressMu.Unlock()
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, errors.Join(cellErrs...)
}

// runOneCell executes a single cell, converting any panic into an error
// so one bad design point cannot abort a whole sweep.
func runOneCell(c Cell) (res CellResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cell %q: panic: %v\n%s", c.Label, r, debug.Stack())
		}
	}()
	if c.Fn != nil {
		v, ferr := c.Fn()
		if ferr != nil {
			return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, ferr)
		}
		return CellResult{Value: v}, nil
	}
	sys, err := hybridvc.New(c.Config)
	if err != nil {
		return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, err)
	}
	for _, wl := range c.Workloads {
		if err := sys.LoadWorkload(wl); err != nil {
			return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, err)
		}
	}
	for _, spec := range c.Specs {
		if err := sys.LoadSpec(spec); err != nil {
			return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, err)
		}
	}
	rep, err := sys.Run(c.Instructions)
	if err != nil {
		return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, err)
	}
	res = CellResult{Report: rep}
	if c.Extract != nil {
		v, xerr := c.Extract(sys, rep)
		if xerr != nil {
			return CellResult{}, fmt.Errorf("cell %q: %w", c.Label, xerr)
		}
		res.Value = v
	}
	return res, nil
}
