// Tests of the batched access hot path: AccessBatch must be
// result-identical to scalar Access calls on every organization, and
// allocation-free once the structures it touches are warm.
package hybridvc_test

import (
	"testing"

	"hybridvc"
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
)

// newHotpathSystem builds a system with one loaded workload. A small LLC
// keeps the miss paths (delayed translation, writeback translation) busy.
func newHotpathSystem(t testing.TB, org hybridvc.Organization, wl string) *hybridvc.System {
	t.Helper()
	sys, err := hybridvc.New(hybridvc.Config{Org: org, LLCBytes: 256 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadWorkload(wl); err != nil {
		t.Fatal(err)
	}
	return sys
}

// collectRequests draws n data references from the system's first
// generator. Two systems built with the same seed yield the same VA/kind
// sequence, so equivalence tests can drive twins with matching streams.
func collectRequests(sys *hybridvc.System, n int) []core.Request {
	g := sys.Generators()[0]
	reqs := make([]core.Request, 0, n)
	for len(reqs) < n {
		in := g.Next()
		if !in.IsMem || in.Mispredict {
			continue
		}
		kind := cache.Read
		if in.IsStore {
			kind = cache.Write
		}
		reqs = append(reqs, core.Request{Core: 0, Kind: kind, VA: in.VA, Proc: g.Proc})
	}
	return reqs
}

// TestAccessBatchMatchesScalar drives two identically seeded systems of
// every organization with the same reference stream — one through scalar
// Access calls, one through chunked AccessBatch — and requires identical
// per-reference results (latency, hit level, LLC miss, fault).
func TestAccessBatchMatchesScalar(t *testing.T) {
	const n, chunk = 4000, 128
	for _, org := range hybridvc.Organizations() {
		org := org
		t.Run(string(org), func(t *testing.T) {
			scalarSys := newHotpathSystem(t, org, "gups")
			batchSys := newHotpathSystem(t, org, "gups")
			sreqs := collectRequests(scalarSys, n)
			breqs := collectRequests(batchSys, n)
			for i := range sreqs {
				if sreqs[i].VA != breqs[i].VA || sreqs[i].Kind != breqs[i].Kind {
					t.Fatalf("request streams diverge at %d: %+v vs %+v", i, sreqs[i], breqs[i])
				}
			}

			want := make([]core.Result, n)
			for i := range sreqs {
				want[i] = scalarSys.Mem.Access(sreqs[i])
			}
			got := make([]core.Result, n)
			for lo := 0; lo < n; lo += chunk {
				hi := min(lo+chunk, n)
				batchSys.Mem.AccessBatch(breqs[lo:hi], got[lo:hi])
			}

			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("result %d (VA %#x, kind %v): scalar %+v, batch %+v",
						i, sreqs[i].VA, sreqs[i].Kind, want[i], got[i])
				}
			}
		})
	}
}

// TestAccessBatchShortResultPanics pins the documented contract.
func TestAccessBatchShortResultPanics(t *testing.T) {
	sys := newHotpathSystem(t, hybridvc.HybridManySegSC, "stream")
	reqs := collectRequests(sys, 2)
	defer func() {
		if recover() == nil {
			t.Error("AccessBatch with short result slice did not panic")
		}
	}()
	sys.Mem.AccessBatch(reqs, make([]core.Result, 1))
}

// TestAccessBatchLongResultTailUntouched pins the windowing contract:
// when res is longer than reqs, only the first len(reqs) entries are
// written and the tail is left exactly as the caller had it (not
// zeroed), so a chunking driver can batch into windows of one large
// reusable buffer.
func TestAccessBatchLongResultTailUntouched(t *testing.T) {
	const n, extra = 100, 60
	sys := newHotpathSystem(t, hybridvc.HybridManySegSC, "gups")
	reqs := collectRequests(sys, n)
	sentinel := core.Result{Latency: 0xdeadbeef, HitLevel: 9, LLCMiss: true, Fault: true}
	res := make([]core.Result, n+extra)
	for i := n; i < len(res); i++ {
		res[i] = sentinel
	}
	sys.Mem.AccessBatch(reqs, res)
	for i := 0; i < n; i++ {
		if res[i] == sentinel {
			t.Fatalf("res[%d] not written", i)
		}
	}
	for i := n; i < len(res); i++ {
		if res[i] != sentinel {
			t.Fatalf("res[%d] in the tail was touched: %+v", i, res[i])
		}
	}
}

// TestAccessBatchZeroLength pins the fast path: an empty batch returns
// immediately without touching engine state (no energy, no statistics)
// or the result slice.
func TestAccessBatchZeroLength(t *testing.T) {
	sys := newHotpathSystem(t, hybridvc.HybridManySegSC, "gups")
	// Warm with a little real traffic so "no state change" is a
	// meaningful claim about a live system, not a fresh one.
	warm := collectRequests(sys, 64)
	sys.Mem.AccessBatch(warm, make([]core.Result, len(warm)))

	energyBefore := sys.Mem.Energy().Dynamic()
	accessesBefore := sys.Mem.Hierarchy().LLC().Stats.Accesses()
	sentinel := core.Result{Latency: 0xdeadbeef, HitLevel: 9}
	res := []core.Result{sentinel, sentinel}

	sys.Mem.AccessBatch(nil, res)
	sys.Mem.AccessBatch([]core.Request{}, nil)

	if got := sys.Mem.Energy().Dynamic(); got != energyBefore {
		t.Errorf("zero-length batch spent energy: %v -> %v", energyBefore, got)
	}
	if got := sys.Mem.Hierarchy().LLC().Stats.Accesses(); got != accessesBefore {
		t.Errorf("zero-length batch touched the LLC: %d -> %d accesses", accessesBefore, got)
	}
	for i, r := range res {
		if r != sentinel {
			t.Errorf("zero-length batch wrote res[%d]: %+v", i, r)
		}
	}
}

// TestAccessBatchSteadyStateAllocs requires the batched hot path to run
// allocation-free in the steady state: after a warm-up pass has grown the
// engine's scratch buffers and filled the caches, repeated AccessBatch
// calls over a fixed request set must not allocate at all. Beyond the
// paper's flagship organization it pins the two payload-carrying designs,
// whose front ends ride the same batch machinery over typed-payload
// blocks.
func TestAccessBatchSteadyStateAllocs(t *testing.T) {
	for _, org := range []hybridvc.Organization{
		hybridvc.HybridManySegSC, hybridvc.Victima, hybridvc.RLTVC,
	} {
		org := org
		t.Run(string(org), func(t *testing.T) { testSteadyStateAllocs(t, org) })
	}
}

func testSteadyStateAllocs(t *testing.T, org hybridvc.Organization) {
	sys := newHotpathSystem(t, org, "gups")
	g := sys.Generators()[0]

	// A fixed read set over the code region: 256 lines fit the L1, so the
	// steady state exercises the filter probe + virtual L1 hit path, the
	// common case the batching exists for.
	const lines = 256
	reqs := make([]core.Request, lines)
	for i := range reqs {
		va := g.CodeStart + addr.VA(uint64(i)*64)
		reqs[i] = core.Request{Core: 0, Kind: cache.Read, VA: va, Proc: g.Proc}
	}
	res := make([]core.Result, lines)

	// Warm: demand-fault the pages, fill the caches, grow scratch buffers.
	// A stretch of the real workload first also grows the miss-path
	// scratch (writeback snapshot, translator walk path).
	stream := collectRequests(sys, 4096)
	streamRes := make([]core.Result, len(stream))
	sys.Mem.AccessBatch(stream, streamRes)
	for i := 0; i < 3; i++ {
		sys.Mem.AccessBatch(reqs, res)
	}

	avg := testing.AllocsPerRun(50, func() {
		sys.Mem.AccessBatch(reqs, res)
	})
	if avg != 0 {
		t.Errorf("steady-state AccessBatch allocates %.2f times per call, want 0", avg)
	}
	for i := range res {
		if res[i].HitLevel != 1 {
			t.Fatalf("steady-state access %d not an L1 hit: %+v", i, res[i])
		}
	}

	// The probe layer must not break the guarantee in either state:
	// detached (the default — emission sites are bare nil-checks) or with
	// the counting probe attached (events pass by value, counters are
	// scalar fields).
	t.Run("counting-probe-attached", func(t *testing.T) {
		cp := &core.CountingProbe{}
		sys.Mem.SetProbe(cp)
		defer sys.Mem.SetProbe(nil)
		sys.Mem.AccessBatch(reqs, res)
		avg := testing.AllocsPerRun(50, func() {
			sys.Mem.AccessBatch(reqs, res)
		})
		if avg != 0 {
			t.Errorf("AccessBatch with CountingProbe allocates %.2f times per call, want 0", avg)
		}
		if cp.RouteTotal == 0 || cp.CacheAccesses == 0 {
			t.Error("counting probe saw no events while attached")
		}
	})
}
