package experiments

import (
	"fmt"

	"hybridvc/internal/baseline"
	"hybridvc/internal/core"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

// TableIIRow is one row of Table II: synonym filter false-positive access
// rate, TLB access reduction, and total TLB miss reduction versus the
// conventional two-level TLB baseline.
type TableIIRow struct {
	Workload          string
	FalsePositiveRate float64
	AccessReduction   float64
	MissReduction     float64
}

var tableIIWorkloads = []string{"ferret", "postgres", "specjbb", "firefox", "apache"}

// tableIICell runs one workload through both the proposed hybrid and the
// conventional baseline trace models and compares their TLB behavior.
func tableIICell(name string, n uint64) (TableIIRow, error) {
	const llc = 8 << 20
	spec := workload.Specs[name]

	// Proposed: hybrid with page-granularity delayed translation.
	kh := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
	hcfg := core.DefaultHybridConfig(1)
	hcfg.Hier.LLC.SizeBytes = llc
	hcfg.Delayed = core.DelayedPageTLB
	hcfg.DelayedTLBEntries = 1024
	hybrid := core.NewHybridMMU(hcfg, kh)
	hgens, err := workload.NewGroup(spec, kh, 1)
	if err != nil {
		return TableIIRow{}, fmt.Errorf("table2 %s: %w", name, err)
	}
	driveMem(hybrid, hgens, n)

	// Baseline: conventional two-level TLB.
	kb := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
	bcfg := baseline.DefaultConfig(1)
	bcfg.Hier.LLC.SizeBytes = llc
	base := baseline.NewConventional(bcfg, kb)
	bgens, err := workload.NewGroup(spec, kb, 1)
	if err != nil {
		return TableIIRow{}, fmt.Errorf("table2 %s: %w", name, err)
	}
	driveMem(base, bgens, n)

	totalRefs := hybrid.SynonymCandidates.Value() + hybrid.NonSynonymAccesses.Value()
	var synTLBAccesses, synTLBMisses uint64
	for c := 0; c < 1; c++ {
		synTLBAccesses += hybrid.SynTLB(c).Stats.Accesses()
		synTLBMisses += hybrid.SynTLB(c).Stats.Misses.Value()
	}
	var baseAccesses, baseMisses uint64
	for c := 0; c < 1; c++ {
		baseAccesses += base.TLB(c).Accesses()
		baseMisses += base.TLB(c).Misses()
	}
	proposedMisses := synTLBMisses + hybrid.DelayedTLBMisses.Value()

	return TableIIRow{
		Workload:          name,
		FalsePositiveRate: stats.Ratio(hybrid.FalsePositives.Value(), totalRefs),
		AccessReduction:   1 - stats.Ratio(synTLBAccesses, baseAccesses),
		MissReduction:     1 - stats.Ratio(proposedMisses, baseMisses),
	}, nil
}

// TableII reproduces the Table II trace-based study: an 8 MiB cache
// filters translation requests; the proposed system uses a 64-entry
// synonym TLB plus a 1024-entry delayed TLB (equal total TLB area to the
// baseline's 64-entry L1 + 1024-entry L2). One runner cell per workload.
func TableII(scale Scale) ([]TableIIRow, *stats.Table, error) {
	n := scale.pick(150_000, 3_000_000)
	var cells []Cell
	for _, name := range tableIIWorkloads {
		name := name
		cells = append(cells, Cell{
			Label: "table2/" + name,
			Fn:    func() (any, error) { return tableIICell(name, n) },
		})
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, nil, err
	}

	var rows []TableIIRow
	for _, r := range res {
		rows = append(rows, r.Value.(TableIIRow))
	}
	t := stats.NewTable("Table II: false positive rates, TLB access and miss reduction",
		"workload", "false positive rate", "TLB access reduction", "total TLB miss reduction")
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.4f%%", 100*r.FalsePositiveRate),
			fmt.Sprintf("%.1f%%", 100*r.AccessReduction),
			fmt.Sprintf("%.1f%%", 100*r.MissReduction))
	}
	return rows, t, nil
}
