package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hybridvc/internal/service"
	"hybridvc/internal/service/client"
	"hybridvc/internal/service/cluster"
)

// bench-cluster measures the multi-node cluster with in-process daemons
// on loopback — no external processes, so `make bench-cluster` is
// self-contained and deterministic in shape.
//
// Three phases:
//
//   - Scaling: the same disjoint-key workload pushed through the client
//     balancer at 1, 2 and 4 nodes. Each node's admission rate limiter
//     stands in for per-machine capacity (on a single host the nodes
//     share the CPU, so raw simulation throughput cannot scale; what a
//     cluster adds on real hardware is aggregate admission capacity, and
//     that is what the balancer must be shown to harvest). Throughput
//     should scale near-linearly with node count.
//   - Dedup: a shared-key workload on an unpaced 4-node cluster — every
//     key submitted to every node, asserting the cluster simulates each
//     unique key exactly once and serves the rest via the peer API.
//   - Latency: peer-hit vs local-hit vs fresh-simulation serve time on
//     the same cluster, sampled per submission.
type benchClusterResult struct {
	Instructions uint64             `json:"instructions_per_job"`
	Pacing       benchPacing        `json:"pacing"`
	Scaling      []benchScalingRow  `json:"scaling"`
	Scaling4x    float64            `json:"scaling_4node_over_1node"`
	Dedup        benchDedupResult   `json:"dedup"`
	Latency      benchLatencyResult `json:"latency"`
}

type benchPacing struct {
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      int     `json:"burst"`
	Note       string  `json:"note"`
}

type benchScalingRow struct {
	Nodes      int     `json:"nodes"`
	Jobs       int     `json:"jobs"`
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobs_per_sec"`
}

type benchDedupResult struct {
	Nodes       int    `json:"nodes"`
	UniqueKeys  int    `json:"unique_keys"`
	Submissions int    `json:"submissions"`
	Simulated   uint64 `json:"simulated"`
	PeerServed  int    `json:"peer_served"`
	PeerHits    uint64 `json:"peer_hits"`
	Replicated  uint64 `json:"replicated"`
}

type benchLatencyResult struct {
	Samples      int     `json:"samples"`
	PeerHitAvgMs float64 `json:"peer_hit_avg_ms"`
	PeerHitP95Ms float64 `json:"peer_hit_p95_ms"`
	LocalAvgMs   float64 `json:"local_hit_avg_ms"`
	LocalP95Ms   float64 `json:"local_hit_p95_ms"`
	FreshAvgMs   float64 `json:"fresh_sim_avg_ms"`
}

// benchNode is one in-process daemon of a bench cluster.
type benchNode struct {
	id  string
	url string
	srv *service.Server
	c   *client.Client
}

// startBenchCluster boots n in-process daemons on loopback. n == 1 runs
// a plain single-node daemon (no cluster); n >= 2 wires a full static
// membership. The stop function drains every node.
func startBenchCluster(n int, tweak func(cfg *service.Config)) ([]*benchNode, func(), error) {
	listeners := make([]net.Listener, n)
	members := make([]cluster.Member, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		listeners[i] = ln
		members[i] = cluster.Member{ID: fmt.Sprintf("n%d", i+1), URL: "http://" + ln.Addr().String()}
	}
	nodes := make([]*benchNode, 0, n)
	var httpSrvs []*http.Server
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		for _, bn := range nodes {
			bn.srv.Drain(ctx)
		}
		for _, hs := range httpSrvs {
			hs.Close()
		}
	}
	for i := 0; i < n; i++ {
		cfg := service.Config{Workers: 1, NodeID: members[i].ID}
		if n >= 2 {
			clus, err := cluster.New(cluster.Config{
				NodeID: members[i].ID, Members: members, Token: "bench-cluster",
			})
			if err != nil {
				stop()
				return nil, nil, err
			}
			cfg.Cluster = clus
		}
		if tweak != nil {
			tweak(&cfg)
		}
		srv, err := service.New(cfg)
		if err != nil {
			stop()
			return nil, nil, err
		}
		srv.Start()
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(listeners[i])
		httpSrvs = append(httpSrvs, hs)
		nodes = append(nodes, &benchNode{
			id: members[i].ID, url: members[i].URL,
			srv: srv, c: client.New(members[i].URL, nil),
		})
	}
	return nodes, stop, nil
}

func benchSpec(insns uint64, seed int64) service.JobSpec {
	return service.JobSpec{
		Org: "hybrid-manyseg+sc", Workloads: []string{"gups"},
		Instructions: insns, Seed: seed,
	}
}

// runScalingPhase pushes jobs disjoint-key specs through the balancer
// against an n-node cluster whose admission is paced per node, and
// returns the wall-clock seconds to land them all.
func runScalingPhase(ctx context.Context, n, jobs, conc int, insns uint64, rate float64, burst int) (float64, error) {
	nodes, stop, err := startBenchCluster(n, func(cfg *service.Config) {
		cfg.RatePerSec = rate
		cfg.RateBurst = burst
	})
	if err != nil {
		return 0, err
	}
	defer stop()
	urls := make([]string, len(nodes))
	for i, bn := range nodes {
		urls[i] = bn.url
	}
	// Round-robin (no Refresh): the phase measures how much aggregate
	// admission capacity the balancer can harvest, so every node should
	// see an even share regardless of key ownership.
	bal, err := client.NewBalancer(urls, nil)
	if err != nil {
		return 0, err
	}

	var next atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= jobs || ctx.Err() != nil {
					return
				}
				resp, served, err := bal.SubmitWait(ctx, benchSpec(insns, int64(i+1)), client.Backoff{})
				if err == nil {
					_, err = served.Watch(ctx, resp.ID, 5*time.Millisecond)
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, fmt.Errorf("scaling %d-node phase: %w", n, err)
	}
	return time.Since(start).Seconds(), ctx.Err()
}

func msAvg(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return float64(sum.Microseconds()) / 1000 / float64(len(ds))
}

func msP95(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return float64(sorted[(len(sorted)*95)/100].Microseconds()) / 1000
}

// cmdBenchCluster is the `hvcctl bench-cluster` entry point.
func cmdBenchCluster(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bench-cluster", flag.ExitOnError)
	jobs := fs.Int("n", 60, "disjoint-key jobs per scaling phase")
	conc := fs.Int("c", 8, "concurrent submitters")
	insns := fs.Uint64("insns", 2_000, "instructions per job (small: the cluster paths are under test, not the simulator)")
	rate := fs.Float64("rate", 50, "per-node admission rate standing in for per-machine capacity")
	dedupKeys := fs.Int("dedup-keys", 24, "unique keys in the shared-key dedup phase")
	latKeys := fs.Int("lat-keys", 16, "sampled keys in the latency phase")
	out := fs.String("out", "BENCH_cluster.json", "result file")
	fs.Parse(args)

	res := benchClusterResult{
		Instructions: *insns,
		Pacing: benchPacing{
			RatePerSec: *rate, Burst: 1,
			Note: "scaling phase only: per-node admission rate models per-machine capacity; all nodes share one host's CPU, so aggregate admission — not simulation speed — is what multi-node adds here",
		},
	}

	// Phase 1: fresh throughput at 1, 2 and 4 nodes under the same
	// per-node admission pacing.
	for _, n := range []int{1, 2, 4} {
		secs, err := runScalingPhase(ctx, n, *jobs, *conc, *insns, *rate, 1)
		if err != nil {
			return err
		}
		res.Scaling = append(res.Scaling, benchScalingRow{
			Nodes: n, Jobs: *jobs, Seconds: secs, JobsPerSec: float64(*jobs) / secs,
		})
		fmt.Fprintf(stdout, "bench-cluster: %d node(s): %d jobs in %.2fs (%.1f jobs/s)\n",
			n, *jobs, secs, float64(*jobs)/secs)
	}
	res.Scaling4x = res.Scaling[2].JobsPerSec / res.Scaling[0].JobsPerSec

	// Phase 2: cluster-wide dedup on an unpaced 4-node cluster. Every
	// key is first landed on its owner (owner-routed balancer), then
	// submitted to every node directly; the cluster must simulate each
	// key exactly once.
	nodes, stopDedup, err := startBenchCluster(4, nil)
	if err != nil {
		return err
	}
	defer stopDedup()
	urls := make([]string, len(nodes))
	for i, bn := range nodes {
		urls[i] = bn.url
	}
	bal, err := client.NewBalancer(urls, nil)
	if err != nil {
		return err
	}
	if err := bal.Refresh(ctx); err != nil {
		return err
	}
	const dedupSeedBase = 10_000 // disjoint from the scaling phase keys
	submissions, peerServed := 0, 0
	for k := 0; k < *dedupKeys; k++ {
		spec := benchSpec(*insns, int64(dedupSeedBase+k))
		resp, served, err := bal.SubmitWait(ctx, spec, client.Backoff{})
		if err != nil {
			return fmt.Errorf("dedup phase: %w", err)
		}
		if _, err := served.Watch(ctx, resp.ID, 5*time.Millisecond); err != nil {
			return err
		}
		submissions++
		for _, bn := range nodes {
			r2, err := bn.c.Submit(ctx, spec)
			if err != nil {
				return fmt.Errorf("dedup phase on %s: %w", bn.id, err)
			}
			st, err := bn.c.Watch(ctx, r2.ID, 5*time.Millisecond)
			if err != nil {
				return err
			}
			submissions++
			if st.Provenance == "peer" {
				peerServed++
			}
		}
	}
	var simulated, peerHits, replicated uint64
	for _, bn := range nodes {
		m := bn.srv.MetricsSnapshot()
		simulated += m.Simulated
		if m.Cluster != nil {
			peerHits += m.Cluster.Hits
			replicated += m.Cluster.Replicated
		}
	}
	res.Dedup = benchDedupResult{
		Nodes: 4, UniqueKeys: *dedupKeys, Submissions: submissions,
		Simulated: simulated, PeerServed: peerServed,
		PeerHits: peerHits, Replicated: replicated,
	}
	if simulated != uint64(*dedupKeys) {
		return fmt.Errorf("dedup phase: cluster simulated %d times for %d unique keys", simulated, *dedupKeys)
	}
	fmt.Fprintf(stdout, "bench-cluster: dedup: %d submissions over %d keys → %d simulations, %d peer-served\n",
		submissions, *dedupKeys, simulated, peerServed)

	// Phase 3: serve-latency comparison on the same cluster, fresh keys.
	// For each key: fresh simulation on its owner, first submit on a
	// non-owner (a synchronous peer fetch), then a resubmit on the same
	// node (a local memory hit).
	const latSeedBase = 20_000
	var fresh, peer, local []time.Duration
	for k := 0; k < *latKeys; k++ {
		spec := benchSpec(*insns, int64(latSeedBase+k))
		ownerID, ok := bal.Owner(spec)
		if !ok {
			return fmt.Errorf("latency phase: no owner for seed %d", latSeedBase+k)
		}
		var owner, other *benchNode
		for _, bn := range nodes {
			if bn.id == ownerID {
				owner = bn
			} else if other == nil {
				other = bn
			}
		}
		t0 := time.Now()
		resp, err := owner.c.Submit(ctx, spec)
		if err != nil {
			return err
		}
		if _, err := owner.c.Watch(ctx, resp.ID, time.Millisecond); err != nil {
			return err
		}
		fresh = append(fresh, time.Since(t0))

		t1 := time.Now()
		if _, err := other.c.Submit(ctx, spec); err != nil {
			return err
		}
		peer = append(peer, time.Since(t1))

		t2 := time.Now()
		if _, err := other.c.Submit(ctx, spec); err != nil {
			return err
		}
		local = append(local, time.Since(t2))
	}
	res.Latency = benchLatencyResult{
		Samples:      *latKeys,
		PeerHitAvgMs: msAvg(peer), PeerHitP95Ms: msP95(peer),
		LocalAvgMs: msAvg(local), LocalP95Ms: msP95(local),
		FreshAvgMs: msAvg(fresh),
	}
	fmt.Fprintf(stdout, "bench-cluster: latency: fresh %.2fms, peer hit %.2fms, local hit %.2fms (avg over %d keys)\n",
		res.Latency.FreshAvgMs, res.Latency.PeerHitAvgMs, res.Latency.LocalAvgMs, *latKeys)

	b, _ := json.MarshalIndent(res, "", "  ")
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "bench-cluster: 4-node/1-node fresh throughput = %.2fx → %s\n", res.Scaling4x, *out)
	return nil
}
